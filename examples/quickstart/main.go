// Quickstart: the Fig. 1 wiring in ~40 lines — a 15 kJ battery feeding a
// rate-limited application through a tap, with the energy-aware
// scheduler throttling the app to its budget.
package main

import (
	"fmt"
	"log"

	cinder "repro"
)

func main() {
	sys, err := cinder.NewSystem(cinder.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k := sys.Kernel

	// A browser limited to 750 mW: 15 kJ / 0.75 W guarantees the
	// battery lasts at least 5 hours no matter what the browser does.
	reserve, tap, err := k.Wrap(k.Root, "browser", k.KernelPriv(),
		sys.Battery(), cinder.Milliwatts(750), cinder.PublicLabel())
	if err != nil {
		log.Fatal(err)
	}
	// A CPU-bound workload drawing from that reserve.
	_, th := k.Spawn(k.Root, "browser", cinder.NoPrivileges(), nil, reserve)

	sys.Run(60 * cinder.Second)

	stats, err := reserve.Stats(cinder.NoPrivileges())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tap rate:              %v\n", tap.Rate())
	fmt.Printf("browser CPU consumed:  %v over 60 s (%v average)\n",
		th.CPUConsumed(), th.CPUConsumed().DividedBy(60*cinder.Second))
	fmt.Printf("reserve accounting:    in=%v consumed=%v decayed=%v\n",
		stats.In, stats.Consumed, stats.Decayed)
	fmt.Printf("system consumed:       %v (incl. 699 mW idle baseline)\n", sys.Consumed())

	lvl, _ := sys.Battery().Level(k.KernelPriv())
	fmt.Printf("battery remaining:     %v of %v\n", lvl, cinder.DreamProfile().BatteryCapacity)
}
