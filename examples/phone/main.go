// phone demonstrates the §7 two-core substrate: the closed ARM9
// baseband behind the smdd daemon's gates (Fig. 16), driven by an
// energy-aware dialer, an SMS sender billed per message, and a GPS
// session billed to the thread that started it.
package main

import (
	"fmt"
	"log"

	cinder "repro"
	"repro/internal/apps"
	"repro/internal/msm"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	sys, err := cinder.NewSystem(cinder.Options{DisableDecay: true})
	if err != nil {
		log.Fatal(err)
	}
	k := sys.Kernel
	smdd, err := msm.NewSmdd(k, msm.DefaultSmddConfig(), msm.DefaultARM9Config())
	if err != nil {
		log.Fatal(err)
	}
	smdd.OnIncomingSMS(func(body string) {
		fmt.Printf("  [%v] incoming SMS: %q\n", k.Now(), body)
	})

	// An energy-aware dialer: checks the battery gate, places a 15 s
	// call, hangs up. The call's ≈800 mW lands on the dialer's reserve.
	dialer, err := apps.NewDialer(k, k.Root, k.KernelPriv(), sys.Battery(), apps.DialerConfig{
		Number:        "+15551234567",
		Duration:      15 * cinder.Second,
		Rate:          cinder.Watt,
		MinBatteryPct: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A messaging app sends one SMS (2 J, all-or-nothing).
	smsRes := k.CreateReserve(k.Root, "messenger", cinder.PublicLabel())
	if err := k.Graph.Transfer(k.KernelPriv(), sys.Battery(), smsRes, cinder.Joules(5)); err != nil {
		log.Fatal(err)
	}
	k.Spawn(k.Root, "messenger", cinder.NoPrivileges(), sched.RunnerFunc(
		func(now cinder.Time, th *sched.Thread) {
			_, err := k.GateCall(msm.GateSMS, th, msm.SMSRequest{
				Body: "running late, start without me",
				OnSent: func(at cinder.Time) {
					fmt.Printf("  [%v] SMS confirmed by baseband\n", at)
				},
			})
			if err != nil {
				fmt.Println("  SMS refused:", err)
			}
			th.Exit()
		}), smsRes)

	// A navigation app runs GPS for 30 s.
	gpsRes := k.CreateReserve(k.Root, "nav", cinder.PublicLabel())
	if err := k.Graph.Transfer(k.KernelPriv(), sys.Battery(), gpsRes, cinder.Joules(20)); err != nil {
		log.Fatal(err)
	}
	fixes := 0
	k.Spawn(k.Root, "nav", cinder.NoPrivileges(), sched.RunnerFunc(
		func(now cinder.Time, th *sched.Thread) {
			switch {
			case now < cinder.Second:
				if _, err := k.GateCall(msm.GateGPS, th, msm.GPSRequest{
					Start: true,
					OnFix: func(at cinder.Time) { fixes++ },
				}); err != nil {
					fmt.Println("  GPS refused:", err)
					th.Exit()
					return
				}
				th.Sleep(30 * cinder.Second)
			default:
				_, _ = k.GateCall(msm.GateGPS, th, msm.GPSRequest{Start: false})
				th.Exit()
			}
		}), gpsRes)

	// The network injects a message mid-run.
	k.Eng.After(10*cinder.Second, func(_ *sim.Engine) {
		smdd.ARM9().InjectIncomingSMS("on my way")
	})

	sys.Run(45 * cinder.Second)

	fmt.Println("\nafter 45 simulated seconds:")
	fmt.Printf("  dialer: battery read %d%%, refused=%v, hung up at %v\n",
		dialer.LastBatteryPct, dialer.Refused, dialer.HungUpAt)
	dst, _ := dialer.Reserve.Stats(cinder.NoPrivileges())
	fmt.Printf("  dialer billed:    %v (≈800 mW × call time)\n", dst.Consumed)
	sst, _ := smsRes.Stats(cinder.NoPrivileges())
	fmt.Printf("  messenger billed: %v (2 J per SMS)\n", sst.Consumed)
	gst, _ := gpsRes.Stats(cinder.NoPrivileges())
	fmt.Printf("  nav billed:       %v for %d GPS fixes\n", gst.Consumed, fixes)
	fmt.Printf("  smdd stats:       %+v\n", smdd.Stats())
}
