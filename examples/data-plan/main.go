// data-plan demonstrates the paper's §9 future-work idea, implemented in
// internal/netquota: the reserve/tap graph metering a cellular data plan
// (bytes) and an SMS quota (messages) instead of energy. Isolation,
// delegation and subdivision carry over unchanged.
package main

import (
	"fmt"
	"log"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/netquota"
	"repro/internal/units"
)

func main() {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())

	// A 2 GiB monthly plan, protected by the plan owner's category.
	plan := netquota.NewPlan(tbl, root, netquota.PlanConfig{
		Quota:    2 * netquota.Gibibyte,
		Category: 42,
	})

	// Subdivision: the video app gets a 500 MiB grant; the background
	// sync daemon a 4 KiB/s trickle tap it cannot raise.
	video, err := plan.NewAllowance("video", 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Grant(video, 500*netquota.Mebibyte); err != nil {
		log.Fatal(err)
	}
	sync, err := plan.NewAllowance("sync", netquota.ByteRate(4*netquota.Kibibyte))
	if err != nil {
		log.Fatal(err)
	}

	// An hour passes; the trickle tap flows.
	plan.Flow(units.Hour)

	app := label.Priv{} // unprivileged application context

	// Isolation: the video app streams 300 MiB; the charge is admitted
	// against its own allowance only.
	if err := video.Charge(app, 300*netquota.Mebibyte); err != nil {
		log.Fatal(err)
	}
	// ...and a 400 MiB binge is refused all-or-nothing.
	if err := video.Charge(app, 400*netquota.Mebibyte); err != nil {
		fmt.Println("video refused:", err)
	}

	// Delegation: video lends sync 50 MiB for a large backup.
	if err := plan.Delegate(video, sync, 50*netquota.Mebibyte, app); err != nil {
		log.Fatal(err)
	}

	vLvl, _ := video.Level(app)
	sLvl, _ := sync.Level(app)
	rem, _ := plan.Remaining()
	fmt.Printf("video allowance: %d MiB left\n", vLvl/netquota.Mebibyte)
	fmt.Printf("sync allowance:  %d KiB (1 h of trickle + 50 MiB delegated)\n", sLvl/netquota.Kibibyte)
	fmt.Printf("plan pool:       %d MiB unallocated, %d MiB on the wire\n",
		rem/netquota.Mebibyte, plan.Used()/netquota.Mebibyte)

	// SMS quota: 100 messages/month, messenger gets 10.
	sms := netquota.NewSMSQuota(tbl, root, 100, 43)
	msgr, err := sms.NewAppAllowance("messenger", 10)
	if err != nil {
		log.Fatal(err)
	}
	sent := 0
	for i := 0; i < 12; i++ {
		if err := msgr.Send(app); err != nil {
			fmt.Printf("message %d refused: %v\n", i+1, err)
			break
		}
		sent++
	}
	fmt.Printf("messenger sent %d/12 attempts; pool has %d left\n", sent, func() netquota.Messages {
		r, _ := sms.Remaining()
		return r
	}())
}
