// browser-plugin demonstrates §5.2 / Figures 6a–6b: a browser subdivides
// its energy to an untrusted plugin, scales the plugin's budget with
// per-page taps, and (with backward proportional taps) reclaims energy
// the plugin leaves unused.
package main

import (
	"fmt"
	"log"

	cinder "repro"
)

func main() {
	sys, err := cinder.NewSystem(cinder.Options{DisableDecay: true})
	if err != nil {
		log.Fatal(err)
	}

	browser, err := sys.NewBrowser(sys.Kernel.KernelPriv(), cinder.BrowserConfig{
		Rate:       cinder.Milliwatts(690), // ≥6 h on a 15 kJ battery
		PluginRate: cinder.Milliwatts(70),  // plugin capped at ~10 %
		Reclaim:    true,                   // Fig. 6b backward taps
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("browser at 690 mW, plugin tap 70 mW, reclamation 0.1×/s")

	// The plugin handles two pages; each page brings its own tap, so
	// the plugin's budget scales with the work it does for the browser.
	if err := browser.OpenPage("news", cinder.Milliwatts(20)); err != nil {
		log.Fatal(err)
	}
	if err := browser.OpenPage("video", cinder.Milliwatts(30)); err != nil {
		log.Fatal(err)
	}
	sys.Run(30 * cinder.Second)
	report(sys, browser, "after 30 s with two pages open")

	// The user navigates away: the page containers are deleted and
	// kernel GC revokes their taps — "effectively revoking those power
	// sources".
	if err := browser.ClosePage("video"); err != nil {
		log.Fatal(err)
	}
	sys.Run(30 * cinder.Second)
	report(sys, browser, "after closing the video page")

	// The browser asks its (ad-block) extension for help; a starved
	// plugin is simply unresponsive and the browser shows the
	// unaugmented page.
	served := 0
	for i := 0; i < 5; i++ {
		if browser.AskExtension(50 * cinder.Millijoule) {
			served++
		}
	}
	fmt.Printf("extension served %d/5 requests (unresponsive: %d)\n",
		served, browser.Plugin.Unresponsive)
}

func report(sys *cinder.System, b *cinder.Browser, when string) {
	blvl, _ := b.Reserve.Level(cinder.NoPrivileges())
	plvl, _ := b.Plugin.Reserve.Level(cinder.NoPrivileges())
	fmt.Printf("%s:\n", when)
	fmt.Printf("  browser reserve %v (CPU used %v)\n", blvl, b.Thread.CPUConsumed())
	fmt.Printf("  plugin reserve  %v (CPU used %v), open pages: %d\n",
		plvl, b.Plugin.Thread.CPUConsumed(), b.OpenPages())
}
