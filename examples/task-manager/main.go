// task-manager demonstrates §5.4 / Fig. 7 / Fig. 12: background
// applications confined to a trickle of power, with the task manager —
// and only the task manager — opening each app's foreground tap while
// the user interacts with it.
package main

import (
	"fmt"
	"log"

	cinder "repro"
)

func main() {
	sys, err := cinder.NewSystem(cinder.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tm, err := sys.NewTaskManager(sys.Kernel.KernelPriv(), cinder.TaskManagerCfg{
		ForegroundRate: cinder.Milliwatts(137), // exactly full-CPU cost
		BackgroundRate: cinder.Milliwatts(14),  // bg pair shares 10 % CPU
	})
	if err != nil {
		log.Fatal(err)
	}
	rss, err := tm.Manage("RSS", cinder.Milliwatts(7))
	if err != nil {
		log.Fatal(err)
	}
	mail, err := tm.Manage("Mail", cinder.Milliwatts(7))
	if err != nil {
		log.Fatal(err)
	}

	phase := func(name string, fg string, d cinder.Time) {
		if err := tm.SetForeground(fg); err != nil {
			log.Fatal(err)
		}
		r0, m0 := rss.CPUConsumed(), mail.CPUConsumed()
		sys.Run(d)
		fmt.Printf("%-28s RSS %8v   Mail %8v\n", name,
			(rss.CPUConsumed() - r0).DividedBy(d),
			(mail.CPUConsumed() - m0).DividedBy(d))
	}

	fmt.Println("mean CPU power per 10 s phase (CPU costs 137 mW at 100%):")
	phase("both background", "", 10*cinder.Second)
	phase("RSS foreground", "RSS", 10*cinder.Second)
	phase("both background again", "", 10*cinder.Second)
	phase("Mail foreground", "Mail", 10*cinder.Second)
	phase("both background again", "", 10*cinder.Second)

	// An app cannot open its own foreground tap: the task manager is
	// "the only thread privileged to modify the parameters on the tap".
	apps := tm.Apps()
	if err := apps["RSS"].Tap.SetRate(cinder.NoPrivileges(), cinder.Watt); err != nil {
		fmt.Printf("\nRSS tried to raise its own tap: %v\n", err)
	}
}
