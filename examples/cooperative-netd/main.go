// cooperative-netd demonstrates §5.5 / §6.4: two background pollers
// (mail + RSS) with taps too small to power the radio alone pool their
// energy through netd, synchronizing radio activations and cutting
// active-radio time roughly in half versus the unrestricted baseline.
package main

import (
	"fmt"
	"log"

	cinder "repro"
)

func run(cooperative bool) (total cinder.Energy, activeTime cinder.Time, activations int64, polls int) {
	sys, err := cinder.NewSystem(cinder.Options{
		DisableDecay:    true,
		CooperativeNetd: &cooperative,
	})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(name string, phase cinder.Time, exchanges int) *cinder.Poller {
		p, err := sys.NewPoller(name, sys.Kernel.KernelPriv(), cinder.PollerConfig{
			Interval:  60 * cinder.Second,
			Phase:     phase,
			Rate:      cinder.Milliwatts(79), // one activation per 2 min alone
			ReqBytes:  300,
			RespBytes: 12 << 10,
			Exchanges: exchanges,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	rss := mk("rss", cinder.Second, 2)
	mail := mk("mail", 16*cinder.Second, 6)

	sys.Run(10 * cinder.Minute)
	st := sys.Radio.Stats()
	return sys.Consumed(), st.ActiveTime, st.Activations, rss.Completed + mail.Completed
}

func main() {
	fmt.Println("10 simulated minutes, mail+RSS polling every 60 s, 15 s stagger")
	fmt.Println()
	uncoopE, uncoopT, uncoopA, uncoopP := run(false)
	coopE, coopT, coopA, coopP := run(true)

	fmt.Printf("%-22s %12s %12s\n", "", "non-coop", "cooperative")
	fmt.Printf("%-22s %12v %12v\n", "total energy", uncoopE, coopE)
	fmt.Printf("%-22s %12v %12v\n", "radio active time", uncoopT, coopT)
	fmt.Printf("%-22s %12d %12d\n", "radio activations", uncoopA, coopA)
	fmt.Printf("%-22s %12d %12d\n", "polls completed", uncoopP, coopP)
	fmt.Println()
	fmt.Printf("energy saving:      %.1f%%\n",
		100*float64(uncoopE-coopE)/float64(uncoopE))
	fmt.Printf("active-time saving: %.1f%%\n",
		100*float64(uncoopT-coopT)/float64(uncoopT))
	fmt.Println("\n(paper, 20 min run: 12.5% energy, 46.3% active time — Table 1)")
}
