package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// FuzzSettle interprets the fuzz input as a little program over a random
// graph of constant/proportional taps and reserves — create, rewire,
// mutate rates, transfer, release — executed in lockstep on a per-batch
// oracle and a closed-form-settled subject. After every advance it
// asserts:
//
//   - byte-identical state (levels, carries, stats) between the two;
//   - exact energy conservation on both
//     (battery + Σ reserves + consumed == capacity);
//   - no reserve overshoots past zero (no fuzz reserve allows debt);
//   - horizon monotonicity: settling j batches shrinks the reported
//     depletion horizon by at most j.
func FuzzSettle(f *testing.F) {
	f.Add([]byte{0, 10, 0, 1, 0x20, 3, 5, 50, 2, 1, 0x10, 5, 20})
	f.Add([]byte{0, 255, 255, 1, 0xFF, 200, 5, 10, 0, 1, 1, 2, 0x01, 100, 5, 200, 5, 255})
	f.Add([]byte{6, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})

	f.Fuzz(func(t *testing.T, data []byte) {
		const battery = units.Joule
		const dt = settleDT
		build := func() (*Graph, *kobj.Container) { return newSettleGraph(battery) }
		og, oroot := build()
		sg, sroot := build()
		obill := &baselineBiller{g: og, power: units.Milliwatts(699)}
		sbill := &baselineBiller{g: sg, power: units.Milliwatts(699)}

		var ores, sres []*Reserve
		var otaps, staps []*Tap
		ores = append(ores, og.Battery())
		sres = append(sres, sg.Battery())

		next := func(i *int) (byte, bool) {
			if *i >= len(data) {
				return 0, false
			}
			b := data[*i]
			*i++
			return b, true
		}
		next16 := func(i *int) (uint16, bool) {
			if *i+1 >= len(data) {
				return 0, false
			}
			v := binary.LittleEndian.Uint16(data[*i:])
			*i += 2
			return v, true
		}

		check := func(tag string) {
			t.Helper()
			os, ss := graphState(og), graphState(sg)
			if os != ss {
				t.Fatalf("%s: settled state diverged from oracle:\n--- oracle ---\n%s--- settled ---\n%s", tag, os, ss)
			}
			for _, g := range []*Graph{og, sg} {
				if g.ConservationError() != 0 {
					t.Fatalf("%s: conservation violated by %v", tag, g.ConservationError())
				}
				for _, r := range g.reserves {
					if r.level < 0 {
						t.Fatalf("%s: reserve %s overshot to %d µJ", tag, r.name, r.level)
					}
				}
			}
		}

		count := 0
		for i := 0; i < len(data); {
			op, ok := next(&i)
			if !ok {
				break
			}
			count++
			if count > 200 {
				break // bound runtime
			}
			switch op % 7 {
			case 0: // new reserve, funded from the battery
				amt, ok := next16(&i)
				if !ok {
					return
				}
				fund := units.Energy(amt) * 20 // up to ≈1.3 mJ... scaled below battery
				or := og.NewReserve(oroot, "r", label.Public(), ReserveOpts{})
				sr := sg.NewReserve(sroot, "r", label.Public(), ReserveOpts{})
				_ = og.Transfer(label.Priv{}, og.Battery(), or, fund)
				_ = sg.Transfer(label.Priv{}, sg.Battery(), sr, fund)
				ores = append(ores, or)
				sres = append(sres, sr)
			case 1: // new constant tap
				a, ok1 := next(&i)
				rate, ok2 := next16(&i)
				if !ok1 || !ok2 {
					return
				}
				si := int(a) % len(ores)
				di := int(a>>4) % len(ores)
				if si == di || ores[si].dead || ores[di].dead || sres[si].dead || sres[di].dead {
					continue
				}
				ot, err1 := og.NewTap(oroot, "t", label.Priv{}, ores[si], ores[di], label.Public())
				st, err2 := sg.NewTap(sroot, "t", label.Priv{}, sres[si], sres[di], label.Public())
				if (err1 == nil) != (err2 == nil) {
					t.Fatal("twin tap creation diverged")
				}
				if err1 != nil {
					continue
				}
				_ = ot.SetRate(label.Priv{}, units.Power(rate)*7)
				_ = st.SetRate(label.Priv{}, units.Power(rate)*7)
				otaps = append(otaps, ot)
				staps = append(staps, st)
			case 2: // new proportional tap
				a, ok1 := next(&i)
				frac, ok2 := next16(&i)
				if !ok1 || !ok2 {
					return
				}
				si := int(a) % len(ores)
				di := int(a>>4) % len(ores)
				if si == di || ores[si].dead || ores[di].dead || sres[si].dead || sres[di].dead {
					continue
				}
				ot, err1 := og.NewTap(oroot, "f", label.Priv{}, ores[si], ores[di], label.Public())
				st, err2 := sg.NewTap(sroot, "f", label.Priv{}, sres[si], sres[di], label.Public())
				if (err1 == nil) != (err2 == nil) {
					t.Fatal("twin tap creation diverged")
				}
				if err1 != nil {
					continue
				}
				ppm := PPM(frac) % 1_000_001
				_ = ot.SetFrac(label.Priv{}, ppm)
				_ = st.SetFrac(label.Priv{}, ppm)
				otaps = append(otaps, ot)
				staps = append(staps, st)
			case 3: // mutate a tap's rate or fraction
				a, ok1 := next(&i)
				v, ok2 := next16(&i)
				if !ok1 || !ok2 || len(otaps) == 0 {
					continue
				}
				ti := int(a) % len(otaps)
				if a&0x80 != 0 {
					ppm := PPM(v) % 1_000_001
					_ = otaps[ti].SetFrac(label.Priv{}, ppm)
					_ = staps[ti].SetFrac(label.Priv{}, ppm)
				} else {
					_ = otaps[ti].SetRate(label.Priv{}, units.Power(v)*3)
					_ = staps[ti].SetRate(label.Priv{}, units.Power(v)*3)
				}
			case 4: // release a tap
				a, ok1 := next(&i)
				if !ok1 || len(otaps) == 0 {
					continue
				}
				ti := int(a) % len(otaps)
				_ = og.Table().Delete(otaps[ti].ObjectID())
				_ = sg.Table().Delete(staps[ti].ObjectID())
			case 5: // transfer between reserves
				a, ok1 := next(&i)
				amt, ok2 := next16(&i)
				if !ok1 || !ok2 {
					return
				}
				si := int(a) % len(ores)
				di := int(a>>4) % len(ores)
				if si == di || ores[si].dead || ores[di].dead || sres[si].dead || sres[di].dead {
					continue
				}
				_, _ = og.TransferUpTo(label.Priv{}, ores[si], ores[di], units.Energy(amt))
				_, _ = sg.TransferUpTo(label.Priv{}, sres[si], sres[di], units.Energy(amt))
			case 6: // advance n batches, checking horizon monotonicity
				a, ok1 := next(&i)
				if !ok1 {
					return
				}
				n := int64(a%64) + 1
				extra := units.Milliwatts(699)
				h0 := sg.HorizonBatches(dt, extra)
				for j := int64(0); j < n; j++ {
					og.Flow(dt)
					obill.bill(1)
				}
				sg.SettleFlows(dt, n, extra, sbill.bill)
				h1 := sg.HorizonBatches(dt, extra)
				// Monotone up to one batch of slack for the interleaved
				// drain's sub-µJ carry (see HorizonBatches).
				if h0 > 0 && h1 < h0-n-1 {
					t.Fatalf("horizon not monotone: settled %d batches, horizon fell %d → %d", n, h0, h1)
				}
				check("after advance")
			}
		}
		// Final state must agree even if the program ended mid-op.
		check("final")
	})
}
