// Package core implements the Cinder paper's primary contribution: the
// reserve and tap kernel abstractions (§3.2–§3.4) and the resource
// consumption graph they form, including the global half-life decay that
// prevents hoarding (§5.2.2).
//
// A Reserve describes the right to use a quantity of energy. A Tap moves
// energy between two reserves at a rate — a fixed power for constant
// taps, or a fraction of the source's level per second for proportional
// taps. Reserves and taps are kernel objects (internal/kobj) protected by
// security labels (internal/label); every operation that observes or
// modifies a level performs the §3.5 access checks.
//
// All amounts are integer microjoules and all flows carry sub-microjoule
// remainders, so the package maintains exact conservation: at any instant
//
//	battery + Σ reserve levels + Σ consumed == initial battery capacity
//
// which the test suite verifies as a property.
package core

import (
	"errors"
	"fmt"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// Errors returned by reserve and tap operations.
var (
	// ErrInsufficient reports that a reserve cannot cover a requested
	// consumption or transfer.
	ErrInsufficient = errors.New("core: insufficient energy in reserve")
	// ErrAccess reports a failed label check (§3.5).
	ErrAccess = errors.New("core: label check failed")
	// ErrDead reports an operation on a deallocated reserve or tap.
	ErrDead = errors.New("core: object has been deallocated")
	// ErrHoarding reports a transfer rejected by the strict anti-hoarding
	// rule (§5.2.2): moving energy from a fast-draining reserve to a
	// slower-draining one requires permission over the source's backward
	// taps.
	ErrHoarding = errors.New("core: transfer would evade backward taps")
)

// insufficientErr is the ErrInsufficient instance returned by Consume
// and DebitSelf. Failing consumptions are an expected steady state (a
// dead battery is billed every batch until the device stops; throttled
// threads retry every quantum), so each Reserve embeds one instance and
// returns a pointer to it: the failure path performs no fmt work and no
// allocation at all. The returned error's message is therefore only
// valid until the reserve's next failing operation — callers that need
// to retain it (none of the simulation's steady-state callers do)
// should capture Error() immediately.
type insufficientErr struct {
	name       string
	have, need units.Energy
	debt       bool
}

func (e *insufficientErr) Error() string {
	if e.debt {
		return fmt.Sprintf("%v: %q does not allow debt", ErrInsufficient, e.name)
	}
	return fmt.Sprintf("%v: %q has %v, need %v", ErrInsufficient, e.name, e.have, e.need)
}

func (e *insufficientErr) Unwrap() error { return ErrInsufficient }

// Accounting is the per-reserve consumption record applications read to
// build energy-aware behaviour (§3.2 "reserves also provide accounting").
type Accounting struct {
	// Consumed is the total energy drawn from the reserve by
	// consumption (CPU billing, device billing), i.e. energy that has
	// left the system.
	Consumed units.Energy
	// In is the total energy that arrived via taps and transfers.
	In units.Energy
	// Out is the total energy that left via taps and transfers.
	Out units.Energy
	// Decayed is the total energy returned to the battery by the global
	// half-life decay.
	Decayed units.Energy
	// ConsumeFailures counts all-or-nothing consumptions rejected for
	// insufficient level, the signal the scheduler uses for throttling.
	ConsumeFailures int64
}

// Reserve is a right to use a quantity of energy (§3.2). Create reserves
// through Graph.NewReserve; the zero value is not usable.
type Reserve struct {
	kobj.Base
	graph *Graph
	name  string
	level units.Energy
	// allowDebt permits the level to go negative via DebitSelf, the
	// §5.5.2 mechanism for charging incoming packets after the fact.
	allowDebt bool
	// decayExempt marks reserves outside the global half-life (the
	// battery itself, and netd's pool, which "is not subject to the
	// system global half-life" §5.5.2).
	decayExempt bool
	dead        bool
	stats       Accounting
	// decayCarry holds fixed-point residue of the exponential decay so
	// long-run half-life is exact. Units: µJ·2⁻³⁰.
	decayCarry int64
	// Settlement scratch (settle.go): epoch marks and worst-case drain
	// sums, valid only for the graph's current settleEpoch.
	sensitiveMark uint64
	settleMark    uint64
	settleDrain   int64
	settleCarry   int64
	// insufficient is the reusable ErrInsufficient instance returned by
	// failing Consume/DebitSelf calls (see insufficientErr).
	insufficient insufficientErr
}

// Name returns the reserve's diagnostic name.
func (r *Reserve) Name() string { return r.name }

// Level returns the current energy level after checking observe
// privileges.
func (r *Reserve) Level(p label.Priv) (units.Energy, error) {
	if r.dead {
		return 0, fmt.Errorf("%w: reserve %q", ErrDead, r.name)
	}
	if !p.CanObserve(r.Label()) {
		return 0, fmt.Errorf("%w: observe reserve %q", ErrAccess, r.name)
	}
	return r.level, nil
}

// Stats returns a copy of the accounting record after checking observe
// privileges.
func (r *Reserve) Stats(p label.Priv) (Accounting, error) {
	if r.dead {
		return Accounting{}, fmt.Errorf("%w: reserve %q", ErrDead, r.name)
	}
	if !p.CanObserve(r.Label()) {
		return Accounting{}, fmt.Errorf("%w: observe reserve %q", ErrAccess, r.name)
	}
	return r.stats, nil
}

// Consume atomically draws amount from the reserve, recording it as
// consumed (left the system). It fails without side effects if the level
// is insufficient — the scheduler relies on this to throttle threads —
// or if the privileges cannot use the reserve (§3.5: observe + modify).
func (r *Reserve) Consume(p label.Priv, amount units.Energy) error {
	if amount < 0 {
		panic("core: negative consumption")
	}
	if r.dead {
		return fmt.Errorf("%w: reserve %q", ErrDead, r.name)
	}
	if !p.CanUse(r.Label()) {
		return fmt.Errorf("%w: use reserve %q", ErrAccess, r.name)
	}
	if r.level < amount {
		r.stats.ConsumeFailures++
		r.insufficient = insufficientErr{name: r.name, have: r.level, need: amount}
		return &r.insufficient
	}
	r.level -= amount
	r.stats.Consumed += amount
	r.graph.consumed += amount
	return nil
}

// CanConsume reports whether a Consume of amount would succeed, without
// side effects (beyond the observe check).
func (r *Reserve) CanConsume(p label.Priv, amount units.Energy) bool {
	return !r.dead && p.CanUse(r.Label()) && r.level >= amount
}

// CanDebitSelf reports whether a DebitSelf of amount would succeed,
// without side effects. Closed-form device settlement uses it to decide
// whether a span of per-tick debits can telescope into one.
func (r *Reserve) CanDebitSelf(p label.Priv, amount units.Energy) bool {
	return !r.dead && p.CanUse(r.Label()) && (r.allowDebt || r.level >= amount)
}

// AllowDebt reports whether the reserve permits DebitSelf past zero.
func (r *Reserve) AllowDebt() bool { return r.allowDebt }

// DebitSelf draws amount even into debt (§5.5.2: "threads can debit
// their own reserves up to or into debt even if the cost can only be
// determined after-the-fact"). The reserve must have been created with
// debt allowed, and the caller must hold use privileges.
func (r *Reserve) DebitSelf(p label.Priv, amount units.Energy) error {
	if amount < 0 {
		panic("core: negative debit")
	}
	if r.dead {
		return fmt.Errorf("%w: reserve %q", ErrDead, r.name)
	}
	if !p.CanUse(r.Label()) {
		return fmt.Errorf("%w: use reserve %q", ErrAccess, r.name)
	}
	if !r.allowDebt && r.level < amount {
		r.insufficient = insufficientErr{name: r.name, debt: true}
		return &r.insufficient
	}
	r.level -= amount
	r.stats.Consumed += amount
	r.graph.consumed += amount
	return nil
}

// Empty reports whether the reserve has no energy available. The
// energy-aware scheduler runs a thread only when one of its reserves is
// non-empty (§3.2).
func (r *Reserve) Empty() bool { return r.dead || r.level <= 0 }

// Dead reports whether the reserve has been deallocated.
func (r *Reserve) Dead() bool { return r.dead }

// DecayExempt reports whether the reserve is excluded from the global
// half-life decay.
func (r *Reserve) DecayExempt() bool { return r.decayExempt }

// credit adds energy arriving from a tap or transfer.
func (r *Reserve) credit(amount units.Energy) {
	r.level += amount
	r.stats.In += amount
}

// debit removes energy leaving via a tap or transfer. The caller must
// have clamped amount to the available level.
func (r *Reserve) debit(amount units.Energy) {
	if amount > r.level {
		panic(fmt.Sprintf("core: debit %v exceeds level %v of %q", amount, r.level, r.name))
	}
	r.level -= amount
	r.stats.Out += amount
}

// String renders the reserve for diagnostics.
func (r *Reserve) String() string {
	return fmt.Sprintf("reserve(%q id=%d level=%v)", r.name, r.ObjectID(), r.level)
}
