package core

import (
	"fmt"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// TapKind selects a tap's rate semantics (§3.3, §5.2.1).
type TapKind uint8

const (
	// TapConst moves a fixed quantity per unit time: the rate is a
	// power. This is the paper's TAP_TYPE_CONST.
	TapConst TapKind = iota
	// TapProportional moves a fraction of the *source* reserve's level
	// per second. The paper's "backward proportional taps" (§5.2.1) are
	// proportional taps whose source is the application reserve and
	// whose sink is the shared pool or battery.
	TapProportional
)

// String returns the kind name.
func (k TapKind) String() string {
	switch k {
	case TapConst:
		return "const"
	case TapProportional:
		return "proportional"
	default:
		return fmt.Sprintf("tapkind(%d)", uint8(k))
	}
}

// PPM expresses a proportional tap's fraction in parts per million per
// second: a tap with frac 100_000 PPM (0.1×/s) drains a tenth of its
// source's level each second, the figure the paper uses in Fig. 6b.
type PPM int64

// Tap transfers energy between two reserves at a rate (§3.3). A tap is
// "an efficient, special-purpose thread whose only job is to transfer
// energy between reserves"; in practice the Graph flows all taps in
// batch (Graph.Flow), exactly as the paper describes ("transfers are
// executed in batch periodically to minimize scheduling and
// context-switch overheads").
type Tap struct {
	kobj.Base
	graph *Graph
	name  string
	src   *Reserve
	sink  *Reserve
	kind  TapKind
	// rate is the power moved for TapConst.
	rate units.Power
	// frac is the fraction of the source level moved per second for
	// TapProportional.
	frac PPM
	// priv holds the privileges embedded in the tap at creation (§3.5:
	// "taps can have privileges embedded in them"); the tap itself uses
	// them to move energy between the two reserves.
	priv label.Priv
	// carry accumulates sub-microjoule flow residue (µJ·10⁻³ for const,
	// µJ·10⁻⁹-scale fixed point folded into flowProportional for
	// proportional taps).
	carry int64
	dead  bool
	stats TapStats
	// seq is the creation order stamp; activeIdx is this tap's position
	// in the graph's active set, −1 while the rate is zero.
	seq       uint64
	activeIdx int
}

// TapStats records a tap's lifetime transfer volume.
type TapStats struct {
	// Moved is the total energy transferred source→sink.
	Moved units.Energy
	// Starved is the total shortfall: energy the rate entitled the tap
	// to move but the source did not hold.
	Starved units.Energy
}

// Name returns the tap's diagnostic name.
func (t *Tap) Name() string { return t.name }

// Source returns the tap's source reserve.
func (t *Tap) Source() *Reserve { return t.src }

// Sink returns the tap's sink reserve.
func (t *Tap) Sink() *Reserve { return t.sink }

// Kind returns the tap's rate semantics.
func (t *Tap) Kind() TapKind { return t.kind }

// Dead reports whether the tap has been deallocated.
func (t *Tap) Dead() bool { return t.dead }

// Stats returns a copy of the tap's transfer record.
func (t *Tap) Stats() TapStats { return t.stats }

// Rate returns the constant rate (zero for proportional taps).
func (t *Tap) Rate() units.Power { return t.rate }

// Frac returns the proportional fraction (zero for constant taps).
func (t *Tap) Frac() PPM { return t.frac }

// Active reports whether the tap is in the graph's active set (carries a
// non-zero rate with live endpoints).
func (t *Tap) Active() bool { return t.activeIdx >= 0 }

// Carry returns the tap's sub-microjoule flow residue in µJ·10⁻³ (the
// const-tap carry of OverRem). Closed-form settlement planners (netd's
// pool-crossing horizon) use it to decompose a settled window into exact
// per-boundary amounts: over j batches a constant tap moves
// ⌊(rate·dt·j + carry)/1000⌋ µJ, telescoping exactly.
func (t *Tap) Carry() int64 { return t.carry }

// SetRate changes a constant tap's rate, the tap_set_rate syscall of
// Fig. 5. Only a caller that can modify the tap object may change it —
// the task manager retains exclusive control of foreground taps this way
// (§5.4).
func (t *Tap) SetRate(p label.Priv, rate units.Power) error {
	if t.dead {
		return fmt.Errorf("%w: tap %q", ErrDead, t.name)
	}
	if t.src.dead || t.sink.dead {
		// A tap whose endpoint died can never move energy again;
		// admitting a rate would only re-enter it into the active set
		// as a zombie that defeats kernel quiescence.
		return fmt.Errorf("%w: tap %q endpoints", ErrDead, t.name)
	}
	if !p.CanModify(t.Label()) {
		return fmt.Errorf("%w: modify tap %q", ErrAccess, t.name)
	}
	if rate < 0 {
		return fmt.Errorf("core: tap %q: negative rate %v", t.name, rate)
	}
	wasActive := t.activeIdx >= 0
	t.kind = TapConst
	t.rate = rate
	t.graph.setTapActive(t, t.moves())
	if wasActive {
		// setTapActive only fires the activity hook on insertion; a rate
		// change on an already-active tap (or a deactivation) perturbs
		// closed-form predictions just the same, so notify here.
		t.graph.notifyTapActivity()
	}
	return nil
}

// SetFrac changes a proportional tap's per-second fraction.
func (t *Tap) SetFrac(p label.Priv, frac PPM) error {
	if t.dead {
		return fmt.Errorf("%w: tap %q", ErrDead, t.name)
	}
	if t.src.dead || t.sink.dead {
		return fmt.Errorf("%w: tap %q endpoints", ErrDead, t.name)
	}
	if !p.CanModify(t.Label()) {
		return fmt.Errorf("%w: modify tap %q", ErrAccess, t.name)
	}
	if frac < 0 || frac > 1_000_000 {
		return fmt.Errorf("core: tap %q: fraction %d out of [0,1e6] PPM", t.name, frac)
	}
	wasActive := t.activeIdx >= 0
	t.kind = TapProportional
	t.frac = frac
	t.graph.setTapActive(t, t.moves())
	if wasActive {
		t.graph.notifyTapActivity()
	}
	return nil
}

// moves reports whether the tap's current kind carries a non-zero rate,
// i.e. whether Flow needs to visit it.
func (t *Tap) moves() bool {
	if t.kind == TapConst {
		return t.rate > 0
	}
	return t.frac > 0
}

// flow moves one batch interval's worth of energy. Amounts are clamped
// to the source level; the shortfall is recorded as starvation. Flow is
// a kernel-internal operation: the label checks happened at creation
// time, when the creator proved it held the embedded privileges.
func (t *Tap) flow(dt units.Time) units.Energy {
	if t.dead || t.src.dead || t.sink.dead {
		return 0
	}
	var want units.Energy
	switch t.kind {
	case TapConst:
		want, t.carry = t.rate.OverRem(dt, t.carry)
	case TapProportional:
		// amount = level × frac/1e6 × dt/1000, carried at µJ·10⁻³
		// resolution on the final division. level×frac stays well below
		// overflow for any realistic battery (15 kJ × 1e6 PPM ≈ 1.5e16).
		scaled := int64(t.src.level) * int64(t.frac) / 1_000_000
		total := scaled*int64(dt) + t.carry
		want = units.Energy(total / 1000)
		t.carry = total % 1000
	}
	if want <= 0 {
		return 0
	}
	avail := units.ClampNonNegative(t.src.level)
	moved := units.Min(want, avail)
	if short := want - moved; short > 0 {
		t.stats.Starved += short
	}
	if moved > 0 {
		t.src.debit(moved)
		t.sink.credit(moved)
		t.stats.Moved += moved
	}
	return moved
}

// String renders the tap for diagnostics.
func (t *Tap) String() string {
	switch t.kind {
	case TapProportional:
		return fmt.Sprintf("tap(%q %s→%s %.3g×/s)", t.name, t.src.name, t.sink.name, float64(t.frac)/1e6)
	default:
		return fmt.Sprintf("tap(%q %s→%s %v)", t.name, t.src.name, t.sink.name, t.rate)
	}
}

var _ kobj.Object = (*Tap)(nil)
var _ kobj.Object = (*Reserve)(nil)
