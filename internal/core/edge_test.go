package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/label"
	"repro/internal/units"
)

func TestOperationsOnDeadReserve(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "doomed", label.Public(), ReserveOpts{})
	if err := g.Table().Delete(r.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Level(anyone); !errors.Is(err, ErrDead) {
		t.Errorf("Level on dead: %v", err)
	}
	if _, err := r.Stats(anyone); !errors.Is(err, ErrDead) {
		t.Errorf("Stats on dead: %v", err)
	}
	if err := r.Consume(anyone, 1); !errors.Is(err, ErrDead) {
		t.Errorf("Consume on dead: %v", err)
	}
	if err := r.DebitSelf(anyone, 1); !errors.Is(err, ErrDead) {
		t.Errorf("DebitSelf on dead: %v", err)
	}
	if r.CanConsume(anyone, 1) {
		t.Error("CanConsume on dead reserve")
	}
	if !r.Empty() {
		t.Error("dead reserve not Empty")
	}
	// Transfers touching dead reserves fail.
	live := g.NewReserve(root, "live", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, r, live, 0); !errors.Is(err, ErrDead) {
		t.Errorf("Transfer from dead: %v", err)
	}
	// New taps on dead reserves fail.
	if _, err := g.NewTap(root, "t", anyone, r, live, label.Public()); !errors.Is(err, ErrDead) {
		t.Errorf("NewTap on dead: %v", err)
	}
}

func TestOperationsOnDeadTap(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, err := g.NewTap(root, "t", anyone, g.Battery(), r, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Table().Delete(tap.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(anyone, units.Watt); !errors.Is(err, ErrDead) {
		t.Errorf("SetRate on dead: %v", err)
	}
	if err := tap.SetFrac(anyone, 1000); !errors.Is(err, ErrDead) {
		t.Errorf("SetFrac on dead: %v", err)
	}
}

func TestTapValidationErrors(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, err := g.NewTap(root, "t", anyone, g.Battery(), r, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(anyone, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := tap.SetFrac(anyone, -1); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := tap.SetFrac(anyone, 1_000_001); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := g.NewTap(root, "nil", anyone, nil, r, label.Public()); err == nil {
		t.Error("nil source accepted")
	}
}

func TestCloneReserveErrors(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	if err := g.Table().Delete(r.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CloneReserve(root, "c", anyone, r, label.Public()); !errors.Is(err, ErrDead) {
		t.Errorf("clone of dead: %v", err)
	}
	const cat label.Category = 8
	hidden := g.NewReserve(root, "hidden", label.New(label.Level3, nil), ReserveOpts{})
	if _, err := g.CloneReserve(root, "c", anyone, hidden, label.Public()); !errors.Is(err, ErrAccess) {
		t.Errorf("clone of unobservable: %v", err)
	}
	_ = cat
}

func TestStringers(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "myres", label.Public(), ReserveOpts{})
	if s := r.String(); !strings.Contains(s, "myres") {
		t.Errorf("Reserve.String() = %q", s)
	}
	tap, _ := g.NewTap(root, "mytap", anyone, g.Battery(), r, label.Public())
	if err := tap.SetRate(anyone, units.Milliwatt); err != nil {
		t.Fatal(err)
	}
	if s := tap.String(); !strings.Contains(s, "mytap") || !strings.Contains(s, "battery") {
		t.Errorf("Tap.String() = %q", s)
	}
	if err := tap.SetFrac(anyone, 100_000); err != nil {
		t.Fatal(err)
	}
	if s := tap.String(); !strings.Contains(s, "0.1") {
		t.Errorf("proportional Tap.String() = %q", s)
	}
	if TapConst.String() != "const" || TapProportional.String() != "proportional" {
		t.Error("TapKind strings")
	}
	if TapKind(7).String() != "tapkind(7)" {
		t.Error("unknown TapKind string")
	}
}

func TestNegativePanics(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	for name, fn := range map[string]func(){
		"consume":  func() { _ = r.Consume(anyone, -1) },
		"debit":    func() { _ = r.DebitSelf(anyone, -1) },
		"transfer": func() { _ = g.Transfer(anyone, g.Battery(), r, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative amount accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestAccessorsAndSnapshots(t *testing.T) {
	g, root := testGraph(Config{BatteryCapacity: units.Kilojoule, DecayHalfLife: -1})
	if g.Capacity() != units.Kilojoule {
		t.Error("Capacity")
	}
	if g.HalfLife() != -1 {
		t.Error("HalfLife")
	}
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(root, "t", anyone, g.Battery(), r, label.Public())
	if len(g.Reserves()) != 2 || len(g.Taps()) != 1 {
		t.Fatalf("snapshot sizes %d/%d", len(g.Reserves()), len(g.Taps()))
	}
	// Snapshots are copies.
	g.Reserves()[0] = nil
	g.Taps()[0] = nil
	if g.Reserves()[0] == nil || g.Taps()[0] != tap {
		t.Fatal("accessors returned aliased slices")
	}
	// EachReserve/EachTap visit the same sequences without copying and
	// without allocating.
	var rs []*Reserve
	var ts []*Tap
	g.EachReserve(func(r *Reserve) { rs = append(rs, r) })
	g.EachTap(func(t *Tap) { ts = append(ts, t) })
	if len(rs) != 2 || rs[0] != g.Battery() || rs[1] != r || len(ts) != 1 || ts[0] != tap {
		t.Fatalf("Each iteration = %v / %v", rs, ts)
	}
	if n := testing.AllocsPerRun(100, func() {
		g.EachReserve(func(*Reserve) {})
		g.EachTap(func(*Tap) {})
	}); n != 0 {
		t.Fatalf("Each iteration allocates %v times, want 0", n)
	}
	if tap.Source() != g.Battery() || tap.Sink() != r {
		t.Fatal("tap endpoints")
	}
	if tap.Kind() != TapConst {
		t.Fatal("default tap kind")
	}
	if r.Name() != "r" || r.DecayExempt() {
		t.Fatal("reserve attributes")
	}
}

func TestFlowZeroAndNegativeDt(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(root, "t", anyone, g.Battery(), r, label.Public())
	if err := tap.SetRate(anyone, units.Watt); err != nil {
		t.Fatal(err)
	}
	g.Flow(0)
	g.Flow(-5)
	if lvl, _ := r.Level(anyone); lvl != 0 {
		t.Fatalf("zero-dt flow moved %v", lvl)
	}
	g.Decay(0)
	g.Decay(-1)
}
