package core

import (
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// FuzzGraphConservation drives a small operation program decoded from
// fuzz bytes against a graph and asserts exact conservation and
// non-negativity after every step — the invariant the whole
// reproduction stands on.
func FuzzGraphConservation(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 1, 1, 4, 4, 5, 2, 2, 3, 6})
	f.Add([]byte{2, 9, 0, 255, 7, 7, 7})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		tbl := kobj.NewTable()
		root := kobj.NewContainer(tbl, nil, "root", label.Public())
		g := NewGraph(tbl, root, label.Public(), Config{
			BatteryCapacity: units.Kilojoule,
		})
		reserves := []*Reserve{g.Battery()}
		var taps []*Tap
		pick := func(i int, n int) int {
			if n == 0 {
				return 0
			}
			return i % n
		}
		for pc := 0; pc < len(program); pc++ {
			op := program[pc]
			arg := int(op) * 131 // derived operand
			switch op % 7 {
			case 0:
				reserves = append(reserves, g.NewReserve(root, "r", label.Public(), ReserveOpts{}))
			case 1:
				if len(reserves) < 2 {
					continue
				}
				src := reserves[pick(arg, len(reserves))]
				sink := reserves[pick(arg/2+1, len(reserves))]
				if src == sink || src.Dead() || sink.Dead() {
					continue
				}
				tap, err := g.NewTap(root, "t", label.Priv{}, src, sink, label.Public())
				if err != nil {
					t.Fatal(err)
				}
				if op%2 == 0 {
					_ = tap.SetRate(label.Priv{}, units.Power(arg)*units.Milliwatt)
				} else {
					_ = tap.SetFrac(label.Priv{}, PPM(arg*37%1_000_000))
				}
				taps = append(taps, tap)
			case 2:
				src := reserves[pick(arg, len(reserves))]
				sink := reserves[pick(arg/3+2, len(reserves))]
				if src == sink || src.Dead() || sink.Dead() {
					continue
				}
				if _, err := g.TransferUpTo(label.Priv{}, src, sink, units.Energy(arg)*units.Millijoule); err != nil {
					t.Fatal(err)
				}
			case 3:
				r := reserves[pick(arg, len(reserves))]
				if r.Dead() {
					continue
				}
				_ = r.Consume(label.Priv{}, units.Energy(arg)*units.Microjoule)
			case 4:
				g.Flow(units.Time(op%50) + 1)
			case 5:
				g.Decay(units.Time(op%3)*units.Second + units.Second)
			case 6:
				if len(taps) == 0 {
					continue
				}
				tap := taps[pick(arg, len(taps))]
				if !tap.Dead() {
					_ = tbl.Delete(tap.ObjectID())
				}
			}
			if ce := g.ConservationError(); ce != 0 {
				t.Fatalf("pc %d (op %d): conservation error %v", pc, op, ce)
			}
			g.EachReserve(func(r *Reserve) {
				if lvl, err := r.Level(label.Priv{}); err == nil && lvl < 0 {
					t.Fatalf("pc %d: negative reserve %q: %v", pc, r.Name(), lvl)
				}
			})
		}
	})
}
