package core

import (
	"fmt"

	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements checkpoint/resume for the resource consumption
// graph. A snapshot records the numeric state of every live reserve and
// tap — levels, accounting, flow carries — plus the graph's own
// counters; it does not record structure. Restore runs against a graph
// whose owner has rebuilt the identical permanent object population
// (battery, radio fund, netd pool, ...) by re-running the device's
// deterministic construction path, and validates name-by-name that the
// rebuilt world matches before overlaying any state.

// Snapshot serializes the graph's mutable state.
func (g *Graph) Snapshot(w *snap.Writer) {
	w.Section("graph")
	w.I64(int64(g.consumed))
	w.I64(int64(g.recharged))
	w.I64(int64(g.capacity))
	w.U64(g.tapSeq)
	w.I64(g.flowWalks)
	w.I64(g.settledBatches)
	w.U64(uint64(len(g.reserves)))
	for _, r := range g.reserves {
		w.String(r.name)
		w.I64(int64(r.level))
		w.I64(int64(r.stats.Consumed))
		w.I64(int64(r.stats.In))
		w.I64(int64(r.stats.Out))
		w.I64(int64(r.stats.Decayed))
		w.I64(r.stats.ConsumeFailures)
		w.I64(r.decayCarry)
	}
	w.U64(uint64(len(g.taps)))
	for _, t := range g.taps {
		w.String(t.name)
		w.U64(uint64(t.kind))
		w.I64(int64(t.rate))
		w.I64(int64(t.frac))
		w.I64(t.carry)
		w.I64(int64(t.stats.Moved))
		w.I64(int64(t.stats.Starved))
	}
}

// Restore overlays a snapshot onto a freshly rebuilt graph. The rebuilt
// reserve and tap populations must match the snapshot exactly (same
// count, same names, same creation order); any drift is a loud error.
func (g *Graph) Restore(r *snap.Reader) error {
	r.Section("graph")
	consumed := units.Energy(r.I64())
	recharged := units.Energy(r.I64())
	capacity := units.Energy(r.I64())
	tapSeq := r.U64()
	flowWalks := r.I64()
	settledBatches := r.I64()
	nRes := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if capacity != g.capacity {
		return fmt.Errorf("core: restore: snapshot battery capacity %v, rebuilt graph has %v", capacity, g.capacity)
	}
	if nRes != len(g.reserves) {
		return fmt.Errorf("core: restore: snapshot has %d reserves, rebuilt graph has %d", nRes, len(g.reserves))
	}
	for i := 0; i < nRes; i++ {
		name := r.String()
		level := units.Energy(r.I64())
		stats := Accounting{
			Consumed:        units.Energy(r.I64()),
			In:              units.Energy(r.I64()),
			Out:             units.Energy(r.I64()),
			Decayed:         units.Energy(r.I64()),
			ConsumeFailures: r.I64(),
		}
		decayCarry := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		res := g.reserves[i]
		if res.name != name {
			return fmt.Errorf("core: restore: reserve %d is %q, snapshot has %q", i, res.name, name)
		}
		res.level = level
		res.stats = stats
		res.decayCarry = decayCarry
	}
	nTaps := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if nTaps != len(g.taps) {
		return fmt.Errorf("core: restore: snapshot has %d live taps, rebuilt graph has %d "+
			"(a tap created mid-run means the device was not quiescent at the checkpoint)",
			nTaps, len(g.taps))
	}
	for i := 0; i < nTaps; i++ {
		name := r.String()
		kind := TapKind(r.U64())
		rate := units.Power(r.I64())
		frac := PPM(r.I64())
		carry := r.I64()
		stats := TapStats{Moved: units.Energy(r.I64()), Starved: units.Energy(r.I64())}
		if err := r.Err(); err != nil {
			return err
		}
		t := g.taps[i]
		if t.name != name {
			return fmt.Errorf("core: restore: tap %d is %q, snapshot has %q", i, t.name, name)
		}
		t.kind = kind
		t.rate = rate
		t.frac = frac
		t.carry = carry
		t.stats = stats
	}
	// Rebuild the active set from the restored rates, bypassing the
	// activity hook (restore must not perturb the kernel task schedules,
	// which are themselves restored afterwards).
	g.active = g.active[:0]
	for _, t := range g.taps {
		t.activeIdx = -1
		if t.moves() {
			t.activeIdx = len(g.active)
			g.active = append(g.active, t)
		}
	}
	g.consumed = consumed
	g.recharged = recharged
	g.tapSeq = tapSeq
	g.flowWalks = flowWalks
	g.settledBatches = settledBatches
	return nil
}
