package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// The settlement differential harness: every test builds the same graph
// twice, drives the twins in lockstep — one batch by batch through Flow
// (the oracle), the other through SettleFlows — and asserts the complete
// observable state (levels, carries, per-tap and per-reserve stats,
// conservation) is byte-identical at every comparison point.

const settleDT = 10 * units.Millisecond

func newSettleGraph(battery units.Energy) (*Graph, *kobj.Container) {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := NewGraph(tbl, root, label.Public(), Config{BatteryCapacity: battery, DecayHalfLife: -1})
	return g, root
}

// graphState renders everything settlement may touch, including internal
// carries, so a single byte of divergence fails the comparison.
func graphState(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "consumed=%d held=%d conserr=%d active=%d\n",
		g.consumed, g.TotalHeld(), g.ConservationError(), len(g.active))
	for _, r := range g.reserves {
		fmt.Fprintf(&b, "r %s level=%d in=%d out=%d cons=%d fails=%d\n",
			r.name, r.level, r.stats.In, r.stats.Out, r.stats.Consumed, r.stats.ConsumeFailures)
	}
	for _, t := range g.taps {
		fmt.Fprintf(&b, "t %s carry=%d moved=%d starved=%d active=%v\n",
			t.name, t.carry, t.stats.Moved, t.stats.Starved, t.activeIdx >= 0)
	}
	return b.String()
}

// baselineBiller emulates the kernel's per-batch baseline draw so the
// interleave contract (extraBatteryDrain + interleave callback) is
// exercised the way the kernel uses it.
type baselineBiller struct {
	g     *Graph
	power units.Power
	carry int64
}

func (bb *baselineBiller) bill(batches int64) {
	for i := int64(0); i < batches; i++ {
		var e units.Energy
		e, bb.carry = bb.power.OverRem(settleDT, bb.carry)
		if e > 0 {
			_ = bb.g.Battery().Consume(label.Priv{}, e)
		}
	}
}

// twins drives the oracle and the settled subject in lockstep.
type twins struct {
	t            *testing.T
	oracle       *Graph
	subject      *Graph
	otaps, staps []*Tap
	obill, sbill *baselineBiller
	baseline     units.Power
}

// newTwins builds the same graph twice. build must be deterministic; it
// returns the taps the script will mutate, in a stable order.
func newTwins(t *testing.T, battery units.Energy, baseline units.Power,
	build func(g *Graph, root *kobj.Container) []*Tap) *twins {
	t.Helper()
	oracle, oroot := newSettleGraph(battery)
	subject, sroot := newSettleGraph(battery)
	tw := &twins{
		t: t, oracle: oracle, subject: subject,
		otaps: build(oracle, oroot), staps: build(subject, sroot),
		obill:    &baselineBiller{g: oracle, power: baseline},
		sbill:    &baselineBiller{g: subject, power: baseline},
		baseline: baseline,
	}
	if len(tw.otaps) != len(tw.staps) {
		t.Fatal("twin build diverged")
	}
	return tw
}

// step advances both twins by n batches: the oracle one Flow (plus one
// baseline batch) at a time, the subject through SettleFlows.
func (tw *twins) step(n int64) {
	for i := int64(0); i < n; i++ {
		tw.oracle.Flow(settleDT)
		tw.obill.bill(1)
	}
	tw.subject.SettleFlows(settleDT, n, tw.baseline, tw.sbill.bill)
}

// mutate applies the same mutation to both twins.
func (tw *twins) mutate(f func(g *Graph, taps []*Tap) error) {
	tw.t.Helper()
	if err := f(tw.oracle, tw.otaps); err != nil {
		tw.t.Fatal(err)
	}
	if err := f(tw.subject, tw.staps); err != nil {
		tw.t.Fatal(err)
	}
}

// compare asserts byte-identical state and exact conservation.
func (tw *twins) compare(tag string) {
	tw.t.Helper()
	os, ss := graphState(tw.oracle), graphState(tw.subject)
	if os != ss {
		tw.t.Fatalf("%s: settlement diverged from per-batch oracle:\n--- oracle ---\n%s--- settled ---\n%s", tag, os, ss)
	}
	if tw.oracle.ConservationError() != 0 || tw.subject.ConservationError() != 0 {
		tw.t.Fatalf("%s: conservation violated (oracle %v, subject %v)",
			tag, tw.oracle.ConservationError(), tw.subject.ConservationError())
	}
}

func mustTap(t *testing.T, g *Graph, root *kobj.Container, name string, src, sink *Reserve) *Tap {
	t.Helper()
	tap, err := g.NewTap(root, name, label.Priv{}, src, sink, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	return tap
}

func mustRate(t *testing.T, tap *Tap, rate units.Power) {
	t.Helper()
	if err := tap.SetRate(label.Priv{}, rate); err != nil {
		t.Fatal(err)
	}
}

func mustFrac(t *testing.T, tap *Tap, frac PPM) {
	t.Helper()
	if err := tap.SetFrac(label.Priv{}, frac); err != nil {
		t.Fatal(err)
	}
}

// TestSettleConstFarm: many constant taps with carry-odd rates over a
// long horizon — the pure telescoping path.
func TestSettleConstFarm(t *testing.T) {
	tw := newTwins(t, 100*units.Joule, units.Milliwatts(699),
		func(g *Graph, root *kobj.Container) []*Tap {
			var taps []*Tap
			for i, rate := range []units.Power{333, 79_000, 1, 137_000, 999} {
				r := g.NewReserve(root, fmt.Sprintf("r%d", i), label.Public(), ReserveOpts{})
				tap := mustTap(t, g, root, fmt.Sprintf("t%d", i), g.Battery(), r)
				mustRate(t, tap, rate)
				taps = append(taps, tap)
			}
			return taps
		})
	tw.step(1)
	tw.compare("after 1 batch")
	tw.step(999)
	tw.compare("after 1000 batches")
	tw.step(12345)
	tw.compare("after 13345 batches")
	if tw.subject.SettledBatches() == 0 {
		t.Fatal("subject never took the closed-form path")
	}
}

// TestSettleConstChain: battery→A→B→C constant chains, where a later
// tap's source is an earlier tap's sink within the same batch.
func TestSettleConstChain(t *testing.T) {
	tw := newTwins(t, 10*units.Joule, 0,
		func(g *Graph, root *kobj.Container) []*Tap {
			a := g.NewReserve(root, "a", label.Public(), ReserveOpts{})
			b := g.NewReserve(root, "b", label.Public(), ReserveOpts{})
			c := g.NewReserve(root, "c", label.Public(), ReserveOpts{})
			t1 := mustTap(t, g, root, "bat-a", g.Battery(), a)
			t2 := mustTap(t, g, root, "a-b", a, b)
			t3 := mustTap(t, g, root, "b-c", b, c)
			mustRate(t, t1, 10_000)
			mustRate(t, t2, 7_001)
			mustRate(t, t3, 2_999)
			return []*Tap{t1, t2, t3}
		})
	tw.step(997)
	tw.compare("after 997 batches")
	// Flip the middle tap's rate above the feed rate: b's horizon shrinks
	// and the chain must starve identically.
	tw.mutate(func(g *Graph, taps []*Tap) error {
		return taps[1].SetRate(label.Priv{}, units.Milliwatts(20))
	})
	tw.step(2000)
	tw.compare("after starvation regime")
}

// TestSettleFracChain is the frac-tap-chain property test: a
// proportional tap fed by a proportional tap (itself fed by a constant
// tap), plus a backward proportional tap to the battery, settles
// identically to per-batch flow at every mutation boundary.
func TestSettleFracChain(t *testing.T) {
	tw := newTwins(t, 20*units.Joule, units.Milliwatts(100),
		func(g *Graph, root *kobj.Container) []*Tap {
			a := g.NewReserve(root, "a", label.Public(), ReserveOpts{})
			b := g.NewReserve(root, "b", label.Public(), ReserveOpts{})
			c := g.NewReserve(root, "c", label.Public(), ReserveOpts{})
			feed := mustTap(t, g, root, "feed", g.Battery(), a)
			f1 := mustTap(t, g, root, "a-b", a, b)
			f2 := mustTap(t, g, root, "b-c", b, c)
			back := mustTap(t, g, root, "b-bat", b, g.Battery())
			mustRate(t, feed, units.Milliwatts(5))
			mustFrac(t, f1, 100_000)
			mustFrac(t, f2, 250_000)
			mustFrac(t, back, 50_000)
			return []*Tap{feed, f1, f2, back}
		})
	tw.step(100)
	tw.compare("frac chain after 100 batches")
	tw.mutate(func(g *Graph, taps []*Tap) error {
		return taps[1].SetFrac(label.Priv{}, 900_000)
	})
	tw.step(57)
	tw.compare("after frac mutation")
	tw.mutate(func(g *Graph, taps []*Tap) error {
		return taps[0].SetRate(label.Priv{}, units.Milliwatts(50))
	})
	tw.step(203)
	tw.compare("after feed mutation")
	// Zero the middle link: the chain below it drains out.
	tw.mutate(func(g *Graph, taps []*Tap) error {
		return taps[1].SetFrac(label.Priv{}, 0)
	})
	tw.step(500)
	tw.compare("after chain break")
}

// TestSettleDepletion drives a small battery to exhaustion through taps
// and interleaved baseline draw: the clamp/starvation sequence near zero
// must match the oracle batch for batch.
func TestSettleDepletion(t *testing.T) {
	tw := newTwins(t, 80*units.Millijoule, units.Milliwatts(699),
		func(g *Graph, root *kobj.Container) []*Tap {
			r := g.NewReserve(root, "sink", label.Public(), ReserveOpts{})
			tap := mustTap(t, g, root, "drain", g.Battery(), r)
			mustRate(t, tap, units.Milliwatts(300))
			fr := g.NewReserve(root, "fracsink", label.Public(), ReserveOpts{})
			ftap := mustTap(t, g, root, "fdrain", r, fr)
			mustFrac(t, ftap, 400_000)
			return []*Tap{tap, ftap}
		})
	// 80 mJ at ≈1 W drains within ≈80 ms; run far past it, comparing
	// every 10 batches through the clamp regime.
	for i := 0; i < 6; i++ {
		tw.step(10)
		tw.compare(fmt.Sprintf("depletion chunk %d", i))
	}
	tw.step(1000)
	tw.compare("long after exhaustion")
}

// TestHorizonMonotonic pins the depletion-horizon property the kernel's
// chunked settlement relies on: with no external mutation, settling j
// batches can shrink the horizon by at most j.
func TestHorizonMonotonic(t *testing.T) {
	g, root := newSettleGraph(units.Joule)
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap := mustTap(t, g, root, "t", g.Battery(), r)
	mustRate(t, tap, units.Milliwatts(10))
	extra := units.Milliwatts(699)
	prev := g.HorizonBatches(settleDT, extra)
	if prev <= 0 {
		t.Fatalf("expected positive horizon, got %d", prev)
	}
	settled := int64(0)
	bill := &baselineBiller{g: g, power: extra}
	for g.HorizonBatches(settleDT, extra) > 0 {
		j := int64(7)
		g.SettleFlows(settleDT, j, extra, bill.bill)
		settled += j
		h := g.HorizonBatches(settleDT, extra)
		// Monotone up to one batch of slack for the interleaved drain's
		// sub-µJ carry (see HorizonBatches).
		if h < prev-j-1 {
			t.Fatalf("horizon not monotone: %d batches in, horizon fell %d → %d (more than the %d settled)",
				settled, prev, h, j)
		}
		prev = h
		if settled > 1_000_000 {
			t.Fatal("horizon never reached zero on a draining battery")
		}
	}
	// Nothing may have overshot: every level non-negative.
	g.EachReserve(func(res *Reserve) {
		lvl, err := res.Level(label.Priv{})
		if err != nil {
			t.Fatal(err)
		}
		if lvl < 0 {
			t.Fatalf("reserve %s overshot to %v", res.Name(), lvl)
		}
	})
	if g.ConservationError() != 0 {
		t.Fatalf("conservation violated: %v", g.ConservationError())
	}
}

// TestHorizonOverflowGuard: several taps whose rates individually pass
// the per-tap overflow guard must not wrap the summed per-reserve drain
// — the horizon must degrade to zero (replay), never to unbounded.
func TestHorizonOverflowGuard(t *testing.T) {
	g, root := newSettleGraph(units.Kilojoule)
	near := units.Power(horizonCap/int64(settleDT) - 1)
	for i := 0; i < 5; i++ {
		r := g.NewReserve(root, fmt.Sprintf("r%d", i), label.Public(), ReserveOpts{})
		tap := mustTap(t, g, root, fmt.Sprintf("t%d", i), g.Battery(), r)
		mustRate(t, tap, near)
	}
	if h := g.HorizonBatches(settleDT, 0); h != 0 {
		t.Fatalf("horizon = %d with overflow-scale drains, want 0 (conservative replay)", h)
	}
	// Settlement must still be exact (everything clamps immediately).
	g.SettleFlows(settleDT, 3, 0, nil)
	if g.ConservationError() != 0 {
		t.Fatalf("conservation violated: %v", g.ConservationError())
	}
}

// TestSettleFlowHookFallsBack: a flow hook (the mid-batch mutation test
// seam) must force settlement onto the per-batch path rather than
// silently skipping the hook.
func TestSettleFlowHookFallsBack(t *testing.T) {
	g, root := newSettleGraph(units.Joule)
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap := mustTap(t, g, root, "t", g.Battery(), r)
	mustRate(t, tap, units.Milliwatts(1))
	visits := 0
	g.flowHook = func(*Tap) { visits++ }
	g.SettleFlows(settleDT, 25, 0, nil)
	if visits != 25 {
		t.Fatalf("flow hook saw %d visits, want 25 (settlement must not bypass the seam)", visits)
	}
	if got := g.SettledBatches(); got != 0 {
		t.Fatalf("settled %d batches despite active flow hook", got)
	}
	if got := g.FlowWalks(); got != 25 {
		t.Fatalf("flow walks = %d, want 25", got)
	}
}
