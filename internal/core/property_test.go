package core

import (
	"math/rand"
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// TestPropertyConservation drives random operation sequences against a
// graph and checks the DESIGN.md §5 invariants after every step:
// conservation is exact, no ordinary reserve goes negative, and tap flow
// never exceeds its entitlement.
func TestPropertyConservation(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		tbl := kobj.NewTable()
		root := kobj.NewContainer(tbl, nil, "root", label.Public())
		g := NewGraph(tbl, root, label.Public(), Config{
			BatteryCapacity: 15 * units.Kilojoule,
		})

		reserves := []*Reserve{g.Battery()}
		var taps []*Tap
		for step := 0; step < 400; step++ {
			switch r.Intn(8) {
			case 0: // create reserve
				res := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
				reserves = append(reserves, res)
			case 1: // create tap with random rate
				if len(reserves) < 2 {
					continue
				}
				src := reserves[r.Intn(len(reserves))]
				sink := reserves[r.Intn(len(reserves))]
				if src == sink || src.Dead() || sink.Dead() {
					continue
				}
				tap, err := g.NewTap(root, "t", label.Priv{}, src, sink, label.Public())
				if err != nil {
					t.Fatal(err)
				}
				if r.Intn(2) == 0 {
					if err := tap.SetRate(label.Priv{}, units.Power(r.Int63n(2_000_000))); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := tap.SetFrac(label.Priv{}, PPM(r.Int63n(500_000))); err != nil {
						t.Fatal(err)
					}
				}
				taps = append(taps, tap)
			case 2: // transfer
				src := reserves[r.Intn(len(reserves))]
				sink := reserves[r.Intn(len(reserves))]
				if src == sink || src.Dead() || sink.Dead() {
					continue
				}
				_, err := g.TransferUpTo(label.Priv{}, src, sink, units.Energy(r.Int63n(int64(units.Joule))))
				if err != nil {
					t.Fatal(err)
				}
			case 3: // consume
				res := reserves[r.Intn(len(reserves))]
				if res.Dead() {
					continue
				}
				amt := units.Energy(r.Int63n(int64(100 * units.Millijoule)))
				err := res.Consume(label.Priv{}, amt)
				if err != nil && !res.CanConsume(label.Priv{}, amt) {
					// expected failure
				} else if err != nil {
					t.Fatalf("consume failed unexpectedly: %v", err)
				}
			case 4: // flow
				g.Flow(units.Time(r.Intn(100)+1) * units.Millisecond)
			case 5: // decay
				g.Decay(units.Time(r.Intn(5)+1) * units.Second)
			case 6: // delete a random non-battery reserve
				if len(reserves) < 2 {
					continue
				}
				res := reserves[1+r.Intn(len(reserves)-1)]
				if res.Dead() {
					continue
				}
				if err := tbl.Delete(res.ObjectID()); err != nil {
					t.Fatal(err)
				}
			case 7: // delete a random tap
				if len(taps) == 0 {
					continue
				}
				tap := taps[r.Intn(len(taps))]
				if tap.Dead() {
					continue
				}
				if err := tbl.Delete(tap.ObjectID()); err != nil {
					t.Fatal(err)
				}
			}

			if ce := g.ConservationError(); ce != 0 {
				t.Fatalf("trial %d step %d: conservation error %v", trial, step, ce)
			}
			g.EachReserve(func(res *Reserve) {
				if lvl, err := res.Level(label.Priv{}); err == nil && lvl < 0 {
					t.Fatalf("trial %d step %d: reserve %q negative: %v",
						trial, step, res.Name(), lvl)
				}
			})
		}
	}
}

// TestPropertyConstTapNeverExceedsRate flows a tap for random batch
// sizes and checks cumulative movement never exceeds rate × elapsed
// (plus one microjoule of carry rounding).
func TestPropertyConstTapNeverExceedsRate(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		g, root := testGraph(Config{DecayHalfLife: -1})
		res := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
		tap, _ := g.NewTap(root, "t", label.Priv{}, g.Battery(), res, label.Public())
		rate := units.Power(r.Int63n(int64(units.Watt)) + 1)
		if err := tap.SetRate(label.Priv{}, rate); err != nil {
			t.Fatal(err)
		}
		var elapsed units.Time
		for i := 0; i < 200; i++ {
			dt := units.Time(r.Intn(50) + 1)
			g.Flow(dt)
			elapsed += dt
			entitled := rate.Over(elapsed) + 1
			if tap.Stats().Moved > entitled {
				t.Fatalf("trial %d: moved %v > entitled %v after %v",
					trial, tap.Stats().Moved, entitled, elapsed)
			}
		}
	}
}

// TestPropertyProportionalTapBounded checks a proportional tap moves at
// most frac × level × dt for a single batch, and that repeated flows
// decay the source geometrically (never negative, monotone down).
func TestPropertyProportionalTapBounded(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		g, root := testGraph(Config{DecayHalfLife: -1})
		src := g.NewReserve(root, "src", label.Public(), ReserveOpts{})
		if err := g.Transfer(label.Priv{}, g.Battery(), src, units.Energy(r.Int63n(int64(units.Joule))+1)); err != nil {
			t.Fatal(err)
		}
		tap, _ := g.NewTap(root, "t", label.Priv{}, src, g.Battery(), label.Public())
		frac := PPM(r.Int63n(900_000) + 1)
		if err := tap.SetFrac(label.Priv{}, frac); err != nil {
			t.Fatal(err)
		}
		prev, _ := src.Level(label.Priv{})
		for i := 0; i < 100; i++ {
			g.Flow(100 * units.Millisecond)
			lvl, _ := src.Level(label.Priv{})
			if lvl < 0 {
				t.Fatalf("trial %d: source negative %v", trial, lvl)
			}
			if lvl > prev {
				t.Fatalf("trial %d: source grew %v → %v with only a drain", trial, prev, lvl)
			}
			prev = lvl
		}
	}
}
