package core

import (
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// allocGraph builds a graph with a constant and a proportional tap
// carrying rates, so Flow and SettleFlows exercise both the telescoped
// and the replayed settlement paths.
func allocGraph(tb testing.TB) *Graph {
	tb.Helper()
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := NewGraph(tbl, root, label.Public(), Config{BatteryCapacity: 1000 * units.Kilojoule})
	app := g.NewReserve(root, "app", label.Public(), ReserveOpts{})
	pool := g.NewReserve(root, "pool", label.Public(), ReserveOpts{})
	p := label.NewPriv()
	ct, err := g.NewTap(root, "const", p, g.Battery(), app, label.Public())
	if err != nil {
		tb.Fatal(err)
	}
	if err := ct.SetRate(p, units.Milliwatts(250)); err != nil {
		tb.Fatal(err)
	}
	pt, err := g.NewTap(root, "prop", p, app, pool, label.Public())
	if err != nil {
		tb.Fatal(err)
	}
	if err := pt.SetFrac(p, 100_000); err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestFlowZeroAllocs guards the per-batch tap walk: a steady-state Flow
// call must not allocate (the snapshot buffer is reused).
func TestFlowZeroAllocs(t *testing.T) {
	g := allocGraph(t)
	dt := 10 * units.Millisecond
	g.Flow(dt) // warm the scratch buffer
	if n := testing.AllocsPerRun(200, func() { g.Flow(dt) }); n != 0 {
		t.Fatalf("Flow allocates %v times per batch, want 0", n)
	}
}

// TestSettleFlowsZeroAllocs guards closed-form settlement: planning and
// settling a chunk must not allocate once the partition buffers are
// warm.
func TestSettleFlowsZeroAllocs(t *testing.T) {
	g := allocGraph(t)
	dt := 10 * units.Millisecond
	g.SettleFlows(dt, 16, units.Milliwatts(700), nil)
	if n := testing.AllocsPerRun(100, func() { g.SettleFlows(dt, 16, units.Milliwatts(700), nil) }); n != 0 {
		t.Fatalf("SettleFlows allocates %v times per call, want 0", n)
	}
}

// TestConsumeFailureZeroAllocs guards the insufficient-energy error
// path: failing consumptions are the steady state of a dead battery and
// of throttled threads, and must not allocate (each reserve embeds its
// reusable error instance).
func TestConsumeFailureZeroAllocs(t *testing.T) {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := NewGraph(tbl, root, label.Public(), Config{BatteryCapacity: units.Microjoule})
	p := label.NewPriv()
	if err := g.Battery().Consume(p, units.Joule); err == nil {
		t.Fatal("consume from near-empty battery succeeded")
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = g.Battery().Consume(p, units.Joule)
	}); n != 0 {
		t.Fatalf("failing Consume allocates %v times per call, want 0", n)
	}
	r := g.NewReserve(root, "nodebt", label.Public(), ReserveOpts{})
	if n := testing.AllocsPerRun(200, func() {
		_ = r.DebitSelf(p, units.Joule)
	}); n != 0 {
		t.Fatalf("failing DebitSelf allocates %v times per call, want 0", n)
	}
}

// BenchmarkSteadyGraphFlow is a CI-guarded steady-state benchmark: it
// must report 0 B/op (the bench smoke greps for SteadyAlloc-guarded
// names and fails on any heap bytes).
func BenchmarkSteadyGraphFlow(b *testing.B) {
	g := allocGraph(b)
	dt := 10 * units.Millisecond
	g.Flow(dt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Flow(dt)
	}
}

// BenchmarkSteadySettleFlows: closed-form settlement of a 16-batch
// chunk; CI-guarded to 0 B/op.
func BenchmarkSteadySettleFlows(b *testing.B) {
	g := allocGraph(b)
	dt := 10 * units.Millisecond
	g.SettleFlows(dt, 16, units.Milliwatts(700), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SettleFlows(dt, 16, units.Milliwatts(700), nil)
	}
}
