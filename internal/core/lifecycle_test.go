package core

import (
	"errors"
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// TestReleaseReserveDeactivatesTaps is the regression test for the
// quiescence-defeating leak: deleting a reserve used to leave taps whose
// endpoint died in the active set forever — Flow skipped them as dead,
// but ActiveTapCount stayed positive, so the kernel's batch tasks never
// parked again.
func TestReleaseReserveDeactivatesTaps(t *testing.T) {
	g, root := testGraph(Config{})
	// The tap lives in root, the reserve in its own container, so
	// deleting the reserve's container does NOT release the tap.
	rc := kobj.NewContainer(g.Table(), root, "app", label.Public())
	res := g.NewReserve(rc, "app-reserve", label.Public(), ReserveOpts{})
	tap, err := g.NewTap(root, "app-tap", anyone, g.Battery(), res, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(anyone, units.Milliwatts(5)); err != nil {
		t.Fatal(err)
	}
	if g.ActiveTapCount() != 1 {
		t.Fatalf("ActiveTapCount = %d, want 1", g.ActiveTapCount())
	}

	if err := g.Table().Delete(rc.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if tap.Dead() {
		t.Fatal("tap should survive its sink's deletion (it lives in root)")
	}
	if got := g.ActiveTapCount(); got != 0 {
		t.Fatalf("ActiveTapCount = %d after sink deletion, want 0", got)
	}

	// The orphaned tap must stay inert: no re-activation through the
	// rate setters, no movement through Flow.
	if err := tap.SetRate(anyone, units.Milliwatts(7)); !errors.Is(err, ErrDead) {
		t.Fatalf("SetRate on orphaned tap: err = %v, want ErrDead", err)
	}
	if err := tap.SetFrac(anyone, 100_000); !errors.Is(err, ErrDead) {
		t.Fatalf("SetFrac on orphaned tap: err = %v, want ErrDead", err)
	}
	if g.ActiveTapCount() != 0 {
		t.Fatalf("ActiveTapCount = %d after rejected reactivation, want 0", g.ActiveTapCount())
	}
	before, _ := g.Battery().Level(anyone)
	g.Flow(units.Second)
	after, _ := g.Battery().Level(anyone)
	if before != after {
		t.Fatalf("orphaned tap moved energy: battery %v -> %v", before, after)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

// TestReleaseSourceReserveDeactivatesTaps covers the symmetric case: the
// tap's *source* dies.
func TestReleaseSourceReserveDeactivatesTaps(t *testing.T) {
	g, root := testGraph(Config{})
	src := g.NewReserve(root, "src", label.Public(), ReserveOpts{})
	sink := g.NewReserve(root, "sink", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), src, units.Joule); err != nil {
		t.Fatal(err)
	}
	tap, err := g.NewTap(root, "t", anyone, src, sink, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetFrac(anyone, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := g.Table().Delete(src.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if got := g.ActiveTapCount(); got != 0 {
		t.Fatalf("ActiveTapCount = %d after source deletion, want 0", got)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

// TestReleaseReserveInDebtConservesEnergy: deleting a reserve whose
// after-the-fact billing (§5.5.2) left it in debt must not create
// energy — the battery absorbs the unsourced consumption.
func TestReleaseReserveInDebtConservesEnergy(t *testing.T) {
	g, root := testGraph(Config{})
	rc := kobj.NewContainer(g.Table(), root, "app", label.Public())
	res := g.NewReserve(rc, "debtor", label.Public(), ReserveOpts{AllowDebt: true})
	if err := res.DebitSelf(anyone, units.Joule); err != nil {
		t.Fatal(err)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v while debt is held", g.ConservationError())
	}
	before, _ := g.Battery().Level(anyone)
	if err := g.Table().Delete(rc.ObjectID()); err != nil {
		t.Fatal(err)
	}
	after, _ := g.Battery().Level(anyone)
	if got := before - after; got != units.Joule {
		t.Fatalf("battery absorbed %v of debt, want 1 J", got)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v after deleting a reserve in debt", g.ConservationError())
	}
}

// TestFlowSnapshotSurvivesMidBatchRelease pins Flow's snapshot
// semantics: releasing a tap from a callback reached during the batch
// (which compacts the active set in place) must not shift the next
// active tap out of the current batch. Before the fix, releasing the
// tap at index i skipped the tap that slid into i+1.
func TestFlowSnapshotSurvivesMidBatchRelease(t *testing.T) {
	g, root := testGraph(Config{})
	mk := func(name string) (*Reserve, *Tap) {
		r := g.NewReserve(root, name+"-res", label.Public(), ReserveOpts{})
		tp, err := g.NewTap(root, name+"-tap", anyone, g.Battery(), r, label.Public())
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.SetRate(anyone, units.Milliwatts(1)); err != nil {
			t.Fatal(err)
		}
		return r, tp
	}
	resA, tapA := mk("a")
	resB, tapB := mk("b")
	resC, tapC := mk("c")

	// From within tap A's slot of the batch, release tap B — the next
	// entry of the active set — compacting the slice under the batch.
	g.flowHook = func(cur *Tap) {
		if cur == tapA && !tapB.Dead() {
			if err := g.Table().Delete(tapB.ObjectID()); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Flow(units.Second)
	g.flowHook = nil

	lvl := func(r *Reserve) units.Energy {
		v, err := r.Level(anyone)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := units.Milliwatts(1).Over(units.Second)
	if got := lvl(resA); got != want {
		t.Fatalf("tap A moved %v, want %v", got, want)
	}
	if got := lvl(resB); got != 0 {
		t.Fatalf("released tap B moved %v, want 0", got)
	}
	// The regression: C used to be skipped for the batch after B's slot
	// compacted away.
	if got := lvl(resC); got != want {
		t.Fatalf("tap C moved %v, want %v (skipped by mid-batch compaction?)", got, want)
	}
	if tapC.Dead() || g.ActiveTapCount() != 2 {
		t.Fatalf("ActiveTapCount = %d, want 2 (A and C)", g.ActiveTapCount())
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

// TestFlowSnapshotMidBatchZeroing: a tap zeroed mid-batch stays in the
// snapshot but moves nothing; a tap activated mid-batch starts next
// batch.
func TestFlowSnapshotMidBatchZeroing(t *testing.T) {
	g, root := testGraph(Config{})
	mk := func(name string, rate units.Power) (*Reserve, *Tap) {
		r := g.NewReserve(root, name+"-res", label.Public(), ReserveOpts{})
		tp, err := g.NewTap(root, name+"-tap", anyone, g.Battery(), r, label.Public())
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.SetRate(anyone, rate); err != nil {
			t.Fatal(err)
		}
		return r, tp
	}
	resA, tapA := mk("a", units.Milliwatts(1))
	resB, tapB := mk("b", units.Milliwatts(1))
	resC, tapC := mk("c", 0) // inactive

	g.flowHook = func(cur *Tap) {
		if cur != tapA {
			return
		}
		// Zero the next active tap and activate a third.
		if err := tapB.SetRate(anyone, 0); err != nil {
			t.Fatal(err)
		}
		if err := tapC.SetRate(anyone, units.Milliwatts(1)); err != nil {
			t.Fatal(err)
		}
	}
	g.Flow(units.Second)
	g.flowHook = nil

	lvl := func(r *Reserve) units.Energy {
		v, err := r.Level(anyone)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := units.Milliwatts(1).Over(units.Second)
	if got := lvl(resA); got != want {
		t.Fatalf("tap A moved %v, want %v", got, want)
	}
	if got := lvl(resB); got != 0 {
		t.Fatalf("zeroed tap B moved %v, want 0", got)
	}
	if got := lvl(resC); got != 0 {
		t.Fatalf("tap C activated mid-batch moved %v this batch, want 0", got)
	}
	g.Flow(units.Second)
	if got := lvl(resC); got != want {
		t.Fatalf("tap C moved %v next batch, want %v", got, want)
	}
}
