package core

import (
	"fmt"
	"math"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// DefaultHalfLife is the paper's default global decay: reserves leak 50 %
// of their content back to the battery every 10 minutes (§5.2.2).
const DefaultHalfLife = 10 * units.Minute

// DefaultBatteryCapacity matches the 15 kJ battery used in the paper's
// running example (Fig. 1).
const DefaultBatteryCapacity = 15 * units.Kilojoule

// Config parameterizes a Graph.
type Config struct {
	// BatteryCapacity is the root reserve's initial level. Defaults to
	// DefaultBatteryCapacity.
	BatteryCapacity units.Energy
	// DecayHalfLife is the global hoarding-prevention half-life; zero
	// selects DefaultHalfLife. Set Negative to disable decay entirely
	// (used by ablation benchmarks).
	DecayHalfLife units.Time
	// StrictHoarding enables the "more fundamental" anti-hoarding rule
	// the paper sketches instead of relying on decay alone (§5.2.2):
	// transfers from a reserve with backward proportional taps to one
	// with strictly weaker backward taps are rejected unless the caller
	// can modify every such tap.
	StrictHoarding bool
}

// Graph is the resource consumption graph (§3.4): a set of reserves
// rooted at the battery, connected by taps. The kernel owns one Graph
// and drives Flow and Decay from its clock.
type Graph struct {
	table    *kobj.Table
	battery  *Reserve
	reserves []*Reserve
	taps     []*Tap
	// active holds the taps with a non-zero rate or fraction, in
	// creation order — the only taps Flow needs to visit. Zero-rate taps
	// move nothing (their carries stay below one microjoule), so
	// skipping them is exact.
	active []*Tap
	// decayable holds the non-decay-exempt reserves in creation order —
	// the only reserves Decay needs to visit.
	decayable []*Reserve
	// onTapActivity, when set, is invoked when a tap acquires a non-zero
	// rate. The kernel hooks it to resume a deferred flow batch task.
	onTapActivity func()
	// onDecayActivity, when set, is invoked when a decayable reserve is
	// created. The kernel hooks it to resume the parked half-life decay
	// task: while no decayable reserve exists, Decay is provably a no-op
	// and its 1 s cadence is the only thing forcing an otherwise
	// quiescent device to execute 86 400 empty instants per simulated
	// day.
	onDecayActivity func()
	// flowScratch is Flow's reusable snapshot buffer, so a tap released
	// or zeroed mid-batch cannot shift later taps out of the batch.
	flowScratch []*Tap
	// flowHook, when set, runs before each tap of a flow batch. It is a
	// test seam for exercising mid-batch mutations of the active set.
	flowHook func(*Tap)
	tapSeq   uint64
	consumed units.Energy
	capacity units.Energy
	// recharged accumulates external energy credited into the battery
	// by a charger (ChargeBattery). It is the one inflow that is not a
	// redistribution of the initial capacity, so conservation becomes
	// TotalHeld + Consumed − Capacity − Recharged == 0.
	recharged units.Energy
	halfLife  units.Time
	strict    bool
	// Settlement state (settle.go): per-plan epoch, reusable partition
	// buffers, and the walk/settled counters surfaced in fleet reports.
	settleEpoch     uint64
	settleTelescope []*Tap
	settleReplay    []*Tap
	settleSrcs      []*Reserve
	flowWalks       int64
	settledBatches  int64
	// decayFactor is the per-Decay-interval retention in 2⁻³⁰ fixed
	// point, memoized per interval length.
	decayFactorDT units.Time
	decayFactor   int64
}

// SetTapActivityHook installs fn to be called whenever a tap becomes
// active (acquires a non-zero rate or fraction). Pass nil to remove.
func (g *Graph) SetTapActivityHook(fn func()) { g.onTapActivity = fn }

// SetDecayActivityHook installs fn to be called whenever a decayable
// reserve is created. Pass nil to remove.
func (g *Graph) SetDecayActivityHook(fn func()) { g.onDecayActivity = fn }

// DecayableCount returns the number of live reserves subject to the
// global half-life. While it is zero, Decay is a no-op by construction.
func (g *Graph) DecayableCount() int { return len(g.decayable) }

// ActiveTapCount returns the number of taps with a non-zero rate.
func (g *Graph) ActiveTapCount() int { return len(g.active) }

// notifyTapActivity fires the tap-activity hook if one is installed.
// Beyond activation, it also runs for rate changes on already-active taps,
// for deactivations (releaseReserve, SetRate(0)), and for direct
// reserve-to-reserve transfers: the kernel's hook is an idempotent
// resume, and closed-form predictions (sweep settlement, throttled
// scheduler skips) must drop on any change to a reserve's inflow that
// the flow machinery itself did not produce.
func (g *Graph) notifyTapActivity() {
	if g.onTapActivity != nil {
		g.onTapActivity()
	}
}

// setTapActive inserts or removes t from the active set, keeping it
// sorted by creation order so Flow preserves the original iteration
// sequence exactly.
func (g *Graph) setTapActive(t *Tap, active bool) {
	if active == (t.activeIdx >= 0) {
		return
	}
	if !active {
		i := t.activeIdx
		copy(g.active[i:], g.active[i+1:])
		g.active = g.active[:len(g.active)-1]
		for ; i < len(g.active); i++ {
			g.active[i].activeIdx = i
		}
		t.activeIdx = -1
		return
	}
	i := len(g.active)
	for i > 0 && g.active[i-1].seq > t.seq {
		i--
	}
	g.active = append(g.active, nil)
	copy(g.active[i+1:], g.active[i:])
	g.active[i] = t
	for ; i < len(g.active); i++ {
		g.active[i].activeIdx = i
	}
	if g.onTapActivity != nil {
		g.onTapActivity()
	}
}

// NewGraph creates a resource graph whose root battery reserve lives in
// the given container. The battery is decay-exempt (decay returns energy
// *to* it) and carries the given label; typically only the kernel owns
// its elevated category.
func NewGraph(t *kobj.Table, root *kobj.Container, batteryLabel label.Label, cfg Config) *Graph {
	g := &Graph{}
	g.Reset(t, root, batteryLabel, cfg)
	return g
}

// Reset reinitializes the graph in place to the exact state NewGraph
// would produce, reusing every backing array already allocated. The
// fleet runner recycles one Graph per worker this way instead of
// constructing 100k fresh ones; all reserves and taps of the previous
// life are forgotten (their owners must be discarded too — the kernel's
// Reset drops the whole object table).
func (g *Graph) Reset(t *kobj.Table, root *kobj.Container, batteryLabel label.Label, cfg Config) {
	if cfg.BatteryCapacity == 0 {
		cfg.BatteryCapacity = DefaultBatteryCapacity
	}
	if cfg.DecayHalfLife == 0 {
		cfg.DecayHalfLife = DefaultHalfLife
	}
	g.table = t
	g.battery = nil
	g.reserves = truncReserves(g.reserves)
	g.taps = truncTaps(g.taps)
	g.active = truncTaps(g.active)
	g.decayable = truncReserves(g.decayable)
	g.onTapActivity = nil
	g.onDecayActivity = nil
	g.flowScratch = truncTaps(g.flowScratch)
	g.flowHook = nil
	g.tapSeq = 0
	g.consumed = 0
	g.recharged = 0
	g.capacity = cfg.BatteryCapacity
	g.halfLife = cfg.DecayHalfLife
	g.strict = cfg.StrictHoarding
	g.settleEpoch = 0
	g.settleTelescope = truncTaps(g.settleTelescope)
	g.settleReplay = truncTaps(g.settleReplay)
	g.settleSrcs = truncReserves(g.settleSrcs)
	g.flowWalks = 0
	g.settledBatches = 0
	g.decayFactorDT = 0
	g.decayFactor = 0
	g.battery = g.newReserve(root, "battery", batteryLabel, ReserveOpts{DecayExempt: true})
	g.battery.level = cfg.BatteryCapacity
}

// truncReserves / truncTaps empty a pointer slice while keeping its
// backing array, clearing the elements so a recycled graph does not pin
// the previous device's objects.
func truncReserves(s []*Reserve) []*Reserve {
	clear(s)
	return s[:0]
}

func truncTaps(s []*Tap) []*Tap {
	clear(s)
	return s[:0]
}

// Battery returns the root reserve (§3.4: "the root of the graph is a
// reserve representing the system battery").
func (g *Graph) Battery() *Reserve { return g.battery }

// Table returns the kernel object table backing the graph.
func (g *Graph) Table() *kobj.Table { return g.table }

// ReserveOpts carries optional reserve attributes.
type ReserveOpts struct {
	// AllowDebt permits DebitSelf to push the level negative (§5.5.2).
	AllowDebt bool
	// DecayExempt excludes the reserve from the global half-life, the
	// exception granted to trusted pools like netd's (§5.5.2).
	DecayExempt bool
}

// NewReserve creates an empty reserve in the given container, the
// reserve_create syscall of Fig. 5. Any thread may create reserves to
// subdivide and delegate its resources (§3.5).
func (g *Graph) NewReserve(parent *kobj.Container, name string, lbl label.Label, opts ReserveOpts) *Reserve {
	return g.newReserve(parent, name, lbl, opts)
}

func (g *Graph) newReserve(parent *kobj.Container, name string, lbl label.Label, opts ReserveOpts) *Reserve {
	r := &Reserve{
		graph:       g,
		name:        name,
		allowDebt:   opts.AllowDebt,
		decayExempt: opts.DecayExempt,
	}
	r.OnRelease(func() { g.releaseReserve(r) })
	g.table.Register(&r.Base, kobj.KindReserve, lbl, parent, r)
	g.reserves = append(g.reserves, r)
	if !r.decayExempt {
		g.decayable = append(g.decayable, r)
		if g.onDecayActivity != nil {
			g.onDecayActivity()
		}
	}
	return r
}

// releaseReserve handles kobj deallocation: any remaining energy returns
// to the battery so deleting a reserve can never destroy energy, then
// the reserve stops participating in flows. Every tap touching the
// reserve is deactivated as well: a tap with a dead endpoint can never
// move energy again, so leaving it in the active set would pin
// ActiveTapCount above zero forever and permanently defeat the kernel's
// quiescence fast path.
func (g *Graph) releaseReserve(r *Reserve) {
	if r == g.battery {
		panic("core: battery reserve deleted")
	}
	if r.level > 0 {
		g.battery.credit(r.level)
		r.stats.Out += r.level
		r.level = 0
	} else if r.level < 0 {
		// A reserve deleted in debt (§5.5.2 after-the-fact billing that
		// no tap ever funded) has consumed energy that was never
		// sourced; the battery absorbs the shortfall — possibly going
		// negative on an overdrawn device — so deletion can neither
		// create nor destroy energy.
		debt := -r.level
		g.battery.level -= debt
		g.battery.stats.Out += debt
		r.stats.In += debt
		r.level = 0
	}
	r.dead = true
	g.reserves = removeFirst(g.reserves, r)
	if !r.decayExempt {
		g.decayable = removeFirst(g.decayable, r)
	}
	deactivated := false
	for _, t := range g.taps {
		if (t.src == r || t.sink == r) && t.activeIdx >= 0 {
			g.setTapActive(t, false)
			deactivated = true
		}
	}
	if deactivated {
		g.notifyTapActivity()
	}
}

// NewTap creates a tap between src and sink, the tap_create syscall of
// Fig. 5. The creator must hold use privileges on both reserves — a tap
// actively moves resources, so it "needs privileges to observe and
// modify both reserve levels" (§3.5) — and those privileges are embedded
// in the tap. The tap starts with rate zero; call SetRate or SetFrac.
func (g *Graph) NewTap(parent *kobj.Container, name string, p label.Priv, src, sink *Reserve, lbl label.Label) (*Tap, error) {
	if src == nil || sink == nil {
		return nil, fmt.Errorf("core: tap %q: nil reserve", name)
	}
	if src == sink {
		return nil, fmt.Errorf("core: tap %q: source and sink are the same reserve", name)
	}
	if src.dead || sink.dead {
		return nil, fmt.Errorf("%w: tap %q endpoints", ErrDead, name)
	}
	if !p.CanUse(src.Label()) {
		return nil, fmt.Errorf("%w: tap %q needs use of source %q", ErrAccess, name, src.name)
	}
	if !p.CanUse(sink.Label()) {
		return nil, fmt.Errorf("%w: tap %q needs use of sink %q", ErrAccess, name, sink.name)
	}
	t := &Tap{graph: g, name: name, src: src, sink: sink, priv: p, activeIdx: -1}
	t.OnRelease(func() { g.releaseTap(t) })
	g.registerTap(&t.Base, lbl, parent, t)
	return t, nil
}

// registerTap stamps the tap's creation sequence and enters it into the
// graph's lists (and the active set, if it already carries a rate — the
// CloneReserve path duplicates live proportional taps).
func (g *Graph) registerTap(base *kobj.Base, lbl label.Label, parent *kobj.Container, t *Tap) {
	g.table.Register(base, kobj.KindTap, lbl, parent, t)
	t.seq = g.tapSeq
	g.tapSeq++
	g.taps = append(g.taps, t)
	if t.moves() {
		g.setTapActive(t, true)
	}
}

func (g *Graph) releaseTap(t *Tap) {
	t.dead = true
	g.setTapActive(t, false)
	g.taps = removeFirst(g.taps, t)
}

// Flow runs one batch interval: every active tap moves dt's worth of
// energy, in creation order. The kernel calls this periodically (§3.3:
// "transfers are executed in batch periodically"). Zero-rate taps are
// not visited; they would move nothing.
//
// The batch operates on a true snapshot of the active set: a callback
// reached from a tap's flow may release or zero any tap (which compacts
// g.active in place) without shifting a later tap out of the batch.
// Taps activated during the batch start next batch; taps released
// mid-batch are marked dead and skipped; taps zeroed mid-batch are
// visited but move nothing.
func (g *Graph) Flow(dt units.Time) {
	if dt <= 0 {
		return
	}
	g.flowWalks++
	g.flowScratch = append(g.flowScratch[:0], g.active...)
	for _, t := range g.flowScratch {
		if g.flowHook != nil {
			g.flowHook(t)
		}
		t.flow(dt)
	}
}

// Decay applies the global half-life: every non-exempt reserve leaks
// level×(1−2^(−dt/halfLife)) back to the battery (§5.2.2). The kernel
// calls this with a coarse period (1 s); the exponential form makes the
// long-run half-life independent of the call interval.
func (g *Graph) Decay(dt units.Time) {
	if dt <= 0 || g.halfLife < 0 {
		return
	}
	f := g.retentionFactor(dt)
	for _, r := range g.decayable {
		if r.level <= 0 {
			continue
		}
		// retained = level × f / 2³⁰, with per-reserve fixed-point carry
		// so the long-run half-life is exact.
		total := int64(r.level)*f + r.decayCarry
		retained := units.Energy(total >> 30)
		r.decayCarry = total & (1<<30 - 1)
		leaked := r.level - retained
		if leaked <= 0 {
			continue
		}
		r.level = retained
		r.stats.Decayed += leaked
		r.stats.Out += leaked
		g.battery.credit(leaked)
	}
}

// retentionFactor returns 2³⁰ × 2^(−dt/halfLife), memoized for the
// common case of a fixed decay interval.
func (g *Graph) retentionFactor(dt units.Time) int64 {
	if dt == g.decayFactorDT && g.decayFactor != 0 {
		return g.decayFactor
	}
	f := int64(math.Round(math.Exp2(-float64(dt)/float64(g.halfLife)) * (1 << 30)))
	if f > 1<<30 {
		f = 1 << 30
	}
	g.decayFactorDT, g.decayFactor = dt, f
	return f
}

// Transfer performs a direct reserve-to-reserve transfer (§3.2: "a
// thread can also perform a reserve-to-reserve transfer provided it is
// permitted to modify both reserves"). It is all-or-nothing.
func (g *Graph) Transfer(p label.Priv, src, sink *Reserve, amount units.Energy) error {
	if amount < 0 {
		panic("core: negative transfer")
	}
	if src.dead || sink.dead {
		return fmt.Errorf("%w: transfer", ErrDead)
	}
	if !p.CanUse(src.Label()) {
		return fmt.Errorf("%w: transfer from %q", ErrAccess, src.name)
	}
	if !p.CanUse(sink.Label()) {
		return fmt.Errorf("%w: transfer to %q", ErrAccess, sink.name)
	}
	if g.strict {
		if err := g.checkHoarding(p, src, sink); err != nil {
			return err
		}
	}
	if src.level < amount {
		return fmt.Errorf("%w: %q has %v, need %v", ErrInsufficient, src.name, src.level, amount)
	}
	src.debit(amount)
	sink.credit(amount)
	// A transfer credits the sink outside the flow machinery, so any
	// closed-form prediction keyed on the sink's inflow (sweep
	// settlement, throttled-quantum skips) is now stale. The hook is an
	// idempotent resume + invalidate, so firing on every transfer is
	// cheap in the common case.
	g.notifyTapActivity()
	return nil
}

// TransferUpTo moves min(amount, src level) and returns the amount
// moved. netd uses this to sweep whatever waiting threads have
// accumulated into the shared pool (§5.5.2).
func (g *Graph) TransferUpTo(p label.Priv, src, sink *Reserve, amount units.Energy) (units.Energy, error) {
	avail := units.ClampNonNegative(src.level)
	moved := units.Min(amount, avail)
	if moved == 0 {
		// Still perform the access checks so callers can't probe.
		if !p.CanUse(src.Label()) || !p.CanUse(sink.Label()) {
			return 0, fmt.Errorf("%w: transfer", ErrAccess)
		}
		return 0, nil
	}
	if err := g.Transfer(p, src, sink, moved); err != nil {
		return 0, err
	}
	return moved, nil
}

// checkHoarding implements the strict rule from §5.2.2: a transfer from
// src to sink is allowed only if for every backward proportional tap
// draining src that the caller cannot remove, the sink has a backward
// proportional tap at least as strong.
func (g *Graph) checkHoarding(p label.Priv, src, sink *Reserve) error {
	srcDrain := g.backwardDrain(src, p)
	sinkDrain := g.backwardDrain(sink, label.Priv{})
	if sinkDrain < srcDrain {
		return fmt.Errorf("%w: source drains at %d PPM/s, sink at %d PPM/s",
			ErrHoarding, srcDrain, sinkDrain)
	}
	return nil
}

// backwardDrain sums the proportional drain (PPM/s) of taps whose source
// is r, ignoring taps the given privileges could modify (and thus
// legitimately remove).
func (g *Graph) backwardDrain(r *Reserve, ignorable label.Priv) PPM {
	var total PPM
	for _, t := range g.taps {
		if t.dead || t.src != r || t.kind != TapProportional {
			continue
		}
		if ignorable.CanModify(t.Label()) {
			continue
		}
		total += t.frac
	}
	return total
}

// CloneReserve implements the reserve_clone alternative from §5.2.2: it
// creates a new reserve and duplicates every backward proportional tap
// draining the original that the caller lacks permission to remove, so
// the clone cannot be used to escape taxation.
func (g *Graph) CloneReserve(parent *kobj.Container, name string, p label.Priv, orig *Reserve, lbl label.Label) (*Reserve, error) {
	if orig.dead {
		return nil, fmt.Errorf("%w: clone of %q", ErrDead, orig.name)
	}
	if !p.CanObserve(orig.Label()) {
		return nil, fmt.Errorf("%w: clone of %q", ErrAccess, orig.name)
	}
	clone := g.newReserve(parent, name, lbl, ReserveOpts{
		AllowDebt:   orig.allowDebt,
		DecayExempt: orig.decayExempt,
	})
	for _, t := range g.taps {
		if t.dead || t.src != orig || t.kind != TapProportional {
			continue
		}
		if p.CanModify(t.Label()) {
			continue // caller could remove it anyway
		}
		dup := &Tap{
			graph: g, name: t.name + "-clone", src: clone, sink: t.sink,
			kind: TapProportional, frac: t.frac, priv: t.priv, activeIdx: -1,
		}
		dup.OnRelease(func() { g.releaseTap(dup) })
		g.registerTap(&dup.Base, t.Label(), parent, dup)
	}
	return clone, nil
}

// Consumed returns the total energy consumed (gone from the system)
// since the graph was created.
func (g *Graph) Consumed() units.Energy { return g.consumed }

// Capacity returns the initial battery capacity.
func (g *Graph) Capacity() units.Energy { return g.capacity }

// TotalHeld returns the sum of all live reserve levels, battery
// included. Debt (negative levels) subtracts.
func (g *Graph) TotalHeld() units.Energy {
	var sum units.Energy
	for _, r := range g.reserves {
		sum += r.level
	}
	return sum
}

// Recharged returns the total external energy accepted into the battery
// through ChargeBattery since the graph was created.
func (g *Graph) Recharged() units.Energy { return g.recharged }

// ChargeBattery credits up to amount of external energy (a wall or USB
// charger) into the battery, clamping at the rated capacity: a full
// battery accepts nothing, and the battery level never overshoots. It
// returns the energy actually accepted. Unlike every other movement in
// the graph this is not a redistribution of the initial capacity, so
// the accepted amount is tracked separately (Recharged) and extends the
// conservation identity rather than violating it.
func (g *Graph) ChargeBattery(amount units.Energy) units.Energy {
	if amount <= 0 {
		return 0
	}
	room := g.capacity - g.battery.level
	if room <= 0 {
		return 0
	}
	if amount > room {
		amount = room
	}
	g.battery.credit(amount)
	g.recharged += amount
	return amount
}

// ConservationError returns TotalHeld + Consumed − Capacity − Recharged,
// which is zero in a correct graph. Property tests assert this stays
// exactly zero across arbitrary operation sequences.
func (g *Graph) ConservationError() units.Energy {
	return g.TotalHeld() + g.consumed - g.capacity - g.recharged
}

// Reserves returns the live reserves in creation order (battery first).
// It copies; iteration-only callers should prefer EachReserve, which
// does not allocate.
func (g *Graph) Reserves() []*Reserve {
	out := make([]*Reserve, len(g.reserves))
	copy(out, g.reserves)
	return out
}

// EachReserve calls fn for every live reserve in creation order (battery
// first) without allocating. fn must not create or release reserves.
func (g *Graph) EachReserve(fn func(*Reserve)) {
	for _, r := range g.reserves {
		fn(r)
	}
}

// Taps returns the live taps in creation order. It copies;
// iteration-only callers should prefer EachTap, which does not allocate.
func (g *Graph) Taps() []*Tap {
	out := make([]*Tap, len(g.taps))
	copy(out, g.taps)
	return out
}

// EachTap calls fn for every live tap in creation order without
// allocating. fn must not create or release taps.
func (g *Graph) EachTap(fn func(*Tap)) {
	for _, t := range g.taps {
		fn(t)
	}
}

// HalfLife returns the configured decay half-life (negative if decay is
// disabled).
func (g *Graph) HalfLife() units.Time { return g.halfLife }

func removeFirst[T comparable](s []T, v T) []T {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
