package core

import (
	"errors"
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// testGraph builds a graph with an accessible battery for tests.
func testGraph(cfg Config) (*Graph, *kobj.Container) {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := NewGraph(tbl, root, label.Public(), cfg)
	return g, root
}

var anyone label.Priv

func TestBatteryStartsFull(t *testing.T) {
	g, _ := testGraph(Config{BatteryCapacity: 15 * units.Kilojoule})
	lvl, err := g.Battery().Level(anyone)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 15*units.Kilojoule {
		t.Fatalf("battery = %v, want 15 kJ", lvl)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v at start", g.ConservationError())
	}
}

func TestDefaultConfig(t *testing.T) {
	g, _ := testGraph(Config{})
	if lvl, _ := g.Battery().Level(anyone); lvl != DefaultBatteryCapacity {
		t.Fatalf("default capacity = %v", lvl)
	}
	if g.HalfLife() != DefaultHalfLife {
		t.Fatalf("default half-life = %v", g.HalfLife())
	}
}

func TestConstTapFlowsExactRate(t *testing.T) {
	// Fig. 1: battery → 750 mW tap → browser reserve. After 10 s of
	// 10 ms batches the reserve must hold exactly 7.5 J.
	g, root := testGraph(Config{DecayHalfLife: -1})
	res := g.NewReserve(root, "browser", label.Public(), ReserveOpts{})
	tap, err := g.NewTap(root, "browser-tap", anyone, g.Battery(), res, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(anyone, units.Milliwatts(750)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		g.Flow(10 * units.Millisecond)
	}
	lvl, _ := res.Level(anyone)
	if lvl != units.Joules(7.5) {
		t.Fatalf("reserve = %v, want exactly 7.5 J", lvl)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestConstTapSubMicrojouleCarry(t *testing.T) {
	// A 1 µW tap moves less than 1 µJ per 10 ms batch; the carry must
	// make 1 s integrate to exactly 1 µJ.
	g, root := testGraph(Config{DecayHalfLife: -1})
	res := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(root, "t", anyone, g.Battery(), res, label.Public())
	if err := tap.SetRate(anyone, units.Microwatt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		g.Flow(10 * units.Millisecond)
	}
	if lvl, _ := res.Level(anyone); lvl != 1*units.Microjoule {
		t.Fatalf("reserve = %v, want 1 µJ", lvl)
	}
}

func TestTapStarvation(t *testing.T) {
	// A tap whose source is empty moves nothing and records starvation.
	g, root := testGraph(Config{DecayHalfLife: -1})
	a := g.NewReserve(root, "a", label.Public(), ReserveOpts{})
	b := g.NewReserve(root, "b", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(root, "t", anyone, a, b, label.Public())
	if err := tap.SetRate(anyone, units.Watt); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	if lvl, _ := b.Level(anyone); lvl != 0 {
		t.Fatalf("sink got %v from empty source", lvl)
	}
	if tap.Stats().Starved != units.Joule {
		t.Fatalf("starved = %v, want 1 J", tap.Stats().Starved)
	}
	// Partially-filled source moves what it has.
	if err := g.Transfer(anyone, g.Battery(), a, 300*units.Millijoule); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	if lvl, _ := b.Level(anyone); lvl != 300*units.Millijoule {
		t.Fatalf("sink = %v, want 300 mJ", lvl)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestProportionalTapEquilibrium(t *testing.T) {
	// Fig. 6b: a plugin reserve fed by a 70 mW constant tap and drained
	// by a 0.1×/s backward proportional tap stabilizes at 700 mJ.
	g, root := testGraph(Config{DecayHalfLife: -1})
	plugin := g.NewReserve(root, "plugin", label.Public(), ReserveOpts{})
	fwd, _ := g.NewTap(root, "fwd", anyone, g.Battery(), plugin, label.Public())
	if err := fwd.SetRate(anyone, units.Milliwatts(70)); err != nil {
		t.Fatal(err)
	}
	back, _ := g.NewTap(root, "back", anyone, plugin, g.Battery(), label.Public())
	if err := back.SetFrac(anyone, 100_000); err != nil { // 0.1×/s
		t.Fatal(err)
	}
	// Run 120 s in 10 ms batches — far past the ~10 s time constant.
	for i := 0; i < 12000; i++ {
		g.Flow(10 * units.Millisecond)
	}
	lvl, _ := plugin.Level(anyone)
	want := 700 * units.Millijoule
	if lvl < want*99/100 || lvl > want*101/100 {
		t.Fatalf("equilibrium = %v, want ≈%v", lvl, want)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestConsume(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), r, units.Joule); err != nil {
		t.Fatal(err)
	}
	if err := r.Consume(anyone, 400*units.Millijoule); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := r.Level(anyone); lvl != 600*units.Millijoule {
		t.Fatalf("level = %v, want 600 mJ", lvl)
	}
	// All-or-nothing: a too-large consume fails without side effects.
	err := r.Consume(anyone, units.Joule)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if lvl, _ := r.Level(anyone); lvl != 600*units.Millijoule {
		t.Fatalf("failed consume changed level to %v", lvl)
	}
	st, _ := r.Stats(anyone)
	if st.Consumed != 400*units.Millijoule {
		t.Fatalf("Consumed = %v", st.Consumed)
	}
	if st.ConsumeFailures != 1 {
		t.Fatalf("ConsumeFailures = %d, want 1", st.ConsumeFailures)
	}
	if g.Consumed() != 400*units.Millijoule {
		t.Fatalf("graph Consumed = %v", g.Consumed())
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestDebitSelfIntoDebt(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "netd-client", label.Public(), ReserveOpts{AllowDebt: true})
	if err := g.Transfer(anyone, g.Battery(), r, 100*units.Millijoule); err != nil {
		t.Fatal(err)
	}
	// Charge for incoming packets after the fact (§5.5.2).
	if err := r.DebitSelf(anyone, 250*units.Millijoule); err != nil {
		t.Fatal(err)
	}
	lvl, _ := r.Level(anyone)
	if lvl != -150*units.Millijoule {
		t.Fatalf("level = %v, want -150 mJ", lvl)
	}
	if !r.Empty() {
		t.Fatal("reserve in debt should read as empty (cannot run)")
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}

	// Non-debt reserves refuse.
	strict := g.NewReserve(root, "strict", label.Public(), ReserveOpts{})
	if err := strict.DebitSelf(anyone, units.Joule); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestAccessControl(t *testing.T) {
	// §3.5: reserve use requires observe+modify; taps embed privileges.
	g, root := testGraph(Config{DecayHalfLife: -1})
	const cat label.Category = 5
	owner := label.NewPriv(cat)
	protected := label.Public().With(cat, label.Level2)

	r := g.NewReserve(root, "protected", protected, ReserveOpts{})
	if err := g.Transfer(owner, g.Battery(), r, units.Joule); err != nil {
		t.Fatal(err)
	}

	var stranger label.Priv
	if _, err := r.Level(stranger); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger observed protected reserve: %v", err)
	}
	if err := r.Consume(stranger, units.Millijoule); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger consumed from protected reserve: %v", err)
	}
	if err := r.Consume(owner, units.Millijoule); err != nil {
		t.Fatalf("owner blocked: %v", err)
	}

	// Tap creation requires use privileges on both endpoints.
	open := g.NewReserve(root, "open", label.Public(), ReserveOpts{})
	if _, err := g.NewTap(root, "t", stranger, r, open, label.Public()); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger created tap from protected source: %v", err)
	}
	if _, err := g.NewTap(root, "t", owner, r, open, label.Public()); err != nil {
		t.Fatalf("owner tap creation failed: %v", err)
	}

	// Transfers check both ends.
	if err := g.Transfer(stranger, open, r, 0); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger transfer to protected sink: %v", err)
	}
}

func TestSetRateRequiresModify(t *testing.T) {
	// §5.4: the task manager creates the foreground tap with a label only
	// it can modify, so applications cannot raise their own rate.
	g, root := testGraph(Config{DecayHalfLife: -1})
	const tm label.Category = 9
	taskmgr := label.NewPriv(tm)
	app := g.NewReserve(root, "app", label.Public(), ReserveOpts{})
	tapLabel := label.Public().With(tm, label.Level2)
	tap, err := g.NewTap(root, "fg", taskmgr, g.Battery(), app, tapLabel)
	if err != nil {
		t.Fatal(err)
	}
	var appPriv label.Priv
	if err := tap.SetRate(appPriv, units.Watt); !errors.Is(err, ErrAccess) {
		t.Fatalf("app raised its own foreground tap: %v", err)
	}
	if err := tap.SetRate(taskmgr, units.Milliwatts(137)); err != nil {
		t.Fatalf("task manager blocked: %v", err)
	}
	if tap.Rate() != units.Milliwatts(137) {
		t.Fatalf("rate = %v", tap.Rate())
	}
}

func TestDecayHalfLife(t *testing.T) {
	// §5.2.2: 50 % leaks after 10 minutes. Drive 10 min of 1 s decay
	// steps and check within 0.1 %.
	g, root := testGraph(Config{})
	r := g.NewReserve(root, "hoard", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), r, 10*units.Joule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		g.Decay(units.Second)
	}
	lvl, _ := r.Level(anyone)
	want := 5 * units.Joule
	if lvl < want*999/1000 || lvl > want*1001/1000 {
		t.Fatalf("after one half-life level = %v, want ≈%v", lvl, want)
	}
	st, _ := r.Stats(anyone)
	if st.Decayed != 10*units.Joule-lvl {
		t.Fatalf("Decayed = %v, want %v", st.Decayed, 10*units.Joule-lvl)
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestDecayExempt(t *testing.T) {
	// §5.5.2: the netd reserve is not subject to the global half-life.
	g, root := testGraph(Config{})
	pool := g.NewReserve(root, "netd", label.Public(), ReserveOpts{DecayExempt: true})
	if err := g.Transfer(anyone, g.Battery(), pool, 10*units.Joule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		g.Decay(units.Second)
	}
	if lvl, _ := pool.Level(anyone); lvl != 10*units.Joule {
		t.Fatalf("exempt reserve decayed to %v", lvl)
	}
}

func TestDecayDisabled(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), r, units.Joule); err != nil {
		t.Fatal(err)
	}
	g.Decay(units.Hour)
	if lvl, _ := r.Level(anyone); lvl != units.Joule {
		t.Fatalf("decay ran while disabled: %v", lvl)
	}
}

func TestDecayIntervalIndependence(t *testing.T) {
	// Decaying in 100 ms steps and 1 s steps must agree closely.
	run := func(step units.Time) units.Energy {
		g, root := testGraph(Config{})
		r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
		if err := g.Transfer(anyone, g.Battery(), r, 10*units.Joule); err != nil {
			t.Fatal(err)
		}
		for elapsed := units.Time(0); elapsed < 5*units.Minute; elapsed += step {
			g.Decay(step)
		}
		lvl, _ := r.Level(anyone)
		return lvl
	}
	a, b := run(100*units.Millisecond), run(units.Second)
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*units.Millijoule { // 0.1 % of 10 J
		t.Fatalf("step dependence: 100ms→%v vs 1s→%v", a, b)
	}
}

func TestDeleteReserveReturnsEnergy(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), r, units.Joule); err != nil {
		t.Fatal(err)
	}
	before, _ := g.Battery().Level(anyone)
	if err := g.Table().Delete(r.ObjectID()); err != nil {
		t.Fatal(err)
	}
	after, _ := g.Battery().Level(anyone)
	if after-before != units.Joule {
		t.Fatalf("battery gained %v, want 1 J back", after-before)
	}
	if !r.Dead() {
		t.Fatal("reserve not marked dead")
	}
	if g.ConservationError() != 0 {
		t.Fatalf("conservation error %v", g.ConservationError())
	}
}

func TestDeadTapStopsFlowing(t *testing.T) {
	// §5.2: garbage-collected taps are "effectively revoking those power
	// sources".
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(root, "t", anyone, g.Battery(), r, label.Public())
	if err := tap.SetRate(anyone, units.Watt); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	if err := g.Table().Delete(tap.ObjectID()); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	if lvl, _ := r.Level(anyone); lvl != units.Joule {
		t.Fatalf("level = %v after tap deletion, want 1 J", lvl)
	}
	if !tap.Dead() {
		t.Fatal("tap not marked dead")
	}
}

func TestDeleteContainerRevokesTaps(t *testing.T) {
	// §5.2: per-page taps are deleted when the page's container goes.
	g, root := testGraph(Config{DecayHalfLife: -1})
	page := kobj.NewContainer(g.Table(), root, "page", label.Public())
	plugin := g.NewReserve(root, "plugin", label.Public(), ReserveOpts{})
	tap, _ := g.NewTap(page, "page-tap", anyone, g.Battery(), plugin, label.Public())
	if err := tap.SetRate(anyone, units.Milliwatts(10)); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	lvlBefore, _ := plugin.Level(anyone)
	if lvlBefore != 10*units.Millijoule {
		t.Fatalf("level = %v", lvlBefore)
	}
	if err := g.Table().Delete(page.ObjectID()); err != nil {
		t.Fatal(err)
	}
	g.Flow(units.Second)
	if lvl, _ := plugin.Level(anyone); lvl != lvlBefore {
		t.Fatalf("revoked tap still flowed: %v", lvl)
	}
}

func TestTransferUpTo(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	a := g.NewReserve(root, "a", label.Public(), ReserveOpts{})
	b := g.NewReserve(root, "b", label.Public(), ReserveOpts{})
	if err := g.Transfer(anyone, g.Battery(), a, 300*units.Millijoule); err != nil {
		t.Fatal(err)
	}
	moved, err := g.TransferUpTo(anyone, a, b, units.Joule)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 300*units.Millijoule {
		t.Fatalf("moved = %v, want 300 mJ", moved)
	}
	moved, err = g.TransferUpTo(anyone, a, b, units.Joule)
	if err != nil || moved != 0 {
		t.Fatalf("second sweep moved %v, err %v", moved, err)
	}
}

func TestTapSelfLoopRejected(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	r := g.NewReserve(root, "r", label.Public(), ReserveOpts{})
	if _, err := g.NewTap(root, "loop", anyone, r, r, label.Public()); err == nil {
		t.Fatal("self-loop tap accepted")
	}
}

func TestStrictHoardingBlocksEvasion(t *testing.T) {
	// §5.2.2: with the fundamental rule enabled, moving energy from a
	// taxed reserve to an untaxed one is rejected.
	g, root := testGraph(Config{DecayHalfLife: -1, StrictHoarding: true})
	const browser label.Category = 4
	browserPriv := label.NewPriv(browser)
	taxed := g.NewReserve(root, "plugin", label.Public(), ReserveOpts{})
	stash := g.NewReserve(root, "stash", label.Public(), ReserveOpts{})
	if err := g.Transfer(browserPriv, g.Battery(), taxed, units.Joule); err != nil {
		t.Fatal(err)
	}
	// Browser installs a backward tap the plugin cannot modify.
	backLabel := label.Public().With(browser, label.Level2)
	back, err := g.NewTap(root, "tax", browserPriv, taxed, g.Battery(), backLabel)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.SetFrac(browserPriv, 100_000); err != nil {
		t.Fatal(err)
	}

	var plugin label.Priv
	err = g.Transfer(plugin, taxed, stash, 500*units.Millijoule)
	if !errors.Is(err, ErrHoarding) {
		t.Fatalf("evasive transfer err = %v, want ErrHoarding", err)
	}
	// The browser itself may move the energy: it can modify the tax tap.
	if err := g.Transfer(browserPriv, taxed, stash, 500*units.Millijoule); err != nil {
		t.Fatalf("browser transfer blocked: %v", err)
	}
}

func TestCloneReserveDuplicatesBackTaps(t *testing.T) {
	g, root := testGraph(Config{DecayHalfLife: -1})
	const browser label.Category = 4
	browserPriv := label.NewPriv(browser)
	orig := g.NewReserve(root, "plugin", label.Public(), ReserveOpts{})
	backLabel := label.Public().With(browser, label.Level2)
	back, err := g.NewTap(root, "tax", browserPriv, orig, g.Battery(), backLabel)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.SetFrac(browserPriv, 100_000); err != nil {
		t.Fatal(err)
	}

	var plugin label.Priv
	clone, err := g.CloneReserve(root, "plugin2", plugin, orig, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	// The clone must carry a duplicated backward tap: energy parked
	// there still decays at 0.1×/s.
	if err := g.Transfer(anyone, g.Battery(), clone, units.Joule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		g.Flow(10 * units.Millisecond)
	}
	lvl, _ := clone.Level(anyone)
	if lvl >= units.Joule {
		t.Fatalf("clone escaped taxation: %v", lvl)
	}
	want := units.Joules(0.9) // 1 J × (1 − 0.1×/s × 1 s), roughly
	if lvl < want*95/100 || lvl > want*105/100 {
		t.Fatalf("clone level = %v, want ≈%v", lvl, want)
	}
}
