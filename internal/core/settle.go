package core

import (
	"math"

	"repro/internal/units"
)

// This file implements closed-form tap settlement: advancing the graph
// through many Flow batches in far less than one walk per batch while
// remaining byte-identical — levels, carries, stats, starvation — to the
// per-batch sequence. The kernel uses it to park its flow task between
// engine instants and catch up lazily.
//
// The key observations:
//
//   - A constant tap's per-batch transfer is independent of any reserve
//     level (absent starvation): the carry arithmetic telescopes, so n
//     batches collapse into one exact debit/credit.
//   - A proportional tap reads its *source* level every batch, so the
//     source's whole per-batch trajectory matters. Such "sensitive"
//     reserves — and every tap touching them — must be replayed batch by
//     batch. The replay still runs in creation order, so it is exact; it
//     merely skips the per-batch engine overhead.
//   - Starvation makes constant taps level-dependent too. The per-reserve
//     depletion horizon bounds how many batches can pass before any
//     source could fail to cover its worst-case outflow (ignoring all
//     inflows); within that horizon, no tap clamps and order between
//     telescoped and replayed taps is irrelevant.
//
// The topological pass is the sensitive-set computation: frac-tap chains
// (a proportional tap whose source is itself fed by a proportional tap)
// resolve naturally, because every link of the chain marks its source
// sensitive and is itself replayed in sequence order.

// horizonCap bounds the returned horizon so that per-tap totals
// (rate × dt × k + carry) can never overflow int64.
const horizonCap = math.MaxInt64 / 4

// HorizonBatches returns how many consecutive Flow(dt) batches are
// provably settleable in closed form from the graph's current state: the
// depletion horizon. Within the horizon no reserve can hit zero and no
// tap's draw can saturate (clamp to a dry source), even assuming every
// inflow stops. extraBatteryDrain is additional per-batch draw the
// caller will interleave with the batches (the kernel's baseline
// billing), charged against the battery's horizon.
//
// A zero horizon means the next batch must be replayed exactly (a source
// is near-dry, a proportional tap drains the battery while the caller
// interleaves its own battery draw, or the batch interval is too coarse
// for the no-clamp argument). The horizon is monotone: after settling j
// batches with no external mutation, the new horizon is at least the
// old one minus j — minus at most one further batch of slack for the
// sub-µJ carry drift of the caller's interleaved drain.
func (g *Graph) HorizonBatches(dt units.Time, extraBatteryDrain units.Power) int64 {
	return g.planSettle(dt, extraBatteryDrain)
}

// FlowWalks returns the number of batches the graph executed as
// per-batch tap walks: full Flow calls (the kernel's flow task, or
// settlement's outside-horizon fallback) plus batches whose sensitive
// subset was replayed in sequence order inside a settled chunk. A
// change that flips taps from telescoped to replayed — a new
// proportional tap marking a shared reserve sensitive — shows up here.
func (g *Graph) FlowWalks() int64 { return g.flowWalks }

// SettledBatches returns the number of batches advanced by closed-form
// settlement chunks. A batch settled in a chunk that also replayed
// sensitive taps counts in both SettledBatches and FlowWalks.
func (g *Graph) SettledBatches() int64 { return g.settledBatches }

// ReserveTapped reports whether any active tap has r as an endpoint.
// The kernel uses it to refuse closed-form device settlement when a
// device's private billing reserve participates in flows (settlement
// reorders device billing against tap batches, which is only exact when
// the two touch disjoint reserves apart from the clamp-guarded battery).
func (g *Graph) ReserveTapped(r *Reserve) bool {
	for _, t := range g.active {
		if t.src == r || t.sink == r {
			return true
		}
	}
	return false
}

// ReserveDrainedByTap reports whether any active tap has r as its
// source. A tap's draw clamps to (and a proportional tap reads) its
// source level, so reordering other debits against flows is only exact
// for reserves no tap drains; taps merely feeding r credit
// level-independent amounts, which commute with debt-allowed debits
// (the SettleSafe argument in internal/msm).
func (g *Graph) ReserveDrainedByTap(r *Reserve) bool {
	for _, t := range g.active {
		if t.src == r {
			return true
		}
	}
	return false
}

// TapsInto appends every active tap whose sink is r to dst (reusing its
// capacity) and returns the extended slice, in deterministic creation
// order. Closed-form sweep settlement (netd's pool-crossing horizon)
// uses it to enumerate a waiter's inflow taps; the sums it computes are
// order-independent, but determinism keeps replay byte-stable anyway.
func (g *Graph) TapsInto(r *Reserve, dst []*Tap) []*Tap {
	for _, t := range g.active {
		if t.sink == r {
			dst = append(dst, t)
		}
	}
	return dst
}

// SettleFlows advances the graph through n consecutive Flow(dt) batches,
// byte-identical to n sequential Flow calls with no interleaved graph
// mutation. Batches inside the depletion horizon settle in closed form
// (telescoped constant taps, sequence-ordered replay of sensitive taps);
// batches outside it fall back to exact per-batch walks. After each
// settled chunk of k batches, interleave(k) — if non-nil — is invoked so
// the caller can apply its own per-batch accounting (baseline billing)
// at matching granularity; extraBatteryDrain must bound that accounting's
// per-batch battery draw so the horizon covers it.
func (g *Graph) SettleFlows(dt units.Time, n int64, extraBatteryDrain units.Power, interleave func(batches int64)) {
	for n > 0 {
		k := g.settleChunk(dt, n, extraBatteryDrain)
		if k == 0 {
			g.Flow(dt)
			k = 1
		}
		if interleave != nil {
			interleave(k)
		}
		n -= k
	}
}

// planSettle partitions the active set for one settlement chunk and
// returns the depletion horizon. It fills g.settleTelescope (constant
// taps whose endpoints are level-trajectory-independent), g.settleReplay
// (proportional taps plus any tap touching a sensitive reserve, in
// creation order) and g.settleSrcs (reserves with per-batch outflow,
// carrying worst-case drain sums).
func (g *Graph) planSettle(dt units.Time, extra units.Power) int64 {
	if dt <= 0 {
		return 0
	}
	if g.flowHook != nil {
		return 0
	}
	g.settleEpoch++
	epoch := g.settleEpoch
	hasProp := false
	for _, t := range g.active {
		if t.kind == TapProportional {
			hasProp = true
			t.src.sensitiveMark = epoch
		}
	}
	if hasProp && dt > units.Second {
		// For dt ≤ 1 s a proportional tap can never overdraw its source
		// (want ≤ level × dt/1s); coarser batches void that argument.
		return 0
	}
	if extra > 0 && g.battery.sensitiveMark == epoch {
		return 0
	}

	g.settleTelescope = g.settleTelescope[:0]
	g.settleReplay = g.settleReplay[:0]
	g.settleSrcs = g.settleSrcs[:0]
	for _, t := range g.active {
		if t.kind == TapProportional {
			g.settleReplay = append(g.settleReplay, t)
			continue
		}
		if int64(t.rate) > horizonCap/int64(dt) {
			return 0
		}
		// Sensitive reserves need no depletion bound: every tap touching
		// them is replayed batch by batch in sequence order, so their
		// whole trajectory — clamping included — is exact by
		// construction. (The battery is the one exception, handled by
		// the extra-drain rejection above.)
		if t.src.sensitiveMark != epoch {
			g.addSettleDrain(t.src, epoch, int64(t.rate)*int64(dt), t.carry)
		}
		if t.src.sensitiveMark == epoch || t.sink.sensitiveMark == epoch {
			g.settleReplay = append(g.settleReplay, t)
		} else {
			g.settleTelescope = append(g.settleTelescope, t)
		}
	}
	if extra > 0 {
		if int64(extra) > horizonCap/int64(dt) {
			return 0
		}
		// The caller's own carry is invisible here; budget a full one.
		g.addSettleDrain(g.battery, epoch, int64(extra)*int64(dt), 999)
	}

	horizon := int64(horizonCap)
	for _, r := range g.settleSrcs {
		if r.settleDrain <= 0 {
			continue
		}
		if r.settleDrain >= horizonCap {
			return 0
		}
		// Worst-case outflow over k batches, in µJ·10⁻³: k × Σ(rate·dt)
		// plus each draining tap's current carry (the exact telescoped
		// bound: Σ ⌊(rate·dt·k + carry)/1000⌋ ≤ (k·Σrate·dt + Σcarry)/1000).
		// Using the live carries instead of a fixed per-tap slack makes
		// the horizon exactly monotone under settlement.
		avail := int64(r.level)
		if avail <= 0 {
			return 0
		}
		if avail > horizonCap/1000 {
			avail = horizonCap
		} else {
			avail *= 1000
		}
		avail -= r.settleCarry
		if avail < r.settleDrain {
			return 0
		}
		if k := avail / r.settleDrain; k < horizon {
			horizon = k
		}
	}
	return horizon
}

// addSettleDrain accumulates one tap's (or the caller's) per-batch
// worst-case outflow onto its source reserve for the current planning
// epoch, registering the reserve as a drain source on first touch.
func (g *Graph) addSettleDrain(r *Reserve, epoch uint64, perBatchScaled, carry int64) {
	if r.settleMark != epoch {
		r.settleMark = epoch
		r.settleDrain = 0
		r.settleCarry = 0
		g.settleSrcs = append(g.settleSrcs, r)
	}
	// Saturating add: several near-cap rates on one source must not
	// wrap the drain sum negative (the horizon loop treats a
	// saturated drain as "replay only").
	if r.settleDrain > horizonCap-perBatchScaled {
		r.settleDrain = horizonCap
	} else {
		r.settleDrain += perBatchScaled
	}
	r.settleCarry += carry
}

// settleChunk settles up to n batches in closed form, returning how many
// it advanced (0 when the horizon demands an exact per-batch walk). The
// chunk is exact: within the horizon no tap can clamp, so the telescoped
// constant taps commute with the sequence-ordered replay of the
// sensitive set.
func (g *Graph) settleChunk(dt units.Time, n int64, extra units.Power) int64 {
	k := g.planSettle(dt, extra)
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	for _, t := range g.settleTelescope {
		total := int64(t.rate)*int64(dt)*k + t.carry
		moved := units.Energy(total / 1000)
		t.carry = total % 1000
		if moved > 0 {
			t.src.debit(moved)
			t.sink.credit(moved)
			t.stats.Moved += moved
		}
	}
	if len(g.settleReplay) > 0 {
		for i := int64(0); i < k; i++ {
			for _, t := range g.settleReplay {
				t.flow(dt)
			}
		}
		g.flowWalks += k
	}
	g.settledBatches += k
	return k
}
