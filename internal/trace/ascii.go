package trace

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// PlotConfig controls ASCII rendering.
type PlotConfig struct {
	// Width is the number of time buckets (columns). Default 72.
	Width int
	// Height is the number of value rows. Default 12.
	Height int
	// MaxV fixes the top of the value axis; 0 means autoscale.
	MaxV int64
}

// Plot renders the series as a crude ASCII chart, one column per time
// bucket (bucket value = mean of samples in the bucket). It exists so
// cmd/cinder-sim can show the figures' shapes in a terminal; the CSV
// output is the precise artifact.
func Plot(s *Series, cfg PlotConfig) string {
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 12
	}
	pts := s.Points()
	if len(pts) == 0 {
		return fmt.Sprintf("%s: (empty)\n", s.Name())
	}
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	if t1 == t0 {
		t1 = t0 + 1
	}
	span := t1 - t0

	// Bucketize.
	sums := make([]float64, cfg.Width)
	counts := make([]int, cfg.Width)
	for _, p := range pts {
		b := int(int64(p.T-t0) * int64(cfg.Width) / int64(span+1))
		if b >= cfg.Width {
			b = cfg.Width - 1
		}
		sums[b] += float64(p.V)
		counts[b]++
	}
	vals := make([]float64, cfg.Width)
	var maxV float64
	for i := range vals {
		if counts[i] > 0 {
			vals[i] = sums[i] / float64(counts[i])
		}
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	if cfg.MaxV > 0 {
		maxV = float64(cfg.MaxV)
	}
	if maxV == 0 {
		maxV = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s], %v → %v, max %.0f\n", s.Name(), s.Unit(), t0, t1, maxV)
	for row := cfg.Height; row >= 1; row-- {
		threshold := maxV * float64(row) / float64(cfg.Height)
		lower := maxV * float64(row-1) / float64(cfg.Height)
		b.WriteString("|")
		for col := 0; col < cfg.Width; col++ {
			switch {
			case counts[col] == 0:
				b.WriteByte(' ')
			case vals[col] >= threshold:
				b.WriteByte('#')
			case vals[col] > lower:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", cfg.Width) + "\n")
	return b.String()
}

// Sparkline renders the series as a single line of block characters,
// handy in test failure messages.
func Sparkline(s *Series, width int) string {
	if width <= 0 {
		width = 60
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	pts := s.Points()
	if len(pts) == 0 {
		return "(empty)"
	}
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	span := t1 - t0
	if span == 0 {
		span = 1
	}
	sums := make([]float64, width)
	counts := make([]int, width)
	var maxV float64
	for _, p := range pts {
		b := int(int64(p.T-t0) * int64(width) / int64(span+1))
		if b >= width {
			b = width - 1
		}
		sums[b] += float64(p.V)
		counts[b]++
	}
	out := make([]rune, width)
	vals := make([]float64, width)
	for i := range vals {
		if counts[i] > 0 {
			vals[i] = sums[i] / float64(counts[i])
			if vals[i] > maxV {
				maxV = vals[i]
			}
		}
	}
	for i := range out {
		if maxV <= 0 || counts[i] == 0 {
			out[i] = blocks[0]
			continue
		}
		idx := int(vals[i] / maxV * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		out[i] = blocks[idx]
	}
	return string(out)
}

// StackedMeans renders a compact table of per-window means for several
// series, the textual equivalent of the paper's stacked plots (Fig. 9,
// Fig. 12). Windows are [i·win, (i+1)·win).
func StackedMeans(series []*Series, win units.Time, from, to units.Time) string {
	var b strings.Builder
	b.WriteString("window_start_s")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s_%s", s.Name(), s.Unit())
	}
	b.WriteString(",sum\n")
	for t := from; t < to; t += win {
		fmt.Fprintf(&b, "%.1f", t.Seconds())
		var sum float64
		for _, s := range series {
			m := s.MeanOver(t, t+win)
			sum += m
			fmt.Fprintf(&b, ",%.0f", m)
		}
		fmt.Fprintf(&b, ",%.0f\n", sum)
	}
	return b.String()
}
