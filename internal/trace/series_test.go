package trace

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func s(points ...Point) *Series {
	sr := NewSeries("test", "µW")
	for _, p := range points {
		sr.Add(p.T, p.V)
	}
	return sr
}

func TestAddAndLen(t *testing.T) {
	sr := s(Point{0, 1}, Point{10, 2}, Point{20, 3})
	if sr.Len() != 3 {
		t.Fatalf("Len = %d", sr.Len())
	}
	if sr.Last() != (Point{20, 3}) {
		t.Fatalf("Last = %v", sr.Last())
	}
}

func TestAddRejectsBackwardsTime(t *testing.T) {
	sr := s(Point{10, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Add did not panic")
		}
	}()
	sr.Add(5, 2)
}

func TestAt(t *testing.T) {
	sr := s(Point{10, 100}, Point{20, 200}, Point{30, 300})
	cases := []struct {
		t    units.Time
		want int64
	}{
		{5, 0}, {10, 100}, {15, 100}, {20, 200}, {29, 200}, {30, 300}, {99, 300},
	}
	for _, c := range cases {
		if got := sr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	sr := s(Point{0, 10}, Point{10, 30}, Point{20, 20})
	st := sr.Summarize()
	if st.N != 3 || st.Min != 10 || st.Max != 30 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Mean != 20 {
		t.Fatalf("Mean = %f", st.Mean)
	}
	if st.First != (Point{0, 10}) || st.Last != (Point{20, 20}) {
		t.Fatalf("First/Last = %v/%v", st.First, st.Last)
	}
	empty := NewSeries("e", "x").Summarize()
	if empty.N != 0 {
		t.Fatal("empty Summarize has samples")
	}
}

func TestWindowAndMeanOver(t *testing.T) {
	sr := s(Point{0, 10}, Point{10, 20}, Point{20, 30}, Point{30, 40})
	w := sr.Window(10, 30)
	if len(w) != 2 || w[0].V != 20 || w[1].V != 30 {
		t.Fatalf("Window = %v", w)
	}
	if m := sr.MeanOver(10, 30); m != 25 {
		t.Fatalf("MeanOver = %f", m)
	}
	if m := sr.MeanOver(100, 200); m != 0 {
		t.Fatalf("empty MeanOver = %f", m)
	}
}

func TestIntegrate(t *testing.T) {
	// Sample-and-hold: 10 µW for 10 ms, then 20 µW for 10 ms.
	sr := s(Point{0, 10}, Point{10, 20}, Point{20, 0})
	got := sr.Integrate(0, 20)
	want := int64(10*10 + 20*10)
	if got != want {
		t.Fatalf("Integrate = %d, want %d", got, want)
	}
	// Partial window clips the first sample.
	got = sr.Integrate(5, 15)
	want = int64(10*5 + 20*5)
	if got != want {
		t.Fatalf("partial Integrate = %d, want %d", got, want)
	}
}

func TestTimeAbove(t *testing.T) {
	sr := s(Point{0, 5}, Point{10, 50}, Point{30, 5}, Point{40, 50})
	// Above 10: [10,30) plus [40, end-of-window).
	got := sr.TimeAbove(10, 0, 50)
	if got != 30 {
		t.Fatalf("TimeAbove = %v, want 30 ms", got)
	}
}

func TestCSV(t *testing.T) {
	sr := s(Point{0, 1}, Point{200, 2})
	csv := sr.CSV()
	if !strings.HasPrefix(csv, "time_ms,test_µW\n") {
		t.Fatalf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "200,2\n") {
		t.Fatalf("CSV body: %q", csv)
	}
}

func TestPlotAndSparklineDoNotPanic(t *testing.T) {
	sr := NewSeries("p", "µW")
	for i := 0; i < 500; i++ {
		v := int64(i % 100)
		sr.Add(units.Time(i*10), v)
	}
	out := Plot(sr, PlotConfig{Width: 40, Height: 8})
	if !strings.Contains(out, "#") {
		t.Fatalf("Plot produced no marks:\n%s", out)
	}
	sl := Sparkline(sr, 40)
	if len([]rune(sl)) != 40 {
		t.Fatalf("Sparkline width = %d", len([]rune(sl)))
	}
	if Plot(NewSeries("e", "x"), PlotConfig{}) == "" {
		t.Fatal("empty Plot returned nothing")
	}
	if Sparkline(NewSeries("e", "x"), 10) != "(empty)" {
		t.Fatal("empty Sparkline wrong")
	}
}

func TestStackedMeans(t *testing.T) {
	a := NewSeries("a", "µW")
	b := NewSeries("b", "µW")
	for i := 0; i < 100; i++ {
		a.Add(units.Time(i*100), 10)
		b.Add(units.Time(i*100), 20)
	}
	out := StackedMeans([]*Series{a, b}, units.Second, 0, 2*units.Second)
	if !strings.Contains(out, "0.0,10,20,30") {
		t.Fatalf("StackedMeans:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 windows
		t.Fatalf("StackedMeans lines = %d:\n%s", len(lines), out)
	}
}
