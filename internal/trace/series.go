// Package trace records and summarizes time series produced by the
// simulation: power traces, reserve levels, transfer sizes. Experiment
// runners use it to regenerate the paper's figures as data (CSV /
// aligned columns) and quick ASCII plots.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/snap"
	"repro/internal/units"
)

// Point is one sample: a simulated timestamp and a value in the series'
// unit.
type Point struct {
	T units.Time
	V int64
}

// Series is an append-only time series with a name and unit.
type Series struct {
	name   string
	unit   string
	points []Point
}

// NewSeries returns an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{name: name, unit: unit}
}

// Reset empties the series in place, keeping its backing array, so a
// recycled producer (the fleet runner reusing a radio) starts from the
// state NewSeries would produce.
func (s *Series) Reset(name, unit string) {
	s.name = name
	s.unit = unit
	s.points = s.points[:0]
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Rename changes the series name (experiments relabel generic traces to
// figure-specific names before reporting).
func (s *Series) Rename(name string) { s.name = name }

// Unit returns the unit string.
func (s *Series) Unit() string { return s.unit }

// Add appends a sample. Timestamps must be non-decreasing.
func (s *Series) Add(t units.Time, v int64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("trace: %s: timestamp %v before %v", s.name, t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying samples (not a copy; treat as
// read-only).
func (s *Series) Points() []Point { return s.points }

// At returns the most recent value at or before t, or 0 if none.
func (s *Series) At(t units.Time) int64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// Last returns the final sample, or a zero Point for an empty series.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Snapshot serializes the series. Timestamps are delta-encoded —
// samples are non-decreasing in time, so the deltas are small
// non-negative varints and a dense series costs a few bytes per point.
func (s *Series) Snapshot(w *snap.Writer) {
	w.Section("series")
	w.String(s.name)
	w.String(s.unit)
	w.U64(uint64(len(s.points)))
	var prevT units.Time
	for _, p := range s.points {
		w.U64(uint64(p.T - prevT))
		w.I64(p.V)
		prevT = p.T
	}
}

// Restore overlays a snapshot onto the series, validating that it was
// taken from a series of the same name (a mismatch means the restore
// plumbing wired a snapshot to the wrong producer).
func (s *Series) Restore(r *snap.Reader) error {
	r.Section("series")
	name := r.String()
	unit := r.String()
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if name != s.name {
		return fmt.Errorf("trace: restore: snapshot of series %q into series %q", name, s.name)
	}
	s.unit = unit
	s.points = s.points[:0]
	var t units.Time
	for i := 0; i < n; i++ {
		t += units.Time(r.U64())
		v := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		s.points = append(s.points, Point{T: t, V: v})
	}
	return nil
}

// Stats summarizes a series over its full extent.
type Stats struct {
	N        int
	Min, Max int64
	Mean     float64
	First    Point
	Last     Point
}

// Summarize computes summary statistics. An empty series yields a zero
// Stats.
func (s *Series) Summarize() Stats {
	if len(s.points) == 0 {
		return Stats{}
	}
	st := Stats{
		N:     len(s.points),
		Min:   s.points[0].V,
		Max:   s.points[0].V,
		First: s.points[0],
		Last:  s.points[len(s.points)-1],
	}
	var sum float64
	for _, p := range s.points {
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
		sum += float64(p.V)
	}
	st.Mean = sum / float64(st.N)
	return st
}

// Window returns the samples with from ≤ T < to.
func (s *Series) Window(from, to units.Time) []Point {
	lo := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= from })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= to })
	return s.points[lo:hi]
}

// MeanOver returns the mean value of samples in [from, to), or 0 if the
// window is empty.
func (s *Series) MeanOver(from, to units.Time) float64 {
	pts := s.Window(from, to)
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += float64(p.V)
	}
	return sum / float64(len(pts))
}

// Integrate returns the trapezoid-free (sample-and-hold) integral of
// the series over [from, to): each sample's value is held until the
// next sample. The result unit is value-unit × milliseconds.
func (s *Series) Integrate(from, to units.Time) int64 {
	var total int64
	pts := s.points
	for i, p := range pts {
		start := p.T
		if start < from {
			start = from
		}
		end := to
		if i+1 < len(pts) && pts[i+1].T < to {
			end = pts[i+1].T
		}
		if end > start && p.T < to && (i+1 >= len(pts) || pts[i+1].T > from) {
			total += p.V * int64(end-start)
		}
	}
	return total
}

// TimeAbove returns the total duration (sample-and-hold) the series is
// strictly above the threshold within [from, to).
func (s *Series) TimeAbove(threshold int64, from, to units.Time) units.Time {
	var total units.Time
	pts := s.points
	for i, p := range pts {
		if p.V <= threshold {
			continue
		}
		start := p.T
		if start < from {
			start = from
		}
		end := to
		if i+1 < len(pts) && pts[i+1].T < to {
			end = pts[i+1].T
		}
		if end > start {
			total += end - start
		}
	}
	return total
}

// CSV renders the series as "ms,value" lines with a header.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time_ms,%s_%s\n", s.name, s.unit)
	for _, p := range s.points {
		fmt.Fprintf(&b, "%d,%d\n", int64(p.T), p.V)
	}
	return b.String()
}
