package kernel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/sched"
	"repro/internal/units"
)

// Errors returned by gate operations.
var (
	ErrNoGate = errors.New("kernel: no such gate")
)

// Call is the context a gate service receives. The calling thread has
// "entered the daemon's address space" (§5.5.1); all billing helpers
// resolve to the caller's reserve under BillCaller semantics and to the
// daemon's under BillDaemon (the Cinder-Linux mis-attribution of §7.1).
type Call struct {
	// Caller is the thread that invoked the gate.
	Caller *sched.Thread
	// Now is the simulated time of the call.
	Now units.Time
	// Args carries the request payload.
	Args any

	gate *Gate
}

// BillTo returns the reserve that pays for work performed during this
// call.
func (c *Call) BillTo() *core.Reserve {
	if c.gate.kernel.billing == BillDaemon && c.gate.daemonReserve != nil {
		return c.gate.daemonReserve
	}
	return c.Caller.ActiveReserve()
}

// BillPriv returns the privileges billing operations should use: the
// caller's own privileges, augmented with any the gate embeds (a gate,
// like a tap, may carry the daemon's privileges so it can debit the
// daemon-side pool).
func (c *Call) BillPriv() label.Priv {
	if c.gate.kernel.billing == BillDaemon {
		return c.gate.daemonPriv
	}
	return c.Caller.Priv().Union(c.gate.daemonPriv)
}

// Service is a gate's handler. It runs synchronously in the calling
// thread's context and returns a reply value.
type Service func(call *Call) (any, error)

// Gate is a protected control-transfer entry point (§3.1, §5.5.1). It
// is a kernel object: deleting its container revokes the service.
type Gate struct {
	kobj.Base
	kernel        *Kernel
	name          string
	service       Service
	daemonPriv    label.Priv
	daemonReserve *core.Reserve
	calls         int64
	dead          bool
}

// Name returns the gate's name.
func (g *Gate) Name() string { return g.name }

// Calls returns the number of completed invocations.
func (g *Gate) Calls() int64 { return g.calls }

// RegisterGate creates a gate named name in parent. daemonPriv are the
// privileges the daemon embeds in the gate (used for daemon-side pools);
// daemonReserve, which may be nil, is the daemon's own reserve — the
// billing target under BillDaemon semantics.
func (k *Kernel) RegisterGate(parent *kobj.Container, name string, lbl label.Label, daemonPriv label.Priv, daemonReserve *core.Reserve, svc Service) (*Gate, error) {
	if _, exists := k.gates[name]; exists {
		return nil, fmt.Errorf("kernel: gate %q already registered", name)
	}
	g := &Gate{
		kernel:        k,
		name:          name,
		service:       svc,
		daemonPriv:    daemonPriv,
		daemonReserve: daemonReserve,
	}
	g.OnRelease(func() {
		g.dead = true
		delete(k.gates, g.name)
	})
	k.Table.Register(&g.Base, kobj.KindGate, lbl, parent, g)
	k.gates[name] = g
	return g, nil
}

// GateCall invokes the named gate on behalf of caller. The caller must
// be able to observe the gate object. The service runs synchronously —
// the calling thread executes the daemon's code, so CPU billing
// continues against the caller's reserve automatically (it is the same
// scheduled thread), and the service's explicit device billing goes to
// Call.BillTo.
func (k *Kernel) GateCall(name string, caller *sched.Thread, args any) (any, error) {
	g, ok := k.gates[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoGate, name)
	}
	if g.dead {
		return nil, fmt.Errorf("%w: %q (revoked)", ErrNoGate, name)
	}
	if !caller.Priv().CanObserve(g.Label()) {
		return nil, fmt.Errorf("%w: enter gate %q", core.ErrAccess, name)
	}
	call := &Call{Caller: caller, Now: k.Now(), Args: args, gate: g}
	reply, err := g.service(call)
	if err == nil {
		g.calls++
	}
	return reply, err
}

// Gates returns the names of live gates (for diagnostics).
func (k *Kernel) Gates() []string {
	out := make([]string, 0, len(k.gates))
	for name := range k.gates {
		out = append(out, name)
	}
	return out
}
