package kernel

import (
	"fmt"
	"testing"

	"repro/internal/label"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// busyScenario assembles a kernel whose busy path exercises every
// settlement surface: an active constant tap (an energy-wrapped app), a
// proportional backward tap, periodic radio traffic (ramp → plateau →
// sleep cycles with fund billing), a thread that alternates compute and
// sleep, and a backlight toggle landing exactly on a batch boundary.
// It returns the kernel and the radio for post-run inspection.
func busyScenario(mode sim.Mode, settle SettleMode) (*Kernel, *radio.Radio) {
	k := New(Config{Seed: 11, EngineMode: mode, Settle: settle})
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
	k.AddDevice(r)

	app := k.CreateReserve(k.Root, "app", label.Public())
	tap, err := k.CreateTap(k.Root, "app-tap", k.KernelPriv(), k.Battery(), app, label.Public())
	if err != nil {
		panic(err)
	}
	if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(79)); err != nil {
		panic(err)
	}
	back, err := k.CreateTap(k.Root, "app-back", k.KernelPriv(), app, k.Battery(), label.Public())
	if err != nil {
		panic(err)
	}
	if err := back.SetFrac(k.KernelPriv(), 20_000); err != nil {
		panic(err)
	}

	// Poll-ish radio traffic: an exchange every 13 s (idle timeout is
	// 20 s, so the radio cycles sleep → ramp → plateau → sleep).
	for at := units.Time(1500); at < 60*units.Second; at += 13 * units.Second {
		at := at
		k.Eng.At(at, func(e *sim.Engine) {
			r.Exchange(e.Now(), 300, 4096, app, k.KernelPriv(), nil)
		})
	}

	// A thread that computes for a while, then sleeps in long stretches.
	var next units.Time
	k.Spawn(k.Root, "worker", k.KernelPriv(), sched.RunnerFunc(func(now units.Time, th *sched.Thread) {
		if now < next {
			th.Sleep(next)
			return
		}
		next = now + 7*units.Second
	}), app)

	// Backlight flips exactly on a batch boundary while parked.
	k.Eng.At(20*units.Second, func(*sim.Engine) { k.SetBacklight(true) })
	k.Eng.At(31*units.Second, func(*sim.Engine) { k.SetBacklight(false) })
	return k, r
}

// busySnapshot captures every externally observable quantity.
func busySnapshot(k *Kernel, r *radio.Radio) string {
	lvl, _ := k.Battery().Level(k.KernelPriv())
	rs := r.Stats()
	return fmt.Sprintf("consumed=%v battery=%v busy=%d idle=%d util=%.6f radio{act=%d state=%v statE=%v dataE=%v activeT=%v} taps=%d",
		k.Consumed(), lvl, k.Sched.BusyTicks(), k.Sched.IdleTicks(), k.Sched.Utilization(),
		rs.Activations, r.State(), rs.StateEnergy, rs.DataEnergy, rs.ActiveTime,
		k.Graph.ActiveTapCount())
}

// TestBusySettlementModeEquivalence is the kernel-level three-way
// differential: the busy scenario must produce identical observable
// state under fixed-tick, per-batch next-event, and closed-form
// settlement — at every Run boundary, including short odd-length Runs
// whose entry instants are re-stepped.
func TestBusySettlementModeEquivalence(t *testing.T) {
	type cfg struct {
		name   string
		mode   sim.Mode
		settle SettleMode
	}
	configs := []cfg{
		{"fixed-tick", sim.ModeFixedTick, SettlePerBatch},
		{"per-batch", sim.ModeNextEvent, SettlePerBatch},
		{"closed-form", sim.ModeNextEvent, SettleClosedForm},
	}
	spans := []units.Time{
		3 * units.Second, 7*units.Second + 3, 10 * units.Second,
		til(21*units.Second, 20*units.Second+3), 25 * units.Second,
	}
	var ref []string
	for ci, c := range configs {
		k, r := busyScenario(c.mode, c.settle)
		var snaps []string
		for _, d := range spans {
			k.Run(d)
			snaps = append(snaps, busySnapshot(k, r))
		}
		if ci == 0 {
			ref = snaps
			continue
		}
		for i := range snaps {
			if snaps[i] != ref[i] {
				t.Errorf("%s diverges from fixed-tick after span %d:\n  fixed-tick: %s\n  %s: %s",
					c.name, i, ref[i], c.name, snaps[i])
			}
		}
	}
}

// til is a tiny helper returning b-a... spans are durations; this keeps
// the odd-length span readable.
func til(b, a units.Time) units.Time { return b - a }

// TestBusyTapFastPath is the busy-path regression: a device with an
// active constant tap and a sleeping thread must execute far fewer
// instants under closed-form settlement than under per-batch flows —
// PR 1 gave this device its idle fast path; settlement gives it the
// busy one.
func TestBusyTapFastPath(t *testing.T) {
	steps := func(settle SettleMode) uint64 {
		k := New(Config{Seed: 5, EngineMode: sim.ModeNextEvent, Settle: settle})
		app := k.CreateReserve(k.Root, "app", label.Public())
		tap, err := k.CreateTap(k.Root, "tap", k.KernelPriv(), k.Battery(), app, label.Public())
		if err != nil {
			t.Fatal(err)
		}
		if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(79)); err != nil {
			t.Fatal(err)
		}
		k.Run(10 * units.Minute)
		return k.Eng.Steps()
	}
	per, closed := steps(SettlePerBatch), steps(SettleClosedForm)
	if closed*20 >= per {
		t.Fatalf("closed-form executed %d instants vs %d per-batch — busy fast path not engaged (want ≥ 20x fewer)", closed, per)
	}
	// And the accounting must agree exactly.
	consumed := func(settle SettleMode) units.Energy {
		k := New(Config{Seed: 5, EngineMode: sim.ModeNextEvent, Settle: settle})
		app := k.CreateReserve(k.Root, "app", label.Public())
		tap, _ := k.CreateTap(k.Root, "tap", k.KernelPriv(), k.Battery(), app, label.Public())
		if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(79)); err != nil {
			t.Fatal(err)
		}
		k.Run(10 * units.Minute)
		lvl, _ := app.Level(k.KernelPriv())
		return k.Consumed()*1_000_000 + lvl%1_000_000 // fold both into one comparand
	}
	if a, b := consumed(SettlePerBatch), consumed(SettleClosedForm); a != b {
		t.Fatalf("accounting diverges: per-batch %d vs closed-form %d", a, b)
	}
}

// TestDyingDeviceSettlementEquivalence drives a tiny battery through
// taps, radio draw and baseline billing to exhaustion: the clamped
// partial-drain endgame takes the exact-replay path and must match the
// fixed-tick engine microjoule for microjoule.
func TestDyingDeviceSettlementEquivalence(t *testing.T) {
	run := func(mode sim.Mode, settle SettleMode) string {
		k := New(Config{Seed: 3, EngineMode: mode, Settle: settle,
			BatteryCapacity: 12 * units.Joule})
		r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
		k.AddDevice(r)
		app := k.CreateReserve(k.Root, "app", label.Public())
		tap, err := k.CreateTap(k.Root, "tap", k.KernelPriv(), k.Battery(), app, label.Public())
		if err != nil {
			t.Fatal(err)
		}
		if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(200)); err != nil {
			t.Fatal(err)
		}
		k.Eng.At(2*units.Second, func(e *sim.Engine) {
			r.Exchange(e.Now(), 300, 2048, app, k.KernelPriv(), nil)
		})
		// 12 J at ≈0.9 W plus a 9.5 J activation: dead well inside 20 s.
		var snaps []string
		for i := 0; i < 10; i++ {
			k.Run(2 * units.Second)
			snaps = append(snaps, busySnapshot(k, r))
		}
		return fmt.Sprint(snaps)
	}
	fixed := run(sim.ModeFixedTick, SettlePerBatch)
	closed := run(sim.ModeNextEvent, SettleClosedForm)
	if fixed != closed {
		t.Fatalf("dying device diverges:\nfixed-tick:  %s\nclosed-form: %s", fixed, closed)
	}
}
