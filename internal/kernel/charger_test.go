package kernel

import (
	"fmt"
	"testing"

	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// chargeScenario assembles a kernel whose battery goes non-monotone
// through every charger regime: discharge from full, a fast-charge
// window that hits the full-battery clamp (top-off surplus discarded),
// an off-quantum unplug (partial-tail credit with sub-µJ carry), a slow
// trickle window, a second off-quantum unplug, and a final discharge to
// depletion. A constant app tap drains alongside the baseline so
// credits always race live outflows.
func chargeScenario(mode sim.Mode, settle SettleMode, chargerSettle SettleMode) *Kernel {
	k := New(Config{Seed: 9, EngineMode: mode, Settle: settle,
		BatteryCapacity: 40 * units.Joule})
	app := k.CreateReserve(k.Root, "app", label.Public())
	tap, err := k.CreateTap(k.Root, "app-tap", k.KernelPriv(), k.Battery(), app, label.Public())
	if err != nil {
		panic(err)
	}
	if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(150)); err != nil {
		panic(err)
	}
	c := k.AttachCharger(ChargerConfig{Settle: chargerSettle})
	k.Eng.At(10*units.Second, func(*sim.Engine) { c.Plug(power.ACCharger()) })
	k.Eng.At(73*units.Second+400, func(*sim.Engine) { c.Unplug() })
	k.Eng.At(100*units.Second, func(*sim.Engine) { c.Plug(power.USBCharger()) })
	k.Eng.At(130*units.Second+7, func(*sim.Engine) { c.Unplug() })
	return k
}

// chargeSnapshot captures every canonically observable quantity. The
// charger's SettledCharges counter is deliberately absent: it counts
// boundaries accounted in closed form, which per-quantum runs
// legitimately report as zero.
func chargeSnapshot(k *Kernel) string {
	lvl, _ := k.Battery().Level(k.KernelPriv())
	cs := k.Charger().Stats()
	return fmt.Sprintf("battery=%v consumed=%v recharged=%v clamped=%v plugs=%d conserr=%v",
		lvl, k.Consumed(), cs.Recharged, cs.Clamped, cs.Plugs, k.Graph.ConservationError())
}

// TestChargerSettlementModeEquivalence is the charger's three-way
// differential: the non-monotone battery trajectory must be identical
// under fixed-tick, per-quantum next-event, and closed-form charge
// settlement — at every Run boundary, including odd-length spans that
// land mid-quantum and a final span that drains the battery to
// depletion after its last recharge.
func TestChargerSettlementModeEquivalence(t *testing.T) {
	type cfg struct {
		name    string
		mode    sim.Mode
		settle  SettleMode
		charger SettleMode
	}
	configs := []cfg{
		{"fixed-tick", sim.ModeFixedTick, SettlePerBatch, SettlePerBatch},
		{"per-quantum", sim.ModeNextEvent, SettleClosedForm, SettlePerBatch},
		{"closed-form", sim.ModeNextEvent, SettleClosedForm, SettleClosedForm},
	}
	spans := []units.Time{
		9 * units.Second, 4*units.Second + 3, 60 * units.Second,
		30*units.Second + 7, 96*units.Second + 990,
	}
	var ref []string
	for ci, c := range configs {
		k := chargeScenario(c.mode, c.settle, c.charger)
		var snaps []string
		for _, d := range spans {
			k.Run(d)
			snaps = append(snaps, chargeSnapshot(k))
		}
		if cs := k.Charger().Stats(); cs.Clamped == 0 {
			t.Fatalf("%s: scenario never hit the full-battery clamp — top-off regime untested", c.name)
		}
		if ci == 0 {
			ref = snaps
			continue
		}
		for i := range snaps {
			if snaps[i] != ref[i] {
				t.Errorf("%s diverges from fixed-tick after span %d:\n  fixed-tick:  %s\n  %s: %s",
					c.name, i, ref[i], c.name, snaps[i])
			}
		}
	}
}

// TestChargerClampNeverOvershoots pins the top-off regime: a charger
// left plugged on a full battery discards exactly the surplus, the
// level sits at capacity, and conservation (extended by Recharged)
// stays exact.
func TestChargerClampNeverOvershoots(t *testing.T) {
	k := New(Config{Seed: 2, EngineMode: sim.ModeNextEvent,
		BatteryCapacity: 20 * units.Joule})
	c := k.AttachCharger(ChargerConfig{})
	k.Eng.At(5*units.Second, func(*sim.Engine) { c.Plug(power.ACCharger()) })
	k.Run(2 * units.Minute)

	lvl, _ := k.Battery().Level(k.KernelPriv())
	if lvl > 20*units.Joule {
		t.Fatalf("battery overshot capacity: %v", lvl)
	}
	if lvl != 20*units.Joule {
		t.Fatalf("battery not topped off under a 4 W supply vs 699 mW draw: %v", lvl)
	}
	cs := c.Stats()
	if cs.Clamped <= 0 {
		t.Fatal("top-off discarded no surplus")
	}
	if err := k.Graph.ConservationError(); err != 0 {
		t.Fatalf("conservation error %v", err)
	}
	// The accepted energy is exactly the draw since plugging plus the
	// refill of the first 5 s of discharge — everything else clamped.
	if cs.Recharged != k.Consumed() {
		t.Fatalf("recharged %v != consumed %v on a run that starts and ends full",
			cs.Recharged, k.Consumed())
	}
}

// TestChargerUnpluggedIsFree pins the discharge-only invariant behind
// the frozen artifacts: attaching a charger that is never plugged
// executes no extra instants and credits nothing.
func TestChargerUnpluggedIsFree(t *testing.T) {
	steps := func(attach bool) (uint64, units.Energy) {
		k := New(Config{Seed: 4, EngineMode: sim.ModeNextEvent})
		if attach {
			k.AttachCharger(ChargerConfig{})
		}
		k.Run(10 * units.Minute)
		lvl, _ := k.Battery().Level(k.KernelPriv())
		return k.Eng.Steps(), lvl
	}
	bareSteps, bareLvl := steps(false)
	withSteps, withLvl := steps(true)
	if withSteps != bareSteps || withLvl != bareLvl {
		t.Fatalf("parked charger changed the run: steps %d→%d, battery %v→%v",
			bareSteps, withSteps, bareLvl, withLvl)
	}
}

// FuzzChargerSettle races randomized recharge windows against a
// randomized drain under per-quantum and closed-form settlement. The
// two modes must agree byte for byte, conservation must hold exactly,
// and the battery must never overshoot capacity — across mid-charge
// unplugs, clamped top-offs, and charges completing right at the
// depletion horizon.
func FuzzChargerSettle(f *testing.F) {
	f.Add(uint16(10), uint16(300), uint32(5_000), uint32(40_000), uint32(80_000), uint32(20_017), uint8(1))
	f.Add(uint16(55), uint16(900), uint32(0), uint32(120_000), uint32(120_001), uint32(1), uint8(0))
	f.Add(uint16(3), uint16(0), uint32(29_999), uint32(30_002), uint32(90_400), uint32(10_000), uint8(2))
	f.Fuzz(func(t *testing.T, capJ, drainMW uint16, plug1, dur1, plug2, dur2 uint32, supply uint8) {
		capacity := units.Energy(1+int64(capJ)%60) * units.Joule
		drain := units.Power(int64(drainMW)%1500) * 1000
		const horizon = 3 * units.Minute
		win := func(at, dur uint32) (units.Time, units.Time) {
			start := units.Time(int64(at) % int64(horizon))
			return start, start + 1 + units.Time(int64(dur)%int64(horizon))
		}
		p1, u1 := win(plug1, dur1)
		p2, u2 := win(plug2, dur2)
		if p2 <= u1 { // keep windows disjoint and ordered
			p2 += u1 - p2 + 1
			u2 += u1 - p2 + 1
		}
		chargers := []power.Charger{power.USBCharger(), power.ACCharger(), power.LaptopCharger()}
		sup := chargers[int(supply)%len(chargers)]

		run := func(chargerSettle SettleMode) string {
			k := New(Config{Seed: 31, EngineMode: sim.ModeNextEvent,
				BatteryCapacity: capacity})
			if drain > 0 {
				app := k.CreateReserve(k.Root, "app", label.Public())
				tap, err := k.CreateTap(k.Root, "app-tap", k.KernelPriv(), k.Battery(), app, label.Public())
				if err != nil {
					t.Fatal(err)
				}
				if err := tap.SetRate(k.KernelPriv(), drain); err != nil {
					t.Fatal(err)
				}
			}
			c := k.AttachCharger(ChargerConfig{Settle: chargerSettle})
			k.Eng.At(p1, func(*sim.Engine) { c.Plug(sup) })
			k.Eng.At(u1, func(*sim.Engine) { c.Unplug() })
			if p2 < horizon {
				k.Eng.At(p2, func(*sim.Engine) { c.Plug(sup) })
				k.Eng.At(u2, func(*sim.Engine) { c.Unplug() })
			}
			k.Run(horizon)
			lvl, _ := k.Battery().Level(k.KernelPriv())
			if lvl > capacity {
				t.Fatalf("battery %v overshot capacity %v", lvl, capacity)
			}
			if err := k.Graph.ConservationError(); err != 0 {
				t.Fatalf("conservation error %v (settle %v)", err, chargerSettle)
			}
			return chargeSnapshot(k)
		}
		per := run(SettlePerBatch)
		closed := run(SettleClosedForm)
		if per != closed {
			t.Fatalf("settle modes diverge:\n  per-quantum: %s\n  closed-form: %s", per, closed)
		}
	})
}
