package kernel

import (
	"fmt"
	"sort"

	"repro/internal/label"
	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements checkpoint/resume for the kernel: the snapshot
// orchestrates the kernel's own accounting scalars, the gate call
// counters, and the object table, graph, scheduler and engine sections.
// The engine section comes last on both paths so that Restore's
// structural overlays (which may brush component hooks) cannot perturb
// the task schedules the engine section restores.

// Snapshot serializes the kernel and everything it owns. Peripherals
// registered with AddDevice (radio, smdd) snapshot themselves — the
// fleet layer, which knows the device's composition, orchestrates them
// after the kernel section.
func (k *Kernel) Snapshot(w *snap.Writer) {
	w.Section("kernel")
	w.I64(k.baseCarry)
	w.Bool(k.backlight)
	w.U64(uint64(k.nextCat))
	w.I64(int64(k.lastSchedAt))
	w.I64(int64(k.baselinePending))
	w.I64(int64(k.tapsPending))
	w.I64(int64(k.devicesPending))
	names := make([]string, 0, len(k.gates))
	for name := range k.gates {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U64(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.I64(k.gates[name].calls)
	}
	k.Table.Snapshot(w)
	k.Graph.Snapshot(w)
	k.Sched.Snapshot(w)
	k.Eng.Snapshot(w)
	// The charger section rides after the engine: its Restore touches
	// only scalars, never task schedules. Presence is structural — a
	// rebuilt kernel attaches a charger iff the snapshotted one did,
	// because both run the same deterministic construction path.
	w.Bool(k.charger != nil)
	if k.charger != nil {
		k.charger.Snapshot(w)
	}
}

// Restore overlays a snapshot onto a freshly rebuilt kernel (same
// config, same construction path). Every structural mismatch — a gate
// the rebuild did not register, a divergent object census, a reserve or
// thread list drift — fails loudly through the component restores.
func (k *Kernel) Restore(r *snap.Reader) error {
	r.Section("kernel")
	baseCarry := r.I64()
	backlight := r.Bool()
	nextCat := r.U64()
	lastSchedAt := units.Time(r.I64())
	baselinePending := units.Time(r.I64())
	tapsPending := units.Time(r.I64())
	devicesPending := units.Time(r.I64())
	nGates := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if nGates != len(k.gates) {
		return fmt.Errorf("kernel: restore: snapshot has %d gates, rebuilt kernel has %d", nGates, len(k.gates))
	}
	for i := 0; i < nGates; i++ {
		name := r.String()
		calls := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		g, ok := k.gates[name]
		if !ok {
			return fmt.Errorf("kernel: restore: snapshot gate %q not registered in rebuilt kernel", name)
		}
		g.calls = calls
	}
	if err := k.Table.Restore(r); err != nil {
		return err
	}
	if err := k.Graph.Restore(r); err != nil {
		return err
	}
	if err := k.Sched.Restore(r); err != nil {
		return err
	}
	if err := k.Eng.Restore(r); err != nil {
		return err
	}
	hasCharger := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasCharger != (k.charger != nil) {
		return fmt.Errorf("kernel: restore: snapshot charger presence %v, rebuilt kernel %v "+
			"(the scenario's construction path must attach the charger before restoring)",
			hasCharger, k.charger != nil)
	}
	if hasCharger {
		if err := k.charger.Restore(r); err != nil {
			return err
		}
	}
	k.baseCarry = baseCarry
	k.backlight = backlight
	k.nextCat = label.Category(nextCat)
	k.lastSchedAt = lastSchedAt
	k.baselinePending = baselinePending
	k.tapsPending = tapsPending
	k.devicesPending = devicesPending
	return nil
}

// ResumeRun continues a checkpointed simulation to the given absolute
// instant without the Run-boundary re-step (see sim.Engine.ResumeUntil),
// then settles lazily-deferred accounting exactly as Run does. A
// RunUntil(a) + Restore + ResumeRun(b) sequence executes the identical
// callback sequence a single Run to b would have.
func (k *Kernel) ResumeRun(until units.Time) {
	k.Eng.ResumeUntil(until)
	k.settle()
}
