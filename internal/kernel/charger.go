package kernel

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements the battery charger: the first *credit* on the
// battery path. The paper's experiments run discharge-only, but its
// lifetime-scale argument — reserves governing a device across days —
// only closes once the battery level is non-monotone, so the
// month-in-the-life scenarios plug the device in overnight.
//
// The charger is a periodic task plus the kernel's second SweepSettler
// (netd's pool sweep being the first): while plugged it credits the
// battery every charge quantum, and under closed-form settlement it
// defers its own task across provably uneventful stretches and replays
// the skipped boundaries in one exact telescoped credit. Exactness
// rests on two conservative bounds, both checked before any deferral:
//
//   - no clamp: conservation caps any future battery level at
//     TotalHeld(now) + charger credits, so a deferral that keeps
//     TotalHeld + credits ≤ Capacity can never hit the full-battery
//     clamp — under any interleaving of drains, decay leaks or
//     released-reserve refunds, all of which only move energy already
//     counted in TotalHeld;
//   - no exhaustion: the deferral never passes the kernel's sweep
//     horizon, within which no reserve (battery included) can clamp
//     under worst-case outflow with all inflows ignored.
//
// Inside such a window credits and drains are pure integer additions
// with no clamp and no starvation, so they commute: replaying the
// skipped credits after the window's lazily-settled drains yields the
// byte-identical state per-quantum execution would have. The fleet's
// -per-charge A/B flag and the differential tests assert exactly that.

// DefaultChargeQuantum is the charger's crediting interval. Coarser
// than the tap batch: charge arrives in 30 s quanta, which bounds the
// executed-instant load of the clamped top-off regime (a full battery
// still plugged in) at a few thousand instants per simulated night.
const DefaultChargeQuantum = 30 * units.Second

// ChargerConfig parameterizes AttachCharger.
type ChargerConfig struct {
	// Quantum overrides DefaultChargeQuantum.
	Quantum units.Time
	// Settle selects closed-form charge settlement: instead of executing
	// a crediting task firing every quantum while plugged, the charger
	// defers the task across stretches where neither the full-battery
	// clamp nor any reserve exhaustion can occur, and replays the
	// skipped credits in one exact fixup. SettleAuto (the zero value)
	// resolves to the kernel package default; the mode only engages when
	// the kernel itself runs closed-form settlement on a next-event
	// engine. SettlePerBatch forces per-quantum execution — the fleet's
	// -per-charge A/B flag.
	Settle SettleMode
}

// ChargerStats counts charger activity.
type ChargerStats struct {
	// Plugs is the number of Plug calls that found the device unplugged.
	Plugs int64
	// Recharged is the energy accepted into the battery.
	Recharged units.Energy
	// Clamped is the energy the charger offered but the full battery
	// refused (the top-off regime's discarded surplus).
	Clamped units.Energy
	// SettledCharges is the number of charge boundaries accounted in
	// closed form instead of executed as task firings. Reported outside
	// the canonical fleet JSON: per-charge A/B runs legitimately differ.
	SettledCharges int64
}

// BatteryCharger models an external supply feeding the battery. One per
// kernel, created by AttachCharger; scenarios drive it through Plug and
// Unplug from scheduled events.
type BatteryCharger struct {
	k       *Kernel
	quantum units.Time
	task    *sim.Task

	supply  power.Charger
	plugged bool
	// lastCharge is the instant through which charge has been credited;
	// meaningful only while plugged. carry holds the sub-µJ residue in
	// µW·ms so long plug windows integrate exactly.
	lastCharge units.Time
	carry      int64

	closedForm bool
	settling   bool
	predicted  units.Time
	stats      ChargerStats
}

// AttachCharger creates the kernel's battery charger and registers its
// crediting task. Call it once, during the device's deterministic
// construction path (a fleet scenario's Build), so rebuild-for-restore
// registers the task in the same engine slot. The charger starts
// unplugged with its task parked; an unplugged charger adds no executed
// instants and leaves every discharge-only result untouched.
func (k *Kernel) AttachCharger(cfg ChargerConfig) *BatteryCharger {
	if k.charger != nil {
		panic("kernel: AttachCharger called twice")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultChargeQuantum
	}
	settle := cfg.Settle
	if settle == SettleAuto {
		settle = DefaultSettleMode()
	}
	c := &BatteryCharger{k: k, quantum: cfg.Quantum}
	c.task = k.Eng.Every("kernel:charger", cfg.Quantum, func(e *sim.Engine) { c.fire(e.Now()) })
	c.task.Park()
	c.closedForm = settle == SettleClosedForm && k.LazySettle()
	if c.closedForm {
		k.AddSweepSettler(c)
	}
	k.charger = c
	return c
}

// Charger returns the kernel's battery charger, or nil if none is
// attached.
func (k *Kernel) Charger() *BatteryCharger { return k.charger }

// Stats returns a copy of the counters.
func (c *BatteryCharger) Stats() ChargerStats { return c.stats }

// Plugged reports whether a supply is connected.
func (c *BatteryCharger) Plugged() bool { return c.plugged }

// Plug connects a supply. Charge accrues from the current instant and
// is credited at every quantum boundary (plus a final partial interval
// at Unplug). Plugging while already plugged is a no-op — swap supplies
// with an explicit Unplug first.
func (c *BatteryCharger) Plug(supply power.Charger) {
	if c.plugged || supply.Rate <= 0 {
		return
	}
	c.plugged = true
	c.supply = supply
	c.lastCharge = c.k.Eng.Now()
	c.carry = 0
	c.settling = false
	c.stats.Plugs++
	c.task.Resume()
}

// Unplug disconnects the supply, crediting the final partial interval
// since the last boundary. Safe to call when already unplugged.
func (c *BatteryCharger) Unplug() {
	if !c.plugged {
		return
	}
	// Boundaries strictly before now were replayed by SyncSweeps before
	// this event callback ran; what remains is the partial tail.
	c.creditThrough(c.k.Eng.Now())
	c.plugged = false
	c.settling = false
	c.carry = 0
	c.task.Park()
}

// fire is the crediting task's callback.
func (c *BatteryCharger) fire(now units.Time) {
	if !c.plugged {
		c.task.Park()
		return
	}
	c.settling = false
	c.creditThrough(now)
	c.maybeSettle(now)
}

// creditThrough integrates the supply's rate from lastCharge to t and
// credits the battery, clamping at capacity. The carry telescopes, so
// one call covering k quanta credits exactly what k per-quantum calls
// would — as long as no intermediate boundary would have clamped, which
// every deferral guarantees (see the file comment). On a clamp the
// sub-µJ carry is discarded with the surplus: the charge controller is
// in top-off, and both settle modes share this code path.
func (c *BatteryCharger) creditThrough(t units.Time) {
	if t <= c.lastCharge {
		return
	}
	offered, rem := c.supply.Rate.OverRem(t-c.lastCharge, c.carry)
	c.lastCharge = t
	c.carry = rem
	if offered <= 0 {
		return
	}
	accepted := c.k.Graph.ChargeBattery(offered)
	c.stats.Recharged += accepted
	if accepted < offered {
		c.stats.Clamped += offered - accepted
		c.carry = 0
	}
}

// maybeSettle defers the crediting task across a stretch where skipped
// boundaries are provably exact to replay, per the two conservative
// bounds in the file comment.
func (c *BatteryCharger) maybeSettle(now units.Time) {
	if !c.closedForm || !c.plugged || now%c.quantum != 0 {
		return
	}
	t := c.predictSafe(now)
	if t <= now+c.quantum {
		return // next boundary fires anyway; stay on the grid
	}
	c.task.DeferUntil(t)
	c.settling = true
	c.predicted = t
}

// predictSafe returns the latest quantum boundary through which skipped
// credits replay exactly: no possible clamp (conservation bound) and no
// possible reserve exhaustion (sweep horizon). Returns 0 when no
// boundary can be trusted.
func (c *BatteryCharger) predictSafe(now units.Time) units.Time {
	g := c.k.Graph
	room := int64(g.Capacity() - g.TotalHeld())
	rate := int64(c.supply.Rate)
	if room <= 0 || rate <= 0 {
		return 0
	}
	// Largest dt with ⌊(rate·dt + carry)/1000⌋ ≤ room, saturating the
	// product bound rather than overflowing on huge rooms.
	dtClamp := (room*1000 + 999 - c.carry) / rate
	hb := c.k.SweepHorizonBatches()
	if hb > 1<<40 {
		hb = 1 << 40 // keep the product in int64; far beyond any real run
	}
	dtHorizon := hb * int64(c.k.TapBatch())
	dt := dtClamp
	if dtHorizon < dt {
		dt = dtHorizon
	}
	if dt <= 0 {
		return 0
	}
	t := now + units.Time(dt)
	return t - t%c.quantum
}

// replayThrough credits, in one exact telescoped call, every quantum
// boundary the deferred task skipped in (lastCharge, limit].
func (c *BatteryCharger) replayThrough(limit units.Time) {
	last := limit - limit%c.quantum
	if last <= c.lastCharge {
		return
	}
	c.stats.SettledCharges += int64(last/c.quantum) - int64(c.lastCharge/c.quantum)
	c.creditThrough(last)
}

// SyncSweeps implements SweepSettler: called before every executed
// instant (after tap/baseline/device settlement has caught up), it
// replays the boundaries the deferred task skipped strictly before now
// and, when a boundary lands exactly now, hands the firing back to the
// task so it runs in its registration slot.
func (c *BatteryCharger) SyncSweeps(now units.Time) {
	if !c.settling {
		return
	}
	c.replayThrough(now - 1)
	if now%c.quantum == 0 && c.task.NextDue() > now {
		c.settling = false
		c.task.ResumeAt(now)
	}
}

// SettleSweeps implements SweepSettler: closes out a Run whose stop
// instant the engine never executed. A boundary exactly at the stop
// credits directly; the deferral (and its pending prediction) survives
// into a checkpoint, whose snapshot carries the charger cursor.
func (c *BatteryCharger) SettleSweeps(now units.Time) {
	if !c.settling {
		return
	}
	c.replayThrough(now - 1)
	if now%c.quantum == 0 && c.task.NextDue() > now {
		c.creditThrough(now)
	}
}

// InvalidateSweeps implements SweepSettler: any activity that could
// move the sweep horizon or the battery's headroom returns the task to
// its periodic grid. Boundaries skipped so far replay at the next
// executed instant; none are lost.
func (c *BatteryCharger) InvalidateSweeps() {
	if !c.settling {
		return
	}
	c.settling = false
	c.task.Resume()
}

// PredictedFire returns the instant the deferred task expects to fire,
// or 0 while it rides its periodic grid (diagnostics).
func (c *BatteryCharger) PredictedFire() units.Time {
	if !c.settling {
		return 0
	}
	return c.predicted
}

// Snapshot serializes the charger's mutable state. The task's own
// schedule belongs to the engine section; mid-charge checkpoints work
// because the credit cursor, carry and supply rate travel here.
func (c *BatteryCharger) Snapshot(w *snap.Writer) {
	w.Section("charger")
	w.Bool(c.plugged)
	w.String(c.supply.Name)
	w.I64(int64(c.supply.Rate))
	w.I64(int64(c.lastCharge))
	w.I64(c.carry)
	w.Bool(c.settling)
	w.I64(int64(c.predicted))
	w.I64(c.stats.Plugs)
	w.I64(int64(c.stats.Recharged))
	w.I64(int64(c.stats.Clamped))
	w.I64(c.stats.SettledCharges)
}

// Restore overlays a snapshot onto a freshly attached charger. The
// task schedule is restored by the engine section; Restore must not
// touch it.
func (c *BatteryCharger) Restore(r *snap.Reader) error {
	r.Section("charger")
	plugged := r.Bool()
	name := r.String()
	rate := units.Power(r.I64())
	lastCharge := units.Time(r.I64())
	carry := r.I64()
	settling := r.Bool()
	predicted := units.Time(r.I64())
	stats := ChargerStats{
		Plugs:          r.I64(),
		Recharged:      units.Energy(r.I64()),
		Clamped:        units.Energy(r.I64()),
		SettledCharges: r.I64(),
	}
	if err := r.Err(); err != nil {
		return err
	}
	if settling && !c.closedForm {
		return fmt.Errorf("kernel: charger restore: snapshot recorded a deferred charge " +
			"prediction but the rebuilt charger runs per-quantum settlement — resume with " +
			"the settle mode the checkpoint was written under")
	}
	c.plugged = plugged
	c.supply = power.Charger{Name: name, Rate: rate}
	c.lastCharge = lastCharge
	c.carry = carry
	c.settling = settling
	c.predicted = predicted
	c.stats = stats
	return nil
}

var _ SweepSettler = (*BatteryCharger)(nil)
