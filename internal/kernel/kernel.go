// Package kernel assembles the Cinder simulation: it owns the virtual
// clock, the kernel object table, the resource-consumption graph, the
// energy-aware scheduler, the device power model, and the gate IPC
// mechanism whose billing semantics are the paper's §5.5.1 ("the caller
// of a system-wide service, like netd, is billed for resource
// consumption it causes, even while executing in the other address
// space").
//
// A Kernel registers three periodic activities on its engine, mirroring
// the paper's implementation notes:
//
//   - the scheduler runs every tick (1 ms quantum);
//   - taps flow in batch every TapBatch (10 ms), "to minimize scheduling
//     and context-switch overheads" (§3.3);
//   - the global half-life decay applies every second (§5.2.2).
//
// Baseline device power (the Dream's 699 mW idle, plus 555 mW when the
// backlight is on) is consumed directly from the battery each batch, so
// the attached power meter reproduces the Agilent traces.
package kernel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// DefaultTapBatch is the tap flow batching interval.
const DefaultTapBatch = 10 * units.Millisecond

// BillingMode selects how gate calls attribute resource consumption
// (§7.1).
type BillingMode uint8

const (
	// BillCaller is Cinder-HiStar semantics: the calling thread's
	// reserve pays for work a daemon performs on its behalf.
	BillCaller BillingMode = iota
	// BillDaemon reproduces the Cinder-Linux problem: message-passing
	// IPC cannot identify the caller, so consumption lands on the
	// daemon's own reserve.
	BillDaemon
)

// Config parameterizes a Kernel.
type Config struct {
	// Profile is the device power model; defaults to power.Dream().
	Profile power.Profile
	// Seed feeds the deterministic random source.
	Seed int64
	// BatteryCapacity overrides the profile's battery.
	BatteryCapacity units.Energy
	// DecayHalfLife overrides core.DefaultHalfLife; negative disables.
	DecayHalfLife units.Time
	// TapBatch overrides DefaultTapBatch.
	TapBatch units.Time
	// Billing selects gate billing semantics; default BillCaller.
	Billing BillingMode
	// StrictHoarding enables the §5.2.2 fundamental anti-hoarding rule.
	StrictHoarding bool
	// BacklightOn adds the backlight draw to the baseline.
	BacklightOn bool
}

// Kernel is one simulated Cinder instance.
type Kernel struct {
	Eng     *sim.Engine
	Table   *kobj.Table
	Root    *kobj.Container
	Graph   *core.Graph
	Sched   *sched.Scheduler
	Profile power.Profile

	billing     BillingMode
	kpriv       label.Priv
	sysCategory label.Category
	nextCat     label.Category
	gates       map[string]*Gate
	baseCarry   int64
	backlight   bool
	// devices receive a callback each tick so peripherals (the radio)
	// can advance their state machines and bill their draw.
	devices []Device
}

// Device is a peripheral that advances once per tick.
type Device interface {
	DeviceTick(now units.Time, dt units.Time)
}

// New builds a kernel and registers its periodic activities on a fresh
// engine.
func New(cfg Config) *Kernel {
	if cfg.Profile.Name == "" {
		cfg.Profile = power.Dream()
	}
	if cfg.BatteryCapacity == 0 {
		cfg.BatteryCapacity = cfg.Profile.BatteryCapacity
	}
	if cfg.TapBatch == 0 {
		cfg.TapBatch = DefaultTapBatch
	}
	eng := sim.NewEngine(cfg.Seed)
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())

	k := &Kernel{
		Eng:       eng,
		Table:     tbl,
		Root:      root,
		Profile:   cfg.Profile,
		billing:   cfg.Billing,
		gates:     make(map[string]*Gate),
		nextCat:   2, // category 1 is the kernel's
		backlight: cfg.BacklightOn,
	}
	k.sysCategory = 1
	k.kpriv = label.NewPriv(k.sysCategory).WithClearance(label.Level3)

	batteryLabel := label.Public().With(k.sysCategory, label.Level2)
	k.Graph = core.NewGraph(tbl, root, batteryLabel, core.Config{
		BatteryCapacity: cfg.BatteryCapacity,
		DecayHalfLife:   cfg.DecayHalfLife,
		StrictHoarding:  cfg.StrictHoarding,
	})
	k.Sched = sched.New(tbl, cfg.Profile.CPUActive)

	tick := eng.Tick()
	eng.Every("kernel:devices", tick, func(e *sim.Engine) {
		for _, d := range k.devices {
			d.DeviceTick(e.Now(), tick)
		}
	})
	eng.Every("kernel:sched", tick, func(e *sim.Engine) {
		k.Sched.Tick(e.Now(), tick)
	})
	eng.Every("kernel:taps", cfg.TapBatch, func(*sim.Engine) {
		k.Graph.Flow(cfg.TapBatch)
	})
	eng.Every("kernel:baseline", cfg.TapBatch, func(*sim.Engine) {
		k.billBaseline(cfg.TapBatch)
	})
	eng.Every("kernel:decay", units.Second, func(*sim.Engine) {
		k.Graph.Decay(units.Second)
	})
	return k
}

// billBaseline consumes the idle (plus backlight) draw directly from the
// battery, where the power meter observes it.
func (k *Kernel) billBaseline(dt units.Time) {
	p := k.Profile.Idle
	if k.backlight {
		p += k.Profile.Backlight
	}
	var e units.Energy
	e, k.baseCarry = p.OverRem(dt, k.baseCarry)
	if e > 0 {
		// The battery is the kernel's own reserve; if it is empty the
		// device is dead and the simulation keeps running at zero cost.
		_ = k.Graph.Battery().Consume(k.kpriv, e)
	}
}

// SetBacklight toggles the backlight contribution to baseline draw.
func (k *Kernel) SetBacklight(on bool) { k.backlight = on }

// KernelPriv returns the kernel's privilege set (owns the system
// category). Tests and trusted daemons (netd, the task manager) receive
// derived privileges instead.
func (k *Kernel) KernelPriv() label.Priv { return k.kpriv }

// NewCategory allocates a fresh privilege category (HiStar's category
// allocation syscall).
func (k *Kernel) NewCategory() label.Category {
	c := k.nextCat
	k.nextCat++
	return c
}

// AddDevice registers a peripheral for per-tick callbacks.
func (k *Kernel) AddDevice(d Device) { k.devices = append(k.devices, d) }

// Consumed returns total energy consumed across the system — what the
// bench supply has delivered. Experiments attach power.Meter to this.
func (k *Kernel) Consumed() units.Energy { return k.Graph.Consumed() }

// Battery returns the root reserve.
func (k *Kernel) Battery() *core.Reserve { return k.Graph.Battery() }

// Now returns the current simulated time.
func (k *Kernel) Now() units.Time { return k.Eng.Now() }

// Run advances the simulation by d.
func (k *Kernel) Run(d units.Time) { k.Eng.Run(d) }

// NewMeter attaches a power meter to the kernel's consumption counter,
// reproducing the Agilent E3644A setup.
func (k *Kernel) NewMeter(name string) *power.Meter {
	return power.NewMeter(k.Eng, name, k.Consumed)
}

// CreateReserve is the reserve_create syscall (Fig. 5): a new, empty
// reserve in the given container.
func (k *Kernel) CreateReserve(parent *kobj.Container, name string, lbl label.Label) *core.Reserve {
	return k.Graph.NewReserve(parent, name, lbl, core.ReserveOpts{})
}

// CreateReserveOpts creates a reserve with explicit options (debt,
// decay exemption) for trusted daemons.
func (k *Kernel) CreateReserveOpts(parent *kobj.Container, name string, lbl label.Label, opts core.ReserveOpts) *core.Reserve {
	return k.Graph.NewReserve(parent, name, lbl, opts)
}

// CreateTap is the tap_create syscall (Fig. 5).
func (k *Kernel) CreateTap(parent *kobj.Container, name string, p label.Priv, src, sink *core.Reserve, lbl label.Label) (*core.Tap, error) {
	return k.Graph.NewTap(parent, name, p, src, sink, lbl)
}

// Wrap implements the energywrap primitive (§5.1): create a reserve fed
// from `from` by a constant tap at `rate`, both inside parent. The
// returned reserve is intended as a child thread's active reserve and is
// public (the child must be able to consume from it); tapLbl protects
// the tap so only the wrapper can change the rate. The caller needs use
// privileges on `from`.
func (k *Kernel) Wrap(parent *kobj.Container, name string, p label.Priv, from *core.Reserve, rate units.Power, tapLbl label.Label) (*core.Reserve, *core.Tap, error) {
	res := k.Graph.NewReserve(parent, name+"-reserve", label.Public(), core.ReserveOpts{})
	tap, err := k.Graph.NewTap(parent, name+"-tap", p, from, res, tapLbl)
	if err != nil {
		return nil, nil, fmt.Errorf("kernel: wrap %q: %w", name, err)
	}
	if err := tap.SetRate(p, rate); err != nil {
		return nil, nil, fmt.Errorf("kernel: wrap %q: %w", name, err)
	}
	return res, tap, nil
}

// Spawn creates a process-like unit: a container holding a thread that
// draws from the given reserves. It mirrors fork + set_active_reserve +
// exec in Fig. 5.
func (k *Kernel) Spawn(parent *kobj.Container, name string, p label.Priv, runner sched.Runner, reserves ...*core.Reserve) (*kobj.Container, *sched.Thread) {
	c := kobj.NewContainer(k.Table, parent, name, label.Public())
	th := k.Sched.NewThread(c, name, label.Public(), p, runner, reserves...)
	return c, th
}
