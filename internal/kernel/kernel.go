// Package kernel assembles the Cinder simulation: it owns the virtual
// clock, the kernel object table, the resource-consumption graph, the
// energy-aware scheduler, the device power model, and the gate IPC
// mechanism whose billing semantics are the paper's §5.5.1 ("the caller
// of a system-wide service, like netd, is billed for resource
// consumption it causes, even while executing in the other address
// space").
//
// A Kernel registers three periodic activities on its engine, mirroring
// the paper's implementation notes:
//
//   - the scheduler runs every tick (1 ms quantum);
//   - taps flow in batch every TapBatch (10 ms), "to minimize scheduling
//     and context-switch overheads" (§3.3);
//   - the global half-life decay applies every second (§5.2.2).
//
// Baseline device power (the Dream's 699 mW idle, plus 555 mW when the
// backlight is on) is consumed directly from the battery each batch, so
// the attached power meter reproduces the Agilent traces.
package kernel

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// DefaultTapBatch is the tap flow batching interval.
const DefaultTapBatch = 10 * units.Millisecond

// SettleMode selects how the kernel advances tap flows and device draw
// on a next-event engine.
type SettleMode uint8

const (
	// SettleAuto resolves to the package default (see SetDefaultSettleMode).
	SettleAuto SettleMode = iota
	// SettleClosedForm parks the flow/baseline/device tasks and settles
	// the batches and ticks they skipped in closed form, lazily, before
	// every executed instant. Byte-identical to per-batch execution; the
	// differential tests assert it.
	SettleClosedForm
	// SettlePerBatch keeps the busy path on per-batch task firings (the
	// pre-settlement behaviour). It exists for differential testing and
	// A/B benchmarks.
	SettlePerBatch
)

// String returns the mode name.
func (m SettleMode) String() string {
	switch m {
	case SettleAuto:
		return "auto"
	case SettleClosedForm:
		return "closed-form"
	case SettlePerBatch:
		return "per-batch"
	default:
		return fmt.Sprintf("settlemode(%d)", uint8(m))
	}
}

// defaultSettleMode holds the mode SettleAuto resolves to; stored
// atomically so concurrent kernel construction (the fleet runner) is
// race-free.
var defaultSettleMode atomic.Int32

func init() { defaultSettleMode.Store(int32(SettleClosedForm)) }

// SetDefaultSettleMode changes what SettleAuto resolves to for
// subsequently created kernels. The three-way differential tests use it
// to run the whole experiment registry with and without closed-form
// settlement.
func SetDefaultSettleMode(m SettleMode) {
	if m == SettleAuto {
		m = SettleClosedForm
	}
	defaultSettleMode.Store(int32(m))
}

// DefaultSettleMode returns the mode SettleAuto currently resolves to.
func DefaultSettleMode() SettleMode { return SettleMode(defaultSettleMode.Load()) }

// BillingMode selects how gate calls attribute resource consumption
// (§7.1).
type BillingMode uint8

const (
	// BillCaller is Cinder-HiStar semantics: the calling thread's
	// reserve pays for work a daemon performs on its behalf.
	BillCaller BillingMode = iota
	// BillDaemon reproduces the Cinder-Linux problem: message-passing
	// IPC cannot identify the caller, so consumption lands on the
	// daemon's own reserve.
	BillDaemon
)

// Config parameterizes a Kernel.
type Config struct {
	// Profile is the device power model; defaults to power.Dream().
	Profile power.Profile
	// Seed feeds the deterministic random source.
	Seed int64
	// BatteryCapacity overrides the profile's battery.
	BatteryCapacity units.Energy
	// DecayHalfLife overrides core.DefaultHalfLife; negative disables.
	DecayHalfLife units.Time
	// TapBatch overrides DefaultTapBatch.
	TapBatch units.Time
	// Billing selects gate billing semantics; default BillCaller.
	Billing BillingMode
	// EngineMode selects the engine's time-advancement strategy;
	// ModeAuto (the zero value) uses the sim package default.
	EngineMode sim.Mode
	// Settle selects the busy-path advancement strategy; SettleAuto (the
	// zero value) uses the kernel package default. Only effective on a
	// next-event engine.
	Settle SettleMode
	// StrictHoarding enables the §5.2.2 fundamental anti-hoarding rule.
	StrictHoarding bool
	// BacklightOn adds the backlight draw to the baseline.
	BacklightOn bool
}

// Kernel is one simulated Cinder instance.
type Kernel struct {
	Eng     *sim.Engine
	Table   *kobj.Table
	Root    *kobj.Container
	Graph   *core.Graph
	Sched   *sched.Scheduler
	Profile power.Profile

	billing     BillingMode
	kpriv       label.Priv
	sysCategory label.Category
	nextCat     label.Category
	gates       map[string]*Gate
	baseCarry   int64
	backlight   bool
	// devices receive a callback each tick so peripherals (the radio)
	// can advance their state machines and bill their draw. The optional
	// interfaces (quiescence, settlement) are asserted once at AddDevice
	// so the per-instant quiescence checks do no dynamic type tests.
	devices []deviceEntry

	// Quiescence and settlement machinery (next-event engines only).
	// When no thread is runnable the scheduler task defers to the
	// earliest sleeping-thread wake (or parks), and skipped quanta are
	// settled as idle ticks. Under closed-form settlement (the default)
	// the tap-flow, baseline and device tasks park outright whenever
	// possible and everything they skipped — flow batches, baseline
	// batches, device ticks — settles lazily via syncAt before any
	// callback at an executed instant, in closed form inside the
	// depletion horizon and by exact replay outside it. Activity hooks
	// (thread wake/creation, tap activation, radio wake-up) resume the
	// tasks instantly, so the callback sequence — and therefore every
	// experiment Result — is byte-identical to a tick-by-tick run.
	taskDevices  *sim.Task
	taskSched    *sim.Task
	taskTaps     *sim.Task
	taskBaseline *sim.Task
	taskDecay    *sim.Task
	tapBatch     units.Time
	// baselinePending is the earliest baseline batch boundary not yet
	// billed; lastSchedAt is the instant of the last scheduler quantum.
	baselinePending units.Time
	lastSchedAt     units.Time
	// Closed-form settlement state (SettleClosedForm on a next-event
	// engine): the flow and device tasks park outright and the work they
	// skipped — tap batches, baseline batches, device ticks — settles
	// lazily, in closed form where the depletion horizon allows and by
	// exact replay where it does not, before any callback at an executed
	// instant. tapsPending / devicesPending are the earliest tap batch
	// boundary not yet flowed and the earliest tick not yet device-ticked.
	lazySettle     bool
	tapsPending    units.Time
	devicesPending units.Time
	// billBaselineFn is billBaselineBatches bound once at construction,
	// so settleBatches can hand SettleFlows its interleave callback
	// without allocating a closure per settlement window.
	billBaselineFn func(int64)
	// settlers are the registered SweepSettlers (netd, the battery
	// charger), synchronized at every executed instant and invalidated
	// from the activity hooks.
	settlers []SweepSettler
	// charger is the optional battery charger (AttachCharger); nil on
	// discharge-only kernels, which is every kernel the frozen
	// experiments build.
	charger *BatteryCharger
	// skipTaps is scratch for the throttled-quantum skip's inflow scan,
	// keeping the busy-path prediction allocation-free.
	skipTaps []*core.Tap
}

// deviceEntry caches a registered device's optional capabilities.
type deviceEntry struct {
	dev Device
	// quiescent is non-nil iff dev implements QuiescentDevice.
	quiescent QuiescentDevice
	// settleable is non-nil iff dev implements SettleableDevice;
	// accounts caches its SettleAccounts result (the reserve set is
	// fixed for the device's lifetime). guard is non-nil iff dev
	// implements SettleGuardDevice, which replaces the accounts check.
	settleable SettleableDevice
	guard      SettleGuardDevice
	accounts   []*core.Reserve
}

// Device is a peripheral that advances once per tick.
type Device interface {
	DeviceTick(now units.Time, dt units.Time)
}

// QuiescentDevice is optionally implemented by devices whose ticks are
// periodically no-ops (a sleeping radio). The kernel skips device ticks
// only while every registered device reports quiescence; devices without
// the method are assumed always-active.
type QuiescentDevice interface {
	Quiescent() bool
}

// deviceActivityNotifier is optionally implemented by devices that can
// leave quiescence asynchronously (a radio woken by a Send from an
// event); the kernel subscribes to resume its device task.
type deviceActivityNotifier interface {
	SetActivityHook(func())
}

// SettleableDevice is optionally implemented by devices whose per-tick
// behaviour between external inputs is fully determined — constant-power
// state spans with transitions at known instants (the radio) — and can
// therefore be settled in closed form. While every non-quiescent device
// is settleable, the kernel parks its device task and replays the
// skipped ticks lazily through SettleTicks.
type SettleableDevice interface {
	Device
	// SettleTicks performs exactly the DeviceTick calls the parked
	// device task skipped: one per tick instant from `from` through `to`
	// inclusive. No external input (Send, gate call, …) occurs inside
	// the span — those happen at executed instants, after settlement has
	// already caught up.
	SettleTicks(from, to, dt units.Time)
	// PeakDraw bounds the device's possible per-tick draw, charged
	// against the battery's depletion horizon before a span is settled.
	PeakDraw() units.Power
	// SettleAccounts lists the device's private billing reserves.
	// Settlement reorders device billing against tap flows, which is
	// only exact while no active tap touches these. The set must be
	// fixed for the device's registration lifetime: the kernel caches it
	// at AddDevice so the per-instant settleability check allocates
	// nothing. Devices whose billing targets change over time implement
	// SettleGuardDevice instead, which supersedes the account check.
	SettleAccounts() []*core.Reserve
}

// SweepSettler is implemented by subsystems that own a periodic task
// whose firings can be settled in closed form between executed instants
// (netd's 100 ms pool sweep). The subsystem parks or defers its own task
// when it can predict the next firing that matters; the kernel then keeps
// it exact by calling:
//
//   - SyncSweeps from the advance hook at every executed instant, after
//     tap/baseline/device settlement has caught up strictly before the
//     instant — the settler replays the firings its parked task skipped
//     and, if a firing is due exactly now, re-arms the task so it fires
//     in its registration slot (after the kernel's own boundary tasks);
//   - SettleSweeps at the end of a Run, after the kernel's at-now
//     boundary work, where no task firing can cover the stop instant;
//   - InvalidateSweeps whenever an activity hook fires (thread woken,
//     tap activated/changed/released, decayable created, radio woken):
//     anything that could perturb the prediction returns the task to its
//     periodic grid until the settler re-establishes one.
type SweepSettler interface {
	SyncSweeps(now units.Time)
	SettleSweeps(now units.Time)
	InvalidateSweeps()
}

// SettleGuardDevice optionally refines SettleableDevice for devices
// whose billing targets vary (smdd bills whichever thread placed the
// current call): SettleSafe judges, from the device's own knowledge of
// its targets and the graph, whether its pending ticks commute with tap
// flows — e.g. debt-allowed debits of level-independent amounts commute
// with taps feeding the same reserve, which the kernel's coarse
// SettleAccounts ∩ active-taps test would refuse. When implemented it
// replaces that test.
type SettleGuardDevice interface {
	SettleSafe() bool
}

// New builds a kernel and registers its periodic activities on a fresh
// engine.
func New(cfg Config) *Kernel {
	k := &Kernel{}
	k.init(cfg, false)
	return k
}

// Reset reinitializes the kernel in place to the exact state New(cfg)
// would produce, recycling the engine, the object table, the graph and
// the scheduler instead of constructing fresh ones. Everything from the
// previous life — reserves, taps, threads, gates, devices, events — is
// forgotten; the caller must rebuild its world (and drop every old
// handle) just as after New. The fleet runner recycles one kernel per
// worker this way instead of building 100k object graphs.
func (k *Kernel) Reset(cfg Config) { k.init(cfg, true) }

func (k *Kernel) init(cfg Config, recycle bool) {
	if cfg.Profile.Name == "" {
		cfg.Profile = power.Dream()
	}
	if cfg.BatteryCapacity == 0 {
		cfg.BatteryCapacity = cfg.Profile.BatteryCapacity
	}
	if cfg.TapBatch == 0 {
		cfg.TapBatch = DefaultTapBatch
	}
	if recycle {
		k.Eng.Reset(cfg.Seed, cfg.EngineMode)
		k.Table.Reset()
	} else {
		k.Eng = sim.NewEngineMode(cfg.Seed, cfg.EngineMode)
		k.Table = kobj.NewTable()
	}
	eng := k.Eng
	k.Root = kobj.NewContainer(k.Table, nil, "root", label.Public())
	k.Profile = cfg.Profile
	k.billing = cfg.Billing
	if k.gates == nil {
		k.gates = make(map[string]*Gate)
	} else {
		clear(k.gates)
	}
	k.nextCat = 2 // category 1 is the kernel's
	k.backlight = cfg.BacklightOn
	k.sysCategory = 1
	k.kpriv = label.NewPriv(k.sysCategory).WithClearance(label.Level3)
	k.baseCarry = 0
	clear(k.devices)
	k.devices = k.devices[:0]
	k.baselinePending = 0
	k.lastSchedAt = 0
	k.tapsPending = 0
	k.devicesPending = 0
	k.billBaselineFn = k.billBaselineBatches
	clear(k.settlers)
	k.settlers = k.settlers[:0]
	k.charger = nil

	batteryLabel := label.Public().With(k.sysCategory, label.Level2)
	graphCfg := core.Config{
		BatteryCapacity: cfg.BatteryCapacity,
		DecayHalfLife:   cfg.DecayHalfLife,
		StrictHoarding:  cfg.StrictHoarding,
	}
	if recycle {
		k.Graph.Reset(k.Table, k.Root, batteryLabel, graphCfg)
		k.Sched.Reset(cfg.Profile.CPUActive)
	} else {
		k.Graph = core.NewGraph(k.Table, k.Root, batteryLabel, graphCfg)
		k.Sched = sched.New(k.Table, cfg.Profile.CPUActive)
	}

	settle := cfg.Settle
	if settle == SettleAuto {
		settle = DefaultSettleMode()
	}
	k.lazySettle = settle == SettleClosedForm && eng.Mode() == sim.ModeNextEvent

	tick := eng.Tick()
	k.tapBatch = cfg.TapBatch
	k.taskDevices = eng.Every("kernel:devices", tick, func(e *sim.Engine) {
		k.fireDevices(e.Now())
		if e.Mode() != sim.ModeNextEvent {
			return
		}
		if k.devicesQuiescent() || (k.lazySettle && k.devicesSettleable()) {
			k.taskDevices.Park()
		}
	})
	k.taskSched = eng.Every("kernel:sched", tick, func(e *sim.Engine) {
		now := e.Now()
		if skipped := int64((now-k.lastSchedAt)/tick) - 1; skipped > 0 {
			k.Sched.AddIdleTicks(skipped)
		}
		k.lastSchedAt = now
		k.Sched.Tick(now, tick)
		k.maybeQuiesceSched(now)
	})
	k.taskTaps = eng.Every("kernel:taps", cfg.TapBatch, func(e *sim.Engine) {
		k.fireTaps(e.Now())
		if k.lazySettle {
			k.taskTaps.Park()
			return
		}
		k.maybeDeferBatchTask(e, k.taskTaps)
	})
	k.taskBaseline = eng.Every("kernel:baseline", cfg.TapBatch, func(e *sim.Engine) {
		k.fireBaseline(e.Now())
		if k.lazySettle {
			k.taskBaseline.Park()
			return
		}
		k.maybeDeferBatchTask(e, k.taskBaseline)
	})
	k.taskDecay = nil
	if k.Graph.HalfLife() >= 0 {
		k.taskDecay = eng.Every("kernel:decay", units.Second, func(*sim.Engine) {
			k.Graph.Decay(units.Second)
			// While no decayable reserve exists, every firing is a no-op
			// by construction; park until one is created. This is what
			// lets a quiescent device skip whole simulated hours — the
			// 1 s decay cadence is otherwise the densest permanent task.
			if k.Graph.DecayableCount() == 0 {
				k.taskDecay.Park()
			}
		})
		k.Graph.SetDecayActivityHook(func() {
			k.taskDecay.Resume()
			// A new decayable reserve introduces 1 s decay bites that a
			// sweep settler's prediction did not model.
			k.invalidateSettlers()
		})
	}
	if eng.Mode() == sim.ModeNextEvent {
		eng.SetAdvanceHook(k.syncAtAdvance)
		k.Sched.SetActivityHook(k.resumeKernelTasks)
		k.Graph.SetTapActivityHook(k.resumeKernelTasks)
	}
}

// devicesQuiescent reports whether every registered device declares its
// ticks to currently be no-ops. Devices not implementing
// QuiescentDevice are assumed always-active.
func (k *Kernel) devicesQuiescent() bool {
	for i := range k.devices {
		q := k.devices[i].quiescent
		if q == nil || !q.Quiescent() {
			return false
		}
	}
	return true
}

// maybeQuiesceSched defers the scheduler task when its next quanta are
// provably idle: either no thread is runnable, or every runnable thread
// is energy-throttled past the deferral target (maybeSkipThrottled). In
// both regimes skipped quanta are pure idleTicks, settled in closed
// form by the catch-up in the task body and by settle. The task defers
// to the earliest sleeping-thread wake (or throttle pay-off bound), or
// parks outright when nothing is pending; thread creation, Wake and
// reserve activity resume it instantly via the activity hooks. It runs
// from within the scheduler task's own callback — the engine preserves
// a self-deferral instead of rearming the task on its period grid.
func (k *Kernel) maybeQuiesceSched(now units.Time) {
	if k.Eng.Mode() != sim.ModeNextEvent {
		return
	}
	if k.Sched.RunnableCount() > 0 {
		k.maybeSkipThrottled(now)
		return
	}
	if wake, ok := k.Sched.NextWake(); ok {
		k.taskSched.DeferUntil(wake)
	} else {
		k.taskSched.Park()
	}
}

// maybeSkipThrottled defers the scheduler task across a span of quanta
// that are provably throttled: runnable threads exist, but none of them
// can pay for a quantum before the deferral target even if every
// constant tap feeding its reserves were credited unclamped. This is
// the engine-side complement of §3.2's energy throttling — a thread in
// debt with a slow pay-down tap otherwise pins the scheduler (and, via
// the per-instant settlement dance, the whole kernel) at tick rate for
// the entire pay-down, the dominant instant cost of a device's final
// browse-in-debt minutes.
//
// Exactness: in a tick-by-tick run every skipped quantum is an idle
// tick (Tick finds no payable thread), so the closed-form catch-up in
// the task body and in settle reproduces Consumed, BusyTicks, IdleTicks
// and Utilization byte-identically. Only the per-thread throttle
// diagnostic and per-reserve ConsumeFailures stop counting attempts
// that were never made; neither feeds a Result. The bound is sound
// because every ignored effect — clamping, decay leakage, outflow taps,
// other threads' billing — only lowers a reserve's true level below the
// unclamped-inflow projection, and every credit outside the flow
// machinery (transfers, reserve teardown refunds, draw-list changes,
// thread wakes) fires an activity hook that resumes the task.
func (k *Kernel) maybeSkipThrottled(now units.Time) {
	tick := k.Eng.Tick()
	cost := k.Sched.CPUPower().Over(tick)
	if cost <= 0 {
		return // free quanta always run
	}
	earliest := sim.MaxTime
	sound := true
	k.Sched.EachThread(func(t *sched.Thread) {
		if !sound || earliest <= now+tick || t.State() != sched.Runnable {
			return
		}
		e, ok := k.threadPayableBound(t, cost, now, tick)
		if !ok {
			sound = false
			return
		}
		if e < earliest {
			earliest = e
		}
	})
	if !sound || earliest <= now+tick {
		return // unpredictable, or a thread may already run next quantum
	}
	if wake, ok := k.Sched.NextWake(); ok && wake < earliest {
		earliest = wake
	}
	if earliest <= now+tick {
		return
	}
	if earliest == sim.MaxTime {
		// No inflow can ever make a thread payable and nothing sleeps:
		// only hooked activity (a transfer, a new tap, a wake) can change
		// that, and the hook resumes the task.
		k.taskSched.Park()
		return
	}
	k.taskSched.DeferUntil(earliest)
}

// threadPayableBound returns a lower bound on the first scheduler
// instant > now at which t could afford one quantum. ok is false when
// no sound bound exists from inflow alone: a reserve whose label the
// thread cannot currently use (a relabel is unhooked), the battery
// (credited by decay and teardown refunds outside the hooks), an
// unreadable level, or proportional inflow (level-coupled, does not
// telescope). Dead reserves can never pay again and are skipped.
func (k *Kernel) threadPayableBound(t *sched.Thread, cost units.Energy, now, tick units.Time) (units.Time, bool) {
	earliest := sim.MaxTime
	bat := k.Graph.Battery()
	sound := true
	t.EachReserve(func(r *core.Reserve) bool {
		if r.Dead() {
			return true
		}
		if r == bat || !t.Priv().CanUse(r.Label()) {
			sound = false
			return false
		}
		lvl, err := r.Level(k.kpriv)
		if err != nil {
			sound = false
			return false
		}
		if lvl >= cost {
			// Payable already: round-robin reaches it next quantum.
			earliest = now + tick
			return false
		}
		deficit := int64(cost - lvl)
		if deficit > 1<<40 {
			// Far beyond any modeled reserve; refuse rather than risk
			// overflow in the fixed-point arithmetic below.
			sound = false
			return false
		}
		k.skipTaps = k.Graph.TapsInto(r, k.skipTaps[:0])
		var num, carry int64
		for _, tp := range k.skipTaps {
			if tp.Kind() != core.TapConst {
				sound = false
				return false
			}
			num += int64(tp.Rate()) * int64(k.tapBatch)
			carry += tp.Carry()
		}
		if num <= 0 {
			return true // no standing inflow; only hooked activity refills
		}
		// Smallest batch count q whose unclamped telescoped credit
		// (num·q + carry) div 1000 covers the deficit. The telescoped sum
		// over-credits the real flow (per-tap floors and source clamping
		// only lose energy), so the true first-payable instant is never
		// earlier than the bound.
		need := deficit*1000 - carry
		q := (need + num - 1) / num
		if q < 1 {
			q = 1
		}
		// The q-th future batch boundary (multiples of tapBatch at or
		// after now; the boundary at now itself has not credited when the
		// scheduler observes lvl) must have settled strictly before the
		// first quantum that could pay.
		b0 := now + (k.tapBatch-now%k.tapBatch)%k.tapBatch
		if e := b0 + units.Time(q-1)*k.tapBatch + 1; e < earliest {
			earliest = e
		}
		return true
	})
	return earliest, sound
}

// maybeDeferBatchTask parks a batch-grained task (tap flows, baseline
// billing) while the whole kernel is quiescent: scheduler and device
// tasks both deferred past the next tick and no tap carrying a rate.
// The active-tap condition matters twice over: an active tap is work in
// itself, and it may observe the battery level that lazily-billed
// baseline batches would leave stale.
func (k *Kernel) maybeDeferBatchTask(e *sim.Engine, t *sim.Task) {
	if e.Mode() != sim.ModeNextEvent || k.Graph.ActiveTapCount() > 0 {
		return
	}
	now := e.Now()
	horizon := k.taskSched.NextDue()
	if d := k.taskDevices.NextDue(); d < horizon {
		horizon = d
	}
	if horizon <= now+e.Tick() {
		return // kernel not quiescent beyond the next tick
	}
	if horizon == sim.MaxTime {
		t.Park()
	} else {
		t.DeferUntil(horizon)
	}
}

// resumeKernelTasks revives every deferred kernel task; it runs from the
// activity hooks (thread created or woken, tap activated, radio woken)
// and is a near-no-op when nothing is deferred. The baseline task
// resumes at the first boundary the closed-form catch-up has not billed,
// so no batch is ever billed twice. Under lazy settlement the flow and
// baseline tasks stay parked — their boundaries settle lazily and the
// boundary-at-now dance in syncAt hands them back their registration
// slot — but the device task is revived so it can re-evaluate whether
// its settlement preconditions still hold (a freshly activated tap may
// now touch a device's private account).
func (k *Kernel) resumeKernelTasks() {
	k.taskSched.Resume()
	k.taskDevices.Resume()
	if !k.lazySettle {
		k.taskTaps.Resume()
		k.taskBaseline.ResumeAt(k.baselinePending)
	}
	// Every activity this hook observes — a thread able to run, a tap
	// activated, changed or released, the radio waking — can perturb a
	// sweep settler's closed-form prediction; drop it and let the settler
	// re-establish one from post-activity state.
	k.invalidateSettlers()
}

// invalidateSettlers drops every registered sweep settler's prediction.
func (k *Kernel) invalidateSettlers() {
	for _, s := range k.settlers {
		s.InvalidateSweeps()
	}
}

// syncAtAdvance is the advance-hook flavour of syncAt: it first tries
// the fast boundary path, which handles the common quiescent instant —
// no event due, scheduler parked, devices quiescent or settleable — in
// one settlement call instead of resuming, firing and re-parking the
// three boundary tasks. Direct syncAt callers (SetBacklight, about to
// change a rate themselves) must not take the fast path: it performs
// boundary work at pre-event rates, which is only exact when nothing at
// the instant can change them.
func (k *Kernel) syncAtAdvance(now units.Time) {
	if k.lazySettle && k.fastBoundary(now) {
		return
	}
	k.syncAt(now)
}

// fastBoundary settles everything due up to and *including* now — the
// work syncAt would split into a strictly-before settlement plus the
// boundary-at-now task dance — and reports whether it did. It is exact
// only when nothing executing at this instant can affect that work:
//
//   - no pending event fires here (events may change rates, and
//     boundary work must run at post-event rates);
//   - the scheduler task is not due (a scheduled thread runs before the
//     tap/baseline slots and may change rates; the kernel's tasks are
//     registered first, so nothing else precedes them);
//   - every device is quiescent or settleable, so the device boundary
//     tick telescopes like the rest of the span;
//   - the boundary tasks themselves are parked past now (always true
//     under lazy settlement once each has fired once);
//   - this is not a RunUntil entry instant, where rewindDue is about to
//     re-arm the parked tasks for the Run-boundary re-step — settling
//     through now as well would perform the boundary work twice.
func (k *Kernel) fastBoundary(now units.Time) bool {
	if k.taskDevices.NextDue() <= now || k.taskTaps.NextDue() <= now ||
		k.taskBaseline.NextDue() <= now || k.taskSched.NextDue() <= now {
		return false
	}
	eng := k.Eng
	if eng.EntryInstant() || eng.PendingEventAt(now) {
		return false
	}
	if !k.devicesQuiescent() && !k.devicesSettleable() {
		return false
	}
	if k.devicesPending > now && k.tapsPending > now && k.baselinePending > now {
		k.syncSettlers(now)
		return true // nothing due through now
	}
	k.settleWindow(now, now, now)
	k.syncSettlers(now)
	return true
}

// syncSettlers lets every sweep settler replay the firings its parked
// task skipped strictly before now (tap batches through those boundaries
// are settled by the time this runs) and re-arm the task if a firing is
// due exactly now.
func (k *Kernel) syncSettlers(now units.Time) {
	for _, s := range k.settlers {
		s.SyncSweeps(now)
	}
}

// settleWindow advances the pending cursors through their limits by the
// cheapest exact strategy: with every device quiescent the device ticks
// are no-ops, so no ordering proof is needed and SettleFlows /
// billBaselineBatches self-guard their own clamping exactly; otherwise
// the depletion horizon must clear the whole window before device
// billing may be reordered against flows, and a window it cannot clear
// replays instant by instant.
func (k *Kernel) settleWindow(devLimit, flowLimit, baseLimit units.Time) {
	if k.devicesQuiescent() {
		k.settleDevices(devLimit)
		k.settleBatches(flowLimit, baseLimit)
		return
	}
	if !k.windowSafe(devLimit, flowLimit, baseLimit) {
		k.replayWindow(devLimit, flowLimit, baseLimit)
		return
	}
	k.settleDevices(devLimit)
	k.settleBatches(flowLimit, baseLimit)
}

// syncAt is the engine's advance hook: it runs once per executed
// instant, before any callback at that instant, and settles every tap
// batch, baseline batch and device tick that came due while the
// corresponding tasks were parked — so meters, experiments, the
// scheduler and netd always observe reserves exactly as a tick-by-tick
// run would have left them. Work due strictly before the instant is
// settled here; work due exactly at the instant is handed back to its
// parked task, which then fires in its registration slot after the
// instant's events — an event at the boundary may change a rate
// (SetRate, SetBacklight, a radio Send), and the fixed-tick engine
// performs the boundary's work at the post-event rate.
func (k *Kernel) syncAt(now units.Time) {
	if !k.lazySettle {
		k.syncBaselineBefore(now)
		if k.baselinePending == now && k.taskBaseline.NextDue() > now {
			k.taskBaseline.ResumeAt(now)
		}
		return
	}
	k.syncPendingBefore(now)
	if k.devicesPending == now && k.taskDevices.NextDue() > now {
		k.taskDevices.ResumeAt(now)
	}
	if k.tapsPending == now && k.taskTaps.NextDue() > now {
		k.taskTaps.ResumeAt(now)
	}
	if k.baselinePending == now && k.taskBaseline.NextDue() > now {
		k.taskBaseline.ResumeAt(now)
	}
	k.syncSettlers(now)
}

// syncLimit bounds lazy settlement at `now`: work strictly before the
// instant, and never at or past the owning task's own next firing.
func syncLimit(now units.Time, t *sim.Task) units.Time {
	limit := now - 1
	if nd := t.NextDue(); nd-1 < limit {
		limit = nd - 1
	}
	return limit
}

// fireDevices / fireTaps / fireBaseline perform exactly one firing's
// worth of work at the given instant and advance the matching pending
// cursor. They are the single definition shared by the periodic task
// callbacks, the exact-replay fallback and the end-of-Run settlement,
// so the three paths cannot drift apart.
func (k *Kernel) fireDevices(now units.Time) {
	tick := k.Eng.Tick()
	for i := range k.devices {
		k.devices[i].dev.DeviceTick(now, tick)
	}
	if due := now + tick; due > k.devicesPending {
		k.devicesPending = due
	}
}

func (k *Kernel) fireTaps(now units.Time) {
	k.Graph.Flow(k.tapBatch)
	if due := now + k.tapBatch; due > k.tapsPending {
		k.tapsPending = due
	}
}

func (k *Kernel) fireBaseline(now units.Time) {
	k.billBaseline(k.tapBatch)
	if due := now + k.tapBatch; due > k.baselinePending {
		k.baselinePending = due
	}
}

// syncPendingBefore settles every pending tap batch, baseline batch and
// device tick strictly before now. When the depletion horizon proves no
// reserve can clamp anywhere in the window — counting worst-case tap
// outflow, baseline draw and peak device draw against every source, with
// all inflows ignored — the pieces commute and each settles in closed
// form; otherwise the window replays instant by instant in exact task
// order (a dying battery's partial-drain sequence must match a
// tick-by-tick run to the microjoule).
func (k *Kernel) syncPendingBefore(now units.Time) {
	devLimit := syncLimit(now, k.taskDevices)
	flowLimit := syncLimit(now, k.taskTaps)
	baseLimit := syncLimit(now, k.taskBaseline)
	if k.devicesPending > devLimit && k.tapsPending > flowLimit && k.baselinePending > baseLimit {
		return
	}
	k.settleWindow(devLimit, flowLimit, baseLimit)
}

// windowSafe reports whether the whole pending window is clamp-free
// under worst-case assumptions, making device billing, tap flows and
// baseline billing order-independent.
func (k *Kernel) windowSafe(devLimit, flowLimit, baseLimit units.Time) bool {
	start := units.Time(math.MaxInt64)
	end := units.Time(0)
	span := func(pending, limit units.Time) {
		if pending <= limit {
			if pending < start {
				start = pending
			}
			if limit > end {
				end = limit
			}
		}
	}
	span(k.devicesPending, devLimit)
	span(k.tapsPending, flowLimit)
	span(k.baselinePending, baseLimit)
	if start > end {
		return true // nothing pending
	}
	batches := int64((end-start)/k.tapBatch) + 2
	extra := k.baselinePower() + k.devicesPeakDraw()
	return k.Graph.HorizonBatches(k.tapBatch, extra) >= batches
}

// settleDevices advances every settleable device through the ticks the
// parked device task skipped. Devices without closed-form settlement
// are provably quiescent across the whole window — leaving quiescence
// fires an activity hook, which resumes the device task and ends the
// deferral — so their skipped ticks were no-ops.
func (k *Kernel) settleDevices(devLimit units.Time) {
	if k.devicesPending > devLimit {
		return
	}
	tick := k.Eng.Tick()
	for i := range k.devices {
		if s := k.devices[i].settleable; s != nil {
			s.SettleTicks(k.devicesPending, devLimit, tick)
		}
	}
	k.devicesPending = devLimit + tick
}

// settleBatches advances the tap-flow and baseline cursors through their
// pending boundaries. The two grids coincide (same period and phase), so
// aligned boundaries settle as interleaved chunks — the graph picks the
// chunk size from its depletion horizon and bills the matching number of
// baseline batches after each chunk, preserving the flow-then-baseline
// order of every boundary.
func (k *Kernel) settleBatches(flowLimit, baseLimit units.Time) {
	for k.tapsPending <= flowLimit || k.baselinePending <= baseLimit {
		ft, bt := k.tapsPending, k.baselinePending
		flowDue, baseDue := ft <= flowLimit, bt <= baseLimit
		switch {
		case flowDue && baseDue && ft == bt:
			n := int64((flowLimit-ft)/k.tapBatch) + 1
			if nb := int64((baseLimit-bt)/k.tapBatch) + 1; nb < n {
				n = nb
			}
			k.Graph.SettleFlows(k.tapBatch, n, k.baselinePower(), k.billBaselineFn)
			d := units.Time(n) * k.tapBatch
			k.tapsPending += d
			k.baselinePending += d
		case flowDue && (!baseDue || ft < bt):
			k.fireTaps(ft)
		default:
			k.fireBaseline(bt)
		}
	}
}

// replayWindow settles the pending window instant by instant in exact
// task order — device ticks, then the tap batch, then the baseline batch
// at each boundary — the fallback when a reserve could clamp inside the
// window and ordering therefore matters.
func (k *Kernel) replayWindow(devLimit, flowLimit, baseLimit units.Time) {
	for {
		t := units.Time(math.MaxInt64)
		if k.devicesPending <= devLimit && k.devicesPending < t {
			t = k.devicesPending
		}
		if k.tapsPending <= flowLimit && k.tapsPending < t {
			t = k.tapsPending
		}
		if k.baselinePending <= baseLimit && k.baselinePending < t {
			t = k.baselinePending
		}
		if t == units.Time(math.MaxInt64) {
			return
		}
		if k.devicesPending == t && t <= devLimit {
			k.fireDevices(t)
		}
		if k.tapsPending == t && t <= flowLimit {
			k.fireTaps(t)
		}
		if k.baselinePending == t && t <= baseLimit {
			k.fireBaseline(t)
		}
	}
}

// devicesSettleable reports whether every non-quiescent device can be
// settled in closed form, including the account check: settlement
// reorders device billing against tap flows, which is only exact while
// no active tap touches a device's private reserves.
func (k *Kernel) devicesSettleable() bool {
	for i := range k.devices {
		d := &k.devices[i]
		if d.quiescent != nil && d.quiescent.Quiescent() {
			continue
		}
		if d.settleable == nil {
			return false
		}
		if d.guard != nil {
			if !d.guard.SettleSafe() {
				return false
			}
			continue
		}
		for _, r := range d.accounts {
			if k.Graph.ReserveTapped(r) {
				return false
			}
		}
	}
	return true
}

// devicesPeakDraw bounds the per-tick draw of every settleable device,
// the device share of the depletion-horizon budget.
func (k *Kernel) devicesPeakDraw() units.Power {
	var p units.Power
	for i := range k.devices {
		if s := k.devices[i].settleable; s != nil {
			p += s.PeakDraw()
		}
	}
	return p
}

// syncBaselineBefore bills pending boundaries strictly before now (and
// before the task's next firing).
func (k *Kernel) syncBaselineBefore(now units.Time) {
	limit := syncLimit(now, k.taskBaseline)
	if k.baselinePending > limit {
		return
	}
	n := int64((limit-k.baselinePending)/k.tapBatch) + 1
	k.billBaselineBatches(n)
	k.baselinePending += units.Time(n) * k.tapBatch
}

// syncBaselineThrough bills pending boundaries up to and including now;
// settle uses it once a Run has ended and no task firing can cover the
// final boundary.
func (k *Kernel) syncBaselineThrough(now units.Time) {
	k.syncBaselineBefore(now)
	if k.baselinePending == now && k.taskBaseline.NextDue() > now {
		k.billBaselineBatches(1)
		k.baselinePending += k.tapBatch
	}
}

// settle closes out lazily-deferred accounting at the end of a Run: any
// tap batches, baseline batches, device ticks and idle quanta the parked
// tasks would have performed up to the stop instant are applied in
// closed form, so callers reading Consumed or Utilization between Runs
// see exactly what a tick-by-tick engine would have produced. Work due
// exactly at the stop instant is performed in task order (devices, taps,
// baseline) if the owning task did not itself fire there.
func (k *Kernel) settle() {
	now := k.Eng.Now()
	if k.lazySettle {
		k.syncPendingBefore(now)
		if k.devicesPending == now && k.taskDevices.NextDue() > now {
			k.fireDevices(now)
		}
		if k.tapsPending == now && k.taskTaps.NextDue() > now {
			k.fireTaps(now)
		}
		if k.baselinePending == now && k.taskBaseline.NextDue() > now {
			k.fireBaseline(now)
		}
		for _, s := range k.settlers {
			s.SettleSweeps(now)
		}
	} else {
		k.syncBaselineThrough(now)
	}
	if n := int64((now - k.lastSchedAt) / k.Eng.Tick()); n > 0 {
		k.Sched.AddIdleTicks(n)
		k.lastSchedAt = now
	}
}

// billBaseline consumes the idle (plus backlight) draw directly from the
// battery, where the power meter observes it.
func (k *Kernel) billBaseline(dt units.Time) {
	p := k.baselinePower()
	var e units.Energy
	e, k.baseCarry = p.OverRem(dt, k.baseCarry)
	if e > 0 {
		// The battery is the kernel's own reserve; if it is empty the
		// device is dead and the simulation keeps running at zero cost.
		_ = k.Graph.Battery().Consume(k.kpriv, e)
	}
}

// billBaselineBatches bills n baseline batches in one closed-form debit.
// The carry arithmetic telescopes, so one n-batch OverRem equals n
// sequential single-batch calls to the microjoule — unless the battery
// cannot cover the total (a dying device), in which case the batches are
// replayed one by one so the partial-drain sequence matches a
// tick-by-tick run exactly.
func (k *Kernel) billBaselineBatches(n int64) {
	if n <= 0 {
		return
	}
	if n == 1 {
		k.billBaseline(k.tapBatch)
		return
	}
	p := k.baselinePower()
	total := int64(p)*int64(k.tapBatch)*n + k.baseCarry
	e := units.Energy(total / 1000)
	if e <= 0 || k.Graph.Battery().CanConsume(k.kpriv, e) {
		k.baseCarry = total % 1000
		if e > 0 {
			_ = k.Graph.Battery().Consume(k.kpriv, e)
		}
		return
	}
	for i := int64(0); i < n; i++ {
		k.billBaseline(k.tapBatch)
	}
}

func (k *Kernel) baselinePower() units.Power {
	p := k.Profile.Idle
	if k.backlight {
		p += k.Profile.Backlight
	}
	return p
}

// SetBacklight toggles the backlight contribution to baseline draw. Any
// lazily-deferred batches are settled at the old power first.
func (k *Kernel) SetBacklight(on bool) {
	k.syncAt(k.Eng.Now())
	k.backlight = on
	// The baseline power change moves the depletion horizon a sweep
	// settler's prediction was capped by.
	k.invalidateSettlers()
}

// KernelPriv returns the kernel's privilege set (owns the system
// category). Tests and trusted daemons (netd, the task manager) receive
// derived privileges instead.
func (k *Kernel) KernelPriv() label.Priv { return k.kpriv }

// NewCategory allocates a fresh privilege category (HiStar's category
// allocation syscall).
func (k *Kernel) NewCategory() label.Category {
	c := k.nextCat
	k.nextCat++
	return c
}

// AddDevice registers a peripheral for per-tick callbacks, asserting
// its optional capabilities (quiescence, closed-form settlement) once so
// the per-instant checks do no dynamic type tests. Devices that can
// leave quiescence asynchronously (the radio, on a Send scheduled from
// an event) are subscribed to the kernel's resume hook.
func (k *Kernel) AddDevice(d Device) {
	e := deviceEntry{dev: d}
	e.quiescent, _ = d.(QuiescentDevice)
	if s, ok := d.(SettleableDevice); ok {
		e.settleable = s
		e.guard, _ = d.(SettleGuardDevice)
		if e.guard == nil {
			e.accounts = s.SettleAccounts()
		}
	}
	k.devices = append(k.devices, e)
	if n, ok := d.(deviceActivityNotifier); ok {
		n.SetActivityHook(k.resumeKernelTasks)
	}
	k.taskDevices.Resume()
}

// AddSweepSettler registers a subsystem's closed-form sweep settlement
// with the kernel's per-instant synchronization (see SweepSettler).
func (k *Kernel) AddSweepSettler(s SweepSettler) {
	k.settlers = append(k.settlers, s)
}

// LazySettle reports whether this kernel runs closed-form settlement on
// a next-event engine — the regime in which a SweepSettler's parked task
// has its skipped firings replayed lazily. Sweep settlers refuse to
// predict outside it: on a fixed-tick engine or under per-batch
// settlement every instant executes anyway, so there is nothing to save.
func (k *Kernel) LazySettle() bool { return k.lazySettle }

// TapsSettledThrough returns the last tap-batch boundary whose flows
// have been applied. At a sweep settler's replay point (inside
// SyncSweeps at an executed instant) every boundary strictly before now
// is settled; the accessor lets the settler assert that invariant.
func (k *Kernel) TapsSettledThrough() units.Time { return k.tapsPending - k.tapBatch }

// SweepHorizonBatches bounds how many tap batches ahead a sweep settler
// may trust constant-rate extrapolation: within the horizon no reserve
// can clamp (counting worst-case tap outflow, baseline draw and peak
// device draw against every source, all inflows ignored), so const-tap
// carries telescope exactly and a skipped window decomposes per
// boundary. Predictions must not defer past it.
func (k *Kernel) SweepHorizonBatches() int64 {
	return k.Graph.HorizonBatches(k.tapBatch, k.baselinePower()+k.devicesPeakDraw())
}

// TapBatch returns the tap flow batching interval.
func (k *Kernel) TapBatch() units.Time { return k.tapBatch }

// Consumed returns total energy consumed across the system — what the
// bench supply has delivered. Experiments attach power.Meter to this.
func (k *Kernel) Consumed() units.Energy { return k.Graph.Consumed() }

// Battery returns the root reserve.
func (k *Kernel) Battery() *core.Reserve { return k.Graph.Battery() }

// BatteryExhausted reports whether the battery can no longer cover even
// one batch of baseline idle draw — the practical definition of a dead
// device (the residual level is below the billing quantum, so nothing
// can ever be paid for again).
func (k *Kernel) BatteryExhausted() bool {
	return !k.Graph.Battery().CanConsume(k.kpriv, k.baselinePower().Over(k.tapBatch))
}

// BatteryExhaustedFor reports whether the battery can no longer sustain
// the baseline idle draw for d more simulated time. The strict one-batch
// test above can fail to trip on a drained device: clamped taps, label
// decay and reserve teardown cycle a few millijoules back and forth, so
// the level floats a batch or two above the quantum indefinitely while
// nothing real can be paid for — a zombie that still executes its full
// instant load. Watchdogs that sample at a coarser resolution should
// declare death at their own granularity: a device that cannot fund one
// watch period of idle floor has no measurable life left in it.
func (k *Kernel) BatteryExhaustedFor(d units.Time) bool {
	if d < k.tapBatch {
		d = k.tapBatch
	}
	return !k.Graph.Battery().CanConsume(k.kpriv, k.baselinePower().Over(d))
}

// WatchHorizon returns the latest instant through which the battery
// provably cannot reach exhaustion, for adaptive battery watchdogs (the
// fleet's per-second battery watch defers itself to this horizon
// instead of polling 86 400 times per simulated day). It returns 0 —
// "do not defer" — unless the device is fully quiescent right now: no
// active tap, no runnable thread, every peripheral quiescent. In that
// state the baseline draw is the only drain on the battery, and every
// way the device can leave the state begins at an executed instant,
// which only occurs where an event or another task is due — so the
// horizon is the earlier of (a) the instant baseline draw alone could
// approach the exhaustion threshold, with a full watch period plus one
// batch of slack so the watchdog's own grid re-check lands strictly
// before exhaustion, and (b) the engine's earliest other pending work
// (`except` is the watchdog itself). Deferring to the horizon detects
// battery death at exactly the same grid instant dense polling would,
// which the fleet's dense-watch differential test asserts.
func (k *Kernel) WatchHorizon(except *sim.Task) units.Time {
	if k.Eng.Mode() != sim.ModeNextEvent {
		return 0
	}
	if k.Graph.ActiveTapCount() > 0 || k.Sched.RunnableCount() > 0 || !k.devicesQuiescent() {
		return 0
	}
	lvl, err := k.Graph.Battery().Level(k.kpriv)
	if err != nil {
		return 0
	}
	p := k.baselinePower()
	thresh := p.Over(k.tapBatch)
	// Slack: the exhaustion threshold itself, one extra batch for carry
	// rounding, and one watch period for the deferral's grid ceiling.
	margin := lvl - 2*thresh
	if margin <= 0 || p <= 0 {
		return 0
	}
	safe := units.Time(int64(margin) * 1000 / int64(p))
	period := units.Time(units.Second)
	if except != nil {
		period = except.Period
	}
	if safe <= period+k.tapBatch {
		return 0
	}
	horizon := k.Eng.Now() + safe - period - k.tapBatch
	if w := k.Eng.EarliestWork(except); w < horizon {
		horizon = w
	}
	if horizon <= k.Eng.Now() {
		return 0
	}
	return horizon
}

// Now returns the current simulated time.
func (k *Kernel) Now() units.Time { return k.Eng.Now() }

// Run advances the simulation by d, then settles any accounting the
// quiescence machinery deferred past the stop instant.
func (k *Kernel) Run(d units.Time) {
	k.Eng.Run(d)
	k.settle()
}

// NewMeter attaches a power meter to the kernel's consumption counter,
// reproducing the Agilent E3644A setup.
func (k *Kernel) NewMeter(name string) *power.Meter {
	return power.NewMeter(k.Eng, name, k.Consumed)
}

// CreateReserve is the reserve_create syscall (Fig. 5): a new, empty
// reserve in the given container.
func (k *Kernel) CreateReserve(parent *kobj.Container, name string, lbl label.Label) *core.Reserve {
	return k.Graph.NewReserve(parent, name, lbl, core.ReserveOpts{})
}

// CreateReserveOpts creates a reserve with explicit options (debt,
// decay exemption) for trusted daemons.
func (k *Kernel) CreateReserveOpts(parent *kobj.Container, name string, lbl label.Label, opts core.ReserveOpts) *core.Reserve {
	return k.Graph.NewReserve(parent, name, lbl, opts)
}

// CreateTap is the tap_create syscall (Fig. 5).
func (k *Kernel) CreateTap(parent *kobj.Container, name string, p label.Priv, src, sink *core.Reserve, lbl label.Label) (*core.Tap, error) {
	return k.Graph.NewTap(parent, name, p, src, sink, lbl)
}

// Wrap implements the energywrap primitive (§5.1): create a reserve fed
// from `from` by a constant tap at `rate`, both inside parent. The
// returned reserve is intended as a child thread's active reserve and is
// public (the child must be able to consume from it); tapLbl protects
// the tap so only the wrapper can change the rate. The caller needs use
// privileges on `from`.
func (k *Kernel) Wrap(parent *kobj.Container, name string, p label.Priv, from *core.Reserve, rate units.Power, tapLbl label.Label) (*core.Reserve, *core.Tap, error) {
	res := k.Graph.NewReserve(parent, name+"-reserve", label.Public(), core.ReserveOpts{})
	tap, err := k.Graph.NewTap(parent, name+"-tap", p, from, res, tapLbl)
	if err != nil {
		return nil, nil, fmt.Errorf("kernel: wrap %q: %w", name, err)
	}
	if err := tap.SetRate(p, rate); err != nil {
		return nil, nil, fmt.Errorf("kernel: wrap %q: %w", name, err)
	}
	return res, tap, nil
}

// Spawn creates a process-like unit: a container holding a thread that
// draws from the given reserves. It mirrors fork + set_active_reserve +
// exec in Fig. 5.
func (k *Kernel) Spawn(parent *kobj.Container, name string, p label.Priv, runner sched.Runner, reserves ...*core.Reserve) (*kobj.Container, *sched.Thread) {
	c := kobj.NewContainer(k.Table, parent, name, label.Public())
	th := k.Sched.NewThread(c, name, label.Public(), p, runner, reserves...)
	return c, th
}
