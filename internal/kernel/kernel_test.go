package kernel

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/units"
)

func newTestKernel(cfg Config) *Kernel {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DecayHalfLife == 0 {
		cfg.DecayHalfLife = -1 // most tests want decay off
	}
	return New(cfg)
}

func TestBaselineDrawMatchesIdlePower(t *testing.T) {
	// 10 s of idle must consume exactly 699 mW × 10 s = 6.99 J.
	k := newTestKernel(Config{})
	k.Run(10 * units.Second)
	got := k.Consumed()
	want := units.Milliwatts(699).Over(10 * units.Second)
	// The t=0 batch fires once more than the interval count; allow one
	// batch of slop.
	slop := units.Milliwatts(699).Over(DefaultTapBatch)
	if got < want || got > want+slop {
		t.Fatalf("consumed = %v, want %v (+%v slop)", got, want, slop)
	}
	if k.Graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", k.Graph.ConservationError())
	}
}

func TestBacklightAddsDraw(t *testing.T) {
	k := newTestKernel(Config{BacklightOn: true})
	k.Run(10 * units.Second)
	base := newTestKernel(Config{})
	base.Run(10 * units.Second)
	delta := k.Consumed() - base.Consumed()
	want := units.Milliwatts(555).Over(10 * units.Second)
	slop := units.Milliwatts(555).Over(DefaultTapBatch)
	if delta < want-slop || delta > want+slop {
		t.Fatalf("backlight delta = %v, want ≈%v", delta, want)
	}
}

func TestSpinnerBillsCPUOnTopOfBaseline(t *testing.T) {
	k := newTestKernel(Config{})
	res := k.CreateReserve(k.Root, "r", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, units.Kilojoule); err != nil {
		t.Fatal(err)
	}
	k.Spawn(k.Root, "spin", label.Priv{}, nil, res)
	k.Run(10 * units.Second)
	st, _ := res.Stats(label.Priv{})
	want := units.Milliwatts(137).Over(10 * units.Second)
	slack := units.Milliwatts(137).Over(10 * units.Millisecond)
	if st.Consumed < want-slack || st.Consumed > want+slack {
		t.Fatalf("CPU billed %v, want ≈%v", st.Consumed, want)
	}
}

func TestWrapLimitsChild(t *testing.T) {
	// energywrap (§5.1): a wrapped spinner limited to 1 mW gets
	// 1 mW / 137 mW ≈ 0.73 % of the CPU.
	k := newTestKernel(Config{})
	res, tap, err := k.Wrap(k.Root, "sandbox", k.KernelPriv(), k.Battery(), units.Milliwatt, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if tap.Rate() != units.Milliwatt {
		t.Fatalf("tap rate = %v", tap.Rate())
	}
	_, th := k.Spawn(k.Root, "wrapped", label.Priv{}, nil, res)
	k.Run(20 * units.Second)
	st, _ := res.Stats(label.Priv{})
	want := units.Milliwatt.Over(20 * units.Second) // 20 mJ
	if st.Consumed > want {
		t.Fatalf("wrapped child consumed %v, above its %v allotment", st.Consumed, want)
	}
	if st.Consumed < want*8/10 {
		t.Fatalf("wrapped child consumed %v, using under 80%% of %v", st.Consumed, want)
	}
	if th.TicksRun() == 0 {
		t.Fatal("wrapped child never ran")
	}
}

func TestGateBillsCaller(t *testing.T) {
	// §5.5.1: a thread entering a daemon's gate is billed for work the
	// daemon performs. The service debits 10 mJ per call from BillTo.
	k := newTestKernel(Config{})
	daemonRes := k.CreateReserve(k.Root, "daemon", label.Public())
	_, err := k.RegisterGate(k.Root, "svc", label.Public(), label.Priv{}, daemonRes,
		func(call *Call) (any, error) {
			return nil, call.BillTo().Consume(call.BillPriv(), 10*units.Millijoule)
		})
	if err != nil {
		t.Fatal(err)
	}

	callerRes := k.CreateReserve(k.Root, "caller", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), callerRes, units.Joule); err != nil {
		t.Fatal(err)
	}
	var callErr error
	_, th := k.Spawn(k.Root, "client", label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			_, callErr = k.GateCall("svc", th, nil)
			th.Exit()
		}), callerRes)
	k.Run(100 * units.Millisecond)
	if callErr != nil {
		t.Fatal(callErr)
	}
	st, _ := callerRes.Stats(label.Priv{})
	if st.Consumed < 10*units.Millijoule {
		t.Fatalf("caller billed %v, want ≥10 mJ", st.Consumed)
	}
	dst, _ := daemonRes.Stats(label.Priv{})
	if dst.Consumed != 0 {
		t.Fatalf("daemon billed %v under BillCaller", dst.Consumed)
	}
	_ = th
}

func TestGateBillsDaemonInLinuxMode(t *testing.T) {
	// §7.1: message-passing IPC cannot identify the caller, so the
	// daemon's reserve pays — the attribution failure Cinder-Linux has.
	k := newTestKernel(Config{Billing: BillDaemon})
	daemonRes := k.CreateReserve(k.Root, "daemon", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), daemonRes, units.Joule); err != nil {
		t.Fatal(err)
	}
	_, err := k.RegisterGate(k.Root, "svc", label.Public(), label.Priv{}, daemonRes,
		func(call *Call) (any, error) {
			return nil, call.BillTo().Consume(call.BillPriv(), 10*units.Millijoule)
		})
	if err != nil {
		t.Fatal(err)
	}
	callerRes := k.CreateReserve(k.Root, "caller", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), callerRes, units.Joule); err != nil {
		t.Fatal(err)
	}
	k.Spawn(k.Root, "client", label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			if _, err := k.GateCall("svc", th, nil); err != nil {
				t.Errorf("gate call: %v", err)
			}
			th.Exit()
		}), callerRes)
	k.Run(100 * units.Millisecond)
	dst, _ := daemonRes.Stats(label.Priv{})
	if dst.Consumed != 10*units.Millijoule {
		t.Fatalf("daemon billed %v, want 10 mJ", dst.Consumed)
	}
}

func TestGateRevocation(t *testing.T) {
	k := newTestKernel(Config{})
	g, err := k.RegisterGate(k.Root, "svc", label.Public(), label.Priv{}, nil,
		func(call *Call) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	res := k.CreateReserve(k.Root, "r", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, units.Joule); err != nil {
		t.Fatal(err)
	}
	th := k.Sched.NewThread(k.Root, "c", label.Public(), label.Priv{}, nil, res)
	if _, err := k.GateCall("svc", th, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.Table.Delete(g.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if _, err := k.GateCall("svc", th, nil); !errors.Is(err, ErrNoGate) {
		t.Fatalf("revoked gate err = %v, want ErrNoGate", err)
	}
}

func TestGateAccessControl(t *testing.T) {
	k := newTestKernel(Config{})
	cat := k.NewCategory()
	lbl := label.Public().With(cat, label.Level2)
	if _, err := k.RegisterGate(k.Root, "private", lbl, label.Priv{}, nil,
		func(call *Call) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	res := k.CreateReserve(k.Root, "r", label.Public())
	outsider := k.Sched.NewThread(k.Root, "o", label.Public(), label.Priv{}, nil, res)
	if _, err := k.GateCall("private", outsider, nil); !errors.Is(err, core.ErrAccess) {
		t.Fatalf("outsider entered private gate: %v", err)
	}
	insider := k.Sched.NewThread(k.Root, "i", label.Public(), label.NewPriv(cat), nil, res)
	if _, err := k.GateCall("private", insider, nil); err != nil {
		t.Fatalf("insider rejected: %v", err)
	}
}

func TestDuplicateGateName(t *testing.T) {
	k := newTestKernel(Config{})
	svc := func(call *Call) (any, error) { return nil, nil }
	if _, err := k.RegisterGate(k.Root, "svc", label.Public(), label.Priv{}, nil, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RegisterGate(k.Root, "svc", label.Public(), label.Priv{}, nil, svc); err == nil {
		t.Fatal("duplicate gate accepted")
	}
}

func TestCategoryAllocation(t *testing.T) {
	k := newTestKernel(Config{})
	a, b := k.NewCategory(), k.NewCategory()
	if a == b || a == 1 || b == 1 {
		t.Fatalf("categories %d, %d must be distinct and ≠ kernel's", a, b)
	}
}

func TestDecayRunsWhenEnabled(t *testing.T) {
	k := New(Config{Seed: 1, DecayHalfLife: core.DefaultHalfLife})
	res := k.CreateReserve(k.Root, "hoard", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, 10*units.Joule); err != nil {
		t.Fatal(err)
	}
	k.Run(10 * units.Minute)
	lvl, _ := res.Level(label.Priv{})
	want := 5 * units.Joule
	if lvl < want*99/100 || lvl > want*101/100 {
		t.Fatalf("after 10 min level = %v, want ≈5 J", lvl)
	}
}

func TestDefaultProfileIsDream(t *testing.T) {
	k := newTestKernel(Config{})
	if k.Profile.Name != power.Dream().Name {
		t.Fatalf("profile = %q", k.Profile.Name)
	}
	if lvl, _ := k.Battery().Level(k.KernelPriv()); lvl != power.Dream().BatteryCapacity {
		t.Fatalf("battery = %v", lvl)
	}
}

func TestMeterSeesBaseline(t *testing.T) {
	k := newTestKernel(Config{})
	m := k.NewMeter("agilent")
	k.Run(5 * units.Second)
	avg := units.Power(int64(m.Series().Summarize().Mean))
	want := units.Milliwatts(699)
	if avg < want*98/100 || avg > want*102/100 {
		t.Fatalf("meter mean = %v, want ≈699 mW", avg)
	}
}

func TestBatteryProtectedFromApplications(t *testing.T) {
	// Fig. 1: "the battery is protected from being misused by the web
	// browser" — application privileges cannot consume from it or tap
	// it directly.
	k := newTestKernel(Config{})
	var app label.Priv
	if err := k.Battery().Consume(app, units.Joule); !errors.Is(err, core.ErrAccess) {
		t.Fatalf("app consumed from battery: %v", err)
	}
	res := k.CreateReserve(k.Root, "r", label.Public())
	if _, err := k.CreateTap(k.Root, "steal", app, k.Battery(), res, label.Public()); !errors.Is(err, core.ErrAccess) {
		t.Fatalf("app tapped battery: %v", err)
	}
	// The kernel can.
	if _, err := k.CreateTap(k.Root, "ok", k.KernelPriv(), k.Battery(), res, label.Public()); err != nil {
		t.Fatalf("kernel tap failed: %v", err)
	}
}
