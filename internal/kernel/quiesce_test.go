package kernel

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestBacklightToggleAtBoundaryModeEquivalence pins the ordering
// contract of the lazy baseline billing: an event that changes the
// baseline power exactly on a batch boundary, while the kernel is fully
// quiescent, must be billed identically under both engines — the
// fixed-tick engine bills the boundary batch after the instant's
// events, so the parked baseline task is handed that boundary back
// rather than having the advance hook bill it at the pre-event rate.
func TestBacklightToggleAtBoundaryModeEquivalence(t *testing.T) {
	consumed := func(mode sim.Mode) units.Energy {
		k := New(Config{Seed: 1, BacklightOn: true, EngineMode: mode})
		// No threads, no taps, no devices: fully quiescent immediately.
		k.Eng.At(5*units.Second, func(*sim.Engine) { k.SetBacklight(false) })
		k.Run(10 * units.Second)
		return k.Consumed()
	}
	fixed, next := consumed(sim.ModeFixedTick), consumed(sim.ModeNextEvent)
	if fixed != next {
		t.Fatalf("consumed diverges: fixed-tick %v vs next-event %v (Δ %v)",
			fixed, next, next-fixed)
	}
}

// TestQuiescentIdleAccounting asserts the closed-form settlement: an
// idle kernel's utilization and consumption match between engines even
// across multiple Run calls (whose boundary instants are re-stepped).
func TestQuiescentIdleAccounting(t *testing.T) {
	type snap struct {
		consumed    units.Energy
		busy, idle  int64
		utilization float64
	}
	run := func(mode sim.Mode) snap {
		k := New(Config{Seed: 2, EngineMode: mode})
		for i := 0; i < 3; i++ {
			k.Run(7 * units.Second)
		}
		return snap{k.Consumed(), k.Sched.BusyTicks(), k.Sched.IdleTicks(), k.Sched.Utilization()}
	}
	fixed, next := run(sim.ModeFixedTick), run(sim.ModeNextEvent)
	if fixed != next {
		t.Fatalf("idle accounting diverges:\nfixed-tick %+v\nnext-event %+v", fixed, next)
	}
	if next.idle == 0 {
		t.Fatal("no idle ticks recorded for an idle kernel")
	}
}
