package kernel

import (
	"testing"

	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestBacklightToggleAtBoundaryModeEquivalence pins the ordering
// contract of the lazy baseline billing: an event that changes the
// baseline power exactly on a batch boundary, while the kernel is fully
// quiescent, must be billed identically under both engines — the
// fixed-tick engine bills the boundary batch after the instant's
// events, so the parked baseline task is handed that boundary back
// rather than having the advance hook bill it at the pre-event rate.
func TestBacklightToggleAtBoundaryModeEquivalence(t *testing.T) {
	consumed := func(mode sim.Mode) units.Energy {
		k := New(Config{Seed: 1, BacklightOn: true, EngineMode: mode})
		// No threads, no taps, no devices: fully quiescent immediately.
		k.Eng.At(5*units.Second, func(*sim.Engine) { k.SetBacklight(false) })
		k.Run(10 * units.Second)
		return k.Consumed()
	}
	fixed, next := consumed(sim.ModeFixedTick), consumed(sim.ModeNextEvent)
	if fixed != next {
		t.Fatalf("consumed diverges: fixed-tick %v vs next-event %v (Δ %v)",
			fixed, next, next-fixed)
	}
}

// TestReserveDeletionRestoresQuiescence is the regression test for the
// tap-lifecycle leak: deleting a reserve that is the endpoint of a live
// tap used to leave the tap in the graph's active set forever, so the
// kernel's flow/baseline batch tasks never parked again and an idle
// post-deletion run degenerated to tick-by-tick execution. After the
// fix, the deletion deactivates the orphaned tap, ActiveTapCount drops
// to zero, and the remainder of the run re-enters the next-event fast
// path (executed instants ≪ ticks).
func TestReserveDeletionRestoresQuiescence(t *testing.T) {
	k := New(Config{Seed: 3, EngineMode: sim.ModeNextEvent})
	// An app whose reserve lives in its own container while the feeding
	// tap lives in root: deleting the app container kills the reserve
	// but not the tap — the exact shape that leaked.
	app := kobj.NewContainer(k.Table, k.Root, "app", label.Public())
	res := k.CreateReserve(app, "app-reserve", label.Public())
	tap, err := k.CreateTap(k.Root, "app-tap", k.KernelPriv(), k.Battery(), res, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(k.KernelPriv(), units.Milliwatts(10)); err != nil {
		t.Fatal(err)
	}
	k.Run(10 * units.Second)

	if err := k.Table.Delete(app.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if got := k.Graph.ActiveTapCount(); got != 0 {
		t.Fatalf("ActiveTapCount = %d after reserve deletion, want 0", got)
	}

	// The rest of the run is pure idle: the engine must visit only a
	// tiny fraction of the remaining ticks (1 s decay task + horizon
	// instants, not 10 ms tap batches).
	before := k.Eng.Steps()
	idle := units.Time(10 * units.Minute)
	k.Run(idle)
	steps := k.Eng.Steps() - before
	ticks := uint64(idle / k.Eng.Tick())
	if steps*100 >= ticks {
		t.Fatalf("idle run executed %d instants over %d ticks — quiescence fast path not restored", steps, ticks)
	}

	// And the accounting must still match a tick-by-tick run.
	k2 := New(Config{Seed: 3, EngineMode: sim.ModeFixedTick})
	app2 := kobj.NewContainer(k2.Table, k2.Root, "app", label.Public())
	res2 := k2.CreateReserve(app2, "app-reserve", label.Public())
	tap2, err := k2.CreateTap(k2.Root, "app-tap", k2.KernelPriv(), k2.Battery(), res2, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap2.SetRate(k2.KernelPriv(), units.Milliwatts(10)); err != nil {
		t.Fatal(err)
	}
	k2.Run(10 * units.Second)
	if err := k2.Table.Delete(app2.ObjectID()); err != nil {
		t.Fatal(err)
	}
	k2.Run(idle)
	if k.Consumed() != k2.Consumed() {
		t.Fatalf("post-deletion consumption diverges: next-event %v vs fixed-tick %v",
			k.Consumed(), k2.Consumed())
	}
}

// TestQuiescentIdleAccounting asserts the closed-form settlement: an
// idle kernel's utilization and consumption match between engines even
// across multiple Run calls (whose boundary instants are re-stepped).
func TestQuiescentIdleAccounting(t *testing.T) {
	type snap struct {
		consumed    units.Energy
		busy, idle  int64
		utilization float64
	}
	run := func(mode sim.Mode) snap {
		k := New(Config{Seed: 2, EngineMode: mode})
		for i := 0; i < 3; i++ {
			k.Run(7 * units.Second)
		}
		return snap{k.Consumed(), k.Sched.BusyTicks(), k.Sched.IdleTicks(), k.Sched.Utilization()}
	}
	fixed, next := run(sim.ModeFixedTick), run(sim.ModeNextEvent)
	if fixed != next {
		t.Fatalf("idle accounting diverges:\nfixed-tick %+v\nnext-event %+v", fixed, next)
	}
	if next.idle == 0 {
		t.Fatal("no idle ticks recorded for an idle kernel")
	}
}
