package estimator

import (
	"fmt"

	"repro/internal/snap"
	"repro/internal/units"
)

// Snapshot serializes the estimator's mutable state. The radio
// subscription and α are structural — the rebuilt world re-creates
// them — so only the running estimate, the extremes and the diagnostic
// history travel.
func (e *ActivationEstimator) Snapshot(w *snap.Writer) {
	w.Section("estimator")
	w.I64(e.alphaPct)
	w.I64(int64(e.estimate))
	w.I64(e.observations)
	w.I64(int64(e.min))
	w.I64(int64(e.max))
	w.U64(uint64(len(e.history)))
	for _, h := range e.history {
		w.I64(int64(h))
	}
}

// Restore overlays a snapshot onto a freshly rebuilt estimator. A
// differing α means the rebuilt device was configured differently from
// the checkpointed one; that is a loud error, not a silent divergence.
func (e *ActivationEstimator) Restore(r *snap.Reader) error {
	r.Section("estimator")
	alphaPct := r.I64()
	estimate := units.Energy(r.I64())
	observations := r.I64()
	minE := units.Energy(r.I64())
	maxE := units.Energy(r.I64())
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if alphaPct != e.alphaPct {
		return fmt.Errorf("estimator: restore: snapshot α=%d%%, rebuilt estimator α=%d%%", alphaPct, e.alphaPct)
	}
	if n > 64 {
		return fmt.Errorf("estimator: restore: snapshot history holds %d entries, ring caps at 64", n)
	}
	hist := e.history[:0]
	for i := 0; i < n; i++ {
		hist = append(hist, units.Energy(r.I64()))
	}
	if err := r.Err(); err != nil {
		return err
	}
	e.estimate = estimate
	e.observations = observations
	e.min = minE
	e.max = maxE
	e.history = hist
	return nil
}
