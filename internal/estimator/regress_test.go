package estimator

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/snap"
	"repro/internal/units"
)

// seeded builds an estimator in the post-construction state without a
// radio rig: α set, profile prior folded in, min at its sentinel.
func seeded(alphaPct int64, prior units.Energy) *ActivationEstimator {
	return &ActivationEstimator{alphaPct: alphaPct, estimate: prior, min: units.MaxEnergy}
}

func TestSmallCorrectionsEscapeTruncationDeadBand(t *testing.T) {
	// Regression for the integer-truncation bias: with α = 25 %, a
	// correction of −2 µJ scales to −50/100. Truncation toward zero
	// discards it and the estimate never moves; rounding half away from
	// zero steps it down 1 µJ per observation until the delta is inside
	// the half-granule (100/2α = 2 µJ).
	e := seeded(25, 1000)
	for i := 0; i < 10; i++ {
		e.Observe(998)
	}
	if got := e.Estimate(); got != 999 {
		t.Fatalf("estimate = %d µJ after ten −2 µJ corrections, want 999 (truncating EWMA sticks at 1000)", got)
	}
}

func TestOutlierRatchetWalksBackDown(t *testing.T) {
	// The failure mode the fix addresses end-to-end: one high outlier
	// ratchets the estimate up, then a stream of observations at the
	// true cost must walk it back. A truncating EWMA stalls as soon as
	// |cost − estimate|·α < 100 — at α = 25 % that parks the estimate
	// 3 µJ high forever; the rounded update converges to within the
	// half-granule.
	const truth = units.Energy(1000)
	e := seeded(25, truth)
	e.Observe(1300)
	if e.Estimate() <= truth {
		t.Fatalf("outlier did not raise the estimate: %d", e.Estimate())
	}
	for i := 0; i < 50; i++ {
		e.Observe(truth)
	}
	if got := e.Estimate(); got > truth+2 {
		t.Fatalf("estimate = %d µJ after walking back, want ≤ %d (truncating EWMA parks at %d)",
			got, truth+2, truth+3)
	}
}

func TestBoundsZeroBeforeFirstObservation(t *testing.T) {
	_, r := newRadioRig(t, false)
	e := NewActivationEstimator(r, 0)
	if min, max := e.Bounds(); min != 0 || max != 0 {
		t.Fatalf("fresh Bounds() = (%d, %d), want (0, 0) — min sentinel leaked", min, max)
	}
	e.Observe(units.Joules(7))
	if min, max := e.Bounds(); min != units.Joules(7) || max != units.Joules(7) {
		t.Fatalf("Bounds() after one obs = (%v, %v), want both 7 J", min, max)
	}
}

func snapBytes(t *testing.T, e *ActivationEstimator) []byte {
	t.Helper()
	w := snap.NewWriter()
	e.Snapshot(w)
	b, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := seeded(25, units.Joules(9.5))
	for _, c := range []units.Energy{units.Joules(8), units.Joules(11), units.Joules(9.2)} {
		e.Observe(c)
	}
	b := snapBytes(t, e)

	r, err := snap.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	e2 := seeded(25, units.Joules(9.5))
	if err := e2.Restore(r); err != nil {
		t.Fatal(err)
	}
	if e2.String() != e.String() {
		t.Fatalf("restored state %q != original %q", e2, e)
	}
	// Byte-equality is the bar the fleet resume path holds snapshots
	// to: re-serializing the restored estimator must reproduce the
	// original snapshot exactly.
	if !bytes.Equal(snapBytes(t, e2), b) {
		t.Fatal("re-snapshot of restored estimator differs from original")
	}
}

func TestRestoreRejectsAlphaMismatch(t *testing.T) {
	e := seeded(25, units.Joules(9.5))
	e.Observe(units.Joules(9))
	r, err := snap.Open(snapBytes(t, e))
	if err != nil {
		t.Fatal(err)
	}
	e2 := seeded(30, units.Joules(9.5))
	if err := e2.Restore(r); err == nil || !strings.Contains(err.Error(), "α") {
		t.Fatalf("α mismatch restore err = %v, want loud α complaint", err)
	}
}

func TestRestoreRejectsOversizedHistory(t *testing.T) {
	// A snapshot claiming more history than the 64-entry ring must fail
	// loudly instead of silently growing the ring (or reading garbage).
	w := snap.NewWriter()
	w.Section("estimator")
	w.I64(25)          // α
	w.I64(9_500_000)   // estimate
	w.I64(65)          // observations
	w.I64(1)           // min
	w.I64(100_000_000) // max
	w.U64(65)          // history length over the cap
	for i := 0; i < 65; i++ {
		w.I64(1)
	}
	b, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := snap.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	e := seeded(25, units.Joules(9.5))
	if err := e.Restore(r); err == nil || !strings.Contains(err.Error(), "caps at 64") {
		t.Fatalf("oversized history restore err = %v, want ring-cap complaint", err)
	}
}
