// Package estimator implements the adaptive energy-model refinement the
// paper sketches as future work: "Using the HTC Dream's limited battery
// level information Cinder could adapt its energy model based on past
// component and application usage, dynamically refining its costs"
// (§9), building on the §4.4 observation that Cinder "can take advantage
// of new accounting techniques".
//
// ActivationEstimator maintains an exponentially-weighted moving average
// of the radio's measured per-activation overhead. netd can use it in
// place of the static 9.5 J constant (netd.Config.Estimator), so the
// pooling threshold tracks the device's actual behaviour — including the
// outliers Fig. 4 shows.
package estimator

import (
	"fmt"

	"repro/internal/radio"
	"repro/internal/units"
)

// DefaultAlphaPct is the EWMA weight (percent) given to each new
// observation.
const DefaultAlphaPct = 25

// ActivationEstimator tracks radio activation overhead online.
type ActivationEstimator struct {
	alphaPct     int64
	estimate     units.Energy
	observations int64
	min, max     units.Energy
	// history keeps recent observations for diagnostics.
	history []units.Energy
}

// NewActivationEstimator seeds the estimator with the offline-measured
// prior (the profile's 9.5 J) and subscribes it to the radio's episode
// stream.
func NewActivationEstimator(r *radio.Radio, alphaPct int) *ActivationEstimator {
	if alphaPct <= 0 || alphaPct > 100 {
		alphaPct = DefaultAlphaPct
	}
	e := &ActivationEstimator{
		alphaPct: int64(alphaPct),
		estimate: r.Profile().RadioActivationEnergy,
		min:      units.MaxEnergy,
	}
	r.OnEpisode(e.Observe)
	return e
}

// Observe folds one measured episode cost into the running estimate.
func (e *ActivationEstimator) Observe(cost units.Energy) {
	if cost <= 0 {
		return
	}
	e.observations++
	if cost < e.min {
		e.min = cost
	}
	if cost > e.max {
		e.max = cost
	}
	if len(e.history) < 64 {
		e.history = append(e.history, cost)
	} else {
		copy(e.history, e.history[1:])
		e.history[len(e.history)-1] = cost
	}
	// estimate += α (cost − estimate), in integer percent arithmetic,
	// rounding the correction half away from zero. Go's integer division
	// truncates toward zero, so a truncating EWMA dead-bands any delta
	// below 100/α µJ — in the downward direction that means one high
	// outlier would ratchet the estimate up and small corrections could
	// never walk it back down, over-predicting forever.
	num := int64(cost-e.estimate) * e.alphaPct
	if num >= 0 {
		num += 50
	} else {
		num -= 50
	}
	e.estimate += units.Energy(num / 100)
}

// Estimate returns the current activation-cost prediction.
func (e *ActivationEstimator) Estimate() units.Energy { return e.estimate }

// Observations returns the number of episodes folded in.
func (e *ActivationEstimator) Observations() int64 { return e.observations }

// Bounds returns the extremes observed so far, or (0, 0) before the
// first observation — the internal min sentinel (MaxEnergy) and the
// zero max are meaningless individually and used to leak through.
func (e *ActivationEstimator) Bounds() (min, max units.Energy) {
	if e.observations == 0 {
		return 0, 0
	}
	return e.min, e.max
}

// String renders the estimator state.
func (e *ActivationEstimator) String() string {
	return fmt.Sprintf("activation≈%v after %d episodes (observed %v–%v)",
		e.estimate, e.observations, e.min, e.max)
}
