// Package estimator implements the adaptive energy-model refinement the
// paper sketches as future work: "Using the HTC Dream's limited battery
// level information Cinder could adapt its energy model based on past
// component and application usage, dynamically refining its costs"
// (§9), building on the §4.4 observation that Cinder "can take advantage
// of new accounting techniques".
//
// ActivationEstimator maintains an exponentially-weighted moving average
// of the radio's measured per-activation overhead. netd can use it in
// place of the static 9.5 J constant (netd.Config.Estimator), so the
// pooling threshold tracks the device's actual behaviour — including the
// outliers Fig. 4 shows.
package estimator

import (
	"fmt"

	"repro/internal/radio"
	"repro/internal/units"
)

// DefaultAlphaPct is the EWMA weight (percent) given to each new
// observation.
const DefaultAlphaPct = 25

// ActivationEstimator tracks radio activation overhead online.
type ActivationEstimator struct {
	alphaPct     int64
	estimate     units.Energy
	observations int64
	min, max     units.Energy
	// history keeps recent observations for diagnostics.
	history []units.Energy
}

// NewActivationEstimator seeds the estimator with the offline-measured
// prior (the profile's 9.5 J) and subscribes it to the radio's episode
// stream.
func NewActivationEstimator(r *radio.Radio, alphaPct int) *ActivationEstimator {
	if alphaPct <= 0 || alphaPct > 100 {
		alphaPct = DefaultAlphaPct
	}
	e := &ActivationEstimator{
		alphaPct: int64(alphaPct),
		estimate: r.Profile().RadioActivationEnergy,
		min:      units.MaxEnergy,
	}
	r.OnEpisode(e.Observe)
	return e
}

// Observe folds one measured episode cost into the running estimate.
func (e *ActivationEstimator) Observe(cost units.Energy) {
	if cost <= 0 {
		return
	}
	e.observations++
	if cost < e.min {
		e.min = cost
	}
	if cost > e.max {
		e.max = cost
	}
	if len(e.history) < 64 {
		e.history = append(e.history, cost)
	} else {
		copy(e.history, e.history[1:])
		e.history[len(e.history)-1] = cost
	}
	// estimate += α (cost − estimate), in integer percent arithmetic.
	e.estimate += units.Energy(int64(cost-e.estimate) * e.alphaPct / 100)
}

// Estimate returns the current activation-cost prediction.
func (e *ActivationEstimator) Estimate() units.Energy { return e.estimate }

// Observations returns the number of episodes folded in.
func (e *ActivationEstimator) Observations() int64 { return e.observations }

// Bounds returns the extremes observed so far (min is MaxEnergy before
// the first observation).
func (e *ActivationEstimator) Bounds() (min, max units.Energy) { return e.min, e.max }

// String renders the estimator state.
func (e *ActivationEstimator) String() string {
	return fmt.Sprintf("activation≈%v after %d episodes (observed %v–%v)",
		e.estimate, e.observations, e.min, e.max)
}
