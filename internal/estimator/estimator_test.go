package estimator

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/kernel"
	"repro/internal/label"
	"repro/internal/netd"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/units"
)

func newRadioRig(t *testing.T, jitter bool) (*kernel.Kernel, *radio.Radio) {
	t.Helper()
	k := kernel.New(kernel.Config{Seed: 23, DecayHalfLife: -1})
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{
		Profile: k.Profile,
		Jitter:  jitter,
	})
	k.AddDevice(r)
	return k, r
}

func TestSeedsWithProfilePrior(t *testing.T) {
	_, r := newRadioRig(t, false)
	e := NewActivationEstimator(r, 0)
	if e.Estimate() != units.Joules(9.5) {
		t.Fatalf("prior = %v, want 9.5 J", e.Estimate())
	}
	if e.Observations() != 0 {
		t.Fatal("fresh estimator has observations")
	}
}

func TestObserveEWMA(t *testing.T) {
	e := &ActivationEstimator{alphaPct: 50, estimate: units.Joules(10), min: units.MaxEnergy}
	e.Observe(units.Joules(8))
	if e.Estimate() != units.Joules(9) {
		t.Fatalf("after one obs = %v, want 9 J", e.Estimate())
	}
	e.Observe(units.Joules(9))
	if e.Estimate() != units.Joules(9) {
		t.Fatalf("stable obs moved estimate to %v", e.Estimate())
	}
	min, max := e.Bounds()
	if min != units.Joules(8) || max != units.Joules(9) {
		t.Fatalf("bounds = %v, %v", min, max)
	}
	e.Observe(0) // ignored
	if e.Observations() != 2 {
		t.Fatalf("observations = %d", e.Observations())
	}
}

func TestConvergesOnMeasuredEpisodes(t *testing.T) {
	// Drive 15 jittered activations; the estimate must settle inside
	// the observed envelope and within ≈1 J of the sample mean.
	k, r := newRadioRig(t, true)
	e := NewActivationEstimator(r, 30)
	var sum units.Energy
	var n int
	r.OnEpisode(func(cost units.Energy) {
		// Chain: estimator subscribed first is replaced by this hook,
		// so re-feed it manually while also accumulating the mean.
		e.Observe(cost)
		sum += cost
		n++
	})
	for i := 0; i < 15; i++ {
		at := units.Second + units.Time(i)*40*units.Second
		k.Eng.At(at, func(eng *sim.Engine) {
			r.Send(eng.Now(), 1, nil, label.Priv{})
		})
	}
	k.Run(15 * 40 * units.Second)
	if n != 15 {
		t.Fatalf("episodes = %d, want 15", n)
	}
	mean := sum / units.Energy(n)
	diff := e.Estimate() - mean
	if diff < 0 {
		diff = -diff
	}
	if diff > units.Joule {
		t.Fatalf("estimate %v vs sample mean %v: off by %v", e.Estimate(), mean, diff)
	}
	min, max := e.Bounds()
	if e.Estimate() < min || e.Estimate() > max {
		t.Fatalf("estimate %v outside observed [%v, %v]", e.Estimate(), min, max)
	}
}

func TestNetdUsesEstimator(t *testing.T) {
	// netd configured with the online estimator still pools and fires;
	// after activations the threshold follows the estimator rather than
	// the static constant.
	k, r := newRadioRig(t, true)
	est := NewActivationEstimator(r, 25)
	n, err := netd.New(k, r, netd.Config{Cooperative: true, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []units.Time{units.Second, 16 * units.Second} {
		if _, err := apps.NewPoller(k, k.Root, "p", k.KernelPriv(), k.Battery(), apps.PollerConfig{
			Interval: 60 * units.Second, Phase: phase,
			Rate: units.Milliwatts(99), ReqBytes: 300, RespBytes: 8 << 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(6 * units.Minute)
	if r.Stats().Activations < 3 {
		t.Fatalf("activations = %d, want ≥3", r.Stats().Activations)
	}
	if est.Observations() < 3 {
		t.Fatalf("estimator observations = %d", est.Observations())
	}
	if n.Stats().PowerUps == 0 {
		t.Fatal("netd never fired with estimator-driven threshold")
	}
	// Estimate stays in the physical envelope.
	if est.Estimate() < units.Joules(8) || est.Estimate() > units.Joules(13) {
		t.Fatalf("estimate drifted to %v", est.Estimate())
	}
}

func TestStringer(t *testing.T) {
	_, r := newRadioRig(t, false)
	e := NewActivationEstimator(r, 25)
	if e.String() == "" {
		t.Fatal("empty String")
	}
}
