// Package msm models the Qualcomm MSM7201A's two-core architecture as
// the paper describes it (§4.1, §7, Figures 2, 15, 16): applications and
// Cinder run on the ARM11, while a secure, closed ARM9 coprocessor
// manages the most energy-hungry components — the radio data path, GPS,
// voice calls, SMS, and the battery sensor (exposed only as an integer
// from 0 to 100). The two cores communicate through shared memory and
// interrupt lines.
//
// On the Cinder side, the user-level smdd daemon (smdd.go) drains the
// shared-memory channel and exports the baseband services as kernel
// gates, so every request is billed to the *calling* thread's reserve
// (§5.5.1) — the property that motivated building on HiStar rather than
// Linux.
//
// The ARM9's behaviour is deliberately opaque to the rest of the system:
// its power draw is modelled (voice-call and GPS draw are synthetic,
// flagged in DESIGN.md — the paper publishes no numbers for them), its
// timeouts are fixed, and the ARM11 can only talk to it through
// messages, mirroring "the closed nature of its hardware".
package msm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// MsgKind enumerates the shared-memory message types.
type MsgKind uint8

const (
	// ARM11 → ARM9 requests.
	ReqBatteryLevel MsgKind = iota
	ReqSendSMS
	ReqDial
	ReqHangup
	ReqGPSStart
	ReqGPSStop

	// ARM9 → ARM11 responses and events.
	RespBatteryLevel
	RespSMSSent
	RespCallState
	EvIncomingSMS
	EvIncomingCall
	EvGPSFix
)

// String returns the message kind name.
func (k MsgKind) String() string {
	names := map[MsgKind]string{
		ReqBatteryLevel: "ReqBatteryLevel", ReqSendSMS: "ReqSendSMS",
		ReqDial: "ReqDial", ReqHangup: "ReqHangup",
		ReqGPSStart: "ReqGPSStart", ReqGPSStop: "ReqGPSStop",
		RespBatteryLevel: "RespBatteryLevel", RespSMSSent: "RespSMSSent",
		RespCallState: "RespCallState", EvIncomingSMS: "EvIncomingSMS",
		EvIncomingCall: "EvIncomingCall", EvGPSFix: "EvGPSFix",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Message is one shared-memory datagram between the cores.
type Message struct {
	Kind MsgKind
	// Seq correlates responses with requests.
	Seq uint64
	// Arg carries a small integer payload (battery percent, call state,
	// SMS length...).
	Arg int64
	// Str carries a text payload (dialled number, SMS body).
	Str string
}

// CallState enumerates the voice-call state machine.
type CallState uint8

const (
	CallIdle CallState = iota
	CallDialing
	CallActive
	CallEnded
)

// String returns the call-state name.
func (s CallState) String() string {
	switch s {
	case CallIdle:
		return "idle"
	case CallDialing:
		return "dialing"
	case CallActive:
		return "active"
	default:
		return "ended"
	}
}

// SharedMemory is the inter-core channel: two bounded queues plus an
// interrupt callback per direction. Messages are delivered with a small
// latency, modelling the interrupt + copy path.
type SharedMemory struct {
	eng     *sim.Engine
	latency units.Time
	// toApps is drained by smdd on the ARM11.
	toApps []Message
	// irqApps fires when a message lands in toApps.
	irqApps func()
}

// NewSharedMemory creates the channel with the given delivery latency
// (a few ms on real hardware).
func NewSharedMemory(eng *sim.Engine, latency units.Time) *SharedMemory {
	if latency <= 0 {
		latency = 5 * units.Millisecond
	}
	return &SharedMemory{eng: eng, latency: latency}
}

// OnAppIRQ registers the ARM11-side interrupt handler (smdd's).
func (sm *SharedMemory) OnAppIRQ(fn func()) { sm.irqApps = fn }

// postToApps schedules delivery of a message to the ARM11 side.
func (sm *SharedMemory) postToApps(m Message) {
	sm.eng.After(sm.latency, func(*sim.Engine) {
		sm.toApps = append(sm.toApps, m)
		if sm.irqApps != nil {
			sm.irqApps()
		}
	})
}

// DrainApps returns and clears the pending ARM11-bound messages.
func (sm *SharedMemory) DrainApps() []Message {
	out := sm.toApps
	sm.toApps = nil
	return out
}

// ARM9Config parameterizes the baseband model.
type ARM9Config struct {
	// SMSTransmitTime is the radio time to push one message.
	SMSTransmitTime units.Time
	// CallSetupTime is dial → active latency.
	CallSetupTime units.Time
	// GPSFixTime is the cold-fix acquisition latency.
	GPSFixTime units.Time
	// GPSFixInterval is the period between fixes while tracking.
	GPSFixInterval units.Time
}

// DefaultARM9Config returns plausible cellular latencies.
func DefaultARM9Config() ARM9Config {
	return ARM9Config{
		SMSTransmitTime: 1500 * units.Millisecond,
		CallSetupTime:   4 * units.Second,
		GPSFixTime:      12 * units.Second,
		GPSFixInterval:  units.Second,
	}
}

// ARM9 is the closed baseband coprocessor.
type ARM9 struct {
	eng *sim.Engine
	sm  *SharedMemory
	cfg ARM9Config
	// batteryPercent supplies the quantized battery reading (the only
	// visibility the ARM9 grants, §4.1).
	batteryPercent func() int64

	call     CallState
	gpsOn    bool
	gpsTask  *sim.Task
	smsSent  int64
	seq      uint64
	statsSMS int64
	// onActivity, when set, fires the moment the baseband starts a
	// continuous draw (call goes active, GPS engine powers on) — the
	// instants at which smdd stops being quiescent and the kernel must
	// resume per-tick device servicing.
	onActivity func()
}

// SetActivityHook installs fn to be called when the baseband begins a
// continuous draw. Pass nil to remove.
func (a *ARM9) SetActivityHook(fn func()) { a.onActivity = fn }

func (a *ARM9) notifyActivity() {
	if a.onActivity != nil {
		a.onActivity()
	}
}

// NewARM9 boots the baseband. batteryPercent is sampled on demand.
func NewARM9(eng *sim.Engine, sm *SharedMemory, cfg ARM9Config, batteryPercent func() int64) *ARM9 {
	return &ARM9{eng: eng, sm: sm, cfg: cfg, batteryPercent: batteryPercent}
}

// Request is the ARM11→ARM9 entry point (what a write to the shared
// memory ring ends up invoking after the interrupt).
func (a *ARM9) Request(m Message) {
	switch m.Kind {
	case ReqBatteryLevel:
		p := a.batteryPercent()
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		a.sm.postToApps(Message{Kind: RespBatteryLevel, Seq: m.Seq, Arg: p})
	case ReqSendSMS:
		a.eng.After(a.cfg.SMSTransmitTime, func(*sim.Engine) {
			a.smsSent++
			a.sm.postToApps(Message{Kind: RespSMSSent, Seq: m.Seq, Arg: int64(len(m.Str))})
		})
	case ReqDial:
		if a.call != CallIdle {
			a.sm.postToApps(Message{Kind: RespCallState, Seq: m.Seq, Arg: int64(a.call)})
			return
		}
		a.call = CallDialing
		a.sm.postToApps(Message{Kind: RespCallState, Seq: m.Seq, Arg: int64(CallDialing)})
		a.eng.After(a.cfg.CallSetupTime, func(*sim.Engine) {
			if a.call == CallDialing {
				a.call = CallActive
				a.notifyActivity()
				a.sm.postToApps(Message{Kind: RespCallState, Seq: m.Seq, Arg: int64(CallActive)})
			}
		})
	case ReqHangup:
		if a.call != CallIdle {
			a.call = CallIdle
			a.sm.postToApps(Message{Kind: RespCallState, Seq: m.Seq, Arg: int64(CallEnded)})
		}
	case ReqGPSStart:
		if a.gpsOn {
			return
		}
		a.gpsOn = true
		a.notifyActivity()
		first := a.eng.Now() + a.cfg.GPSFixTime
		a.gpsTask = a.eng.EveryPhased("arm9:gps",
			a.cfg.GPSFixInterval, alignUp(first, a.cfg.GPSFixInterval),
			func(e *sim.Engine) {
				a.sm.postToApps(Message{Kind: EvGPSFix, Arg: int64(e.Now())})
			})
	case ReqGPSStop:
		if a.gpsTask != nil {
			a.gpsTask.Stop()
			a.gpsTask = nil
		}
		a.gpsOn = false
	default:
		// The closed firmware silently drops unknown requests.
	}
}

// InjectIncomingSMS simulates a network-originated message (tests and
// examples use it).
func (a *ARM9) InjectIncomingSMS(body string) {
	a.sm.postToApps(Message{Kind: EvIncomingSMS, Arg: int64(len(body)), Str: body})
}

// InjectIncomingCall simulates a mobile-terminated call.
func (a *ARM9) InjectIncomingCall(number string) {
	a.sm.postToApps(Message{Kind: EvIncomingCall, Str: number})
}

// CallStateNow returns the baseband's call state.
func (a *ARM9) CallStateNow() CallState { return a.call }

// GPSOn reports whether the GPS engine is powered.
func (a *ARM9) GPSOn() bool { return a.gpsOn }

// SMSSent returns the number of messages transmitted.
func (a *ARM9) SMSSent() int64 { return a.smsSent }

// alignUp rounds t up to the next multiple of step (the engine requires
// phases on the tick grid; step is always tick-aligned here).
func alignUp(t, step units.Time) units.Time {
	if step <= 0 {
		return t
	}
	rem := t % step
	if rem == 0 {
		return t
	}
	return t + step - rem
}
