package msm

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/label"
	"repro/internal/sched"
	"repro/internal/units"
)

// rig builds a kernel with smdd and a funded application thread that
// executes fn once.
type rig struct {
	k    *kernel.Kernel
	d    *Smdd
	res  *core.Reserve
	th   *sched.Thread
	errc chan error
}

func newRig(t *testing.T, fund units.Energy, fn func(r *rig, th *sched.Thread) error) *rig {
	t.Helper()
	k := kernel.New(kernel.Config{Seed: 8, DecayHalfLife: -1})
	d, err := NewSmdd(k, DefaultSmddConfig(), DefaultARM9Config())
	if err != nil {
		t.Fatal(err)
	}
	res := k.CreateReserveOpts(k.Root, "app", label.Public(), core.ReserveOpts{AllowDebt: true})
	if fund > 0 {
		if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, fund); err != nil {
			t.Fatal(err)
		}
	}
	r := &rig{k: k, d: d, res: res, errc: make(chan error, 1)}
	ran := false
	_, r.th = k.Spawn(k.Root, "app", label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			if ran {
				th.Exit()
				return
			}
			ran = true
			if err := fn(r, th); err != nil {
				select {
				case r.errc <- err:
				default:
				}
			}
		}), res)
	return r
}

func (r *rig) err() error {
	select {
	case err := <-r.errc:
		return err
	default:
		return nil
	}
}

func TestBatteryLevelQuantized(t *testing.T) {
	// §4.1: "the ARM9 exposes the battery level as an integer from 0 to
	// 100". A fresh battery reads 100; reads cost a shared-memory round
	// trip.
	var got int64 = -1
	r := newRig(t, units.Joule, func(r *rig, th *sched.Thread) error {
		_, err := r.k.GateCall(GateBattery, th, BatteryRequest{
			OnReply: func(pct int64) { got = pct },
		})
		return err
	})
	r.k.Run(units.Second)
	if err := r.err(); err != nil {
		t.Fatal(err)
	}
	if got != 99 && got != 100 { // baseline burn may shave a fraction
		t.Fatalf("battery pct = %d, want ≈100", got)
	}
	if r.d.Stats().BatteryReads != 1 {
		t.Fatalf("reads = %d", r.d.Stats().BatteryReads)
	}
}

func TestSMSBilledToSender(t *testing.T) {
	var sentAt units.Time
	r := newRig(t, 5*units.Joule, func(r *rig, th *sched.Thread) error {
		_, err := r.k.GateCall(GateSMS, th, SMSRequest{
			Body:   "meet at 6",
			OnSent: func(at units.Time) { sentAt = at },
		})
		return err
	})
	r.k.Run(5 * units.Second)
	if err := r.err(); err != nil {
		t.Fatal(err)
	}
	if sentAt == 0 {
		t.Fatal("SMS never confirmed")
	}
	// ≈1.5 s transmit time + shared-memory latency.
	if sentAt < 1500*units.Millisecond {
		t.Fatalf("confirmed at %v, before transmit time", sentAt)
	}
	st, _ := r.res.Stats(label.Priv{})
	if st.Consumed < 2*units.Joule {
		t.Fatalf("sender billed %v, want ≥ SMS energy 2 J", st.Consumed)
	}
	if r.d.ARM9().SMSSent() != 1 {
		t.Fatal("baseband did not transmit")
	}
}

func TestSMSRefusedWithoutEnergy(t *testing.T) {
	r := newRig(t, 100*units.Millijoule, func(r *rig, th *sched.Thread) error {
		_, err := r.k.GateCall(GateSMS, th, SMSRequest{Body: "x"})
		if !errors.Is(err, core.ErrInsufficient) {
			t.Errorf("err = %v, want ErrInsufficient", err)
		}
		return nil
	})
	r.k.Run(units.Second)
	if r.d.ARM9().SMSSent() != 0 {
		t.Fatal("unfunded SMS transmitted")
	}
}

func TestVoiceCallBilling(t *testing.T) {
	// Dial, let the call run ~20 s, hang up: the dialler pays
	// ≈800 mW × active time.
	var states []CallState
	r := newRig(t, 50*units.Joule, func(r *rig, th *sched.Thread) error {
		_, err := r.k.GateCall(GateDial, th, DialRequest{
			Number:  "+15551234567",
			OnState: func(s CallState) { states = append(states, s) },
		})
		return err
	})
	r.k.Run(24 * units.Second) // 4 s setup + 20 s active
	if r.d.ARM9().CallStateNow() != CallActive {
		t.Fatalf("call state = %v", r.d.ARM9().CallStateNow())
	}
	// Hang up via a second thread (the UI).
	res2 := r.k.CreateReserve(r.k.Root, "ui", label.Public())
	if err := r.k.Graph.Transfer(r.k.KernelPriv(), r.k.Battery(), res2, units.Joule); err != nil {
		t.Fatal(err)
	}
	r.k.Spawn(r.k.Root, "ui", label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			if _, err := r.k.GateCall(GateHangup, th, nil); err != nil {
				t.Errorf("hangup: %v", err)
			}
			th.Exit()
		}), res2)
	r.k.Run(2 * units.Second)
	if r.d.ARM9().CallStateNow() != CallIdle {
		t.Fatalf("state after hangup = %v", r.d.ARM9().CallStateNow())
	}
	if err := r.err(); err != nil {
		t.Fatal(err)
	}
	// Billing: ≈20 s active × 800 mW = 16 J (plus CPU noise).
	st, _ := r.res.Stats(label.Priv{})
	want := units.Joules(16)
	if st.Consumed < want*85/100 || st.Consumed > want*120/100 {
		t.Fatalf("dialler billed %v, want ≈%v", st.Consumed, want)
	}
	// State transitions: dialing then active (then ended delivered to
	// the registered handler).
	if len(states) < 2 || states[0] != CallDialing || states[1] != CallActive {
		t.Fatalf("states = %v", states)
	}
}

func TestSecondDialRefused(t *testing.T) {
	r := newRig(t, 50*units.Joule, func(r *rig, th *sched.Thread) error {
		if _, err := r.k.GateCall(GateDial, th, DialRequest{Number: "1"}); err != nil {
			return err
		}
		_, err := r.k.GateCall(GateDial, th, DialRequest{Number: "2"})
		if !errors.Is(err, ErrBusy) {
			t.Errorf("second dial err = %v, want ErrBusy", err)
		}
		return nil
	})
	r.k.Run(2 * units.Second)
	if err := r.err(); err != nil {
		t.Fatal(err)
	}
	if r.d.Stats().CallsPlaced != 1 {
		t.Fatalf("calls placed = %d", r.d.Stats().CallsPlaced)
	}
}

func TestGPSFixesAndBilling(t *testing.T) {
	var fixes int
	r := newRig(t, 20*units.Joule, func(r *rig, th *sched.Thread) error {
		_, err := r.k.GateCall(GateGPS, th, GPSRequest{
			Start: true,
			OnFix: func(at units.Time) { fixes++ },
		})
		return err
	})
	// 12 s acquisition, then 1 Hz fixes: 30 s total → ≈18 fixes.
	r.k.Run(30 * units.Second)
	if err := r.err(); err != nil {
		t.Fatal(err)
	}
	if fixes < 15 || fixes > 21 {
		t.Fatalf("fixes = %d, want ≈18", fixes)
	}
	// Billing ≈ 30 s × 150 mW = 4.5 J.
	st, _ := r.res.Stats(label.Priv{})
	want := units.Joules(4.5)
	if st.Consumed < want*85/100 || st.Consumed > want*120/100 {
		t.Fatalf("GPS user billed %v, want ≈%v", st.Consumed, want)
	}
	// Stop: fixes cease.
	res2 := r.k.CreateReserve(r.k.Root, "ui", label.Public())
	if err := r.k.Graph.Transfer(r.k.KernelPriv(), r.k.Battery(), res2, units.Joule); err != nil {
		t.Fatal(err)
	}
	r.k.Spawn(r.k.Root, "stopper", label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			if _, err := r.k.GateCall(GateGPS, th, GPSRequest{Start: false}); err != nil {
				t.Errorf("gps stop: %v", err)
			}
			th.Exit()
		}), res2)
	r.k.Run(units.Second)
	before := fixes
	r.k.Run(5 * units.Second)
	if fixes != before {
		t.Fatalf("fixes after stop: %d → %d", before, fixes)
	}
	if r.d.ARM9().GPSOn() {
		t.Fatal("GPS still on")
	}
}

func TestIncomingSMSEvent(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 9, DecayHalfLife: -1})
	d, err := NewSmdd(k, DefaultSmddConfig(), DefaultARM9Config())
	if err != nil {
		t.Fatal(err)
	}
	var got string
	d.OnIncomingSMS(func(body string) { got = body })
	d.ARM9().InjectIncomingSMS("hello")
	k.Run(100 * units.Millisecond)
	if got != "hello" {
		t.Fatalf("incoming SMS = %q", got)
	}
	if d.Stats().IncomingSMS != 1 {
		t.Fatal("incoming SMS not counted")
	}
}

func TestIncomingCallEvent(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 10, DecayHalfLife: -1})
	d, err := NewSmdd(k, DefaultSmddConfig(), DefaultARM9Config())
	if err != nil {
		t.Fatal(err)
	}
	var from string
	d.OnIncomingCall(func(number string) { from = number })
	d.ARM9().InjectIncomingCall("+15550000000")
	k.Run(100 * units.Millisecond)
	if from != "+15550000000" {
		t.Fatalf("incoming call from %q", from)
	}
}

func TestBatteryPercentDropsAsSystemRuns(t *testing.T) {
	// With a small battery, the 0–100 reading visibly decreases — the
	// only power visibility the closed ARM9 grants (§4.1).
	k := kernel.New(kernel.Config{
		Seed: 11, DecayHalfLife: -1,
		BatteryCapacity: 100 * units.Joule,
	})
	d, err := NewSmdd(k, DefaultSmddConfig(), DefaultARM9Config())
	if err != nil {
		t.Fatal(err)
	}
	res := k.CreateReserve(k.Root, "app", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, units.Joule); err != nil {
		t.Fatal(err)
	}
	var readings []int64
	poll := func(now units.Time, th *sched.Thread) {
		if _, err := k.GateCall(GateBattery, th, BatteryRequest{
			OnReply: func(pct int64) { readings = append(readings, pct) },
		}); err != nil {
			t.Errorf("battery gate: %v", err)
			th.Exit()
		}
	}
	_ = d
	th := k.Sched.NewThread(k.Root, "meter", label.Public(), label.Priv{},
		sched.RunnerFunc(func(now units.Time, th *sched.Thread) {
			poll(now, th)
		}), res)
	_ = th
	k.Run(60 * units.Second) // 699 mW on 100 J ≈ −42 % over 60 s
	if len(readings) < 2 {
		t.Fatalf("readings = %v", readings)
	}
	first, last := readings[0], readings[len(readings)-1]
	if last >= first {
		t.Fatalf("battery reading did not drop: %d → %d", first, last)
	}
	for _, p := range readings {
		if p < 0 || p > 100 {
			t.Fatalf("reading %d out of 0–100", p)
		}
	}
}

// TestSharedReserveCallPlusGPSSettleEquivalence locks in the
// SettleSafe refusal for the one interleaving-sensitive case: a voice
// call and the GPS engine simultaneously billing the *same*
// debt-refusing reserve. Once the level cannot cover both totals,
// DeviceTick's per-tick interleaving splits the spill-to-battery
// between the two draws in a way sequential per-stream telescoping
// cannot reproduce — so closed-form settlement must replay this case
// per tick, and every accounting figure must match the per-batch
// engine exactly.
func TestSharedReserveCallPlusGPSSettleEquivalence(t *testing.T) {
	type outcome struct {
		consumed units.Energy
		battery  units.Energy
		stats    core.Accounting
		calls    int64
		fixes    int64
	}
	run := func(settle kernel.SettleMode) outcome {
		k := kernel.New(kernel.Config{Seed: 8, DecayHalfLife: -1, Settle: settle})
		d, err := NewSmdd(k, DefaultSmddConfig(), DefaultARM9Config())
		if err != nil {
			t.Fatal(err)
		}
		// Debt-refusing shared reserve, funded for a few seconds of the
		// combined 950 mW draw so both streams starve mid-run.
		res := k.CreateReserve(k.Root, "shared", label.Public())
		if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, 3*units.Joule); err != nil {
			t.Fatal(err)
		}
		ran := false
		k.Spawn(k.Root, "app", label.Priv{}, sched.RunnerFunc(
			func(now units.Time, th *sched.Thread) {
				if ran {
					th.Exit()
					return
				}
				ran = true
				if _, err := k.GateCall(GateDial, th, DialRequest{Number: "555"}); err != nil {
					t.Errorf("dial: %v", err)
				}
				th.Wake() // the dial gate blocks; keep stepping to start GPS too
				if _, err := k.GateCall(GateGPS, th, GPSRequest{Start: true}); err != nil {
					t.Errorf("gps: %v", err)
				}
			}), res)
		k.Run(20 * units.Second)
		if d.arm9.CallStateNow() != CallActive || !d.arm9.GPSOn() {
			t.Fatalf("settle=%v: call %v gps %v, want both active",
				settle, d.arm9.CallStateNow(), d.arm9.GPSOn())
		}
		st, err := res.Stats(k.KernelPriv())
		if err != nil {
			t.Fatal(err)
		}
		lvl, err := k.Battery().Level(k.KernelPriv())
		if err != nil {
			t.Fatal(err)
		}
		s := d.Stats()
		return outcome{k.Consumed(), lvl, st, s.CallsPlaced, s.GPSFixes}
	}
	closed := run(kernel.SettleClosedForm)
	batch := run(kernel.SettlePerBatch)
	if closed != batch {
		t.Fatalf("closed-form settlement diverges on a shared non-debt reserve:\n%+v\nvs per-batch\n%+v",
			closed, batch)
	}
}
