package msm

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/sim"
	"repro/internal/units"
)

// Gate names exported by smdd (Fig. 16: "the user-level smdd daemon
// manages the shared memory interface on the ARM11 and exports
// interfaces to the radio, GPS, battery sensor, and so on via gate
// calls").
const (
	GateBattery = "smd.battery"
	GateSMS     = "smd.sms.send"
	GateDial    = "smd.dial"
	GateHangup  = "smd.hangup"
	GateGPS     = "smd.gps"
)

// ErrBusy reports a dial while a call is already in progress.
var ErrBusy = errors.New("msm: call already in progress")

// BatteryRequest asks for the quantized battery level.
type BatteryRequest struct {
	// OnReply receives the 0–100 reading.
	OnReply func(pct int64)
}

// SMSRequest sends a text message.
type SMSRequest struct {
	Body string
	// OnSent runs when the baseband confirms transmission.
	OnSent func(at units.Time)
}

// DialRequest initiates a voice call. The paper's prototype "can
// initiate and receive voice calls, but as it does not yet have a port
// of the audio library, calls are silent" — ours are silent too.
type DialRequest struct {
	Number string
	// OnState receives call-state transitions.
	OnState func(s CallState)
}

// GPSRequest starts or stops the GPS engine.
type GPSRequest struct {
	Start bool
	// OnFix receives each position fix while tracking.
	OnFix func(at units.Time)
}

// SmddConfig parameterizes the daemon.
type SmddConfig struct {
	// SMSEnergy is billed to the sender per message. The paper prices
	// only the data path; this constant is synthetic (control-channel
	// transmission ≈ a short radio burst).
	SMSEnergy units.Energy
	// CallExtraPower is the device draw during an active voice call,
	// billed to the dialling thread's reserve. Synthetic.
	CallExtraPower units.Power
	// GPSExtraPower is the draw while the GPS engine is on, billed to
	// the thread that started it. Synthetic.
	GPSExtraPower units.Power
}

// DefaultSmddConfig returns the synthetic peripheral constants.
func DefaultSmddConfig() SmddConfig {
	return SmddConfig{
		SMSEnergy:      2 * units.Joule,
		CallExtraPower: units.Milliwatts(800),
		GPSExtraPower:  units.Milliwatts(150),
	}
}

// Stats counts smdd activity.
type Stats struct {
	BatteryReads int64
	SMSSent      int64
	CallsPlaced  int64
	GPSFixes     int64
	IncomingSMS  int64
}

type pending struct {
	kind    MsgKind
	onReply func(m Message)
}

// Smdd is the ARM11-side shared-memory daemon.
type Smdd struct {
	k    *kernel.Kernel
	sm   *SharedMemory
	arm9 *ARM9
	cfg  SmddConfig
	cat  label.Category
	priv label.Priv

	container *kobj.Container
	seq       uint64
	pend      map[uint64]pending

	// Continuous-draw billing targets (set while a call / GPS session
	// is active).
	callBill  *core.Reserve
	callPriv  label.Priv
	callCarry int64
	onCall    func(CallState)
	gpsBill   *core.Reserve
	gpsPriv   label.Priv
	gpsCarry  int64
	onFix     func(at units.Time)

	onIncomingSMS  func(body string)
	onIncomingCall func(number string)
	stats          Stats
}

// NewSmdd boots the daemon: it creates the shared-memory channel and the
// ARM9 model, registers its gates, and hooks the inter-core interrupt.
func NewSmdd(k *kernel.Kernel, cfg SmddConfig, arm9cfg ARM9Config) (*Smdd, error) {
	d := &Smdd{k: k, cfg: cfg, pend: make(map[uint64]pending)}
	d.cat = k.NewCategory()
	d.priv = label.NewPriv(d.cat)
	d.container = kobj.NewContainer(k.Table, k.Root, "smdd", label.Public())

	d.sm = NewSharedMemory(k.Eng, 5*units.Millisecond)
	d.arm9 = NewARM9(k.Eng, d.sm, arm9cfg, func() int64 {
		lvl, err := k.Battery().Level(k.KernelPriv())
		if err != nil {
			return 0
		}
		return int64(lvl) * 100 / int64(k.Graph.Capacity())
	})
	d.sm.OnAppIRQ(func() { d.drain() })

	type gateSpec struct {
		name string
		fn   kernel.Service
	}
	for _, g := range []gateSpec{
		{GateBattery, d.handleBattery},
		{GateSMS, d.handleSMS},
		{GateDial, d.handleDial},
		{GateHangup, d.handleHangup},
		{GateGPS, d.handleGPS},
	} {
		if _, err := d.k.RegisterGate(d.container, g.name, label.Public(), d.priv, nil, g.fn); err != nil {
			return nil, fmt.Errorf("msm: %w", err)
		}
	}
	k.AddDevice(d)
	return d, nil
}

// ARM9 exposes the baseband model (tests inject incoming traffic).
func (d *Smdd) ARM9() *ARM9 { return d.arm9 }

// Quiescent reports whether smdd's per-tick servicing is currently a
// no-op: DeviceTick only bills while a voice call is active or the GPS
// engine is powered. While quiescent the kernel may park its device
// task; the activity hook (below) revives it the instant a continuous
// draw begins.
func (d *Smdd) Quiescent() bool {
	return d.arm9.CallStateNow() != CallActive && !d.arm9.GPSOn()
}

// SetActivityHook subscribes the kernel's resume hook to the baseband's
// leave-quiescence transitions (call goes active, GPS powers on).
func (d *Smdd) SetActivityHook(fn func()) { d.arm9.SetActivityHook(fn) }

// Stats returns a copy of the counters.
func (d *Smdd) Stats() Stats { return d.stats }

// OnIncomingSMS registers the handler for mobile-terminated messages.
func (d *Smdd) OnIncomingSMS(fn func(body string)) { d.onIncomingSMS = fn }

// OnIncomingCall registers the handler for mobile-terminated calls.
func (d *Smdd) OnIncomingCall(fn func(number string)) { d.onIncomingCall = fn }

// post sends a request to the baseband and records the reply handler.
func (d *Smdd) post(kind MsgKind, arg int64, str string, onReply func(Message)) {
	d.seq++
	if onReply != nil {
		d.pend[d.seq] = pending{kind: kind, onReply: onReply}
	}
	m := Message{Kind: kind, Seq: d.seq, Arg: arg, Str: str}
	// Request delivery crosses the shared memory with the same latency
	// as responses.
	d.k.Eng.After(5*units.Millisecond, func(*sim.Engine) { d.arm9.Request(m) })
}

// drain processes ARM9→ARM11 messages (the interrupt handler).
func (d *Smdd) drain() {
	for _, m := range d.sm.DrainApps() {
		switch m.Kind {
		case EvIncomingSMS:
			d.stats.IncomingSMS++
			if d.onIncomingSMS != nil {
				d.onIncomingSMS(m.Str)
			}
		case EvIncomingCall:
			if d.onIncomingCall != nil {
				d.onIncomingCall(m.Str)
			}
		case EvGPSFix:
			d.stats.GPSFixes++
			if d.onFix != nil {
				d.onFix(d.k.Now())
			}
		case RespCallState:
			// Terminal states clear the continuous billing.
			if CallState(m.Arg) == CallEnded {
				d.callBill = nil
			}
			if d.onCall != nil {
				d.onCall(CallState(m.Arg))
			}
			if p, ok := d.pend[m.Seq]; ok && p.onReply != nil {
				p.onReply(m)
				// Keep the pending entry: dial gets two replies
				// (dialing, then active); it is dropped on hangup.
			}
		default:
			if p, ok := d.pend[m.Seq]; ok {
				delete(d.pend, m.Seq)
				if p.onReply != nil {
					p.onReply(m)
				}
			}
		}
	}
}

// handleBattery services the battery-level gate. Reading the sensor is
// asynchronous (a round trip to the ARM9) but nearly free.
func (d *Smdd) handleBattery(call *kernel.Call) (any, error) {
	req, ok := call.Args.(BatteryRequest)
	if !ok {
		return nil, fmt.Errorf("msm: bad battery request %T", call.Args)
	}
	d.stats.BatteryReads++
	th := call.Caller
	th.Block()
	d.post(ReqBatteryLevel, 0, "", func(m Message) {
		th.Wake()
		if req.OnReply != nil {
			req.OnReply(m.Arg)
		}
	})
	return nil, nil
}

// handleSMS bills the sender for the transmission and blocks until the
// baseband confirms.
func (d *Smdd) handleSMS(call *kernel.Call) (any, error) {
	req, ok := call.Args.(SMSRequest)
	if !ok {
		return nil, fmt.Errorf("msm: bad sms request %T", call.Args)
	}
	bill := call.BillTo()
	if bill == nil {
		return nil, fmt.Errorf("msm: sms caller has no reserve")
	}
	// All-or-nothing admission: no energy, no message (§3.2 semantics).
	if err := bill.Consume(call.BillPriv(), d.cfg.SMSEnergy); err != nil {
		return nil, fmt.Errorf("msm: sms: %w", err)
	}
	d.stats.SMSSent++
	th := call.Caller
	th.Block()
	d.post(ReqSendSMS, int64(len(req.Body)), req.Body, func(m Message) {
		th.Wake()
		if req.OnSent != nil {
			req.OnSent(d.k.Now())
		}
	})
	return nil, nil
}

// handleDial starts a voice call; while it is active the call's power
// draw is billed to the dialler's reserve each tick.
func (d *Smdd) handleDial(call *kernel.Call) (any, error) {
	req, ok := call.Args.(DialRequest)
	if !ok {
		return nil, fmt.Errorf("msm: bad dial request %T", call.Args)
	}
	if d.callBill != nil || d.arm9.CallStateNow() != CallIdle {
		return nil, ErrBusy
	}
	d.stats.CallsPlaced++
	d.callBill = call.BillTo()
	d.callPriv = call.BillPriv()
	d.onCall = req.OnState
	d.post(ReqDial, 0, req.Number, func(m Message) {})
	return nil, nil
}

// handleHangup ends the current call.
func (d *Smdd) handleHangup(call *kernel.Call) (any, error) {
	d.post(ReqHangup, 0, "", nil)
	return nil, nil
}

// handleGPS starts or stops the GPS engine, billing its draw to the
// starting thread.
func (d *Smdd) handleGPS(call *kernel.Call) (any, error) {
	req, ok := call.Args.(GPSRequest)
	if !ok {
		return nil, fmt.Errorf("msm: bad gps request %T", call.Args)
	}
	if req.Start {
		d.gpsBill = call.BillTo()
		d.gpsPriv = call.BillPriv()
		d.onFix = req.OnFix
		d.post(ReqGPSStart, 0, "", nil)
	} else {
		d.post(ReqGPSStop, 0, "", nil)
		d.gpsBill = nil
		d.onFix = nil
	}
	return nil, nil
}

// DeviceTick bills continuous peripheral draw: an active voice call and
// a powered GPS engine, each against the requesting thread's reserve
// (falling back to the battery — the device keeps drawing whether or
// not the app can pay, exactly the accounting gap reserves make
// visible).
func (d *Smdd) DeviceTick(now units.Time, dt units.Time) {
	if d.arm9.CallStateNow() == CallActive {
		var e units.Energy
		e, d.callCarry = d.cfg.CallExtraPower.OverRem(dt, d.callCarry)
		d.billPeripheral(e, d.callBill, d.callPriv)
	}
	if d.arm9.GPSOn() {
		var e units.Energy
		e, d.gpsCarry = d.cfg.GPSExtraPower.OverRem(dt, d.gpsCarry)
		d.billPeripheral(e, d.gpsBill, d.gpsPriv)
	}
}

func (d *Smdd) billPeripheral(e units.Energy, bill *core.Reserve, p label.Priv) {
	if e <= 0 {
		return
	}
	if bill != nil && !bill.Dead() {
		if err := bill.DebitSelf(p, e); err == nil {
			return
		}
		if err := bill.Consume(p, e); err == nil {
			return
		}
	}
	_ = d.k.Battery().Consume(d.k.KernelPriv(), e)
}

// Closed-form settlement (kernel.SettleableDevice / SettleGuardDevice):
// between executed instants the baseband's continuous draws are fully
// determined — call state and GPS power change only from gate calls and
// ARM9 events, which happen at executed instants after settlement has
// caught up — so a span of skipped ticks is n identical constant-power
// billings whose carry arithmetic telescopes into one debit.
//
// Exactness against tap flows needs care because smdd bills whichever
// reserve the requesting thread used, and that reserve is typically fed
// by a live tap (the dialer's 1 W funding tap). SettleSafe holds the
// commutation argument: a debt-allowed DebitSelf of a level-independent
// amount commutes with tap credits into the same reserve (both are
// unconditional integer additions; nothing reads the level in between),
// so reordering device billing before the window's flow batches is
// exact provided no active tap *drains* the billing reserve (a draining
// tap clamps to — and a proportional one reads — the source level).
// Reserves that refuse debt are settleable only while untapped; then
// settleSpan falls back to tick-by-tick replay whenever the level
// cannot cover a whole span, preserving the exact spill-to-battery
// sequence of a per-tick run.

// PeakDraw bounds smdd's per-tick draw: a voice call and the GPS engine
// drawing simultaneously. The kernel budgets it against the battery's
// depletion horizon before settling a span in closed form (pessimistic:
// draw billed to an app reserve instead only leaves the battery fuller).
func (d *Smdd) PeakDraw() units.Power {
	return d.cfg.CallExtraPower + d.cfg.GPSExtraPower
}

// SettleAccounts implements kernel.SettleableDevice. Smdd's billing
// targets vary per call/session, so the static account list is empty
// and SettleSafe (the SettleGuardDevice refinement) supersedes it.
func (d *Smdd) SettleAccounts() []*core.Reserve { return nil }

// SettleSafe implements kernel.SettleGuardDevice: it reports whether
// the currently active billing targets commute with tap flows (see the
// commutation argument above).
func (d *Smdd) SettleSafe() bool {
	callOn := d.arm9.CallStateNow() == CallActive
	gpsOn := d.arm9.GPSOn()
	if callOn && !d.billSettleSafe(d.callBill, d.callPriv) {
		return false
	}
	if gpsOn && !d.billSettleSafe(d.gpsBill, d.gpsPriv) {
		return false
	}
	if callOn && gpsOn && d.callBill != nil && d.callBill == d.gpsBill &&
		!d.callBill.Dead() && !d.callBill.AllowDebt() {
		// Both draws bill one debt-refusing reserve: DeviceTick
		// interleaves them per tick, so once the level cannot cover both
		// totals the spill splits between the streams differently than
		// SettleTicks' sequential per-stream telescoping would attribute
		// it. Replay per tick instead.
		return false
	}
	return true
}

func (d *Smdd) billSettleSafe(bill *core.Reserve, p label.Priv) bool {
	if bill == nil || bill.Dead() {
		return true // pure battery path, clamp-guarded by the horizon
	}
	if !p.CanUse(bill.Label()) {
		return true // every tick deterministically falls through to the battery
	}
	g := d.k.Graph
	if g.ReserveDrainedByTap(bill) {
		return false
	}
	if bill.AllowDebt() {
		return true
	}
	// Without debt a debit can clamp on the level, whose trajectory then
	// depends on interleaved tap credits: exact only while untapped.
	return !g.ReserveTapped(bill)
}

// SettleTicks implements kernel.SettleableDevice: exactly the
// DeviceTick calls the parked device task skipped, one per tick instant
// from `from` through `to` inclusive, telescoped per continuous draw.
func (d *Smdd) SettleTicks(from, to, dt units.Time) {
	n := int64((to-from)/dt) + 1
	if to < from || n <= 0 {
		return
	}
	if d.arm9.CallStateNow() == CallActive {
		d.callCarry = d.settleSpan(n, dt, d.cfg.CallExtraPower, d.callCarry, d.callBill, d.callPriv)
	}
	if d.arm9.GPSOn() {
		d.gpsCarry = d.settleSpan(n, dt, d.cfg.GPSExtraPower, d.gpsCarry, d.gpsBill, d.gpsPriv)
	}
}

// settleSpan bills n ticks of constant extra power in one telescoped
// debit when the target can cover (or owe) the total, or tick by tick
// when it cannot, so the exact instant billing spills to Consume or the
// battery matches a per-tick run. It returns the updated carry.
func (d *Smdd) settleSpan(n int64, dt units.Time, p units.Power, carry int64, bill *core.Reserve, priv label.Priv) int64 {
	total := int64(p)*int64(dt)*n + carry
	e := units.Energy(total / 1000)
	if e <= 0 {
		return total % 1000
	}
	if bill != nil && !bill.Dead() {
		if bill.CanDebitSelf(priv, e) {
			_ = bill.DebitSelf(priv, e)
			return total % 1000
		}
		for i := int64(0); i < n; i++ {
			var ei units.Energy
			ei, carry = p.OverRem(dt, carry)
			d.billPeripheral(ei, bill, priv)
		}
		return carry
	}
	_ = d.k.Battery().Consume(d.k.KernelPriv(), e)
	return total % 1000
}

var _ kernel.SettleableDevice = (*Smdd)(nil)
var _ kernel.SettleGuardDevice = (*Smdd)(nil)
