package msm

import (
	"fmt"

	"repro/internal/snap"
)

// This file implements checkpoint/resume for the baseband path. A
// checkpoint-quiet baseband has no call up, no GPS session, and no
// message in flight across the shared memory; what survives a
// checkpoint is pure accounting — smdd's counters and sequence number,
// the ARM9's transmit count — plus the billing carries. smdd's pending
// reply table may hold inert entries (a dial's reply record is kept
// until hangup and never reclaimed); those are dropped: no future
// message can carry an old sequence number, so they are unreachable by
// construction.

// Snapshot serializes smdd and its ARM9 model.
func (d *Smdd) Snapshot(w *snap.Writer) {
	w.Section("smdd")
	w.U64(d.seq)
	w.I64(d.stats.BatteryReads)
	w.I64(d.stats.SMSSent)
	w.I64(d.stats.CallsPlaced)
	w.I64(d.stats.GPSFixes)
	w.I64(d.stats.IncomingSMS)
	w.I64(d.callCarry)
	w.I64(d.gpsCarry)
	w.U64(uint64(d.arm9.call))
	w.Bool(d.arm9.gpsOn)
	w.I64(d.arm9.smsSent)
	w.U64(uint64(len(d.sm.toApps)))
}

// Restore overlays a snapshot onto a freshly rebuilt smdd. A snapshot
// taken mid-call, mid-GPS-session or with shared-memory messages in
// flight is rejected loudly: that state references threads and reserves
// the restore cannot reattach.
func (d *Smdd) Restore(r *snap.Reader) error {
	r.Section("smdd")
	seq := r.U64()
	stats := Stats{
		BatteryReads: r.I64(),
		SMSSent:      r.I64(),
		CallsPlaced:  r.I64(),
		GPSFixes:     r.I64(),
		IncomingSMS:  r.I64(),
	}
	callCarry := r.I64()
	gpsCarry := r.I64()
	call := CallState(r.U64())
	gpsOn := r.Bool()
	smsSent := r.I64()
	inFlight := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if call != CallIdle {
		return fmt.Errorf("msm: restore: snapshot taken with a voice call %v; calls cannot span a checkpoint", call)
	}
	if gpsOn {
		return fmt.Errorf("msm: restore: snapshot taken with the GPS engine on; GPS sessions cannot span a checkpoint")
	}
	if inFlight > 0 {
		return fmt.Errorf("msm: restore: snapshot recorded %d undrained shared-memory messages", inFlight)
	}
	d.seq = seq
	d.stats = stats
	d.callCarry = callCarry
	d.gpsCarry = gpsCarry
	d.callBill = nil
	d.gpsBill = nil
	clear(d.pend)
	d.arm9.call = call
	d.arm9.gpsOn = gpsOn
	d.arm9.smsSent = smsSent
	return nil
}
