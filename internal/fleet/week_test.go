package fleet

import (
	"bytes"
	"testing"

	"repro/internal/units"
)

func weekRunCfg(devices, workers int) Config {
	return Config{
		Devices:     devices,
		Seed:        31,
		Duration:    7 * 24 * units.Hour,
		Workers:     workers,
		Scenario:    WeekInTheLife(),
		KeepResults: true,
	}
}

// TestWeekDeterministicAcrossWorkerCounts: the heterogeneous week mix
// must stay byte-identical under different pool shapes.
func TestWeekDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Run(weekRunCfg(24, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(weekRunCfg(24, 4))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON(true)
	bj, _ := b.JSON(true)
	if !bytes.Equal(aj, bj) {
		t.Fatal("week report differs across worker counts")
	}
}

// TestWeekHeterogeneousPopulation: per-device draws must actually vary
// — battery capacities differ across the fleet, every cohort is
// populated, and each shows its signature activity.
func TestWeekHeterogeneousPopulation(t *testing.T) {
	rep, err := Run(weekRunCfg(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Buckets) != 3 {
		t.Fatalf("want 3 cohorts, got %+v", rep.Buckets)
	}
	caps := map[units.Energy]bool{}
	for _, r := range rep.Results {
		caps[r.Consumed+r.BatteryLeft] = true // consumed+left ≈ provisioned capacity (dead devices aside)
	}
	if len(caps) < 20 {
		t.Fatalf("battery provisioning not heterogeneous: %d distinct capacities over %d devices",
			len(caps), rep.Devices)
	}
	byName := map[string]Bucket{}
	for _, b := range rep.Buckets {
		byName[b.Name] = b
	}
	if byName["week-commuter"].Polls == 0 {
		t.Fatal("commuter cohort never polled")
	}
	if byName["week-chatty"].Calls == 0 || byName["week-chatty"].SMSSent == 0 {
		t.Fatal("chatty cohort silent")
	}
	if byName["week-idle"].Polls != 0 || byName["week-idle"].Calls != 0 {
		t.Fatal("idle cohort shows activity")
	}
}

// TestWeekWeekendAlternation: weekday and weekend behaviour must
// differ. The commuter cohort only polls on weekdays, so a run of the
// first five days accumulates all of the week's polls and a weekend-
// only horizon none.
func TestWeekWeekendAlternation(t *testing.T) {
	week, err := Run(weekRunCfg(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	weekdays := weekRunCfg(20, 2)
	weekdays.Duration = 5 * 24 * units.Hour
	wd, err := Run(weekdays)
	if err != nil {
		t.Fatal(err)
	}
	if week.TotalPolls == 0 {
		t.Fatal("week fleet never polled")
	}
	if wd.TotalPolls != week.TotalPolls {
		t.Fatalf("weekend days added polls: weekdays %d, full week %d (commutes must be weekday-only)",
			wd.TotalPolls, week.TotalPolls)
	}
	// Weekend days still consume energy (screen, browse, calls).
	if week.TotalConsumed <= wd.TotalConsumed {
		t.Fatal("weekend days consumed nothing")
	}
}

// TestWeekDeathsSpanDays: battery draws straddle the week's baseline
// cost, so deaths land heterogeneously in the back half of the week
// rather than as a cliff.
func TestWeekDeathsSpanDays(t *testing.T) {
	cfg := weekRunCfg(60, 2)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dead == 0 {
		t.Fatal("no deaths in a week; battery provisioning too generous")
	}
	if rep.Dead == rep.Devices {
		t.Fatal("whole fleet died; battery provisioning too harsh")
	}
	day := 24 * units.Hour
	for _, r := range rep.Results {
		if r.Died && r.DiedAt < 4*day {
			t.Fatalf("device %d died on day %d; deaths should be a lifetime-scale effect",
				r.Index, int(r.DiedAt/day)+1)
		}
	}
	if rep.LifeP90 <= rep.LifeP50 {
		t.Fatalf("degenerate life percentiles p50 %v p90 %v", rep.LifeP50, rep.LifeP90)
	}
}
