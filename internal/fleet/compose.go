package fleet

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/msm"
	"repro/internal/netd"
	"repro/internal/netquota"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements the composable scenario subsystem: instead of a
// fleet of single-behaviour clones, a device's virtual day is assembled
// from phased sub-workloads — screen sessions, voice calls and SMS over
// the ARM9 path, bursty browsing through the radio, background pollers
// against cooperative netd — the same build-rich-behaviour-from-fixed-
// blocks discipline the paper's evaluation (§6) applies to a real phone
// day.
//
// Lifecycle discipline matters here: every workload that installs taps
// or threads tears them down at the end of its window by deleting its
// phase container. Teardown returns unused energy to the battery and —
// with the tap-lifecycle fixes in internal/core — drops the orphaned
// taps out of the graph's active set, so the kernel re-enters its
// quiescent fast path between phases. A day that is mostly idle
// simulates in a tiny fraction of its ticks.

// Window is a time interval within a device's simulated day.
type Window struct {
	Start, Duration units.Time
}

// End returns the instant the window closes.
func (w Window) End() units.Time { return w.Start + w.Duration }

// Workload is a sub-behaviour installable over a window of a device's
// day. Install runs at fleet construction time (before the simulation
// starts) and schedules the workload's setup and teardown on the
// device's engine; any per-device randomness must be drawn from
// d.Rand at install time so the engine's run-time stream is untouched.
type Workload interface {
	Name() string
	Install(d *Device, w Window) error
}

// Phase schedules one workload over one window of the day.
type Phase struct {
	Workload Workload
	// Start is the phase's offset into the day; Duration its length.
	Start    units.Time
	Duration units.Time
	// Jitter shifts the start by a per-device amount drawn uniformly
	// from [0, Jitter) out of the device's construction stream, so a
	// fleet does not run its phase transitions in lockstep.
	Jitter units.Time
}

// Compose is a Scenario assembled from phases. Phases may overlap; each
// workload manages its own objects, but overlapping Screen phases share
// the single backlight (last toggle wins).
type Compose struct {
	// Label names the composed day (the report bucket for this device).
	Label  string
	Phases []Phase
}

// Name implements Scenario.
func (c Compose) Name() string { return c.Label }

// Build implements Scenario: it installs every phase onto the device.
func (c Compose) Build(d *Device) error {
	for i, ph := range c.Phases {
		if ph.Workload == nil {
			return fmt.Errorf("fleet: compose %q: phase %d has no workload", c.Label, i)
		}
		w := Window{Start: ph.Start, Duration: ph.Duration}
		if ph.Jitter > 0 {
			w.Start += units.Time(d.Rand.Intn(int64(ph.Jitter)))
		}
		if err := ph.Workload.Install(d, w); err != nil {
			return fmt.Errorf("fleet: compose %q: phase %d (%s): %w",
				c.Label, i, ph.Workload.Name(), err)
		}
	}
	return nil
}

// Screen models a backlight session: the §4.2 power model's +555 mW
// while the screen is lit, nothing else. It needs no taps or threads,
// so a day of screen sessions still rides the quiescent fast path.
type Screen struct{}

// Name implements Workload.
func (Screen) Name() string { return "screen" }

// Install implements Workload.
func (Screen) Install(d *Device, w Window) error {
	if w.Duration <= 0 {
		return nil
	}
	k := d.Kernel
	k.Eng.At(w.Start, func(*sim.Engine) { k.SetBacklight(true) })
	k.Eng.At(w.End(), func(*sim.Engine) { k.SetBacklight(false) })
	return nil
}

// Call places one voice call through the ARM9 baseband: the dialer app
// checks the battery over the smd.battery gate, dials, holds the call
// for CallTime (billed at the modem's call draw to the dialer's
// reserve), and hangs up. The dialer's process tree is torn down at the
// window's end.
type Call struct {
	// CallTime is how long the call stays active before hangup
	// (default 2 min). The window must leave ≥ 30 s of headroom over
	// CallTime for call setup and teardown.
	CallTime units.Time
	// Rate funds the dialer's reserve (default 1 W: the synthetic
	// 800 mW call draw plus CPU headroom).
	Rate units.Power
	// MinBatteryPct refuses the call below this battery reading.
	MinBatteryPct int64
}

// Name implements Workload.
func (Call) Name() string { return "call" }

// Install implements Workload.
func (c Call) Install(d *Device, w Window) error {
	if _, err := d.EnsureSmdd(); err != nil {
		return err
	}
	callTime := c.CallTime
	if callTime == 0 {
		callTime = 2 * units.Minute
	}
	rate := c.Rate
	if rate == 0 {
		rate = units.Watts(1)
	}
	if w.Duration < callTime+30*units.Second {
		return fmt.Errorf("fleet: call window %v leaves no headroom over call time %v",
			w.Duration, callTime)
	}
	k := d.Kernel
	var dl *apps.Dialer
	k.Eng.At(w.Start, func(*sim.Engine) {
		var err error
		dl, err = apps.NewDialer(k, k.Root, k.KernelPriv(), k.Battery(), apps.DialerConfig{
			Number:        "555-0100",
			Duration:      callTime,
			Rate:          rate,
			MinBatteryPct: c.MinBatteryPct,
		})
		if err != nil {
			dl = nil // gate vanished (device dying); skip the call
		}
	})
	k.Eng.At(w.End(), func(*sim.Engine) {
		if dl == nil {
			return
		}
		// Defensive: if the window closed while *this phase's* call was
		// still up (a dying device can stall the dialer), hang up at
		// the baseband before deleting the dialer so the modem does not
		// draw call power forever. A dialer that already finished
		// (hung up, or refused/busy) leaves the baseband alone — an
		// overlapping Call phase may own the current call.
		if !dl.Done() && d.Smdd.ARM9().CallStateNow() != msm.CallIdle {
			d.Smdd.ARM9().Request(msm.Message{Kind: msm.ReqHangup})
		}
		_ = k.Table.Delete(dl.Container.ObjectID())
		dl = nil
	})
	return nil
}

// SMSBurst sends Count text messages Interval apart through the
// smd.sms.send gate. Each message is admitted all-or-nothing against
// the sender's reserve (2 J per message, §3.2 semantics); the sender's
// budget is pre-funded at install and whatever remains returns to the
// battery at teardown.
type SMSBurst struct {
	// Count is the number of messages (default 3).
	Count int
	// Interval separates sends (default 30 s).
	Interval units.Time
}

// Name implements Workload.
func (SMSBurst) Name() string { return "sms" }

// Install implements Workload.
func (s SMSBurst) Install(d *Device, w Window) error {
	if _, err := d.EnsureSmdd(); err != nil {
		return err
	}
	count := s.Count
	if count <= 0 {
		count = 3
	}
	interval := s.Interval
	if interval == 0 {
		interval = 30 * units.Second
	}
	k := d.Kernel
	budget := units.Energy(count)*msm.DefaultSmddConfig().SMSEnergy + units.Joule
	var ctr *kobj.Container
	k.Eng.At(w.Start, func(*sim.Engine) {
		c := kobj.NewContainer(k.Table, k.Root, "sms-burst", label.Public())
		res := k.CreateReserve(c, "sms-reserve", label.Public())
		if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, budget); err != nil {
			// Battery cannot fund the burst (device dying): drop the
			// phase.
			_ = k.Table.Delete(c.ObjectID())
			return
		}
		sender := &smsSender{k: k, count: count, interval: interval}
		k.Sched.NewThread(c, "sms-sender", label.Public(), label.Priv{},
			sched.RunnerFunc(sender.step), res)
		ctr = c
	})
	k.Eng.At(w.End(), func(*sim.Engine) {
		if ctr != nil {
			_ = k.Table.Delete(ctr.ObjectID())
			ctr = nil
		}
	})
	return nil
}

// smsSender drives an SMSBurst: send, wait for the baseband's
// confirmation (the gate blocks the thread), pause, repeat.
type smsSender struct {
	k        *kernel.Kernel
	sent     int
	count    int
	interval units.Time
	next     units.Time
}

func (s *smsSender) step(now units.Time, th *sched.Thread) {
	if now < s.next {
		th.Sleep(s.next)
		return
	}
	if s.sent >= s.count {
		th.Exit()
		return
	}
	s.sent++
	s.next = now + s.interval
	if _, err := s.k.GateCall(msm.GateSMS, th, msm.SMSRequest{Body: "ok"}); err != nil {
		// Unaffordable or gate gone: skip this message, try the next
		// on schedule.
		th.Sleep(s.next)
	}
}

// Browse models a foreground browsing burst: Pages sequential page
// loads through the cooperative netd gate, each a short request and a
// payload-sized response over the radio, separated by per-device think
// times drawn from the construction stream. The session's process tree
// (reserve, funding tap, thread) is torn down at the window's end.
type Browse struct {
	// Pages is the number of page loads attempted (default 10).
	Pages int
	// PageBytes sizes each page download (default 96 KiB).
	PageBytes int
	// ReqBytes sizes each page request (default 500 B).
	ReqBytes int
	// ThinkMin/ThinkMax bound the uniform per-page think time
	// (defaults 5 s / 25 s).
	ThinkMin, ThinkMax units.Time
	// Rate funds the session's reserve (default 300 mW).
	Rate units.Power
	// Allowance, when non-nil, meters the session against a data plan:
	// each page charges ReqBytes+PageBytes all-or-nothing before
	// touching the network and is skipped (thought over, not retried)
	// when the plan refuses — the netquota subsystem as a workload
	// participant rather than a unit-test fixture. A refused page still
	// consumes its think time, so an exhausted plan shows up as a lower
	// Pages count, not a hot retry loop.
	Allowance *netquota.Allowance
}

// Name implements Workload.
func (Browse) Name() string { return "browse" }

// Install implements Workload.
func (b Browse) Install(d *Device, w Window) error {
	pages := b.Pages
	if pages <= 0 {
		pages = 10
	}
	pageBytes := b.PageBytes
	if pageBytes == 0 {
		pageBytes = 96 << 10
	}
	reqBytes := b.ReqBytes
	if reqBytes == 0 {
		reqBytes = 500
	}
	thinkMin, thinkMax := b.ThinkMin, b.ThinkMax
	if thinkMin == 0 {
		thinkMin = 5 * units.Second
	}
	if thinkMax <= thinkMin {
		thinkMax = thinkMin + 20*units.Second
	}
	rate := b.Rate
	if rate == 0 {
		rate = units.Milliwatts(300)
	}
	// Think times come from the construction stream, at install time.
	thinks := make([]units.Time, pages)
	for i := range thinks {
		thinks[i] = thinkMin + units.Time(d.Rand.Intn(int64(thinkMax-thinkMin)))
	}

	k := d.Kernel
	br := &browser{k: k, pageBytes: pageBytes, reqBytes: reqBytes, thinks: thinks, allow: b.Allowance}
	var ctr *kobj.Container
	k.Eng.At(w.Start, func(*sim.Engine) {
		c := kobj.NewContainer(k.Table, k.Root, "browse", label.Public())
		res := k.CreateReserveOpts(c, "browse-reserve", label.Public(),
			core.ReserveOpts{AllowDebt: true})
		tap, err := k.CreateTap(c, "browse-tap", k.KernelPriv(), k.Battery(), res, label.Public())
		if err != nil {
			_ = k.Table.Delete(c.ObjectID())
			return
		}
		if err := tap.SetRate(k.KernelPriv(), rate); err != nil {
			_ = k.Table.Delete(c.ObjectID())
			return
		}
		k.Sched.NewThread(c, "browser", label.Public(), label.Priv{},
			sched.RunnerFunc(br.step), res)
		ctr = c
	})
	k.Eng.At(w.End(), func(*sim.Engine) {
		if ctr != nil {
			_ = k.Table.Delete(ctr.ObjectID())
			ctr = nil
		}
	})
	d.Probes = append(d.Probes, func(res *DeviceResult) {
		res.Pages += int64(br.loaded)
	})
	// The loaded-page count lives only in this install's closure; carry
	// it across checkpoints so a resumed device reports the same Pages
	// total an uninterrupted run would.
	d.Hooks = append(d.Hooks, SnapHook{
		Save: func(sw *snap.Writer) {
			sw.Section("browse")
			sw.I64(int64(br.loaded))
		},
		Load: func(sr *snap.Reader) error {
			sr.Section("browse")
			br.loaded = int(sr.I64())
			return sr.Err()
		},
	})
	return nil
}

// browser drives a Browse burst page by page.
type browser struct {
	k         *kernel.Kernel
	pageBytes int
	reqBytes  int
	thinks    []units.Time
	allow     *netquota.Allowance
	page      int
	loaded    int
	next      units.Time
}

func (b *browser) step(now units.Time, th *sched.Thread) {
	if now < b.next {
		th.Sleep(b.next)
		return
	}
	if b.page >= len(b.thinks) {
		th.Exit()
		return
	}
	think := b.thinks[b.page]
	b.page++
	if b.allow != nil {
		if err := b.allow.Charge(label.Priv{}, netquota.Bytes(b.reqBytes+b.pageBytes)); err != nil {
			// Plan exhausted: skip the page and think about it.
			b.next = now + think
			th.Sleep(b.next)
			return
		}
	}
	req := netd.Request{
		ReqBytes:  b.reqBytes,
		RespBytes: b.pageBytes,
		Exchanges: 3, // DNS + TCP-ish handshake + payload, coarsely
		OnDone: func(at units.Time) {
			b.loaded++
			b.next = at + think
		},
	}
	b.next = now + think // provisional; completion moves it
	if _, err := b.k.GateCall(netd.GateName, th, req); err != nil {
		th.Sleep(b.next)
	}
}

// Pollers runs the §6.4 background pair (RSS + mail style periodic
// network applications) over a window, with per-device phase jitter
// from the construction stream. Outside the window the pollers' taps
// and threads are gone and the device can quiesce.
type Pollers struct {
	// Pollers is the number of periodic applications (default 2).
	Pollers int
	// Interval is the poll period (default 60 s; day-scale mixes use
	// coarser periods).
	Interval units.Time
	// Rate funds each poller (default 79 mW, §6.4).
	Rate units.Power
	// ReqBytes/RespBytes size each poll (defaults 300 B / 12 KiB).
	ReqBytes  int
	RespBytes int
	// RespJitterPct varies payloads per poll (default 20 %).
	RespJitterPct int
}

// Name implements Workload.
func (Pollers) Name() string { return "pollers" }

// Install implements Workload.
func (p Pollers) Install(d *Device, w Window) error {
	n := p.Pollers
	if n <= 0 {
		n = 2
	}
	interval := p.Interval
	if interval == 0 {
		interval = 60 * units.Second
	}
	rate := p.Rate
	if rate == 0 {
		rate = units.Milliwatts(79)
	}
	req, resp := p.ReqBytes, p.RespBytes
	if req == 0 {
		req = 300
	}
	if resp == 0 {
		resp = 12 << 10
	}
	jitter := p.RespJitterPct
	if jitter == 0 {
		jitter = 20
	}
	phases := make([]units.Time, n)
	for i := range phases {
		phases[i] = units.Time(d.Rand.Intn(int64(interval)))
	}

	k := d.Kernel
	pollers := make([]*apps.Poller, 0, n)
	var ctr *kobj.Container
	k.Eng.At(w.Start, func(e *sim.Engine) {
		c := kobj.NewContainer(k.Table, k.Root, "pollers", label.Public())
		for i := 0; i < n; i++ {
			pl, err := apps.NewPoller(k, c, fmt.Sprintf("poller-%d", i),
				k.KernelPriv(), k.Battery(), apps.PollerConfig{
					Interval:      interval,
					Phase:         e.Now() + phases[i],
					Rate:          rate,
					ReqBytes:      req,
					RespBytes:     resp,
					RespJitterPct: jitter,
				})
			if err != nil {
				_ = k.Table.Delete(c.ObjectID())
				return
			}
			pollers = append(pollers, pl)
		}
		ctr = c
	})
	k.Eng.At(w.End(), func(*sim.Engine) {
		if ctr != nil {
			_ = k.Table.Delete(ctr.ObjectID())
			ctr = nil
		}
	})
	// carried holds polls completed before the most recent checkpoint:
	// the poller objects themselves live in this install's closure and a
	// resumed device rebuilds the phase with fresh, zeroed pollers.
	var carried int64
	d.Probes = append(d.Probes, func(res *DeviceResult) {
		res.Polls += carried
		for _, pl := range pollers {
			res.Polls += int64(pl.Completed)
		}
	})
	d.Hooks = append(d.Hooks, SnapHook{
		Save: func(sw *snap.Writer) {
			sw.Section("pollers")
			total := carried
			for _, pl := range pollers {
				total += int64(pl.Completed)
			}
			sw.I64(total)
		},
		Load: func(sr *snap.Reader) error {
			sr.Section("pollers")
			carried = sr.I64()
			return sr.Err()
		},
	})
	return nil
}

// MixEntry is one weighted slot of a Mix.
type MixEntry struct {
	// Weight is the entry's relative share of the fleet population.
	Weight int
	// Scenario is the workload devices in this slot receive.
	Scenario Scenario
}

// Mix assigns a weighted scenario mix across the fleet from the device
// construction stream: each device draws its bucket from its own
// deterministic Rand, so the assignment — and therefore the whole
// report — is identical regardless of worker count, while a 1000-device
// fleet models a heterogeneous population rather than 1000 clones.
type Mix struct {
	// Label names the mix (the report's top-level scenario name).
	Label   string
	Entries []MixEntry
}

// Name implements Scenario.
func (m Mix) Name() string { return m.Label }

// Build implements Scenario: it draws the device's bucket and builds
// the chosen entry, recording the entry's name as the device's report
// bucket.
func (m Mix) Build(d *Device) error {
	total := int64(0)
	for i, e := range m.Entries {
		if e.Weight < 0 || e.Scenario == nil {
			return fmt.Errorf("fleet: mix %q: bad entry %d", m.Label, i)
		}
		total += int64(e.Weight)
	}
	if total == 0 {
		return fmt.Errorf("fleet: mix %q has no weight", m.Label)
	}
	pick := d.Rand.Intn(total)
	for _, e := range m.Entries {
		pick -= int64(e.Weight)
		if pick < 0 {
			d.Scenario = e.Scenario.Name()
			return e.Scenario.Build(d)
		}
	}
	panic("fleet: mix selection out of range") // unreachable
}
