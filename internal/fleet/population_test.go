package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/units"
)

// TestProvisionerRejectsFleetBatteryOverride pins the precedence fix: a
// scenario that provisions per-device batteries combined with a
// fleet-level override is a contradiction the run must refuse loudly —
// before the fix, the override silently flattened the heterogeneous
// population.
func TestProvisionerRejectsFleetBatteryOverride(t *testing.T) {
	for _, sc := range []Scenario{WeekInTheLife(), MonthInTheLife(), AdversarialCohorts()} {
		_, err := Run(Config{
			Devices:         4,
			Seed:            7,
			Duration:        time10s(),
			Workers:         1,
			Scenario:        sc,
			BatteryCapacity: 90 * units.Kilojoule,
		})
		if err == nil || !strings.Contains(err.Error(), "contradicts") {
			t.Fatalf("%s + fleet battery override: err = %v, want loud contradiction", sc.Name(), err)
		}
	}
}

func time10s() units.Time { return 10 * units.Second }

// provisionProbe is a minimal Provisioner that asks for laptop hardware
// and the strict anti-hoarding rule, then verifies from inside Build
// that both actually reached the kernel.
type provisionProbe struct {
	gotProfile string
	gotBattery units.Energy
	hoardErr   error
}

func (p *provisionProbe) Name() string { return "provision-probe" }

func (p *provisionProbe) Provision(_ int, _ int64) DeviceProvision {
	return DeviceProvision{Profile: power.LaptopT60p(), StrictHoarding: true}
}

func (p *provisionProbe) Build(d *Device) error {
	k := d.Kernel
	p.gotProfile = k.Profile.Name
	p.gotBattery = k.Graph.Capacity()
	// Behavioral check that StrictHoarding reached core.Config: a
	// reserve with an unremovable backward tap must refuse a transfer
	// into a fresh reserve that lacks one.
	taxed := k.CreateReserve(k.Root, "taxed", label.Public())
	fresh := k.CreateReserve(k.Root, "fresh", label.Public())
	tap, err := k.CreateTap(k.Root, "tax", k.KernelPriv(), taxed, k.Battery(), k.Battery().Label())
	if err != nil {
		return err
	}
	if err := tap.SetFrac(k.KernelPriv(), 1000); err != nil {
		return err
	}
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), taxed, units.Joule); err != nil {
		return err
	}
	p.hoardErr = k.Graph.Transfer(label.Priv{}, taxed, fresh, units.Joule)
	return Compose{Label: "probe"}.Build(d)
}

func TestProvisionAppliesProfileAndPolicy(t *testing.T) {
	probe := &provisionProbe{}
	if _, err := Run(Config{Devices: 1, Seed: 3, Duration: time10s(), Workers: 1, Scenario: probe}); err != nil {
		t.Fatal(err)
	}
	want := power.LaptopT60p()
	if probe.gotProfile != want.Name {
		t.Fatalf("provisioned profile %q did not reach the kernel (got %q)", want.Name, probe.gotProfile)
	}
	if probe.gotBattery != want.BatteryCapacity {
		t.Fatalf("provisioned battery = %v, want the T60p's %v", probe.gotBattery, want.BatteryCapacity)
	}
	if !errors.Is(probe.hoardErr, core.ErrHoarding) {
		t.Fatalf("evasive transfer err = %v, want ErrHoarding — StrictHoarding did not reach core.Config", probe.hoardErr)
	}
}

// monthCfg is a short month slice: three simulated days cover nightly
// charge windows (including the midnight-spanning one), metered evening
// browsing, and both hardware classes (seed 11 draws three T60p laptops
// among the 16 devices).
func monthCfg(workers int) Config {
	return Config{
		Devices:  16,
		Seed:     11,
		Duration: 3 * 24 * units.Hour,
		Workers:  workers,
		Scenario: MonthInTheLife(),
	}
}

func runCanonical(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, rep)
}

// TestMonthEquivalenceAcrossChargerModes is the recharge-cycle
// equivalence gate: the month scenario's canonical report must be
// byte-identical whether charger credits are settled in closed form or
// executed per quantum, and across worker counts — the charger A/B knob
// may only change diagnostics.
func TestMonthEquivalenceAcrossChargerModes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day fleet run")
	}
	ref := runCanonical(t, monthCfg(1))

	perCharge := monthCfg(1)
	perCharge.ChargerSettle = kernel.SettlePerBatch
	if got := runCanonical(t, perCharge); !bytes.Equal(got, ref) {
		t.Error("per-quantum charger settlement changed the canonical report")
	}
	if got := runCanonical(t, monthCfg(4)); !bytes.Equal(got, ref) {
		t.Error("worker count changed the canonical report")
	}
}

// TestMonthRechargeObservable asserts the month population actually
// exercises the new machinery: charger credits land (non-monotone
// batteries), both hardware classes appear, and the nightly charge
// habit keeps the fleet overwhelmingly alive — the occasional death is
// expected (the forgetful-night draw can strand a small battery), mass
// death would mean the chargers never engaged.
func TestMonthRechargeObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day fleet run")
	}
	rep, err := Run(monthCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRecharged == 0 {
		t.Fatal("no charger energy credited across three days of nightly charging")
	}
	var sawLaptop, sawPhone bool
	for _, b := range rep.Buckets {
		if b.Name == "month-laptop" {
			sawLaptop = b.Devices > 0
		} else if b.Devices > 0 {
			sawPhone = true
		}
	}
	if !sawLaptop || !sawPhone {
		t.Fatalf("population not mixed: laptop=%v phone=%v", sawLaptop, sawPhone)
	}
	if rep.Dead > rep.Devices/4 {
		t.Fatalf("%d of %d devices died despite nightly charging", rep.Dead, rep.Devices)
	}
}

// TestAdversarialContainment is the §5.2.2 gate in miniature: with the
// fundamental rule on, the strict cohort's median lifetime recovers to
// within a few percent of the no-hoarder baseline, while the lax cohort
// (same adversary, rule off) dies measurably early and keeps the
// energy.
func TestAdversarialContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("150-device day run")
	}
	rep, err := Run(Config{
		Devices:  150,
		Seed:     11,
		Duration: 24 * units.Hour,
		Workers:  4,
		Scenario: AdversarialCohorts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Bucket{}
	for _, b := range rep.Buckets {
		byName[b.Name] = b
	}
	victim, lax, strict := byName["adv-victim"], byName["adv-lax"], byName["adv-strict"]
	if victim.Devices == 0 || lax.Devices == 0 || strict.Devices == 0 {
		t.Fatalf("missing cohorts: victim=%d lax=%d strict=%d devices", victim.Devices, lax.Devices, strict.Devices)
	}
	// Uncontained hoarding costs real lifetime…
	if lax.LifeP50 >= victim.LifeP50*95/100 {
		t.Errorf("lax cohort p50 %v not measurably below victim %v — adversary toothless", lax.LifeP50, victim.LifeP50)
	}
	// …the strict rule claws it back…
	if strict.LifeP50 < victim.LifeP50*97/100 {
		t.Errorf("strict cohort p50 %v below 97%% of victim %v — containment failed", strict.LifeP50, victim.LifeP50)
	}
	// …because the tax reclaims what the hoarder can no longer hide.
	if strict.Reclaimed <= 2*lax.Reclaimed {
		t.Errorf("strict reclaimed %v not well above lax %v", strict.Reclaimed, lax.Reclaimed)
	}
	if victim.Reclaimed != 0 {
		t.Errorf("victim cohort reclaimed %v with no hoarder installed", victim.Reclaimed)
	}
}
