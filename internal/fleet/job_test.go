package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestJobWireRoundTrip: a job built from a run config must survive its
// JSON wire form with every identity field intact, and the
// round-tripped job must materialize the same shard configs.
func TestJobWireRoundTrip(t *testing.T) {
	dir := t.TempDir()
	job, err := NewJob(Config{
		Devices:         30,
		Seed:            21,
		Duration:        24 * units.Hour,
		Scenario:        DayInTheLife(),
		BatteryCapacity: units.Joules(50),
		CheckpointDir:   dir,
		CheckpointEvery: 6 * units.Hour,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJob(b)
	if err != nil {
		t.Fatal(err)
	}
	// The in-process scenario override must NOT survive the wire; all
	// exported fields must.
	job.scenario = nil
	if back != job {
		t.Fatalf("job mangled in round trip:\n%+v\nvs\n%+v", back, job)
	}
	cfgA, err := job.ShardConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := back.ShardConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfgA.Scenario.Name() != cfgB.Scenario.Name() {
		t.Fatalf("scenario resolution diverged: %q vs %q", cfgA.Scenario.Name(), cfgB.Scenario.Name())
	}
	cfgA.Scenario, cfgB.Scenario = nil, nil
	if !reflect.DeepEqual(cfgA, cfgB) {
		t.Fatalf("shard config diverged:\n%+v\nvs\n%+v", cfgA, cfgB)
	}
}

// TestJobValidate: every malformed spec must be rejected loudly.
func TestJobValidate(t *testing.T) {
	good := Job{Scenario: "poller", Devices: 10, DurationMS: 1000, Shards: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Job)
		want string
	}{
		{"unknown scenario", func(j *Job) { j.Scenario = "nope" }, "unknown scenario"},
		{"zero devices", func(j *Job) { j.Devices = 0 }, "at least 1 device"},
		{"zero duration", func(j *Job) { j.DurationMS = 0 }, "duration"},
		{"zero shards", func(j *Job) { j.Shards = 0 }, "shard plan"},
		{"more shards than devices", func(j *Job) { j.Shards = 11 }, "shard plan"},
		{"negative life resolution", func(j *Job) { j.LifeResolutionMS = -1 }, "life resolution"},
	} {
		j := good
		tc.mut(&j)
		if err := j.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestShardRunDegenerateMatchesRun: a one-shard ShardRun merged back
// is exactly fleet.Run — the single-process run is the degenerate
// one-runner case of the job path, byte for byte.
func TestShardRunDegenerateMatchesRun(t *testing.T) {
	cfg := shardBase(40)
	whole, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := (ShardRun{Job: job, Shard: 0, Workers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := job.Merge([]*Partial{part})
	if err != nil {
		t.Fatal(err)
	}
	a, err1 := whole.JSON(false)
	b, err2 := merged.JSON(false)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("degenerate job run diverged from fleet.Run:\n%s\nvs\n%s", a, b)
	}
}
