package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements checkpoint/resume for fleet runs. A checkpointed
// run proceeds epoch by epoch (default: one simulated day). Every pass
// runs the whole device range through the worker pool; at a non-final
// boundary each surviving device serializes its complete state — engine
// clock and schedules, RNG position, object census, reserve levels, tap
// carries, scheduler accounting, radio/netd/baseband state, workload
// hook counters — and the reducer streams the snapshots into an epoch
// file in strict device-index order. Devices that died during the epoch
// contribute their final DeviceResult instead, which later epochs pass
// through untouched. The final pass aggregates exactly as an
// uninterrupted run would.
//
// Epoch files are written to a temporary name and renamed only when
// complete, so the newest file with a matching header is always a
// consistent resume point: -resume rebuilds every device from its
// deterministic construction path, overlays the snapshot, and continues
// with kernel.ResumeRun — no Run-boundary re-step — making the resumed
// run's canonical report byte-identical to an uninterrupted one (the
// resume-equivalence suite asserts it).

// DefaultCheckpointEvery is the epoch length: one simulated day, the
// boundary the week-in-the-life scenario quiesces at.
const DefaultCheckpointEvery = 24 * units.Hour

// epochMagic heads an epoch file.
const epochMagic = "CNDEPOCH1"

// Epoch record kinds.
const (
	recSnapshot = 1 // a live device's state snapshot
	recResult   = 2 // a dead device's final result, passed through
)

// snapshotDevice serializes a device's complete state at a quiescent
// epoch boundary.
func snapshotDevice(d *Device) ([]byte, error) {
	if n := d.Netd.WaitingThreads(); n > 0 {
		// Netd's parked-sweep and settled-sweep state snapshots fine; what
		// cannot is a waiter itself — a live reference to a blocked thread
		// and its billing reserve, plus a pool-crossing prediction over
		// them, in an object world the restore rebuilds from scratch.
		return nil, fmt.Errorf("fleet: device %d (scenario %q) not checkpoint-quiet: %d callers blocked in netd; "+
			"a cooperative-pooling session (and its predicted pool-crossing) cannot span a "+
			"checkpoint — the %q workload has a poll in flight at this epoch boundary; "+
			"move the boundary (-checkpoint-every) to an instant where no poll is in flight",
			d.Index, d.Scenario, n, d.Scenario)
	}
	w := snap.NewWriter()
	w.Section("fleet-device")
	w.U64(uint64(d.Index))
	w.I64(d.Seed)
	w.String(d.Scenario)
	w.Bool(d.Smdd != nil)
	d.Kernel.Snapshot(w)
	d.Radio.Snapshot(w)
	d.Netd.Snapshot(w)
	if d.Smdd != nil {
		d.Smdd.Snapshot(w)
	}
	w.U64(uint64(len(d.Hooks)))
	for _, h := range d.Hooks {
		h.Save(w)
	}
	return w.Finish()
}

// restoreDevice overlays a snapshot onto a freshly built device. Every
// divergence between the snapshot and the rebuilt device — different
// scenario bucket, workload drift, mid-run state the rebuild cannot
// reproduce — fails with a descriptive error rather than producing a
// silently wrong device.
func restoreDevice(d *Device, blob []byte) error {
	r, err := snap.Open(blob)
	if err != nil {
		return err
	}
	r.Section("fleet-device")
	idx := int(r.U64())
	seed := r.I64()
	scenario := r.String()
	hasSmdd := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if idx != d.Index || seed != d.Seed {
		return fmt.Errorf("fleet: restore: snapshot of device %d (seed %d) onto device %d (seed %d)",
			idx, seed, d.Index, d.Seed)
	}
	if scenario != d.Scenario {
		return fmt.Errorf("fleet: restore: snapshot bucket %q, rebuilt device drew %q", scenario, d.Scenario)
	}
	if hasSmdd != (d.Smdd != nil) {
		return fmt.Errorf("fleet: restore: snapshot smdd presence %v, rebuilt device %v", hasSmdd, d.Smdd != nil)
	}
	if err := d.Kernel.Restore(r); err != nil {
		return err
	}
	if err := d.Radio.Restore(r); err != nil {
		return err
	}
	if err := d.Netd.Restore(r); err != nil {
		return err
	}
	if hasSmdd {
		if err := d.Smdd.Restore(r); err != nil {
			return err
		}
	}
	nHooks := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if nHooks != len(d.Hooks) {
		return fmt.Errorf("fleet: restore: snapshot has %d workload hooks, rebuilt device registered %d",
			nHooks, len(d.Hooks))
	}
	for i, h := range d.Hooks {
		if err := h.Load(r); err != nil {
			return fmt.Errorf("fleet: restore: workload hook %d: %w", i, err)
		}
	}
	return r.Close()
}

// encodeResult serializes a dead device's final result for epoch-file
// passthrough.
func encodeResult(res DeviceResult) ([]byte, error) {
	w := snap.NewWriter()
	w.Section("fleet-result")
	w.U64(uint64(res.Index))
	w.I64(res.Seed)
	w.String(res.Scenario)
	w.I64(int64(res.Consumed))
	w.I64(int64(res.BatteryLeft))
	w.I64(int64(res.Recharged))
	w.I64(int64(res.Reclaimed))
	w.Bool(res.Died)
	w.I64(int64(res.DiedAt))
	w.U64(math.Float64bits(res.Utilization))
	w.I64(res.BusyTicks)
	w.I64(res.IdleTicks)
	w.I64(res.RadioActivations)
	w.I64(res.Polls)
	w.I64(res.Pages)
	w.I64(res.PowerUps)
	w.I64(res.SMSSent)
	w.I64(res.CallsPlaced)
	w.U64(res.EngineSteps)
	w.I64(res.FlowWalks)
	w.I64(res.SettledBatches)
	w.I64(res.SettledSweeps)
	w.I64(res.SettledCharges)
	return w.Finish()
}

// decodeResult deserializes a passthrough result record.
func decodeResult(blob []byte) (DeviceResult, error) {
	r, err := snap.Open(blob)
	if err != nil {
		return DeviceResult{}, err
	}
	r.Section("fleet-result")
	res := DeviceResult{
		Index:    int(r.U64()),
		Seed:     r.I64(),
		Scenario: r.String(),
	}
	res.Consumed = units.Energy(r.I64())
	res.BatteryLeft = units.Energy(r.I64())
	res.Recharged = units.Energy(r.I64())
	res.Reclaimed = units.Energy(r.I64())
	res.Died = r.Bool()
	res.DiedAt = units.Time(r.I64())
	res.Utilization = math.Float64frombits(r.U64())
	res.BusyTicks = r.I64()
	res.IdleTicks = r.I64()
	res.RadioActivations = r.I64()
	res.Polls = r.I64()
	res.Pages = r.I64()
	res.PowerUps = r.I64()
	res.SMSSent = r.I64()
	res.CallsPlaced = r.I64()
	res.EngineSteps = r.U64()
	res.FlowWalks = r.I64()
	res.SettledBatches = r.I64()
	res.SettledSweeps = r.I64()
	res.SettledCharges = r.I64()
	if err := r.Err(); err != nil {
		return DeviceResult{}, err
	}
	return res, r.Close()
}

// epochPlan describes the epoch partition of a run's horizon.
type epochPlan struct {
	every units.Time
	count int
}

func planEpochs(cfg Config) epochPlan {
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if every > cfg.Duration {
		every = cfg.Duration
	}
	count := int((cfg.Duration + every - 1) / every)
	return epochPlan{every: every, count: count}
}

// end returns the absolute end instant of epoch e.
func (p epochPlan) end(cfg Config, e int) units.Time {
	t := units.Time(e+1) * p.every
	if t > cfg.Duration {
		t = cfg.Duration
	}
	return t
}

// epochPath names epoch e's file; sharded runs get per-shard files.
func epochPath(cfg Config, e int) string {
	name := fmt.Sprintf("epoch-%04d.bin", e)
	if cfg.ShardCount > 0 {
		name = fmt.Sprintf("epoch-%04d.shard-%d-of-%d.bin", e, cfg.ShardIndex, cfg.ShardCount)
	}
	return filepath.Join(cfg.CheckpointDir, name)
}

// epochHeader is the identity every epoch file carries: a resume may
// only continue from a file written by an identically configured run.
func writeEpochHeader(w *snap.Writer, cfg Config, plan epochPlan, e, lo, hi int) {
	w.Section("epoch-header")
	w.String(cfg.Scenario.Name())
	w.U64(uint64(cfg.Devices))
	w.I64(cfg.Seed)
	w.I64(int64(cfg.Duration))
	w.I64(int64(plan.every))
	w.U64(uint64(e))
	w.U64(uint64(lo))
	w.U64(uint64(hi))
	w.I64(int64(cfg.BatteryCapacity))
	w.I64(int64(cfg.LifeResolution))
	w.U64(uint64(cfg.EngineMode))
	w.U64(uint64(cfg.Settle))
	w.U64(uint64(cfg.NetdSettle))
	w.U64(uint64(cfg.ChargerSettle))
	w.Bool(cfg.DenseWatch)
}

func checkEpochHeader(r *snap.Reader, cfg Config, plan epochPlan, e, lo, hi int) error {
	r.Section("epoch-header")
	scenario := r.String()
	devices := int(r.U64())
	seed := r.I64()
	duration := units.Time(r.I64())
	every := units.Time(r.I64())
	epoch := int(r.U64())
	flo := int(r.U64())
	fhi := int(r.U64())
	battery := units.Energy(r.I64())
	lifeRes := units.Time(r.I64())
	engineMode := r.U64()
	settle := r.U64()
	netdSettle := r.U64()
	chargerSettle := r.U64()
	dense := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	switch {
	case scenario != cfg.Scenario.Name():
		return fmt.Errorf("fleet: epoch file is scenario %q, run is %q", scenario, cfg.Scenario.Name())
	case devices != cfg.Devices || seed != cfg.Seed || duration != cfg.Duration:
		return fmt.Errorf("fleet: epoch file is for %d devices seed %d over %v; run is %d devices seed %d over %v",
			devices, seed, duration, cfg.Devices, cfg.Seed, cfg.Duration)
	case every != plan.every:
		return fmt.Errorf("fleet: epoch file uses checkpoint interval %v, run uses %v", every, plan.every)
	case epoch != e:
		return fmt.Errorf("fleet: epoch file is epoch %d, expected %d", epoch, e)
	case flo != lo || fhi != hi:
		return fmt.Errorf("fleet: epoch file covers devices [%d,%d), run covers [%d,%d)", flo, fhi, lo, hi)
	case battery != cfg.BatteryCapacity:
		return fmt.Errorf("fleet: epoch file battery override %v, run has %v", battery, cfg.BatteryCapacity)
	case lifeRes != cfg.LifeResolution:
		return fmt.Errorf("fleet: epoch file life resolution %v, run has %v", lifeRes, cfg.LifeResolution)
	case engineMode != uint64(cfg.EngineMode) || settle != uint64(cfg.Settle) ||
		netdSettle != uint64(cfg.NetdSettle) || chargerSettle != uint64(cfg.ChargerSettle):
		return fmt.Errorf("fleet: epoch file engine/settle/netd-settle/charger-settle modes (%d,%d,%d,%d) differ from run (%d,%d,%d,%d)",
			engineMode, settle, netdSettle, chargerSettle,
			uint64(cfg.EngineMode), uint64(cfg.Settle), uint64(cfg.NetdSettle), uint64(cfg.ChargerSettle))
	case dense != cfg.DenseWatch:
		return fmt.Errorf("fleet: epoch file dense-watch %v, run has %v", dense, cfg.DenseWatch)
	}
	return nil
}

// epochWriter streams records into a temporary epoch file, renamed into
// place only once every device in the range has been written — an
// existing epoch file is therefore always complete.
type epochWriter struct {
	f    *os.File
	bw   *bufio.Writer
	path string
	next int
}

func newEpochWriter(cfg Config, plan epochPlan, e, lo, hi int) (*epochWriter, error) {
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	path := epochPath(cfg, e)
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	ew := &epochWriter{f: f, bw: bufio.NewWriterSize(f, 1<<20), path: path, next: lo}
	hw := snap.NewWriter()
	writeEpochHeader(hw, cfg, plan, e, lo, hi)
	blob, err := hw.Finish()
	if err != nil {
		return nil, err
	}
	ew.writeFrame(0, blob)
	return ew, nil
}

// writeFrame emits one length-prefixed frame: kind, index, payload.
func (ew *epochWriter) writeFrame(kind int, blob []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(kind))
	ew.bw.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(len(blob)))
	ew.bw.Write(tmp[:n])
	ew.bw.Write(blob)
}

// add appends device idx's record; records must arrive in index order
// (the strict-index reducer guarantees it).
func (ew *epochWriter) add(idx, kind int, blob []byte) error {
	if idx != ew.next {
		return fmt.Errorf("fleet: epoch write out of order: device %d, expected %d", idx, ew.next)
	}
	ew.next++
	ew.writeFrame(kind, blob)
	return nil
}

// finish flushes, closes and atomically publishes the epoch file.
func (ew *epochWriter) finish(hi int) error {
	if ew.next != hi {
		ew.abort()
		return fmt.Errorf("fleet: epoch file incomplete: wrote through device %d, range ends at %d", ew.next, hi)
	}
	if err := ew.bw.Flush(); err != nil {
		ew.abort()
		return err
	}
	if err := ew.f.Close(); err != nil {
		return err
	}
	return os.Rename(ew.path+".tmp", ew.path)
}

// abort discards the temporary file.
func (ew *epochWriter) abort() {
	ew.f.Close()
	os.Remove(ew.path + ".tmp")
}

// epochReader streams records back out of an epoch file.
type epochReader struct {
	f    *os.File
	br   *bufio.Reader
	next int
}

func openEpochReader(cfg Config, plan epochPlan, e, lo, hi int) (*epochReader, error) {
	f, err := os.Open(epochPath(cfg, e))
	if err != nil {
		return nil, err
	}
	er := &epochReader{f: f, br: bufio.NewReaderSize(f, 1<<20), next: lo}
	kind, blob, err := er.readFrame()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: %s: %w", epochPath(cfg, e), err)
	}
	if kind != 0 {
		f.Close()
		return nil, fmt.Errorf("fleet: %s: missing epoch header", epochPath(cfg, e))
	}
	hr, err := snap.Open(blob)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: %s: %w", epochPath(cfg, e), err)
	}
	if err := checkEpochHeader(hr, cfg, plan, e, lo, hi); err != nil {
		f.Close()
		return nil, err
	}
	return er, nil
}

func (er *epochReader) readFrame() (kind int, blob []byte, err error) {
	k, err := binary.ReadUvarint(er.br)
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(er.br)
	if err != nil {
		return 0, nil, err
	}
	blob = make([]byte, n)
	if _, err := io.ReadFull(er.br, blob); err != nil {
		return 0, nil, err
	}
	return int(k), blob, nil
}

// read returns device idx's record; calls must arrive in index order.
func (er *epochReader) read(idx int) ([]byte, error) {
	if idx != er.next {
		return nil, fmt.Errorf("fleet: epoch read out of order: device %d, expected %d", idx, er.next)
	}
	er.next++
	_, blob, err := er.readFrame()
	if err != nil {
		return nil, fmt.Errorf("fleet: epoch record for device %d: %w", idx, err)
	}
	return blob, nil
}

func (er *epochReader) close() { er.f.Close() }

// errEpochMismatch classifies an epoch file that is structurally sound
// but belongs to a different run configuration — not corruption, so
// salvage skips it without quarantining.
var errEpochMismatch = errors.New("fleet: epoch file belongs to a different run")

// verifyEpoch fully validates epoch e's file as a resume point: header
// identity, every record frame present with a valid CRC, exactly the
// shard's device count, and no trailing bytes. It returns nil for a
// usable file, fs.ErrNotExist (wrapped) when absent, errEpochMismatch
// (wrapped) for a sound file from a different run, and any other error
// for corruption — a torn rename, a truncated tail, flipped bits. Only
// full validation is good enough here: the rename-into-place protocol
// makes complete files the common case, but salvage exists precisely
// for the storage failures that break that assumption.
func verifyEpoch(cfg Config, plan epochPlan, e, lo, hi int) error {
	path := epochPath(cfg, e)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	er := &epochReader{f: f, br: bufio.NewReaderSize(f, 1<<20), next: lo}
	kind, blob, err := er.readFrame()
	if err != nil {
		return fmt.Errorf("epoch header frame: %w", err)
	}
	if kind != 0 {
		return fmt.Errorf("missing epoch header (leading frame kind %d)", kind)
	}
	hr, err := snap.Open(blob)
	if err != nil {
		return fmt.Errorf("epoch header: %w", err)
	}
	if err := checkEpochHeader(hr, cfg, plan, e, lo, hi); err != nil {
		return fmt.Errorf("%w: %v", errEpochMismatch, err)
	}
	for idx := lo; idx < hi; idx++ {
		kind, blob, err := er.readFrame()
		if err != nil {
			return fmt.Errorf("record for device %d: %w", idx, err)
		}
		if kind != recSnapshot && kind != recResult {
			return fmt.Errorf("record for device %d has unknown kind %d", idx, kind)
		}
		if _, err := snap.Open(blob); err != nil {
			return fmt.Errorf("record for device %d: %w", idx, err)
		}
	}
	if _, _, err := er.readFrame(); err != io.EOF {
		if err == nil {
			return fmt.Errorf("trailing data after final device %d", hi-1)
		}
		return fmt.Errorf("trailing garbage: %w", err)
	}
	return nil
}

// quarantineEpoch moves a corrupt epoch file aside as <name>.corrupt
// and writes a <name>.corrupt.report describing the damage, so the bad
// bytes stay available for diagnosis while resume falls back past
// them.
func quarantineEpoch(cfg Config, e int, verr error) error {
	path := epochPath(cfg, e)
	if err := os.Rename(path, path+".corrupt"); err != nil {
		return err
	}
	report := fmt.Sprintf(
		"epoch file quarantined by resume salvage\n\n"+
			"file:     %s\n"+
			"moved to: %s.corrupt\n"+
			"error:    %v\n\n"+
			"The resume fell back to the newest older epoch that verifies, so at most\n"+
			"the epochs after it were re-simulated. The report is unaffected (resumed\n"+
			"runs are byte-identical). Delete the .corrupt files once diagnosed.\n",
		path, path, verr)
	return os.WriteFile(path+".corrupt.report", []byte(report), 0o644)
}

// blobKind classifies an epoch record payload by its leading section.
func blobKind(blob []byte) (string, error) {
	r, err := snap.Open(blob)
	if err != nil {
		return "", err
	}
	return r.String(), r.Err()
}

// runEpochs is the checkpointed run path (see the file comment).
func runEpochs(cfg Config, workers int, agg *aggregate) error {
	lo, hi := cfg.shardRange()
	plan := planEpochs(cfg)

	// Resume salvage: walk epochs newest-first and continue after the
	// newest one that fully verifies. A missing file is skipped
	// silently (the run may simply not have reached it); a sound file
	// from a different run is skipped with a warning; a corrupt file —
	// torn write, truncation, flipped bits — is quarantined with a
	// report and the walk falls back to the epoch before it, so a bad
	// newest epoch costs re-simulating at most the epochs after the
	// last good one, never the whole run.
	start := 0
	quarantined := 0
	if cfg.Resume || cfg.ResumeAuto {
		for e := plan.count - 2; e >= 0; e-- {
			verr := verifyEpoch(cfg, plan, e, lo, hi)
			if verr == nil {
				start = e + 1
				break
			}
			if errors.Is(verr, fs.ErrNotExist) {
				continue
			}
			if errors.Is(verr, errEpochMismatch) {
				cfg.warnf("fleet: resume: skipping %s: %v", epochPath(cfg, e), verr)
				continue
			}
			cfg.warnf("fleet: resume: quarantining corrupt epoch file %s: %v", epochPath(cfg, e), verr)
			if qerr := quarantineEpoch(cfg, e, verr); qerr != nil {
				return fmt.Errorf("fleet: resume: quarantine %s: %w", epochPath(cfg, e), qerr)
			}
			quarantined++
		}
		if start == 0 && !cfg.ResumeAuto {
			if quarantined > 0 {
				return fmt.Errorf("fleet: -resume: no usable epoch file matching this run in %s "+
					"(%d corrupt file(s) quarantined as *.corrupt — see the *.corrupt.report beside them)",
					cfg.CheckpointDir, quarantined)
			}
			return fmt.Errorf("fleet: -resume: no complete epoch file matching this run in %s", cfg.CheckpointDir)
		}
	}

	m := newMeter(&cfg, lo, hi, plan.count)
	for e := start; e < plan.count; e++ {
		endT := plan.end(cfg, e)
		final := e == plan.count-1
		passStart := units.Time(0)
		if e > 0 {
			passStart = plan.end(cfg, e-1)
		}
		m.pass(e, passStart, endT)

		var in *epochReader
		if e > 0 {
			var err error
			in, err = openEpochReader(cfg, plan, e-1, lo, hi)
			if err != nil {
				return err
			}
		}
		var out *epochWriter
		if !final {
			var err error
			out, err = newEpochWriter(cfg, plan, e, lo, hi)
			if err != nil {
				if in != nil {
					in.close()
				}
				return err
			}
		}

		var feed func(idx int) ([]byte, error)
		if in != nil {
			feed = in.read
		}
		work := func(idx int, blob []byte, rg *rig) outcome {
			if e > 0 {
				if blob == nil {
					return outcome{err: fmt.Errorf("missing epoch %d snapshot", e-1)}
				}
				kind, err := blobKind(blob)
				if err != nil {
					return outcome{err: err}
				}
				if kind == "fleet-result" {
					// Died in an earlier epoch: pass the final result
					// through (and decode it on the aggregating pass).
					if final {
						res, err := decodeResult(blob)
						return outcome{res: res, err: err}
					}
					return outcome{blob: blob, kind: recResult}
				}
				d, res, err := buildDevice(cfg, idx, rg)
				if err != nil {
					return outcome{err: err}
				}
				if err := restoreDevice(d, blob); err != nil {
					return outcome{err: err}
				}
				d.Kernel.ResumeRun(endT)
				return concludeEpoch(d, res, final)
			}
			d, res, err := buildDevice(cfg, idx, rg)
			if err != nil {
				return outcome{err: err}
			}
			d.Kernel.Run(endT)
			return concludeEpoch(d, res, final)
		}
		reduce := func(idx int, o outcome) error {
			if final {
				if err := accept(&cfg, agg, o.res); err != nil {
					return err
				}
				return m.device()
			}
			if err := out.add(idx, o.kind, o.blob); err != nil {
				return err
			}
			return m.device()
		}

		err := pass(cfg, workers, lo, hi, feed, work, reduce)
		if in != nil {
			in.close()
		}
		if err != nil {
			if out != nil {
				out.abort()
			}
			return err
		}
		if out != nil {
			if err := out.finish(hi); err != nil {
				return err
			}
			if err := m.checkpoint(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// concludeEpoch finishes a device's epoch: dead or final-epoch devices
// extract their result; survivors snapshot for the next epoch.
func concludeEpoch(d *Device, res *DeviceResult, final bool) outcome {
	if res.Died || final {
		extractResult(d, res)
		if final {
			return outcome{res: *res}
		}
		blob, err := encodeResult(*res)
		return outcome{blob: blob, kind: recResult, err: err}
	}
	blob, err := snapshotDevice(d)
	return outcome{blob: blob, kind: recSnapshot, err: err}
}
