package fleet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestComposeTeardownRestoresQuiescence is the fleet-level face of the
// tap-lifecycle fix: a composed day whose only workload is a short
// poller window must quiesce again after the phase container is torn
// down. Before the releaseReserve fix the orphaned poller taps pinned
// ActiveTapCount, the 10 ms batch tasks never parked, and the idle
// remainder of the day ran tick-by-tick.
func TestComposeTeardownRestoresQuiescence(t *testing.T) {
	day := Compose{
		Label: "burst-then-idle",
		Phases: []Phase{
			{Workload: Pollers{Interval: 30 * units.Second}, Start: 0, Duration: 2 * units.Minute},
		},
	}
	rep, err := Run(Config{
		Devices:     1,
		Seed:        11,
		Duration:    20 * units.Minute,
		Workers:     1,
		Scenario:    day,
		KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Polls == 0 {
		t.Fatal("poller window completed no polls")
	}
	ticks := uint64(20 * units.Minute / units.Millisecond)
	if r.EngineSteps*20 >= ticks {
		t.Fatalf("composed day executed %d instants over %d ticks — teardown did not restore quiescence",
			r.EngineSteps, ticks)
	}
}

// TestComposePhaseJitterSpreadsDevices asserts per-device jitter comes
// from the construction stream: devices of the same fleet get different
// phase starts, while re-running the fleet reproduces them exactly. A
// total-energy read-out is shift-invariant, so the phase is jittered
// across the run horizon — devices whose screen session lands later
// get it clipped (or miss it), and their totals must spread.
func TestComposePhaseJitterSpreadsDevices(t *testing.T) {
	day := Compose{
		Label: "jittered",
		Phases: []Phase{
			{Workload: Screen{}, Start: 0, Duration: 5 * units.Minute, Jitter: 20 * units.Minute},
		},
	}
	run := func() Report {
		rep, err := Run(Config{
			Devices: 6, Seed: 5, Duration: 15 * units.Minute, Workers: 2, Scenario: day,
			KeepResults: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	varied := false
	for i := 1; i < len(a.Results); i++ {
		if a.Results[i].Consumed != a.Results[0].Consumed {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jittered screen phases produced identical devices")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("jitter is not reproducible: device %d differs across runs", i)
		}
	}
}

// TestOverlappingCallPhases: a Call phase's window-end teardown must
// only hang up its *own* call — an overlapping phase's live call on the
// shared baseband keeps running to full length. The read-out is total
// call energy: two calls of 2 min and 3 min must bill ≈ 800 mW × 5 min
// on top of the idle baseline.
func TestOverlappingCallPhases(t *testing.T) {
	run := func(phases ...Phase) units.Energy {
		rep, err := Run(Config{
			Devices: 1, Seed: 3, Duration: 15 * units.Minute, Workers: 1,
			Scenario:    Compose{Label: "probe", Phases: phases},
			KeepResults: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Results[0].Consumed
	}
	baseline := run()
	both := run(
		// A: call 0:00–≈2:04, window closes at 5:00 while B is mid-call.
		Phase{Workload: Call{CallTime: 2 * units.Minute}, Start: 0, Duration: 5 * units.Minute},
		// B: dials at 3:00, active ≈3:04–6:04.
		Phase{Workload: Call{CallTime: 3 * units.Minute}, Start: 3 * units.Minute, Duration: 5 * units.Minute},
	)
	delta := both - baseline
	want := units.Milliwatts(800).Over(5 * units.Minute)
	slack := 5 * units.Joule // setup latencies, dialer CPU, poll rounding
	if delta < want-slack || delta > want+slack {
		t.Fatalf("overlapping calls billed %v above idle, want ≈%v — A's teardown cut B's call?",
			delta, want)
	}
}

// TestCallWindowValidation: a call window without teardown headroom is
// a construction-time error, not a stuck modem at run time.
func TestCallWindowValidation(t *testing.T) {
	day := Compose{
		Label: "tight-call",
		Phases: []Phase{
			{Workload: Call{CallTime: 2 * units.Minute}, Start: 0, Duration: 2 * units.Minute},
		},
	}
	_, err := Run(Config{Devices: 1, Seed: 1, Duration: 5 * units.Minute, Workers: 1, Scenario: day})
	if err == nil || !strings.Contains(err.Error(), "headroom") {
		t.Fatalf("tight call window accepted: err = %v", err)
	}
}

// TestMixValidation covers the combinator's error paths.
func TestMixValidation(t *testing.T) {
	if _, err := Run(Config{Devices: 1, Seed: 1, Duration: units.Second, Workers: 1,
		Scenario: Mix{Label: "empty"}}); err == nil {
		t.Error("weightless mix accepted")
	}
	if _, err := Run(Config{Devices: 1, Seed: 1, Duration: units.Second, Workers: 1,
		Scenario: Mix{Label: "bad", Entries: []MixEntry{{Weight: 1}}}}); err == nil {
		t.Error("nil entry scenario accepted")
	}
	if _, err := Run(Config{Devices: 1, Seed: 1, Duration: units.Second, Workers: 1,
		Scenario: Mix{Label: "neg", Entries: []MixEntry{{Weight: -1, Scenario: IdleScenario{}}}}}); err == nil {
		t.Error("negative weight accepted")
	}
}

// mixCfg is the shared config for the Mix determinism tests: a small
// day-in-the-life fleet, long enough that every workload type fires.
func mixCfg(workers int) Config {
	return Config{
		Devices:     12,
		Seed:        9,
		Duration:    4 * units.Hour,
		Workers:     workers,
		Scenario:    DayInTheLife(),
		KeepResults: true,
	}
}

// TestMixDeterministicAcrossWorkerCounts: bucket assignment draws from
// each device's construction stream, so worker count must not leak into
// any part of the report — including the serialized JSON.
func TestMixDeterministicAcrossWorkerCounts(t *testing.T) {
	var first []byte
	for _, w := range []int{1, 2, 5} {
		rep, err := Run(mixCfg(w))
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON(true)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = j
			// Sanity: the mix actually split the population.
			if len(rep.Buckets) < 2 {
				t.Fatalf("mix produced %d buckets, want ≥ 2", len(rep.Buckets))
			}
			n := 0
			for _, b := range rep.Buckets {
				n += b.Devices
			}
			if n != rep.Devices {
				t.Fatalf("buckets cover %d devices, want %d", n, rep.Devices)
			}
			continue
		}
		if !bytes.Equal(first, j) {
			t.Fatalf("JSON report differs with %d workers", w)
		}
	}
}

// TestBucketStatsMatchDevices: bucket aggregates must equal the sums of
// their member devices.
func TestBucketStatsMatchDevices(t *testing.T) {
	rep, err := Run(mixCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range rep.Buckets {
		var consumed units.Energy
		var polls int64
		devices := 0
		for _, r := range rep.Results {
			if r.Scenario != b.Name {
				continue
			}
			devices++
			consumed += r.Consumed
			polls += r.Polls
		}
		if devices != b.Devices || consumed != b.TotalConsumed || polls != b.Polls {
			t.Fatalf("bucket %q (%d devices, %v, %d polls) does not match members (%d, %v, %d)",
				b.Name, b.Devices, b.TotalConsumed, b.Polls, devices, consumed, polls)
		}
	}
}
