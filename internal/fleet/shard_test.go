package fleet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

func shardBase(devices int) Config {
	return Config{
		Devices:  devices,
		Seed:     21,
		Duration: 24 * units.Hour,
		Workers:  2,
		Scenario: DayInTheLife(),
	}
}

// TestShardMergeMatchesSingleProcess: shard the fleet 3 ways, merge the
// partials, and require byte identity with the single-process report —
// both the canonical JSON and the full JSON (the engine diagnostics are
// integer sums, so even they merge exactly).
func TestShardMergeMatchesSingleProcess(t *testing.T) {
	cfg := shardBase(50)
	whole, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	parts := make([]*Partial, 0, n)
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.ShardIndex = i
		scfg.ShardCount = n
		p, err := RunShard(scfg)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through JSON, as the CLI does.
		b, err := p.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParsePartial(b)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, back)
	}
	// Merge in scrambled order; Merge sorts by range.
	merged, err := Merge([]*Partial{parts[2], parts[0], parts[1]}, cfg.Scenario)
	if err != nil {
		t.Fatal(err)
	}

	wj, err1 := whole.JSON(false)
	mj, err2 := merged.JSON(false)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(wj, mj) {
		t.Fatalf("merged shards diverged from single process:\n%s\nvs\n%s", wj, mj)
	}
	wc, _ := whole.CanonicalJSON(false)
	mc, _ := merged.CanonicalJSON(false)
	if !bytes.Equal(wc, mc) {
		t.Fatal("canonical JSON diverged between merged shards and single process")
	}
}

// TestShardRangesPartition: the shard ranges must tile [0, N) exactly
// for awkward divisor combinations.
func TestShardRangesPartition(t *testing.T) {
	for _, devices := range []int{1, 7, 100, 101} {
		for _, n := range []int{1, 2, 3, 7} {
			if n > devices {
				continue
			}
			covered := 0
			for i := 0; i < n; i++ {
				cfg := Config{Devices: devices, ShardIndex: i, ShardCount: n}
				lo, hi := cfg.shardRange()
				if lo != covered {
					t.Fatalf("devices=%d n=%d shard %d starts at %d, want %d", devices, n, i, lo, covered)
				}
				covered = hi
			}
			if covered != devices {
				t.Fatalf("devices=%d n=%d covered %d", devices, n, covered)
			}
		}
	}
}

// TestMergeValidation: gaps, duplicates, and identity drift must be
// loud errors.
func TestMergeValidation(t *testing.T) {
	cfg := shardBase(30)
	mk := func(i, n int) *Partial {
		scfg := cfg
		scfg.ShardIndex = i
		scfg.ShardCount = n
		p, err := RunShard(scfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0, p1, p2 := mk(0, 3), mk(1, 3), mk(2, 3)

	if _, err := Merge([]*Partial{p0, p2}, cfg.Scenario); err == nil ||
		!strings.Contains(err.Error(), "coverage gap") {
		t.Fatalf("gap: want coverage error, got %v", err)
	}
	if _, err := Merge([]*Partial{p0, p1, p1, p2}, cfg.Scenario); err == nil {
		t.Fatal("duplicate shard merged silently")
	}
	drift := *p1
	drift.Seed = 999
	if _, err := Merge([]*Partial{p0, &drift, p2}, cfg.Scenario); err == nil ||
		!strings.Contains(err.Error(), "identically configured") {
		t.Fatalf("seed drift: want identity error, got %v", err)
	}
	if _, err := Merge([]*Partial{p0, p1, p2}, IdleScenario{}); err == nil {
		t.Fatal("wrong scenario merged silently")
	}
	if _, err := Merge(nil, cfg.Scenario); err == nil {
		t.Fatal("empty merge succeeded")
	}
}

// TestShardedCheckpointResume: sharding composes with checkpoint/resume
// — a shard interrupted and resumed produces the same partial.
func TestShardedCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Devices:       9,
		Seed:          13,
		Duration:      3 * 24 * units.Hour,
		Workers:       2,
		Scenario:      WeekInTheLife(),
		ShardIndex:    1,
		ShardCount:    2,
		CheckpointDir: dir,
	}
	full, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	resumed, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := full.JSON()
	b, _ := resumed.JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed shard partial diverged:\n%s\nvs\n%s", a, b)
	}
}
