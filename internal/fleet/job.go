package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/units"
)

// This file is the job layer of the fleet: the immutable, wire-
// serializable spec of a run (Job) and the unit of distributed work
// (ShardRun). The layering follows rdsys's core/delivery split — the
// Job and the mergeable Partial are the in-memory model, and any
// process that can execute a ShardRun and hand back its Partial is a
// valid runner, whether it lives on the other side of a channel, an
// HTTP connection, or inside this very process. A single-process
// fleet.Run is the degenerate one-runner case: one ShardRun covering
// the whole device range, reduced through exactly the same code path
// (internal/coord asserts the byte identity).

// Job is the immutable spec of a fleet run: scenario, population,
// horizon, seed, and the shard plan. It is what a coordinator accepts,
// what crosses the delivery wire, and what every shard of a run must
// agree on — the same identity fields Partial carries and Merge
// checks. The scenario travels by registry name (Scenarios()); tests
// that need a non-registry scenario attach one with NewJob, but such
// jobs cannot cross a process boundary.
type Job struct {
	// Scenario is the workload's registry name.
	Scenario string `json:"scenario"`
	// Devices is the fleet size; Seed the fleet master seed; DurationMS
	// the per-device horizon in milliseconds.
	Devices    int   `json:"devices"`
	Seed       int64 `json:"seed"`
	DurationMS int64 `json:"duration_ms"`
	// Shards is the shard plan: the device index range is partitioned
	// into this many contiguous ShardRun units (1 = the degenerate
	// single-runner job).
	Shards int `json:"shards"`

	// BatteryUJ overrides the profile battery (0 = profile default);
	// LifeResolutionMS overrides DefaultLifeResolution (0 = default).
	BatteryUJ        int64 `json:"battery_uj,omitempty"`
	LifeResolutionMS int64 `json:"life_resolution_ms,omitempty"`

	// EngineMode/SettleMode/NetdSettleMode/DenseWatch pin the engine
	// configuration, so every runner of a job simulates identically (the
	// same fields Partial records and Merge verifies).
	EngineMode        uint8 `json:"engine_mode,omitempty"`
	SettleMode        uint8 `json:"settle_mode,omitempty"`
	NetdSettleMode    uint8 `json:"netd_settle_mode,omitempty"`
	ChargerSettleMode uint8 `json:"charger_settle_mode,omitempty"`
	DenseWatch        bool  `json:"dense_watch,omitempty"`

	// CheckpointDir, when set, makes every ShardRun interruptible: epoch
	// files land there (per-shard names), and a reassigned shard resumes
	// from the newest complete epoch instead of t = 0 — runner loss
	// costs at most one checkpoint interval of re-simulation. Runners
	// must share the directory (same machine or shared filesystem).
	CheckpointDir     string `json:"checkpoint_dir,omitempty"`
	CheckpointEveryMS int64  `json:"checkpoint_every_ms,omitempty"`

	// scenario is an in-process override for non-registry scenarios
	// (NewJob captures it). It does not cross the wire: a marshalled
	// job resolves by name only.
	scenario Scenario
}

// NewJob derives a job spec from a run config and a shard plan,
// capturing cfg.Scenario so non-registry scenarios work in-process.
func NewJob(cfg Config, shards int) (Job, error) {
	if cfg.Scenario == nil {
		return Job{}, fmt.Errorf("fleet: job needs a scenario")
	}
	mode := cfg.EngineMode
	if mode == sim.ModeAuto {
		mode = sim.DefaultMode()
	}
	j := Job{
		Scenario:          cfg.Scenario.Name(),
		Devices:           cfg.Devices,
		Seed:              cfg.Seed,
		DurationMS:        int64(cfg.Duration),
		Shards:            shards,
		BatteryUJ:         int64(cfg.BatteryCapacity),
		LifeResolutionMS:  int64(cfg.LifeResolution),
		EngineMode:        uint8(mode),
		SettleMode:        uint8(cfg.Settle),
		NetdSettleMode:    uint8(cfg.NetdSettle),
		ChargerSettleMode: uint8(cfg.ChargerSettle),
		DenseWatch:        cfg.DenseWatch,
		CheckpointDir:     cfg.CheckpointDir,
		CheckpointEveryMS: int64(cfg.CheckpointEvery),
		scenario:          cfg.Scenario,
	}
	return j, j.Validate()
}

// ParseJob deserializes and validates a wire job.
func ParseJob(b []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(b, &j); err != nil {
		return Job{}, fmt.Errorf("fleet: bad job: %w", err)
	}
	return j, j.Validate()
}

// Validate checks the spec: a resolvable scenario, a positive
// population and horizon, and a shard plan that partitions it.
func (j Job) Validate() error {
	if _, err := j.ResolveScenario(); err != nil {
		return err
	}
	if j.Devices <= 0 {
		return fmt.Errorf("fleet: job needs at least 1 device, got %d", j.Devices)
	}
	if j.DurationMS <= 0 {
		return fmt.Errorf("fleet: job has non-positive duration %d ms", j.DurationMS)
	}
	if j.Shards <= 0 || j.Shards > j.Devices {
		return fmt.Errorf("fleet: job shard plan %d over %d devices", j.Shards, j.Devices)
	}
	if j.LifeResolutionMS < 0 {
		return fmt.Errorf("fleet: job has negative life resolution %d ms", j.LifeResolutionMS)
	}
	return nil
}

// ResolveScenario returns the job's workload: the in-process override
// when NewJob captured one, the registry entry otherwise.
func (j Job) ResolveScenario() (Scenario, error) {
	if j.scenario != nil {
		return j.scenario, nil
	}
	sc, ok := Scenarios()[j.Scenario]
	if !ok {
		return nil, fmt.Errorf("fleet: job references unknown scenario %q", j.Scenario)
	}
	return sc, nil
}

// Horizon is the per-device simulated duration.
func (j Job) Horizon() units.Time { return units.Time(j.DurationMS) }

// SimTotal is the job's total simulated device-time — the work measure
// behind device-days/s and ETA reporting.
func (j Job) SimTotal() units.Time { return units.Time(j.Devices) * j.Horizon() }

// ShardRange returns shard i's contiguous device index range.
func (j Job) ShardRange(i int) (lo, hi int) {
	cfg := Config{Devices: j.Devices, ShardIndex: i, ShardCount: j.Shards}
	return cfg.shardRange()
}

// ShardConfig materializes the run config for one shard of the plan.
func (j Job) ShardConfig(shard int) (Config, error) {
	if shard < 0 || shard >= j.Shards {
		return Config{}, fmt.Errorf("fleet: shard %d of %d out of range", shard, j.Shards)
	}
	sc, err := j.ResolveScenario()
	if err != nil {
		return Config{}, err
	}
	return Config{
		Devices:         j.Devices,
		Seed:            j.Seed,
		Duration:        units.Time(j.DurationMS),
		Scenario:        sc,
		BatteryCapacity: units.Energy(j.BatteryUJ),
		LifeResolution:  units.Time(j.LifeResolutionMS),
		EngineMode:      sim.Mode(j.EngineMode),
		Settle:          kernel.SettleMode(j.SettleMode),
		NetdSettle:      kernel.SettleMode(j.NetdSettleMode),
		ChargerSettle:   kernel.SettleMode(j.ChargerSettleMode),
		DenseWatch:      j.DenseWatch,
		ShardIndex:      shard,
		ShardCount:      j.Shards,
		CheckpointDir:   j.CheckpointDir,
		CheckpointEvery: units.Time(j.CheckpointEveryMS),
	}, nil
}

// ShardRun is the unit of distributed work: shard Shard of the job's
// plan. Its output is the mergeable Partial every delivery transport
// carries; Merge over a job's complete ShardRun outputs reproduces the
// single-process report byte for byte, regardless of which runners
// executed which shards, in what order, or how many times a shard was
// reassigned after a runner loss.
type ShardRun struct {
	Job   Job
	Shard int
	// Resume asks for an opportunistic resume: continue from the newest
	// complete epoch file in the job's checkpoint dir if one exists,
	// start from t = 0 otherwise. The coordinator sets it when
	// reassigning a shard whose runner was lost.
	Resume bool
	// Workers bounds the local worker pool (0 = one per CPU).
	Workers int
	// Progress and PerDevice stream out of the shard's admission window
	// (see Config); runners feed heartbeats and NDJSON emitters from
	// them.
	Progress  func(Progress) error
	PerDevice func(DeviceResult) error
	// Warnf receives rare warning lines (see Config.Warnf); runners wire
	// it to their log.
	Warnf func(format string, args ...any)
}

// Run executes the shard and returns its partial report.
func (s ShardRun) Run() (*Partial, error) {
	cfg, err := s.Job.ShardConfig(s.Shard)
	if err != nil {
		return nil, err
	}
	cfg.Workers = s.Workers
	cfg.ResumeAuto = s.Resume
	cfg.Progress = s.Progress
	cfg.PerDevice = s.PerDevice
	cfg.Warnf = s.Warnf
	return RunShard(cfg)
}

// Merge combines a complete set of shard partials under the job into
// the full fleet report (see the package-level Merge for the checks).
func (j Job) Merge(parts []*Partial) (Report, error) {
	sc, err := j.ResolveScenario()
	if err != nil {
		return Report{}, err
	}
	return Merge(parts, sc)
}
