package fleet

import (
	"repro/internal/kernel"
	"repro/internal/power"
	"repro/internal/sim"
)

// Charge plugs a wall supply into the device for the window — the first
// workload that *credits* the battery instead of draining it. Scenario
// days composed with Charge phases model full recharge cycles: the
// depletion horizon, the watch horizon and closed-form settlement all
// have to stay exact while the battery level is non-monotone, which is
// precisely what the kernel's BatteryCharger was built to guarantee
// (see internal/kernel/charger.go).
//
// The first Charge phase installed on a device attaches the charger
// with the fleet's A/B settle knob (Device.ChargerSettle, the
// -per-charge flag); later phases reuse it. Charge windows on one
// device must not overlap — Plug while plugged is a no-op, so an
// overlapped window's unplug would cut the earlier window short.
type Charge struct {
	// Supply is the wall adapter (default power.ACCharger, the Dream's
	// stock 1 A brick).
	Supply power.Charger
}

// Name implements Workload.
func (Charge) Name() string { return "charge" }

// Install implements Workload.
func (c Charge) Install(d *Device, w Window) error {
	if w.Duration <= 0 {
		return nil
	}
	supply := c.Supply
	if supply.Rate <= 0 {
		supply = power.ACCharger()
	}
	k := d.Kernel
	if k.Charger() == nil {
		k.AttachCharger(kernel.ChargerConfig{Settle: d.ChargerSettle})
	}
	ch := k.Charger()
	k.Eng.At(w.Start, func(*sim.Engine) { ch.Plug(supply) })
	k.Eng.At(w.End(), func(*sim.Engine) { ch.Unplug() })
	return nil
}
