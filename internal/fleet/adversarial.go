package fleet

import (
	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// This file assembles the §5.2.2 adversarial population: a fleet where
// some devices run a hoarding application that grabs battery energy
// into a private stash and sits on it. The paper's defence is two-fold
// — backward proportional taps that tax application reserves back into
// the battery, and (because a hoarder can try to outrun the tax by
// transferring its balance into a fresh, untaxed reserve) the "more
// fundamental" rule that rejects transfers which would weaken the
// backward drain. The scenario splits the fleet into three cohorts so
// one run measures containment directly:
//
//   - adv-victim: a normal phone day, no hoarder. Its death times are
//     the baseline.
//   - adv-lax: the same day plus the hoarder app, with the fundamental
//     rule OFF. The hoarder's evasion transfers succeed, the stash
//     (created decay-exempt, modelling a reserve the global half-life
//     cannot reach) keeps everything, and the device starves itself.
//   - adv-strict: identical app, but the cohort is provisioned with
//     StrictHoarding — the per-cohort knob DeviceProvision carries into
//     kernel.Config. Every evasion transfer is rejected with
//     ErrHoarding, the balance stays in the taxed reserve, and the
//     backward tap reclaims it for the battery.
//
// Containment then reads straight out of the per-bucket report:
// adv-strict's Reclaimed is the hoarder energy returned to the battery,
// and its LifeP50 recovers toward adv-victim's while adv-lax dies
// early. DeviceResult.Reclaimed sums the policy tap's lifetime Moved
// with both hoard reserves' decay returns, so the metric is exact
// integer energy, independent of settle mode and worker count.

const (
	// advStream separates cohort/battery assignment from Build's
	// construction stream; Provision and Build derive the same values
	// from the device seed independently.
	advStream = 0x5EC5_22AD_0A17

	// Batteries draw from [30, 55) kJ — half a day to a day of the
	// Dream's 699 mW floor, so every cohort dies inside a 24 h horizon
	// and the death-time *delta* between cohorts is measurable.
	advBatteryBase = 30 * units.Kilojoule
	advBatterySpan = 25 * units.Kilojoule

	// advGreedRate is the hoarder's grab tap: a third of the baseline
	// floor, enough to pull a device's death hours earlier when the
	// energy never comes back.
	advGreedRate = units.Power(250_000) // 250 mW in µW

	// advTaxPPM is the policy's backward proportional tap on the
	// hoarder's reserve: 0.1 %/s (≈11.5 min half-life), the §5.2.1
	// backward-tap construction.
	advTaxPPM core.PPM = 1000

	// advEvadeEvery is the hoarder's evasion cadence: once a minute it
	// tries to move its whole balance into the untaxed stash.
	advEvadeEvery = units.Minute
)

// AdversarialCohorts returns the §5.2.2 containment scenario.
func AdversarialCohorts() Scenario { return advScenario{} }

// advScenario implements Scenario and Provisioner.
type advScenario struct{}

// Name implements Scenario.
func (advScenario) Name() string { return "adversarial" }

// advDraw derives the device's cohort and battery from its seed on the
// scenario's dedicated stream.
func advDraw(seed int64) (cohort int64, battery units.Energy) {
	r := newSplitmix(seed ^ advStream)
	cohort = r.Intn(10)
	battery = advBatteryBase + units.Energy(r.Intn(int64(advBatterySpan)))
	return cohort, battery
}

// Provision implements Provisioner: per-device batteries for everyone,
// and the fundamental anti-hoarding rule for the strict cohort only —
// the per-cohort kernel-policy split this scenario exists to measure.
func (advScenario) Provision(_ int, seed int64) DeviceProvision {
	cohort, battery := advDraw(seed)
	return DeviceProvision{
		BatteryCapacity: battery,
		StrictHoarding:  cohort >= 8,
	}
}

// Build implements Scenario: every cohort lives the same modest phone
// day; the hoarder cohorts run the hoarding app on top of it.
func (a advScenario) Build(d *Device) error {
	cohort, _ := advDraw(d.Seed)

	r := d.Rand
	screenHabit := 4*units.Minute + units.Time(r.Intn(int64(8*units.Minute)))
	phases := []Phase{
		{Workload: Screen{}, Start: 7*units.Hour + 30*units.Minute, Duration: screenHabit, Jitter: 30 * units.Minute},
		{Workload: Pollers{Interval: 5 * units.Minute}, Start: 8 * units.Hour, Duration: units.Hour, Jitter: 30 * units.Minute},
		{Workload: Screen{}, Start: 19 * units.Hour, Duration: screenHabit, Jitter: 2 * units.Hour},
	}

	var lbl string
	switch {
	case cohort < 6:
		lbl = "adv-victim"
	case cohort < 8:
		lbl = "adv-lax"
	default:
		lbl = "adv-strict"
	}
	if cohort >= 6 {
		if err := installHoarder(d); err != nil {
			return err
		}
	}
	d.Scenario = lbl
	return Compose{Label: lbl, Phases: phases}.Build(d)
}

// installHoarder sets up the adversary: a greedy constant tap pulling
// battery energy into a taxed reserve, the policy's backward
// proportional tap on that reserve, an untaxed decay-exempt stash, and
// a thread that periodically tries to move the balance across. Under
// StrictHoarding the move is refused and the tax wins; without it the
// stash fills and the energy is lost to the device.
func installHoarder(d *Device) error {
	k := d.Kernel
	ctr := kobj.NewContainer(k.Table, k.Root, "hoarder", label.Public())
	greed := k.CreateReserve(ctr, "hoard", label.Public())
	stash := k.CreateReserveOpts(ctr, "stash", label.Public(),
		core.ReserveOpts{DecayExempt: true})

	grab, err := k.CreateTap(ctr, "hoard-grab", k.KernelPriv(), k.Battery(), greed, label.Public())
	if err != nil {
		return err
	}
	if err := grab.SetRate(k.KernelPriv(), advGreedRate); err != nil {
		return err
	}
	// The policy tax. Its object label is the battery's (the kernel's
	// system category), so the hoarder's empty privileges cannot modify
	// or remove it — which is what makes the strict rule bite: a
	// backward tap the caller *could* remove is ignorable and would not
	// block the evasive transfer.
	tax, err := k.CreateTap(ctr, "hoard-tax", k.KernelPriv(), greed, k.Battery(), k.Battery().Label())
	if err != nil {
		return err
	}
	if err := tax.SetFrac(k.KernelPriv(), advTaxPPM); err != nil {
		return err
	}

	h := &hoarder{g: k.Graph, greed: greed, stash: stash, every: advEvadeEvery}
	k.Eng.At(0, func(*sim.Engine) {
		k.Sched.NewThread(ctr, "hoarder", label.Public(), label.Priv{},
			sched.RunnerFunc(h.step), greed)
	})

	d.Probes = append(d.Probes, func(res *DeviceResult) {
		res.Reclaimed += tax.Stats().Moved
		if acc, err := greed.Stats(label.Priv{}); err == nil {
			res.Reclaimed += acc.Decayed
		}
		if acc, err := stash.Stats(label.Priv{}); err == nil {
			res.Reclaimed += acc.Decayed
		}
	})
	return nil
}

// hoarder is the evasion thread: every period it tries to transfer its
// whole taxed balance into the untaxed stash.
type hoarder struct {
	g      *core.Graph
	greed  *core.Reserve
	stash  *core.Reserve
	every  units.Time
	next   units.Time
	denied int64
}

func (h *hoarder) step(now units.Time, th *sched.Thread) {
	if now < h.next {
		th.Sleep(h.next)
		return
	}
	h.next = now + h.every
	if lvl, err := h.greed.Level(label.Priv{}); err == nil && lvl > 0 {
		if _, err := h.g.TransferUpTo(label.Priv{}, h.greed, h.stash, lvl); err != nil {
			h.denied++ // ErrHoarding under the strict cohort's kernel
		}
	}
	th.Sleep(h.next)
}
