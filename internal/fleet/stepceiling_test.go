package fleet

import (
	"testing"

	"repro/internal/units"
)

// TestBusyBucketStepCeiling is the busy-path regression gate: the mean
// executed-instant count for the chatty and commuter day-in-the-life
// buckets over 24 h must stay under 10k instants per device-day. Before
// closed-form netd sweep settlement and the throttled-quantum scheduler
// skip these buckets sat at ~8.3k and ~12.5k; they now run at ~2.7k and
// ~5.9k, so a regression that reintroduces per-period task firings on
// the busy path (sweeps at 100 ms, throttled scheduler quanta at every
// tap batch) trips this long before it reaches the recorded ceiling.
func TestBusyBucketStepCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const ceiling = 10_000
	rep, err := Run(Config{
		Devices:  256,
		Seed:     7,
		Duration: 24 * units.Hour,
		Workers:  4,
		Scenario: DayInTheLife(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, b := range rep.Buckets {
		switch b.Name {
		case "chatty-day", "commuter-day":
			checked++
			if b.MeanSteps >= ceiling {
				t.Errorf("bucket %q: mean %d executed instants per device-day, ceiling %d",
					b.Name, b.MeanSteps, ceiling)
			}
		}
	}
	if checked != 2 {
		t.Fatalf("expected chatty-day and commuter-day buckets, checked %d of %d", checked, len(rep.Buckets))
	}
}
