package fleet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snap"
	"repro/internal/units"
)

// weekCfg is the checkpoint suite's base config: a small heterogeneous
// week-in-the-life fleet whose day boundaries are checkpoint-quiet and
// whose battery draws put a death or two inside the horizon.
func weekCfg(t *testing.T, devices int, dir string) Config {
	t.Helper()
	return Config{
		Devices:       devices,
		Seed:          11,
		Duration:      7 * 24 * units.Hour,
		Workers:       2,
		Scenario:      WeekInTheLife(),
		KeepResults:   true,
		CheckpointDir: dir,
	}
}

func canonical(t *testing.T, rep Report) []byte {
	t.Helper()
	b, err := rep.CanonicalJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointedRunMatchesUninterrupted: running epoch by epoch
// through snapshot/restore machinery must not change a single canonical
// byte relative to the single-pass run — the snapshot round trip is
// lossless for everything the report can observe.
func TestCheckpointedRunMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	cfg := weekCfg(t, 12, "")
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointDir = dir
	ckpt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := canonical(t, plain), canonical(t, ckpt); !bytes.Equal(a, b) {
		t.Fatalf("checkpointed run diverged from uninterrupted run:\n%s\nvs\n%s", a, b)
	}
	// Six epoch files (days 1..6; the final day aggregates instead).
	files, _ := filepath.Glob(filepath.Join(dir, "epoch-*.bin"))
	if len(files) != 6 {
		t.Fatalf("expected 6 epoch files, found %v", files)
	}
}

// TestResumeMatchesUninterrupted: interrupt after day N (simulated by
// removing the later epoch files), resume, and compare against the
// uninterrupted run — including the regenerated epoch file's bytes,
// which must be identical to the one the first run wrote.
func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	cfg := weekCfg(t, 12, dir)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Keep a copy of the day-5 epoch file, then "interrupt" the run
	// after day 3 by removing everything later.
	day5 := epochPath(cfg, 4)
	want5, err := os.ReadFile(day5)
	if err != nil {
		t.Fatal(err)
	}
	for e := 3; e <= 5; e++ {
		if err := os.Remove(epochPath(cfg, e)); err != nil {
			t.Fatal(err)
		}
	}

	cfg.Resume = true
	resumed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := canonical(t, full), canonical(t, resumed); !bytes.Equal(a, b) {
		t.Fatalf("resumed run diverged from uninterrupted run:\n%s\nvs\n%s", a, b)
	}
	got5, err := os.ReadFile(day5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want5, got5) {
		t.Fatal("regenerated epoch file differs from the original byte stream")
	}
}

// TestResumeRejectsConfigDrift: epoch files carry the run identity; a
// resume under a different configuration must fail loudly, not restore
// a garbage fleet.
func TestResumeRejectsConfigDrift(t *testing.T) {
	dir := t.TempDir()
	cfg := weekCfg(t, 8, dir)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	drifted := cfg
	drifted.Resume = true
	drifted.Seed = 999
	if _, err := Run(drifted); err == nil {
		t.Fatal("resume with a different seed succeeded")
	} else if !strings.Contains(err.Error(), "no complete epoch file") {
		t.Fatalf("undescriptive drift error: %v", err)
	}
}

// TestResumeWithoutCheckpointsFails: -resume with an empty directory is
// an explicit error.
func TestResumeWithoutCheckpointsFails(t *testing.T) {
	cfg := weekCfg(t, 8, t.TempDir())
	cfg.Resume = true
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no complete epoch file") {
		t.Fatalf("want loud no-epoch error, got %v", err)
	}
}

// TestSnapshotCorruptionFailsLoudly covers the checkpoint versioning
// satellite end to end at the device level: a snapshot with a corrupted
// payload, a truncated stream, a wrong magic, or an unsupported version
// must produce a descriptive error — never a silently wrong device.
func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	cfg := weekCfg(t, 1, "")
	var rg rig
	d, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	d.Kernel.Run(24 * units.Hour)
	blob, err := snapshotDevice(d)
	if err != nil {
		t.Fatal(err)
	}

	rebuild := func() *Device {
		var rg2 rig
		d2, _, err := buildDevice(cfg, 0, &rg2)
		if err != nil {
			t.Fatal(err)
		}
		return d2
	}

	// The pristine snapshot must restore.
	if err := restoreDevice(rebuild(), blob); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}

	corrupt := bytes.Clone(blob)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := restoreDevice(rebuild(), corrupt); !errors.Is(err, snap.ErrChecksum) {
		t.Fatalf("corrupted payload: want ErrChecksum, got %v", err)
	}

	truncated := bytes.Clone(blob[:len(blob)/3])
	err = restoreDevice(rebuild(), truncated)
	if !errors.Is(err, snap.ErrChecksum) && !errors.Is(err, snap.ErrTruncated) {
		t.Fatalf("truncated snapshot: want checksum/truncation error, got %v", err)
	}

	notSnap := []byte("GARBAGEGARBAGEGARBAGE")
	if err := restoreDevice(rebuild(), notSnap); !errors.Is(err, snap.ErrMagic) {
		t.Fatalf("non-snapshot bytes: want ErrMagic, got %v", err)
	}

	wrongVer := bytes.Clone(blob)
	wrongVer[len(snap.Magic)] ^= 0x7F // version field follows the magic
	if err := restoreDevice(rebuild(), wrongVer); !errors.Is(err, snap.ErrVersion) {
		t.Fatalf("wrong version: want ErrVersion, got %v", err)
	}
}

// TestRestoreOntoWrongDeviceFails: a snapshot must refuse to overlay a
// device with a different index/seed.
func TestRestoreOntoWrongDeviceFails(t *testing.T) {
	cfg := weekCfg(t, 2, "")
	var rg rig
	d0, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	d0.Kernel.Run(24 * units.Hour)
	blob, err := snapshotDevice(d0)
	if err != nil {
		t.Fatal(err)
	}
	var rg1 rig
	d1, _, err := buildDevice(cfg, 1, &rg1)
	if err != nil {
		t.Fatal(err)
	}
	err = restoreDevice(d1, blob)
	if err == nil || !strings.Contains(err.Error(), "onto device") {
		t.Fatalf("want wrong-device error, got %v", err)
	}
}

// TestCheckpointRefusesNonQuietBoundary: snapshotting a device mid-
// activity (here: a browse phase straddling the boundary, with live
// taps and threads) must fail loudly at snapshot or restore — never
// produce a device that silently dropped its workload.
func TestCheckpointRefusesNonQuietBoundary(t *testing.T) {
	cfg := Config{
		Devices:  1,
		Seed:     3,
		Duration: time2h(),
		Workers:  1,
		// A browse session spanning the 1 h boundary: at the boundary
		// the device has a live container, thread and funding tap.
		Scenario: Compose{Label: "straddle", Phases: []Phase{
			{Workload: Browse{Pages: 200, ThinkMin: 20 * units.Second, ThinkMax: 40 * units.Second},
				Start: 30 * units.Minute, Duration: 90 * units.Minute},
		}},
	}
	var rg rig
	d, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	d.Kernel.Run(units.Hour)
	blob, serr := snapshotDevice(d)
	if serr != nil {
		return // refused at snapshot time: loud and fine
	}
	var rg2 rig
	d2, _, err := buildDevice(cfg, 0, &rg2)
	if err != nil {
		t.Fatal(err)
	}
	if rerr := restoreDevice(d2, blob); rerr == nil {
		t.Fatal("snapshot of a mid-phase device restored without error")
	}
}

func time2h() units.Time { return 2 * units.Hour }

// TestDeadDevicePassthrough: devices that die in an early epoch must
// carry their final result through later epoch files unchanged.
func TestDeadDevicePassthrough(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Devices:  6,
		Seed:     5,
		Duration: 3 * 24 * units.Hour,
		Workers:  2,
		// DayInTheLife does not provision per-device batteries, so the
		// fleet-level override is legal here (weekinthelife would reject
		// it loudly) and kills everything mid-day-2.
		Scenario:        DayInTheLife(),
		BatteryCapacity: 90 * units.Kilojoule,
		KeepResults:     true,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Dead != cfg.Devices {
		t.Fatalf("scenario did not kill the fleet (dead %d)", plain.Dead)
	}
	cfg.CheckpointDir = dir
	ckpt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := canonical(t, plain), canonical(t, ckpt); !bytes.Equal(a, b) {
		t.Fatalf("dead-device passthrough diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestWatchEquivalence: the adaptive battery watch must detect every
// death at exactly the instant dense per-second polling does.
func TestWatchEquivalence(t *testing.T) {
	cfg := Config{
		Devices:         10,
		Seed:            9,
		Duration:        30 * units.Hour,
		Workers:         2,
		Scenario:        DayInTheLife(),
		BatteryCapacity: 18 * units.Kilojoule, // deaths mid-run
		KeepResults:     true,
	}
	adaptive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DenseWatch = true
	dense, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical comparison: the adaptive watch executes fewer engine
	// instants (that is its point), so the step diagnostics differ;
	// everything observable — consumption, every death instant,
	// utilization, workload counters — must match to the byte.
	aj, err1 := adaptive.CanonicalJSON(true)
	dj, err2 := dense.CanonicalJSON(true)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(aj, dj) {
		t.Fatalf("adaptive battery watch diverged from dense polling:\n%s\nvs\n%s", aj, dj)
	}
	if adaptive.Dead == 0 {
		t.Fatal("test fleet had no deaths; watch equivalence not exercised")
	}
}

// TestSnapshotMidNetdWaitFails: a device whose caller is blocked inside
// the cooperative netd pool holds live references — a blocked thread,
// its billing reserve, the pool-crossing prediction over them — that
// the restore path rebuilds from scratch and cannot reattach. Such a
// device must refuse to snapshot with a descriptive error rather than
// serialize a state it cannot faithfully revive.
func TestSnapshotMidNetdWaitFails(t *testing.T) {
	cfg := Config{
		Devices:  1,
		Seed:     5,
		Duration: units.Hour,
		Workers:  1,
		Scenario: Compose{Label: "pollers", Phases: []Phase{
			{Workload: Pollers{Pollers: 2, Interval: 60 * units.Second},
				Start: 0, Duration: units.Hour},
		}},
	}
	var rg rig
	d, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600 && d.Netd.WaitingThreads() == 0; i++ {
		d.Kernel.Run(units.Second)
	}
	if d.Netd.WaitingThreads() == 0 {
		t.Fatal("no netd waiter appeared within 10 simulated minutes")
	}
	if _, serr := snapshotDevice(d); serr == nil {
		t.Fatal("snapshot of a device with blocked netd callers succeeded")
	} else {
		for _, want := range []string{"not checkpoint-quiet", "blocked in netd"} {
			if !strings.Contains(serr.Error(), want) {
				t.Errorf("snapshot error %q does not mention %q", serr, want)
			}
		}
	}
}

// TestSnapshotQuietNetdRoundTrips: the complement of the refusal above —
// a device between workload phases (no waiter, no live container), with
// closed-form sweep settlement already exercised, must snapshot, restore
// into a fresh rig and evolve byte-identically to the original from
// that point on, through a second active phase.
func TestSnapshotQuietNetdRoundTrips(t *testing.T) {
	cfg := Config{
		Devices:  1,
		Seed:     5,
		Duration: 2 * units.Hour,
		Workers:  1,
		Scenario: Compose{Label: "pollers", Phases: []Phase{
			{Workload: Pollers{Pollers: 2, Interval: 60 * units.Second},
				Start: 0, Duration: 30 * units.Minute},
			{Workload: Pollers{Pollers: 1, Interval: 45 * units.Second},
				Start: 50 * units.Minute, Duration: 30 * units.Minute},
		}},
	}
	var rg rig
	d, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	// Run through the first phase and into the quiet gap between phases.
	d.Kernel.Run(40 * units.Minute)
	if n := d.Netd.WaitingThreads(); n > 0 {
		t.Fatalf("device not netd-quiet between phases: %d waiters", n)
	}
	if d.Netd.Stats().SettledSweeps == 0 {
		t.Fatal("scenario exercised no closed-form sweep settlement; the round trip would not cover it")
	}
	blob, serr := snapshotDevice(d)
	if serr != nil {
		t.Fatal(serr)
	}
	var rg2 rig
	d2, _, err := buildDevice(cfg, 0, &rg2)
	if err != nil {
		t.Fatal(err)
	}
	if rerr := restoreDevice(d2, blob); rerr != nil {
		t.Fatal(rerr)
	}
	// Continue both through the second phase to its teardown and beyond.
	d.Kernel.Run(50 * units.Minute)
	d2.Kernel.Run(50 * units.Minute)
	a, aerr := snapshotDevice(d)
	b, berr := snapshotDevice(d2)
	if aerr != nil || berr != nil {
		t.Fatalf("post-restore snapshots failed: %v / %v", aerr, berr)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("restored device diverged from original after identical continuation")
	}
}
