package fleet

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/units"
)

// damage mutates an epoch file in place the way a storage failure
// would.
func bitflip(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncateTo(t *testing.T, path string, frac float64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(float64(fi.Size())*frac)); err != nil {
		t.Fatal(err)
	}
}

// TestResumeSalvagesDamagedNewestEpoch: when the newest epoch file is
// corrupt — flipped bits or a torn (truncated) write — -resume must
// quarantine it with a report, fall back to the epoch before it,
// re-simulate only the lost epochs, and still produce the exact
// canonical bytes of the uninterrupted run.
func TestResumeSalvagesDamagedNewestEpoch(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"bit-flip", bitflip},
		{"torn-write", func(t *testing.T, path string) { truncateTo(t, path, 0.6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := weekCfg(t, 12, dir)
			full, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			newest := epochPath(cfg, 5) // days 1..6 wrote epochs 0..5
			pristine, err := os.ReadFile(newest)
			if err != nil {
				t.Fatal(err)
			}
			tc.damage(t, newest)

			var warns []string
			firstEpoch := -1
			rcfg := cfg
			rcfg.Resume = true
			rcfg.Warnf = func(format string, args ...any) {
				warns = append(warns, strings.TrimSpace(format))
				t.Logf(format, args...)
			}
			rcfg.Progress = func(p Progress) error {
				if firstEpoch < 0 {
					firstEpoch = p.Epoch
				}
				return nil
			}
			resumed, err := Run(rcfg)
			if err != nil {
				t.Fatalf("resume over damaged newest epoch: %v", err)
			}
			if a, b := canonical(t, full), canonical(t, resumed); !bytes.Equal(a, b) {
				t.Fatalf("salvaged resume diverged from uninterrupted run:\n%s\nvs\n%s", a, b)
			}

			// Fell back exactly one epoch: only the final two simulated
			// days were re-run.
			if firstEpoch != 5 {
				t.Fatalf("salvage restarted at epoch %d, want 5 (one epoch of fallback)", firstEpoch)
			}
			warned := false
			for _, w := range warns {
				if strings.Contains(w, "quarantining") {
					warned = true
				}
			}
			if !warned {
				t.Fatalf("no quarantine warning emitted; warnings: %q", warns)
			}

			// The bad bytes are preserved for diagnosis beside a report…
			if _, err := os.Stat(newest + ".corrupt"); err != nil {
				t.Fatalf("quarantined file missing: %v", err)
			}
			report, err := os.ReadFile(newest + ".corrupt.report")
			if err != nil {
				t.Fatalf("quarantine report missing: %v", err)
			}
			for _, want := range []string{"quarantined", "fell back"} {
				if !strings.Contains(string(report), want) {
					t.Errorf("quarantine report does not mention %q:\n%s", want, report)
				}
			}
			// …and the resumed run regenerated the epoch file byte-for-byte.
			regen, err := os.ReadFile(newest)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(regen, pristine) {
				t.Fatal("regenerated epoch file differs from the pristine original")
			}
		})
	}
}

// TestResumeAllCorruptFailsLoudly: when every epoch file is damaged,
// strict -resume must fail with an error that points at the quarantined
// files instead of the bare "no complete epoch file" shrug.
func TestResumeAllCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	cfg := weekCfg(t, 8, dir)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= 5; e++ {
		truncateTo(t, epochPath(cfg, e), 0.5)
	}
	rcfg := cfg
	rcfg.Resume = true
	rcfg.Warnf = func(format string, args ...any) { t.Logf(format, args...) }
	_, err := Run(rcfg)
	if err == nil {
		t.Fatal("resume over an all-corrupt checkpoint dir succeeded")
	}
	for _, want := range []string{"quarantined", "corrupt.report"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestResumeSkipsForeignEpochWithoutQuarantine: a structurally sound
// epoch file from a different run configuration is not corruption — it
// must be skipped with a warning and left untouched, never renamed to
// .corrupt.
func TestResumeSkipsForeignEpochWithoutQuarantine(t *testing.T) {
	dir := t.TempDir()
	foreign := weekCfg(t, 8, dir)
	foreign.Seed = 999
	if _, err := Run(foreign); err != nil {
		t.Fatal(err)
	}
	cfg := weekCfg(t, 8, dir)
	rcfg := cfg
	rcfg.Resume = true
	var warns []string
	rcfg.Warnf = func(format string, args ...any) { warns = append(warns, format) }
	if _, err := Run(rcfg); err == nil {
		t.Fatal("resume against a foreign run's epoch files succeeded")
	}
	if files, _ := os.ReadDir(dir); len(files) > 0 {
		for _, f := range files {
			if strings.Contains(f.Name(), ".corrupt") {
				t.Fatalf("foreign epoch file was quarantined: %s", f.Name())
			}
		}
	}
	skipped := false
	for _, w := range warns {
		if strings.Contains(w, "skipping") {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("no skip warning for foreign epoch files; warnings: %q", warns)
	}
}

// TestCheckpointBoundaryMidPollNamesWorkload: a full checkpointed run
// whose epoch boundary lands while a poller's request is blocked in
// netd must fail with an error naming the device, its scenario bucket,
// and the remedy — the operator has to know which workload to blame
// and which knob to turn.
func TestCheckpointBoundaryMidPollNamesWorkload(t *testing.T) {
	cfg := Config{
		Devices:  1,
		Seed:     5,
		Duration: units.Hour,
		Workers:  1,
		Scenario: Compose{Label: "pollers", Phases: []Phase{
			{Workload: Pollers{Pollers: 2, Interval: 60 * units.Second},
				Start: 0, Duration: units.Hour},
		}},
	}

	// Probe the deterministic device second by second for an instant
	// with a caller blocked in netd; that instant becomes the epoch
	// boundary of the real run.
	var rg rig
	d, _, err := buildDevice(cfg, 0, &rg)
	if err != nil {
		t.Fatal(err)
	}
	boundary := units.Time(0)
	for i := 1; i <= 600; i++ {
		d.Kernel.Run(units.Second)
		if d.Netd.WaitingThreads() > 0 {
			boundary = units.Time(i) * units.Second
			break
		}
	}
	if boundary == 0 {
		t.Fatal("no netd waiter appeared within 10 simulated minutes")
	}

	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = boundary
	_, err = Run(cfg)
	if err == nil {
		t.Fatal("checkpoint at a mid-poll boundary succeeded")
	}
	for _, want := range []string{"device 0", `scenario "pollers"`, "not checkpoint-quiet",
		`"pollers" workload has a poll in flight`, "-checkpoint-every"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("boundary error %q does not mention %q", err, want)
		}
	}
}
