package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/units"
)

func testCfg(workers int) Config {
	return Config{
		Devices:     32,
		Seed:        7,
		Duration:    90 * units.Second,
		Workers:     workers,
		Scenario:    PollerScenario{},
		KeepResults: true,
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different reports:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	var reports []Report
	for _, w := range []int{1, 2, 7} {
		r, err := Run(testCfg(w))
		if err != nil {
			t.Fatal(err)
		}
		r.Workers = 0 // normalize the only field allowed to differ
		reports = append(reports, r)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("worker count changed the report:\n%s\nvs\n%s",
				reports[0].Format(), reports[i].Format())
		}
	}
}

func TestFleetSeedChangesResults(t *testing.T) {
	a, err := Run(testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(2)
	cfg.Seed = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Results, b.Results) {
		t.Fatal("different fleet seeds produced identical per-device results")
	}
}

func TestFleetPollerActivity(t *testing.T) {
	rep, err := Run(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPolls == 0 {
		t.Error("no polls completed")
	}
	if rep.TotalActivations == 0 {
		t.Error("no radio activations")
	}
	if rep.TotalConsumed == 0 {
		t.Error("no energy consumed")
	}
	for _, r := range rep.Results {
		if r.Consumed <= 0 {
			t.Fatalf("device %d consumed nothing", r.Index)
		}
	}
}

func TestFleetBatteryDeath(t *testing.T) {
	cfg := Config{
		Devices:  8,
		Seed:     3,
		Duration: 5 * units.Minute,
		Workers:  4,
		Scenario: IdleScenario{},
		// 699 mW idle drains 30 J in ≈43 s: every device must die.
		BatteryCapacity: 30 * units.Joule,
		KeepResults:     true,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dead != cfg.Devices {
		t.Fatalf("Dead = %d, want %d\n%s", rep.Dead, cfg.Devices, rep.Format())
	}
	for _, r := range rep.Results {
		if !r.Died {
			t.Fatalf("device %d not marked dead", r.Index)
		}
		if r.DiedAt <= 30*units.Second || r.DiedAt >= 60*units.Second {
			t.Fatalf("device %d died at %v, want ≈43 s", r.Index, r.DiedAt)
		}
	}
	if rep.LifeP50 == 0 || rep.LifeP90 < rep.LifeP50 {
		t.Fatalf("bad life percentiles: p50 %v p90 %v", rep.LifeP50, rep.LifeP90)
	}
}

func TestFleetModeEquivalence(t *testing.T) {
	// The whole fleet must produce identical results under the
	// next-event and fixed-tick engines.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testCfg(4)
	cfg.Devices = 8
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EngineMode = sim.ModeFixedTick
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// EngineSteps, FlowWalks, SettledBatches and SettledSweeps are the
	// fields that legitimately differ between modes (they measure how
	// many instants the engine visited and how flow batches and netd
	// sweeps were advanced — precisely what next-event advancement and
	// closed-form settlement reduce); instants must be *fewer* under
	// next-event, and everything else identical.
	for i := range a.Results {
		if b.Results[i].EngineSteps < a.Results[i].EngineSteps {
			t.Fatalf("device %d: next-event executed more instants (%d) than fixed-tick (%d)",
				i, a.Results[i].EngineSteps, b.Results[i].EngineSteps)
		}
		a.Results[i].EngineSteps = 0
		b.Results[i].EngineSteps = 0
		a.Results[i].FlowWalks = 0
		b.Results[i].FlowWalks = 0
		a.Results[i].SettledBatches = 0
		b.Results[i].SettledBatches = 0
		a.Results[i].SettledSweeps = 0
		b.Results[i].SettledSweeps = 0
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatalf("engine mode changed fleet results:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	// The canonical JSON — the engine-invariant projection — must be
	// byte-identical without any scrubbing.
	aj, err := a.CanonicalJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.CanonicalJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("canonical JSON diverges between engine modes")
	}
}

// TestFleetRecycleEquivalence: recycling a worker's kernel/radio/netd
// machinery across devices must be invisible — the full JSON report
// (engine diagnostics included) must be byte-identical to building
// every device from scratch. A single worker maximizes reuse (31 of 32
// devices run on recycled machinery).
func TestFleetRecycleEquivalence(t *testing.T) {
	cfg := testCfg(1)
	recycled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoRecycle = true
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := recycled.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := fresh.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, fj) {
		t.Fatalf("device recycling changed the report:\n%s\nvs\n%s",
			recycled.Format(), fresh.Format())
	}
}

// TestFleetRecycleEquivalenceMixed runs the heterogeneous mix — every
// workload type, Smdd construction, battery deaths — through recycled
// and fresh machinery. Mixed scenarios are the hard case: consecutive
// devices on one worker rebuild completely different object populations
// into the same recycled memory.
func TestFleetRecycleEquivalenceMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Devices:     10,
		Seed:        21,
		Duration:    4 * units.Hour,
		Workers:     2,
		Scenario:    DayInTheLife(),
		KeepResults: true,
	}
	recycled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoRecycle = true
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := recycled.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := fresh.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, fj) {
		t.Fatal("device recycling changed the mixed-scenario report")
	}
}

// TestFleetStreamingDropsResults: without KeepResults the run reduces
// results as they stream and the report must not retain the per-device
// array — the property that keeps 100k-device fleets in O(workers)
// memory.
func TestFleetStreamingDropsResults(t *testing.T) {
	cfg := testCfg(4)
	cfg.KeepResults = false
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("streaming run retained %d results, want 0", len(rep.Results))
	}
	kept, err := Run(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// The streamed aggregate must equal the retained-results aggregate.
	rep.Results = kept.Results
	if !reflect.DeepEqual(rep, kept) {
		t.Fatalf("streaming changed the aggregate:\n%s\nvs\n%s", rep.Format(), kept.Format())
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10_000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("fleet seed does not influence device seeds")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Devices: 0, Scenario: IdleScenario{}, Duration: units.Second}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := Run(Config{Devices: 1, Duration: units.Second}); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := Run(Config{Devices: 1, Scenario: IdleScenario{}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(Config{Devices: 1, Scenario: IdleScenario{}, Duration: units.Second,
		LifeResolution: -units.Second}); err == nil {
		t.Error("negative life resolution accepted")
	}
}

func TestFleetDeathAtTimeZero(t *testing.T) {
	// A battery too small to cover even one baseline batch dies at the
	// very first watch firing (t=0); the Died flag must still count it.
	rep, err := Run(Config{
		Devices:         2,
		Seed:            1,
		Duration:        units.Second,
		Workers:         1,
		Scenario:        IdleScenario{},
		BatteryCapacity: units.Microjoule,
		KeepResults:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dead != 2 {
		t.Fatalf("Dead = %d, want 2\n%s", rep.Dead, rep.Format())
	}
	for _, r := range rep.Results {
		if !r.Died || r.DiedAt != 0 {
			t.Fatalf("device %d: Died=%v DiedAt=%v, want death at t=0", r.Index, r.Died, r.DiedAt)
		}
	}
}

func TestLifeSketchNearestRank(t *testing.T) {
	// The aggregator's life percentiles come from the mergeable
	// quantile sketch: nearest-rank semantics over log-linear buckets,
	// reported as the containing bucket's lower bound.
	var h sketch.Hist
	for i := 1; i <= 10; i++ {
		h.Add(int64(i) * int64(units.Second))
	}
	p50 := units.Time(h.Quantile(50))
	p90 := units.Time(h.Quantile(90))
	if p50 > 5*units.Second || 5*units.Second-p50 > 5*units.Second>>sketch.SubBits {
		t.Errorf("p50 = %v, want 5 s within one sub-bucket", p50)
	}
	if p90 > 9*units.Second || 9*units.Second-p90 > 9*units.Second>>sketch.SubBits {
		t.Errorf("p90 = %v, want 9 s within one sub-bucket", p90)
	}
	if p90 <= p50 {
		t.Errorf("p90 %v not above p50 %v", p90, p50)
	}
}

// TestAggregateSingleDevice: the degenerate fleet must produce
// self-consistent aggregates (min = max = mean, one bucket covering the
// device).
func TestAggregateSingleDevice(t *testing.T) {
	rep, err := Run(Config{
		Devices: 1, Seed: 2, Duration: 30 * units.Second, Workers: 1, Scenario: IdleScenario{},
		KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinConsumed != rep.MaxConsumed || rep.MeanConsumed != rep.MinConsumed {
		t.Fatalf("single-device aggregates disagree: min %v mean %v max %v",
			rep.MinConsumed, rep.MeanConsumed, rep.MaxConsumed)
	}
	if rep.TotalConsumed != rep.Results[0].Consumed {
		t.Fatalf("total %v != device consumed %v", rep.TotalConsumed, rep.Results[0].Consumed)
	}
	if len(rep.Buckets) != 1 || rep.Buckets[0].Name != "idle" || rep.Buckets[0].Devices != 1 {
		t.Fatalf("bad buckets for single device: %+v", rep.Buckets)
	}
	if rep.Dead != 0 || rep.LifeP50 != 0 || rep.LifeP90 != 0 {
		t.Fatalf("phantom deaths: dead %d p50 %v p90 %v", rep.Dead, rep.LifeP50, rep.LifeP90)
	}
}

// TestAggregateAllDead: when every device dies the percentiles must
// come from the full population and the buckets must agree.
func TestAggregateAllDead(t *testing.T) {
	rep, err := Run(Config{
		Devices:         2,
		Seed:            4,
		Duration:        5 * units.Minute,
		Workers:         2,
		Scenario:        IdleScenario{},
		BatteryCapacity: 30 * units.Joule, // ≈43 s at 699 mW
		KeepResults:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dead != 2 {
		t.Fatalf("Dead = %d, want 2", rep.Dead)
	}
	// Nearest-rank over two deaths: p50 tracks the earlier, p90 the
	// later — as sketch bucket lower bounds, within one sub-bucket.
	a, b := rep.Results[0].DiedAt, rep.Results[1].DiedAt
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	within := func(got, want units.Time) bool {
		return got <= want && want-got <= want>>sketch.SubBits+1
	}
	if !within(rep.LifeP50, lo) || !within(rep.LifeP90, hi) {
		t.Fatalf("percentiles p50 %v p90 %v, want within a sub-bucket of %v and %v", rep.LifeP50, rep.LifeP90, lo, hi)
	}
	if len(rep.Buckets) != 1 || rep.Buckets[0].Dead != 2 ||
		rep.Buckets[0].LifeP50 != rep.LifeP50 || rep.Buckets[0].LifeP90 != rep.LifeP90 {
		t.Fatalf("bucket deaths disagree with fleet: %+v", rep.Buckets[0])
	}
}
