package fleet

import (
	"repro/internal/units"
)

// This file assembles the day-in-the-life population: three archetypal
// device days composed from the phase primitives in compose.go, mixed
// across the fleet by weight. The timeline's t = 0 is the morning
// pick-up, so the busiest phases land early — with the Dream's 15 kJ
// battery and 699 mW idle floor a device lives ≈ 6 h (§4.2 makes a
// day-long G1 impossible; the battery-life sweep mode exists to explore
// bigger batteries), and front-loading keeps the buckets meaningfully
// different before the first deaths.

// IdleDay is the control-group day: a phone that is picked up twice and
// otherwise sits in a pocket. No taps, no threads — the purest test of
// the quiescent fast path at population scale.
func IdleDay() Compose {
	return Compose{
		Label: "idle-day",
		Phases: []Phase{
			{Workload: Screen{}, Start: 0, Duration: 5 * units.Minute, Jitter: 10 * units.Minute},
			{Workload: Screen{}, Start: 4 * units.Hour, Duration: 10 * units.Minute, Jitter: 2 * units.Hour},
			{Workload: Screen{}, Start: 14 * units.Hour, Duration: 10 * units.Minute, Jitter: 2 * units.Hour},
		},
	}
}

// CommuterDay is the background-network-heavy day: the §6.4 poller pair
// runs during two commute windows (at a day-scale 5 min period), with a
// lunchtime browsing burst and a few screen sessions.
func CommuterDay() Compose {
	pollers := Pollers{Interval: 5 * units.Minute}
	return Compose{
		Label: "commuter-day",
		Phases: []Phase{
			{Workload: Screen{}, Start: 0, Duration: 10 * units.Minute, Jitter: 15 * units.Minute},
			{Workload: pollers, Start: 30 * units.Minute, Duration: 90 * units.Minute, Jitter: 30 * units.Minute},
			{Workload: Browse{Pages: 12}, Start: 5 * units.Hour, Duration: 30 * units.Minute, Jitter: units.Hour},
			{Workload: Screen{}, Start: 5 * units.Hour, Duration: 15 * units.Minute, Jitter: units.Hour},
			{Workload: pollers, Start: 10 * units.Hour, Duration: 90 * units.Minute, Jitter: 30 * units.Minute},
			{Workload: Screen{}, Start: 13 * units.Hour, Duration: 20 * units.Minute, Jitter: 2 * units.Hour},
		},
	}
}

// ChattyDay is the ARM9-path day: voice calls and SMS bursts over the
// baseband, an evening browse, screen time around each interaction.
func ChattyDay() Compose {
	return Compose{
		Label: "chatty-day",
		Phases: []Phase{
			{Workload: Screen{}, Start: 0, Duration: 5 * units.Minute, Jitter: 10 * units.Minute},
			{Workload: Call{CallTime: 2 * units.Minute}, Start: 90 * units.Minute, Duration: 5 * units.Minute, Jitter: units.Hour},
			{Workload: SMSBurst{Count: 4, Interval: 45 * units.Second}, Start: 3 * units.Hour, Duration: 10 * units.Minute, Jitter: units.Hour},
			{Workload: Browse{Pages: 8}, Start: 4*units.Hour + 30*units.Minute, Duration: 20 * units.Minute, Jitter: units.Hour},
			{Workload: Screen{}, Start: 5 * units.Hour, Duration: 10 * units.Minute, Jitter: units.Hour},
			{Workload: Call{CallTime: 3 * units.Minute}, Start: 11 * units.Hour, Duration: 10 * units.Minute, Jitter: 2 * units.Hour},
			{Workload: SMSBurst{Count: 6, Interval: 30 * units.Second}, Start: 13 * units.Hour, Duration: 10 * units.Minute, Jitter: 2 * units.Hour},
		},
	}
}

// DayInTheLife is the heterogeneous 24 h fleet mix: half the population
// barely touches the phone, three in ten are commuters living off
// background sync, two in ten live on the voice/SMS path. Assignment
// draws from each device's construction stream, so reports are
// byte-identical across worker counts.
func DayInTheLife() Mix {
	return Mix{
		Label: "dayinthelife",
		Entries: []MixEntry{
			{Weight: 5, Scenario: IdleDay()},
			{Weight: 3, Scenario: CommuterDay()},
			{Weight: 2, Scenario: ChattyDay()},
		},
	}
}
