// Package fleet simulates populations of independent Cinder devices
// concurrently: N complete systems (kernel, radio, netd, applications),
// each on its own deterministic engine, sharded across a bounded worker
// pool and reduced to aggregate battery-life / consumed-energy /
// utilization statistics.
//
// Determinism is preserved at fleet scale: every device's RNG seed is
// derived from the fleet seed and the device index by a splitmix64 hash,
// devices never share mutable state, and aggregation walks results in
// device order after all workers join. The same (seed, devices,
// scenario, duration) always produces identical reports regardless of
// worker count or scheduling, which the package tests assert under the
// race detector.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/units"
)

// defaultWorkers bounds the pool at the machine's parallelism.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DefaultLifeResolution is how often a device checks its battery for
// exhaustion (and stops simulating once dead).
const DefaultLifeResolution = units.Second

// Device is one member of the fleet: a fully assembled simulated phone.
// Scenarios install workloads onto it; collectors read it back.
type Device struct {
	Index int
	// Seed is the device's derived RNG seed.
	Seed int64
	// Rand is a deterministic stream for scenario parameter jitter
	// (poll phases, payload spreads), separate from the engine's RNG so
	// workload construction cannot perturb run-time randomness.
	Rand   *splitmix
	Kernel *kernel.Kernel
	Radio  *radio.Radio
	Netd   *netd.Netd
	// Probes are scenario-installed callbacks run after the simulation
	// to add workload counters into the DeviceResult (PollerScenario
	// accumulates completed polls into Polls this way).
	Probes []func(*DeviceResult)
}

// DeviceResult is one device's outcome.
type DeviceResult struct {
	Index int
	Seed  int64
	// Consumed is total energy drawn over the run.
	Consumed units.Energy
	// BatteryLeft is the battery level at the end.
	BatteryLeft units.Energy
	// Died reports battery exhaustion; DiedAt is the instant it was
	// detected (which can legitimately be 0 for a battery too small to
	// cover a single baseline batch).
	Died   bool
	DiedAt units.Time
	// Utilization is the CPU busy percentage.
	Utilization float64
	// RadioActivations counts radio power-ups.
	RadioActivations int64
	// Polls counts completed application-level polls (scenario-defined).
	Polls int64
	// PowerUps counts netd-funded activations.
	PowerUps int64
}

// Scenario builds a workload onto a device. Implementations must be
// safe for concurrent use: Build runs on worker goroutines, one device
// at a time per worker, and must keep all per-device state on the
// Device.
type Scenario interface {
	Name() string
	Build(d *Device) error
}

// Config parameterizes a fleet run.
type Config struct {
	// Devices is the fleet size.
	Devices int
	// Seed is the fleet master seed; per-device seeds derive from it.
	Seed int64
	// Duration is the simulated time horizon per device.
	Duration units.Time
	// Workers bounds concurrency; 0 means one per CPU.
	Workers int
	// Scenario is the workload; required.
	Scenario Scenario
	// BatteryCapacity overrides the profile battery on every device.
	BatteryCapacity units.Energy
	// LifeResolution overrides DefaultLifeResolution.
	LifeResolution units.Time
	// EngineMode selects the time-advancement strategy (default
	// next-event; the fixed-tick compat mode exists for A/B timing).
	EngineMode sim.Mode
}

// Report is the deterministic aggregate of a fleet run.
type Report struct {
	Scenario string
	Devices  int
	Seed     int64
	Duration units.Time
	Workers  int

	TotalConsumed units.Energy
	MeanConsumed  units.Energy
	MinConsumed   units.Energy
	MaxConsumed   units.Energy

	MeanUtilization float64

	TotalPolls       int64
	TotalActivations int64
	TotalPowerUps    int64

	// Dead counts devices whose battery ran out; LifeP50/LifeP90 are
	// percentiles of time-to-exhaustion across dead devices (0 when
	// none died).
	Dead    int
	LifeP50 units.Time
	LifeP90 units.Time

	Results []DeviceResult
}

// Format renders the report as a stable text block (the cinder-fleet
// CLI's output). It deliberately omits the resolved worker count —
// everything printed here is byte-identical for a fixed (seed, devices,
// scenario, duration) regardless of parallelism, which the package
// tests assert.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices × %v, scenario %q, seed %d\n",
		r.Devices, r.Duration, r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  consumed: total %v, mean %v, min %v, max %v\n",
		r.TotalConsumed, r.MeanConsumed, r.MinConsumed, r.MaxConsumed)
	fmt.Fprintf(&b, "  cpu utilization: mean %.3f%%\n", r.MeanUtilization)
	fmt.Fprintf(&b, "  polls: %d, radio activations: %d, netd power-ups: %d\n",
		r.TotalPolls, r.TotalActivations, r.TotalPowerUps)
	if r.Dead > 0 {
		fmt.Fprintf(&b, "  battery deaths: %d/%d, life p50 %v, p90 %v\n",
			r.Dead, r.Devices, r.LifeP50, r.LifeP90)
	} else {
		fmt.Fprintf(&b, "  battery deaths: 0/%d\n", r.Devices)
	}
	return b.String()
}

// Run simulates the fleet and returns the aggregate report.
func Run(cfg Config) (Report, error) {
	if cfg.Devices <= 0 {
		return Report{}, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Scenario == nil {
		return Report{}, fmt.Errorf("fleet: nil scenario")
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("fleet: non-positive duration %v", cfg.Duration)
	}
	if cfg.LifeResolution == 0 {
		cfg.LifeResolution = DefaultLifeResolution
	}
	if cfg.LifeResolution < 0 {
		return Report{}, fmt.Errorf("fleet: negative life resolution %v", cfg.LifeResolution)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > cfg.Devices {
		workers = cfg.Devices
	}

	results := make([]DeviceResult, cfg.Devices)
	errs := make([]error, cfg.Devices)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Devices {
					return
				}
				results[i], errs[i] = runDevice(cfg, i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Report{}, fmt.Errorf("fleet: device %d: %w", i, err)
		}
	}
	return aggregate(cfg, workers, results), nil
}

// runDevice simulates one fleet member to its horizon (or battery
// death).
func runDevice(cfg Config, idx int) (DeviceResult, error) {
	seed := DeriveSeed(cfg.Seed, idx)
	mode := cfg.EngineMode
	if mode == sim.ModeAuto {
		mode = sim.ModeNextEvent
	}
	k := kernel.New(kernel.Config{
		Seed:            seed,
		BatteryCapacity: cfg.BatteryCapacity,
		EngineMode:      mode,
	})
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
	k.AddDevice(r)
	n, err := netd.New(k, r, netd.Config{Cooperative: true})
	if err != nil {
		return DeviceResult{}, err
	}
	d := &Device{
		Index:  idx,
		Seed:   seed,
		Rand:   newSplitmix(seed),
		Kernel: k,
		Radio:  r,
		Netd:   n,
	}
	if err := cfg.Scenario.Build(d); err != nil {
		return DeviceResult{}, err
	}

	res := DeviceResult{Index: idx, Seed: seed}
	k.Eng.Every("fleet:battery-watch", cfg.LifeResolution, func(e *sim.Engine) {
		if !res.Died && k.BatteryExhausted() {
			res.Died = true
			res.DiedAt = e.Now()
			e.Stop() // dead device: nothing left to measure
		}
	})
	k.Run(cfg.Duration)

	res.Consumed = k.Consumed()
	if lvl, err := k.Battery().Level(k.KernelPriv()); err == nil {
		res.BatteryLeft = lvl
	}
	res.Utilization = k.Sched.Utilization()
	res.RadioActivations = r.Stats().Activations
	res.PowerUps = n.Stats().PowerUps
	for _, p := range d.Probes {
		p(&res)
	}
	return res, nil
}

// aggregate reduces per-device results in index order, so every float
// accumulation is order-stable and the report is identical across
// worker counts.
func aggregate(cfg Config, workers int, results []DeviceResult) Report {
	rep := Report{
		Scenario: cfg.Scenario.Name(),
		Devices:  cfg.Devices,
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
		Workers:  workers,
		Results:  results,
	}
	var lives []units.Time
	for i, r := range results {
		rep.TotalConsumed += r.Consumed
		if i == 0 || r.Consumed < rep.MinConsumed {
			rep.MinConsumed = r.Consumed
		}
		if r.Consumed > rep.MaxConsumed {
			rep.MaxConsumed = r.Consumed
		}
		rep.MeanUtilization += r.Utilization
		rep.TotalPolls += r.Polls
		rep.TotalActivations += r.RadioActivations
		rep.TotalPowerUps += r.PowerUps
		if r.Died {
			rep.Dead++
			lives = append(lives, r.DiedAt)
		}
	}
	rep.MeanConsumed = rep.TotalConsumed / units.Energy(cfg.Devices)
	rep.MeanUtilization /= float64(cfg.Devices)
	if len(lives) > 0 {
		sort.Slice(lives, func(i, j int) bool { return lives[i] < lives[j] })
		rep.LifeP50 = percentile(lives, 50)
		rep.LifeP90 = percentile(lives, 90)
	}
	return rep
}

// percentile returns the nearest-rank p-th percentile of a sorted,
// non-empty slice: the value at rank ⌈p·n/100⌉.
func percentile(sorted []units.Time, p int) units.Time {
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// DeriveSeed maps (fleet seed, device index) to a device RNG seed via
// splitmix64, the standard seed-sequencing finalizer: consecutive
// indices land far apart in the stream.
func DeriveSeed(fleetSeed int64, idx int) int64 {
	s := splitmix{state: uint64(fleetSeed) + uint64(idx)*0x9E3779B97F4A7C15}
	return int64(s.Next())
}

// splitmix is a tiny deterministic stream for scenario construction.
type splitmix struct{ state uint64 }

func newSplitmix(seed int64) *splitmix { return &splitmix{state: uint64(seed)} }

// Next returns the next 64-bit value in the stream.
func (s *splitmix) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	x := s.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Intn returns a deterministic value in [0, n).
func (s *splitmix) Intn(n int64) int64 {
	if n <= 0 {
		panic("fleet: Intn on non-positive bound")
	}
	return int64(s.Next() % uint64(n))
}
