// Package fleet simulates populations of independent Cinder devices
// concurrently: N complete systems (kernel, radio, netd, applications),
// each on its own deterministic engine, sharded across a bounded worker
// pool and reduced to aggregate battery-life / consumed-energy /
// utilization statistics.
//
// Determinism is preserved at fleet scale: every device's RNG seed is
// derived from the fleet seed and the device index by a splitmix64 hash,
// devices never share mutable state, and aggregation walks results in
// device order after all workers join. The same (seed, devices,
// scenario, duration) always produces identical reports regardless of
// worker count or scheduling, which the package tests assert under the
// race detector.
package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/msm"
	"repro/internal/netd"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/units"
)

// defaultWorkers bounds the pool at the machine's parallelism.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DefaultLifeResolution is how often a device checks its battery for
// exhaustion (and stops simulating once dead).
const DefaultLifeResolution = units.Second

// Device is one member of the fleet: a fully assembled simulated phone.
// Scenarios install workloads onto it; collectors read it back.
type Device struct {
	Index int
	// Seed is the device's derived RNG seed.
	Seed int64
	// Rand is a deterministic stream for scenario parameter jitter
	// (poll phases, payload spreads), separate from the engine's RNG so
	// workload construction cannot perturb run-time randomness.
	Rand   *splitmix
	Kernel *kernel.Kernel
	Radio  *radio.Radio
	Netd   *netd.Netd
	// Smdd is the device's ARM9 baseband daemon. It is nil until a
	// scenario that needs voice/SMS/GPS calls EnsureSmdd, so pure
	// data-path scenarios pay nothing for the modem model.
	Smdd *msm.Smdd
	// Scenario is the device's workload bucket name for per-scenario
	// report breakdowns. runDevice seeds it with the config scenario's
	// name; Mix overrides it with the chosen entry's name.
	Scenario string
	// Probes are scenario-installed callbacks run after the simulation
	// to add workload counters into the DeviceResult (PollerScenario
	// accumulates completed polls into Polls this way).
	Probes []func(*DeviceResult)
}

// EnsureSmdd boots the device's baseband daemon (shared-memory channel,
// ARM9 model, smd.* gates) on first use and returns it. Workloads that
// place calls or send SMS call this at install time so the gates exist
// before their phase fires.
func (d *Device) EnsureSmdd() (*msm.Smdd, error) {
	if d.Smdd != nil {
		return d.Smdd, nil
	}
	s, err := msm.NewSmdd(d.Kernel, msm.DefaultSmddConfig(), msm.DefaultARM9Config())
	if err != nil {
		return nil, err
	}
	d.Smdd = s
	return s, nil
}

// DeviceResult is one device's outcome.
type DeviceResult struct {
	Index int
	Seed  int64
	// Scenario is the workload bucket the device was assigned (the
	// scenario name, or the Mix entry's name for mixed fleets).
	Scenario string
	// Consumed is total energy drawn over the run.
	Consumed units.Energy
	// BatteryLeft is the battery level at the end.
	BatteryLeft units.Energy
	// Died reports battery exhaustion; DiedAt is the instant it was
	// detected (which can legitimately be 0 for a battery too small to
	// cover a single baseline batch).
	Died   bool
	DiedAt units.Time
	// Utilization is the CPU busy percentage.
	Utilization float64
	// RadioActivations counts radio power-ups.
	RadioActivations int64
	// Polls counts completed application-level polls (scenario-defined).
	Polls int64
	// Pages counts completed browsing page loads (Browse workload).
	Pages int64
	// PowerUps counts netd-funded activations.
	PowerUps int64
	// SMSSent and CallsPlaced count baseband activity (devices with an
	// Smdd only).
	SMSSent     int64
	CallsPlaced int64
	// EngineSteps is the number of simulation instants the device's
	// engine actually executed — the quiescence fast path shows up as
	// EngineSteps ≪ simulated ticks.
	EngineSteps uint64
	// FlowWalks counts per-batch tap walks the device's graph performed;
	// SettledBatches counts batches advanced by closed-form settlement
	// instead. Their ratio is the busy-path fast-path engagement measure
	// (engine-level diagnostics, excluded from CanonicalJSON).
	FlowWalks      int64
	SettledBatches int64
}

// Scenario builds a workload onto a device. Implementations must be
// safe for concurrent use: Build runs on worker goroutines, one device
// at a time per worker, and must keep all per-device state on the
// Device.
type Scenario interface {
	Name() string
	Build(d *Device) error
}

// Config parameterizes a fleet run.
type Config struct {
	// Devices is the fleet size.
	Devices int
	// Seed is the fleet master seed; per-device seeds derive from it.
	Seed int64
	// Duration is the simulated time horizon per device.
	Duration units.Time
	// Workers bounds concurrency; 0 means one per CPU.
	Workers int
	// Scenario is the workload; required.
	Scenario Scenario
	// BatteryCapacity overrides the profile battery on every device.
	BatteryCapacity units.Energy
	// LifeResolution overrides DefaultLifeResolution.
	LifeResolution units.Time
	// EngineMode selects the time-advancement strategy (default
	// next-event; the fixed-tick compat mode exists for A/B timing).
	EngineMode sim.Mode
	// Settle selects the busy-path strategy (default closed-form
	// settlement; the per-batch compat mode exists for A/B timing and
	// differential tests).
	Settle kernel.SettleMode
	// KeepResults retains the per-device result array on the Report.
	// Off (the default) the run streams each DeviceResult into the
	// aggregate and drops it, so fleet memory stays O(workers + buckets)
	// regardless of size — at 100k devices the array is the report's
	// only super-constant consumer. Turn it on for per-device output.
	KeepResults bool
	// NoRecycle constructs every device from scratch instead of
	// recycling each worker's kernel/radio/netd machinery. It exists for
	// A/B benchmarks and the recycling-equivalence tests; reports are
	// byte-identical either way.
	NoRecycle bool
}

// Report is the deterministic aggregate of a fleet run.
type Report struct {
	Scenario string
	Devices  int
	Seed     int64
	Duration units.Time
	Workers  int

	TotalConsumed units.Energy
	MeanConsumed  units.Energy
	MinConsumed   units.Energy
	MaxConsumed   units.Energy

	MeanUtilization float64

	TotalPolls       int64
	TotalActivations int64
	TotalPowerUps    int64

	// Dead counts devices whose battery ran out; LifeP50/LifeP90 are
	// percentiles of time-to-exhaustion across dead devices (0 when
	// none died).
	Dead    int
	LifeP50 units.Time
	LifeP90 units.Time

	// Engine-level diagnostics (excluded from CanonicalJSON): executed
	// instants, per-batch flow walks and closed-form-settled batches
	// summed over the fleet. CI diffs these across worker counts and
	// watches them for busy-path perf regressions.
	TotalEngineSteps    uint64
	TotalFlowWalks      int64
	TotalSettledBatches int64

	// Buckets break the fleet down per scenario bucket, sorted by
	// name. Single-scenario runs have exactly one bucket; Mix fleets
	// have one per entry that was assigned at least one device.
	Buckets []Bucket

	Results []DeviceResult
}

// Bucket is the aggregate over the devices assigned one scenario bucket
// of a (possibly mixed) fleet.
type Bucket struct {
	Name    string
	Devices int

	TotalConsumed units.Energy
	MeanConsumed  units.Energy

	MeanUtilization float64

	Polls       int64
	Pages       int64
	Activations int64
	PowerUps    int64
	SMSSent     int64
	Calls       int64

	// MeanSteps is the mean executed-instant count per device — the
	// per-bucket measure of how deeply the quiescence fast path was
	// engaged. MeanFlowWalks and MeanSettledBatches split the bucket's
	// tap batches into per-batch walks vs closed-form settlement.
	MeanSteps          uint64
	MeanFlowWalks      int64
	MeanSettledBatches int64

	Dead    int
	LifeP50 units.Time
	LifeP90 units.Time
}

// Format renders the report as a stable text block (the cinder-fleet
// CLI's output). It deliberately omits the resolved worker count —
// everything printed here is byte-identical for a fixed (seed, devices,
// scenario, duration) regardless of parallelism, which the package
// tests assert.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices × %v, scenario %q, seed %d\n",
		r.Devices, r.Duration, r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  consumed: total %v, mean %v, min %v, max %v\n",
		r.TotalConsumed, r.MeanConsumed, r.MinConsumed, r.MaxConsumed)
	fmt.Fprintf(&b, "  cpu utilization: mean %.3f%%\n", r.MeanUtilization)
	fmt.Fprintf(&b, "  polls: %d, radio activations: %d, netd power-ups: %d\n",
		r.TotalPolls, r.TotalActivations, r.TotalPowerUps)
	if r.Dead > 0 {
		fmt.Fprintf(&b, "  battery deaths: %d/%d, life p50 %v, p90 %v\n",
			r.Dead, r.Devices, r.LifeP50, r.LifeP90)
	} else {
		fmt.Fprintf(&b, "  battery deaths: 0/%d\n", r.Devices)
	}
	if len(r.Buckets) > 1 {
		b.WriteString("  mix buckets:\n")
		for _, bk := range r.Buckets {
			fmt.Fprintf(&b, "    %-14s %4d devices, mean %v, polls %d, pages %d, sms %d, calls %d, deaths %d",
				bk.Name, bk.Devices, bk.MeanConsumed, bk.Polls, bk.Pages, bk.SMSSent, bk.Calls, bk.Dead)
			if bk.Dead > 0 {
				fmt.Fprintf(&b, " (life p50 %v, p90 %v)", bk.LifeP50, bk.LifeP90)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// reportJSON is the stable wire form of a Report. It deliberately
// excludes the resolved worker count and anything wall-clock-derived:
// for a fixed (seed, devices, scenario, duration) the marshalled bytes
// are identical regardless of parallelism, which tests assert. Energies
// are microjoules, times milliseconds (the package's native units).
type reportJSON struct {
	Scenario   string `json:"scenario"`
	Devices    int    `json:"devices"`
	Seed       int64  `json:"seed"`
	DurationMS int64  `json:"duration_ms"`

	TotalConsumedUJ int64   `json:"total_consumed_uj"`
	MeanConsumedUJ  int64   `json:"mean_consumed_uj"`
	MinConsumedUJ   int64   `json:"min_consumed_uj"`
	MaxConsumedUJ   int64   `json:"max_consumed_uj"`
	MeanUtilization float64 `json:"mean_utilization_pct"`

	Polls       int64 `json:"polls"`
	Activations int64 `json:"radio_activations"`
	PowerUps    int64 `json:"netd_power_ups"`

	Dead      int   `json:"dead"`
	LifeP50MS int64 `json:"life_p50_ms"`
	LifeP90MS int64 `json:"life_p90_ms"`

	EngineSteps    uint64 `json:"engine_steps"`
	FlowWalks      int64  `json:"flow_walks"`
	SettledBatches int64  `json:"settled_batches"`

	Buckets []bucketJSON `json:"buckets"`
	Results []deviceJSON `json:"results,omitempty"`
}

type bucketJSON struct {
	Name            string  `json:"name"`
	Devices         int     `json:"devices"`
	TotalConsumedUJ int64   `json:"total_consumed_uj"`
	MeanConsumedUJ  int64   `json:"mean_consumed_uj"`
	MeanUtilization float64 `json:"mean_utilization_pct"`
	Polls           int64   `json:"polls"`
	Pages           int64   `json:"pages"`
	Activations     int64   `json:"radio_activations"`
	PowerUps        int64   `json:"netd_power_ups"`
	SMSSent         int64   `json:"sms_sent"`
	Calls           int64   `json:"calls_placed"`
	MeanSteps       uint64  `json:"mean_engine_steps"`
	MeanFlowWalks   int64   `json:"mean_flow_walks"`
	MeanSettled     int64   `json:"mean_settled_batches"`
	Dead            int     `json:"dead"`
	LifeP50MS       int64   `json:"life_p50_ms"`
	LifeP90MS       int64   `json:"life_p90_ms"`
}

type deviceJSON struct {
	Index          int     `json:"index"`
	Seed           int64   `json:"seed"`
	Scenario       string  `json:"scenario"`
	ConsumedUJ     int64   `json:"consumed_uj"`
	BatteryLeftUJ  int64   `json:"battery_left_uj"`
	Died           bool    `json:"died"`
	DiedAtMS       int64   `json:"died_at_ms,omitempty"`
	Utilization    float64 `json:"utilization_pct"`
	Activations    int64   `json:"radio_activations"`
	Polls          int64   `json:"polls"`
	Pages          int64   `json:"pages"`
	PowerUps       int64   `json:"netd_power_ups"`
	SMSSent        int64   `json:"sms_sent"`
	Calls          int64   `json:"calls_placed"`
	EngineSteps    uint64  `json:"engine_steps"`
	FlowWalks      int64   `json:"flow_walks"`
	SettledBatches int64   `json:"settled_batches"`
}

// JSON renders the report as deterministic, worker-count-independent
// indented JSON. perDevice includes the per-device result array.
func (r Report) JSON(perDevice bool) ([]byte, error) {
	return r.marshalJSON(perDevice, false)
}

// CanonicalJSON renders the report with every engine-level diagnostic
// (executed instants, flow walks, settled batches) zeroed: the bytes
// that must be identical across engine and settlement modes, which the
// differential tests assert. Everything energy- or workload-shaped —
// consumption, lifetimes, utilization, polls, pages, SMS, calls — stays.
func (r Report) CanonicalJSON(perDevice bool) ([]byte, error) {
	return r.marshalJSON(perDevice, true)
}

func (r Report) marshalJSON(perDevice, canonical bool) ([]byte, error) {
	out := reportJSON{
		Scenario:        r.Scenario,
		Devices:         r.Devices,
		Seed:            r.Seed,
		DurationMS:      int64(r.Duration),
		TotalConsumedUJ: int64(r.TotalConsumed),
		MeanConsumedUJ:  int64(r.MeanConsumed),
		MinConsumedUJ:   int64(r.MinConsumed),
		MaxConsumedUJ:   int64(r.MaxConsumed),
		MeanUtilization: r.MeanUtilization,
		Polls:           r.TotalPolls,
		Activations:     r.TotalActivations,
		PowerUps:        r.TotalPowerUps,
		Dead:            r.Dead,
		LifeP50MS:       int64(r.LifeP50),
		LifeP90MS:       int64(r.LifeP90),
	}
	if !canonical {
		out.EngineSteps = r.TotalEngineSteps
		out.FlowWalks = r.TotalFlowWalks
		out.SettledBatches = r.TotalSettledBatches
	}
	for _, b := range r.Buckets {
		bj := bucketJSON{
			Name:            b.Name,
			Devices:         b.Devices,
			TotalConsumedUJ: int64(b.TotalConsumed),
			MeanConsumedUJ:  int64(b.MeanConsumed),
			MeanUtilization: b.MeanUtilization,
			Polls:           b.Polls,
			Pages:           b.Pages,
			Activations:     b.Activations,
			PowerUps:        b.PowerUps,
			SMSSent:         b.SMSSent,
			Calls:           b.Calls,
			Dead:            b.Dead,
			LifeP50MS:       int64(b.LifeP50),
			LifeP90MS:       int64(b.LifeP90),
		}
		if !canonical {
			bj.MeanSteps = b.MeanSteps
			bj.MeanFlowWalks = b.MeanFlowWalks
			bj.MeanSettled = b.MeanSettledBatches
		}
		out.Buckets = append(out.Buckets, bj)
	}
	if perDevice {
		for _, d := range r.Results {
			dj := deviceJSON{
				Index:         d.Index,
				Seed:          d.Seed,
				Scenario:      d.Scenario,
				ConsumedUJ:    int64(d.Consumed),
				BatteryLeftUJ: int64(d.BatteryLeft),
				Died:          d.Died,
				DiedAtMS:      int64(d.DiedAt),
				Utilization:   d.Utilization,
				Activations:   d.RadioActivations,
				Polls:         d.Polls,
				Pages:         d.Pages,
				PowerUps:      d.PowerUps,
				SMSSent:       d.SMSSent,
				Calls:         d.CallsPlaced,
			}
			if !canonical {
				dj.EngineSteps = d.EngineSteps
				dj.FlowWalks = d.FlowWalks
				dj.SettledBatches = d.SettledBatches
			}
			out.Results = append(out.Results, dj)
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// Run simulates the fleet and returns the aggregate report.
//
// Devices are dispatched to the worker pool through a bounded admission
// window and their results are reduced strictly in index order as they
// stream back, so (1) every float accumulation happens in the same
// order regardless of worker count or scheduling, and (2) the run never
// holds more than O(workers) in-flight results plus O(buckets)
// aggregate state — per-device results are dropped after reduction
// unless cfg.KeepResults asks for them. (Death times of dead devices
// are the one O(dead) exception: exact percentiles need them all.)
func Run(cfg Config) (Report, error) {
	if cfg.Devices <= 0 {
		return Report{}, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Scenario == nil {
		return Report{}, fmt.Errorf("fleet: nil scenario")
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("fleet: non-positive duration %v", cfg.Duration)
	}
	if cfg.LifeResolution == 0 {
		cfg.LifeResolution = DefaultLifeResolution
	}
	if cfg.LifeResolution < 0 {
		return Report{}, fmt.Errorf("fleet: negative life resolution %v", cfg.LifeResolution)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > cfg.Devices {
		workers = cfg.Devices
	}

	// The admission window bounds how far any device index may run
	// ahead of the reduction frontier, which in turn bounds the reorder
	// ring: index i is dispatched only once the frontier has passed
	// i−window, so at most `window` results are ever buffered and the
	// result channel can never fill with the frontier index still
	// outstanding (the no-deadlock argument).
	window := 4 * workers
	if window > cfg.Devices {
		window = cfg.Devices
	}
	type slot struct {
		res  DeviceResult
		err  error
		done bool
	}
	ring := make([]slot, window)
	indexCh := make(chan int, window)
	resultCh := make(chan int, window)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rg rig
			for i := range indexCh {
				// The ring slot for index i is owned by this worker
				// until the reducer receives i; the channel send is the
				// happens-before edge.
				s := &ring[i%window]
				s.res, s.err = runDevice(cfg, i, &rg)
				resultCh <- i
			}
		}()
	}

	dispatched := 0
	for ; dispatched < window; dispatched++ {
		indexCh <- dispatched
	}
	if dispatched == cfg.Devices {
		close(indexCh)
	}

	agg := newAggregator(cfg, workers)
	var firstErr error
	for frontier := 0; frontier < cfg.Devices; {
		i := <-resultCh
		ring[i%window].done = true
		for frontier < cfg.Devices && ring[frontier%window].done {
			s := &ring[frontier%window]
			if s.err != nil && firstErr == nil {
				firstErr = fmt.Errorf("fleet: device %d: %w", frontier, s.err)
			} else if firstErr == nil {
				agg.add(s.res)
			}
			*s = slot{}
			frontier++
			if dispatched < cfg.Devices {
				indexCh <- dispatched
				dispatched++
				if dispatched == cfg.Devices {
					close(indexCh)
				}
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return Report{}, firstErr
	}
	return agg.finish(), nil
}

// rig is one worker's recyclable device machinery: the kernel (engine,
// object table, graph, scheduler), radio and netd are Reset in place
// for each device instead of constructed fresh, so a 100k-device run
// builds only O(workers) object graphs. The per-device Smdd is not
// recycled — it exists only on devices whose scenario asks for it.
type rig struct {
	k   *kernel.Kernel
	r   *radio.Radio
	n   *netd.Netd
	dev *Device
}

// runDevice simulates one fleet member to its horizon (or battery
// death), recycling the rig's machinery when it already exists. The
// recycled construction sequence is identical to the fresh one —
// kernel, then radio (and its funding reserve), then netd — so object
// IDs, seeds and every downstream result are byte-identical; the
// equivalence tests assert it.
func runDevice(cfg Config, idx int, rg *rig) (DeviceResult, error) {
	seed := DeriveSeed(cfg.Seed, idx)
	mode := cfg.EngineMode
	if mode == sim.ModeAuto {
		mode = sim.DefaultMode()
	}
	kcfg := kernel.Config{
		Seed:            seed,
		BatteryCapacity: cfg.BatteryCapacity,
		EngineMode:      mode,
		Settle:          cfg.Settle,
	}
	ncfg := netd.Config{Cooperative: true, QuiescentSweep: true}
	if cfg.NoRecycle {
		*rg = rig{}
	}
	if rg.k == nil {
		rg.k = kernel.New(kcfg)
		rg.r = radio.New(rg.k.Eng, rg.k.Graph, rg.k.Root, rg.k.KernelPriv(), radio.Config{Profile: rg.k.Profile})
		rg.k.AddDevice(rg.r)
		var err error
		rg.n, err = netd.New(rg.k, rg.r, ncfg)
		if err != nil {
			*rg = rig{} // never leave a half-built rig for the next device
			return DeviceResult{}, err
		}
		rg.dev = &Device{}
	} else {
		rg.k.Reset(kcfg)
		rg.r.Reset(rg.k.Eng, rg.k.Graph, rg.k.Root, rg.k.KernelPriv(), radio.Config{Profile: rg.k.Profile})
		rg.k.AddDevice(rg.r)
		if err := rg.n.Reset(rg.k, rg.r, ncfg); err != nil {
			*rg = rig{}
			return DeviceResult{}, err
		}
	}
	k, r, n := rg.k, rg.r, rg.n

	d := rg.dev
	clear(d.Probes)
	probes := d.Probes[:0]
	rand := d.Rand
	if rand == nil {
		rand = newSplitmix(seed)
	} else {
		rand.state = uint64(seed)
	}
	*d = Device{
		Index:    idx,
		Seed:     seed,
		Rand:     rand,
		Kernel:   k,
		Radio:    r,
		Netd:     n,
		Scenario: cfg.Scenario.Name(),
		Probes:   probes,
	}
	if err := cfg.Scenario.Build(d); err != nil {
		return DeviceResult{}, err
	}

	res := DeviceResult{Index: idx, Seed: seed}
	k.Eng.Every("fleet:battery-watch", cfg.LifeResolution, func(e *sim.Engine) {
		if !res.Died && k.BatteryExhausted() {
			res.Died = true
			res.DiedAt = e.Now()
			e.Stop() // dead device: nothing left to measure
		}
	})
	k.Run(cfg.Duration)

	res.Scenario = d.Scenario
	res.Consumed = k.Consumed()
	if lvl, err := k.Battery().Level(k.KernelPriv()); err == nil {
		res.BatteryLeft = lvl
	}
	res.Utilization = k.Sched.Utilization()
	res.RadioActivations = r.Stats().Activations
	res.PowerUps = n.Stats().PowerUps
	res.EngineSteps = k.Eng.Steps()
	res.FlowWalks = k.Graph.FlowWalks()
	res.SettledBatches = k.Graph.SettledBatches()
	if d.Smdd != nil {
		s := d.Smdd.Stats()
		res.SMSSent = s.SMSSent
		res.CallsPlaced = s.CallsPlaced
	}
	for _, p := range d.Probes {
		p(&res)
	}
	return res, nil
}

// aggregator reduces device results into the report incrementally, in
// strict index order. Its state is O(buckets) plus the death times
// needed for exact lifetime percentiles; the accumulation arithmetic is
// exactly the order the former two-pass reduction performed, so reports
// are bit-identical to pre-streaming ones and across worker counts.
type aggregator struct {
	rep         Report
	keep        bool
	seen        int
	lives       []units.Time
	byName      map[string]*Bucket
	names       []string
	bucketLives map[string][]units.Time
}

func newAggregator(cfg Config, workers int) *aggregator {
	return &aggregator{
		rep: Report{
			Scenario: cfg.Scenario.Name(),
			Devices:  cfg.Devices,
			Seed:     cfg.Seed,
			Duration: cfg.Duration,
			Workers:  workers,
		},
		keep:        cfg.KeepResults,
		byName:      make(map[string]*Bucket),
		bucketLives: make(map[string][]units.Time),
	}
}

// add folds one device's result into the aggregate. Results must arrive
// in index order.
func (a *aggregator) add(r DeviceResult) {
	rep := &a.rep
	rep.TotalConsumed += r.Consumed
	if a.seen == 0 || r.Consumed < rep.MinConsumed {
		rep.MinConsumed = r.Consumed
	}
	if r.Consumed > rep.MaxConsumed {
		rep.MaxConsumed = r.Consumed
	}
	rep.MeanUtilization += r.Utilization
	rep.TotalPolls += r.Polls
	rep.TotalActivations += r.RadioActivations
	rep.TotalPowerUps += r.PowerUps
	rep.TotalEngineSteps += r.EngineSteps
	rep.TotalFlowWalks += r.FlowWalks
	rep.TotalSettledBatches += r.SettledBatches
	if r.Died {
		rep.Dead++
		a.lives = append(a.lives, r.DiedAt)
	}
	a.seen++

	b := a.byName[r.Scenario]
	if b == nil {
		b = &Bucket{Name: r.Scenario}
		a.byName[r.Scenario] = b
		a.names = append(a.names, r.Scenario)
	}
	b.Devices++
	b.TotalConsumed += r.Consumed
	b.MeanUtilization += r.Utilization
	b.Polls += r.Polls
	b.Pages += r.Pages
	b.Activations += r.RadioActivations
	b.PowerUps += r.PowerUps
	b.SMSSent += r.SMSSent
	b.Calls += r.CallsPlaced
	// Accumulated as a total here, divided into a mean in finish —
	// the same pattern as MeanUtilization.
	b.MeanSteps += r.EngineSteps
	b.MeanFlowWalks += r.FlowWalks
	b.MeanSettledBatches += r.SettledBatches
	if r.Died {
		b.Dead++
		a.bucketLives[r.Scenario] = append(a.bucketLives[r.Scenario], r.DiedAt)
	}

	if a.keep {
		rep.Results = append(rep.Results, r)
	}
}

// finish computes the means and percentiles and assembles the sorted
// bucket list.
func (a *aggregator) finish() Report {
	rep := a.rep
	rep.MeanConsumed = rep.TotalConsumed / units.Energy(rep.Devices)
	rep.MeanUtilization /= float64(rep.Devices)
	if len(a.lives) > 0 {
		sort.Slice(a.lives, func(i, j int) bool { return a.lives[i] < a.lives[j] })
		rep.LifeP50 = percentile(a.lives, 50)
		rep.LifeP90 = percentile(a.lives, 90)
	}
	sort.Strings(a.names)
	rep.Buckets = make([]Bucket, 0, len(a.names))
	for _, n := range a.names {
		b := a.byName[n]
		b.MeanConsumed = b.TotalConsumed / units.Energy(b.Devices)
		b.MeanUtilization /= float64(b.Devices)
		b.MeanSteps /= uint64(b.Devices)
		b.MeanFlowWalks /= int64(b.Devices)
		b.MeanSettledBatches /= int64(b.Devices)
		if l := a.bucketLives[n]; len(l) > 0 {
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			b.LifeP50 = percentile(l, 50)
			b.LifeP90 = percentile(l, 90)
		}
		rep.Buckets = append(rep.Buckets, *b)
	}
	return rep
}

// percentile returns the nearest-rank p-th percentile of a sorted,
// non-empty slice: the value at rank ⌈p·n/100⌉.
func percentile(sorted []units.Time, p int) units.Time {
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// DeriveSeed maps (fleet seed, device index) to a device RNG seed via
// splitmix64, the standard seed-sequencing finalizer: consecutive
// indices land far apart in the stream.
func DeriveSeed(fleetSeed int64, idx int) int64 {
	s := splitmix{state: uint64(fleetSeed) + uint64(idx)*0x9E3779B97F4A7C15}
	return int64(s.Next())
}

// splitmix is a tiny deterministic stream for scenario construction.
type splitmix struct{ state uint64 }

func newSplitmix(seed int64) *splitmix { return &splitmix{state: uint64(seed)} }

// Next returns the next 64-bit value in the stream.
func (s *splitmix) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	x := s.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Intn returns a deterministic value in [0, n).
func (s *splitmix) Intn(n int64) int64 {
	if n <= 0 {
		panic("fleet: Intn on non-positive bound")
	}
	return int64(s.Next() % uint64(n))
}
