// Package fleet simulates populations of independent Cinder devices
// concurrently: N complete systems (kernel, radio, netd, applications),
// each on its own deterministic engine, sharded across a bounded worker
// pool and reduced to aggregate battery-life / consumed-energy /
// utilization statistics.
//
// Determinism is preserved at fleet scale: every device's RNG seed is
// derived from the fleet seed and the device index by a splitmix64 hash,
// devices never share mutable state, and results are reduced in strict
// device-index order through a bounded admission window. The same
// (seed, devices, scenario, duration) always produces identical reports
// regardless of worker count or scheduling, which the package tests
// assert under the race detector.
//
// Three mechanisms make week-scale million-device runs first-class
// workloads (checkpoint.go, shard.go):
//
//   - every aggregate is integer-mergeable (sums, counts, and a
//     log-linear quantile sketch instead of retained sample arrays), so
//     reports stay O(buckets) at any fleet size;
//   - a run can be partitioned with Config.ShardIndex/ShardCount into
//     independent processes whose partial reports merge into the exact
//     canonical JSON a single process produces;
//   - a run can checkpoint every device's full state into epoch files at
//     sim-day boundaries and resume after an interruption, byte-identical
//     to an uninterrupted run.
package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/msm"
	"repro/internal/netd"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/snap"
	"repro/internal/units"
)

// defaultWorkers bounds the pool at the machine's parallelism.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DefaultLifeResolution is how often a device checks its battery for
// exhaustion (and stops simulating once dead).
const DefaultLifeResolution = units.Second

// Device is one member of the fleet: a fully assembled simulated phone.
// Scenarios install workloads onto it; collectors read it back.
type Device struct {
	Index int
	// Seed is the device's derived RNG seed.
	Seed int64
	// Rand is a deterministic stream for scenario parameter jitter
	// (poll phases, payload spreads), separate from the engine's RNG so
	// workload construction cannot perturb run-time randomness.
	Rand   *splitmix
	Kernel *kernel.Kernel
	Radio  *radio.Radio
	Netd   *netd.Netd
	// Smdd is the device's ARM9 baseband daemon. It is nil until a
	// scenario that needs voice/SMS/GPS calls EnsureSmdd, so pure
	// data-path scenarios pay nothing for the modem model.
	Smdd *msm.Smdd
	// Scenario is the device's workload bucket name for per-scenario
	// report breakdowns. runDevice seeds it with the config scenario's
	// name; Mix overrides it with the chosen entry's name.
	Scenario string
	// ChargerSettle is the fleet-level charger settlement mode, copied
	// here so scenarios that attach a charger at Build time pass the
	// A/B knob through (kernel.ChargerConfig.Settle).
	ChargerSettle kernel.SettleMode
	// Probes are scenario-installed callbacks run after the simulation
	// to add workload counters into the DeviceResult (PollerScenario
	// accumulates completed polls into Polls this way).
	Probes []func(*DeviceResult)
	// Hooks are scenario-installed checkpoint participants: workload
	// counters that live in install-time closures (a browse phase's
	// loaded-page count) register a SnapHook so device snapshots carry
	// them across a resume. Hooks are saved and restored in registration
	// order, which is deterministic because Build is.
	Hooks []SnapHook
}

// SnapHook is one workload's checkpoint participation: Save serializes
// its counters into a device snapshot, Load restores them after the
// workload was rebuilt.
type SnapHook struct {
	Save func(*snap.Writer)
	Load func(*snap.Reader) error
}

// EnsureSmdd boots the device's baseband daemon (shared-memory channel,
// ARM9 model, smd.* gates) on first use and returns it. Workloads that
// place calls or send SMS call this at install time so the gates exist
// before their phase fires.
func (d *Device) EnsureSmdd() (*msm.Smdd, error) {
	if d.Smdd != nil {
		return d.Smdd, nil
	}
	s, err := msm.NewSmdd(d.Kernel, msm.DefaultSmddConfig(), msm.DefaultARM9Config())
	if err != nil {
		return nil, err
	}
	d.Smdd = s
	return s, nil
}

// DeviceResult is one device's outcome.
type DeviceResult struct {
	Index int
	Seed  int64
	// Scenario is the workload bucket the device was assigned (the
	// scenario name, or the Mix entry's name for mixed fleets).
	Scenario string
	// Consumed is total energy drawn over the run.
	Consumed units.Energy
	// BatteryLeft is the battery level at the end.
	BatteryLeft units.Energy
	// Recharged is external energy credited into the battery by a
	// charger over the run (zero on discharge-only scenarios). It is
	// energy-shaped and mode-independent, so it stays in CanonicalJSON.
	Recharged units.Energy
	// Reclaimed is energy the §5.2.2 anti-hoarding decay pulled back
	// out of scenario-flagged hoard reserves (scenario probes fill it;
	// zero elsewhere). Canonical: decay is deterministic.
	Reclaimed units.Energy
	// Died reports battery exhaustion; DiedAt is the instant it was
	// detected (which can legitimately be 0 for a battery too small to
	// cover a single baseline batch).
	Died   bool
	DiedAt units.Time
	// Utilization is the CPU busy percentage; BusyTicks and IdleTicks
	// are the integer quantum counts behind it (the mergeable form the
	// aggregator actually sums).
	Utilization float64
	BusyTicks   int64
	IdleTicks   int64
	// RadioActivations counts radio power-ups.
	RadioActivations int64
	// Polls counts completed application-level polls (scenario-defined).
	Polls int64
	// Pages counts completed browsing page loads (Browse workload).
	Pages int64
	// PowerUps counts netd-funded activations.
	PowerUps int64
	// SMSSent and CallsPlaced count baseband activity (devices with an
	// Smdd only).
	SMSSent     int64
	CallsPlaced int64
	// EngineSteps is the number of simulation instants the device's
	// engine actually executed — the quiescence fast path shows up as
	// EngineSteps ≪ simulated ticks.
	EngineSteps uint64
	// FlowWalks counts per-batch tap walks the device's graph performed;
	// SettledBatches counts batches advanced by closed-form settlement
	// instead. Their ratio is the busy-path fast-path engagement measure
	// (engine-level diagnostics, excluded from CanonicalJSON).
	FlowWalks      int64
	SettledBatches int64
	// SettledSweeps counts netd sweep boundaries accounted in closed
	// form instead of executed (diagnostics, excluded from
	// CanonicalJSON).
	SettledSweeps int64
	// SettledCharges counts charger quantum boundaries accounted in
	// closed form instead of executed (diagnostics, excluded from
	// CanonicalJSON).
	SettledCharges int64
}

// Scenario builds a workload onto a device. Implementations must be
// safe for concurrent use: Build runs on worker goroutines, one device
// at a time per worker, and must keep all per-device state on the
// Device.
type Scenario interface {
	Name() string
	Build(d *Device) error
}

// DeviceProvision carries per-device hardware parameters a population
// scenario draws before the device's kernel is built — the knobs that
// must be fixed at construction time and therefore cannot be chosen
// from inside Build.
//
// Precedence: a fleet-level Config.BatteryCapacity and a provisioned
// BatteryCapacity are a contradiction — the first says "every device
// gets this battery", the second says "this device draws its own" —
// so buildDevice rejects the combination loudly instead of letting one
// silently win (a -sweep battery-j run against a provisioning scenario
// used to quietly disable the heterogeneous population).
type DeviceProvision struct {
	// BatteryCapacity overrides the profile battery for this device.
	// Zero keeps the fleet-level setting.
	BatteryCapacity units.Energy
	// Profile selects the device's hardware power model. The zero
	// Profile (empty Name) keeps the kernel default (the HTC Dream);
	// a mixed-hardware population provisions power.LaptopT60p() for
	// some devices and the radio, baseline and battery all follow.
	Profile power.Profile
	// StrictHoarding enables the §5.2.2 fundamental anti-hoarding rule
	// on this device's kernel — the per-cohort knob adversarial
	// populations flip on their hoarder slice.
	StrictHoarding bool
}

// Provisioner is optionally implemented by scenarios that model a
// heterogeneous hardware population (WeekInTheLife draws per-device
// battery capacities). Provision must be deterministic in (idx, seed)
// and must not touch the device construction stream — implementations
// derive their own splitmix stream from the seed.
type Provisioner interface {
	Provision(idx int, seed int64) DeviceProvision
}

// Config parameterizes a fleet run.
type Config struct {
	// Devices is the fleet size.
	Devices int
	// Seed is the fleet master seed; per-device seeds derive from it.
	Seed int64
	// Duration is the simulated time horizon per device.
	Duration units.Time
	// Workers bounds concurrency; 0 means one per CPU.
	Workers int
	// Scenario is the workload; required.
	Scenario Scenario
	// BatteryCapacity overrides the profile battery on every device
	// (and any Provisioner draw).
	BatteryCapacity units.Energy
	// LifeResolution overrides DefaultLifeResolution.
	LifeResolution units.Time
	// EngineMode selects the time-advancement strategy (default
	// next-event; the fixed-tick compat mode exists for differential testing).
	EngineMode sim.Mode
	// Settle selects the busy-path strategy (default closed-form
	// settlement; the per-batch compat mode exists for A/B timing and
	// differential tests).
	Settle kernel.SettleMode
	// NetdSettle selects netd's sweep strategy independently of the
	// kernel's (default closed-form pool-crossing prediction; the
	// per-sweep compat mode exists for A/B timing and differential
	// tests — the cinder-fleet -per-sweep flag). Reports are
	// byte-identical either way.
	NetdSettle kernel.SettleMode
	// ChargerSettle selects the battery charger's settlement strategy
	// for scenarios that plug devices in overnight (default closed-form
	// telescoped recharge; the per-quantum compat mode exists for A/B
	// timing and differential tests — the cinder-fleet -per-charge
	// flag). Reports are byte-identical either way; scenarios read it
	// off Device.ChargerSettle when attaching the charger.
	ChargerSettle kernel.SettleMode
	// KeepResults retains the per-device result array on the Report.
	// Off (the default) the run streams each DeviceResult into the
	// aggregate and drops it, so fleet memory stays O(workers + buckets)
	// regardless of size. Turn it on for per-device output.
	KeepResults bool
	// NoRecycle constructs every device from scratch instead of
	// recycling each worker's kernel/radio/netd machinery. It exists for
	// A/B benchmarks and the recycling-equivalence tests; reports are
	// byte-identical either way.
	NoRecycle bool
	// DenseWatch disables the adaptive battery-watch deferral and polls
	// the battery every LifeResolution instead, the pre-optimization
	// behaviour. It exists for A/B benchmarks and the watch-equivalence
	// tests; reports are byte-identical either way.
	DenseWatch bool

	// PerDevice, when set, streams every completed device's result out
	// of the reduction frontier, in strict device-index order, without
	// retaining anything — the O(workers) alternative to KeepResults
	// that the cinder-fleet -per-device-out NDJSON emitter rides (and
	// KeepResults itself is implemented as one of these emitters). On
	// checkpointed runs results exist only at the final epoch, so the
	// emitter fires only on the final pass. A non-nil error aborts the
	// run.
	PerDevice func(DeviceResult) error

	// Progress, when set, is called from the reduction frontier as each
	// device completes a pass, and again when a checkpoint epoch is
	// published — the feed behind cinder-fleet's periodic stderr line,
	// runner heartbeats, and the coordinator's /status JSON. It runs on
	// the reducing goroutine, strictly ordered. A non-nil error aborts
	// the run promptly: in-flight devices finish, nothing new is
	// dispatched (how a runner abandons a shard whose lease was lost).
	Progress func(Progress) error

	// Warnf, when set, receives rare operator-facing warning lines —
	// resume salvage skipping or quarantining a damaged epoch file, for
	// example. Nil discards them; warnings never fail the run.
	Warnf func(format string, args ...any)

	// ShardIndex/ShardCount partition the device index range across
	// independent processes: shard i of n runs the contiguous range
	// [i·N/n, (i+1)·N/n). Zero ShardCount means unsharded. Sharded runs
	// go through RunShard, which emits a mergeable partial report.
	ShardIndex int
	ShardCount int

	// CheckpointDir, when set, makes the run interruptible: every
	// device's full state is snapshotted at each CheckpointEvery
	// boundary (default 24 h) into an epoch file, written in strict
	// device-index order. Resume restarts from the last complete epoch
	// instead of t = 0; the resumed run's report is byte-identical to an
	// uninterrupted one.
	CheckpointDir   string
	CheckpointEvery units.Time
	// Resume continues from the newest complete epoch file in
	// CheckpointDir (an error if none matches this config). ResumeAuto
	// is the opportunistic form the coordinator uses when reassigning a
	// lost shard: resume if a matching epoch file exists, start from
	// t = 0 otherwise.
	Resume     bool
	ResumeAuto bool
}

// Progress is one update from a run's reduction frontier: how far the
// current pass has advanced and where the last resumable checkpoint
// sits. Consumers derive rates and ETAs from SimDone/SimTotal against
// their own wall clock — the fleet itself never looks at real time.
type Progress struct {
	// Lo/Hi bound the device index range of the running pass; Done
	// counts devices already reduced within it.
	Lo, Hi, Done int
	// Epoch/Epochs locate the current pass in the checkpoint plan
	// (epoch 0 of 1 for uncheckpointed runs).
	Epoch, Epochs int
	// PassStart/PassEnd are the simulated span each device covers this
	// pass; Horizon is the full per-device horizon.
	PassStart, PassEnd, Horizon units.Time
	// LastCheckpoint is the newest published epoch file's index, -1
	// before any. Checkpointed marks the update announcing an epoch
	// file publication (Done == Hi-Lo on those).
	LastCheckpoint int
	Checkpointed   bool
}

// SimDone is the simulated device-time completed so far: whole passes
// for every device in range plus the current pass's reduced devices.
// (Devices that died early are counted at the full horizon — their
// remaining time costs nothing to "simulate" — so ETAs stay sane.)
func (p Progress) SimDone() units.Time {
	return units.Time(p.Hi-p.Lo)*p.PassStart + units.Time(p.Done)*(p.PassEnd-p.PassStart)
}

// SimTotal is the simulated device-time the whole range covers.
func (p Progress) SimTotal() units.Time {
	return units.Time(p.Hi-p.Lo) * p.Horizon
}

// meter tracks a run's progress feed: per-device and per-checkpoint
// callbacks into Config.Progress, all from the reducing goroutine.
type meter struct {
	emit func(Progress) error
	cur  Progress
}

func newMeter(cfg *Config, lo, hi, epochs int) *meter {
	return &meter{
		emit: cfg.Progress,
		cur: Progress{
			Lo: lo, Hi: hi, Epochs: epochs,
			Horizon:        cfg.Duration,
			LastCheckpoint: -1,
		},
	}
}

// pass positions the meter at the start of epoch e covering simulated
// span [start, end) per device.
func (m *meter) pass(e int, start, end units.Time) {
	m.cur.Epoch, m.cur.PassStart, m.cur.PassEnd = e, start, end
	m.cur.Done = 0
	m.cur.Checkpointed = false
	if e > 0 {
		m.cur.LastCheckpoint = e - 1
	}
}

// device records one reduced device.
func (m *meter) device() error {
	m.cur.Done++
	m.cur.Checkpointed = false
	if m.emit == nil {
		return nil
	}
	return m.emit(m.cur)
}

// checkpoint records epoch e's file publication.
func (m *meter) checkpoint(e int) error {
	m.cur.LastCheckpoint = e
	m.cur.Checkpointed = true
	if m.emit == nil {
		return nil
	}
	return m.emit(m.cur)
}

// Report is the deterministic aggregate of a fleet run.
type Report struct {
	Scenario string
	Devices  int
	Seed     int64
	Duration units.Time
	Workers  int

	TotalConsumed units.Energy
	MeanConsumed  units.Energy
	MinConsumed   units.Energy
	MaxConsumed   units.Energy

	// TotalRecharged is external charger energy credited fleet-wide;
	// TotalReclaimed is hoarded energy the anti-hoarding decay pulled
	// back (both zero on scenarios without chargers / hoard probes).
	TotalRecharged units.Energy
	TotalReclaimed units.Energy

	// MeanUtilization is the fleet-wide CPU busy percentage:
	// 100·Σbusy/Σ(busy+idle) over all devices. The tick sums (not the
	// ratio) are what aggregation carries, so sharded runs merge
	// exactly.
	MeanUtilization float64

	TotalPolls       int64
	TotalActivations int64
	TotalPowerUps    int64

	// Dead counts devices whose battery ran out; LifeP50/LifeP90 are
	// nearest-rank percentiles of time-to-exhaustion across dead
	// devices (0 when none died), read from a mergeable log-linear
	// quantile sketch with ≤ 2⁻⁷ relative error — the report is exact
	// in counts and sums, approximate only in these two fields.
	Dead    int
	LifeP50 units.Time
	LifeP90 units.Time

	// Engine-level diagnostics (excluded from CanonicalJSON): executed
	// instants, per-batch flow walks and closed-form-settled batches
	// summed over the fleet. CI diffs these across worker counts and
	// watches them for busy-path perf regressions.
	TotalEngineSteps    uint64
	TotalFlowWalks      int64
	TotalSettledBatches int64
	TotalSettledSweeps  int64
	TotalSettledCharges int64

	// Buckets break the fleet down per scenario bucket, sorted by
	// name. Single-scenario runs have exactly one bucket; Mix fleets
	// have one per entry that was assigned at least one device.
	Buckets []Bucket

	Results []DeviceResult
}

// Bucket is the aggregate over the devices assigned one scenario bucket
// of a (possibly mixed) fleet.
type Bucket struct {
	Name    string
	Devices int

	TotalConsumed units.Energy
	MeanConsumed  units.Energy

	// Recharged and Reclaimed are the bucket's charger credits and
	// anti-hoarding reclamation sums — the per-cohort split is what the
	// §5.2.2 containment measurement reads (hoarder bucket's Reclaimed
	// against victim bucket's LifeP50).
	Recharged units.Energy
	Reclaimed units.Energy

	MeanUtilization float64

	Polls       int64
	Pages       int64
	Activations int64
	PowerUps    int64
	SMSSent     int64
	Calls       int64

	// MeanSteps is the mean executed-instant count per device — the
	// per-bucket measure of how deeply the quiescence fast path was
	// engaged. MeanFlowWalks and MeanSettledBatches split the bucket's
	// tap batches into per-batch walks vs closed-form settlement.
	MeanSteps          uint64
	MeanFlowWalks      int64
	MeanSettledBatches int64
	MeanSettledSweeps  int64
	MeanSettledCharges int64

	Dead    int
	LifeP50 units.Time
	LifeP90 units.Time
}

// Format renders the report as a stable text block (the cinder-fleet
// CLI's output). It deliberately omits the resolved worker count —
// everything printed here is byte-identical for a fixed (seed, devices,
// scenario, duration) regardless of parallelism, which the package
// tests assert.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices × %v, scenario %q, seed %d\n",
		r.Devices, r.Duration, r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  consumed: total %v, mean %v, min %v, max %v\n",
		r.TotalConsumed, r.MeanConsumed, r.MinConsumed, r.MaxConsumed)
	if r.TotalRecharged > 0 || r.TotalReclaimed > 0 {
		fmt.Fprintf(&b, "  recharged: total %v, hoard reclaimed: %v\n",
			r.TotalRecharged, r.TotalReclaimed)
	}
	fmt.Fprintf(&b, "  cpu utilization: mean %.3f%%\n", r.MeanUtilization)
	fmt.Fprintf(&b, "  polls: %d, radio activations: %d, netd power-ups: %d\n",
		r.TotalPolls, r.TotalActivations, r.TotalPowerUps)
	if r.Dead > 0 {
		fmt.Fprintf(&b, "  battery deaths: %d/%d, life p50 %v, p90 %v\n",
			r.Dead, r.Devices, r.LifeP50, r.LifeP90)
	} else {
		fmt.Fprintf(&b, "  battery deaths: 0/%d\n", r.Devices)
	}
	if len(r.Buckets) > 1 {
		b.WriteString("  mix buckets:\n")
		for _, bk := range r.Buckets {
			fmt.Fprintf(&b, "    %-14s %4d devices, mean %v, polls %d, pages %d, sms %d, calls %d, deaths %d",
				bk.Name, bk.Devices, bk.MeanConsumed, bk.Polls, bk.Pages, bk.SMSSent, bk.Calls, bk.Dead)
			if bk.Dead > 0 {
				fmt.Fprintf(&b, " (life p50 %v, p90 %v)", bk.LifeP50, bk.LifeP90)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// reportJSON is the stable wire form of a Report. It deliberately
// excludes the resolved worker count and anything wall-clock-derived:
// for a fixed (seed, devices, scenario, duration) the marshalled bytes
// are identical regardless of parallelism — and regardless of shard
// count, which -merge relies on. Energies are microjoules, times
// milliseconds (the package's native units). docs/fleet-report.md
// documents every field.
type reportJSON struct {
	Scenario   string `json:"scenario"`
	Devices    int    `json:"devices"`
	Seed       int64  `json:"seed"`
	DurationMS int64  `json:"duration_ms"`

	TotalConsumedUJ int64   `json:"total_consumed_uj"`
	MeanConsumedUJ  int64   `json:"mean_consumed_uj"`
	MinConsumedUJ   int64   `json:"min_consumed_uj"`
	MaxConsumedUJ   int64   `json:"max_consumed_uj"`
	RechargedUJ     int64   `json:"recharged_uj,omitempty"`
	ReclaimedUJ     int64   `json:"reclaimed_uj,omitempty"`
	MeanUtilization float64 `json:"mean_utilization_pct"`

	Polls       int64 `json:"polls"`
	Activations int64 `json:"radio_activations"`
	PowerUps    int64 `json:"netd_power_ups"`

	Dead      int   `json:"dead"`
	LifeP50MS int64 `json:"life_p50_ms"`
	LifeP90MS int64 `json:"life_p90_ms"`

	EngineSteps    uint64 `json:"engine_steps"`
	FlowWalks      int64  `json:"flow_walks"`
	SettledBatches int64  `json:"settled_batches"`
	SettledSweeps  int64  `json:"settled_sweeps"`
	SettledCharges int64  `json:"settled_charges,omitempty"`

	Buckets []bucketJSON `json:"buckets"`
	Results []deviceJSON `json:"results,omitempty"`
}

type bucketJSON struct {
	Name               string  `json:"name"`
	Devices            int     `json:"devices"`
	TotalConsumedUJ    int64   `json:"total_consumed_uj"`
	MeanConsumedUJ     int64   `json:"mean_consumed_uj"`
	RechargedUJ        int64   `json:"recharged_uj,omitempty"`
	ReclaimedUJ        int64   `json:"reclaimed_uj,omitempty"`
	MeanUtilization    float64 `json:"mean_utilization_pct"`
	Polls              int64   `json:"polls"`
	Pages              int64   `json:"pages"`
	Activations        int64   `json:"radio_activations"`
	PowerUps           int64   `json:"netd_power_ups"`
	SMSSent            int64   `json:"sms_sent"`
	Calls              int64   `json:"calls_placed"`
	MeanSteps          uint64  `json:"mean_engine_steps"`
	MeanFlowWalks      int64   `json:"mean_flow_walks"`
	MeanSettled        int64   `json:"mean_settled_batches"`
	MeanSettledSweeps  int64   `json:"mean_settled_sweeps"`
	MeanSettledCharges int64   `json:"mean_settled_charges,omitempty"`
	Dead               int     `json:"dead"`
	LifeP50MS          int64   `json:"life_p50_ms"`
	LifeP90MS          int64   `json:"life_p90_ms"`
}

type deviceJSON struct {
	Index          int     `json:"index"`
	Seed           int64   `json:"seed"`
	Scenario       string  `json:"scenario"`
	ConsumedUJ     int64   `json:"consumed_uj"`
	BatteryLeftUJ  int64   `json:"battery_left_uj"`
	RechargedUJ    int64   `json:"recharged_uj,omitempty"`
	ReclaimedUJ    int64   `json:"reclaimed_uj,omitempty"`
	Died           bool    `json:"died"`
	DiedAtMS       int64   `json:"died_at_ms,omitempty"`
	Utilization    float64 `json:"utilization_pct"`
	Activations    int64   `json:"radio_activations"`
	Polls          int64   `json:"polls"`
	Pages          int64   `json:"pages"`
	PowerUps       int64   `json:"netd_power_ups"`
	SMSSent        int64   `json:"sms_sent"`
	Calls          int64   `json:"calls_placed"`
	EngineSteps    uint64  `json:"engine_steps"`
	FlowWalks      int64   `json:"flow_walks"`
	SettledBatches int64   `json:"settled_batches"`
	SettledSweeps  int64   `json:"settled_sweeps"`
	SettledCharges int64   `json:"settled_charges,omitempty"`
}

// JSON renders the report as deterministic, worker-count-independent
// indented JSON. perDevice includes the per-device result array.
func (r Report) JSON(perDevice bool) ([]byte, error) {
	return r.marshalJSON(perDevice, false)
}

// CanonicalJSON renders the report with every engine-level diagnostic
// (executed instants, flow walks, settled batches) zeroed: the bytes
// that must be identical across engine and settlement modes — and
// across checkpointed, resumed, sharded and merged runs — which the
// invariance suites assert. Everything energy- or workload-shaped —
// consumption, lifetimes, utilization, polls, pages, SMS, calls —
// stays.
func (r Report) CanonicalJSON(perDevice bool) ([]byte, error) {
	return r.marshalJSON(perDevice, true)
}

func (r Report) marshalJSON(perDevice, canonical bool) ([]byte, error) {
	out := reportJSON{
		Scenario:        r.Scenario,
		Devices:         r.Devices,
		Seed:            r.Seed,
		DurationMS:      int64(r.Duration),
		TotalConsumedUJ: int64(r.TotalConsumed),
		MeanConsumedUJ:  int64(r.MeanConsumed),
		MinConsumedUJ:   int64(r.MinConsumed),
		MaxConsumedUJ:   int64(r.MaxConsumed),
		RechargedUJ:     int64(r.TotalRecharged),
		ReclaimedUJ:     int64(r.TotalReclaimed),
		MeanUtilization: r.MeanUtilization,
		Polls:           r.TotalPolls,
		Activations:     r.TotalActivations,
		PowerUps:        r.TotalPowerUps,
		Dead:            r.Dead,
		LifeP50MS:       int64(r.LifeP50),
		LifeP90MS:       int64(r.LifeP90),
	}
	if !canonical {
		out.EngineSteps = r.TotalEngineSteps
		out.FlowWalks = r.TotalFlowWalks
		out.SettledBatches = r.TotalSettledBatches
		out.SettledSweeps = r.TotalSettledSweeps
		out.SettledCharges = r.TotalSettledCharges
	}
	for _, b := range r.Buckets {
		bj := bucketJSON{
			Name:            b.Name,
			Devices:         b.Devices,
			TotalConsumedUJ: int64(b.TotalConsumed),
			MeanConsumedUJ:  int64(b.MeanConsumed),
			RechargedUJ:     int64(b.Recharged),
			ReclaimedUJ:     int64(b.Reclaimed),
			MeanUtilization: b.MeanUtilization,
			Polls:           b.Polls,
			Pages:           b.Pages,
			Activations:     b.Activations,
			PowerUps:        b.PowerUps,
			SMSSent:         b.SMSSent,
			Calls:           b.Calls,
			Dead:            b.Dead,
			LifeP50MS:       int64(b.LifeP50),
			LifeP90MS:       int64(b.LifeP90),
		}
		if !canonical {
			bj.MeanSteps = b.MeanSteps
			bj.MeanFlowWalks = b.MeanFlowWalks
			bj.MeanSettled = b.MeanSettledBatches
			bj.MeanSettledSweeps = b.MeanSettledSweeps
			bj.MeanSettledCharges = b.MeanSettledCharges
		}
		out.Buckets = append(out.Buckets, bj)
	}
	if perDevice {
		for _, d := range r.Results {
			out.Results = append(out.Results, deviceWire(d, canonical))
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// deviceWire converts one device result to its stable wire form — the
// entries of the report's results array, and the records the NDJSON
// emitter streams.
func deviceWire(d DeviceResult, canonical bool) deviceJSON {
	dj := deviceJSON{
		Index:         d.Index,
		Seed:          d.Seed,
		Scenario:      d.Scenario,
		ConsumedUJ:    int64(d.Consumed),
		BatteryLeftUJ: int64(d.BatteryLeft),
		RechargedUJ:   int64(d.Recharged),
		ReclaimedUJ:   int64(d.Reclaimed),
		Died:          d.Died,
		DiedAtMS:      int64(d.DiedAt),
		Utilization:   d.Utilization,
		Activations:   d.RadioActivations,
		Polls:         d.Polls,
		Pages:         d.Pages,
		PowerUps:      d.PowerUps,
		SMSSent:       d.SMSSent,
		Calls:         d.CallsPlaced,
	}
	if !canonical {
		dj.EngineSteps = d.EngineSteps
		dj.FlowWalks = d.FlowWalks
		dj.SettledBatches = d.SettledBatches
		dj.SettledSweeps = d.SettledSweeps
		dj.SettledCharges = d.SettledCharges
	}
	return dj
}

// NDJSON renders the result as one compact JSON line (no trailing
// newline), the per-device streaming form: the same schema as the
// report's results array, so a file of these lines is the results
// array unrolled. canonical zeroes the engine diagnostics exactly as
// Report.CanonicalJSON does.
func (d DeviceResult) NDJSON(canonical bool) ([]byte, error) {
	return json.Marshal(deviceWire(d, canonical))
}

// warnf emits an operator-facing warning line (discarded when no
// Warnf sink is wired).
func (cfg *Config) warnf(format string, args ...any) {
	if cfg.Warnf != nil {
		cfg.Warnf(format, args...)
	}
}

// validate normalizes and checks a config, returning the resolved
// worker count.
func (cfg *Config) validate() (workers int, err error) {
	if cfg.Devices <= 0 {
		return 0, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Scenario == nil {
		return 0, fmt.Errorf("fleet: nil scenario")
	}
	if cfg.Duration <= 0 {
		return 0, fmt.Errorf("fleet: non-positive duration %v", cfg.Duration)
	}
	if cfg.LifeResolution == 0 {
		cfg.LifeResolution = DefaultLifeResolution
	}
	if cfg.LifeResolution < 0 {
		return 0, fmt.Errorf("fleet: negative life resolution %v", cfg.LifeResolution)
	}
	if cfg.ShardCount < 0 || (cfg.ShardCount > 0 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount)) {
		return 0, fmt.Errorf("fleet: shard %d of %d out of range", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.ShardCount > cfg.Devices {
		return 0, fmt.Errorf("fleet: %d shards over %d devices", cfg.ShardCount, cfg.Devices)
	}
	if cfg.ShardCount > 0 && cfg.KeepResults {
		return 0, fmt.Errorf("fleet: per-device results are not supported on sharded runs")
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return 0, fmt.Errorf("fleet: -resume needs a checkpoint dir")
	}
	workers = cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	return workers, nil
}

// shardRange returns the contiguous device index range this config
// covers: the whole fleet when unsharded, shard i's slice otherwise.
func (cfg Config) shardRange() (lo, hi int) {
	if cfg.ShardCount <= 0 {
		return 0, cfg.Devices
	}
	lo = cfg.ShardIndex * cfg.Devices / cfg.ShardCount
	hi = (cfg.ShardIndex + 1) * cfg.Devices / cfg.ShardCount
	return lo, hi
}

// Run simulates the fleet and returns the aggregate report. With
// Config.CheckpointDir set the run proceeds epoch by epoch, writing a
// resumable snapshot of every device at each boundary (checkpoint.go);
// otherwise each device runs its whole horizon in one pass.
//
// Devices are dispatched to the worker pool through a bounded admission
// window and their results are reduced strictly in index order as they
// stream back, so the run never holds more than O(workers) in-flight
// results plus O(buckets) aggregate state — per-device results are
// dropped after reduction unless cfg.KeepResults asks for them.
func Run(cfg Config) (Report, error) {
	workers, err := cfg.validate()
	if err != nil {
		return Report{}, err
	}
	if cfg.ShardCount > 0 {
		return Report{}, fmt.Errorf("fleet: sharded configs run through RunShard")
	}
	var results []DeviceResult
	if cfg.KeepResults {
		// Result retention is itself a PerDevice emitter: the run
		// streams either way, and the array exists only here.
		user := cfg.PerDevice
		cfg.PerDevice = func(r DeviceResult) error {
			results = append(results, r)
			if user != nil {
				return user(r)
			}
			return nil
		}
	}
	agg := newAggregate()
	if err := runRange(cfg, workers, agg); err != nil {
		return Report{}, err
	}
	rep := agg.finish(cfg, workers)
	rep.Results = results
	return rep, nil
}

// runRange simulates the config's device range into the aggregate —
// the code path Run, RunShard, and every coordinator-dispatched
// ShardRun share. With a checkpoint dir the range proceeds epoch by
// epoch; otherwise each device runs its whole horizon in one pass.
func runRange(cfg Config, workers int, agg *aggregate) error {
	if cfg.CheckpointDir != "" {
		return runEpochs(cfg, workers, agg)
	}
	return runWhole(cfg, workers, agg)
}

// accept folds one final device result into the aggregate and streams
// it to the PerDevice emitter.
func accept(cfg *Config, agg *aggregate, res DeviceResult) error {
	agg.add(res)
	if cfg.PerDevice == nil {
		return nil
	}
	return cfg.PerDevice(res)
}

// runWhole is the single-pass path: every device simulates its full
// horizon in one go.
func runWhole(cfg Config, workers int, agg *aggregate) error {
	lo, hi := cfg.shardRange()
	m := newMeter(&cfg, lo, hi, 1)
	m.pass(0, 0, cfg.Duration)
	return pass(cfg, workers, lo, hi, nil,
		func(idx int, _ []byte, rg *rig) outcome {
			d, res, err := buildDevice(cfg, idx, rg)
			if err != nil {
				return outcome{err: err}
			}
			d.Kernel.Run(cfg.Duration)
			extractResult(d, res)
			return outcome{res: *res}
		},
		func(_ int, o outcome) error {
			if err := accept(&cfg, agg, o.res); err != nil {
				return err
			}
			return m.device()
		})
}

// outcome is one device's product from a pass: a final result, or (on
// checkpointing passes) a snapshot-or-result blob, classified by kind,
// to carry into the next epoch.
type outcome struct {
	res  DeviceResult
	blob []byte
	kind int
	err  error
}

// pass runs device indexes [lo, hi) through the worker pool. feed, when
// non-nil, supplies each device's input blob and is called from the
// dispatch side strictly in index order (so it can stream a file);
// reduce is called strictly in index order as results stream back.
//
// The admission window bounds how far any device index may run ahead of
// the reduction frontier, which in turn bounds the reorder ring: index
// i is dispatched only once the frontier has passed i−window, so at
// most `window` results are ever buffered and the result channel can
// never fill with the frontier index still outstanding (the no-deadlock
// argument).
func pass(cfg Config, workers, lo, hi int,
	feed func(idx int) ([]byte, error),
	work func(idx int, in []byte, rg *rig) outcome,
	reduce func(idx int, o outcome) error) error {

	n := hi - lo
	if n <= 0 {
		return fmt.Errorf("fleet: empty device range [%d,%d)", lo, hi)
	}
	if workers > n {
		workers = n
	}
	window := 4 * workers
	if window > n {
		window = n
	}
	type slot struct {
		in   []byte
		out  outcome
		done bool
	}
	ring := make([]slot, window)
	indexCh := make(chan int, window)
	resultCh := make(chan int, window)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rg rig
			for i := range indexCh {
				// The ring slot for index i is owned by this worker
				// until the reducer receives i; the channel send is the
				// happens-before edge.
				s := &ring[(i-lo)%window]
				s.out = work(i, s.in, &rg)
				resultCh <- i
			}
		}()
	}

	var feedErr error
	dispatch := func(i int) bool {
		s := &ring[(i-lo)%window]
		s.in = nil
		if feed != nil && feedErr == nil {
			s.in, feedErr = feed(i)
			if feedErr != nil {
				// Dispatch anyway with nil input; the worker result is
				// discarded once firstErr is set below.
				s.in = nil
			}
		}
		indexCh <- i
		return true
	}

	dispatched := lo
	for ; dispatched < lo+window; dispatched++ {
		dispatch(dispatched)
	}
	closed := false
	closeIndex := func() {
		if !closed {
			closed = true
			close(indexCh)
		}
	}
	if dispatched == hi {
		closeIndex()
	}

	// The reduction loop drains every dispatched index, but once an
	// error (a failed device, a failed reduce, or an aborting Progress
	// callback) is recorded it stops dispatching new work, so an abort
	// costs at most the in-flight window rather than the whole range.
	var firstErr error
	if feedErr != nil {
		firstErr = feedErr
	}
	for frontier := lo; frontier < dispatched; {
		i := <-resultCh
		ring[(i-lo)%window].done = true
		for frontier < dispatched && ring[(frontier-lo)%window].done {
			s := &ring[(frontier-lo)%window]
			if firstErr == nil && feedErr != nil {
				firstErr = feedErr
			}
			if s.out.err != nil && firstErr == nil {
				firstErr = fmt.Errorf("fleet: device %d: %w", frontier, s.out.err)
			} else if firstErr == nil {
				if err := reduce(frontier, s.out); err != nil {
					firstErr = err
				}
			}
			*s = slot{}
			frontier++
			if dispatched < hi && firstErr == nil {
				dispatch(dispatched)
				dispatched++
			}
			if dispatched == hi || firstErr != nil {
				closeIndex()
			}
		}
	}
	closeIndex()
	wg.Wait()
	return firstErr
}

// rig is one worker's recyclable device machinery: the kernel (engine,
// object table, graph, scheduler), radio and netd are Reset in place
// for each device instead of constructed fresh, so a million-device run
// builds only O(workers) object graphs. The per-device Smdd is not
// recycled — it exists only on devices whose scenario asks for it.
type rig struct {
	k   *kernel.Kernel
	r   *radio.Radio
	n   *netd.Netd
	dev *Device
}

// buildDevice assembles one fleet member — recycled rig machinery, the
// scenario's workloads, and the battery watch — leaving it ready to
// run (or to overlay a checkpoint snapshot). The returned DeviceResult
// is wired into the battery watch; extractResult completes it after
// the simulation.
//
// The recycled construction sequence is identical to the fresh one —
// kernel, then radio (and its funding reserve), then netd — so object
// IDs, seeds and every downstream result are byte-identical; the
// equivalence tests assert it.
func buildDevice(cfg Config, idx int, rg *rig) (*Device, *DeviceResult, error) {
	seed := DeriveSeed(cfg.Seed, idx)
	mode := cfg.EngineMode
	if mode == sim.ModeAuto {
		mode = sim.DefaultMode()
	}
	kcfg := kernel.Config{
		Seed:            seed,
		BatteryCapacity: cfg.BatteryCapacity,
		EngineMode:      mode,
		Settle:          cfg.Settle,
	}
	if p, ok := cfg.Scenario.(Provisioner); ok {
		prov := p.Provision(idx, seed)
		if prov.BatteryCapacity != 0 {
			if cfg.BatteryCapacity != 0 {
				return nil, nil, fmt.Errorf("fleet: scenario %q provisions per-device batteries; "+
					"the fleet-level battery override (-battery-j / battery-j sweeps) contradicts it — drop one",
					cfg.Scenario.Name())
			}
			kcfg.BatteryCapacity = prov.BatteryCapacity
		}
		if prov.Profile.Name != "" {
			kcfg.Profile = prov.Profile
		}
		kcfg.StrictHoarding = prov.StrictHoarding
	}
	ncfg := netd.Config{Cooperative: true, QuiescentSweep: true, NoPoolTrace: true, Settle: cfg.NetdSettle}
	if cfg.NoRecycle {
		*rg = rig{}
	}
	if rg.k == nil {
		rg.k = kernel.New(kcfg)
		rg.r = radio.New(rg.k.Eng, rg.k.Graph, rg.k.Root, rg.k.KernelPriv(), radio.Config{Profile: rg.k.Profile})
		rg.k.AddDevice(rg.r)
		var err error
		rg.n, err = netd.New(rg.k, rg.r, ncfg)
		if err != nil {
			*rg = rig{} // never leave a half-built rig for the next device
			return nil, nil, err
		}
		rg.dev = &Device{}
	} else {
		rg.k.Reset(kcfg)
		rg.r.Reset(rg.k.Eng, rg.k.Graph, rg.k.Root, rg.k.KernelPriv(), radio.Config{Profile: rg.k.Profile})
		rg.k.AddDevice(rg.r)
		if err := rg.n.Reset(rg.k, rg.r, ncfg); err != nil {
			*rg = rig{}
			return nil, nil, err
		}
	}
	k := rg.k

	d := rg.dev
	clear(d.Probes)
	probes := d.Probes[:0]
	clear(d.Hooks)
	hooks := d.Hooks[:0]
	rand := d.Rand
	if rand == nil {
		rand = newSplitmix(seed)
	} else {
		rand.state = uint64(seed)
	}
	*d = Device{
		Index:         idx,
		Seed:          seed,
		Rand:          rand,
		Kernel:        k,
		Radio:         rg.r,
		Netd:          rg.n,
		Scenario:      cfg.Scenario.Name(),
		ChargerSettle: cfg.ChargerSettle,
		Probes:        probes,
		Hooks:         hooks,
	}
	if err := cfg.Scenario.Build(d); err != nil {
		return nil, nil, err
	}

	res := &DeviceResult{Index: idx, Seed: seed}
	lifeRes := cfg.LifeResolution
	if lifeRes == 0 {
		lifeRes = DefaultLifeResolution
	}
	var watch *sim.Task
	watch = k.Eng.Every("fleet:battery-watch", lifeRes, func(e *sim.Engine) {
		if !res.Died && k.BatteryExhaustedFor(watchSustain(lifeRes)) {
			res.Died = true
			res.DiedAt = e.Now()
			e.Stop() // dead device: nothing left to measure
			return
		}
		if cfg.DenseWatch {
			return
		}
		// While the device is provably quiescent, skip ahead: the kernel
		// bounds how far the battery could possibly drain, and the
		// deferral lands the next check at the exact grid instant dense
		// polling would first have detected anything.
		if h := k.WatchHorizon(watch); h > e.Now() {
			watch.DeferUntil(h)
		}
	})
	return d, res, nil
}

// extractResult reads the simulated device back into its result.
func extractResult(d *Device, res *DeviceResult) {
	k := d.Kernel
	res.Scenario = d.Scenario
	res.Consumed = k.Consumed()
	if lvl, err := k.Battery().Level(k.KernelPriv()); err == nil {
		res.BatteryLeft = lvl
	}
	res.Utilization = k.Sched.Utilization()
	res.BusyTicks = k.Sched.BusyTicks()
	res.IdleTicks = k.Sched.IdleTicks()
	res.RadioActivations = d.Radio.Stats().Activations
	res.PowerUps = d.Netd.Stats().PowerUps
	res.EngineSteps = k.Eng.Steps()
	res.FlowWalks = k.Graph.FlowWalks()
	res.SettledBatches = k.Graph.SettledBatches()
	res.SettledSweeps = d.Netd.Stats().SettledSweeps
	if c := k.Charger(); c != nil {
		cs := c.Stats()
		res.Recharged = cs.Recharged
		res.SettledCharges = cs.SettledCharges
	}
	if d.Smdd != nil {
		s := d.Smdd.Stats()
		res.SMSSent = s.SMSSent
		res.CallsPlaced = s.CallsPlaced
	}
	for _, p := range d.Probes {
		p(res)
	}
}

// aggregate is the mergeable core of a Report: integer sums, counts and
// quantile sketches only — no retained per-device arrays (Results is
// kept solely under KeepResults), and no floats until finish. Merging
// two aggregates is element-wise addition, so shard partials combine
// into exactly the aggregate a single process builds.
type aggregate struct {
	seen           int
	totalConsumed  units.Energy
	minConsumed    units.Energy
	maxConsumed    units.Energy
	recharged      units.Energy
	reclaimed      units.Energy
	busyTicks      int64
	idleTicks      int64
	polls          int64
	activations    int64
	powerUps       int64
	engineSteps    uint64
	flowWalks      int64
	settled        int64
	settledSweeps  int64
	settledCharges int64
	dead           int
	lives          sketch.Hist

	byName map[string]*bucketAgg
}

// bucketAgg is one scenario bucket's mergeable aggregate.
type bucketAgg struct {
	devices        int
	consumed       units.Energy
	recharged      units.Energy
	reclaimed      units.Energy
	busyTicks      int64
	idleTicks      int64
	polls          int64
	pages          int64
	activations    int64
	powerUps       int64
	sms            int64
	calls          int64
	steps          uint64
	flowWalks      int64
	settled        int64
	settledSweeps  int64
	settledCharges int64
	dead           int
	lives          sketch.Hist
}

func newAggregate() *aggregate {
	return &aggregate{byName: make(map[string]*bucketAgg)}
}

// add folds one device's result into the aggregate.
func (a *aggregate) add(r DeviceResult) {
	a.totalConsumed += r.Consumed
	if a.seen == 0 || r.Consumed < a.minConsumed {
		a.minConsumed = r.Consumed
	}
	if r.Consumed > a.maxConsumed {
		a.maxConsumed = r.Consumed
	}
	a.recharged += r.Recharged
	a.reclaimed += r.Reclaimed
	a.busyTicks += r.BusyTicks
	a.idleTicks += r.IdleTicks
	a.polls += r.Polls
	a.activations += r.RadioActivations
	a.powerUps += r.PowerUps
	a.engineSteps += r.EngineSteps
	a.flowWalks += r.FlowWalks
	a.settled += r.SettledBatches
	a.settledSweeps += r.SettledSweeps
	a.settledCharges += r.SettledCharges
	if r.Died {
		a.dead++
		a.lives.Add(int64(r.DiedAt))
	}
	a.seen++

	b := a.byName[r.Scenario]
	if b == nil {
		b = &bucketAgg{}
		a.byName[r.Scenario] = b
	}
	b.devices++
	b.consumed += r.Consumed
	b.recharged += r.Recharged
	b.reclaimed += r.Reclaimed
	b.busyTicks += r.BusyTicks
	b.idleTicks += r.IdleTicks
	b.polls += r.Polls
	b.pages += r.Pages
	b.activations += r.RadioActivations
	b.powerUps += r.PowerUps
	b.sms += r.SMSSent
	b.calls += r.CallsPlaced
	b.steps += r.EngineSteps
	b.flowWalks += r.FlowWalks
	b.settled += r.SettledBatches
	b.settledSweeps += r.SettledSweeps
	b.settledCharges += r.SettledCharges
	if r.Died {
		b.dead++
		b.lives.Add(int64(r.DiedAt))
	}
}

// merge folds another aggregate into this one. Every field is an
// integer sum, a min/max, or a sketch merge — all associative — so any
// shard grouping produces the identical aggregate.
func (a *aggregate) merge(o *aggregate) {
	if o.seen > 0 {
		if a.seen == 0 || o.minConsumed < a.minConsumed {
			a.minConsumed = o.minConsumed
		}
		if o.maxConsumed > a.maxConsumed {
			a.maxConsumed = o.maxConsumed
		}
	}
	a.seen += o.seen
	a.totalConsumed += o.totalConsumed
	a.recharged += o.recharged
	a.reclaimed += o.reclaimed
	a.busyTicks += o.busyTicks
	a.idleTicks += o.idleTicks
	a.polls += o.polls
	a.activations += o.activations
	a.powerUps += o.powerUps
	a.engineSteps += o.engineSteps
	a.flowWalks += o.flowWalks
	a.settled += o.settled
	a.settledSweeps += o.settledSweeps
	a.settledCharges += o.settledCharges
	a.dead += o.dead
	a.lives.Merge(&o.lives)
	for name, ob := range o.byName {
		b := a.byName[name]
		if b == nil {
			b = &bucketAgg{}
			a.byName[name] = b
		}
		b.devices += ob.devices
		b.consumed += ob.consumed
		b.recharged += ob.recharged
		b.reclaimed += ob.reclaimed
		b.busyTicks += ob.busyTicks
		b.idleTicks += ob.idleTicks
		b.polls += ob.polls
		b.pages += ob.pages
		b.activations += ob.activations
		b.powerUps += ob.powerUps
		b.sms += ob.sms
		b.calls += ob.calls
		b.steps += ob.steps
		b.flowWalks += ob.flowWalks
		b.settled += ob.settled
		b.settledSweeps += ob.settledSweeps
		b.settledCharges += ob.settledCharges
		b.dead += ob.dead
		b.lives.Merge(&ob.lives)
	}
}

// utilizationPct converts tick sums to the busy percentage.
func utilizationPct(busy, idle int64) float64 {
	total := busy + idle
	if total == 0 {
		return 0
	}
	return 100 * float64(busy) / float64(total)
}

// finish computes means, percentiles and the sorted bucket list.
func (a *aggregate) finish(cfg Config, workers int) Report {
	rep := Report{
		Scenario:            cfg.Scenario.Name(),
		Devices:             cfg.Devices,
		Seed:                cfg.Seed,
		Duration:            cfg.Duration,
		Workers:             workers,
		TotalConsumed:       a.totalConsumed,
		MinConsumed:         a.minConsumed,
		MaxConsumed:         a.maxConsumed,
		TotalRecharged:      a.recharged,
		TotalReclaimed:      a.reclaimed,
		MeanUtilization:     utilizationPct(a.busyTicks, a.idleTicks),
		TotalPolls:          a.polls,
		TotalActivations:    a.activations,
		TotalPowerUps:       a.powerUps,
		Dead:                a.dead,
		TotalEngineSteps:    a.engineSteps,
		TotalFlowWalks:      a.flowWalks,
		TotalSettledBatches: a.settled,
		TotalSettledSweeps:  a.settledSweeps,
		TotalSettledCharges: a.settledCharges,
	}
	rep.MeanConsumed = rep.TotalConsumed / units.Energy(rep.Devices)
	if a.dead > 0 {
		rep.LifeP50 = units.Time(a.lives.Quantile(50))
		rep.LifeP90 = units.Time(a.lives.Quantile(90))
	}
	names := make([]string, 0, len(a.byName))
	for n := range a.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	rep.Buckets = make([]Bucket, 0, len(names))
	for _, n := range names {
		b := a.byName[n]
		bk := Bucket{
			Name:               n,
			Devices:            b.devices,
			TotalConsumed:      b.consumed,
			MeanConsumed:       b.consumed / units.Energy(b.devices),
			Recharged:          b.recharged,
			Reclaimed:          b.reclaimed,
			MeanUtilization:    utilizationPct(b.busyTicks, b.idleTicks),
			Polls:              b.polls,
			Pages:              b.pages,
			Activations:        b.activations,
			PowerUps:           b.powerUps,
			SMSSent:            b.sms,
			Calls:              b.calls,
			MeanSteps:          b.steps / uint64(b.devices),
			MeanFlowWalks:      b.flowWalks / int64(b.devices),
			MeanSettledBatches: b.settled / int64(b.devices),
			MeanSettledSweeps:  b.settledSweeps / int64(b.devices),
			MeanSettledCharges: b.settledCharges / int64(b.devices),
			Dead:               b.dead,
		}
		if b.dead > 0 {
			bk.LifeP50 = units.Time(b.lives.Quantile(50))
			bk.LifeP90 = units.Time(b.lives.Quantile(90))
		}
		rep.Buckets = append(rep.Buckets, bk)
	}
	return rep
}

// DeriveSeed maps (fleet seed, device index) to a device RNG seed via
// splitmix64, the standard seed-sequencing finalizer: consecutive
// indices land far apart in the stream.
func DeriveSeed(fleetSeed int64, idx int) int64 {
	s := splitmix{state: uint64(fleetSeed) + uint64(idx)*0x9E3779B97F4A7C15}
	return int64(s.Next())
}

// splitmix is a tiny deterministic stream for scenario construction.
type splitmix struct{ state uint64 }

func newSplitmix(seed int64) *splitmix { return &splitmix{state: uint64(seed)} }

// Next returns the next 64-bit value in the stream.
func (s *splitmix) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	x := s.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Intn returns a deterministic value in [0, n).
func (s *splitmix) Intn(n int64) int64 {
	if n <= 0 {
		panic("fleet: Intn on non-positive bound")
	}
	return int64(s.Next() % uint64(n))
}

// watchSustain is the horizon the battery watch requires the battery to
// sustain at baseline draw before declaring the device alive: the watch
// resolution, capped at one second so coarse life resolutions do not
// shave measurable life off the end. A drained device whose clamped
// taps and decay refunds keep the level floating a batch or two above
// the billing quantum would otherwise zombie along — executing its full
// per-instant load, consuming nothing, measuring nothing — until some
// teardown returns enough energy to finish dying.
func watchSustain(lifeRes units.Time) units.Time {
	if lifeRes > units.Second {
		return units.Second
	}
	return lifeRes
}
