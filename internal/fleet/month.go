package fleet

import (
	"repro/internal/estimator"
	"repro/internal/netquota"
	"repro/internal/power"
	"repro/internal/units"
)

// This file assembles the month-in-the-life population: thirty simulated
// days per device over a mixed-hardware fleet that actually recharges.
// Three things distinguish it from the week scenario it extends:
//
//   - Recharge cycles. Phone cohorts plug the stock AC adapter in every
//     evening (minus the occasional forgotten night) and laptops live on
//     wall power most of the day, so the battery level is non-monotone
//     for the entire run. Deaths come from forgotten nights and greedy
//     days rather than a single monotone slide to empty.
//
//   - Mixed hardware. One device in eight is a ThinkPad T60p — the
//     paper's second measured platform — provisioned through the
//     DeviceProvision.Profile hook, so Dream phones and T60p laptops
//     coexist in one fleet with their own baselines, radios, activation
//     costs and batteries.
//
//   - Adaptive subsystems as workload participants. Every device runs
//     an online radio-activation estimator feeding netd's pooling
//     threshold (§9's adaptation sketch) and meters its browsing
//     against a monthly netquota data plan — both previously unit-test
//     fixtures, now exercised (and checkpointed) by the fleet path.
//
// The week scenario's checkpoint discipline carries over: workload
// phases end hours before midnight so day boundaries stay quiet. The
// one deliberate exception is the nightly charge window, which *spans*
// midnight — epoch snapshots must carry a live plugged charger (quantum
// cursor, sub-quantum carry, any closed-form deferral), which is
// exactly the integration the charger's snapshot section exists for.
// Plug and unplug instants avoid the exact midnight instant.

const (
	monthDays = 30

	// monthStream separates the hardware-assignment stream from Build's
	// construction stream (and from the week scenario's provisioning
	// stream). Provision and Build both derive it from the device seed,
	// so the kernel a device is built on and the phases installed on it
	// always agree on what hardware it is.
	monthStream = 0x0C1A_DE00_30D1

	// Phone batteries draw from [140, 180) kJ. The sizing pivot is the
	// forgotten-charger night: skipping one stretches the gap between
	// charges to ~41 h, which costs ~105 kJ at the Dream's 699 mW floor
	// plus workload draw — survivable on any battery in the range, while
	// two forgotten nights in a row (a ~65 h gap) exhaust every one of
	// them. Deaths are a tail event of the habit model, not the norm.
	// Laptops take the T60p profile's battery (200 kJ).
	monthBatteryBase = 140 * units.Kilojoule
	monthBatterySpan = 40 * units.Kilojoule

	// monthPlanQuota is the monthly data budget each device's metered
	// browsing charges against: 12 MiB is sized so phone cohorts brush
	// against it in the final week and laptops exhaust it mid-month —
	// quota refusal is an observed behaviour, not a dead branch.
	monthPlanQuota = 12 * netquota.Mebibyte
)

// MonthInTheLife returns the 30-day mixed-hardware recharging fleet
// scenario.
func MonthInTheLife() Scenario { return monthScenario{days: monthDays} }

// monthScenario implements Scenario and Provisioner.
type monthScenario struct {
	days int
}

// Name implements Scenario.
func (monthScenario) Name() string { return "monthinthelife" }

// monthHardware derives the device's hardware class from its seed on a
// dedicated stream. A laptop reports zero capacity: the T60p profile's
// own battery applies.
func monthHardware(seed int64) (laptop bool, battery units.Energy) {
	r := newSplitmix(seed ^ monthStream)
	if r.Intn(8) == 0 {
		return true, 0
	}
	return false, monthBatteryBase + units.Energy(r.Intn(int64(monthBatterySpan)))
}

// Provision implements Provisioner: one device in eight is a T60p, the
// rest are Dream phones with per-device battery capacities.
func (monthScenario) Provision(_ int, seed int64) DeviceProvision {
	laptop, battery := monthHardware(seed)
	if laptop {
		return DeviceProvision{Profile: power.LaptopT60p()}
	}
	return DeviceProvision{BatteryCapacity: battery}
}

// Build implements Scenario: wire the adaptive subsystems, draw the
// device's habits, then compose thirty days of phases.
func (m monthScenario) Build(d *Device) error {
	days := m.days
	if days <= 0 {
		days = monthDays
	}
	laptop, _ := monthHardware(d.Seed)

	// netd's pooling threshold tracks this device's measured activation
	// overhead instead of the static profile prior — mixed hardware is
	// where a per-device estimate earns its keep, since the T60p's
	// activation cost is 19× smaller than the Dream's. The estimator's
	// running state is checkpointed alongside the device.
	est := estimator.NewActivationEstimator(d.Radio, estimator.DefaultAlphaPct)
	d.Netd.SetEstimator(est)
	d.Hooks = append(d.Hooks, SnapHook{Save: est.Snapshot, Load: est.Restore})

	// The monthly data plan all browsing is metered against. The plan
	// is a second, byte-denominated consumption graph; its allowance
	// levels ride device snapshots through the plan's own section.
	plan := netquota.NewPlan(d.Kernel.Table, d.Kernel.Root, netquota.PlanConfig{
		Quota:    monthPlanQuota,
		Category: d.Kernel.NewCategory(),
	})
	browseAllow, err := plan.NewAllowance("browse", 0)
	if err != nil {
		return err
	}
	if err := plan.Grant(browseAllow, monthPlanQuota); err != nil {
		return err
	}
	d.Hooks = append(d.Hooks, SnapHook{Save: plan.Snapshot, Load: plan.Restore})

	// Habit draws happen for every device — laptops included, even
	// where a habit goes unused — so the construction stream stays
	// aligned and hardware class plus cohort alone decide behaviour.
	r := d.Rand
	cohort := r.Intn(10)
	pollEvery := 8*units.Minute + units.Time(r.Intn(int64(8*units.Minute)))
	commute := 40*units.Minute + units.Time(r.Intn(int64(50*units.Minute)))
	screenHabit := 5*units.Minute + units.Time(r.Intn(int64(10*units.Minute)))
	// A few devices in a hundred nights forget the charger — the death
	// heterogeneity of the population comes from these nights.
	forgetPct := r.Intn(12)
	forget := make([]bool, days)
	for i := range forget {
		forget[i] = r.Intn(100) < forgetPct
	}

	var lbl string
	var phases []Phase
	if laptop {
		lbl = "month-laptop"
		phases = laptopMonth(days, screenHabit, browseAllow)
	} else {
		switch {
		case cohort < 5:
			lbl = "month-idle"
			phases = idleWeek(days, screenHabit)
		case cohort < 8:
			lbl = "month-commuter"
			phases = commuterWeek(days, pollEvery, commute, screenHabit)
		default:
			lbl = "month-chatty"
			phases = chattyWeek(days, screenHabit)
		}
		phases = append(phases, meteredEvenings(days, browseAllow)...)
		phases = append(phases, nightlyCharge(days, forget)...)
	}
	d.Scenario = lbl
	return Compose{Label: lbl, Phases: phases}.Build(d)
}

// meteredEvenings adds a browsing session every third evening, charged
// against the device's data plan. Sessions end — teardown, netd tails
// and the radio's 20 s idle timeout included — before the nightly
// charge plugs in at 22:30.
func meteredEvenings(days int, allow *netquota.Allowance) []Phase {
	var ps []Phase
	for day := 0; day < days; day += 3 {
		base := units.Time(day) * 24 * units.Hour
		ps = append(ps, Phase{
			Workload: Browse{Pages: 15, Allowance: allow},
			Start:    base + 20*units.Hour,
			Duration: 30 * units.Minute,
			Jitter:   units.Hour,
		})
	}
	return ps
}

// nightlyCharge plugs the stock AC adapter in each evening at 22:30
// (plus up to 30 min of per-device jitter) and unplugs seven hours
// later. The window spans the midnight epoch boundary on purpose: day-
// boundary checkpoints must carry the live charger. At 4 W delivered, a
// seven-hour night refills any phone battery in the population from
// empty and spends the tail in the clamped top-off regime.
func nightlyCharge(days int, forget []bool) []Phase {
	var ps []Phase
	for day := 0; day < days; day++ {
		if forget[day] {
			continue
		}
		base := units.Time(day) * 24 * units.Hour
		ps = append(ps, Phase{
			Workload: Charge{},
			Start:    base + 22*units.Hour + 30*units.Minute,
			Duration: 7 * units.Hour,
			Jitter:   30 * units.Minute,
		})
	}
	return ps
}

// laptopMonth is the T60p cohort's day: a workstation on wall power in
// three stretches (early morning through the commute gap, back after a
// lunch outing, evening until a 23:30 unplug), with screen-heavy work
// hours, a mail/RSS poller pair at laptop cadence, and metered evening
// browsing. The 18 W idle floor means even the one-hour unplugged gaps
// cost ≈65 kJ — a third of the battery — so the charge windows do real
// work every single day. All plug/unplug instants avoid exact midnight.
func laptopMonth(days int, screen units.Time, allow *netquota.Allowance) []Phase {
	work := Pollers{Interval: 5 * units.Minute}
	wall := power.LaptopCharger()
	var ps []Phase
	for day := 0; day < days; day++ {
		base := units.Time(day) * 24 * units.Hour
		ps = append(ps,
			Phase{Workload: Charge{Supply: wall}, Start: base + 30*units.Minute, Duration: 9 * units.Hour},
			Phase{Workload: Charge{Supply: wall}, Start: base + 10*units.Hour + 30*units.Minute, Duration: 4*units.Hour + 30*units.Minute},
			Phase{Workload: Charge{Supply: wall}, Start: base + 16*units.Hour, Duration: 7*units.Hour + 30*units.Minute},
		)
		if weekend(day) {
			ps = append(ps,
				Phase{Workload: Screen{}, Start: base + 11*units.Hour, Duration: screen * 4, Jitter: units.Hour},
				Phase{Workload: Browse{Pages: 20, Allowance: allow}, Start: base + 20*units.Hour, Duration: 40 * units.Minute, Jitter: 30 * units.Minute},
			)
			continue
		}
		ps = append(ps,
			Phase{Workload: Screen{}, Start: base + 9*units.Hour, Duration: 3 * units.Hour, Jitter: 15 * units.Minute},
			Phase{Workload: work, Start: base + 9*units.Hour + 30*units.Minute, Duration: 5 * units.Hour, Jitter: 15 * units.Minute},
			Phase{Workload: Screen{}, Start: base + 13*units.Hour, Duration: 2 * units.Hour, Jitter: 15 * units.Minute},
			Phase{Workload: Browse{Pages: 10, Allowance: allow}, Start: base + 21*units.Hour, Duration: 25 * units.Minute, Jitter: 30 * units.Minute},
		)
	}
	return ps
}
