package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestPerDeviceEmitterMatchesKeepResults: the streaming emitter must
// deliver exactly the results KeepResults retains, in strict device-
// index order, without the run holding the O(N) array.
func TestPerDeviceEmitterMatchesKeepResults(t *testing.T) {
	cfg := shardBase(40)
	cfg.KeepResults = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []DeviceResult
	cfg2 := shardBase(40)
	cfg2.PerDevice = func(r DeviceResult) error {
		streamed = append(streamed, r)
		return nil
	}
	rep2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Results != nil {
		t.Fatal("streaming run retained the results array")
	}
	if len(streamed) != len(rep.Results) {
		t.Fatalf("streamed %d results, kept %d", len(streamed), len(rep.Results))
	}
	for i := range streamed {
		if streamed[i] != rep.Results[i] {
			t.Fatalf("device %d diverged:\n%+v\nvs\n%+v", i, streamed[i], rep.Results[i])
		}
		if streamed[i].Index != i {
			t.Fatalf("emitter out of order: position %d got device %d", i, streamed[i].Index)
		}
	}
}

// TestPerDeviceEmitterCheckpointedRun: on a checkpointed run the
// emitter fires only on the aggregating final pass — once per device,
// in order, with the same values an uncheckpointed run streams.
func TestPerDeviceEmitterCheckpointedRun(t *testing.T) {
	cfg := Config{
		Devices:  8,
		Seed:     13,
		Duration: 3 * 24 * units.Hour,
		Workers:  2,
		Scenario: WeekInTheLife(),
	}
	var plain []DeviceResult
	cfg.PerDevice = func(r DeviceResult) error {
		plain = append(plain, r)
		return nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var ckpt []DeviceResult
	cfg.CheckpointDir = t.TempDir()
	cfg.PerDevice = func(r DeviceResult) error {
		ckpt = append(ckpt, r)
		return nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(ckpt) != cfg.Devices {
		t.Fatalf("checkpointed run emitted %d results for %d devices", len(ckpt), cfg.Devices)
	}
	for i := range ckpt {
		// Engine diagnostics legitimately differ across epoch plans;
		// everything else must not.
		a, _ := ckpt[i].NDJSON(true)
		b, _ := plain[i].NDJSON(true)
		if !bytes.Equal(a, b) {
			t.Fatalf("device %d diverged between epoch plans:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestPerDeviceEmitterAborts: an emitter error must abort the run
// promptly and surface unchanged.
func TestPerDeviceEmitterAborts(t *testing.T) {
	boom := errors.New("emitter full")
	cfg := shardBase(40)
	seen := 0
	cfg.PerDevice = func(r DeviceResult) error {
		if seen++; seen > 5 {
			return boom
		}
		return nil
	}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the emitter's error", err)
	}
	if seen > 6 {
		t.Fatalf("emitter called %d times after aborting at 6", seen)
	}
}

// TestProgressStream: the Progress feed must advance monotonically
// through every epoch, announce each checkpoint publication, and end
// with the full simulated total.
func TestProgressStream(t *testing.T) {
	cfg := Config{
		Devices:       6,
		Seed:          13,
		Duration:      3 * 24 * units.Hour,
		Workers:       2,
		Scenario:      WeekInTheLife(),
		CheckpointDir: t.TempDir(),
	}
	var updates []Progress
	cfg.Progress = func(p Progress) error {
		updates = append(updates, p)
		return nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	wantDevices, wantEpochs := 6, 3
	if len(updates) != wantEpochs*wantDevices+(wantEpochs-1) {
		t.Fatalf("%d updates; want %d per-device × %d epochs + %d checkpoints",
			len(updates), wantDevices, wantEpochs, wantEpochs-1)
	}
	var lastSim units.Time
	var checkpoints []int
	epoch := 0
	for i, p := range updates {
		if p.Lo != 0 || p.Hi != wantDevices || p.Epochs != wantEpochs {
			t.Fatalf("update %d has wrong frame: %+v", i, p)
		}
		if p.Epoch < epoch {
			t.Fatalf("update %d went back to epoch %d from %d", i, p.Epoch, epoch)
		}
		epoch = p.Epoch
		if s := p.SimDone(); s < lastSim {
			t.Fatalf("update %d: SimDone regressed %v -> %v", i, lastSim, s)
		} else {
			lastSim = s
		}
		if p.Checkpointed {
			if p.Done != wantDevices || p.LastCheckpoint != p.Epoch {
				t.Fatalf("checkpoint update %d malformed: %+v", i, p)
			}
			checkpoints = append(checkpoints, p.LastCheckpoint)
		}
	}
	if len(checkpoints) != wantEpochs-1 || checkpoints[0] != 0 || checkpoints[1] != 1 {
		t.Fatalf("checkpoint announcements: %v", checkpoints)
	}
	final := updates[len(updates)-1]
	if final.SimDone() != final.SimTotal() {
		t.Fatalf("final SimDone %v != SimTotal %v", final.SimDone(), final.SimTotal())
	}
}

// TestProgressAborts: a Progress error must stop the run (this is how
// a runner abandons a shard whose lease was lost).
func TestProgressAborts(t *testing.T) {
	stop := errors.New("lease lost")
	cfg := shardBase(40)
	calls := 0
	cfg.Progress = func(p Progress) error {
		if calls++; calls >= 3 {
			return stop
		}
		return nil
	}
	if _, err := Run(cfg); !errors.Is(err, stop) {
		t.Fatalf("got %v, want the progress error", err)
	}
	if calls > 3+4*2 { // at most the in-flight admission window drains
		t.Fatalf("run kept going for %d progress calls after the abort", calls)
	}
}

// TestNDJSONForms: one compact line per device, parseable, and the
// canonical form zeroes exactly the engine diagnostics.
func TestNDJSONForms(t *testing.T) {
	cfg := shardBase(3)
	cfg.KeepResults = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[1]
	line, err := r.NDJSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(line, '\n') {
		t.Fatal("NDJSON line contains a newline")
	}
	var full map[string]any
	if err := json.Unmarshal(line, &full); err != nil {
		t.Fatal(err)
	}
	if int(full["index"].(float64)) != 1 || full["scenario"] == "" {
		t.Fatalf("line misses identity fields: %s", line)
	}

	canon, err := r.NDJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	var c map[string]any
	if err := json.Unmarshal(canon, &c); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"engine_steps", "flow_walks", "settled_batches", "settled_sweeps"} {
		if v, ok := c[k]; ok && v.(float64) != 0 {
			t.Fatalf("canonical line keeps diagnostic %s=%v", k, v)
		}
	}
	// Everything but the diagnostics agrees between the forms.
	for _, k := range []string{"consumed_uj", "polls", "scenario", "seed"} {
		af, bf := full[k], c[k]
		if af != bf {
			t.Fatalf("canonicalization changed %s: %v vs %v", k, af, bf)
		}
	}
	if strings.Count(string(line), "{") < 1 {
		t.Fatal("not a JSON object")
	}
}
