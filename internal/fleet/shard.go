package fleet

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/units"
)

// This file implements sharded fleet runs: `cinder-fleet -shard i/n`
// partitions the device index range deterministically into n contiguous
// slices, each shard simulates its slice independently (its own
// process, machine, or checkpoint directory) and emits a *partial*
// report — the raw mergeable aggregate: integer sums, counts, and the
// sparse form of the life-percentile quantile sketch. `-merge` combines
// the partials and produces the same canonical JSON a single-process
// run of the whole fleet emits, byte for byte, because every aggregate
// field is associative: sums and counts add, min/max compose, and the
// sketch merges by counter addition. No full-population array ever
// exists on any machine.

// PartialVersion is the partial-report schema version.
const PartialVersion = 1

// Partial is one shard's mergeable report.
type Partial struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	// Identity: every shard of a run must agree on these exactly.
	Scenario          string `json:"scenario"`
	Devices           int    `json:"devices"`
	Seed              int64  `json:"seed"`
	DurationMS        int64  `json:"duration_ms"`
	BatteryUJ         int64  `json:"battery_uj"`
	EngineMode        uint8  `json:"engine_mode"`
	SettleMode        uint8  `json:"settle_mode"`
	NetdSettleMode    uint8  `json:"netd_settle_mode"`
	ChargerSettleMode uint8  `json:"charger_settle_mode,omitempty"`
	LifeResolutionMS  int64  `json:"life_resolution_ms"`
	DenseWatch        bool   `json:"dense_watch,omitempty"`

	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	RangeLo    int `json:"range_lo"`
	RangeHi    int `json:"range_hi"`

	Agg     partialAgg      `json:"agg"`
	Buckets []partialBucket `json:"buckets"`
}

// partialAgg is the wire form of the shard's top-level aggregate.
type partialAgg struct {
	Seen            int        `json:"seen"`
	TotalConsumedUJ int64      `json:"total_consumed_uj"`
	MinConsumedUJ   int64      `json:"min_consumed_uj"`
	MaxConsumedUJ   int64      `json:"max_consumed_uj"`
	BusyTicks       int64      `json:"busy_ticks"`
	IdleTicks       int64      `json:"idle_ticks"`
	Polls           int64      `json:"polls"`
	Activations     int64      `json:"radio_activations"`
	PowerUps        int64      `json:"netd_power_ups"`
	EngineSteps     uint64     `json:"engine_steps"`
	FlowWalks       int64      `json:"flow_walks"`
	SettledBatches  int64      `json:"settled_batches"`
	SettledSweeps   int64      `json:"settled_sweeps"`
	SettledCharges  int64      `json:"settled_charges,omitempty"`
	RechargedUJ     int64      `json:"recharged_uj,omitempty"`
	ReclaimedUJ     int64      `json:"reclaimed_uj,omitempty"`
	Dead            int        `json:"dead"`
	Lives           [][2]int64 `json:"lives,omitempty"`
}

// partialBucket is the wire form of one scenario bucket's aggregate.
type partialBucket struct {
	Name            string     `json:"name"`
	Devices         int        `json:"devices"`
	TotalConsumedUJ int64      `json:"total_consumed_uj"`
	BusyTicks       int64      `json:"busy_ticks"`
	IdleTicks       int64      `json:"idle_ticks"`
	Polls           int64      `json:"polls"`
	Pages           int64      `json:"pages"`
	Activations     int64      `json:"radio_activations"`
	PowerUps        int64      `json:"netd_power_ups"`
	SMSSent         int64      `json:"sms_sent"`
	Calls           int64      `json:"calls_placed"`
	EngineSteps     uint64     `json:"engine_steps"`
	FlowWalks       int64      `json:"flow_walks"`
	SettledBatches  int64      `json:"settled_batches"`
	SettledSweeps   int64      `json:"settled_sweeps"`
	SettledCharges  int64      `json:"settled_charges,omitempty"`
	RechargedUJ     int64      `json:"recharged_uj,omitempty"`
	ReclaimedUJ     int64      `json:"reclaimed_uj,omitempty"`
	Dead            int        `json:"dead"`
	Lives           [][2]int64 `json:"lives,omitempty"`
}

// RunShard simulates one shard of the fleet (cfg.ShardIndex of
// cfg.ShardCount) and returns its mergeable partial report. Checkpoint
// options apply per shard: each shard keeps its own epoch files in the
// shared checkpoint directory.
func RunShard(cfg Config) (*Partial, error) {
	workers, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if cfg.ShardCount <= 0 {
		return nil, fmt.Errorf("fleet: RunShard needs ShardCount > 0")
	}
	agg := newAggregate()
	if err := runRange(cfg, workers, agg); err != nil {
		return nil, err
	}
	return packPartial(cfg, agg), nil
}

// packPartial converts an aggregate into its wire form.
func packPartial(cfg Config, a *aggregate) *Partial {
	lo, hi := cfg.shardRange()
	mode := cfg.EngineMode
	if mode == sim.ModeAuto {
		mode = sim.DefaultMode()
	}
	p := &Partial{
		Format:            "cinder-fleet-partial",
		Version:           PartialVersion,
		Scenario:          cfg.Scenario.Name(),
		Devices:           cfg.Devices,
		Seed:              cfg.Seed,
		DurationMS:        int64(cfg.Duration),
		BatteryUJ:         int64(cfg.BatteryCapacity),
		EngineMode:        uint8(mode),
		SettleMode:        uint8(cfg.Settle),
		NetdSettleMode:    uint8(cfg.NetdSettle),
		ChargerSettleMode: uint8(cfg.ChargerSettle),
		LifeResolutionMS:  int64(cfg.LifeResolution),
		DenseWatch:        cfg.DenseWatch,
		ShardIndex:        cfg.ShardIndex,
		ShardCount:        cfg.ShardCount,
		RangeLo:           lo,
		RangeHi:           hi,
		Agg: partialAgg{
			Seen:            a.seen,
			TotalConsumedUJ: int64(a.totalConsumed),
			MinConsumedUJ:   int64(a.minConsumed),
			MaxConsumedUJ:   int64(a.maxConsumed),
			BusyTicks:       a.busyTicks,
			IdleTicks:       a.idleTicks,
			Polls:           a.polls,
			Activations:     a.activations,
			PowerUps:        a.powerUps,
			EngineSteps:     a.engineSteps,
			FlowWalks:       a.flowWalks,
			SettledBatches:  a.settled,
			SettledSweeps:   a.settledSweeps,
			SettledCharges:  a.settledCharges,
			RechargedUJ:     int64(a.recharged),
			ReclaimedUJ:     int64(a.reclaimed),
			Dead:            a.dead,
			Lives:           sparseLives(&a.lives),
		},
	}
	names := make([]string, 0, len(a.byName))
	for n := range a.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := a.byName[n]
		p.Buckets = append(p.Buckets, partialBucket{
			Name:            n,
			Devices:         b.devices,
			TotalConsumedUJ: int64(b.consumed),
			BusyTicks:       b.busyTicks,
			IdleTicks:       b.idleTicks,
			Polls:           b.polls,
			Pages:           b.pages,
			Activations:     b.activations,
			PowerUps:        b.powerUps,
			SMSSent:         b.sms,
			Calls:           b.calls,
			EngineSteps:     b.steps,
			FlowWalks:       b.flowWalks,
			SettledBatches:  b.settled,
			SettledSweeps:   b.settledSweeps,
			SettledCharges:  b.settledCharges,
			RechargedUJ:     int64(b.recharged),
			ReclaimedUJ:     int64(b.reclaimed),
			Dead:            b.dead,
			Lives:           sparseLives(&b.lives),
		})
	}
	return p
}

// sparseLives serializes a sketch as (bucket index, count) pairs.
func sparseLives(h *sketch.Hist) [][2]int64 {
	var out [][2]int64
	h.Each(func(idx int, count uint64) {
		out = append(out, [2]int64{int64(idx), int64(count)})
	})
	return out
}

// JSON renders the partial as indented JSON.
func (p *Partial) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParsePartial deserializes and sanity-checks a partial report.
func ParsePartial(b []byte) (*Partial, error) {
	var p Partial
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("fleet: bad partial report: %w", err)
	}
	if p.Format != "cinder-fleet-partial" {
		return nil, fmt.Errorf("fleet: not a partial report (format %q)", p.Format)
	}
	if p.Version != PartialVersion {
		return nil, fmt.Errorf("fleet: partial report v%d, this build reads v%d", p.Version, PartialVersion)
	}
	return &p, nil
}

// unpack converts a partial's wire form back into an aggregate.
func (p *Partial) unpack() *aggregate {
	a := newAggregate()
	a.seen = p.Agg.Seen
	a.totalConsumed = units.Energy(p.Agg.TotalConsumedUJ)
	a.minConsumed = units.Energy(p.Agg.MinConsumedUJ)
	a.maxConsumed = units.Energy(p.Agg.MaxConsumedUJ)
	a.busyTicks = p.Agg.BusyTicks
	a.idleTicks = p.Agg.IdleTicks
	a.polls = p.Agg.Polls
	a.activations = p.Agg.Activations
	a.powerUps = p.Agg.PowerUps
	a.engineSteps = p.Agg.EngineSteps
	a.flowWalks = p.Agg.FlowWalks
	a.settled = p.Agg.SettledBatches
	a.settledSweeps = p.Agg.SettledSweeps
	a.settledCharges = p.Agg.SettledCharges
	a.recharged = units.Energy(p.Agg.RechargedUJ)
	a.reclaimed = units.Energy(p.Agg.ReclaimedUJ)
	a.dead = p.Agg.Dead
	for _, pair := range p.Agg.Lives {
		a.lives.AddBucket(int(pair[0]), uint64(pair[1]))
	}
	for _, pb := range p.Buckets {
		b := &bucketAgg{
			devices:        pb.Devices,
			consumed:       units.Energy(pb.TotalConsumedUJ),
			busyTicks:      pb.BusyTicks,
			idleTicks:      pb.IdleTicks,
			polls:          pb.Polls,
			pages:          pb.Pages,
			activations:    pb.Activations,
			powerUps:       pb.PowerUps,
			sms:            pb.SMSSent,
			calls:          pb.Calls,
			steps:          pb.EngineSteps,
			flowWalks:      pb.FlowWalks,
			settled:        pb.SettledBatches,
			settledSweeps:  pb.SettledSweeps,
			settledCharges: pb.SettledCharges,
			recharged:      units.Energy(pb.RechargedUJ),
			reclaimed:      units.Energy(pb.ReclaimedUJ),
			dead:           pb.Dead,
		}
		for _, pair := range pb.Lives {
			b.lives.AddBucket(int(pair[0]), uint64(pair[1]))
		}
		a.byName[pb.Name] = b
	}
	return a
}

// Merge combines every shard's partial report into the full fleet
// Report. The partials must form an exact partition of the device range
// and agree on the run identity; any gap, overlap or mismatch is a loud
// error. The merged report's canonical JSON is byte-identical to a
// single-process run of the same config, which the shard invariance
// suite asserts.
func Merge(parts []*Partial, scenario Scenario) (Report, error) {
	if len(parts) == 0 {
		return Report{}, fmt.Errorf("fleet: merge of zero partials")
	}
	ref := parts[0]
	if scenario == nil || scenario.Name() != ref.Scenario {
		name := "<nil>"
		if scenario != nil {
			name = scenario.Name()
		}
		return Report{}, fmt.Errorf("fleet: merge scenario %q does not match partials' %q", name, ref.Scenario)
	}
	sorted := make([]*Partial, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RangeLo < sorted[j].RangeLo })

	agg := newAggregate()
	covered := 0
	for _, p := range sorted {
		switch {
		case p.Scenario != ref.Scenario || p.Devices != ref.Devices || p.Seed != ref.Seed ||
			p.DurationMS != ref.DurationMS || p.BatteryUJ != ref.BatteryUJ ||
			p.EngineMode != ref.EngineMode || p.SettleMode != ref.SettleMode ||
			p.NetdSettleMode != ref.NetdSettleMode ||
			p.ChargerSettleMode != ref.ChargerSettleMode ||
			p.LifeResolutionMS != ref.LifeResolutionMS || p.DenseWatch != ref.DenseWatch ||
			p.ShardCount != ref.ShardCount:
			return Report{}, fmt.Errorf("fleet: partial %d/%d does not match partial %d/%d: "+
				"shards must come from one identically configured run",
				p.ShardIndex, p.ShardCount, ref.ShardIndex, ref.ShardCount)
		case p.RangeLo != covered:
			return Report{}, fmt.Errorf("fleet: shard coverage gap or overlap at device %d (next shard starts at %d)",
				covered, p.RangeLo)
		case p.Agg.Seen != p.RangeHi-p.RangeLo:
			return Report{}, fmt.Errorf("fleet: shard %d/%d saw %d devices for range [%d,%d)",
				p.ShardIndex, p.ShardCount, p.Agg.Seen, p.RangeLo, p.RangeHi)
		}
		covered = p.RangeHi
		agg.merge(p.unpack())
	}
	if covered != ref.Devices {
		return Report{}, fmt.Errorf("fleet: shards cover %d of %d devices", covered, ref.Devices)
	}

	cfg := Config{
		Devices:         ref.Devices,
		Seed:            ref.Seed,
		Duration:        units.Time(ref.DurationMS),
		Scenario:        scenario,
		BatteryCapacity: units.Energy(ref.BatteryUJ),
	}
	return agg.finish(cfg, 0), nil
}
