package fleet

// This file is the fleet's perf-observability hook: RunMetrics distills
// a Report into the handful of normalized diagnostics the continuous
// perf harness (internal/perfharness) samples and gates — so the
// harness reads structured numbers off the report instead of re-parsing
// its JSON, and a future field rename cannot silently zero a gate.

// RunMetrics is a report's perf-relevant diagnostics, normalized per
// simulated device-day so populations and horizons of different sizes
// record onto one comparable trend series.
type RunMetrics struct {
	// DeviceDays is the simulated coverage: devices × horizon, in days.
	DeviceDays float64
	// EngineSteps is the fleet-wide executed-instant count.
	EngineSteps uint64
	// InstantsPerDeviceDay is EngineSteps normalized by DeviceDays — the
	// quiescence/settlement engagement measure the busy-path
	// optimizations drove from ~1M down to thousands.
	InstantsPerDeviceDay float64
	// BucketInstantsPerDeviceDay breaks InstantsPerDeviceDay down per
	// scenario bucket (mean executed instants per device in the bucket,
	// normalized by the horizon in days) — the per-bucket form behind
	// the busy-bucket step ceiling.
	BucketInstantsPerDeviceDay map[string]float64
}

// RunMetrics derives the perf harness's metric sample from the report.
func (r Report) RunMetrics() RunMetrics {
	days := r.Duration.Seconds() / 86400
	m := RunMetrics{
		DeviceDays:  days * float64(r.Devices),
		EngineSteps: r.TotalEngineSteps,
	}
	if m.DeviceDays > 0 {
		m.InstantsPerDeviceDay = float64(r.TotalEngineSteps) / m.DeviceDays
	}
	if len(r.Buckets) > 0 && days > 0 {
		m.BucketInstantsPerDeviceDay = make(map[string]float64, len(r.Buckets))
		for _, b := range r.Buckets {
			m.BucketInstantsPerDeviceDay[b.Name] = float64(b.MeanSteps) / days
		}
	}
	return m
}
