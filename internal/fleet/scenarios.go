package fleet

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/label"
	"repro/internal/units"
)

func publicLabel() label.Label { return label.Public() }

// PollerScenario reproduces the §6.4 cooperative-poller workload at
// fleet scale: each device runs Pollers pairs of periodic network
// applications (the paper's RSS feed and pop3 mail checker) against the
// cooperative netd, with per-device phase and payload jitter drawn from
// the device's construction stream so no two phones poll in lockstep.
type PollerScenario struct {
	// Pollers is the number of polling applications per device
	// (default 2, the paper's pair).
	Pollers int
	// Interval is the poll period (default 60 s).
	Interval units.Time
	// Rate funds each poller's reserve (default 79 mW, §6.4's "enough
	// energy to activate the radio every two minutes").
	Rate units.Power
	// ReqBytes/RespBytes size each poll (defaults 300 B / 12 KiB).
	ReqBytes  int
	RespBytes int
	// RespJitterPct varies payloads per poll (default 20%).
	RespJitterPct int
}

// Name implements Scenario.
func (s PollerScenario) Name() string { return "poller" }

// Build implements Scenario.
func (s PollerScenario) Build(d *Device) error {
	n := s.Pollers
	if n <= 0 {
		n = 2
	}
	interval := s.Interval
	if interval == 0 {
		interval = 60 * units.Second
	}
	rate := s.Rate
	if rate == 0 {
		rate = units.Milliwatts(79)
	}
	req, resp := s.ReqBytes, s.RespBytes
	if req == 0 {
		req = 300
	}
	if resp == 0 {
		resp = 12 << 10
	}
	jitter := s.RespJitterPct
	if jitter == 0 {
		jitter = 20
	}
	for i := 0; i < n; i++ {
		phase := units.Time(d.Rand.Intn(int64(interval)))
		p, err := apps.NewPoller(d.Kernel, d.Kernel.Root, fmt.Sprintf("poller-%d", i),
			d.Kernel.KernelPriv(), d.Kernel.Battery(), apps.PollerConfig{
				Interval:      interval,
				Phase:         phase,
				Rate:          rate,
				ReqBytes:      req,
				RespBytes:     resp,
				RespJitterPct: jitter,
			})
		if err != nil {
			return err
		}
		poller := p
		d.Probes = append(d.Probes, func(res *DeviceResult) {
			res.Polls += int64(poller.Completed)
		})
	}
	return nil
}

// IdleScenario is the degenerate workload: a powered-on phone doing
// nothing but baseline draw. It is the purest demonstration of the
// next-event engine — a device-day simulates in a handful of engine
// instants — and the control group for battery-life sweeps.
type IdleScenario struct{}

// Name implements Scenario.
func (IdleScenario) Name() string { return "idle" }

// Build implements Scenario.
func (IdleScenario) Build(*Device) error { return nil }

// SpinnerScenario runs one energy-wrapped CPU hog per device (the Fig. 9
// spinner), funded at Rate from the battery — a busy-CPU contrast to
// IdleScenario for utilization sweeps.
type SpinnerScenario struct {
	// Rate funds the spinner (default 68.5 mW, half the Dream CPU).
	Rate units.Power
}

// Name implements Scenario.
func (SpinnerScenario) Name() string { return "spinner" }

// Build implements Scenario.
func (s SpinnerScenario) Build(d *Device) error {
	rate := s.Rate
	if rate == 0 {
		rate = units.Microwatt * 68500
	}
	_, err := apps.NewSpinner(d.Kernel, d.Kernel.Root, "hog",
		d.Kernel.KernelPriv(), d.Kernel.Battery(), rate, publicLabel())
	return err
}

// Scenarios returns the built-in scenarios by name (the CLI's -scenario
// choices).
func Scenarios() map[string]Scenario {
	return map[string]Scenario{
		"poller":         PollerScenario{},
		"idle":           IdleScenario{},
		"spinner":        SpinnerScenario{},
		"dayinthelife":   DayInTheLife(),
		"weekinthelife":  WeekInTheLife(),
		"monthinthelife": MonthInTheLife(),
		"adversarial":    AdversarialCohorts(),
	}
}
