package fleet

import (
	"repro/internal/units"
)

// This file assembles the week-in-the-life population: seven simulated
// days per device with weekday/weekend phase alternation, over a
// heterogeneous hardware and habit population. Unlike the 24 h
// day-in-the-life mix — three identical cohorts — every device draws
// its own parameters from its construction stream: battery capacity
// (through the Provisioner hook, fixed before the kernel is built),
// poller cadence, commute length, and screen habit. Battery capacities
// straddle the energy a week of baseline draw costs (≈423 kJ at the
// Dream's 699 mW floor), so deaths arrive heterogeneously across days
// five through seven — the lifetime-scale argument the paper's reserves
// are for.
//
// Every phase is scheduled to end — including its jitter, teardown,
// netd tails and the radio's fixed 20 s idle timeout — hours before its
// day's midnight, so at each day boundary the device is checkpoint-
// quiet: no live workload objects, no active taps, no dynamic engine
// events. That is the property fleet checkpointing leans on (epoch
// files are written at sim-day boundaries), and the restore path
// verifies it loudly rather than assuming it.

// Per-device parameter ranges (drawn uniformly per device).
const (
	weekBatteryBase = 400 * units.Kilojoule
	weekBatterySpan = 330 * units.Kilojoule
)

// WeekInTheLife returns the 7-day heterogeneous fleet scenario.
func WeekInTheLife() Scenario { return weekScenario{days: 7} }

// weekScenario implements Scenario and Provisioner.
type weekScenario struct {
	days int
}

// Name implements Scenario.
func (weekScenario) Name() string { return "weekinthelife" }

// Provision implements Provisioner: the per-device battery draw. It
// derives its own splitmix stream from the device seed so construction
// randomness (phase jitter, cohort assignment) is untouched.
func (weekScenario) Provision(_ int, seed int64) DeviceProvision {
	r := newSplitmix(seed ^ 0x5EED_BA77_E41) // distinct stream from Build's
	return DeviceProvision{
		BatteryCapacity: weekBatteryBase + units.Energy(r.Intn(int64(weekBatterySpan))),
	}
}

// Build implements Scenario: draw the device's cohort and habits, then
// compose seven days of phases.
func (w weekScenario) Build(d *Device) error {
	r := d.Rand
	cohort := r.Intn(10)

	// Habit draws happen for every cohort (whether or not the cohort
	// uses them) so the construction stream stays aligned and a device's
	// cohort alone decides its behaviour.
	pollEvery := 8*units.Minute + units.Time(r.Intn(int64(8*units.Minute)))
	commute := 40*units.Minute + units.Time(r.Intn(int64(50*units.Minute)))
	screenHabit := 5*units.Minute + units.Time(r.Intn(int64(10*units.Minute)))

	days := w.days
	if days <= 0 {
		days = 7
	}
	var label string
	var phases []Phase
	switch {
	case cohort < 5:
		label = "week-idle"
		phases = idleWeek(days, screenHabit)
	case cohort < 8:
		label = "week-commuter"
		phases = commuterWeek(days, pollEvery, commute, screenHabit)
	default:
		label = "week-chatty"
		phases = chattyWeek(days, screenHabit)
	}
	d.Scenario = label
	return Compose{Label: label, Phases: phases}.Build(d)
}

// weekend reports whether day d (0-based, day 0 = Monday) is Saturday
// or Sunday.
func weekend(day int) bool { return day%7 >= 5 }

// idleWeek: a phone that lives in a pocket. Weekdays it is glanced at
// morning and evening; weekends it gets a longer couch session.
func idleWeek(days int, screen units.Time) []Phase {
	var ps []Phase
	for day := 0; day < days; day++ {
		base := units.Time(day) * 24 * units.Hour
		if weekend(day) {
			ps = append(ps,
				Phase{Workload: Screen{}, Start: base + 10*units.Hour, Duration: screen * 2, Jitter: 2 * units.Hour},
				Phase{Workload: Screen{}, Start: base + 19*units.Hour, Duration: screen, Jitter: 2 * units.Hour},
			)
			continue
		}
		ps = append(ps,
			Phase{Workload: Screen{}, Start: base + 7*units.Hour + 30*units.Minute, Duration: screen, Jitter: 30 * units.Minute},
			Phase{Workload: Screen{}, Start: base + 18*units.Hour, Duration: screen, Jitter: 2 * units.Hour},
		)
	}
	return ps
}

// commuterWeek: the §6.4 background pair runs during the weekday
// commutes at the device's own cadence, with a lunchtime browse; the
// weekend drops the commutes for an evening browse.
func commuterWeek(days int, pollEvery, commute, screen units.Time) []Phase {
	pollers := Pollers{Interval: pollEvery}
	var ps []Phase
	for day := 0; day < days; day++ {
		base := units.Time(day) * 24 * units.Hour
		if weekend(day) {
			ps = append(ps,
				Phase{Workload: Screen{}, Start: base + 11*units.Hour, Duration: screen, Jitter: 2 * units.Hour},
				Phase{Workload: Browse{Pages: 10}, Start: base + 20*units.Hour, Duration: 30 * units.Minute, Jitter: units.Hour},
			)
			continue
		}
		ps = append(ps,
			Phase{Workload: Screen{}, Start: base + 7*units.Hour, Duration: screen, Jitter: 20 * units.Minute},
			Phase{Workload: pollers, Start: base + 7*units.Hour + 30*units.Minute, Duration: commute, Jitter: 30 * units.Minute},
			Phase{Workload: Browse{Pages: 8}, Start: base + 12*units.Hour + 30*units.Minute, Duration: 25 * units.Minute, Jitter: 45 * units.Minute},
			Phase{Workload: pollers, Start: base + 17*units.Hour + 30*units.Minute, Duration: commute, Jitter: 30 * units.Minute},
			Phase{Workload: Screen{}, Start: base + 20*units.Hour, Duration: screen, Jitter: 90 * units.Minute},
		)
	}
	return ps
}

// chattyWeek: the ARM9 path. Weekdays carry a midday call and an
// afternoon SMS burst; weekends add a second call and a browse.
func chattyWeek(days int, screen units.Time) []Phase {
	var ps []Phase
	for day := 0; day < days; day++ {
		base := units.Time(day) * 24 * units.Hour
		if weekend(day) {
			ps = append(ps,
				Phase{Workload: Screen{}, Start: base + 10*units.Hour, Duration: screen, Jitter: units.Hour},
				Phase{Workload: Call{CallTime: 4 * units.Minute}, Start: base + 11*units.Hour, Duration: 6 * units.Minute, Jitter: units.Hour},
				Phase{Workload: Browse{Pages: 12}, Start: base + 15*units.Hour, Duration: 30 * units.Minute, Jitter: units.Hour},
				Phase{Workload: Call{CallTime: 3 * units.Minute}, Start: base + 19*units.Hour, Duration: 5 * units.Minute, Jitter: 90 * units.Minute},
				Phase{Workload: SMSBurst{Count: 5, Interval: 40 * units.Second}, Start: base + 21*units.Hour, Duration: 10 * units.Minute, Jitter: units.Hour},
			)
			continue
		}
		ps = append(ps,
			Phase{Workload: Screen{}, Start: base + 7*units.Hour + 30*units.Minute, Duration: screen, Jitter: 30 * units.Minute},
			Phase{Workload: Call{CallTime: 2 * units.Minute}, Start: base + 12*units.Hour, Duration: 5 * units.Minute, Jitter: units.Hour},
			Phase{Workload: SMSBurst{Count: 4, Interval: 45 * units.Second}, Start: base + 15*units.Hour, Duration: 10 * units.Minute, Jitter: units.Hour},
			Phase{Workload: Browse{Pages: 6}, Start: base + 18*units.Hour + 30*units.Minute, Duration: 20 * units.Minute, Jitter: units.Hour},
			Phase{Workload: Screen{}, Start: base + 21*units.Hour, Duration: screen, Jitter: 30 * units.Minute},
		)
	}
	return ps
}
