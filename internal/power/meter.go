package power

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// MeterSamplePeriod mirrors the paper's measurement setup: "we sampled
// both voltage and current approximately every 200 ms" (§4.2).
const MeterSamplePeriod = 200 * units.Millisecond

// Meter reproduces the Agilent E3644A bench supply: it periodically
// samples cumulative consumed energy and derives average power per
// sample window. Experiments attach it to a kernel's consumed-energy
// counter and read the resulting series as "measured" power, exactly
// the role the DC supply plays in Figures 4, 12 and 13.
type Meter struct {
	series   *trace.Series
	read     func() units.Energy
	last     units.Energy
	lastTime units.Time
	task     *sim.Task
}

// NewMeter attaches a meter to the engine, sampling the given cumulative
// energy counter every MeterSamplePeriod. The series records average
// power (in µW) over each window, timestamped at the window end.
func NewMeter(e *sim.Engine, name string, read func() units.Energy) *Meter {
	m := &Meter{
		series:   trace.NewSeries(name, "µW"),
		read:     read,
		last:     read(),
		lastTime: e.Now(),
	}
	m.task = e.Every("meter:"+name, MeterSamplePeriod, func(e *sim.Engine) { m.sample(e) })
	return m
}

func (m *Meter) sample(e *sim.Engine) {
	now := e.Now()
	dt := now - m.lastTime
	if dt <= 0 {
		return
	}
	cur := m.read()
	p := (cur - m.last).DividedBy(dt)
	m.series.Add(now, int64(p))
	m.last = cur
	m.lastTime = now
}

// Stop detaches the meter from the engine.
func (m *Meter) Stop() { m.task.Stop() }

// Series returns the recorded power series.
func (m *Meter) Series() *trace.Series { return m.series }

// TotalEnergy returns the cumulative energy observed since attachment.
func (m *Meter) TotalEnergy() units.Energy { return m.read() - 0 }

// AveragePower returns the mean power over the recorded series, or 0 if
// no samples were taken.
func (m *Meter) AveragePower() units.Power {
	if m.series.Len() == 0 || m.lastTime == 0 {
		return 0
	}
	return (m.read() - 0).DividedBy(m.lastTime)
}
