// Package power models device power draw the way the Cinder paper does
// (§4.2): a set of per-component power states measured offline, combined
// with state durations to estimate energy. It provides the HTC Dream
// profile with the paper's published constants, a laptop profile for the
// image-viewer experiment (§6.2), and a power meter that reproduces the
// Agilent E3644A sampling setup (≈200 ms voltage/current samples).
package power

import (
	"repro/internal/units"
)

// Profile holds the offline-measured power model of one device, the
// analogue of the paper's state×duration model built from the Agilent
// measurements.
type Profile struct {
	// Name identifies the device.
	Name string

	// Idle is the device's baseline draw with screen off and radio
	// asleep. The Dream idles at about 699 mW under Cinder (§4.2).
	Idle units.Power
	// Backlight is the additional draw with the backlight on (555 mW on
	// the Dream).
	Backlight units.Power
	// CPUActive is the additional draw of a spinning CPU (137 mW on the
	// Dream); the experiments in §6 use this as the cost of 100 % CPU.
	CPUActive units.Power
	// MemoryBoundExtraPct is the percentage increase of CPU draw for
	// memory-intensive instruction streams (13 % on the Dream). The
	// paper's model "assumes the worst case" when instruction mix is
	// unknown; WorstCaseCPU applies this.
	MemoryBoundExtraPct int

	// RadioActivationEnergy is the average energy consumed above
	// baseline by bringing the radio from its lowest power state to
	// active and back to sleep, 9.5 J on the Dream (Fig. 4). Min and
	// Max bound the outliers the paper observed (8.8–11.9 J).
	RadioActivationEnergy    units.Energy
	RadioActivationEnergyMin units.Energy
	RadioActivationEnergyMax units.Energy
	// RadioIdleTimeout is the inactivity period after which the closed
	// ARM9 returns the radio to low power: 20 s, not changeable from
	// the application processor (§4.3).
	RadioIdleTimeout units.Time
	// RadioRampTime is the duration of the transition from sleep to
	// active (the initial spike in Fig. 4).
	RadioRampTime units.Time
	// RadioRampExtra is the extra draw during the ramp.
	RadioRampExtra units.Power
	// RadioActiveExtra is the extra draw while the radio is in the
	// active plateau awaiting its idle timeout.
	RadioActiveExtra units.Power
	// RadioPerPacket and RadioPerKiB are the marginal costs of
	// transmission once active (per packet, and per KiB of payload),
	// tuned so Fig. 3's flow-energy grid reproduces (≈10.5–17.6 J for
	// 10 s echo flows).
	RadioPerPacket units.Energy
	RadioPerKiB    units.Energy

	// NetBandwidth is the sustained data-path throughput in bytes per
	// second, used to convert transfer sizes to transfer times.
	NetBandwidth int64

	// BatteryCapacity is the battery the profile's experiments assume.
	BatteryCapacity units.Energy
}

// Dream returns the HTC Dream (Android G1) profile with the constants
// published in §4.2–§4.3 of the paper.
func Dream() Profile {
	return Profile{
		Name:                     "HTC Dream (MSM7201A)",
		Idle:                     units.Milliwatts(699),
		Backlight:                units.Milliwatts(555),
		CPUActive:                units.Milliwatts(137),
		MemoryBoundExtraPct:      13,
		RadioActivationEnergy:    units.Joules(9.5),
		RadioActivationEnergyMin: units.Joules(8.8),
		RadioActivationEnergyMax: units.Joules(11.9),
		RadioIdleTimeout:         20 * units.Second,
		RadioRampTime:            2 * units.Second,
		// The ramp and plateau split the 9.5 J activation overhead:
		// 2 s × 1.2 W = 2.4 J ramp + 20 s × 355 mW = 7.1 J plateau.
		RadioRampExtra:   units.Milliwatts(1200),
		RadioActiveExtra: units.Milliwatts(355),
		// Marginal costs tuned to Fig. 3, which measures UDP *echo*
		// flows (each packet comes back, doubling the data cost): a
		// 10 s 1500 B × 40 pps echo flow adds ≈5 J of data cost over
		// the ≈13 J flow baseline (total ≈17.5 J, paper max 17.6 J),
		// while a 1 B trickle stays near the paper's 10.5 J minimum.
		RadioPerPacket:  1 * units.Millijoule,
		RadioPerKiB:     3584 * units.Microjoule, // 3.5 µJ/B
		NetBandwidth:    240 << 10,               // ≈240 KiB/s EDGE-class data path
		BatteryCapacity: 15 * units.Kilojoule,
	}
}

// LaptopT60p returns the Lenovo T60p profile used for the image-viewer
// experiment (§6.2). The paper publishes no absolute numbers for the
// laptop; the profile chooses values that preserve the experiment's
// governing ratios (reserve fill rate vs. per-image download cost).
func LaptopT60p() Profile {
	return Profile{
		Name:                "Lenovo T60p",
		Idle:                units.Watts(18),
		Backlight:           units.Watts(4),
		CPUActive:           units.Watts(12),
		MemoryBoundExtraPct: 8,
		// 802.11-class interface: negligible activation cost relative
		// to the data path, always-on semantics.
		RadioActivationEnergy:    500 * units.Millijoule,
		RadioActivationEnergyMin: 400 * units.Millijoule,
		RadioActivationEnergyMax: 700 * units.Millijoule,
		RadioIdleTimeout:         100 * units.Millisecond,
		RadioRampTime:            50 * units.Millisecond,
		RadioRampExtra:           units.Watts(1),
		RadioActiveExtra:         units.Milliwatts(800),
		RadioPerPacket:           50 * units.Microjoule,
		// Per-KiB cost such that a 700 KiB image costs ≈143 mJ of
		// download energy — the scale Fig. 10/11's 0–200 mJ reserve
		// axis implies.
		RadioPerKiB:     205 * units.Microjoule,
		NetBandwidth:    2 << 20, // 2 MiB/s
		BatteryCapacity: 200 * units.Kilojoule,
	}
}

// WorstCaseCPU returns the CPU power the model bills per the paper's
// worst-case assumption (all memory-intensive instructions): CPUActive
// scaled by MemoryBoundExtraPct.
func (p Profile) WorstCaseCPU() units.Power {
	return p.CPUActive + p.CPUActive*units.Power(p.MemoryBoundExtraPct)/100
}

// ActivationPlateauEnergy returns the energy of the post-ramp plateau
// implied by the profile's ramp/active split: RadioActiveExtra over the
// idle timeout.
func (p Profile) ActivationPlateauEnergy() units.Energy {
	return p.RadioActiveExtra.Over(p.RadioIdleTimeout)
}

// RampEnergy returns the ramp phase's energy above baseline.
func (p Profile) RampEnergy() units.Energy {
	return p.RadioRampExtra.Over(p.RadioRampTime)
}

// TransferTime returns the time to move n bytes at the profile's
// sustained bandwidth, rounded up to the next millisecond.
func (p Profile) TransferTime(nBytes int64) units.Time {
	if nBytes <= 0 {
		return 0
	}
	ms := (nBytes*1000 + p.NetBandwidth - 1) / p.NetBandwidth
	return units.Time(ms)
}

// PacketEnergy returns the marginal data-path cost of one packet of the
// given size, excluding activation and plateau costs.
func (p Profile) PacketEnergy(sizeBytes int) units.Energy {
	return p.RadioPerPacket + units.Energy(sizeBytes)*p.RadioPerKiB/1024
}
