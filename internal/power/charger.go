package power

import (
	"repro/internal/units"
)

// Charger models a wall or USB power source the way the Profile models
// drains: a constant-rate state measured offline. The paper's
// experiments run on battery (discharge-only), but its lifetime-scale
// argument — reserves governing a device across days — only closes once
// the battery level is non-monotone, so the month-in-the-life scenarios
// plug the device in overnight.
//
// The rate is the power delivered *into the battery*, i.e. already net
// of charge-circuit losses; the device's own draw continues to come out
// of the battery through the existing tap/baseline paths, so a plugged
// device charges at (Rate − draw) and the level trajectory stays exact
// integer arithmetic on both sides.
type Charger struct {
	// Name identifies the supply class.
	Name string
	// Rate is the sustained charge power delivered into the battery.
	Rate units.Power
}

// USBCharger returns a USB 2.0 500 mA @ 5 V supply (2.5 W nominal),
// derated to 2 W delivered for charge-circuit losses — the slow
// trickle-charge case.
func USBCharger() Charger {
	return Charger{Name: "USB 500mA", Rate: units.Watts(2)}
}

// ACCharger returns the HTC Dream's stock 1 A @ 5 V wall adapter (5 W
// nominal), derated to 4 W delivered — the overnight fast-charge case.
// At 4 W a depleted 15 kJ Dream battery refills in just over an hour.
func ACCharger() Charger {
	return Charger{Name: "AC 1A", Rate: units.Watts(4)}
}

// LaptopCharger returns a 65 W laptop supply derated to 55 W delivered,
// matching the T60p profile's 200 kJ battery (≈1 h to full).
func LaptopCharger() Charger {
	return Charger{Name: "AC 65W", Rate: units.Watts(55)}
}

// TimeToFull returns the time to charge deficit µJ at the charger's
// rate assuming zero concurrent draw, rounded up to the next
// millisecond. Zero deficit (or an unplugged/zero-rate charger charging
// anything) returns 0.
func (c Charger) TimeToFull(deficit units.Energy) units.Time {
	if deficit <= 0 || c.Rate <= 0 {
		return 0
	}
	// Energy is µJ, Power is µW: t_ms = ceil(deficit·1000 / rate).
	num := int64(deficit)*1000 + int64(c.Rate) - 1
	return units.Time(num / int64(c.Rate))
}
