package power

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestDreamConstantsMatchPaper(t *testing.T) {
	p := Dream()
	if p.Idle != units.Milliwatts(699) {
		t.Errorf("Idle = %v, want 699 mW", p.Idle)
	}
	if p.Backlight != units.Milliwatts(555) {
		t.Errorf("Backlight = %v, want 555 mW", p.Backlight)
	}
	if p.CPUActive != units.Milliwatts(137) {
		t.Errorf("CPUActive = %v, want 137 mW", p.CPUActive)
	}
	if p.RadioActivationEnergy != units.Joules(9.5) {
		t.Errorf("RadioActivationEnergy = %v, want 9.5 J", p.RadioActivationEnergy)
	}
	if p.RadioIdleTimeout != 20*units.Second {
		t.Errorf("RadioIdleTimeout = %v, want 20 s", p.RadioIdleTimeout)
	}
	if p.BatteryCapacity != 15*units.Kilojoule {
		t.Errorf("BatteryCapacity = %v, want 15 kJ", p.BatteryCapacity)
	}
}

func TestActivationSplitSumsToPublishedOverhead(t *testing.T) {
	// Ramp energy + plateau energy must equal the 9.5 J the paper
	// measured for a single activation (Fig. 4).
	p := Dream()
	total := p.RampEnergy() + p.ActivationPlateauEnergy()
	if total != p.RadioActivationEnergy {
		t.Fatalf("ramp %v + plateau %v = %v, want %v",
			p.RampEnergy(), p.ActivationPlateauEnergy(), total, p.RadioActivationEnergy)
	}
	if p.RadioActivationEnergyMin > p.RadioActivationEnergy ||
		p.RadioActivationEnergy > p.RadioActivationEnergyMax {
		t.Fatal("activation bounds do not bracket the mean")
	}
}

func TestWorstCaseCPU(t *testing.T) {
	p := Dream()
	want := units.Milliwatts(137) + units.Milliwatts(137)*13/100
	if got := p.WorstCaseCPU(); got != want {
		t.Fatalf("WorstCaseCPU = %v, want %v", got, want)
	}
}

func TestTransferTime(t *testing.T) {
	p := Dream()
	if got := p.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	// One second of bandwidth takes one second.
	if got := p.TransferTime(p.NetBandwidth); got != units.Second {
		t.Fatalf("TransferTime(bw) = %v, want 1 s", got)
	}
	// Rounds up.
	if got := p.TransferTime(1); got != units.Millisecond {
		t.Fatalf("TransferTime(1B) = %v, want 1 ms", got)
	}
}

func TestPacketEnergy(t *testing.T) {
	p := Dream()
	one := p.PacketEnergy(1)
	big := p.PacketEnergy(1500)
	if one != p.RadioPerPacket+p.RadioPerKiB/1024 {
		t.Fatalf("PacketEnergy(1) = %v", one)
	}
	if big <= one {
		t.Fatal("1500 B packet not costlier than 1 B")
	}
	// Fig. 3's data cost scale: a full 10 s 1500 B × 40 pps *echo* flow
	// (800 packets round trip) should add roughly 4–6 J of marginal
	// cost over the ≈13 J flow baseline.
	flow := big * 800
	if flow < 4*units.Joule || flow > 6*units.Joule {
		t.Fatalf("800 × 1500 B packets = %v, want 4–6 J", flow)
	}
}

func TestMeterSamplesEvery200ms(t *testing.T) {
	e := sim.NewEngine(1)
	var consumed units.Energy
	m := NewMeter(e, "dev", func() units.Energy { return consumed })
	// Consume at a steady 1 W: 1 mJ per ms.
	e.Every("load", units.Millisecond, func(*sim.Engine) {
		consumed += units.Millijoule
	})
	e.Run(2 * units.Second)
	pts := m.Series().Points()
	if len(pts) != 10 {
		t.Fatalf("samples = %d, want 10", len(pts))
	}
	for _, p := range pts {
		if p.T%MeterSamplePeriod != 0 {
			t.Fatalf("sample at %v not on the 200 ms grid", p.T)
		}
		got := units.Power(p.V)
		if got < units.Watts(0.99) || got > units.Watts(1.01) {
			t.Fatalf("sample power = %v, want ≈1 W", got)
		}
	}
}

func TestMeterAveragePower(t *testing.T) {
	e := sim.NewEngine(1)
	var consumed units.Energy
	m := NewMeter(e, "dev", func() units.Energy { return consumed })
	e.Every("load", 10*units.Millisecond, func(*sim.Engine) {
		consumed += 5 * units.Millijoule // 500 mW
	})
	e.Run(10 * units.Second)
	avg := m.AveragePower()
	if avg < units.Milliwatts(495) || avg > units.Milliwatts(505) {
		t.Fatalf("AveragePower = %v, want ≈500 mW", avg)
	}
}

func TestMeterStop(t *testing.T) {
	e := sim.NewEngine(1)
	var consumed units.Energy
	m := NewMeter(e, "dev", func() units.Energy { return consumed })
	e.Run(units.Second)
	n := m.Series().Len()
	m.Stop()
	e.Run(units.Second)
	if m.Series().Len() != n {
		t.Fatal("meter sampled after Stop")
	}
}

func TestLaptopProfileSane(t *testing.T) {
	p := LaptopT60p()
	if p.Idle <= Dream().Idle {
		t.Error("laptop idle should exceed phone idle")
	}
	if p.RadioActivationEnergy >= Dream().RadioActivationEnergy {
		t.Error("WiFi activation should be far below cellular")
	}
	if p.NetBandwidth <= Dream().NetBandwidth {
		t.Error("laptop bandwidth should exceed EDGE")
	}
}
