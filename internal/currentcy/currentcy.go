// Package currentcy implements the comparison baseline the Cinder paper
// positions itself against: ECOSystem's "currentcy" abstraction
// [Zeng 2002, 2003]. Currentcy unifies device power states into a single
// spendable unit, allocated epoch by epoch to *flat* task containers —
// "a flat hierarchy of energy principals" (§2.1).
//
// The model here follows the published design: a target battery drain
// rate is divided among tasks in proportion to their shares each
// allocation epoch; unspent currentcy accumulates per task up to a cap;
// processes spend from their task's single balance. Two structural
// limitations — the ones §2.3 calls out — follow directly and are
// demonstrated by the "baseline" experiment and this package's tests:
//
//   - no subdivision: a browser and its plugin share one task balance,
//     so the plugin can starve the browser ("it has no way to prevent
//     its plugins from consuming its own resources once they are
//     spawned");
//   - no delegation: tasks cannot pool their allocations, so two
//     background applications can never jointly afford a radio
//     activation that each alone cannot ("prior systems do not permit
//     delegation").
package currentcy

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// DefaultEpoch is the allocation period; ECOSystem allocated every
// "energy epoch".
const DefaultEpoch = units.Second

// ErrBroke reports a spend exceeding the task's balance.
var ErrBroke = errors.New("currentcy: insufficient currentcy")

// Task is one flat energy principal: a group of related processes
// sharing a single balance.
type Task struct {
	name string
	// share is the task's proportional weight in each epoch's
	// allocation.
	share int64
	// cap bounds accumulation (ECOSystem's per-task cap that keeps
	// hoarding bounded; there is no equivalent of Cinder's taps).
	cap     units.Energy
	balance units.Energy
	spent   units.Energy
	denied  int64
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Balance returns the current currentcy balance.
func (t *Task) Balance() units.Energy { return t.balance }

// Spent returns the task's lifetime consumption.
func (t *Task) Spent() units.Energy { return t.spent }

// Denied returns the count of refused spends.
func (t *Task) Denied() int64 { return t.denied }

// Spend consumes currentcy from the task balance. Any process in the
// task may call it — that is precisely the isolation gap: there is no
// way to wall off a subset of the task's processes.
func (t *Task) Spend(amount units.Energy) error {
	if amount < 0 {
		panic("currentcy: negative spend")
	}
	if t.balance < amount {
		t.denied++
		return fmt.Errorf("%w: task %q has %v, needs %v", ErrBroke, t.name, t.balance, amount)
	}
	t.balance -= amount
	t.spent += amount
	return nil
}

// CanSpend reports whether a spend would be admitted.
func (t *Task) CanSpend(amount units.Energy) bool { return t.balance >= amount }

// System is one ECOSystem instance.
type System struct {
	targetRate units.Power
	epoch      units.Time
	tasks      []*Task
	totalShare int64
	allocated  units.Energy
	carry      int64
}

// New creates a system that allocates targetRate worth of currentcy per
// unit time across its tasks (ECOSystem derives the rate from a target
// battery lifetime).
func New(targetRate units.Power, epoch units.Time) *System {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	return &System{targetRate: targetRate, epoch: epoch}
}

// Epoch returns the allocation period.
func (s *System) Epoch() units.Time { return s.epoch }

// AddTask registers a task with a proportional share and accumulation
// cap.
func (s *System) AddTask(name string, share int64, cap units.Energy) *Task {
	if share <= 0 {
		panic("currentcy: non-positive share")
	}
	t := &Task{name: name, share: share, cap: cap}
	s.tasks = append(s.tasks, t)
	s.totalShare += share
	return t
}

// Tasks returns the registered tasks.
func (s *System) Tasks() []*Task {
	out := make([]*Task, len(s.tasks))
	copy(out, s.tasks)
	return out
}

// Allocate runs one epoch: each task receives its proportional slice of
// targetRate × epoch, clamped to its cap. Unused allocation above the
// cap is simply lost — there is no battery to return it to, another
// contrast with the reserve graph's conservation.
func (s *System) Allocate() {
	if s.totalShare == 0 {
		return
	}
	var total units.Energy
	total, s.carry = s.targetRate.OverRem(s.epoch, s.carry)
	for _, t := range s.tasks {
		slice := total * units.Energy(t.share) / units.Energy(s.totalShare)
		t.balance += slice
		if t.balance > t.cap {
			t.balance = t.cap
		}
		s.allocated += slice
	}
}

// Allocated returns the lifetime currentcy handed out.
func (s *System) Allocated() units.Energy { return s.allocated }

// TotalSpent sums task consumption.
func (s *System) TotalSpent() units.Energy {
	var sum units.Energy
	for _, t := range s.tasks {
		sum += t.spent
	}
	return sum
}
