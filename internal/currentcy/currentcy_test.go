package currentcy

import (
	"errors"
	"testing"

	"repro/internal/units"
)

func TestAllocationProportionalToShares(t *testing.T) {
	s := New(units.Milliwatts(100), units.Second)
	a := s.AddTask("a", 3, units.Kilojoule)
	b := s.AddTask("b", 1, units.Kilojoule)
	for i := 0; i < 10; i++ {
		s.Allocate()
	}
	// 100 mW × 10 s = 1 J split 3:1.
	if a.Balance() != 750*units.Millijoule {
		t.Fatalf("a = %v, want 750 mJ", a.Balance())
	}
	if b.Balance() != 250*units.Millijoule {
		t.Fatalf("b = %v, want 250 mJ", b.Balance())
	}
}

func TestSpendAndDenial(t *testing.T) {
	s := New(units.Milliwatts(100), units.Second)
	a := s.AddTask("a", 1, units.Kilojoule)
	s.Allocate() // 100 mJ
	if err := a.Spend(60 * units.Millijoule); err != nil {
		t.Fatal(err)
	}
	err := a.Spend(60 * units.Millijoule)
	if !errors.Is(err, ErrBroke) {
		t.Fatalf("overspend err = %v", err)
	}
	if a.Denied() != 1 {
		t.Fatalf("denied = %d", a.Denied())
	}
	if a.Spent() != 60*units.Millijoule {
		t.Fatalf("spent = %v", a.Spent())
	}
	if a.CanSpend(50 * units.Millijoule) {
		t.Fatal("CanSpend over balance")
	}
	if !a.CanSpend(40 * units.Millijoule) {
		t.Fatal("CanSpend under balance refused")
	}
}

func TestCapBoundsAccumulation(t *testing.T) {
	s := New(units.Milliwatts(100), units.Second)
	a := s.AddTask("a", 1, 250*units.Millijoule)
	for i := 0; i < 100; i++ {
		s.Allocate() // 10 J offered, cap 250 mJ
	}
	if a.Balance() != 250*units.Millijoule {
		t.Fatalf("balance = %v, want cap", a.Balance())
	}
}

func TestNoSubdivision(t *testing.T) {
	// The §2.3 browser/plugin problem: both run in one task, so an
	// aggressive plugin drains the shared balance and the browser's own
	// spends are denied. (Contrast core's TestBrowserPluginIsolation.)
	s := New(units.Milliwatts(690), units.Second)
	browserTask := s.AddTask("browser+plugin", 1, units.Kilojoule)
	var browserDenied int
	for epoch := 0; epoch < 30; epoch++ {
		s.Allocate()
		// Plugin greedily burns everything available each epoch.
		for browserTask.CanSpend(10 * units.Millijoule) {
			if err := browserTask.Spend(10 * units.Millijoule); err != nil {
				break
			}
		}
		// Browser then tries to do its own work.
		if err := browserTask.Spend(50 * units.Millijoule); err != nil {
			browserDenied++
		}
	}
	if browserDenied < 25 {
		t.Fatalf("browser denied only %d/30 epochs — plugin failed to starve it?!", browserDenied)
	}
}

func TestNoDelegation(t *testing.T) {
	// The §2.3 radio problem: two tasks each funded at half the
	// activation cost per interval can never afford the 9.5 J power-up,
	// because currentcy has no transfer primitive. (Contrast netd's
	// TestCooperativePoolingSynchronizesApps.)
	activation := units.Joules(9.5)
	s := New(units.Milliwatts(158), units.Second) // jointly enough per minute
	mail := s.AddTask("mail", 1, activation)      // cap even lets them save a full activation
	rss := s.AddTask("rss", 1, activation)
	activations := 0
	for epoch := 0; epoch < 20*60; epoch++ { // 20 minutes of 1 s epochs
		s.Allocate()
		for _, task := range []*Task{mail, rss} {
			if task.CanSpend(activation) {
				if err := task.Spend(activation); err == nil {
					activations++
				}
			}
		}
	}
	// Each task alone accumulates 79 mW: one activation per ≈120 s —
	// at MOST 10 activations each in 20 min, and crucially they can
	// never merge: pooled Cinder gets ≈20 synchronized activations for
	// the same total budget serving both apps at once.
	if activations > 20 {
		t.Fatalf("activations = %d: currentcy should not beat pooling", activations)
	}
	if activations == 0 {
		t.Fatal("tasks never saved enough individually (cap mis-set)")
	}
	// The structural point: there is no operation to move balance
	// between mail and rss at all — the type has no transfer method.
}

func TestAllocatedAccounting(t *testing.T) {
	s := New(units.Watt, units.Second)
	s.AddTask("a", 1, units.Kilojoule)
	s.Allocate()
	s.Allocate()
	if s.Allocated() != 2*units.Joule {
		t.Fatalf("allocated = %v", s.Allocated())
	}
	if s.TotalSpent() != 0 {
		t.Fatalf("spent = %v", s.TotalSpent())
	}
}

func TestZeroTaskAllocateNoop(t *testing.T) {
	s := New(units.Watt, units.Second)
	s.Allocate()
	if s.Allocated() != 0 {
		t.Fatal("allocation with no tasks")
	}
}
