package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/units"
)

// firing is one callback invocation, identified for log comparison.
type firing struct {
	At units.Time
	ID string
}

// buildRandomSchedule installs an identical randomized workload on an
// engine: periodic tasks (some self-stopping, some phased), one-shot
// events, events that spawn events and tasks, and mid-run stops of other
// tasks. All randomness comes from the shared seed so both engine modes
// construct the same schedule.
func buildRandomSchedule(e *Engine, seed int64, log *[]firing) {
	rng := rand.New(rand.NewSource(seed))
	record := func(id string) func(*Engine) {
		return func(e *Engine) { *log = append(*log, firing{e.Now(), id}) }
	}
	var tasks []*Task
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("task%d", i)
		period := units.Time(1+rng.Intn(40)) * units.Millisecond
		phase := units.Time(rng.Intn(30)) * units.Millisecond
		tasks = append(tasks, e.EveryPhased(id, period, phase, record(id)))
	}
	// A self-stopping task.
	count := 0
	var selfStop *Task
	selfStop = e.Every("self-stop", 7*units.Millisecond, func(e *Engine) {
		*log = append(*log, firing{e.Now(), "self-stop"})
		count++
		if count == 5 {
			selfStop.Stop()
		}
	})
	// Events, including cascades and task manipulation.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("ev%d", i)
		at := units.Time(rng.Intn(400))
		kill := rng.Intn(len(tasks))
		spawnAt := at + units.Time(rng.Intn(50))
		e.At(at, func(e *Engine) {
			*log = append(*log, firing{e.Now(), id})
			if spawnAt >= e.Now() {
				e.At(spawnAt, record(id+"-child"))
			}
			if kill%3 == 0 {
				tasks[kill].Stop()
			}
			if kill%4 == 0 {
				e.Every(id+"-spawned", 11*units.Millisecond, record(id+"-spawned"))
			}
		})
	}
}

// TestModeEquivalenceRandomSchedules is the engine-level property test:
// arbitrary schedules must produce the identical firing sequence under
// fixed-tick and next-event advancement, including across consecutive
// Run calls (whose boundary instants are re-stepped).
func TestModeEquivalenceRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		var fixedLog, nextLog []firing
		ef := NewEngineMode(seed, ModeFixedTick)
		buildRandomSchedule(ef, seed, &fixedLog)
		en := NewEngineMode(seed, ModeNextEvent)
		buildRandomSchedule(en, seed, &nextLog)
		// Multiple Run calls exercise boundary re-stepping.
		for i := 0; i < 3; i++ {
			ef.Run(150 * units.Millisecond)
			en.Run(150 * units.Millisecond)
		}
		if !reflect.DeepEqual(fixedLog, nextLog) {
			n := len(fixedLog)
			if len(nextLog) < n {
				n = len(nextLog)
			}
			for i := 0; i < n; i++ {
				if fixedLog[i] != nextLog[i] {
					t.Fatalf("seed %d: logs diverge at %d: fixed %v vs next %v",
						seed, i, fixedLog[i], nextLog[i])
				}
			}
			t.Fatalf("seed %d: log lengths diverge: fixed %d vs next %d",
				seed, len(fixedLog), len(nextLog))
		}
	}
}

// TestSkipAheadNeverLateNeverTwice asserts the next-event invariant
// directly: within a single Run, every periodic task fires exactly at
// phase, phase+period, phase+2·period, … — never late, never twice.
func TestSkipAheadNeverLateNeverTwice(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngineMode(seed, ModeNextEvent)
		type spec struct {
			period, phase units.Time
			fired         []units.Time
		}
		var specs []*spec
		for i := 0; i < 6; i++ {
			s := &spec{
				period: units.Time(1 + rng.Intn(60)),
				phase:  units.Time(rng.Intn(40)),
			}
			specs = append(specs, s)
			e.EveryPhased(fmt.Sprintf("t%d", i), s.period, s.phase,
				func(e *Engine) { s.fired = append(s.fired, e.Now()) })
		}
		// Sparse events to force irregular jumps.
		for i := 0; i < 5; i++ {
			e.At(units.Time(rng.Intn(900)), func(*Engine) {})
		}
		end := units.Time(1000)
		e.Run(end)
		for i, s := range specs {
			want := s.phase
			for j, at := range s.fired {
				if at != want {
					t.Fatalf("seed %d task %d firing %d at %v, want %v", seed, i, j, at, want)
				}
				want += s.period
			}
			if want <= end {
				t.Fatalf("seed %d task %d: missed firing at %v (fired %d times)", seed, i, want, len(s.fired))
			}
		}
	}
}

func TestStoppedTasksAreRemoved(t *testing.T) {
	e := NewEngine(1)
	var tasks []*Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, e.Every(fmt.Sprintf("t%d", i), 10, func(*Engine) {}))
	}
	if e.Tasks() != 10 {
		t.Fatalf("Tasks() = %d, want 10", e.Tasks())
	}
	for _, task := range tasks[:7] {
		task.Stop()
	}
	e.Run(20) // removal happens at the next executed instant
	if e.Tasks() != 3 {
		t.Fatalf("Tasks() = %d after stopping 7, want 3", e.Tasks())
	}
}

func TestDeferUntilSkipsQuietly(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	var fired []units.Time
	var task *Task
	task = e.Every("worker", 10, func(e *Engine) { fired = append(fired, e.Now()) })
	e.At(25, func(*Engine) { task.DeferUntil(95) }) // next firing: grid point 100
	e.Run(120)
	want := []units.Time{0, 10, 20, 100, 110, 120}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestParkAndResume(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	var fired []units.Time
	var task *Task
	task = e.Every("worker", 10, func(e *Engine) { fired = append(fired, e.Now()) })
	e.At(15, func(*Engine) {
		task.Park()
		if task.NextDue() != MaxTime {
			t.Errorf("NextDue = %v after Park, want MaxTime", task.NextDue())
		}
	})
	e.At(35, func(*Engine) { task.Resume() })
	e.Run(60)
	want := []units.Time{0, 10, 40, 50, 60}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestResumeWithoutDeferIsNoop(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	count := 0
	task := e.Every("worker", 10, func(*Engine) { count++ })
	e.Run(10)
	before := task.NextDue()
	task.Resume() // never deferred: must not pull the firing earlier
	if task.NextDue() != before {
		t.Fatalf("Resume moved an on-schedule task from %v to %v", before, task.NextDue())
	}
}

func TestRunBoundaryRestepParity(t *testing.T) {
	// A task due exactly at the boundary of consecutive Run calls fires
	// in both — the historical engine behaviour experiments rely on —
	// and identically in both modes.
	for _, mode := range []Mode{ModeFixedTick, ModeNextEvent} {
		e := NewEngineMode(1, mode)
		count := 0
		e.Every("t", 10, func(*Engine) { count++ })
		e.Run(20) // fires at 0, 10, 20
		e.Run(20) // re-fires at 20, then 30, 40
		if count != 6 {
			t.Fatalf("mode %v: count = %d, want 6 (boundary double-fire)", mode, count)
		}
	}
}

func TestNextEventJumpsLongIdleGaps(t *testing.T) {
	// With a single sparse task, a next-event engine must execute only
	// the due instants: a 10-minute run of a 1-minute task is 11 steps,
	// which would take ~600k instants tick by tick.
	e := NewEngineMode(1, ModeNextEvent)
	count := 0
	e.Every("sparse", units.Minute, func(*Engine) { count++ })
	e.Run(10 * units.Minute)
	if count != 11 {
		t.Fatalf("count = %d, want 11", count)
	}
	if e.Now() != 10*units.Minute {
		t.Fatalf("Now() = %v, want 10 min", e.Now())
	}
}

func TestAdvanceHookRunsOncePerInstant(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	var hookTimes []units.Time
	e.SetAdvanceHook(func(now units.Time) { hookTimes = append(hookTimes, now) })
	e.Every("t", 10, func(*Engine) {})
	e.At(15, func(*Engine) {})
	e.Run(30)
	want := []units.Time{0, 10, 15, 20, 30}
	if !reflect.DeepEqual(hookTimes, want) {
		t.Fatalf("hook times = %v, want %v", hookTimes, want)
	}
}

func TestDefaultModeToggle(t *testing.T) {
	defer SetDefaultMode(ModeNextEvent)
	SetDefaultMode(ModeFixedTick)
	if e := NewEngine(1); e.Mode() != ModeFixedTick {
		t.Fatalf("Mode() = %v, want fixed-tick", e.Mode())
	}
	SetDefaultMode(ModeNextEvent)
	if e := NewEngine(1); e.Mode() != ModeNextEvent {
		t.Fatalf("Mode() = %v, want next-event", e.Mode())
	}
	if got := NewEngineMode(1, ModeFixedTick).Mode(); got != ModeFixedTick {
		t.Fatalf("explicit mode ignored: %v", got)
	}
}
