package sim

import (
	"testing"

	"repro/internal/units"
)

// allocEngine builds an engine with a handful of periodic tasks, the
// shape of a kernel's steady state.
func allocEngine() *Engine {
	e := NewEngineMode(1, ModeNextEvent)
	for i := 0; i < 4; i++ {
		e.Every("tick", units.Millisecond, func(*Engine) {})
	}
	e.Every("slow", 10*units.Millisecond, func(*Engine) {})
	return e
}

// TestRunZeroAllocs guards the engine's steady state: advancing through
// instants — stepping tasks, scanning the heap, compacting nothing —
// must not allocate.
func TestRunZeroAllocs(t *testing.T) {
	e := allocEngine()
	e.Run(100 * units.Millisecond) // warm up
	if n := testing.AllocsPerRun(50, func() { e.Run(10 * units.Millisecond) }); n != 0 {
		t.Fatalf("Run allocates %v times per call, want 0", n)
	}
}

// TestEventChurnZeroAllocs guards the event freelist: a self-renewing
// event chain — the radio-exchange shape — must reuse fired events
// instead of allocating fresh ones. Only the closure passed to At
// allocates, and a prescheduled callback avoids even that here.
func TestEventChurnZeroAllocs(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	var fn func(*Engine)
	fn = func(e *Engine) { e.After(units.Millisecond, fn) }
	e.After(units.Millisecond, fn)
	e.Run(10 * units.Millisecond) // warm up: allocate the one Event
	if n := testing.AllocsPerRun(50, func() { e.Run(10 * units.Millisecond) }); n != 0 {
		t.Fatalf("event churn allocates %v times per run, want 0", n)
	}
}

// TestTaskChurnKeepsCapacity is the compaction regression guard:
// registering and stopping tasks over and over must compact in place,
// not grow the live task count or leak stopped tasks into the scan.
func TestTaskChurnKeepsCapacity(t *testing.T) {
	e := NewEngineMode(1, ModeNextEvent)
	keep := e.Every("keeper", units.Millisecond, func(*Engine) {})
	for i := 0; i < 10_000; i++ {
		tsk := e.Every("churn", units.Millisecond, func(*Engine) {})
		tsk.Stop()
		e.Run(units.Millisecond)
	}
	if got := e.Tasks(); got != 1 {
		t.Fatalf("after churn, %d live tasks, want 1", got)
	}
	if keep.Stopped() {
		t.Fatal("keeper was stopped by compaction")
	}
	// The churn itself must not allocate task list capacity per cycle:
	// once warm, a register+stop+compact cycle reuses the freed slot and
	// the engine's Task freelist is only refilled by Reset, so steady
	// churn costs exactly the one Task allocation per Every.
	if n := testing.AllocsPerRun(100, func() {
		tsk := e.Every("churn", units.Millisecond, func(*Engine) {})
		tsk.Stop()
		e.Run(units.Millisecond)
	}); n > 1 {
		t.Fatalf("task churn allocates %v times per cycle, want ≤ 1 (the Task itself)", n)
	}
}

// TestResetRecyclesTasksAndEvents: after a Reset, re-registering the
// same task population and event load must reuse the freelists — the
// fleet runner's device recycling depends on it.
func TestResetRecyclesTasksAndEvents(t *testing.T) {
	e := allocEngine()
	e.After(units.Millisecond, func(*Engine) {})
	e.Run(100 * units.Millisecond)
	rebuild := func() {
		e.Reset(7, ModeNextEvent)
		for i := 0; i < 4; i++ {
			e.Every("tick", units.Millisecond, func(*Engine) {})
		}
		e.Every("slow", 10*units.Millisecond, func(*Engine) {})
		e.Run(10 * units.Millisecond)
	}
	rebuild() // warm freelists to this population
	if n := testing.AllocsPerRun(50, rebuild); n > 5 {
		// The five Every closures are genuinely fresh each rebuild; the
		// Task and Event objects must come from the freelists.
		t.Fatalf("engine rebuild allocates %v times, want ≤ 5 (the closures)", n)
	}
	if e.Now() != 10*units.Millisecond || e.Tasks() != 5 {
		t.Fatalf("reset engine state: now %v tasks %d", e.Now(), e.Tasks())
	}
}

// TestResetMatchesFresh: a recycled engine must behave exactly like a
// fresh one — same step count, same RNG stream, same task schedule.
func TestResetMatchesFresh(t *testing.T) {
	run := func(e *Engine) (steps uint64, rnd int64, now units.Time) {
		fired := 0
		e.Every("t", 3*units.Millisecond, func(*Engine) { fired++ })
		e.After(5*units.Millisecond, func(e *Engine) { e.After(units.Millisecond, func(*Engine) {}) })
		e.Run(50 * units.Millisecond)
		return e.Steps(), e.Rand().Int63(), e.Now()
	}
	fresh := NewEngineMode(42, ModeNextEvent)
	s1, r1, n1 := run(fresh)

	recycled := allocEngine()
	recycled.Run(123 * units.Millisecond)
	recycled.Reset(42, ModeNextEvent)
	s2, r2, n2 := run(recycled)

	if s1 != s2 || r1 != r2 || n1 != n2 {
		t.Fatalf("recycled run diverges: steps %d/%d rand %d/%d now %v/%v",
			s1, s2, r1, r2, n1, n2)
	}
}

// BenchmarkSteadyEngineStep: per-instant engine overhead with a
// kernel-shaped task population; CI-guarded to 0 B/op.
func BenchmarkSteadyEngineStep(b *testing.B) {
	e := allocEngine()
	e.Run(10 * units.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(units.Millisecond)
	}
}
