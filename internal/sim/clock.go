// Package sim provides the deterministic discrete-time engine underneath
// the Cinder simulation: a virtual clock, a time-ordered event queue,
// periodic task scheduling, and a seeded random source.
//
// The engine is a next-event simulator on a fixed 1 ms grid. Every
// instant at which work is due — a one-shot event fires, or a periodic
// task's per-task nextDue arrives — is executed exactly as a fixed-tick
// engine would execute it (due events first, then due tasks in
// registration order), but the clock jumps directly from one due instant
// to the next instead of visiting every tick in between. A compatibility
// mode (ModeFixedTick) still walks every tick; the two modes execute the
// identical callback sequence and are asserted byte-equivalent by the
// differential tests in internal/experiments.
//
// Determinism is a design requirement — every experiment in the paper's
// evaluation is reproduced as an exact, repeatable run — so the engine
// never consults wall-clock time and all randomness flows from an
// explicit seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/snap"
	"repro/internal/units"
)

// DefaultTick is the simulation quantum. One millisecond is fine enough
// to resolve the paper's shortest interval of interest (the 200 ms power
// meter sampling) while keeping 20-minute experiments cheap.
const DefaultTick = units.Millisecond

// MaxTime is the parked sentinel Task.NextDue returns for tasks
// suspended indefinitely by Park.
const MaxTime = units.Time(math.MaxInt64)

// Mode selects how the engine advances time.
type Mode uint8

const (
	// ModeAuto resolves to the package default (see SetDefaultMode).
	ModeAuto Mode = iota
	// ModeNextEvent jumps the clock directly between due instants.
	ModeNextEvent
	// ModeFixedTick visits every tick, reproducing the original
	// fixed-quantum engine. It exists for differential testing and
	// A/B benchmarks.
	ModeFixedTick
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeNextEvent:
		return "next-event"
	case ModeFixedTick:
		return "fixed-tick"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// defaultMode holds the mode ModeAuto resolves to; stored atomically so
// concurrent engine construction (the fleet runner) is race-free.
var defaultMode atomic.Int32

func init() { defaultMode.Store(int32(ModeNextEvent)) }

// SetDefaultMode changes what ModeAuto resolves to for subsequently
// created engines. The differential tests use it to run the whole
// experiment registry under both advancement strategies.
func SetDefaultMode(m Mode) {
	if m == ModeAuto {
		m = ModeNextEvent
	}
	defaultMode.Store(int32(m))
}

// DefaultMode returns the mode ModeAuto currently resolves to.
func DefaultMode() Mode { return Mode(defaultMode.Load()) }

// Event is a one-shot callback scheduled for a particular simulated time.
type Event struct {
	// At is the simulated time the event fires.
	At units.Time
	// Fn is invoked with the engine when the event fires.
	Fn func(e *Engine)

	seq   uint64 // tie-break: FIFO among events at the same time
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Task is a callback invoked on a fixed period. Tasks registered earlier
// run earlier within an instant.
type Task struct {
	// Name identifies the task in String output and panics.
	Name string
	// Period is the interval between invocations; must be a positive
	// multiple of the engine tick.
	Period units.Time
	// Phase offsets the first invocation. A task with period p and
	// phase f runs at f, f+p, f+2p, ...
	Phase units.Time
	// Fn is invoked with the engine at each firing.
	Fn func(e *Engine)

	eng     *Engine
	nextDue units.Time
	// deferred marks a task whose nextDue has been pushed past its
	// natural grid by DeferUntil/Park (the kernel's quiescence
	// machinery). Resume only acts on deferred tasks, so it can never
	// pull an on-schedule task back for a spurious same-instant refire.
	deferred bool
	stopped  bool
}

// Stop permanently disables the task and removes it from the engine's
// task list at the end of the current instant (stopped tasks are not
// scanned for the remainder of the run). Safe to call from within the
// task itself.
func (t *Task) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.eng != nil {
		t.eng.tasksDirty = true
	}
}

// Stopped reports whether the task has been stopped.
func (t *Task) Stopped() bool { return t.stopped }

// NextDue returns the instant of the task's next firing (MaxTime when
// parked).
func (t *Task) NextDue() units.Time { return t.nextDue }

// DeferUntil postpones the task's next firing to the earliest instant on
// the task's period grid at or after `until`. It never moves a firing
// earlier. The kernel uses this to skip guaranteed-idle quanta; the
// caller is responsible for any catch-up accounting the skipped firings
// would have performed.
func (t *Task) DeferUntil(until units.Time) {
	if t.stopped {
		return
	}
	due := firstDueAt(t.Period, t.Phase, until)
	if due > t.nextDue {
		t.nextDue = due
		t.deferred = true
	}
}

// Park suspends the task indefinitely; only Resume, ResumeAt, or a
// Run-boundary re-step revives it.
func (t *Task) Park() {
	if t.stopped {
		return
	}
	t.nextDue = MaxTime
	t.deferred = true
}

// Resume undoes a DeferUntil/Park: the task next fires at the earliest
// on-grid instant at or after the engine's current time (which may be
// the current instant, if Resume is called before the task loop runs).
// Resuming a task that was never deferred is a no-op.
func (t *Task) Resume() { t.ResumeAt(0) }

// ResumeAt is Resume with a lower bound: the task next fires at the
// earliest on-grid instant ≥ max(now, at). The kernel resumes its
// baseline-billing task this way so boundaries already billed by the
// closed-form catch-up are not billed twice.
func (t *Task) ResumeAt(at units.Time) {
	if t.stopped || !t.deferred {
		return
	}
	if t.eng != nil && t.eng.now > at {
		at = t.eng.now
	}
	t.nextDue = firstDueAt(t.Period, t.Phase, at)
	t.deferred = false
}

// firstDueAt returns the smallest instant t ≥ from with t ≥ phase and
// (t−phase) a multiple of period.
func firstDueAt(period, phase, from units.Time) units.Time {
	if from <= phase {
		return phase
	}
	r := (from - phase) % period
	if r == 0 {
		return from
	}
	return from + period - r
}

// countingSource wraps the engine's seeded random source and counts
// draws. The wrapper delegates every call, so the random stream is
// bit-identical to an unwrapped rand.NewSource — but the draw count
// makes the RNG state snapshotable: Restore replays the recorded number
// of draws against a freshly seeded source instead of serializing
// math/rand's opaque internals. Both Int63 and Uint64 advance the
// underlying generator by exactly one step, so a replay of n Uint64
// calls reproduces any mix of n draws.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// newCountingSource seeds a counting source. rand.NewSource's concrete
// type has implemented Source64 since Go 1.8; the assertion is checked
// so a toolchain change fails loudly instead of silently changing every
// experiment's random stream.
func newCountingSource(seed int64) *countingSource {
	s64, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		panic("sim: rand.NewSource does not implement Source64")
	}
	return &countingSource{src: s64}
}

// Engine drives simulated time forward.
type Engine struct {
	now    units.Time
	tick   units.Time
	mode   Mode
	events eventHeap
	tasks  []*Task
	rng    *rand.Rand
	src    *countingSource
	seq    uint64
	// steps counts executed instants. In next-event mode it is the
	// direct measure of how much of the timeline was actually visited —
	// the quiescence fast path shows up as steps ≪ duration/tick — and
	// regression tests assert on it.
	steps uint64

	// stopRequested halts Run/RunUntil at the end of the current instant.
	stopRequested bool
	// tasksDirty marks stopped tasks awaiting removal.
	tasksDirty bool
	// advanceHook, when set, runs once per executed instant before any
	// callback at that instant. The kernel uses it to settle lazily
	// deferred accounting (baseline idle billing) so every observer at
	// the instant sees fully up-to-date state.
	advanceHook func(now units.Time)
	// freeEvents is the fired-event freelist: step returns each event
	// here after its callback runs, and At reuses them, so steady-state
	// event scheduling allocates nothing. Cancelled events are not
	// recycled (Cancel is a rare, test-only path) so a double Cancel can
	// never free an event a later At has re-armed.
	freeEvents []*Event
	// freeTasks is the Reset-time task freelist; see Reset.
	freeTasks []*Task
	// entry marks the advance-hook invocation at a RunUntil entry
	// instant, whose due tasks rewindDue is about to re-arm (see
	// EntryInstant).
	entry bool
}

// NewEngine returns an engine at time zero with the default 1 ms tick,
// the package-default advancement mode and the given random seed.
func NewEngine(seed int64) *Engine {
	return NewEngineMode(seed, ModeAuto)
}

// NewEngineMode returns an engine with an explicit advancement mode.
func NewEngineMode(seed int64, mode Mode) *Engine {
	if mode == ModeAuto {
		mode = DefaultMode()
	}
	src := newCountingSource(seed)
	return &Engine{
		tick: DefaultTick,
		mode: mode,
		rng:  rand.New(src),
		src:  src,
	}
}

// Reset reinitializes the engine in place to the exact state
// NewEngineMode(seed, mode) would produce, recycling the event heap,
// the task list and their element objects. The fleet runner reuses one
// engine per worker this way. Every *Event and *Task handed out during
// the previous life is invalidated: pending events move to the
// freelist and task objects are reused by subsequent Every calls, so
// callers must drop all of them alongside the Reset.
func (e *Engine) Reset(seed int64, mode Mode) {
	if mode == ModeAuto {
		mode = DefaultMode()
	}
	for _, ev := range e.events {
		ev.Fn = nil
		ev.index = -1
		e.freeEvents = append(e.freeEvents, ev)
	}
	e.events = e.events[:0]
	for i, t := range e.tasks {
		*t = Task{}
		e.freeTasks = append(e.freeTasks, t)
		e.tasks[i] = nil
	}
	e.tasks = e.tasks[:0]
	e.now = 0
	e.mode = mode
	e.seq = 0
	e.steps = 0
	e.stopRequested = false
	e.tasksDirty = false
	e.advanceHook = nil
	// rand.Rand.Seed delegates to the counting source's Seed, which also
	// zeroes the draw counter.
	e.rng.Seed(seed)
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Tick returns the engine quantum.
func (e *Engine) Tick() units.Time { return e.tick }

// Mode returns the resolved advancement mode.
func (e *Engine) Mode() Mode { return e.mode }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetAdvanceHook installs fn to run once per executed instant, before
// any event or task callback at that instant. Pass nil to remove.
func (e *Engine) SetAdvanceHook(fn func(now units.Time)) { e.advanceHook = fn }

// Stop requests that Run or RunUntil return at the end of the current
// instant. It is the mechanism experiments use to end early (for example
// when a workload completes).
func (e *Engine) Stop() { e.stopRequested = true }

// At schedules fn to run at the given absolute simulated time, which must
// not be in the past. It returns the event so callers may Cancel it. The
// returned pointer is valid for Cancel only while the event is pending:
// once it fires, the engine recycles the object for a later At.
func (e *Engine) At(t units.Time, fn func(e *Engine)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.freeEvents); n > 0 {
		ev = e.freeEvents[n-1]
		e.freeEvents[n-1] = nil
		e.freeEvents = e.freeEvents[:n-1]
		ev.At, ev.Fn, ev.seq = t, fn, e.seq
	} else {
		ev = &Event{At: t, Fn: fn, seq: e.seq}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run after delay d from now.
func (e *Engine) After(d units.Time, fn func(e *Engine)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-cancelled event
// is a no-op, as is cancelling an already-fired one — provided the
// caller has not let the pointer go stale past a later At, which may
// have recycled the fired object (see At). Cancelled events are dropped,
// not recycled, so repeated Cancel calls on the same pointer stay safe.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Every registers a periodic task and returns it. Period must be a
// positive multiple of the tick; phase must be non-negative and a
// multiple of the tick.
func (e *Engine) Every(name string, period units.Time, fn func(e *Engine)) *Task {
	return e.EveryPhased(name, period, 0, fn)
}

// EveryPhased registers a periodic task with a phase offset.
func (e *Engine) EveryPhased(name string, period, phase units.Time, fn func(e *Engine)) *Task {
	if period <= 0 || period%e.tick != 0 {
		panic(fmt.Sprintf("sim: task %q period %v is not a positive multiple of tick %v", name, period, e.tick))
	}
	if phase < 0 || phase%e.tick != 0 {
		panic(fmt.Sprintf("sim: task %q phase %v is not a non-negative multiple of tick %v", name, phase, e.tick))
	}
	var t *Task
	if n := len(e.freeTasks); n > 0 {
		t = e.freeTasks[n-1]
		e.freeTasks[n-1] = nil
		e.freeTasks = e.freeTasks[:n-1]
	} else {
		t = &Task{}
	}
	*t = Task{Name: name, Period: period, Phase: phase, Fn: fn, eng: e}
	t.nextDue = firstDueAt(period, phase, e.now)
	e.tasks = append(e.tasks, t)
	return t
}

// RunUntil advances simulated time until it reaches end (inclusive of
// work scheduled at end) or Stop is called. It returns the time at which
// it stopped.
//
// The entry instant is always (re-)stepped: a task due at the boundary
// between two consecutive Run calls fires in both, exactly as the
// original fixed-tick engine behaved (its outer loop re-entered step()
// at the instant the previous call ended on). Experiments that poll with
// repeated short Runs depend on that cadence, so both modes preserve it.
func (e *Engine) RunUntil(end units.Time) units.Time {
	if end < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is before now %v", end, e.now))
	}
	e.stopRequested = false
	if e.advanceHook != nil {
		e.entry = true
		e.advanceHook(e.now)
		e.entry = false
	}
	e.rewindDue()
	for {
		e.step()
		if e.stopRequested || e.now >= end {
			break
		}
		e.advance(end)
	}
	return e.now
}

// Run advances simulated time by duration d. Equivalent to
// RunUntil(Now()+d).
func (e *Engine) Run(d units.Time) units.Time {
	return e.RunUntil(e.now + d)
}

// ResumeUntil continues a run from the current instant WITHOUT the
// Run-boundary re-step: the entry instant is assumed to have been fully
// executed already (by the RunUntil that ended there, or by the run a
// snapshot was taken from), so neither the entry advance-hook call nor
// rewindDue's re-arming happens. It is the continuation primitive
// checkpoint/resume needs — RunUntil(a) followed by ResumeUntil(b)
// executes exactly the instants a single RunUntil(b) would have
// executed, which the resume-equivalence tests assert.
func (e *Engine) ResumeUntil(end units.Time) units.Time {
	if end < e.now {
		panic(fmt.Sprintf("sim: ResumeUntil(%v) is before now %v", end, e.now))
	}
	e.stopRequested = false
	for e.now < end && !e.stopRequested {
		e.advance(end)
		e.step()
	}
	return e.now
}

// rewindDue re-arms every task that is due at the current instant by the
// periodic schedule, so the entry re-step of RunUntil fires it again
// (see RunUntil). Deferred tasks are revived too — the fixed-tick engine
// fired them at every due instant, and their owners' catch-up accounting
// makes the revival exact.
func (e *Engine) rewindDue() {
	for _, t := range e.tasks {
		if t.stopped {
			continue
		}
		if e.now >= t.Phase && (e.now-t.Phase)%t.Period == 0 {
			t.nextDue = e.now
			t.deferred = false
		}
	}
}

// advance moves the clock to the next instant: the following tick in
// fixed-tick mode, or the earliest due instant (clamped to end) in
// next-event mode.
func (e *Engine) advance(end units.Time) {
	if e.mode == ModeFixedTick {
		e.now += e.tick
	} else {
		e.now = e.nextWork(end)
	}
	if e.advanceHook != nil {
		e.advanceHook(e.now)
	}
}

// nextWork returns the earliest instant after now at which work is due,
// clamped to end. An event or task stamped at or before now (scheduled
// during the current instant after its phase of the step had passed)
// resolves to the immediately following tick, matching the fixed-tick
// engine's behaviour.
func (e *Engine) nextWork(end units.Time) units.Time {
	next := end
	if len(e.events) > 0 {
		at := e.events[0].At
		if at <= e.now {
			at = e.now + e.tick
		}
		if at < next {
			next = at
		}
	}
	for _, t := range e.tasks {
		if t.stopped || t.nextDue == MaxTime {
			continue
		}
		due := t.nextDue
		if due <= e.now {
			due = e.now + e.tick
		}
		if due < next {
			next = due
		}
	}
	if next <= e.now {
		next = e.now + e.tick
	}
	return next
}

// step performs the work of a single instant at the current time: due
// events first, then due periodic tasks in registration order. Tasks
// registered during the event phase may fire in the same instant; tasks
// registered from within the task loop wait for their next due instant,
// both exactly as the fixed-tick engine behaved (its task loop iterated
// a snapshot of the list).
func (e *Engine) step() {
	e.steps++
	for len(e.events) > 0 && e.events[0].At <= e.now {
		ev := heap.Pop(&e.events).(*Event)
		ev.index = -1
		fn := ev.Fn
		// Recycle before invoking: the callback may itself schedule
		// events, and handing it the just-fired object keeps the
		// steady-state event churn allocation-free.
		ev.Fn = nil
		e.freeEvents = append(e.freeEvents, ev)
		fn(e)
	}
	n := len(e.tasks)
	for i := 0; i < n; i++ {
		t := e.tasks[i]
		if t.stopped || t.nextDue > e.now {
			continue
		}
		if t.nextDue < e.now {
			// Stale nextDue (the task was registered too late to fire at
			// its stamped instant): realign to the period grid, firing
			// only if a grid point lands exactly here.
			t.nextDue = firstDueAt(t.Period, t.Phase, e.now)
			if t.nextDue > e.now {
				continue
			}
		}
		t.Fn(e)
		if !t.stopped && t.nextDue <= e.now {
			// A callback may defer or park its own task; preserve that
			// instead of rearming on the period grid.
			t.nextDue = e.now + t.Period
			t.deferred = false
		}
	}
	if e.tasksDirty {
		e.compactTasks()
	}
}

// compactTasks removes stopped tasks, preserving registration order.
func (e *Engine) compactTasks() {
	live := e.tasks[:0]
	for _, t := range e.tasks {
		if !t.stopped {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(e.tasks); i++ {
		e.tasks[i] = nil
	}
	e.tasks = live
	e.tasksDirty = false
}

// Steps reports the number of instants the engine has executed. A
// fixed-tick engine executes one instant per tick; a next-event engine
// executes only the instants at which work was due, so Steps is the
// measure of how effective the quiescence machinery is.
func (e *Engine) Steps() uint64 { return e.steps }

// Tasks reports the number of live registered tasks.
func (e *Engine) Tasks() int { return len(e.tasks) }

// PendingEvents reports the number of one-shot events not yet fired.
func (e *Engine) PendingEvents() int { return len(e.events) }

// PendingEventAt reports whether a pending event is due at or before t.
// Called from an advance hook, it tells the hook whether the coming
// step's event phase will run any callback — the kernel's fast boundary
// path requires that it will not.
func (e *Engine) PendingEventAt(t units.Time) bool {
	return len(e.events) > 0 && e.events[0].At <= t
}

// EntryInstant reports whether the current advance-hook invocation is
// the one at a RunUntil entry instant, where rewindDue is about to
// re-arm tasks due on their period grid (the Run-boundary re-step).
// Work due exactly at such an instant must be left to the re-armed
// tasks, not settled by the hook, or it would be performed twice.
func (e *Engine) EntryInstant() bool { return e.entry }

// NextEventAt returns the due time of the earliest pending one-shot
// event; ok is false when none is pending.
func (e *Engine) NextEventAt() (units.Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].At, true
}

// EarliestWork returns the earliest instant at which any pending event
// or any live task other than `except` is due, or MaxTime when nothing
// is pending. Every state change in the simulation happens at an
// executed instant, and executed instants only occur where an event or
// task is due, so nothing can perturb the system strictly before this
// bound — the safety argument adaptive watchdog tasks (the fleet's
// battery watch) build their deferral horizon on.
func (e *Engine) EarliestWork(except *Task) units.Time {
	earliest := MaxTime
	if len(e.events) > 0 && e.events[0].At < earliest {
		earliest = e.events[0].At
	}
	for _, t := range e.tasks {
		if t == except || t.stopped {
			continue
		}
		if t.nextDue < earliest {
			earliest = t.nextDue
		}
	}
	return earliest
}

// Snapshot serializes the engine's run state: clock, step and sequence
// counters, RNG draw count, per-task schedules, and the (At, seq)
// identity of every pending one-shot event. Event and task *callbacks*
// are not serialized — Restore runs against an engine whose owner has
// re-registered the identical callbacks (by rebuilding the device from
// its deterministic construction path) and validates that the rebuilt
// schedule matches the snapshot exactly.
func (e *Engine) Snapshot(w *snap.Writer) {
	w.Section("engine")
	w.U64(uint64(e.mode))
	w.I64(int64(e.tick))
	w.I64(int64(e.now))
	w.U64(e.steps)
	w.U64(e.seq)
	w.U64(e.src.draws)
	w.U64(uint64(len(e.tasks)))
	for _, t := range e.tasks {
		w.String(t.Name)
		w.I64(int64(t.Period))
		w.I64(int64(t.Phase))
		w.I64(int64(t.nextDue))
		w.Bool(t.deferred)
	}
	w.U64(uint64(len(e.events)))
	for _, ev := range sortedEvents(e.events) {
		w.I64(int64(ev.At))
		w.U64(ev.seq)
	}
}

// sortedEvents returns the pending events ordered by (At, seq) — a
// deterministic serialization order independent of heap layout.
func sortedEvents(h eventHeap) []*Event {
	out := make([]*Event, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Restore overlays a snapshot onto a freshly rebuilt engine: the caller
// has re-run the device's deterministic construction sequence (which
// re-registered every task and install-time event with callbacks
// intact), and Restore advances the clock, counters and RNG to the
// snapshot state, prunes the install-time events that had already fired
// before the snapshot, and validates that what remains matches the
// snapshot's pending set exactly. Any mismatch — a task list drift, a
// pending event the rebuild cannot account for (e.g. one scheduled
// dynamically mid-run, which means the device was not quiescent at the
// checkpoint), or an RNG that would have to run backwards — is a loud,
// descriptive error, never a silently wrong engine.
func (e *Engine) Restore(r *snap.Reader) error {
	r.Section("engine")
	mode := Mode(r.U64())
	tick := units.Time(r.I64())
	now := units.Time(r.I64())
	steps := r.U64()
	seq := r.U64()
	draws := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if mode != e.mode {
		return fmt.Errorf("sim: restore: snapshot mode %v, engine mode %v", mode, e.mode)
	}
	if tick != e.tick {
		return fmt.Errorf("sim: restore: snapshot tick %v, engine tick %v", tick, e.tick)
	}
	if now < e.now {
		return fmt.Errorf("sim: restore: snapshot time %v behind engine time %v", now, e.now)
	}
	if draws < e.src.draws {
		return fmt.Errorf("sim: restore: snapshot has %d RNG draws, engine already at %d", draws, e.src.draws)
	}

	nTasks := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if nTasks != len(e.tasks) {
		return fmt.Errorf("sim: restore: snapshot has %d tasks, rebuilt engine has %d", nTasks, len(e.tasks))
	}
	for i := 0; i < nTasks; i++ {
		name := r.String()
		period := units.Time(r.I64())
		phase := units.Time(r.I64())
		nextDue := units.Time(r.I64())
		deferred := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		t := e.tasks[i]
		if t.Name != name || t.Period != period || t.Phase != phase {
			return fmt.Errorf("sim: restore: task %d is %q(%v+%v), snapshot has %q(%v+%v)",
				i, t.Name, t.Period, t.Phase, name, period, phase)
		}
		t.nextDue = nextDue
		t.deferred = deferred
	}

	// The rebuilt engine's seq counter marks the end of construction:
	// every event scheduled during the rebuild carries a smaller seq. A
	// pending snapshot event at or past it was scheduled dynamically
	// mid-run — state the rebuild cannot reproduce.
	buildSeq := e.seq
	nEvents := int(r.U64())
	type evKey struct {
		at  units.Time
		seq uint64
	}
	want := make(map[evKey]bool, nEvents)
	for i := 0; i < nEvents; i++ {
		at := units.Time(r.I64())
		evSeq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if evSeq >= buildSeq {
			return fmt.Errorf("sim: restore: pending event at %v (seq %d) was scheduled mid-run; "+
				"the device was not quiescent at the checkpoint", at, evSeq)
		}
		want[evKey{at, evSeq}] = true
	}
	// Prune rebuilt install-time events that had already fired before
	// the snapshot instant, then require exact agreement.
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.At <= now {
			ev.index = -1
			ev.Fn = nil
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	if len(e.events) != len(want) {
		return fmt.Errorf("sim: restore: %d pending events after pruning, snapshot has %d",
			len(e.events), len(want))
	}
	for i, ev := range e.events {
		if !want[evKey{ev.At, ev.seq}] {
			return fmt.Errorf("sim: restore: rebuilt event at %v (seq %d) not in snapshot", ev.At, ev.seq)
		}
		ev.index = i // re-anchor heap bookkeeping after the filter
	}
	heap.Init(&e.events)

	// Fast-forward the RNG: both Int63 and Uint64 advance the underlying
	// source one step, so replaying the draw-count difference lands the
	// generator in the exact snapshot state.
	for e.src.draws < draws {
		e.src.Uint64()
	}
	e.now = now
	e.steps = steps
	e.seq = seq
	e.stopRequested = false
	e.tasksDirty = false
	e.entry = false
	return nil
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
