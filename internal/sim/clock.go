// Package sim provides the deterministic discrete-time engine underneath
// the Cinder simulation: a virtual clock, a time-ordered event queue,
// periodic task scheduling, and a seeded random source.
//
// The engine advances in fixed-size ticks (1 ms by default). Each tick
// the loop fires due one-shot events, then runs every registered periodic
// task whose period divides the current time, in registration order.
// Determinism is a design requirement — every experiment in the paper's
// evaluation is reproduced as an exact, repeatable run — so the engine
// never consults wall-clock time and all randomness flows from an
// explicit seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// DefaultTick is the simulation quantum. One millisecond is fine enough
// to resolve the paper's shortest interval of interest (the 200 ms power
// meter sampling) while keeping 20-minute experiments cheap.
const DefaultTick = units.Millisecond

// Event is a one-shot callback scheduled for a particular simulated time.
type Event struct {
	// At is the simulated time the event fires.
	At units.Time
	// Fn is invoked with the engine when the event fires.
	Fn func(e *Engine)

	seq   uint64 // tie-break: FIFO among events at the same time
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Task is a callback invoked on a fixed period. Tasks registered earlier
// run earlier within a tick.
type Task struct {
	// Name identifies the task in String output and panics.
	Name string
	// Period is the interval between invocations; must be a positive
	// multiple of the engine tick.
	Period units.Time
	// Phase offsets the first invocation. A task with period p and
	// phase f runs at f, f+p, f+2p, ...
	Phase units.Time
	// Fn is invoked with the engine at each firing.
	Fn func(e *Engine)

	stopped bool
}

// Stop permanently disables the task. Safe to call from within the task
// itself.
func (t *Task) Stop() { t.stopped = true }

// Engine drives simulated time forward.
type Engine struct {
	now    units.Time
	tick   units.Time
	events eventHeap
	tasks  []*Task
	rng    *rand.Rand
	seq    uint64

	// stopRequested halts Run/RunUntil at the end of the current tick.
	stopRequested bool
}

// NewEngine returns an engine at time zero with the default 1 ms tick and
// the given random seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		tick: DefaultTick,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Tick returns the engine quantum.
func (e *Engine) Tick() units.Time { return e.tick }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Stop requests that Run or RunUntil return at the end of the current
// tick. It is the mechanism experiments use to end early (for example
// when a workload completes).
func (e *Engine) Stop() { e.stopRequested = true }

// At schedules fn to run at the given absolute simulated time, which must
// not be in the past. It returns the event so callers may Cancel it.
func (e *Engine) At(t units.Time, fn func(e *Engine)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run after delay d from now.
func (e *Engine) After(d units.Time, fn func(e *Engine)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Every registers a periodic task and returns it. Period must be a
// positive multiple of the tick; phase must be non-negative and a
// multiple of the tick.
func (e *Engine) Every(name string, period units.Time, fn func(e *Engine)) *Task {
	return e.EveryPhased(name, period, 0, fn)
}

// EveryPhased registers a periodic task with a phase offset.
func (e *Engine) EveryPhased(name string, period, phase units.Time, fn func(e *Engine)) *Task {
	if period <= 0 || period%e.tick != 0 {
		panic(fmt.Sprintf("sim: task %q period %v is not a positive multiple of tick %v", name, period, e.tick))
	}
	if phase < 0 || phase%e.tick != 0 {
		panic(fmt.Sprintf("sim: task %q phase %v is not a non-negative multiple of tick %v", name, phase, e.tick))
	}
	t := &Task{Name: name, Period: period, Phase: phase, Fn: fn}
	e.tasks = append(e.tasks, t)
	return t
}

// RunUntil advances simulated time tick by tick until it reaches end
// (inclusive of work scheduled at end) or Stop is called. It returns the
// time at which it stopped.
func (e *Engine) RunUntil(end units.Time) units.Time {
	if end < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is before now %v", end, e.now))
	}
	e.stopRequested = false
	for e.now <= end {
		e.step()
		if e.stopRequested || e.now >= end {
			break
		}
		e.now += e.tick
	}
	return e.now
}

// Run advances simulated time by duration d. Equivalent to
// RunUntil(Now()+d).
func (e *Engine) Run(d units.Time) units.Time {
	return e.RunUntil(e.now + d)
}

// step performs the work of a single tick at the current time: due
// events first, then periodic tasks in registration order.
func (e *Engine) step() {
	for len(e.events) > 0 && e.events[0].At <= e.now {
		ev := heap.Pop(&e.events).(*Event)
		ev.index = -1
		ev.Fn(e)
	}
	for _, t := range e.tasks {
		if t.stopped {
			continue
		}
		if e.now >= t.Phase && (e.now-t.Phase)%t.Period == 0 {
			t.Fn(e)
		}
	}
}

// PendingEvents reports the number of one-shot events not yet fired.
func (e *Engine) PendingEvents() int { return len(e.events) }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
