package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Tick() != units.Millisecond {
		t.Fatalf("Tick() = %v, want 1 ms", e.Tick())
	}
}

func TestRunAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	e.Run(500 * units.Millisecond)
	if e.Now() != 500*units.Millisecond {
		t.Fatalf("Now() = %v, want 500 ms", e.Now())
	}
	e.Run(units.Second)
	if e.Now() != 1500*units.Millisecond {
		t.Fatalf("Now() = %v, want 1500 ms", e.Now())
	}
}

func TestEventFiresAtScheduledTime(t *testing.T) {
	e := NewEngine(1)
	var fired units.Time = -1
	e.At(42*units.Millisecond, func(e *Engine) { fired = e.Now() })
	e.Run(100 * units.Millisecond)
	if fired != 42*units.Millisecond {
		t.Fatalf("event fired at %v, want 42 ms", fired)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	e.Run(10 * units.Millisecond)
	var fired units.Time = -1
	e.After(5*units.Millisecond, func(e *Engine) { fired = e.Now() })
	e.Run(20 * units.Millisecond)
	if fired != 15*units.Millisecond {
		t.Fatalf("event fired at %v, want 15 ms", fired)
	}
}

func TestEventsAtSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(10*units.Millisecond, func(*Engine) { order = append(order, i) })
	}
	e.Run(20 * units.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestEventOrderingAcrossTimes(t *testing.T) {
	e := NewEngine(1)
	var order []units.Time
	times := []units.Time{30, 10, 20, 5, 25}
	for _, at := range times {
		e.At(at, func(e *Engine) { order = append(order, e.Now()) })
	}
	e.Run(50)
	want := []units.Time{5, 10, 20, 25, 30}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run(20)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.At(units.Time(i+1), func(*Engine) { got = append(got, i) }))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run(20)
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8 (%v)", len(got), got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestPeriodicTask(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Every("counter", 10*units.Millisecond, func(*Engine) { count++ })
	e.Run(100 * units.Millisecond)
	// Fires at t=0,10,...,100 inclusive: 11 times.
	if count != 11 {
		t.Fatalf("task fired %d times, want 11", count)
	}
}

func TestPeriodicTaskPhase(t *testing.T) {
	e := NewEngine(1)
	var at []units.Time
	e.EveryPhased("phased", 50*units.Millisecond, 15*units.Millisecond,
		func(e *Engine) { at = append(at, e.Now()) })
	e.Run(200 * units.Millisecond)
	want := []units.Time{15, 65, 115, 165}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

func TestTaskStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var task *Task
	task = e.Every("self-stop", 10, func(*Engine) {
		count++
		if count == 3 {
			task.Stop()
		}
	})
	e.Run(200)
	if count != 3 {
		t.Fatalf("task fired %d times after Stop, want 3", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	e.At(50, func(e *Engine) { e.Stop() })
	end := e.Run(1000)
	if end != 50 {
		t.Fatalf("stopped at %v, want 50 ms", end)
	}
	// A subsequent Run resumes from where we stopped.
	e.Run(10)
	if e.Now() != 60 {
		t.Fatalf("Now() = %v after resume, want 60 ms", e.Now())
	}
}

func TestEventScheduledDuringTickSameTime(t *testing.T) {
	// An event that schedules another event for the same instant must see
	// it fire within the same tick (cascading zero-delay work).
	e := NewEngine(1)
	var order []string
	e.At(10, func(e *Engine) {
		order = append(order, "outer")
		e.At(10, func(*Engine) { order = append(order, "inner") })
	})
	e.Run(20)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
}

func TestPanicOnPastEvent(t *testing.T) {
	e := NewEngine(1)
	e.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func(*Engine) {})
}

func TestPanicOnBadPeriod(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	e.Every("bad", 0, func(*Engine) {})
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewEngine(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != c.Rand().Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPendingEvents(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func(*Engine) {})
	e.At(20, func(*Engine) {})
	if n := e.PendingEvents(); n != 2 {
		t.Fatalf("PendingEvents = %d, want 2", n)
	}
	e.Run(15)
	if n := e.PendingEvents(); n != 1 {
		t.Fatalf("PendingEvents = %d, want 1", n)
	}
}

func TestTasksRunInRegistrationOrder(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Every("b", 10, func(*Engine) { order = append(order, "b") })
	e.Every("a", 10, func(*Engine) { order = append(order, "a") })
	e.Run(5) // only t=0 firing
	if len(order) < 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a ...]", order)
	}
}

func TestLongRunTickCount(t *testing.T) {
	// 20 simulated minutes at 1 ms ticks: the engine must visit every
	// tick exactly once.
	e := NewEngine(1)
	ticks := 0
	e.Every("tick", units.Millisecond, func(*Engine) { ticks++ })
	e.Run(20 * units.Minute)
	want := int(20*units.Minute/units.Millisecond) + 1
	if ticks != want {
		t.Fatalf("ticks = %d, want %d", ticks, want)
	}
}
