package snap

import (
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("alpha")
	w.U64(0)
	w.U64(1 << 60)
	w.I64(-42)
	w.Bool(true)
	w.String("hello")
	w.Bytes([]byte{1, 2, 3})
	w.Section("beta")
	w.I64(7)
	b, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	r, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	r.Section("alpha")
	if got := r.U64(); got != 0 {
		t.Fatalf("u64: %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("u64: %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("i64: %d", got)
	}
	if !r.Bool() {
		t.Fatal("bool")
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("string: %q", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("bytes: %v", got)
	}
	r.Section("beta")
	if got := r.I64(); got != 7 {
		t.Fatalf("i64: %d", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicFailsLoudly(t *testing.T) {
	b := []byte("NOTASNAPxxxxyyyyzzzz")
	_, err := Open(b)
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
	if !strings.Contains(err.Error(), "not a snapshot") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

func TestWrongVersionFailsLoudly(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	b, _ := w.Finish()
	b[len(Magic)] = 99 // corrupt the version field
	_, err := Open(b)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestCorruptPayloadFailsLoudly(t *testing.T) {
	w := NewWriter()
	w.Section("s")
	w.U64(123456)
	b, _ := w.Finish()
	b[len(b)-6] ^= 0xFF // flip a payload bit
	_, err := Open(b)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestTruncatedFailsLoudly(t *testing.T) {
	if _, err := Open([]byte("CN")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestWrongSectionFailsLoudly(t *testing.T) {
	w := NewWriter()
	w.Section("alpha")
	b, _ := w.Finish()
	r, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	r.Section("beta")
	if err := r.Err(); !errors.Is(err, ErrSection) {
		t.Fatalf("want ErrSection, got %v", err)
	}
	if !strings.Contains(r.Err().Error(), `"beta"`) || !strings.Contains(r.Err().Error(), `"alpha"`) {
		t.Fatalf("error not descriptive: %v", r.Err())
	}
}

func TestUnreadTrailerFailsLoudly(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	w.U64(2)
	b, _ := w.Finish()
	r, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.U64()
	if err := r.Close(); !errors.Is(err, ErrSection) {
		t.Fatalf("want ErrSection for unread payload, got %v", err)
	}
}
