// Package snap implements the versioned binary snapshot format used by
// checkpoint/resume: a magic header, a format version, a sequence of
// tagged sections of varint-encoded integers and length-prefixed
// strings, and a trailing CRC-32 of everything written. Every component
// of a simulated device (engine, object table, graph, scheduler,
// kernel, radio, netd, baseband) writes one section through a Writer
// and reads it back through a Reader.
//
// The format is designed to fail loudly rather than restore a garbage
// device: a wrong magic, an unsupported version, a section tag out of
// order, a truncated stream, or a checksum mismatch each produce a
// descriptive error, and the reader latches the first error so callers
// can check once at the end.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a Cinder device snapshot stream.
const Magic = "CNDSNAP1"

// Version is the current snapshot format version. Bump it whenever a
// section's field layout changes; Open rejects mismatches loudly.
const Version uint32 = 1

// Errors the reader can return (wrapped with context).
var (
	// ErrMagic reports a stream that is not a snapshot at all.
	ErrMagic = errors.New("snap: bad magic (not a snapshot)")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snap: unsupported snapshot version")
	// ErrChecksum reports payload corruption.
	ErrChecksum = errors.New("snap: checksum mismatch (corrupted snapshot)")
	// ErrSection reports a section tag other than the expected one —
	// either a corrupted stream or a reader/writer layout drift.
	ErrSection = errors.New("snap: unexpected section")
	// ErrTruncated reports a stream that ended mid-value.
	ErrTruncated = errors.New("snap: truncated snapshot")
)

// Writer serializes a snapshot. Errors latch: after the first failure
// every subsequent call is a no-op and Finish returns the error.
type Writer struct {
	buf []byte
	crc uint32
	err error
}

// NewWriter starts a snapshot stream with the magic and version header.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 512), crc: 0}
	w.buf = append(w.buf, Magic...)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	w.buf = append(w.buf, v[:]...)
	return w
}

// append adds raw bytes to the payload and the running checksum.
func (w *Writer) append(b []byte) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, b...)
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.append(tmp[:n])
}

// I64 writes a signed (zig-zag) varint.
func (w *Writer) I64(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.append(tmp[:n])
}

// Bool writes a boolean as one varint.
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.append([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.append(b)
}

// Section starts a named section. The matching Reader.Section call
// validates the tag, so layout drift between writer and reader is
// caught at the section boundary instead of surfacing as garbage
// integers later.
func (w *Writer) Section(tag string) { w.String(tag) }

// Finish appends the CRC-32 trailer and returns the complete snapshot.
func (w *Writer) Finish() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], w.crc)
	return append(w.buf, tmp[:]...), nil
}

// Reader deserializes a snapshot produced by Writer. Errors latch: the
// first failure poisons every subsequent read (which returns zero
// values), and Err returns it.
type Reader struct {
	buf []byte
	pos int
	end int // payload end (before the CRC trailer)
	err error
}

// Open validates the magic, version and checksum of a snapshot and
// returns a reader positioned at the first section.
func Open(b []byte) (*Reader, error) {
	header := len(Magic) + 4
	if len(b) < header+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrMagic, string(b[:len(Magic)]))
	}
	ver := binary.LittleEndian.Uint32(b[len(Magic) : len(Magic)+4])
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	end := len(b) - 4
	want := binary.LittleEndian.Uint32(b[end:])
	if got := crc32.ChecksumIEEE(b[header:end]); got != want {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	return &Reader{buf: b, pos: header, end: end}, nil
}

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:r.end])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, r.pos))
		return 0
	}
	r.pos += n
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:r.end])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, r.pos))
		return 0
	}
	r.pos += n
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U64())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n > r.end {
		r.fail(fmt.Errorf("%w: string of %d bytes at offset %d", ErrTruncated, n, r.pos))
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := int(r.U64())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > r.end {
		r.fail(fmt.Errorf("%w: blob of %d bytes at offset %d", ErrTruncated, n, r.pos))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Section validates that the next section tag is exactly `tag`.
func (r *Reader) Section(tag string) {
	got := r.String()
	if r.err == nil && got != tag {
		r.fail(fmt.Errorf("%w: want %q, found %q", ErrSection, tag, got))
	}
}

// Close verifies the stream was fully consumed and returns the latched
// error, if any. A snapshot with trailing unread payload means the
// writer recorded more state than the reader restored — a layout drift
// that must fail loudly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != r.end {
		return fmt.Errorf("%w: %d unread payload bytes", ErrSection, r.end-r.pos)
	}
	return nil
}
