// Package netd implements Cinder's cooperative network stack (§5.5).
//
// netd owns a pooled reserve into which threads "cooperatively save up
// energy for a radio power up event". A network call whose caller —
// together with the pool — cannot afford the radio's activation cost
// blocks, contributes the energy its taps have accumulated to the pool,
// and sleeps until the pool reaches the threshold (125 % of the
// activation estimate, so senders have headroom for the packets
// themselves, Fig. 14). When the threshold is met netd debits the pool,
// powers the radio, and releases every waiting thread at once — the
// delegation mechanism that merges the staggered activations of Fig. 13a
// into the synchronized ones of Fig. 13b.
//
// Marginal packet costs are charged to each caller's own reserve, into
// debt when the cost is only known after the fact (incoming bytes,
// §5.5.2). Accurate attribution across the IPC boundary comes for free:
// applications reach netd through a kernel gate, so the calling thread
// is billed even while executing netd's code (§5.5.1).
package netd

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/units"
)

// GateName is the IPC entry point applications call.
const GateName = "netd.poll"

// DefaultThresholdPct is the pool threshold as a percentage of the
// radio activation estimate (§6.4: "netd requires 125 % of this level
// before turning the radio on").
const DefaultThresholdPct = 125

// DefaultSweepPeriod is how often netd sweeps waiting threads' reserves
// into the pool and re-checks the threshold.
const DefaultSweepPeriod = 100 * units.Millisecond

// ErrNotThread reports a gate call without a thread context.
var ErrNotThread = errors.New("netd: caller has no reserve")

// Config parameterizes a Netd instance.
type Config struct {
	// Cooperative selects the §5.5 policy. False yields the
	// "energy-unrestricted network stack" baseline of §6.4: requests go
	// straight to the radio, which bills the battery.
	Cooperative bool
	// ThresholdPct overrides DefaultThresholdPct.
	ThresholdPct int
	// SweepPeriod overrides DefaultSweepPeriod.
	SweepPeriod units.Time
	// Estimator optionally replaces the static activation-cost constant
	// with an online estimate refined from past activations (§9 /
	// internal/estimator). Nil keeps the offline-measured 9.5 J.
	Estimator interface{ Estimate() units.Energy }
	// QuiescentSweep parks the periodic sweep while no caller is
	// waiting; a new waiter revives it. A sweep with no waiters changes
	// no state — it only samples the pool trace — so results are
	// unaffected, but the device can fully quiesce between sessions
	// (the fleet runner enables this; experiments keep the dense trace).
	QuiescentSweep bool
	// NoPoolTrace disables the 100 ms pool-level sampling entirely. The
	// trace exists for the paper's Fig. 14; at fleet scale it is dead
	// weight — a device-week accumulates tens of thousands of samples
	// that no report reads but every checkpoint would have to carry —
	// so the fleet runner turns it off. Zero value keeps the trace, as
	// the experiments require.
	NoPoolTrace bool
	// Settle selects closed-form sweep settlement: instead of executing
	// a sweep every 100 ms while callers wait, netd computes the exact
	// boundary at which the pool crosses the threshold, defers the sweep
	// task there, and replays the skipped drains in one exact fixup per
	// waiter when the prediction is synchronized or dropped. SettleAuto
	// (the zero value) resolves to the kernel package default; the mode
	// only engages when the kernel itself runs closed-form settlement on
	// a next-event engine (every firing executes anyway otherwise) and
	// Cooperative pooling is on. SettlePerBatch forces per-sweep
	// execution — the fleet's -per-sweep A/B flag.
	Settle kernel.SettleMode
}

// Request is the argument applications pass through the netd gate: a
// poll session against a mail or RSS server, made of one or more
// sequential request/response exchanges (a pop3 conversation is several
// round trips).
type Request struct {
	// ReqBytes is the outbound request size per exchange.
	ReqBytes int
	// RespBytes is the expected response size per exchange.
	RespBytes int
	// Exchanges is the number of sequential round trips in the session;
	// 0 means 1.
	Exchanges int
	// OnDone, if non-nil, runs when the final response has been
	// delivered.
	OnDone func(at units.Time)
}

// Stats counts netd activity.
type Stats struct {
	// Polls is the number of gate calls accepted.
	Polls int64
	// Blocked is the number of calls that had to wait for the pool.
	Blocked int64
	// Immediate is the number of calls served without waiting.
	Immediate int64
	// PowerUps is the number of radio activations netd paid for.
	PowerUps int64
	// Pooled is the total energy swept into the pool from callers.
	Pooled units.Energy
	// Abandoned is the number of waiters dropped because their thread
	// exited or their billing reserve died mid-wait (a workload torn
	// down around them). They can never complete a session; keeping
	// them queued would pin the sweep loop at its period forever and
	// leave the device permanently checkpoint-unquiet.
	Abandoned int64
	// SettledSweeps is the number of sweep boundaries accounted in
	// closed form instead of executed as task firings. Together with the
	// engine's step counter it quantifies the busy-path win; it is
	// reported outside the canonical fleet JSON because per-sweep A/B
	// runs legitimately differ here.
	SettledSweeps int64
}

type waiter struct {
	th   *sched.Thread
	priv label.Priv
	bill *core.Reserve
	req  Request
}

// Netd is the network daemon.
type Netd struct {
	k     *kernel.Kernel
	radio *radio.Radio
	cfg   Config

	cat       label.Category
	priv      label.Priv
	pool      *core.Reserve
	container *kobj.Container
	waiters   []waiter
	stats     Stats
	poolTrace *trace.Series
	sweepTask *sim.Task

	// Closed-form sweep settlement (see Config.Settle). closedForm is
	// the resolved mode; settling marks the sweep task deferred to the
	// predicted pool-crossing instant; lastSweep is the last boundary
	// whose waiter drains are applied (executed or replayed); predicted
	// is the deferred-to instant, for diagnostics. The scratch slices
	// make prediction and replay allocation-free in steady state.
	closedForm bool
	settling   bool
	replaying  bool
	lastSweep  units.Time
	predicted  units.Time
	scratch    []*core.Tap
	predTaps   []predTap
	predLvls   []int64
}

// predTap is prediction scratch state for one constant tap feeding a
// waiter: rdm is the per-sweep-period numerator rate·batch·(period/batch)
// in µJ·10⁻³, carry the simulated sub-µJ residue, w the waiter index.
type predTap struct {
	rdm   int64
	carry int64
	w     int
}

// New creates netd, its pooled reserve (decay-exempt: §5.5.2 trusts
// netd not to hoard), and registers its gate on the kernel.
func New(k *kernel.Kernel, r *radio.Radio, cfg Config) (*Netd, error) {
	n := &Netd{}
	if err := n.Reset(k, r, cfg); err != nil {
		return nil, err
	}
	return n, nil
}

// Reset reinitializes the daemon in place to the exact state New would
// produce against the given (typically recycled) kernel: fresh category,
// container, pool, gate and sweep task, all counters zero. The fleet
// runner recycles one netd per worker this way.
func (n *Netd) Reset(k *kernel.Kernel, r *radio.Radio, cfg Config) error {
	if cfg.ThresholdPct == 0 {
		cfg.ThresholdPct = DefaultThresholdPct
	}
	if cfg.SweepPeriod == 0 {
		cfg.SweepPeriod = DefaultSweepPeriod
	}
	n.k, n.radio, n.cfg = k, r, cfg
	n.cat = k.NewCategory()
	n.priv = label.NewPriv(n.cat)
	n.container = kobj.NewContainer(k.Table, k.Root, "netd", label.Public())
	poolLabel := label.Public().With(n.cat, label.Level2)
	n.pool = k.CreateReserveOpts(n.container, "netd-pool", poolLabel, core.ReserveOpts{
		DecayExempt: true,
	})
	clear(n.waiters)
	n.waiters = n.waiters[:0]
	n.stats = Stats{}
	if n.poolTrace == nil {
		n.poolTrace = trace.NewSeries("netd-pool", "µJ")
	} else {
		n.poolTrace.Reset("netd-pool", "µJ")
	}

	_, err := k.RegisterGate(n.container, GateName, label.Public(), n.priv, n.pool,
		func(call *kernel.Call) (any, error) { return nil, n.handlePoll(call) })
	if err != nil {
		return fmt.Errorf("netd: %w", err)
	}
	n.sweepTask = k.Eng.Every("netd:sweep", cfg.SweepPeriod, func(e *sim.Engine) { n.sweep(e.Now()) })

	settle := cfg.Settle
	if settle == kernel.SettleAuto {
		settle = kernel.DefaultSettleMode()
	}
	n.closedForm = cfg.Cooperative && settle == kernel.SettleClosedForm && k.LazySettle()
	n.settling = false
	n.lastSweep = 0
	n.predicted = 0
	if n.closedForm {
		k.AddSweepSettler(n)
	}
	return nil
}

// SetEstimator installs an online activation-cost estimator after
// construction (Config.Estimator set late). The fleet builds netd
// before the scenario runs, but the estimator needs the device's radio
// — so scenarios wire it from Build, before the simulation starts.
// Settlement stays exact: the estimate only changes when a radio
// episode ends, and no pool-crossing deferral is in force while the
// radio is awake (settleGuard requires Sleep; a wake-up invalidates).
func (n *Netd) SetEstimator(est interface{ Estimate() units.Energy }) {
	n.cfg.Estimator = est
}

// Pool returns netd's pooled reserve (observable by anyone; Fig. 14
// samples it).
func (n *Netd) Pool() *core.Reserve { return n.pool }

// PoolTrace returns the sampled pool-level series.
func (n *Netd) PoolTrace() *trace.Series { return n.poolTrace }

// Stats returns a copy of the counters.
func (n *Netd) Stats() Stats { return n.stats }

// Priv returns netd's privilege set (tests use it to inspect the pool).
func (n *Netd) Priv() label.Priv { return n.priv }

// handlePoll services one gate call.
func (n *Netd) handlePoll(call *kernel.Call) error {
	th := call.Caller
	if th.ActiveReserve() == nil {
		return ErrNotThread
	}
	n.stats.Polls++
	req, ok := call.Args.(Request)
	if !ok {
		return fmt.Errorf("netd: bad request type %T", call.Args)
	}
	// Network calls are synchronous: the caller blocks until its
	// response is delivered (and, cooperatively, until the pool can
	// afford the radio).
	th.Block()
	if !n.cfg.Cooperative {
		// Baseline: straight to the radio, marginal cost on the caller,
		// activation cost on the battery.
		n.stats.Immediate++
		n.runSession(call.Now, waiter{th: th, priv: call.BillPriv(), bill: call.BillTo(), req: req})
		return nil
	}

	n.pruneWaiters()
	w := waiter{th: th, priv: call.BillPriv(), bill: call.BillTo(), req: req}
	n.waiters = append(n.waiters, w)
	if n.cfg.QuiescentSweep {
		n.sweepTask.Resume()
	}
	// A new waiter changes the pool inflow; any closed-form prediction
	// made without it is stale. (The kernel's activity hooks usually
	// dropped it already when this caller's thread last woke.)
	n.InvalidateSweeps()
	// Contribute whatever the caller's taps have accumulated (§5.5.2).
	n.contribute(w)
	if n.poolReady(call.Now) {
		n.stats.Immediate++
		n.fire(call.Now)
		return nil
	}
	n.stats.Blocked++
	return nil
}

// pruneWaiters drops waiters that can never complete: their thread has
// exited or their billing reserve has died (workload teardown
// mid-wait). A dead billing reserve contributes nothing at every
// future sweep and disqualifies closed-form settlement, so a stranded
// waiter would otherwise grind the sweep task at its period for the
// rest of the run — and block checkpointing forever, since the device
// never goes netd-quiet. Energy the waiter already pooled stays in the
// pool for future sessions.
func (n *Netd) pruneWaiters() {
	kept := n.waiters[:0]
	for _, w := range n.waiters {
		if w.th.State() == sched.Exited || w.bill.Dead() {
			n.stats.Abandoned++
			continue
		}
		kept = append(kept, w)
	}
	n.waiters = kept
}

// contribute sweeps the caller's available energy into the pool.
func (n *Netd) contribute(w waiter) {
	moved, err := n.k.Graph.TransferUpTo(w.priv, w.th.ActiveReserve(), n.pool, units.MaxEnergy)
	if err == nil {
		n.stats.Pooled += moved
	}
}

// activationCost returns the energy a power-up is expected to add: the
// radio's model prediction, or the online estimator's when one is
// configured and the radio is asleep.
func (n *Netd) activationCost(now units.Time) units.Energy {
	if n.cfg.Estimator != nil && n.radio.State() == radio.Sleep {
		return n.cfg.Estimator.Estimate()
	}
	return n.radio.ActivationCost(now)
}

// threshold returns the pool level required before powering the radio.
func (n *Netd) threshold(now units.Time) units.Energy {
	return n.activationCost(now) * units.Energy(n.cfg.ThresholdPct) / 100
}

// poolReady reports whether the pool can cover the current threshold.
func (n *Netd) poolReady(now units.Time) bool {
	lvl, err := n.pool.Level(n.priv)
	if err != nil {
		return false
	}
	need := n.threshold(now)
	return lvl >= need
}

// sweep runs periodically: waiting threads keep contributing their tap
// inflow, and the pool fires when it reaches the threshold. Under
// closed-form settlement a sweep that leaves the pool short re-predicts
// the crossing instant and defers the task there instead of grinding
// through every 100 ms boundary in between.
func (n *Netd) sweep(now units.Time) {
	if !n.cfg.NoPoolTrace {
		n.poolTrace.Add(now, func() int64 {
			lvl, _ := n.pool.Level(n.priv)
			return int64(lvl)
		}())
	}
	n.settling = false
	n.lastSweep = now
	n.pruneWaiters()
	if len(n.waiters) == 0 {
		if n.cfg.QuiescentSweep {
			n.sweepTask.Park()
		}
		return
	}
	for _, w := range n.waiters {
		n.contribute(w)
	}
	if n.poolReady(now) {
		n.fire(now)
		return
	}
	n.maybeSettle(now)
}

// maybeSettle predicts the boundary at which the pool will cross the
// threshold and defers the sweep task there. The engine keeps the
// deferral exact: the kernel synchronizes the settler before every
// executed instant (replaying the skipped drains), any activity that
// could perturb the prediction invalidates it, and a prediction that
// fires early is harmless — the sweep re-checks and re-predicts.
func (n *Netd) maybeSettle(now units.Time) {
	if !n.closedForm || now%n.cfg.SweepPeriod != 0 || !n.settleGuard() {
		return
	}
	t := n.predictFire(now)
	if t <= now+n.cfg.SweepPeriod {
		return // next boundary fires anyway; stay on the grid
	}
	n.sweepTask.DeferUntil(t)
	n.settling = true
	n.predicted = t
}

// settleGuard reports whether the pooling loop is in the regime the
// closed-form model covers exactly:
//
//   - sweep boundaries lie on the tap-batch grid, so per-boundary
//     credits decompose from telescoped batch flows;
//   - no pool trace — a trace samples every boundary, which skipping
//     would lose (experiments keep the trace and fall back to per-sweep
//     execution, preserving the frozen plot hashes);
//   - the radio is asleep, so the activation cost — and with it the
//     threshold — is constant until a wake-up, which invalidates;
//   - no tap touches the pool, so contributions are its only inflow;
//   - every waiter's billing reserve is alive, drained by no tap, and
//     fed only by constant-rate taps (proportional inflow is
//     level-coupled and does not telescope).
//
// Decay needs no guard: decay bites occur at executed 1 s instants,
// the settler is synchronized before each, and a prediction that
// ignores future bites only errs early.
func (n *Netd) settleGuard() bool {
	if n.cfg.SweepPeriod%n.k.TapBatch() != 0 {
		return false
	}
	if !n.cfg.NoPoolTrace {
		return false
	}
	if n.radio.State() != radio.Sleep {
		return false
	}
	g := n.k.Graph
	if g.ReserveTapped(n.pool) {
		return false
	}
	for i := range n.waiters {
		w := &n.waiters[i]
		if w.bill == nil || w.bill.Dead() {
			return false
		}
		if g.ReserveDrainedByTap(w.bill) {
			return false
		}
		n.scratch = g.TapsInto(w.bill, n.scratch[:0])
		for _, t := range n.scratch {
			if t.Kind() != core.TapConst {
				return false
			}
		}
	}
	return true
}

// predictFire returns the first sweep boundary after now at which the
// pool reaches the threshold, simulating the per-boundary drains in
// closed form: each constant tap credits ⌊(rate·batch·m + carry)/1000⌋ µJ
// per sweep period (m batches), carries telescope exactly, and every
// boundary drains each waiter's positive level into the pool. The result
// is capped at the depletion horizon — beyond it a source could clamp
// and constant-rate extrapolation lies — and at a fixed iteration bound;
// a capped prediction just re-predicts when the sweep fires there.
// Returns 0 when no boundary can be trusted.
func (n *Netd) predictFire(now units.Time) units.Time {
	poolLvl, err := n.pool.Level(n.priv)
	if err != nil {
		return 0
	}
	need := n.threshold(now)
	period := n.cfg.SweepPeriod
	dt := n.k.TapBatch()
	m := int64(period / dt)
	maxSweeps := n.k.SweepHorizonBatches() / m
	const sweepCap = 1 << 14
	if maxSweeps > sweepCap {
		maxSweeps = sweepCap
	}
	if maxSweeps < 2 {
		return 0
	}
	n.predTaps = n.predTaps[:0]
	n.predLvls = n.predLvls[:0]
	for i := range n.waiters {
		w := &n.waiters[i]
		lvl, err := w.bill.Level(w.priv)
		if err != nil || lvl > 0 {
			// Unreadable or undrainable (a failing contribute leaves a
			// surplus): model the reserve as drained. Extra modeled
			// contributions only predict the crossing early, which is
			// safe — the sweep fires, re-checks, re-predicts.
			lvl = 0
		}
		n.predLvls = append(n.predLvls, int64(lvl))
		n.scratch = n.k.Graph.TapsInto(w.bill, n.scratch[:0])
		for _, t := range n.scratch {
			n.predTaps = append(n.predTaps, predTap{
				rdm:   int64(t.Rate()) * int64(dt) * m,
				carry: t.Carry(),
				w:     i,
			})
		}
	}
	pool := int64(poolLvl)
	for s := int64(1); s <= maxSweeps; s++ {
		for ti := range n.predTaps {
			t := &n.predTaps[ti]
			tot := t.rdm + t.carry
			t.carry = tot % 1000
			n.predLvls[t.w] += tot / 1000
		}
		for wi := range n.predLvls {
			if n.predLvls[wi] > 0 {
				pool += n.predLvls[wi]
				n.predLvls[wi] = 0
			}
		}
		if pool >= int64(need) {
			return now + units.Time(s)*period
		}
	}
	return now + units.Time(maxSweeps)*period
}

// replayThrough applies, in one exact fixup per waiter, the drains the
// deferred sweep task skipped at every boundary in (lastSweep, limit].
// For a reserve whose only credits are non-negative constant-tap flows,
// draining max(0, level) at boundaries b₁..bₖ moves in total
// max(0, L₀ + Cₖ) — L₀ the level after the lastSweep drain, Cₖ the
// credits through bₖ — and leaves min(0, L₀+Cₖ). The current level
// already includes ρ, the credits applied after bₖ (the kernel settles
// tap batches before synchronizing settlers), so the fixup transfers
// max(0, level−ρ); ρ decomposes backward from each tap's current carry,
// since constant-tap carries evolve linearly mod 1000.
func (n *Netd) replayThrough(limit units.Time) {
	period := n.cfg.SweepPeriod
	last := limit - limit%period
	if last <= n.lastSweep {
		return
	}
	swept := int64((last - n.lastSweep) / period)
	settled := n.k.TapsSettledThrough()
	dt := n.k.TapBatch()
	g := n.k.Graph
	// The fixup transfers below fire the graph's tap-activity hook, which
	// routes back here as InvalidateSweeps. Those transfers are the
	// replay's own — modeled exactly by the prediction — so invalidating
	// on them would tear down the deferral it is servicing.
	n.replaying = true
	defer func() { n.replaying = false }()
	for i := range n.waiters {
		w := &n.waiters[i]
		lvl, err := w.bill.Level(w.priv)
		if err != nil {
			// Per-sweep execution's TransferUpTo fails identically at
			// every skipped boundary, moving nothing.
			continue
		}
		var rho units.Energy
		if settled > last {
			j := int64((settled - last) / dt)
			n.scratch = g.TapsInto(w.bill, n.scratch[:0])
			for _, t := range n.scratch {
				tot := int64(t.Rate()) * int64(dt) * j
				carry := t.Carry()
				start := ((carry-tot)%1000 + 1000) % 1000
				rho += units.Energy((tot + start - carry) / 1000)
			}
		}
		if pre := lvl - rho; pre > 0 {
			if moved, err := g.TransferUpTo(w.priv, w.bill, n.pool, pre); err == nil {
				n.stats.Pooled += moved
			}
		}
	}
	n.stats.SettledSweeps += swept
	n.lastSweep = last
}

// SyncSweeps implements kernel.SweepSettler: called before every
// executed instant (after tap/baseline/device settlement has caught up),
// it replays the boundaries the deferred sweep task skipped strictly
// before now and, when a boundary lands exactly now, hands the firing
// back to the task so it runs in its registration slot — after the
// kernel's decay task, exactly where per-sweep execution puts it.
func (n *Netd) SyncSweeps(now units.Time) {
	if !n.settling {
		return
	}
	n.replayThrough(now - 1)
	if now%n.cfg.SweepPeriod == 0 && n.sweepTask.NextDue() > now {
		n.settling = false
		n.sweepTask.ResumeAt(now)
	}
}

// SettleSweeps implements kernel.SweepSettler: closes out a Run whose
// stop instant the engine never executed. Skipped boundaries strictly
// before the stop replay as usual; a boundary exactly at the stop runs
// as a direct sweep, after the kernel's own at-stop boundary work.
func (n *Netd) SettleSweeps(now units.Time) {
	if !n.settling {
		return
	}
	n.replayThrough(now - 1)
	if now%n.cfg.SweepPeriod == 0 && n.sweepTask.NextDue() > now {
		n.settling = false
		n.sweep(now)
	}
}

// InvalidateSweeps implements kernel.SweepSettler: any activity that
// could perturb the prediction — a thread woken, a tap activated,
// changed or released, a decayable reserve created, the radio woken, a
// new waiter — returns the sweep task to its periodic grid. Boundaries
// skipped so far replay at the next executed instant; none are lost,
// because the resumed task's next firing is the first grid boundary at
// or after now.
func (n *Netd) InvalidateSweeps() {
	if n.replaying || !n.settling {
		return
	}
	n.settling = false
	n.sweepTask.Resume()
}

// PredictedFire returns the instant the deferred sweep expects the pool
// to cross the threshold, or 0 while the sweep rides its periodic grid
// (diagnostics; the fuzz harness asserts it stays on the sweep grid,
// strictly in the future, ahead of the last accounted boundary).
func (n *Netd) PredictedFire() units.Time {
	if !n.settling {
		return 0
	}
	return n.predicted
}

// fire pays the radio's activation estimate out of the pool and
// releases every waiter: "every 60 seconds enough energy is saved to
// use the radio and both applications proceed simultaneously" (§6.4).
func (n *Netd) fire(now units.Time) {
	cost := n.activationCost(now)
	if cost > 0 {
		if _, err := n.k.Graph.TransferUpTo(n.priv, n.pool, n.radio.FundingReserve(), cost); err != nil {
			return
		}
		n.stats.PowerUps++
	}
	waiters := n.waiters
	n.waiters = nil
	for _, w := range waiters {
		n.runSession(now, w)
	}
}

// runSession drives the waiter's sequential exchanges and wakes the
// thread when the last response lands. Exchanges after the first run
// against an already-active radio, extending its idle window — the
// §5.5 cost model's "back-to-back actions are cheaper" regime.
func (n *Netd) runSession(now units.Time, w waiter) {
	remaining := w.req.Exchanges
	if remaining <= 0 {
		remaining = 1
	}
	var doOne func(at units.Time)
	doOne = func(at units.Time) {
		remaining--
		if remaining == 0 {
			n.radio.Exchange(at, w.req.ReqBytes, w.req.RespBytes,
				w.bill, w.priv, func(done units.Time) {
					w.th.Wake()
					if w.req.OnDone != nil {
						w.req.OnDone(done)
					}
				})
			return
		}
		n.radio.Exchange(at, w.req.ReqBytes, w.req.RespBytes,
			w.bill, w.priv, doOne)
	}
	doOne(now)
}

// WaitingThreads returns the number of blocked callers (diagnostics).
func (n *Netd) WaitingThreads() int { return len(n.waiters) }

// Snapshot serializes the daemon's mutable state. Waiters cannot be
// serialized (they hold thread and reserve references into a world the
// restore rebuilds); the fleet checkpoints only at quiescent instants
// where none exist, and Restore rejects a snapshot that recorded any.
func (n *Netd) Snapshot(w *snap.Writer) {
	w.Section("netd")
	w.U64(uint64(len(n.waiters)))
	w.I64(n.stats.Polls)
	w.I64(n.stats.Blocked)
	w.I64(n.stats.Immediate)
	w.I64(n.stats.PowerUps)
	w.I64(int64(n.stats.Pooled))
	w.I64(n.stats.Abandoned)
	w.I64(n.stats.SettledSweeps)
	w.I64(int64(n.lastSweep))
	w.Bool(n.settling)
	w.Bool(!n.cfg.NoPoolTrace)
	if !n.cfg.NoPoolTrace {
		n.poolTrace.Snapshot(w)
	}
}

// Restore overlays a snapshot onto a freshly rebuilt daemon. The pooled
// reserve's level belongs to the graph's snapshot.
func (n *Netd) Restore(r *snap.Reader) error {
	r.Section("netd")
	waiters := int(r.U64())
	stats := Stats{
		Polls:         r.I64(),
		Blocked:       r.I64(),
		Immediate:     r.I64(),
		PowerUps:      r.I64(),
		Pooled:        units.Energy(r.I64()),
		Abandoned:     r.I64(),
		SettledSweeps: r.I64(),
	}
	lastSweep := units.Time(r.I64())
	settling := r.Bool()
	traced := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if waiters > 0 {
		return fmt.Errorf("netd: restore: snapshot recorded %d blocked callers; "+
			"a netd session spans executed instants whose waiter state (thread "+
			"and reserve references, predicted pool-crossing) cannot be "+
			"serialized — checkpoint at a quiet point between sessions instead "+
			"(the fleet runner's chunk boundaries qualify; mid-wait instants do not)", waiters)
	}
	if settling {
		// settling without waiters is unreachable (predictions exist only
		// while callers wait); reject rather than resume inconsistently.
		return fmt.Errorf("netd: restore: snapshot recorded a deferred sweep with no waiters")
	}
	if traced != !n.cfg.NoPoolTrace {
		return fmt.Errorf("netd: restore: snapshot pool tracing %v, rebuilt daemon %v", traced, !n.cfg.NoPoolTrace)
	}
	if traced {
		if err := n.poolTrace.Restore(r); err != nil {
			return err
		}
	}
	n.stats = stats
	n.lastSweep = lastSweep
	n.settling = false
	return nil
}

var _ kernel.SweepSettler = (*Netd)(nil)
