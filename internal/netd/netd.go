// Package netd implements Cinder's cooperative network stack (§5.5).
//
// netd owns a pooled reserve into which threads "cooperatively save up
// energy for a radio power up event". A network call whose caller —
// together with the pool — cannot afford the radio's activation cost
// blocks, contributes the energy its taps have accumulated to the pool,
// and sleeps until the pool reaches the threshold (125 % of the
// activation estimate, so senders have headroom for the packets
// themselves, Fig. 14). When the threshold is met netd debits the pool,
// powers the radio, and releases every waiting thread at once — the
// delegation mechanism that merges the staggered activations of Fig. 13a
// into the synchronized ones of Fig. 13b.
//
// Marginal packet costs are charged to each caller's own reserve, into
// debt when the cost is only known after the fact (incoming bytes,
// §5.5.2). Accurate attribution across the IPC boundary comes for free:
// applications reach netd through a kernel gate, so the calling thread
// is billed even while executing netd's code (§5.5.1).
package netd

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/units"
)

// GateName is the IPC entry point applications call.
const GateName = "netd.poll"

// DefaultThresholdPct is the pool threshold as a percentage of the
// radio activation estimate (§6.4: "netd requires 125 % of this level
// before turning the radio on").
const DefaultThresholdPct = 125

// DefaultSweepPeriod is how often netd sweeps waiting threads' reserves
// into the pool and re-checks the threshold.
const DefaultSweepPeriod = 100 * units.Millisecond

// ErrNotThread reports a gate call without a thread context.
var ErrNotThread = errors.New("netd: caller has no reserve")

// Config parameterizes a Netd instance.
type Config struct {
	// Cooperative selects the §5.5 policy. False yields the
	// "energy-unrestricted network stack" baseline of §6.4: requests go
	// straight to the radio, which bills the battery.
	Cooperative bool
	// ThresholdPct overrides DefaultThresholdPct.
	ThresholdPct int
	// SweepPeriod overrides DefaultSweepPeriod.
	SweepPeriod units.Time
	// Estimator optionally replaces the static activation-cost constant
	// with an online estimate refined from past activations (§9 /
	// internal/estimator). Nil keeps the offline-measured 9.5 J.
	Estimator interface{ Estimate() units.Energy }
	// QuiescentSweep parks the periodic sweep while no caller is
	// waiting; a new waiter revives it. A sweep with no waiters changes
	// no state — it only samples the pool trace — so results are
	// unaffected, but the device can fully quiesce between sessions
	// (the fleet runner enables this; experiments keep the dense trace).
	QuiescentSweep bool
	// NoPoolTrace disables the 100 ms pool-level sampling entirely. The
	// trace exists for the paper's Fig. 14; at fleet scale it is dead
	// weight — a device-week accumulates tens of thousands of samples
	// that no report reads but every checkpoint would have to carry —
	// so the fleet runner turns it off. Zero value keeps the trace, as
	// the experiments require.
	NoPoolTrace bool
}

// Request is the argument applications pass through the netd gate: a
// poll session against a mail or RSS server, made of one or more
// sequential request/response exchanges (a pop3 conversation is several
// round trips).
type Request struct {
	// ReqBytes is the outbound request size per exchange.
	ReqBytes int
	// RespBytes is the expected response size per exchange.
	RespBytes int
	// Exchanges is the number of sequential round trips in the session;
	// 0 means 1.
	Exchanges int
	// OnDone, if non-nil, runs when the final response has been
	// delivered.
	OnDone func(at units.Time)
}

// Stats counts netd activity.
type Stats struct {
	// Polls is the number of gate calls accepted.
	Polls int64
	// Blocked is the number of calls that had to wait for the pool.
	Blocked int64
	// Immediate is the number of calls served without waiting.
	Immediate int64
	// PowerUps is the number of radio activations netd paid for.
	PowerUps int64
	// Pooled is the total energy swept into the pool from callers.
	Pooled units.Energy
}

type waiter struct {
	th   *sched.Thread
	priv label.Priv
	bill *core.Reserve
	req  Request
}

// Netd is the network daemon.
type Netd struct {
	k     *kernel.Kernel
	radio *radio.Radio
	cfg   Config

	cat       label.Category
	priv      label.Priv
	pool      *core.Reserve
	container *kobj.Container
	waiters   []waiter
	stats     Stats
	poolTrace *trace.Series
	sweepTask *sim.Task
}

// New creates netd, its pooled reserve (decay-exempt: §5.5.2 trusts
// netd not to hoard), and registers its gate on the kernel.
func New(k *kernel.Kernel, r *radio.Radio, cfg Config) (*Netd, error) {
	n := &Netd{}
	if err := n.Reset(k, r, cfg); err != nil {
		return nil, err
	}
	return n, nil
}

// Reset reinitializes the daemon in place to the exact state New would
// produce against the given (typically recycled) kernel: fresh category,
// container, pool, gate and sweep task, all counters zero. The fleet
// runner recycles one netd per worker this way.
func (n *Netd) Reset(k *kernel.Kernel, r *radio.Radio, cfg Config) error {
	if cfg.ThresholdPct == 0 {
		cfg.ThresholdPct = DefaultThresholdPct
	}
	if cfg.SweepPeriod == 0 {
		cfg.SweepPeriod = DefaultSweepPeriod
	}
	n.k, n.radio, n.cfg = k, r, cfg
	n.cat = k.NewCategory()
	n.priv = label.NewPriv(n.cat)
	n.container = kobj.NewContainer(k.Table, k.Root, "netd", label.Public())
	poolLabel := label.Public().With(n.cat, label.Level2)
	n.pool = k.CreateReserveOpts(n.container, "netd-pool", poolLabel, core.ReserveOpts{
		DecayExempt: true,
	})
	clear(n.waiters)
	n.waiters = n.waiters[:0]
	n.stats = Stats{}
	if n.poolTrace == nil {
		n.poolTrace = trace.NewSeries("netd-pool", "µJ")
	} else {
		n.poolTrace.Reset("netd-pool", "µJ")
	}

	_, err := k.RegisterGate(n.container, GateName, label.Public(), n.priv, n.pool,
		func(call *kernel.Call) (any, error) { return nil, n.handlePoll(call) })
	if err != nil {
		return fmt.Errorf("netd: %w", err)
	}
	n.sweepTask = k.Eng.Every("netd:sweep", cfg.SweepPeriod, func(e *sim.Engine) { n.sweep(e.Now()) })
	return nil
}

// Pool returns netd's pooled reserve (observable by anyone; Fig. 14
// samples it).
func (n *Netd) Pool() *core.Reserve { return n.pool }

// PoolTrace returns the sampled pool-level series.
func (n *Netd) PoolTrace() *trace.Series { return n.poolTrace }

// Stats returns a copy of the counters.
func (n *Netd) Stats() Stats { return n.stats }

// Priv returns netd's privilege set (tests use it to inspect the pool).
func (n *Netd) Priv() label.Priv { return n.priv }

// handlePoll services one gate call.
func (n *Netd) handlePoll(call *kernel.Call) error {
	th := call.Caller
	if th.ActiveReserve() == nil {
		return ErrNotThread
	}
	n.stats.Polls++
	req, ok := call.Args.(Request)
	if !ok {
		return fmt.Errorf("netd: bad request type %T", call.Args)
	}
	// Network calls are synchronous: the caller blocks until its
	// response is delivered (and, cooperatively, until the pool can
	// afford the radio).
	th.Block()
	if !n.cfg.Cooperative {
		// Baseline: straight to the radio, marginal cost on the caller,
		// activation cost on the battery.
		n.stats.Immediate++
		n.runSession(call.Now, waiter{th: th, priv: call.BillPriv(), bill: call.BillTo(), req: req})
		return nil
	}

	w := waiter{th: th, priv: call.BillPriv(), bill: call.BillTo(), req: req}
	n.waiters = append(n.waiters, w)
	if n.cfg.QuiescentSweep {
		n.sweepTask.Resume()
	}
	// Contribute whatever the caller's taps have accumulated (§5.5.2).
	n.contribute(w)
	if n.poolReady(call.Now) {
		n.stats.Immediate++
		n.fire(call.Now)
		return nil
	}
	n.stats.Blocked++
	return nil
}

// contribute sweeps the caller's available energy into the pool.
func (n *Netd) contribute(w waiter) {
	moved, err := n.k.Graph.TransferUpTo(w.priv, w.th.ActiveReserve(), n.pool, units.MaxEnergy)
	if err == nil {
		n.stats.Pooled += moved
	}
}

// activationCost returns the energy a power-up is expected to add: the
// radio's model prediction, or the online estimator's when one is
// configured and the radio is asleep.
func (n *Netd) activationCost(now units.Time) units.Energy {
	if n.cfg.Estimator != nil && n.radio.State() == radio.Sleep {
		return n.cfg.Estimator.Estimate()
	}
	return n.radio.ActivationCost(now)
}

// threshold returns the pool level required before powering the radio.
func (n *Netd) threshold(now units.Time) units.Energy {
	return n.activationCost(now) * units.Energy(n.cfg.ThresholdPct) / 100
}

// poolReady reports whether the pool can cover the current threshold.
func (n *Netd) poolReady(now units.Time) bool {
	lvl, err := n.pool.Level(n.priv)
	if err != nil {
		return false
	}
	need := n.threshold(now)
	return lvl >= need
}

// sweep runs periodically: waiting threads keep contributing their tap
// inflow, and the pool fires when it reaches the threshold.
func (n *Netd) sweep(now units.Time) {
	if !n.cfg.NoPoolTrace {
		n.poolTrace.Add(now, func() int64 {
			lvl, _ := n.pool.Level(n.priv)
			return int64(lvl)
		}())
	}
	if len(n.waiters) == 0 {
		if n.cfg.QuiescentSweep {
			n.sweepTask.Park()
		}
		return
	}
	for _, w := range n.waiters {
		n.contribute(w)
	}
	if n.poolReady(now) {
		n.fire(now)
	}
}

// fire pays the radio's activation estimate out of the pool and
// releases every waiter: "every 60 seconds enough energy is saved to
// use the radio and both applications proceed simultaneously" (§6.4).
func (n *Netd) fire(now units.Time) {
	cost := n.activationCost(now)
	if cost > 0 {
		if _, err := n.k.Graph.TransferUpTo(n.priv, n.pool, n.radio.FundingReserve(), cost); err != nil {
			return
		}
		n.stats.PowerUps++
	}
	waiters := n.waiters
	n.waiters = nil
	for _, w := range waiters {
		n.runSession(now, w)
	}
}

// runSession drives the waiter's sequential exchanges and wakes the
// thread when the last response lands. Exchanges after the first run
// against an already-active radio, extending its idle window — the
// §5.5 cost model's "back-to-back actions are cheaper" regime.
func (n *Netd) runSession(now units.Time, w waiter) {
	remaining := w.req.Exchanges
	if remaining <= 0 {
		remaining = 1
	}
	var doOne func(at units.Time)
	doOne = func(at units.Time) {
		remaining--
		if remaining == 0 {
			n.radio.Exchange(at, w.req.ReqBytes, w.req.RespBytes,
				w.bill, w.priv, func(done units.Time) {
					w.th.Wake()
					if w.req.OnDone != nil {
						w.req.OnDone(done)
					}
				})
			return
		}
		n.radio.Exchange(at, w.req.ReqBytes, w.req.RespBytes,
			w.bill, w.priv, doOne)
	}
	doOne(now)
}

// WaitingThreads returns the number of blocked callers (diagnostics).
func (n *Netd) WaitingThreads() int { return len(n.waiters) }

// Snapshot serializes the daemon's mutable state. Waiters cannot be
// serialized (they hold thread and reserve references into a world the
// restore rebuilds); the fleet checkpoints only at quiescent instants
// where none exist, and Restore rejects a snapshot that recorded any.
func (n *Netd) Snapshot(w *snap.Writer) {
	w.Section("netd")
	w.U64(uint64(len(n.waiters)))
	w.I64(n.stats.Polls)
	w.I64(n.stats.Blocked)
	w.I64(n.stats.Immediate)
	w.I64(n.stats.PowerUps)
	w.I64(int64(n.stats.Pooled))
	w.Bool(!n.cfg.NoPoolTrace)
	if !n.cfg.NoPoolTrace {
		n.poolTrace.Snapshot(w)
	}
}

// Restore overlays a snapshot onto a freshly rebuilt daemon. The pooled
// reserve's level belongs to the graph's snapshot.
func (n *Netd) Restore(r *snap.Reader) error {
	r.Section("netd")
	waiters := int(r.U64())
	stats := Stats{
		Polls:     r.I64(),
		Blocked:   r.I64(),
		Immediate: r.I64(),
		PowerUps:  r.I64(),
		Pooled:    units.Energy(r.I64()),
	}
	traced := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if waiters > 0 {
		return fmt.Errorf("netd: restore: snapshot recorded %d blocked callers; "+
			"netd sessions cannot span a checkpoint", waiters)
	}
	if traced != !n.cfg.NoPoolTrace {
		return fmt.Errorf("netd: restore: snapshot pool tracing %v, rebuilt daemon %v", traced, !n.cfg.NoPoolTrace)
	}
	if traced {
		if err := n.poolTrace.Restore(r); err != nil {
			return err
		}
	}
	n.stats = stats
	return nil
}
