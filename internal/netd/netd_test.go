package netd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/units"
)

// rig wires a kernel, radio, and netd together with one polling app.
type rig struct {
	k     *kernel.Kernel
	radio *radio.Radio
	netd  *Netd
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := kernel.New(kernel.Config{Seed: 7, DecayHalfLife: -1})
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
	k.AddDevice(r)
	n, err := New(k, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, radio: r, netd: n}
}

// addPoller spawns a thread that polls via the netd gate every interval,
// funded by a tap at the given rate. It returns the app's reserve and a
// counter of completed polls.
func (r *rig) addPoller(t *testing.T, name string, rate units.Power, interval units.Time, phase units.Time, req Request) (*core.Reserve, *int) {
	t.Helper()
	res, _, done := r.addPollerWithTap(t, name, rate, interval, phase, req)
	return res, done
}

// addPollerWithTap is addPoller exposing the funding tap, so the
// differential and fuzz harnesses can change its rate mid-run.
func (r *rig) addPollerWithTap(t testing.TB, name string, rate units.Power, interval units.Time, phase units.Time, req Request) (*core.Reserve, *core.Tap, *int) {
	t.Helper()
	res := r.k.CreateReserveOpts(r.k.Root, name, label.Public(), core.ReserveOpts{AllowDebt: true})
	tap, err := r.k.CreateTap(r.k.Root, name+"-tap", r.k.KernelPriv(), r.k.Battery(), res, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(r.k.KernelPriv(), rate); err != nil {
		t.Fatal(err)
	}
	done := new(int)
	var next units.Time = phase
	r.k.Spawn(r.k.Root, name, label.Priv{}, sched.RunnerFunc(
		func(now units.Time, th *sched.Thread) {
			if now < next {
				th.Sleep(next)
				return
			}
			next = now + interval
			rq := req
			userDone := rq.OnDone
			rq.OnDone = func(at units.Time) {
				*done++
				if userDone != nil {
					userDone(at)
				}
			}
			if _, err := r.k.GateCall(GateName, th, rq); err != nil {
				t.Errorf("poll: %v", err)
				th.Exit()
			}
		}), res)
	return res, tap, done
}

func TestUncooperativePollGoesStraightToRadio(t *testing.T) {
	r := newRig(t, Config{Cooperative: false})
	_, done := r.addPoller(t, "rss", units.Milliwatts(99), 60*units.Second, units.Second,
		Request{ReqBytes: 100, RespBytes: 2000})
	r.k.Run(50 * units.Second)
	if *done != 1 {
		t.Fatalf("polls done = %d, want 1", *done)
	}
	if r.radio.Stats().Activations != 1 {
		t.Fatalf("activations = %d", r.radio.Stats().Activations)
	}
	st := r.netd.Stats()
	if st.Immediate != 1 || st.Blocked != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCooperativeBlocksUntilPoolFills(t *testing.T) {
	// One app with a 99 mW tap needs ≈120 s to accumulate the 11.875 J
	// threshold; its first poll must block, then complete.
	r := newRig(t, Config{Cooperative: true})
	_, done := r.addPoller(t, "mail", units.Milliwatts(99), 300*units.Second, units.Second,
		Request{ReqBytes: 100, RespBytes: 2000})
	r.k.Run(60 * units.Second)
	if *done != 0 {
		t.Fatal("poll completed before pool could fill")
	}
	if r.netd.WaitingThreads() != 1 {
		t.Fatalf("waiting = %d, want 1", r.netd.WaitingThreads())
	}
	if r.radio.Stats().Activations != 0 {
		t.Fatal("radio activated early")
	}
	r.k.Run(90 * units.Second) // ≈150 s total
	if *done != 1 {
		t.Fatalf("poll not completed after pool filled: done=%d", *done)
	}
	if r.radio.Stats().Activations != 1 {
		t.Fatalf("activations = %d", r.radio.Stats().Activations)
	}
	if r.netd.Stats().PowerUps != 1 {
		t.Fatalf("power-ups = %d", r.netd.Stats().PowerUps)
	}
}

func TestCooperativePoolingSynchronizesApps(t *testing.T) {
	// The §6.4 configuration: two pollers, each funded to activate the
	// radio alone every ~2 min, polling every 60 s with a 15 s stagger.
	// Pooled, the radio powers up about once per minute and both
	// proceed together.
	r := newRig(t, Config{Cooperative: true})
	rate := units.Milliwatts(99) // ≈11.875 J / 120 s
	_, rssDone := r.addPoller(t, "rss", rate, 60*units.Second, units.Second,
		Request{ReqBytes: 200, RespBytes: 4000})
	_, mailDone := r.addPoller(t, "mail", rate, 60*units.Second, 16*units.Second,
		Request{ReqBytes: 200, RespBytes: 4000})
	r.k.Run(20 * units.Minute)

	acts := r.radio.Stats().Activations
	// ≈1 activation per minute (the two apps' pooled 198 mW buys
	// 11.875 J per ~60 s); allow broad bounds for phase effects.
	if acts < 15 || acts > 22 {
		t.Fatalf("activations = %d over 20 min, want ≈20 (one per minute)", acts)
	}
	// Both apps make progress at a similar rate.
	if *rssDone < 14 || *mailDone < 14 {
		t.Fatalf("polls done rss=%d mail=%d, want ≥14 each", *rssDone, *mailDone)
	}
	diff := *rssDone - *mailDone
	if diff < -3 || diff > 3 {
		t.Fatalf("asymmetric progress: rss=%d mail=%d", *rssDone, *mailDone)
	}
	if r.k.Graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", r.k.Graph.ConservationError())
	}
}

func TestPoolNeverEmptiesAfterFirstFire(t *testing.T) {
	// Fig. 14: the 125 % threshold means the pool is debited by the
	// activation cost but retains the ≈25 % margin — it "does not empty
	// to 0" once cycling.
	r := newRig(t, Config{Cooperative: true})
	rate := units.Milliwatts(99)
	r.addPoller(t, "rss", rate, 60*units.Second, units.Second,
		Request{ReqBytes: 200, RespBytes: 4000})
	r.addPoller(t, "mail", rate, 60*units.Second, 16*units.Second,
		Request{ReqBytes: 200, RespBytes: 4000})
	r.k.Run(10 * units.Minute)

	ts := r.netd.PoolTrace()
	if ts.Len() == 0 {
		t.Fatal("no pool samples")
	}
	stats := ts.Summarize()
	// Peaks near the threshold (≈11.9 J), never back to zero after the
	// first firing.
	if units.Energy(stats.Max) < units.Joules(11) {
		t.Fatalf("pool max = %v, want ≳11.9 J", units.Energy(stats.Max))
	}
	firstFire := false
	for _, p := range ts.Points() {
		if units.Energy(p.V) > units.Joules(11) {
			firstFire = true
		}
		if firstFire && p.V == 0 {
			t.Fatal("pool emptied to 0 after first firing")
		}
	}
	if !firstFire {
		t.Fatal("pool never reached threshold")
	}
}

func TestPoolProtectedFromApplications(t *testing.T) {
	r := newRig(t, Config{Cooperative: true})
	var app label.Priv
	if err := r.netd.Pool().Consume(app, units.Microjoule); err == nil {
		t.Fatal("application consumed from netd pool")
	}
	// Direct observation is denied too (§3.5: even a failed consumption
	// reveals the level, so observe is part of the protection); netd
	// itself holds the category.
	if _, err := r.netd.Pool().Level(app); err == nil {
		t.Fatal("application observed protected pool directly")
	}
	if _, err := r.netd.Pool().Level(r.netd.Priv()); err != nil {
		t.Fatalf("netd cannot observe its own pool: %v", err)
	}
}

func TestMarginalCostsBilledToCallers(t *testing.T) {
	// §5.5.1/§5.5.2: per-packet costs land on the calling app's
	// reserve, including incoming bytes charged into debt.
	r := newRig(t, Config{Cooperative: true})
	rate := units.Milliwatts(200) // fast fill so the poll fires quickly
	res, done := r.addPoller(t, "app", rate, 300*units.Second, units.Second,
		Request{ReqBytes: 500, RespBytes: 8000})
	r.k.Run(2 * units.Minute)
	if *done != 1 {
		t.Fatalf("done = %d", *done)
	}
	st, err := res.Stats(label.Priv{})
	if err != nil {
		t.Fatal(err)
	}
	p := power.Dream()
	wantData := p.PacketEnergy(500) + p.PacketEnergy(8000)
	// Consumed covers CPU (small) + data; data dominates.
	if st.Consumed < wantData {
		t.Fatalf("app consumed %v, want ≥ %v of data cost", st.Consumed, wantData)
	}
}

func TestActiveRadioServedWithoutNewActivation(t *testing.T) {
	// A poll arriving while the radio is active only needs the small
	// idle-extension cost, so it proceeds immediately.
	r := newRig(t, Config{Cooperative: true})
	rate := units.Milliwatts(99)
	_, aDone := r.addPoller(t, "a", rate, 300*units.Second, units.Second,
		Request{ReqBytes: 100, RespBytes: 1000})
	_, bDone := r.addPoller(t, "b", rate, 300*units.Second, 125*units.Second,
		Request{ReqBytes: 100, RespBytes: 1000})
	// a fires around t≈120 s (needs 11.875 J at 99 mW); b polls at 125 s
	// while the radio is still active and should ride along.
	r.k.Run(135 * units.Second)
	if *aDone != 1 {
		t.Fatalf("a done = %d", *aDone)
	}
	if *bDone != 1 {
		t.Fatalf("b done = %d (should have ridden the active radio)", *bDone)
	}
	if acts := r.radio.Stats().Activations; acts != 1 {
		t.Fatalf("activations = %d, want 1", acts)
	}
}
