package netd

// Differential and fuzz coverage for closed-form sweep settlement. The
// oracle is exactness: a cooperative-pooling scenario must produce
// byte-identical observable state whether sweeps execute every period
// (per-sweep), are accounted in closed form, or the whole simulation
// walks every tick. Scenarios are decoded from byte strings so the same
// generator feeds both the fixed three-way test and the fuzzer, which
// mutates waiter arrival/departure timing and tap rates freely.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/units"
)

// cursor yields scenario parameters from a fuzz byte string, cycling so
// short inputs still decode to a complete scenario.
type cursor struct {
	data []byte
	i    int
}

func (c *cursor) next() byte {
	if len(c.data) == 0 {
		return 0
	}
	b := c.data[c.i%len(c.data)]
	c.i++
	return b
}

type pollerSpec struct {
	rate     units.Power
	interval units.Time
	phase    units.Time
	req      Request
}

type rateChange struct {
	at     units.Time
	poller int
	rate   units.Power
}

type scenario struct {
	pollers []pollerSpec
	changes []rateChange
	chunks  []units.Time
}

// decodeScenario maps fuzz bytes onto 1–3 pollers (rate, period, phase,
// request shape), up to 3 mid-run tap-rate changes — including to zero,
// which strands the waiters with no inflow — and three run chunks whose
// boundaries force a settlement sync at arbitrary instants.
func decodeScenario(data []byte) scenario {
	c := &cursor{data: data}
	var sc scenario
	n := 1 + int(c.next()%3)
	for i := 0; i < n; i++ {
		sc.pollers = append(sc.pollers, pollerSpec{
			rate:     units.Milliwatts(float64(20 + 10*int(c.next()%18))),
			interval: units.Time(5+int(c.next()%56)) * units.Second,
			phase:    units.Time(c.next()%8) * units.Second,
			req: Request{
				ReqBytes:  200 + 100*int(c.next()%8),
				RespBytes: 500 + 400*int(c.next()%8),
				Exchanges: 1 + int(c.next()%3),
			},
		})
	}
	nc := int(c.next() % 4)
	for i := 0; i < nc; i++ {
		sc.changes = append(sc.changes, rateChange{
			at:     units.Time(1+int(c.next()%180)) * units.Second,
			poller: int(c.next()) % n,
			rate:   units.Milliwatts(float64(10 * int(c.next()%25))),
		})
	}
	for i := 0; i < 3; i++ {
		sc.chunks = append(sc.chunks, units.Time(15+int(c.next()%90))*units.Second)
	}
	return sc
}

// chunkState is the observable device state at a chunk boundary.
// SettledSweeps is zeroed before comparison: it is the one counter the
// settlement modes legitimately disagree on.
type chunkState struct {
	now      units.Time
	done     []int
	levels   []units.Energy
	pool     units.Energy
	fund     units.Energy
	battery  units.Energy
	consumed units.Energy
	waiting  int
	stats    Stats
}

func newRigMode(t testing.TB, kcfg kernel.Config, cfg Config) *rig {
	t.Helper()
	k := kernel.New(kcfg)
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
	k.AddDevice(r)
	n, err := New(k, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, radio: r, netd: n}
}

// runScenario executes sc on one rig and returns the state at every
// chunk boundary. With invariants set (the closed-form rig), a 500 ms
// probe asserts mid-run properties the chunk comparison cannot see:
//
//   - the predicted fire instant is strictly in the future, on the
//     sweep grid, and ahead of lastSweep, which itself never rewinds
//     (prediction values may legitimately move in either direction:
//     predictFire is conservative-early and re-predicts after a
//     non-firing boundary);
//   - no overshoot: while callers wait, the pool stays below the fire
//     threshold plus at most one sweep period of inflow — a later
//     crossing would have fired at its boundary.
//
// The probe task executes identical instants on every rig (invariants
// or not) so it cannot perturb a next-event comparison.
//
// Each chunk boundary also checks conservation: the battery's initial
// charge equals battery + app reserves + pool + radio fund + consumed,
// exactly, in integer microjoules.
func runScenario(t testing.TB, em sim.Mode, km, nm kernel.SettleMode, sc scenario, invariants bool) []chunkState {
	t.Helper()
	r := newRigMode(t,
		kernel.Config{Seed: 7, DecayHalfLife: -1, EngineMode: em, Settle: km},
		Config{Cooperative: true, QuiescentSweep: true, NoPoolTrace: true, Settle: nm})
	kp := r.k.KernelPriv()

	var (
		taps  []*core.Tap
		ress  []*core.Reserve
		dones []*int
	)
	for i, p := range sc.pollers {
		res, tap, done := r.addPollerWithTap(t, fmt.Sprintf("poller%d", i), p.rate, p.interval, p.phase, p.req)
		taps, ress, dones = append(taps, tap), append(ress, res), append(dones, done)
	}
	for _, ch := range sc.changes {
		ch := ch
		r.k.Eng.At(ch.at, func(*sim.Engine) {
			if err := taps[ch.poller].SetRate(kp, ch.rate); err != nil {
				t.Errorf("setrate: %v", err)
			}
		})
	}

	// maxRate bounds one boundary's pool inflow for the overshoot
	// check: decodeScenario never hands a tap more than 240 mW.
	maxRate := units.Milliwatts(float64(240 * len(sc.pollers)))
	var lastSweepSeen units.Time
	r.k.Eng.Every("probe", 500*units.Millisecond, func(e *sim.Engine) {
		if !invariants {
			return
		}
		now := e.Now()
		n := r.netd
		// Point-wise monotonicity of the predicted instant itself is NOT
		// an invariant: predictFire is deliberately conservative-early
		// (an early boundary fires, re-checks, re-predicts later), and
		// refinements from later base states tighten it earlier. What
		// the machinery does guarantee: the prediction is strictly in
		// the future, on the sweep grid, ahead of the last accounted
		// boundary — and lastSweep itself never rewinds.
		if n.settling {
			if n.predicted <= now {
				t.Errorf("t=%v: predicted fire %v is not in the future", now, n.predicted)
			}
			if n.predicted%n.cfg.SweepPeriod != 0 {
				t.Errorf("t=%v: predicted fire %v is off the sweep grid", now, n.predicted)
			}
			if n.predicted <= n.lastSweep {
				t.Errorf("t=%v: predicted fire %v not ahead of lastSweep %v", now, n.predicted, n.lastSweep)
			}
		}
		if n.lastSweep < lastSweepSeen {
			t.Errorf("t=%v: lastSweep rewound %v -> %v", now, lastSweepSeen, n.lastSweep)
		}
		lastSweepSeen = n.lastSweep
		if len(n.waiters) > 0 {
			lvl, err := n.pool.Level(kp)
			if err != nil {
				t.Errorf("pool level: %v", err)
				return
			}
			if thr := n.threshold(now); lvl >= thr+maxRate.Over(n.cfg.SweepPeriod) {
				t.Errorf("t=%v: pool overshoot: level %v >= threshold %v with %d waiters",
					now, lvl, thr, len(n.waiters))
			}
		}
	})

	battery0, err := r.k.Battery().Level(kp)
	if err != nil {
		t.Fatalf("battery level: %v", err)
	}
	var out []chunkState
	for _, d := range sc.chunks {
		r.k.Run(d)
		st := chunkState{
			now:      r.k.Now(),
			consumed: r.k.Consumed(),
			waiting:  r.netd.WaitingThreads(),
			stats:    r.netd.Stats(),
		}
		st.stats.SettledSweeps = 0
		total := st.consumed
		for _, dn := range dones {
			st.done = append(st.done, *dn)
		}
		for _, res := range ress {
			lvl, err := res.Level(kp)
			if err != nil {
				t.Fatalf("reserve level: %v", err)
			}
			st.levels = append(st.levels, lvl)
			total += lvl
		}
		if st.pool, err = r.netd.pool.Level(kp); err != nil {
			t.Fatalf("pool level: %v", err)
		}
		if st.fund, err = r.radio.FundingReserve().Level(kp); err != nil {
			t.Fatalf("fund level: %v", err)
		}
		if st.battery, err = r.k.Battery().Level(kp); err != nil {
			t.Fatalf("battery level: %v", err)
		}
		total += st.pool + st.fund + st.battery
		if total != battery0 {
			t.Errorf("t=%v: conservation violated: battery+reserves+consumed = %d µJ, started with %d µJ",
				st.now, total, battery0)
		}
		out = append(out, st)
	}
	return out
}

// diffStates compares two runs chunk by chunk and returns a description
// of the first divergence, or "".
func diffStates(a, b []chunkState) string {
	if len(a) != len(b) {
		return fmt.Sprintf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			return fmt.Sprintf("chunk %d:\n  a: %+v\n  b: %+v", i, a[i], b[i])
		}
	}
	return ""
}

// fuzzSeeds are shared by the three-way test and FuzzPoolSettle's seed
// corpus: the zero scenario, a single slow poller, a three-poller mix
// with rate changes, and a sequence that drives a tap to zero mid-wait.
var fuzzSeeds = [][]byte{
	{},
	{0, 3, 17, 2, 1, 4, 1, 0},
	{2, 7, 40, 1, 3, 2, 2, 16, 55, 0, 5, 6, 1, 3, 30, 2, 2, 9, 60, 1, 12, 0, 80, 2, 24, 40, 70, 10},
	{1, 0, 10, 0, 2, 3, 3, 1, 20, 0, 0, 50, 80, 20},
}

// TestThreeWaySettleDifferential runs each seed scenario under three
// regimes — a fixed-tick engine, a next-event engine with per-sweep
// netd execution, and the closed-form settlement path — and requires
// identical observable state at every chunk boundary.
func TestThreeWaySettleDifferential(t *testing.T) {
	for i, seed := range fuzzSeeds {
		sc := decodeScenario(seed)
		fixed := runScenario(t, sim.ModeFixedTick, kernel.SettleAuto, kernel.SettleAuto, sc, false)
		perSweep := runScenario(t, sim.ModeNextEvent, kernel.SettleClosedForm, kernel.SettlePerBatch, sc, false)
		closed := runScenario(t, sim.ModeNextEvent, kernel.SettleClosedForm, kernel.SettleClosedForm, sc, true)
		if d := diffStates(fixed, perSweep); d != "" {
			t.Errorf("scenario %d: fixed-tick vs per-sweep: %s", i, d)
		}
		if d := diffStates(perSweep, closed); d != "" {
			t.Errorf("scenario %d: per-sweep vs closed-form: %s", i, d)
		}
	}
}

// FuzzPoolSettle drives per-sweep and closed-form rigs through the same
// fuzz-decoded scenario and requires identical chunk states, alongside
// the mid-run probe invariants (future-only predictions, monotonicity
// absent new information, no pool overshoot, conservation).
func FuzzPoolSettle(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := decodeScenario(data)
		perSweep := runScenario(t, sim.ModeNextEvent, kernel.SettleClosedForm, kernel.SettlePerBatch, sc, false)
		closed := runScenario(t, sim.ModeNextEvent, kernel.SettleClosedForm, kernel.SettleClosedForm, sc, true)
		if d := diffStates(perSweep, closed); d != "" {
			t.Fatalf("per-sweep vs closed-form diverged: %s", d)
		}
	})
}
