package label

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPublicLabelObservableByZeroPriv(t *testing.T) {
	var p Priv
	l := Public()
	if !p.CanObserve(l) {
		t.Error("zero priv cannot observe public label")
	}
	if !p.CanModify(l) {
		t.Error("zero priv cannot modify public label")
	}
	if !p.CanUse(l) {
		t.Error("zero priv cannot use public label")
	}
}

func TestElevatedCategoryRequiresOwnership(t *testing.T) {
	const c Category = 7
	protected := Public().With(c, Level2)

	var stranger Priv
	if stranger.CanModify(protected) {
		t.Error("stranger can modify protected object")
	}
	// Level2 exceeds default clearance Level1, so even observation fails.
	if stranger.CanObserve(protected) {
		t.Error("stranger can observe Level2-protected object")
	}

	owner := NewPriv(c)
	if !owner.CanObserve(protected) || !owner.CanModify(protected) {
		t.Error("owner lacks rights on own category")
	}

	// High clearance grants observation but not modification.
	reader := Priv{}.WithClearance(Level3)
	if !reader.CanObserve(protected) {
		t.Error("Level3 clearance cannot observe Level2 object")
	}
	if reader.CanModify(protected) {
		t.Error("non-owner with high clearance can modify protected object")
	}
}

func TestLoweredCategoryStillModifiable(t *testing.T) {
	// A category *below* the default does not protect modification; it
	// only affects observation thresholds (which default clearance
	// passes).
	l := Public().With(3, Level0)
	var p Priv
	if !p.CanModify(l) {
		t.Error("lowered category blocked modification")
	}
}

func TestUnobservableDefault(t *testing.T) {
	secret := New(Level3, nil)
	var p Priv
	if p.CanObserve(secret) {
		t.Error("default-clearance thread observes Level3-default label")
	}
	high := Priv{}.WithClearance(Level3)
	if !high.CanObserve(secret) {
		t.Error("Level3 clearance cannot observe Level3 default")
	}
}

func TestCanUseIsObserveAndModify(t *testing.T) {
	const c Category = 9
	l := Public().With(c, Level2)
	cases := []struct {
		p    Priv
		want bool
	}{
		{NewPriv(c), true},
		{Priv{}, false},
		{Priv{}.WithClearance(Level3), false}, // observe but not modify
	}
	for i, tc := range cases {
		if got := tc.p.CanUse(l); got != tc.want {
			t.Errorf("case %d: CanUse = %v, want %v", i, got, tc.want)
		}
	}
}

func TestNewNormalizesRedundantEntries(t *testing.T) {
	a := New(Level1, map[Category]Level{4: Level1, 5: Level2})
	b := New(Level1, map[Category]Level{5: Level2})
	if !a.Equal(b) {
		t.Errorf("labels not equal after normalization: %v vs %v", a, b)
	}
	if got := a.Level(4); got != Level1 {
		t.Errorf("Level(4) = %d, want default", got)
	}
	if got := a.Level(5); got != Level2 {
		t.Errorf("Level(5) = %d, want 2", got)
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	orig := Public()
	mod := orig.With(1, Level3)
	if orig.Level(1) != DefaultLevel {
		t.Error("With mutated the receiver")
	}
	if mod.Level(1) != Level3 {
		t.Error("With did not apply")
	}
}

func TestStarPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"default": func() { New(Star, nil) },
		"entry":   func() { New(Level1, map[Category]Level{1: Star}) },
		"with":    func() { Public().With(1, Star) },
		"clear":   func() { Priv{}.WithClearance(Star) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Star accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestPrivUnion(t *testing.T) {
	a := NewPriv(1, 2)
	b := NewPriv(3).WithClearance(Level2)
	u := a.Union(b)
	for _, c := range []Category{1, 2, 3} {
		if !u.Owns(c) {
			t.Errorf("union does not own c%d", c)
		}
	}
	if u.Clearance() != Level2 {
		t.Errorf("union clearance = %d, want 2", u.Clearance())
	}
	// Union must not mutate operands.
	if a.Owns(3) || b.Owns(1) {
		t.Error("Union mutated an operand")
	}
}

func TestUnionGrantsCombinedRights(t *testing.T) {
	// A tap with embedded privileges (§3.5): the tap owns the sink's
	// category, the caller owns the source's. Union can use both.
	const src, sink Category = 10, 11
	srcLabel := Public().With(src, Level2)
	sinkLabel := Public().With(sink, Level2)
	caller := NewPriv(src)
	embedded := NewPriv(sink)
	combined := caller.Union(embedded)
	if !combined.CanUse(srcLabel) || !combined.CanUse(sinkLabel) {
		t.Error("combined privileges cannot use both reserves")
	}
	if caller.CanUse(sinkLabel) {
		t.Error("caller alone can use sink")
	}
}

func TestOwnedSorted(t *testing.T) {
	p := NewPriv(9, 1, 5)
	want := []Category{1, 5, 9}
	if !reflect.DeepEqual(p.Owned(), want) {
		t.Errorf("Owned() = %v, want %v", p.Owned(), want)
	}
}

func TestStrings(t *testing.T) {
	l := Public().With(3, Level2).With(7, Level0)
	if got := l.String(); got != "{1, c3=2, c7=0}" {
		t.Errorf("Label.String() = %q", got)
	}
	p := NewPriv(7, 3)
	if got := p.String(); got != "priv{clearance=1, own:[c3 c7]}" {
		t.Errorf("Priv.String() = %q", got)
	}
}

// randomLabel builds an arbitrary label from fuzz input.
func randomLabel(r *rand.Rand) Label {
	def := Level(r.Intn(4))
	n := r.Intn(4)
	m := make(map[Category]Level, n)
	for i := 0; i < n; i++ {
		m[Category(r.Intn(8)+1)] = Level(r.Intn(4))
	}
	return New(def, m)
}

func randomPriv(r *rand.Rand) Priv {
	p := Priv{}.WithClearance(Level(r.Intn(4)))
	n := r.Intn(3)
	for i := 0; i < n; i++ {
		p = p.WithOwned(Category(r.Intn(8) + 1))
	}
	return p
}

func TestPropertyModifyImpliesObserve(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		l := randomLabel(r)
		p := randomPriv(r)
		if p.CanModify(l) && !p.CanObserve(l) {
			t.Fatalf("CanModify without CanObserve: %v on %v", p, l)
		}
		if p.CanUse(l) != (p.CanObserve(l) && p.CanModify(l)) {
			t.Fatalf("CanUse inconsistent: %v on %v", p, l)
		}
	}
}

func TestPropertyUnionMonotone(t *testing.T) {
	// Union never removes a right either operand had.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		l := randomLabel(r)
		a, b := randomPriv(r), randomPriv(r)
		u := a.Union(b)
		if (a.CanObserve(l) || b.CanObserve(l)) && !u.CanObserve(l) {
			t.Fatalf("union lost observe right: %v ∪ %v on %v", a, b, l)
		}
		if (a.CanModify(l) || b.CanModify(l)) && !u.CanModify(l) {
			t.Fatalf("union lost modify right: %v ∪ %v on %v", a, b, l)
		}
	}
}

func TestPropertyEqualReflexiveSymmetric(t *testing.T) {
	f := func(defA, defB uint8, c1, c2 uint16, l1, l2 uint8) bool {
		a := New(Level(defA%4), map[Category]Level{
			Category(c1%8 + 1): Level(l1 % 4),
		})
		b := New(Level(defB%4), map[Category]Level{
			Category(c2%8 + 1): Level(l2 % 4),
		})
		return a.Equal(a) && b.Equal(b) && a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHigherClearanceObservesMore(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		l := randomLabel(r)
		low := Priv{}.WithClearance(Level(r.Intn(3)))
		high := low.WithClearance(Level3)
		if low.CanObserve(l) && !high.CanObserve(l) {
			t.Fatalf("raising clearance lost observe right on %v", l)
		}
	}
}

func TestWithRemovalNormalizesToNil(t *testing.T) {
	l := New(DefaultLevel, map[Category]Level{7: Level2})
	back := l.With(7, DefaultLevel)
	if !back.Equal(Public()) {
		t.Fatal("removing the only exception did not restore the public label")
	}
	if !reflect.DeepEqual(back, Public()) {
		t.Fatal("exception-free label is not in the normalized (nil-entries) form")
	}
}
