// Package label implements a simplified HiStar-style information-flow
// label model, sufficient to reproduce the access-control behaviour the
// Cinder paper relies on (§3.5): every kernel object — including reserves
// and taps — carries a label, and operations require observe and/or
// modify privileges relative to that label.
//
// A label maps categories to secrecy/integrity levels 0–3, with a default
// level for unlisted categories. A thread additionally owns a set of
// categories (HiStar's ★ level), granting it the right to bypass the
// level comparison for those categories. This is the subset of HiStar's
// model that Cinder's evaluation exercises: creating objects with a
// restrictive label, embedding privileges in taps, and checking
// observe/modify rights on every reserve operation.
package label

import (
	"fmt"
	"sort"
	"strings"
)

// Category is an opaque privilege category, allocated by the kernel.
// Category 0 is never allocated and may be used as a sentinel.
type Category uint64

// Level is a per-category secrecy/integrity level.
type Level uint8

// Levels as in HiStar. For the purposes of Cinder's resource objects the
// useful reading is: a thread whose level for category c is below an
// object's level cannot observe the object, and modification additionally
// requires the object's level not to exceed the thread's.
const (
	Level0 Level = iota // lowest
	Level1              // default for most objects
	Level2
	Level3 // highest
	// Star is thread-side ownership of a category: it dominates and is
	// dominated by every level, i.e. it grants full bypass for that
	// category. Star never appears in an object label.
	Star Level = 255
)

// DefaultLevel is the level assumed for categories not present in a
// label.
const DefaultLevel = Level1

// entry is one per-category exception in a label, kept in a slice sorted
// by category. Labels are tiny (0–2 exceptions in practice) and their
// checks run on every reserve operation — the flat sorted representation
// makes CanObserve/CanModify allocation-free linear scans instead of
// (randomized) map iterations, which profiling showed dominating the
// busy-path Consume cost.
type entry struct {
	c  Category
	lv Level
}

// Label is an immutable mapping from categories to levels plus a default.
// The zero value is the "public" label: default Level1, no exceptions.
type Label struct {
	def     Level
	entries []entry // sorted by category; never contains lv == def
}

// New returns a label with the given default level and per-category
// exceptions. Star entries are rejected: stars belong to privilege sets
// (Priv), not object labels.
func New(def Level, entries map[Category]Level) Label {
	if def == Star {
		panic("label: Star is not a valid default level")
	}
	var es []entry
	for c, l := range entries {
		if l == Star {
			panic("label: Star is not a valid object level")
		}
		if l == def {
			continue // normalize: drop redundant entries
		}
		es = append(es, entry{c, l})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].c < es[j].c })
	return Label{def: def, entries: es}
}

// Public returns the default label carried by unrestricted objects.
func Public() Label { return Label{def: DefaultLevel} }

// Default returns the label's default level.
func (l Label) Default() Level { return l.def }

// Level returns the level for category c.
func (l Label) Level(c Category) Level {
	for _, e := range l.entries {
		if e.c == c {
			return e.lv
		}
	}
	return l.def
}

// With returns a copy of the label with category c set to level lv.
func (l Label) With(c Category, lv Level) Label {
	if lv == Star {
		panic("label: Star is not a valid object level")
	}
	es := make([]entry, 0, len(l.entries)+1)
	inserted := false
	for _, e := range l.entries {
		if e.c == c {
			continue
		}
		if !inserted && c < e.c && lv != l.def {
			es = append(es, entry{c, lv})
			inserted = true
		}
		es = append(es, e)
	}
	if !inserted && lv != l.def {
		es = append(es, entry{c, lv})
	}
	if len(es) == 0 {
		es = nil // normalize: an exception-free label is always the nil form
	}
	return Label{def: l.def, entries: es}
}

// Categories returns the categories with non-default levels, sorted.
func (l Label) Categories() []Category {
	cs := make([]Category, 0, len(l.entries))
	for _, e := range l.entries {
		cs = append(cs, e.c)
	}
	return cs
}

// Equal reports whether two labels are identical (same default and same
// normalized exception set).
func (l Label) Equal(o Label) bool {
	if l.def != o.def || len(l.entries) != len(o.entries) {
		return false
	}
	for i, e := range l.entries {
		if o.entries[i] != e {
			return false
		}
	}
	return true
}

// String renders the label as e.g. "{1, c3=2, c7=0}".
func (l Label) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "{%d", l.def)
	for _, e := range l.entries {
		fmt.Fprintf(&b, ", c%d=%d", e.c, e.lv)
	}
	b.WriteString("}")
	return b.String()
}

// Priv is a thread's privilege set: the categories it owns (★) plus its
// clearance level. The zero value owns nothing and has the default
// clearance, which suffices to use public objects.
//
// Owned categories live in a small sorted slice rather than a map:
// privilege sets are tiny (0–2 categories) and Owns runs inside
// CanModify on every reserve debit, where the flat scan beats map
// hashing and keeps the check allocation-free.
type Priv struct {
	owned        []Category // sorted, deduplicated
	clearance    Level
	clearanceSet bool
}

// NewPriv returns a privilege set owning the given categories with
// clearance DefaultLevel.
func NewPriv(owned ...Category) Priv {
	p := Priv{clearance: DefaultLevel, clearanceSet: true}
	p.owned = insertOwned(nil, owned...)
	return p
}

// insertOwned merges categories into a sorted deduplicated slice,
// always returning fresh backing (Priv values must never share mutable
// state with their parents).
func insertOwned(base []Category, cs ...Category) []Category {
	if len(base) == 0 && len(cs) == 0 {
		return nil
	}
	out := make([]Category, len(base), len(base)+len(cs))
	copy(out, base)
	for _, c := range cs {
		i := sort.Search(len(out), func(i int) bool { return out[i] >= c })
		if i < len(out) && out[i] == c {
			continue
		}
		out = append(out, 0)
		copy(out[i+1:], out[i:])
		out[i] = c
	}
	return out
}

// WithClearance returns a copy of the privilege set with the given
// clearance level.
func (p Priv) WithClearance(lv Level) Priv {
	if lv == Star {
		panic("label: Star is not a valid clearance")
	}
	q := p.clone()
	q.clearance = lv
	q.clearanceSet = true
	return q
}

// WithOwned returns a copy that additionally owns the given categories.
func (p Priv) WithOwned(cs ...Category) Priv {
	return Priv{
		owned:        insertOwned(p.owned, cs...),
		clearance:    p.clearance,
		clearanceSet: p.clearanceSet,
	}
}

// Union returns a privilege set owning everything either set owns, with
// the higher of the two clearances. It models a tap's embedded
// privileges combining with its creator's (§3.5: "taps can have
// privileges embedded in them").
func (p Priv) Union(o Priv) Priv {
	q := Priv{
		owned:        insertOwned(p.owned, o.owned...),
		clearance:    p.clearance,
		clearanceSet: p.clearanceSet,
	}
	if o.Clearance() > q.Clearance() {
		q.clearance = o.Clearance()
		q.clearanceSet = true
	}
	return q
}

func (p Priv) clone() Priv {
	q := Priv{clearance: p.clearance, clearanceSet: p.clearanceSet}
	q.owned = insertOwned(p.owned)
	return q
}

// Owns reports whether the set owns category c. Privilege sets hold at
// most a handful of categories, so the linear scan is faster than any
// hashed lookup and never allocates.
func (p Priv) Owns(c Category) bool {
	for _, o := range p.owned {
		if o == c {
			return true
		}
		if o > c {
			return false
		}
	}
	return false
}

// Clearance returns the clearance level. A privilege set whose clearance
// was never set explicitly (including the zero value) has DefaultLevel.
func (p Priv) Clearance() Level {
	if !p.clearanceSet {
		return DefaultLevel
	}
	return p.clearance
}

// Owned returns a copy of the owned categories, sorted.
func (p Priv) Owned() []Category {
	cs := make([]Category, len(p.owned))
	copy(cs, p.owned)
	return cs
}

// CanObserve reports whether a thread with privileges p may observe an
// object labelled l: for every category, either the thread owns it or
// the object's level does not exceed the thread's clearance.
//
// In Cinder terms (§3.5), observing a reserve is required even for a
// failed consumption, because failure reveals that the level is zero.
func (p Priv) CanObserve(l Label) bool {
	if !p.levelOK(l.def) {
		// The default applies to infinitely many categories the thread
		// cannot own, so an unobservable default is disqualifying.
		return false
	}
	for _, e := range l.entries {
		if p.Owns(e.c) {
			continue
		}
		if !p.levelOK(e.lv) {
			return false
		}
	}
	return true
}

// CanModify reports whether a thread with privileges p may modify an
// object labelled l. In this simplified lattice modification requires
// observation plus ownership of every category raised above the default
// level — a category at an elevated level marks the object as protected
// by that category's owner. Both conditions are checked in one pass:
// this runs on every reserve debit.
func (p Priv) CanModify(l Label) bool {
	if !p.levelOK(l.def) {
		return false
	}
	for _, e := range l.entries {
		owns := p.Owns(e.c)
		if !owns && !p.levelOK(e.lv) {
			return false // unobservable
		}
		if !owns && e.lv > l.def {
			return false // protected by an unowned category
		}
	}
	return true
}

// CanUse reports whether a thread may consume resources from an object
// labelled l. Per §3.5 this requires both observe (failed consumption
// reveals the level) and modify (successful consumption changes it) —
// and modification already implies observation in this lattice.
func (p Priv) CanUse(l Label) bool {
	return p.CanModify(l)
}

func (p Priv) levelOK(lv Level) bool {
	return lv <= p.Clearance()
}

// String renders the privilege set as e.g. "priv{clearance=1, own:[c3 c7]}".
func (p Priv) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "priv{clearance=%d", p.Clearance())
	if len(p.owned) > 0 {
		b.WriteString(", own:[")
		for i, c := range p.Owned() {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "c%d", c)
		}
		b.WriteString("]")
	}
	b.WriteString("}")
	return b.String()
}
