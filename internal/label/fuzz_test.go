package label

import "testing"

// FuzzLatticeConsistency checks the §3.5 access-control invariants over
// arbitrary label/privilege encodings: CanModify implies CanObserve,
// CanUse is their conjunction, and owning a category never removes a
// right.
func FuzzLatticeConsistency(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint8(2), uint8(1), uint8(0), false)
	f.Add(uint8(0), uint8(7), uint8(3), uint8(3), uint8(2), true)
	f.Add(uint8(3), uint8(1), uint8(0), uint8(0), uint8(1), false)
	f.Fuzz(func(t *testing.T, def, cat, lvl, clearance, ownCat uint8, own bool) {
		l := New(Level(def%4), map[Category]Level{
			Category(cat%8 + 1): Level(lvl % 4),
		})
		p := Priv{}.WithClearance(Level(clearance % 4))
		if own {
			p = p.WithOwned(Category(ownCat%8 + 1))
		}
		if p.CanModify(l) && !p.CanObserve(l) {
			t.Fatalf("modify without observe: %v on %v", p, l)
		}
		if p.CanUse(l) != (p.CanObserve(l) && p.CanModify(l)) {
			t.Fatalf("CanUse inconsistent: %v on %v", p, l)
		}
		// Adding ownership is monotone.
		stronger := p.WithOwned(Category(cat%8 + 1))
		if p.CanObserve(l) && !stronger.CanObserve(l) {
			t.Fatalf("ownership removed observe: %v on %v", p, l)
		}
		if p.CanModify(l) && !stronger.CanModify(l) {
			t.Fatalf("ownership removed modify: %v on %v", p, l)
		}
		// Equality is reflexive after normalization.
		if !l.Equal(l) {
			t.Fatalf("label not equal to itself: %v", l)
		}
	})
}
