package label

import "testing"

// TestChecksZeroAllocs guards the label checks on the reserve fast
// path: CanUse/CanModify/CanObserve run on every consume and debit and
// must not allocate (flat sorted reps on both sides, no map hashing).
func TestChecksZeroAllocs(t *testing.T) {
	priv := NewPriv(3).WithClearance(Level3)
	lbl := Public().With(3, Level2).With(9, Level0)
	pub := Public()
	if n := testing.AllocsPerRun(500, func() {
		if !priv.CanUse(lbl) || !priv.CanObserve(lbl) || !priv.CanUse(pub) {
			t.Fatal("expected checks to pass")
		}
		if (Priv{}).CanModify(lbl) {
			t.Fatal("unprivileged modify of protected label")
		}
	}); n != 0 {
		t.Fatalf("label checks allocate %v times per run, want 0", n)
	}
}

// BenchmarkSteadyLabelCanUse: the per-consume access check; CI-guarded
// to 0 B/op.
func BenchmarkSteadyLabelCanUse(b *testing.B) {
	priv := NewPriv(3).WithClearance(Level3)
	lbl := Public().With(3, Level2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !priv.CanUse(lbl) {
			b.Fatal("check failed")
		}
	}
}
