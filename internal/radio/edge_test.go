package radio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Sleep:    "sleep",
		Ramp:     "ramp",
		Active:   "active",
		State(9): "state(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestIdleDeadline(t *testing.T) {
	r := newRig(Config{})
	if r.radio.IdleDeadline() != 0 {
		t.Fatal("sleeping radio has an idle deadline")
	}
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(5 * units.Second)
	// Last activity at ramp end (3 s); deadline 23 s.
	want := 3*units.Second + power.Dream().RadioIdleTimeout
	if got := r.radio.IdleDeadline(); got != want {
		t.Fatalf("IdleDeadline = %v, want %v", got, want)
	}
}

func TestNetworkInitiatedWakeup(t *testing.T) {
	// An inbound packet (paging) wakes a sleeping radio; the idle timer
	// starts from delivery.
	r := newRig(Config{})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Deliver(e.Now(), 500, nil, label.Priv{})
	})
	r.eng.Run(2 * units.Second)
	if r.radio.State() == Sleep {
		t.Fatal("inbound packet did not wake the radio")
	}
	if r.radio.Stats().PacketsReceived != 1 {
		t.Fatal("delivery not counted")
	}
	r.eng.Run(30 * units.Second)
	if r.radio.State() != Sleep {
		t.Fatal("radio did not sleep after inbound-only activity")
	}
}

func TestSendDuringRampQueuesAtRampEnd(t *testing.T) {
	r := newRig(Config{})
	var tx1, tx2 units.Time
	r.eng.After(units.Second, func(e *sim.Engine) {
		tx1 = r.radio.Send(e.Now(), 100, nil, label.Priv{})
	})
	// Second send mid-ramp (ramp is 2 s).
	r.eng.After(2*units.Second, func(e *sim.Engine) {
		tx2 = r.radio.Send(e.Now(), 100, nil, label.Priv{})
	})
	r.eng.Run(5 * units.Second)
	if tx2 < tx1 {
		t.Fatalf("mid-ramp send transmitted before the first: %v < %v", tx2, tx1)
	}
	// Both transmit at/after ramp end (3 s).
	if tx1 < 3*units.Second || tx2 < 3*units.Second {
		t.Fatalf("transmissions before ramp end: %v, %v", tx1, tx2)
	}
	if r.radio.Stats().Activations != 1 {
		t.Fatalf("activations = %d, want 1", r.radio.Stats().Activations)
	}
}

func TestBillDataFallsBackWhenReserveCannotPay(t *testing.T) {
	// A bill reserve that forbids debt and holds nothing: the cost falls
	// through to the battery, never lost.
	r := newRig(Config{})
	root := kobj.NewContainer(r.graph.Table(), nil, "apps", label.Public())
	broke := r.graph.NewReserve(root, "broke", label.Public(), core.ReserveOpts{})
	before, _ := r.graph.Battery().Level(label.Priv{})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1500, broke, label.Priv{})
	})
	r.eng.Run(2 * units.Second)
	lvl, _ := broke.Level(label.Priv{})
	if lvl != 0 {
		t.Fatalf("broke reserve level = %v", lvl)
	}
	after, _ := r.graph.Battery().Level(label.Priv{})
	if after >= before {
		t.Fatal("data cost vanished instead of hitting the battery")
	}
	if r.graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", r.graph.ConservationError())
	}
}

func TestRTTAccessorAndDefault(t *testing.T) {
	r := newRig(Config{})
	if r.radio.RTT() != 200*units.Millisecond {
		t.Fatalf("default RTT = %v", r.radio.RTT())
	}
	r2 := newRig(Config{RTT: units.Second})
	if r2.radio.RTT() != units.Second {
		t.Fatalf("configured RTT = %v", r2.radio.RTT())
	}
}

func TestEpisodeCallback(t *testing.T) {
	r := newRig(Config{})
	var episodes []units.Energy
	r.radio.OnEpisode(func(cost units.Energy) { episodes = append(episodes, cost) })
	for i := 0; i < 3; i++ {
		at := units.Second + units.Time(i)*40*units.Second
		r.eng.At(at, func(e *sim.Engine) {
			r.radio.Send(e.Now(), 1, nil, label.Priv{})
		})
	}
	r.eng.Run(120 * units.Second)
	if len(episodes) != 3 {
		t.Fatalf("episodes = %d, want 3", len(episodes))
	}
	for i, e := range episodes {
		if e < units.Joules(9) || e > units.Joules(10) {
			t.Fatalf("episode %d cost %v, want ≈9.5 J", i, e)
		}
	}
}

func TestFundPartialThenBattery(t *testing.T) {
	// A fund holding less than one activation is drained first, the
	// battery covers the rest.
	r := newRig(Config{})
	fund := r.radio.FundingReserve()
	if err := r.graph.Transfer(label.Priv{}, r.graph.Battery(), fund, 3*units.Joule); err != nil {
		t.Fatal(err)
	}
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(30 * units.Second)
	if lvl, _ := fund.Level(label.Priv{}); lvl != 0 {
		t.Fatalf("fund = %v after underfunded activation", lvl)
	}
	st := r.radio.Stats()
	if st.StateEnergy < units.Joules(9) {
		t.Fatalf("state energy = %v", st.StateEnergy)
	}
	if r.graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", r.graph.ConservationError())
	}
}
