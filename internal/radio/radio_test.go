package radio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

type rig struct {
	eng   *sim.Engine
	graph *core.Graph
	radio *Radio
}

func newRig(cfg Config) *rig {
	if cfg.Profile.Name == "" {
		cfg.Profile = power.Dream()
	}
	eng := sim.NewEngine(42)
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := core.NewGraph(tbl, root, label.Public(), core.Config{DecayHalfLife: -1})
	r := New(eng, g, root, label.Priv{}, cfg)
	eng.Every("radio", eng.Tick(), func(e *sim.Engine) {
		r.DeviceTick(e.Now(), e.Tick())
	})
	return &rig{eng: eng, graph: g, radio: r}
}

func TestStartsAsleep(t *testing.T) {
	r := newRig(Config{})
	if r.radio.State() != Sleep {
		t.Fatalf("state = %v", r.radio.State())
	}
	r.eng.Run(10 * units.Second)
	if got := r.graph.Consumed(); got != 0 {
		t.Fatalf("sleeping radio consumed %v", got)
	}
}

func TestSingleActivationCostsPublishedOverhead(t *testing.T) {
	// Fig. 4: one 1-byte packet from sleep costs ≈9.5 J above baseline,
	// and the radio sleeps again 20 s after the last activity.
	r := newRig(Config{})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(60 * units.Second)
	if r.radio.State() != Sleep {
		t.Fatalf("state = %v after 60 s, want sleep", r.radio.State())
	}
	st := r.radio.Stats()
	if st.Activations != 1 {
		t.Fatalf("activations = %d", st.Activations)
	}
	want := units.Joules(9.5)
	if st.StateEnergy < want*99/100 || st.StateEnergy > want*101/100 {
		t.Fatalf("state energy = %v, want ≈9.5 J", st.StateEnergy)
	}
	// Active for ramp (2 s) + idle timeout (20 s).
	if st.ActiveTime < 21*units.Second || st.ActiveTime > 23*units.Second {
		t.Fatalf("active time = %v, want ≈22 s", st.ActiveTime)
	}
	if r.graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", r.graph.ConservationError())
	}
}

func TestJitterBoundsMatchPaper(t *testing.T) {
	// With jitter on, activation overheads must stay within the
	// observed 8.8–11.9 J envelope, and must vary.
	r := newRig(Config{Jitter: true})
	var energies []units.Energy
	prev := units.Energy(0)
	for i := 0; i < 20; i++ {
		at := units.Time(i) * 40 * units.Second
		r.eng.At(at+units.Second, func(e *sim.Engine) {
			r.radio.Send(e.Now(), 1, nil, label.Priv{})
		})
		r.eng.Run(40 * units.Second)
		cur := r.radio.Stats().StateEnergy
		energies = append(energies, cur-prev)
		prev = cur
	}
	distinct := map[units.Energy]bool{}
	p := power.Dream()
	for i, e := range energies {
		if e < p.RadioActivationEnergyMin-500*units.Millijoule ||
			e > p.RadioActivationEnergyMax+500*units.Millijoule {
			t.Fatalf("activation %d cost %v, outside [8.8, 11.9] J envelope", i, e)
		}
		distinct[e/(100*units.Millijoule)] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("jitter produced only %d distinct costs", len(distinct))
	}
}

func TestBackToBackCheaperThanSpaced(t *testing.T) {
	// §5.5: sending while recently active extends the idle window less
	// than sending after a long in-active gap.
	send := func(gap units.Time) units.Energy {
		r := newRig(Config{})
		r.eng.After(units.Second, func(e *sim.Engine) {
			r.radio.Send(e.Now(), 100, nil, label.Priv{})
		})
		r.eng.After(units.Second+r.radio.Profile().RadioRampTime+gap, func(e *sim.Engine) {
			r.radio.Send(e.Now(), 100, nil, label.Priv{})
		})
		r.eng.Run(80 * units.Second)
		return r.radio.Stats().StateEnergy
	}
	quick := send(units.Second)
	slow := send(15 * units.Second)
	if quick >= slow {
		t.Fatalf("back-to-back %v ≥ spaced %v", quick, slow)
	}
	// The difference should be ≈14 s of plateau power.
	diff := slow - quick
	want := power.Dream().RadioActiveExtra.Over(14 * units.Second)
	if diff < want*90/100 || diff > want*110/100 {
		t.Fatalf("diff = %v, want ≈%v", diff, want)
	}
}

func TestActivationCostEstimate(t *testing.T) {
	r := newRig(Config{})
	p := power.Dream()
	if got := r.radio.ActivationCost(0); got != p.RadioActivationEnergy {
		t.Fatalf("sleeping estimate = %v, want 9.5 J", got)
	}
	// Wake it, let 10 s pass with no traffic: estimate = 10 s of
	// plateau extension.
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(13 * units.Second) // 1 s + 2 s ramp + 10 s idle gap
	got := r.radio.ActivationCost(r.eng.Now())
	want := p.RadioActiveExtra.Over(10 * units.Second)
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("active estimate = %v, want ≈%v", got, want)
	}
}

func TestSendBillsMarginalCostToReserve(t *testing.T) {
	r := newRig(Config{})
	root := kobj.NewContainer(r.graph.Table(), nil, "apps", label.Public())
	bill := r.graph.NewReserve(root, "app", label.Public(), core.ReserveOpts{AllowDebt: true})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1500, bill, label.Priv{})
	})
	r.eng.Run(2 * units.Second)
	lvl, _ := bill.Level(label.Priv{})
	want := -power.Dream().PacketEnergy(1500)
	if lvl != want {
		t.Fatalf("bill reserve = %v, want %v (after-the-fact debt)", lvl, want)
	}
}

func TestFundingReserveDrainedBeforeBattery(t *testing.T) {
	r := newRig(Config{})
	fund := r.radio.FundingReserve()
	if err := r.graph.Transfer(label.Priv{}, r.graph.Battery(), fund, 12*units.Joule); err != nil {
		t.Fatal(err)
	}
	batteryBefore, _ := r.graph.Battery().Level(label.Priv{})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(30 * units.Second)
	batteryAfter, _ := r.graph.Battery().Level(label.Priv{})
	// The ≈9.5 J activation came from the fund; the leftover ≈2.5 J
	// returned to the battery at sleep, so the battery must be *higher*
	// than before minus nothing — net battery change ≈ +2.4 J refund −
	// data cost.
	if batteryAfter < batteryBefore {
		t.Fatalf("battery dropped %v→%v despite pre-funded radio",
			batteryBefore, batteryAfter)
	}
	if lvl, _ := fund.Level(label.Priv{}); lvl != 0 {
		t.Fatalf("fund not emptied at sleep: %v", lvl)
	}
}

func TestExchangeDeliversResponse(t *testing.T) {
	r := newRig(Config{})
	var deliveredAt units.Time
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Exchange(e.Now(), 100, 1000, nil, label.Priv{}, func(at units.Time) {
			deliveredAt = at
		})
	})
	r.eng.Run(10 * units.Second)
	if deliveredAt == 0 {
		t.Fatal("response never delivered")
	}
	// Delivery after ramp (2 s) + rtt (200 ms) + transfer times.
	min := units.Second + power.Dream().RadioRampTime + 200*units.Millisecond
	if deliveredAt < min {
		t.Fatalf("delivered at %v, before minimum %v", deliveredAt, min)
	}
	st := r.radio.Stats()
	if st.PacketsSent != 1 || st.PacketsReceived != 1 {
		t.Fatalf("packets = %d/%d", st.PacketsSent, st.PacketsReceived)
	}
	if st.BytesReceived != 1000 {
		t.Fatalf("bytes received = %d", st.BytesReceived)
	}
}

func TestStateSeriesRecordsTransitions(t *testing.T) {
	r := newRig(Config{})
	r.eng.After(units.Second, func(e *sim.Engine) {
		r.radio.Send(e.Now(), 1, nil, label.Priv{})
	})
	r.eng.Run(40 * units.Second)
	pts := r.radio.StateSeries().Points()
	// sleep(init) → ramp → active → sleep
	if len(pts) != 4 {
		t.Fatalf("transitions = %d, want 4 (%v)", len(pts), pts)
	}
	wantStates := []State{Sleep, Ramp, Active, Sleep}
	for i, p := range pts {
		if State(p.V) != wantStates[i] {
			t.Fatalf("transition %d = %v, want %v", i, State(p.V), wantStates[i])
		}
	}
}

func TestRepeatedActivationTotalEnergyScales(t *testing.T) {
	// Fig. 4's experiment: one packet every 40 s → each activation fully
	// completes; N activations cost ≈ N × 9.5 J.
	r := newRig(Config{})
	const n = 5
	for i := 0; i < n; i++ {
		at := units.Time(i)*40*units.Second + units.Second
		r.eng.At(at, func(e *sim.Engine) {
			r.radio.Send(e.Now(), 1, nil, label.Priv{})
		})
	}
	r.eng.Run(n * 40 * units.Second)
	st := r.radio.Stats()
	if st.Activations != n {
		t.Fatalf("activations = %d, want %d", st.Activations, n)
	}
	want := units.Joules(9.5) * n
	if st.StateEnergy < want*98/100 || st.StateEnergy > want*102/100 {
		t.Fatalf("total = %v, want ≈%v", st.StateEnergy, want)
	}
}
