// Package radio simulates the HTC Dream's cellular data path as the
// Cinder paper characterizes it (§4.3): a closed ARM9-managed radio with
// an exceptionally high activation cost (≈9.5 J to send a single byte
// from sleep), a fixed 20 s inactivity timeout that the application
// processor cannot change, and comparatively cheap marginal bytes once
// the radio is active.
//
// The model is a three-state machine:
//
//	Sleep --send--> Ramp --(RampTime)--> Active --(20 s idle)--> Sleep
//
// Ramp draws RadioRampExtra above baseline, Active draws
// RadioActiveExtra; with the Dream profile the ramp and one full idle
// timeout sum to the published 9.5 J activation overhead. Every packet
// restarts the idle timer, reproducing the cost asymmetry the paper
// describes: "back-to-back actions are cheaper than ones with more
// delay between them".
//
// Power is billed each tick to the radio's funding reserve — the pool
// netd pre-pays into — falling back to the battery when unfunded (the
// "energy-unrestricted network stack" baseline of §6.4).
package radio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/units"
)

// State is the radio power state.
type State uint8

const (
	// Sleep is the lowest power state; transmission requires a ramp.
	Sleep State = iota
	// Ramp is the transition from sleep to active.
	Ramp
	// Active is the transmitting/awaiting-timeout plateau.
	Active
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Sleep:
		return "sleep"
	case Ramp:
		return "ramp"
	case Active:
		return "active"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Stats accumulates radio activity counters.
type Stats struct {
	// Activations counts sleep→ramp transitions.
	Activations int64
	// PacketsSent and BytesSent count outbound traffic.
	PacketsSent int64
	BytesSent   int64
	// PacketsReceived and BytesReceived count inbound traffic.
	PacketsReceived int64
	BytesReceived   int64
	// StateEnergy is the total above-baseline energy drawn by ramp and
	// plateau states.
	StateEnergy units.Energy
	// DataEnergy is the total marginal per-packet/per-byte energy.
	DataEnergy units.Energy
	// ActiveTime is the cumulative time spent in Ramp or Active.
	ActiveTime units.Time
}

// Config parameterizes a Radio.
type Config struct {
	// Profile supplies the power model; required.
	Profile power.Profile
	// Jitter enables the per-activation plateau variation the paper
	// observed (8.8–11.9 J, "outliers ... occur unpredictably", Fig. 4).
	// Off, every activation costs exactly the published mean.
	Jitter bool
	// RTT is the network round-trip latency for Exchange; defaults to
	// 200 ms.
	RTT units.Time
}

// Radio is the simulated data path device.
type Radio struct {
	eng     *sim.Engine
	graph   *core.Graph
	profile power.Profile
	jitter  bool
	rtt     units.Time

	state        State
	rampEnd      units.Time
	lastActivity units.Time
	// plateauScale adjusts the active draw for the current activation
	// (jitter), in parts per 1024.
	plateauScale int64
	carry        int64

	// fund is the reserve radio draw is billed to first; netd pre-pays
	// activation cost into it. Falls back to the battery.
	fund *core.Reserve
	// accounts is the cached SettleAccounts result ({fund}), so the
	// kernel's per-instant settleability check allocates nothing.
	accounts [1]*core.Reserve
	priv     label.Priv
	stats    Stats
	// states records transitions for active-time analysis (Fig. 13).
	states *trace.Series
	// episodeStart snapshots cumulative above-baseline energy at
	// wakeup so each completed episode's overhead can be reported.
	episodeStart units.Energy
	onEpisode    func(cost units.Energy)
	// onActivity, when set, is invoked when the radio leaves Sleep. The
	// kernel hooks it to resume a deferred device-tick task.
	onActivity func()
}

// New creates a radio whose funding reserve lives under parent. priv
// must be able to use the battery (the radio is a kernel-side device).
func New(eng *sim.Engine, g *core.Graph, parent *kobj.Container, priv label.Priv, cfg Config) *Radio {
	r := &Radio{states: trace.NewSeries("radio-state", "state")}
	r.Reset(eng, g, parent, priv, cfg)
	return r
}

// Reset reinitializes the radio in place to the exact state New would
// produce — a fresh funding reserve in the given (typically recycled)
// graph, the state machine asleep, all counters zero — reusing the
// state-trace backing array. The fleet runner recycles one radio per
// worker this way.
func (r *Radio) Reset(eng *sim.Engine, g *core.Graph, parent *kobj.Container, priv label.Priv, cfg Config) {
	if cfg.RTT == 0 {
		cfg.RTT = 200 * units.Millisecond
	}
	r.eng = eng
	r.graph = g
	r.profile = cfg.Profile
	r.jitter = cfg.Jitter
	r.rtt = cfg.RTT
	r.state = Sleep
	r.rampEnd = 0
	r.lastActivity = 0
	r.plateauScale = 1024
	r.carry = 0
	r.priv = priv
	r.stats = Stats{}
	r.episodeStart = 0
	r.onEpisode = nil
	r.onActivity = nil
	r.states.Reset("radio-state", "state")
	r.fund = g.NewReserve(parent, "radio-fund", label.Public(), core.ReserveOpts{DecayExempt: true})
	r.accounts[0] = r.fund
	r.states.Add(eng.Now(), int64(Sleep))
}

// FundingReserve returns the reserve radio power is billed against.
// netd transfers the pooled activation energy here when it powers the
// radio up (§5.5.2: "the reserve ... is debited, the radio is turned
// on").
func (r *Radio) FundingReserve() *core.Reserve { return r.fund }

// Profile returns the radio's power model.
func (r *Radio) Profile() power.Profile { return r.profile }

// State returns the current power state.
func (r *Radio) State() State { return r.state }

// Stats returns a copy of the activity counters.
func (r *Radio) Stats() Stats { return r.stats }

// StateSeries returns the state transition series.
func (r *Radio) StateSeries() *trace.Series { return r.states }

// RTT returns the configured round-trip latency.
func (r *Radio) RTT() units.Time { return r.rtt }

// IdleDeadline returns the time at which the radio will sleep if no
// further activity occurs, or 0 if already asleep.
func (r *Radio) IdleDeadline() units.Time {
	if r.state == Sleep {
		return 0
	}
	return r.lastActivity + r.profile.RadioIdleTimeout
}

// ActivationCost returns the energy a power-up from the current state
// will add above baseline, the estimate netd uses (§5.5.2): a sleeping
// radio costs the full ramp + plateau; an active radio only the
// extension of the idle window.
func (r *Radio) ActivationCost(now units.Time) units.Energy {
	switch r.state {
	case Sleep:
		return r.profile.RadioActivationEnergy
	default:
		// Sending now moves the idle deadline from lastActivity+T to
		// now+T: the marginal cost is the elapsed idle gap at plateau
		// power (§5.5: "transmitting now will extend the active period
		// by an additional 15 seconds").
		gap := now - r.lastActivity
		if gap < 0 {
			gap = 0
		}
		return r.profile.RadioActiveExtra.Over(gap)
	}
}

// transition records a state change.
func (r *Radio) transition(now units.Time, s State) {
	if r.state == s {
		return
	}
	r.state = s
	r.states.Add(now, int64(s))
}

// Quiescent reports whether the radio needs no per-tick servicing: a
// sleeping radio draws nothing above baseline and changes state only
// through Send/Deliver, which fire the activity hook.
func (r *Radio) Quiescent() bool { return r.state == Sleep }

// SetActivityHook installs fn to be called when the radio wakes from
// Sleep. Pass nil to remove.
func (r *Radio) SetActivityHook(fn func()) { r.onActivity = fn }

// OnEpisode registers a callback invoked at each active→sleep
// transition with the episode's above-baseline state energy. The
// adaptive model estimator (§4.4) hooks this to refine activation-cost
// predictions from "past component usage".
func (r *Radio) OnEpisode(fn func(cost units.Energy)) { r.onEpisode = fn }

// wakeup begins a ramp if the radio sleeps. Returns the time
// transmission can begin.
func (r *Radio) wakeup(now units.Time) units.Time {
	switch r.state {
	case Sleep:
		if r.onActivity != nil {
			r.onActivity()
		}
		r.stats.Activations++
		r.episodeStart = r.stats.StateEnergy
		r.plateauScale = 1024
		if r.jitter {
			// Scale the plateau within roughly ±8 %, with an occasional
			// high outlier, reproducing the 8.8–11.9 J spread.
			n := r.eng.Rand().Intn(100)
			switch {
			case n < 10: // outlier
				r.plateauScale = 1024 + int64(r.eng.Rand().Intn(350))
			default:
				r.plateauScale = 1024 - 82 + int64(r.eng.Rand().Intn(164))
			}
		}
		r.transition(now, Ramp)
		r.rampEnd = now + r.profile.RadioRampTime
		r.lastActivity = r.rampEnd
		return r.rampEnd
	case Ramp:
		return r.rampEnd
	default:
		return now
	}
}

// Send transmits a packet of sizeBytes, waking the radio if necessary.
// The marginal data cost is debited from bill (into debt if permitted)
// using priv; a nil bill charges the funding reserve/battery. It
// returns the time the packet leaves the device.
func (r *Radio) Send(now units.Time, sizeBytes int, bill *core.Reserve, priv label.Priv) units.Time {
	var txAt units.Time
	switch r.state {
	case Sleep:
		txAt = r.wakeup(now)
	case Ramp:
		txAt = r.rampEnd
	default:
		txAt = now
	}
	if txAt < now {
		txAt = now
	}
	r.lastActivity = txAt
	r.stats.PacketsSent++
	r.stats.BytesSent += int64(sizeBytes)
	r.billData(r.profile.PacketEnergy(sizeBytes), bill, priv)
	return txAt + r.profile.TransferTime(int64(sizeBytes))
}

// Deliver accounts for an incoming packet: it refreshes the idle timer
// and bills the receive cost after the fact (§5.5.2: receivers "debit
// their own reserves up to or into debt ... after-the-fact").
func (r *Radio) Deliver(now units.Time, sizeBytes int, bill *core.Reserve, priv label.Priv) {
	if r.state == Sleep {
		// Network-initiated wakeup (paging); rare in the experiments but
		// required for inbound-only traffic.
		r.wakeup(now)
	}
	if now > r.lastActivity {
		r.lastActivity = now
	}
	r.stats.PacketsReceived++
	r.stats.BytesReceived += int64(sizeBytes)
	r.billData(r.profile.PacketEnergy(sizeBytes), bill, priv)
}

// Exchange performs a request/response round trip (the UDP echo pattern
// of Fig. 3): a send of reqBytes now and a delivery of respBytes after
// the RTT plus transfer times. onDone, if non-nil, runs at delivery.
func (r *Radio) Exchange(now units.Time, reqBytes, respBytes int, bill *core.Reserve, priv label.Priv, onDone func(at units.Time)) {
	sent := r.Send(now, reqBytes, bill, priv)
	arrive := sent + r.rtt + r.profile.TransferTime(int64(respBytes))
	r.eng.At(arrive, func(e *sim.Engine) {
		r.Deliver(e.Now(), respBytes, bill, priv)
		if onDone != nil {
			onDone(e.Now())
		}
	})
}

// billData charges marginal data-path energy: to bill (allowing debt)
// when given, otherwise to the funding reserve or battery.
func (r *Radio) billData(e units.Energy, bill *core.Reserve, priv label.Priv) {
	r.stats.DataEnergy += e
	if bill != nil {
		if err := bill.DebitSelf(priv, e); err == nil {
			return
		}
		if err := bill.Consume(priv, e); err == nil {
			return
		}
	}
	r.consumeDevice(e)
}

// consumeDevice draws device energy from the funding reserve, falling
// back to the battery for any shortfall.
func (r *Radio) consumeDevice(e units.Energy) {
	if e <= 0 {
		return
	}
	if r.fund.CanConsume(r.priv, e) {
		if r.fund.Consume(r.priv, e) == nil {
			return
		}
	}
	// Partial: drain the fund, then the battery.
	if lvl, err := r.fund.Level(r.priv); err == nil && lvl > 0 {
		if r.fund.Consume(r.priv, lvl) == nil {
			e -= lvl
		}
	}
	_ = r.graph.Battery().Consume(r.priv, e)
}

// Snapshot serializes the radio's mutable state: the power state
// machine, billing carries, activity counters and the state-transition
// trace. The funding reserve itself belongs to the graph's snapshot.
func (r *Radio) Snapshot(w *snap.Writer) {
	w.Section("radio")
	w.U64(uint64(r.state))
	w.I64(int64(r.rampEnd))
	w.I64(int64(r.lastActivity))
	w.I64(r.plateauScale)
	w.I64(r.carry)
	w.I64(int64(r.episodeStart))
	w.I64(r.stats.Activations)
	w.I64(r.stats.PacketsSent)
	w.I64(r.stats.BytesSent)
	w.I64(r.stats.PacketsReceived)
	w.I64(r.stats.BytesReceived)
	w.I64(int64(r.stats.StateEnergy))
	w.I64(int64(r.stats.DataEnergy))
	w.I64(int64(r.stats.ActiveTime))
	r.states.Snapshot(w)
}

// Restore overlays a snapshot onto a freshly rebuilt radio.
func (r *Radio) Restore(rd *snap.Reader) error {
	rd.Section("radio")
	state := State(rd.U64())
	rampEnd := units.Time(rd.I64())
	lastActivity := units.Time(rd.I64())
	plateauScale := rd.I64()
	carry := rd.I64()
	episodeStart := units.Energy(rd.I64())
	stats := Stats{
		Activations:     rd.I64(),
		PacketsSent:     rd.I64(),
		BytesSent:       rd.I64(),
		PacketsReceived: rd.I64(),
		BytesReceived:   rd.I64(),
		StateEnergy:     units.Energy(rd.I64()),
		DataEnergy:      units.Energy(rd.I64()),
		ActiveTime:      units.Time(rd.I64()),
	}
	if err := rd.Err(); err != nil {
		return err
	}
	if err := r.states.Restore(rd); err != nil {
		return err
	}
	r.state = state
	r.rampEnd = rampEnd
	r.lastActivity = lastActivity
	r.plateauScale = plateauScale
	r.carry = carry
	r.episodeStart = episodeStart
	r.stats = stats
	return nil
}

// DeviceTick advances the state machine and bills state power; the
// kernel calls it every tick.
func (r *Radio) DeviceTick(now units.Time, dt units.Time) {
	var extra units.Power
	switch r.state {
	case Sleep:
		r.carry = 0
		return
	case Ramp:
		extra = r.profile.RadioRampExtra
		if now >= r.rampEnd {
			r.transition(now, Active)
		}
	case Active:
		extra = units.Power(int64(r.profile.RadioActiveExtra) * r.plateauScale / 1024)
		if now >= r.lastActivity+r.profile.RadioIdleTimeout {
			r.transition(now, Sleep)
			// Drop the sub-µJ billing residue immediately: the sleep
			// branch zeroed it on the next tick anyway, and the kernel
			// may never tick a sleeping radio again.
			r.carry = 0
			// Return any unused pre-paid activation energy to the
			// battery so cost estimates stay honest across activations.
			_, _ = r.graph.TransferUpTo(r.priv, r.fund, r.graph.Battery(), units.MaxEnergy)
			if r.onEpisode != nil {
				r.onEpisode(r.stats.StateEnergy - r.episodeStart)
			}
			return
		}
	}
	var e units.Energy
	e, r.carry = extra.OverRem(dt, r.carry)
	if e > 0 {
		r.consumeDevice(e)
		r.stats.StateEnergy += e
	}
	r.stats.ActiveTime += dt
}

// PeakDraw bounds the radio's possible per-tick draw above baseline: the
// ramp power or the jittered plateau (plateauScale ≤ 1374/1024 < 2). The
// kernel budgets this against the battery's depletion horizon before
// settling skipped device ticks in closed form.
func (r *Radio) PeakDraw() units.Power {
	p := r.profile.RadioRampExtra
	if a := 2 * r.profile.RadioActiveExtra; a > p {
		p = a
	}
	return p
}

// SettleAccounts lists the radio's private billing reserves (the funding
// pool). Closed-form settlement reorders device billing against tap
// flows, which is only exact while no active tap touches these. The
// returned slice is cached — callers must treat it as read-only.
func (r *Radio) SettleAccounts() []*core.Reserve { return r.accounts[:] }

// SettleTicks performs, in closed form, exactly the DeviceTick calls the
// kernel skipped while its device task was parked: one per tick instant
// from `from` through `to` inclusive. Between external inputs (Send,
// Deliver — which only happen at executed engine instants, after
// settlement has caught up) the state machine is fully determined:
// ramp until the first tick at/after rampEnd (which bills ramp power and
// flips to Active, as the per-tick code does), a plateau until the first
// tick at/after the idle deadline (which bills nothing, sweeps the fund
// and sleeps), then nothing. Constant-power spans telescope their carry
// exactly; a span the fund cannot cover replays tick by tick so the
// fund→battery spill sequence matches a per-tick run to the microjoule.
func (r *Radio) SettleTicks(from, to, dt units.Time) {
	for t := from; t <= to; {
		switch r.state {
		case Sleep:
			// Every remaining tick is the per-tick Sleep no-op.
			r.carry = 0
			return
		case Ramp:
			end := to
			flips := false
			if r.rampEnd <= end {
				// First tick at/after rampEnd: bills ramp, then flips.
				if e := gridCeil(r.rampEnd, t, dt); e <= end {
					end, flips = e, true
				}
			}
			r.settleSpan((int64(end-t)/int64(dt))+1, dt, r.profile.RadioRampExtra)
			if flips {
				r.transition(end, Active)
			}
			t = end + dt
		case Active:
			deadline := r.lastActivity + r.profile.RadioIdleTimeout
			extra := units.Power(int64(r.profile.RadioActiveExtra) * r.plateauScale / 1024)
			sleepAt := gridCeil(deadline, t, dt)
			if sleepAt > to {
				r.settleSpan((int64(to-t)/int64(dt))+1, dt, extra)
				return
			}
			if sleepAt-dt >= t {
				r.settleSpan((int64(sleepAt-dt-t)/int64(dt))+1, dt, extra)
			}
			// The deadline tick: transition only — no billing, no active
			// time (the per-tick code returns before both).
			r.transition(sleepAt, Sleep)
			r.carry = 0
			_, _ = r.graph.TransferUpTo(r.priv, r.fund, r.graph.Battery(), units.MaxEnergy)
			if r.onEpisode != nil {
				r.onEpisode(r.stats.StateEnergy - r.episodeStart)
			}
			t = sleepAt + dt
		}
	}
}

// settleSpan bills n ticks of constant extra power in one telescoped
// debit when the fund covers the total, or tick by tick when it does not
// (so the exact instant billing spills to the battery is preserved).
func (r *Radio) settleSpan(n int64, dt units.Time, extra units.Power) {
	if n <= 0 {
		return
	}
	total := int64(extra)*int64(dt)*n + r.carry
	e := units.Energy(total / 1000)
	if e > 0 && !r.fund.CanConsume(r.priv, e) {
		for i := int64(0); i < n; i++ {
			var ei units.Energy
			ei, r.carry = extra.OverRem(dt, r.carry)
			if ei > 0 {
				r.consumeDevice(ei)
				r.stats.StateEnergy += ei
			}
			r.stats.ActiveTime += dt
		}
		return
	}
	r.carry = total % 1000
	if e > 0 {
		r.consumeDevice(e)
		r.stats.StateEnergy += e
	}
	r.stats.ActiveTime += units.Time(n) * dt
}

// gridCeil returns the first tick instant at or after x on the grid
// {t, t+dt, t+2dt, ...}; x at or before t resolves to t.
func gridCeil(x, t, dt units.Time) units.Time {
	if x <= t {
		return t
	}
	rem := (x - t) % dt
	if rem == 0 {
		return x
	}
	return x + dt - rem
}

var _ interface {
	DeviceTick(now units.Time, dt units.Time)
} = (*Radio)(nil)
