package netquota

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

func newPlan(t *testing.T, quota Bytes) (*Plan, *kobj.Table) {
	t.Helper()
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	return NewPlan(tbl, root, PlanConfig{Quota: quota, Category: 99}), tbl
}

func TestPlanPoolStartsAtQuota(t *testing.T) {
	p, _ := newPlan(t, 2*Gibibyte)
	rem, err := p.Remaining()
	if err != nil {
		t.Fatal(err)
	}
	if rem != 2*Gibibyte {
		t.Fatalf("remaining = %d, want 2 GiB", rem)
	}
	if p.Used() != 0 {
		t.Fatal("fresh plan shows usage")
	}
}

func TestGrantAndCharge(t *testing.T) {
	p, _ := newPlan(t, 100*Mebibyte)
	a, err := p.NewAllowance("browser", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(a, 10*Mebibyte); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(label.Priv{}, 4*Mebibyte); err != nil {
		t.Fatal(err)
	}
	lvl, _ := a.Level(label.Priv{})
	if lvl != 6*Mebibyte {
		t.Fatalf("level = %d, want 6 MiB", lvl)
	}
	used, _ := a.Used()
	if used != 4*Mebibyte {
		t.Fatalf("used = %d", used)
	}
	if p.Used() != 4*Mebibyte {
		t.Fatalf("plan used = %d", p.Used())
	}
	// Quota enforcement: all-or-nothing.
	err = a.Charge(label.Priv{}, 10*Mebibyte)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("overdraft err = %v, want ErrQuota", err)
	}
	if lvl, _ := a.Level(label.Priv{}); lvl != 6*Mebibyte {
		t.Fatal("failed charge changed balance")
	}
}

func TestRateLimitedAllowance(t *testing.T) {
	// A background app trickle-fed 1 KiB/s, the tap pattern from the
	// energy graph applied to bytes.
	p, _ := newPlan(t, 100*Mebibyte)
	a, err := p.NewAllowance("sync", ByteRate(Kibibyte))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Flow(100 * units.Millisecond) // 10 s total
	}
	lvl, _ := a.Level(label.Priv{})
	if lvl != 10*Kibibyte {
		t.Fatalf("level = %d, want exactly 10 KiB", lvl)
	}
	// The app cannot raise its own tap.
	if err := a.Tap.SetRate(label.Priv{}, ByteRate(Mebibyte)); err == nil {
		t.Fatal("app raised its own byte rate")
	}
	// The plan owner can.
	if err := a.Tap.SetRate(p.Priv(), ByteRate(2*Kibibyte)); err != nil {
		t.Fatal(err)
	}
}

func TestDelegationBetweenApps(t *testing.T) {
	p, _ := newPlan(t, 100*Mebibyte)
	a, _ := p.NewAllowance("a", 0)
	b, _ := p.NewAllowance("b", 0)
	if err := p.Grant(a, 10*Mebibyte); err != nil {
		t.Fatal(err)
	}
	if err := p.Delegate(a, b, 3*Mebibyte, label.Priv{}); err != nil {
		t.Fatal(err)
	}
	al, _ := a.Level(label.Priv{})
	bl, _ := b.Level(label.Priv{})
	if al != 7*Mebibyte || bl != 3*Mebibyte {
		t.Fatalf("levels = %d/%d", al, bl)
	}
}

func TestPlanConservation(t *testing.T) {
	p, _ := newPlan(t, 50*Mebibyte)
	a, _ := p.NewAllowance("a", ByteRate(Mebibyte))
	for i := 0; i < 20; i++ {
		p.Flow(units.Second)
		_ = a.Charge(label.Priv{}, 512*Kibibyte)
	}
	if ce := p.Graph().ConservationError(); ce != 0 {
		t.Fatalf("byte conservation error %d", ce)
	}
	rem, _ := p.Remaining()
	lvl, _ := a.Level(label.Priv{})
	if rem+lvl+p.Used() != 50*Mebibyte {
		t.Fatalf("pool %d + allowance %d + used %d != quota", rem, lvl, p.Used())
	}
}

func TestPoolProtected(t *testing.T) {
	p, _ := newPlan(t, Gibibyte)
	var app label.Priv
	if err := p.Pool().Consume(app, Mebibyte); err == nil {
		t.Fatal("application drained plan pool directly")
	}
}

func TestDeleteAllowanceReturnsBytes(t *testing.T) {
	p, tbl := newPlan(t, 100*Mebibyte)
	a, _ := p.NewAllowance("doomed", 0)
	if err := p.Grant(a, 20*Mebibyte); err != nil {
		t.Fatal(err)
	}
	before, _ := p.Remaining()
	// Deleting the allowance's container returns its balance to the
	// pool (container GC + release hook).
	if err := tbl.Delete(tbl.Parent(a.Reserve.ObjectID()).ObjectID()); err != nil {
		t.Fatal(err)
	}
	after, _ := p.Remaining()
	if after-before != 20*Mebibyte {
		t.Fatalf("pool gained %d, want 20 MiB back", after-before)
	}
}

func TestCanAfford(t *testing.T) {
	p, _ := newPlan(t, 10*Mebibyte)
	a, _ := p.NewAllowance("x", 0)
	if a.CanAfford(label.Priv{}, 1) {
		t.Fatal("empty allowance affords a byte")
	}
	if err := p.Grant(a, Mebibyte); err != nil {
		t.Fatal(err)
	}
	if !a.CanAfford(label.Priv{}, Mebibyte) {
		t.Fatal("funded allowance cannot afford its balance")
	}
}

func TestSMSQuota(t *testing.T) {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	q := NewSMSQuota(tbl, root, 100, 7)

	app, err := q.NewAppAllowance("messenger", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := app.Send(label.Priv{}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := app.Send(label.Priv{}); !errors.Is(err, ErrSMSQuota) {
		t.Fatalf("4th send err = %v, want ErrSMSQuota", err)
	}
	if q.Sent() != 3 {
		t.Fatalf("sent = %d", q.Sent())
	}
	rem, _ := q.Remaining()
	if rem != 97 {
		t.Fatalf("pool = %d, want 97", rem)
	}
	// Top up and resume.
	if err := q.TopUp(app, 2); err != nil {
		t.Fatal(err)
	}
	if err := app.Send(label.Priv{}); err != nil {
		t.Fatal(err)
	}
	bal, _ := app.Balance(label.Priv{})
	if bal != 1 {
		t.Fatalf("balance = %d", bal)
	}
}

func TestSMSOverGrant(t *testing.T) {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	q := NewSMSQuota(tbl, root, 5, 7)
	if _, err := q.NewAppAllowance("greedy", 10); !errors.Is(err, core.ErrInsufficient) {
		t.Fatalf("over-grant err = %v, want ErrInsufficient", err)
	}
}
