// Package netquota implements the paper's §9 future-work proposal:
// applying reserves and taps to resources other than energy. "Since
// data plans are frequently offered in terms of megabyte quotas,
// Cinder's mechanisms could be repurposed to limit application network
// access by replacing the logical battery with a pool of network bytes.
// Similarly, reserves could also be used to enforce SMS text message
// quotas."
//
// The consumption-graph machinery in internal/core is unit-agnostic
// int64 arithmetic, so a data plan is simply a second Graph whose root
// reserve holds bytes instead of microjoules and whose taps are byte
// rates (bytes/s) instead of powers. Isolation, delegation, subdivision,
// labels and container GC all carry over unchanged — which is precisely
// the paper's point.
package netquota

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// Bytes is a quantity of network data. It reuses the graph's int64
// resource slot: one core "microjoule" is one byte.
type Bytes = units.Energy

// ByteRate is bytes per second (the graph's "power" slot).
type ByteRate = units.Power

// Common quantities.
const (
	Byte     Bytes = 1
	Kibibyte       = 1024 * Byte
	Mebibyte       = 1024 * Kibibyte
	Gibibyte       = 1024 * Mebibyte
)

// ErrQuota reports an allowance that cannot cover a transfer.
var ErrQuota = errors.New("netquota: insufficient data allowance")

// Plan is a metered data plan: a root reserve holding the period's
// byte quota, subdivided to applications through taps and transfers.
type Plan struct {
	graph *core.Graph
	table *kobj.Table
	root  *kobj.Container
	cat   label.Category
	priv  label.Priv
}

// PlanConfig parameterizes a Plan.
type PlanConfig struct {
	// Quota is the billing period's byte budget (e.g. 2 GiB).
	Quota Bytes
	// Category protects the plan pool; 0 allocates none (public pool,
	// test use only).
	Category label.Category
}

// NewPlan creates a plan whose pool lives under root in the given
// object table. Deleting root tears the whole plan down.
func NewPlan(tbl *kobj.Table, parent *kobj.Container, cfg PlanConfig) *Plan {
	p := &Plan{table: tbl, cat: cfg.Category}
	p.root = kobj.NewContainer(tbl, parent, "data-plan", label.Public())
	poolLabel := label.Public()
	if cfg.Category != 0 {
		p.priv = label.NewPriv(cfg.Category)
		poolLabel = poolLabel.With(cfg.Category, label.Level2)
	}
	// No decay: unused megabytes do not evaporate mid-cycle. (A carrier
	// that expires data could model it with a proportional back tap.)
	p.graph = core.NewGraph(tbl, p.root, poolLabel, core.Config{
		BatteryCapacity: cfg.Quota,
		DecayHalfLife:   -1,
	})
	return p
}

// Priv returns the plan-owner privilege set.
func (p *Plan) Priv() label.Priv { return p.priv }

// Pool returns the root byte reserve ("the logical battery").
func (p *Plan) Pool() *core.Reserve { return p.graph.Battery() }

// Remaining returns the unallocated bytes left in the pool.
func (p *Plan) Remaining() (Bytes, error) {
	return p.graph.Battery().Level(p.priv)
}

// Used returns the bytes consumed (actually transferred on the wire)
// across all allowances.
func (p *Plan) Used() Bytes { return p.graph.Consumed() }

// Graph exposes the underlying consumption graph (for tap flow driving
// and advanced wiring).
func (p *Plan) Graph() *core.Graph { return p.graph }

// Allowance is one application's byte budget.
type Allowance struct {
	plan    *Plan
	Reserve *core.Reserve
	Tap     *core.Tap // nil for grant-only allowances
	name    string
}

// NewAllowance creates an application allowance fed from the pool at
// the given sustained rate (0 for a grant-only allowance funded by
// Grant). The tap is protected by the plan's category so applications
// cannot raise their own rate — the exact energywrap pattern applied to
// bytes.
func (p *Plan) NewAllowance(name string, rate ByteRate) (*Allowance, error) {
	c := kobj.NewContainer(p.table, p.root, name, label.Public())
	res := p.graph.NewReserve(c, name+"-bytes", label.Public(), core.ReserveOpts{})
	a := &Allowance{plan: p, Reserve: res, name: name}
	if rate > 0 {
		lbl := label.Public()
		if p.cat != 0 {
			lbl = lbl.With(p.cat, label.Level2)
		}
		tap, err := p.graph.NewTap(c, name+"-tap", p.priv, p.graph.Battery(), res, lbl)
		if err != nil {
			return nil, fmt.Errorf("netquota: allowance %q: %w", name, err)
		}
		if err := tap.SetRate(p.priv, rate); err != nil {
			return nil, fmt.Errorf("netquota: allowance %q: %w", name, err)
		}
		a.Tap = tap
	}
	return a, nil
}

// Grant moves a one-shot block of bytes from the pool into the
// allowance (subdivision by quantity rather than rate).
func (p *Plan) Grant(a *Allowance, n Bytes) error {
	return p.graph.Transfer(p.priv, p.graph.Battery(), a.Reserve, n)
}

// Delegate moves bytes between two allowances — one app lending its
// data budget to another, the delegation story of §2.2 applied to §9's
// resource.
func (p *Plan) Delegate(from, to *Allowance, n Bytes, callerPriv label.Priv) error {
	return p.graph.Transfer(callerPriv, from.Reserve, to.Reserve, n)
}

// Flow advances the plan's taps by dt; callers hook this to their
// simulation clock (the kernel does the equivalent for energy).
func (p *Plan) Flow(dt units.Time) { p.graph.Flow(dt) }

// Charge debits a completed transfer of n bytes from the allowance,
// all-or-nothing. It is the enforcement point a network stack calls
// before moving data.
func (a *Allowance) Charge(callerPriv label.Priv, n Bytes) error {
	if err := a.Reserve.Consume(callerPriv, n); err != nil {
		if errors.Is(err, core.ErrInsufficient) {
			// Format as bytes: the underlying graph's unit strings are
			// energy-flavoured.
			return fmt.Errorf("%w: %q needs %d bytes", ErrQuota, a.name, int64(n))
		}
		return err
	}
	return nil
}

// CanAfford reports whether a transfer of n bytes would be admitted.
func (a *Allowance) CanAfford(callerPriv label.Priv, n Bytes) bool {
	return a.Reserve.CanConsume(callerPriv, n)
}

// Level returns the allowance's current byte balance.
func (a *Allowance) Level(callerPriv label.Priv) (Bytes, error) {
	return a.Reserve.Level(callerPriv)
}

// Used returns the bytes this allowance has consumed.
func (a *Allowance) Used() (Bytes, error) {
	st, err := a.Reserve.Stats(label.Priv{})
	if err != nil {
		return 0, err
	}
	return st.Consumed, nil
}
