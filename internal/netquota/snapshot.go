package netquota

import (
	"repro/internal/snap"
)

// Snapshot serializes the plan's mutable state: the underlying byte
// graph carries every allowance level, tap carry and accounting
// counter, so the plan itself adds nothing beyond the section frame.
// Allowance handles are structural — the rebuilt world re-creates them
// in the same order, and the graph restore validates name-by-name.
func (p *Plan) Snapshot(w *snap.Writer) {
	w.Section("netquota")
	p.graph.Snapshot(w)
}

// Restore overlays a snapshot onto a freshly rebuilt plan whose
// allowances were re-created by the same deterministic construction
// path.
func (p *Plan) Restore(r *snap.Reader) error {
	r.Section("netquota")
	return p.graph.Restore(r)
}
