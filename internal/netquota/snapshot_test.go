package netquota

import (
	"bytes"
	"testing"

	"repro/internal/label"
	"repro/internal/snap"
	"repro/internal/units"
)

func planSnap(t *testing.T, p *Plan) []byte {
	t.Helper()
	w := snap.NewWriter()
	p.Snapshot(w)
	b, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// buildMeteredPlan is the deterministic construction path both sides of
// the round trip share: a plan with a granted browser allowance and a
// trickle-fed background allowance, mirroring how a fleet scenario's
// Build re-creates the plan before Restore overlays the snapshot.
func buildMeteredPlan(t *testing.T) (*Plan, *Allowance, *Allowance) {
	t.Helper()
	p, _ := newPlan(t, 100*Mebibyte)
	browser, err := p.NewAllowance("browser", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(browser, 20*Mebibyte); err != nil {
		t.Fatal(err)
	}
	bg, err := p.NewAllowance("background", ByteRate(Kibibyte))
	if err != nil {
		t.Fatal(err)
	}
	return p, browser, bg
}

func TestPlanSnapshotRoundTrip(t *testing.T) {
	p, browser, _ := buildMeteredPlan(t)
	if err := browser.Charge(label.Priv{}, 3*Mebibyte); err != nil {
		t.Fatal(err)
	}
	p.Flow(10 * units.Second) // accrue trickle carry into the background tap
	b := planSnap(t, p)

	p2, browser2, _ := buildMeteredPlan(t)
	r, err := snap.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Restore(r); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := browser2.Level(label.Priv{}); lvl != 17*Mebibyte {
		t.Fatalf("restored browser level = %d, want 17 MiB", lvl)
	}
	if used, _ := browser2.Used(); used != 3*Mebibyte {
		t.Fatalf("restored browser used = %d, want 3 MiB", used)
	}
	if p2.Used() != p.Used() {
		t.Fatalf("restored plan used = %d, original %d", p2.Used(), p.Used())
	}
	// The resume bar: re-serializing the restored plan reproduces the
	// snapshot byte for byte (levels, tap carries, accounting counters).
	if !bytes.Equal(planSnap(t, p2), b) {
		t.Fatal("re-snapshot of restored plan differs from original")
	}
}

func TestPlanRestoreRejectsStructuralDrift(t *testing.T) {
	// A rebuilt plan whose construction path created different
	// allowances must refuse the snapshot loudly — the graph restore
	// validates reserve names, so drift cannot surface as silently
	// misattributed byte balances.
	p, _, _ := buildMeteredPlan(t)
	b := planSnap(t, p)

	p2, _ := newPlan(t, 100*Mebibyte)
	if _, err := p2.NewAllowance("mailer", 0); err != nil {
		t.Fatal(err)
	}
	r, err := snap.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Restore(r); err == nil {
		t.Fatal("restore onto a structurally different plan succeeded")
	}
}
