package netquota

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// Messages counts SMS messages; one core resource unit is one message.
type Messages = units.Energy

// ErrSMSQuota reports an exhausted message allowance.
var ErrSMSQuota = errors.New("netquota: SMS quota exhausted")

// SMSQuota enforces a message budget (§9: "reserves could also be used
// to enforce SMS text message quotas"). The pool holds the billing
// period's messages; per-app reserves subdivide it.
type SMSQuota struct {
	graph *core.Graph
	table *kobj.Table
	root  *kobj.Container
	priv  label.Priv
	cat   label.Category
}

// NewSMSQuota creates a quota of n messages per period.
func NewSMSQuota(tbl *kobj.Table, parent *kobj.Container, n Messages, cat label.Category) *SMSQuota {
	q := &SMSQuota{table: tbl, cat: cat}
	q.root = kobj.NewContainer(tbl, parent, "sms-quota", label.Public())
	poolLabel := label.Public()
	if cat != 0 {
		q.priv = label.NewPriv(cat)
		poolLabel = poolLabel.With(cat, label.Level2)
	}
	q.graph = core.NewGraph(tbl, q.root, poolLabel, core.Config{
		BatteryCapacity: n,
		DecayHalfLife:   -1,
	})
	return q
}

// Remaining returns the messages left in the pool.
func (q *SMSQuota) Remaining() (Messages, error) {
	return q.graph.Battery().Level(q.priv)
}

// Sent returns the total messages consumed.
func (q *SMSQuota) Sent() Messages { return q.graph.Consumed() }

// AppAllowance is one application's message budget.
type AppAllowance struct {
	quota   *SMSQuota
	Reserve *core.Reserve
	name    string
}

// NewAppAllowance grants an application n messages out of the pool.
// The balance is a hard cap: when it is gone, Send fails until the
// owner grants more.
func (q *SMSQuota) NewAppAllowance(name string, n Messages) (*AppAllowance, error) {
	c := kobj.NewContainer(q.table, q.root, name, label.Public())
	res := q.graph.NewReserve(c, name+"-sms", label.Public(), core.ReserveOpts{})
	if err := q.graph.Transfer(q.priv, q.graph.Battery(), res, n); err != nil {
		return nil, fmt.Errorf("netquota: sms allowance %q: %w", name, err)
	}
	return &AppAllowance{quota: q, Reserve: res, name: name}, nil
}

// TopUp grants the application additional messages.
func (q *SMSQuota) TopUp(a *AppAllowance, n Messages) error {
	return q.graph.Transfer(q.priv, q.graph.Battery(), a.Reserve, n)
}

// Send consumes one message from the allowance.
func (a *AppAllowance) Send(callerPriv label.Priv) error {
	if err := a.Reserve.Consume(callerPriv, 1); err != nil {
		if errors.Is(err, core.ErrInsufficient) {
			return fmt.Errorf("%w: %q", ErrSMSQuota, a.name)
		}
		return err
	}
	return nil
}

// Balance returns the allowance's remaining messages.
func (a *AppAllowance) Balance(callerPriv label.Priv) (Messages, error) {
	return a.Reserve.Level(callerPriv)
}
