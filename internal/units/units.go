// Package units defines the physical quantities used throughout the Cinder
// simulation: energy in microjoules, power in microwatts, and simulated
// time in milliseconds.
//
// All three are integer types. Integer arithmetic keeps the simulation
// deterministic and free of floating-point drift: an experiment that runs
// for twenty simulated minutes performs on the order of 10^8 energy
// updates, and the paper's evaluation depends on exact conservation
// (energy leaving the battery equals energy accounted to reserves plus
// energy consumed). The only floating-point code in the package is the
// human-readable formatting.
//
// Conversions between power, time and energy round toward zero. Rounding
// residue is handled by callers that integrate over many ticks (see
// energy.Tap, which carries the remainder between flows).
package units

import (
	"fmt"
	"math"
)

// Energy is an amount of energy in microjoules (µJ).
//
// The zero value is "no energy". Energy may be negative only in the
// explicit after-the-fact debt case described in §5.5.2 of the paper;
// ordinary reserve operations never produce negative values.
type Energy int64

// Power is a rate of energy flow in microwatts (µW), i.e. µJ/s.
type Power int64

// Time is a simulated instant or duration in milliseconds.
type Time int64

// Common energy quantities.
const (
	Microjoule Energy = 1
	Millijoule Energy = 1000 * Microjoule
	Joule      Energy = 1000 * Millijoule
	Kilojoule  Energy = 1000 * Joule
)

// Common power quantities.
const (
	Microwatt Power = 1
	Milliwatt Power = 1000 * Microwatt
	Watt      Power = 1000 * Milliwatt
)

// Common durations.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxEnergy is the largest representable energy quantity. It is used as
// an "unlimited" sentinel for reserves with no cap.
const MaxEnergy Energy = math.MaxInt64

// Joules constructs an Energy from a floating-point joule count, rounding
// to the nearest microjoule. It is intended for test and configuration
// literals, not for the simulation hot path.
func Joules(j float64) Energy {
	return Energy(math.Round(j * 1e6))
}

// Milliwatts constructs a Power from a floating-point milliwatt count.
func Milliwatts(mw float64) Power {
	return Power(math.Round(mw * 1e3))
}

// Watts constructs a Power from a floating-point watt count.
func Watts(w float64) Power {
	return Power(math.Round(w * 1e6))
}

// Seconds constructs a Time from a floating-point second count.
func Seconds(s float64) Time {
	return Time(math.Round(s * 1e3))
}

// Joules reports the energy as a floating-point number of joules.
func (e Energy) Joules() float64 { return float64(e) / 1e6 }

// Millijoules reports the energy as floating-point millijoules.
func (e Energy) Millijoules() float64 { return float64(e) / 1e3 }

// Watts reports the power as a floating-point number of watts.
func (p Power) Watts() float64 { return float64(p) / 1e6 }

// Milliwatts reports the power as floating-point milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) / 1e3 }

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e3 }

// Milliseconds reports the time as an integer millisecond count.
func (t Time) Milliseconds() int64 { return int64(t) }

// Over returns the energy delivered by power p over duration d,
// truncated toward zero. Callers that integrate repeatedly should
// accumulate the sub-microjoule remainder themselves; see EnergyOverRem.
func (p Power) Over(d Time) Energy {
	return Energy(int64(p) * int64(d) / 1000)
}

// OverRem returns the energy delivered by power p over duration d along
// with the remainder in microwatt-milliseconds (µJ·10⁻³). Adding the
// returned remainder to the next call's accumulator makes long
// integrations exact:
//
//	acc += int64(p) * int64(d)
//	e := units.Energy(acc / 1000)
//	acc %= 1000
func (p Power) OverRem(d Time, carry int64) (Energy, int64) {
	total := int64(p)*int64(d) + carry
	return Energy(total / 1000), total % 1000
}

// DividedBy returns the average power that delivers energy e over
// duration d. It returns 0 if d is 0.
func (e Energy) DividedBy(d Time) Power {
	if d == 0 {
		return 0
	}
	return Power(int64(e) * 1000 / int64(d))
}

// PerSecond interprets the energy quantity as a per-second rate and
// returns the equivalent power. Energy(x).PerSecond() == Power(x) since
// µJ/s == µW, but the named conversion documents intent at call sites.
func (e Energy) PerSecond() Power { return Power(e) }

// Min returns the smaller of two energies.
func Min(a, b Energy) Energy {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two energies.
func Max(a, b Energy) Energy {
	if a > b {
		return a
	}
	return b
}

// ClampNonNegative returns e, or 0 if e is negative.
func ClampNonNegative(e Energy) Energy {
	if e < 0 {
		return 0
	}
	return e
}

// String renders the energy with an SI-style unit chosen by magnitude,
// e.g. "9.50 J", "137.00 mJ", "42 µJ".
func (e Energy) String() string {
	abs := e
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Kilojoule:
		return fmt.Sprintf("%.3f kJ", float64(e)/float64(Kilojoule))
	case abs >= Joule:
		return fmt.Sprintf("%.2f J", float64(e)/float64(Joule))
	case abs >= Millijoule:
		return fmt.Sprintf("%.2f mJ", float64(e)/float64(Millijoule))
	default:
		return fmt.Sprintf("%d µJ", int64(e))
	}
}

// String renders the power with an SI-style unit chosen by magnitude,
// e.g. "1.20 W", "137.00 mW", "250 µW".
func (p Power) String() string {
	abs := p
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Watt:
		return fmt.Sprintf("%.2f W", float64(p)/float64(Watt))
	case abs >= Milliwatt:
		return fmt.Sprintf("%.2f mW", float64(p)/float64(Milliwatt))
	default:
		return fmt.Sprintf("%d µW", int64(p))
	}
}

// String renders the time as seconds for durations of at least one
// second and milliseconds otherwise, e.g. "1201.0 s", "250 ms".
func (t Time) String() string {
	abs := t
	if abs < 0 {
		abs = -abs
	}
	if abs >= Second {
		return fmt.Sprintf("%.1f s", float64(t)/float64(Second))
	}
	return fmt.Sprintf("%d ms", int64(t))
}
