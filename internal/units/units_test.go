package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantsRelations(t *testing.T) {
	if Joule != 1_000_000*Microjoule {
		t.Errorf("Joule = %d µJ, want 1e6", int64(Joule))
	}
	if Kilojoule != 1000*Joule {
		t.Errorf("Kilojoule = %d, want 1000 J", int64(Kilojoule))
	}
	if Watt != 1_000_000*Microwatt {
		t.Errorf("Watt = %d µW, want 1e6", int64(Watt))
	}
	if Hour != 3_600_000*Millisecond {
		t.Errorf("Hour = %d ms, want 3.6e6", int64(Hour))
	}
}

func TestConstructors(t *testing.T) {
	tests := []struct {
		got, want int64
		name      string
	}{
		{int64(Joules(9.5)), 9_500_000, "Joules(9.5)"},
		{int64(Joules(0)), 0, "Joules(0)"},
		{int64(Joules(-1.5)), -1_500_000, "Joules(-1.5)"},
		{int64(Milliwatts(137)), 137_000, "Milliwatts(137)"},
		{int64(Milliwatts(0.75)), 750, "Milliwatts(0.75)"},
		{int64(Watts(0.699)), 699_000, "Watts(0.699)"},
		{int64(Seconds(20)), 20_000, "Seconds(20)"},
		{int64(Seconds(0.2)), 200, "Seconds(0.2)"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, tt.got, tt.want)
		}
	}
}

func TestPowerOver(t *testing.T) {
	// 137 mW for 1 s = 137 mJ.
	if got := Milliwatts(137).Over(Second); got != 137*Millijoule {
		t.Errorf("137mW over 1s = %v, want 137 mJ", got)
	}
	// 1 mW for 1 ms = 1 µJ.
	if got := Milliwatt.Over(Millisecond); got != Microjoule {
		t.Errorf("1mW over 1ms = %v, want 1 µJ", got)
	}
	// 750 mW over 15 kJ battery ≈ 5.55 hours (paper §3.4): check the
	// inverse: energy over 20000 s.
	if got := Milliwatts(750).Over(20000 * Second); got != 15*Kilojoule {
		t.Errorf("750mW over 20000s = %v, want 15 kJ", got)
	}
	// Truncation: 1 µW over 1 ms is below 1 µJ and truncates to zero.
	if got := Microwatt.Over(Millisecond); got != 0 {
		t.Errorf("1µW over 1ms = %v, want 0 (truncated)", got)
	}
}

func TestOverRemExactIntegration(t *testing.T) {
	// Integrating 1 µW in 1 ms steps for 1 s must produce exactly 1 µJ
	// when the carry is threaded through, even though each single step
	// truncates to zero.
	var total Energy
	var carry int64
	for i := 0; i < 1000; i++ {
		var e Energy
		e, carry = Microwatt.OverRem(Millisecond, carry)
		total += e
	}
	if total != 1*Microjoule {
		t.Errorf("integrated 1µW over 1s = %v, want 1 µJ", total)
	}
	if carry != 0 {
		t.Errorf("carry after exact integration = %d, want 0", carry)
	}
}

func TestOverRemMatchesOverProperty(t *testing.T) {
	// Σ OverRem steps == Over of the whole interval (+ bounded residue).
	f := func(pRaw int32, steps uint8) bool {
		p := Power(int64(pRaw)%1_000_000 + 1_000_000) // 1–2 W
		n := int(steps)%100 + 1
		var total Energy
		var carry int64
		for i := 0; i < n; i++ {
			var e Energy
			e, carry = p.OverRem(Millisecond, carry)
			total += e
		}
		whole := p.Over(Time(n) * Millisecond)
		// Residue must be the carry only, strictly below 1 µJ·1000.
		return total == whole && carry >= 0 && carry < 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDividedBy(t *testing.T) {
	if got := (137 * Millijoule).DividedBy(Second); got != Milliwatts(137) {
		t.Errorf("137mJ / 1s = %v, want 137 mW", got)
	}
	if got := Energy(500).DividedBy(0); got != 0 {
		t.Errorf("x / 0 = %v, want 0", got)
	}
	// Paper Table 1: 1238 J over 1201 s ≈ 1.03 W.
	got := (1238 * Joule).DividedBy(1201 * Second)
	if got < Watts(1.02) || got > Watts(1.04) {
		t.Errorf("1238J/1201s = %v, want ≈1.03 W", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if ClampNonNegative(-4) != 0 {
		t.Error("ClampNonNegative(-4) != 0")
	}
	if ClampNonNegative(4) != 4 {
		t.Error("ClampNonNegative(4) != 4")
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Joules(9.5).String(), "9.50 J"},
		{(15 * Kilojoule).String(), "15.000 kJ"},
		{(137 * Millijoule).String(), "137.00 mJ"},
		{Energy(42).String(), "42 µJ"},
		{Milliwatts(137).String(), "137.00 mW"},
		{Watts(1.2).String(), "1.20 W"},
		{Power(250).String(), "250 µW"},
		{(1201 * Second).String(), "1201.0 s"},
		{Time(250).String(), "250 ms"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestJoulesRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		e := Energy(raw)
		back := Joules(e.Joules())
		return back == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverNoOverflowAtScale(t *testing.T) {
	// A full battery drained at 2 W for a day must not overflow int64.
	e := Watts(2).Over(24 * Hour)
	if e != Energy(172800)*Joule {
		t.Errorf("2W over 24h = %v, want 172.8 kJ", e)
	}
	if int64(e) < 0 || int64(e) > math.MaxInt64/1000 {
		t.Errorf("unexpected magnitude %d", int64(e))
	}
}
