package coord

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// RunHTTP executes a job over a real HTTP loopback: an embedded
// coordinator behind delivery.Handler on a 127.0.0.1 listener, with
// opt.Runners runner loops dialing it through the wire like remote
// processes would. It is the cluster rehearsal RunLocal cannot give —
// every claim, heartbeat, partial and status crosses a TCP connection
// and the full JSON encode/decode path — packaged as one call so the
// perf harness can run (and time) the whole stack as a scenario.
func RunHTTP(ctx context.Context, job fleet.Job, opt LocalOptions) (fleet.Report, error) {
	runners := opt.Runners
	if runners <= 0 {
		runners = 1
	}
	co := New(opt.Coordinator)
	if opt.Logf != nil && co.opts.Logf == nil {
		co.opts.Logf = opt.Logf
	}
	defer co.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fleet.Report{}, fmt.Errorf("coord: loopback listener: %w", err)
	}
	srv := &http.Server{Handler: delivery.Handler(co)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-serveErr // http.ErrServerClosed once Shutdown finishes
	}()

	base := "http://" + ln.Addr().String()
	submit := delivery.DialHTTP(base)
	defer submit.Close()
	if err := submit.Submit(ctx, job); err != nil {
		return fleet.Report{}, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		id := fmt.Sprintf("http-%d", i)
		conn := delivery.DialHTTP(base)
		r := &Runner{
			ID:      id,
			Conn:    conn,
			Workers: opt.Workers,
			Poll:    20 * time.Millisecond,
			Logf:    opt.Logf,
		}
		if opt.OnProgress != nil {
			r.OnProgress = func(shard int, p fleet.Progress) { opt.OnProgress(id, shard, p) }
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			r.Run(ctx)
		}()
	}
	rep, err := co.Wait(ctx)
	cancel()
	wg.Wait()
	return rep, err
}
