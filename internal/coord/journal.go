package coord

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/snap"
)

// The coordinator's durable job journal. Every state transition the
// coordinator accepts — the job spec, each shard grant, heartbeat,
// genuine failure, and completed partial — is appended to one file in
// the job's shared checkpoint dir before the in-memory state mutates
// (write-ahead), so a coordinator killed at any instant can be
// restarted with `cinder-coord serve -recover` and replay the journal
// into identical lease/attempt state. Records reuse the internal/snap
// tagged-section + CRC-32 format inside the same frame layout as the
// fleet's epoch files (uvarint kind, uvarint length, snap blob), so a
// torn final append is detected exactly like a torn epoch write.
//
// The write-ahead discipline makes any valid journal prefix a correct
// resume point: an operation that was journaled but whose in-memory
// effect (or client acknowledgement) was lost is simply replayed, and
// an operation that was lost entirely re-happens through the normal
// machinery — lease expiry regrants the shard, and the runner's
// retried Complete/Fail delivery is deduplicated server-side. Lease
// expiries and terminal failures are deliberately not journaled: both
// are re-derived from the clock and MaxAttempts during replay.

// journalName is the journal's filename inside the checkpoint dir.
const journalName = "coord-journal.bin"

// Journal record kinds (the frame header byte).
const (
	jrSubmit   = 1 // job spec (wire JSON)
	jrGrant    = 2 // shard leased: shard, runner, attempt (0-based), resume
	jrBeat     = 3 // progress: shard, devicesDone, simDoneMS, lastCheckpoint
	jrComplete = 4 // shard done: shard, runner, partial (wire JSON)
	jrFail     = 5 // attempt failed: shard, runner, attempt (0-based), msg
)

// jrTag is the snap section tag cross-checking each frame's kind.
func jrTag(kind int) string {
	switch kind {
	case jrSubmit:
		return "submit"
	case jrGrant:
		return "grant"
	case jrBeat:
		return "beat"
	case jrComplete:
		return "complete"
	case jrFail:
		return "fail"
	}
	return fmt.Sprintf("jr%d", kind)
}

// jrec is one journal record, in memory. Only the fields of its kind
// are meaningful.
type jrec struct {
	kind    int
	job     []byte // jrSubmit: the job's wire JSON
	shard   int
	runner  string
	attempt int  // jrGrant/jrFail: the lease's 0-based attempt key
	resume  bool // jrGrant

	devicesDone    int   // jrBeat
	simDoneMS      int64 // jrBeat
	lastCheckpoint int   // jrBeat

	partial []byte // jrComplete: the partial's wire JSON
	msg     string // jrFail
}

// encodeJrec renders one record as a framed snap blob.
func encodeJrec(rec jrec) ([]byte, error) {
	w := snap.NewWriter()
	w.Section(jrTag(rec.kind))
	switch rec.kind {
	case jrSubmit:
		w.Bytes(rec.job)
	case jrGrant:
		w.U64(uint64(rec.shard))
		w.String(rec.runner)
		w.U64(uint64(rec.attempt))
		w.Bool(rec.resume)
	case jrBeat:
		w.U64(uint64(rec.shard))
		w.U64(uint64(rec.devicesDone))
		w.I64(rec.simDoneMS)
		w.I64(int64(rec.lastCheckpoint))
	case jrComplete:
		w.U64(uint64(rec.shard))
		w.String(rec.runner)
		w.Bytes(rec.partial)
	case jrFail:
		w.U64(uint64(rec.shard))
		w.String(rec.runner)
		w.U64(uint64(rec.attempt))
		w.String(rec.msg)
	default:
		return nil, fmt.Errorf("coord: unknown journal record kind %d", rec.kind)
	}
	blob, err := w.Finish()
	if err != nil {
		return nil, err
	}
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(rec.kind))
	n += binary.PutUvarint(tmp[n:], uint64(len(blob)))
	return append(tmp[:n:n], blob...), nil
}

// decodeJrec parses one frame's snap blob (CRC already covers it).
func decodeJrec(kind int, blob []byte) (jrec, error) {
	r, err := snap.Open(blob)
	if err != nil {
		return jrec{}, err
	}
	r.Section(jrTag(kind))
	rec := jrec{kind: kind}
	switch kind {
	case jrSubmit:
		rec.job = append([]byte(nil), r.Bytes()...)
	case jrGrant:
		rec.shard = int(r.U64())
		rec.runner = r.String()
		rec.attempt = int(r.U64())
		rec.resume = r.Bool()
	case jrBeat:
		rec.shard = int(r.U64())
		rec.devicesDone = int(r.U64())
		rec.simDoneMS = r.I64()
		rec.lastCheckpoint = int(r.I64())
	case jrComplete:
		rec.shard = int(r.U64())
		rec.runner = r.String()
		rec.partial = append([]byte(nil), r.Bytes()...)
	case jrFail:
		rec.shard = int(r.U64())
		rec.runner = r.String()
		rec.attempt = int(r.U64())
		rec.msg = r.String()
	default:
		return jrec{}, fmt.Errorf("coord: unknown journal record kind %d", kind)
	}
	if err := r.Close(); err != nil {
		return jrec{}, err
	}
	return rec, nil
}

// journal is an open, appendable journal file.
type journal struct {
	f    *os.File
	path string
}

// createJournal starts a fresh journal at path (truncating any
// previous file — the caller decides whether an existing journal may
// be discarded).
func createJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coord: create journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// openJournalAppend reopens an existing journal for appending (after
// recovery replayed it).
func openJournalAppend(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("coord: reopen journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// append writes one record. With sync, the record is fsynced before
// returning — required for every record written ahead of a state
// mutation. Heartbeats skip the sync: losing a beat to a crash only
// costs a stale progress counter, never correctness.
func (j *journal) append(rec jrec, sync bool) error {
	frame, err := encodeJrec(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("coord: journal append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("coord: journal sync: %w", err)
		}
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// readJournal parses the longest valid record prefix of the journal at
// path. It returns the records, the byte offset where the valid prefix
// ends, and — when the file continues past that offset — the error
// describing the torn or corrupt tail. A nil error means the whole
// file parsed.
func readJournal(path string) ([]jrec, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var recs []jrec
	off := 0
	for off < len(b) {
		start := off
		kind, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return recs, int64(start), fmt.Errorf("coord: journal: bad frame kind at offset %d", start)
		}
		off += n
		ln, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return recs, int64(start), fmt.Errorf("coord: journal: bad frame length at offset %d", start)
		}
		off += n
		if uint64(len(b)-off) < ln {
			return recs, int64(start), fmt.Errorf("coord: journal: truncated frame at offset %d (%d of %d bytes)",
				start, len(b)-off, ln)
		}
		rec, err := decodeJrec(int(kind), b[off:off+int(ln)])
		if err != nil {
			return recs, int64(start), fmt.Errorf("coord: journal: frame at offset %d: %w", start, err)
		}
		off += int(ln)
		recs = append(recs, rec)
	}
	return recs, int64(len(b)), nil
}

// JournalPath returns the journal file path for a checkpoint dir (for
// tooling and tests).
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }
