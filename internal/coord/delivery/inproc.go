package delivery

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/fleet"
)

// Inproc is the in-process delivery mechanism: a channel-served
// adapter over a Service. Every request is a closure sent to one
// serving goroutine, so calls from any number of runner goroutines are
// serialized exactly as a single-listener network transport would
// serialize them, and every message is round-tripped through its JSON
// wire form — the in-process mechanism is a real transport that merely
// happens to have zero latency, which is what makes "cinder-fleet
// -shards" a faithful rehearsal of a cluster run.
type Inproc struct {
	svc    Service
	reqs   chan func()
	closed chan struct{}
}

// ServeInproc starts serving the Service over an in-process channel.
// Close releases the serving goroutine; connections error with
// ErrClosed afterwards.
func ServeInproc(svc Service) *Inproc {
	t := &Inproc{
		svc:    svc,
		reqs:   make(chan func()),
		closed: make(chan struct{}),
	}
	go t.serve()
	return t
}

func (t *Inproc) serve() {
	for {
		select {
		case f := <-t.reqs:
			f()
		case <-t.closed:
			return
		}
	}
}

// Close shuts the transport down.
func (t *Inproc) Close() error {
	select {
	case <-t.closed:
	default:
		close(t.closed)
	}
	return nil
}

// Conn returns a client connection. All connections share the one
// serving channel; each is safe for concurrent use.
func (t *Inproc) Conn() Conn { return &inprocConn{t: t} }

type inprocConn struct{ t *Inproc }

// do runs f on the serving goroutine and waits for it. Context
// cancellation abandons the wait (mirroring an HTTP request aborted in
// flight): f may still run on the server side, which is exactly the
// ambiguity a retrying client must tolerate.
func (c *inprocConn) do(ctx context.Context, f func()) error {
	done := make(chan struct{})
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.t.closed:
		return ErrClosed
	case c.t.reqs <- func() { f(); close(done) }:
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		select {
		case <-done:
			return nil
		default:
			return ctx.Err()
		}
	case <-c.t.closed:
		// The serving goroutine may already have picked f up; prefer
		// the result if it raced to completion.
		select {
		case <-done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// roundTrip copies in to out through the JSON wire form, so in-process
// delivery exercises exactly the serialization a network transport
// would.
func roundTrip(in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("delivery: marshal: %w", err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		return fmt.Errorf("delivery: unmarshal: %w", err)
	}
	return nil
}

func (c *inprocConn) Submit(ctx context.Context, job fleet.Job) error {
	var wire fleet.Job
	if err := roundTrip(job, &wire); err != nil {
		return err
	}
	// The HTTP server re-validates through ParseJob; mirror it, so a job
	// that cannot survive serialization (a non-registry scenario, say)
	// fails identically on every transport.
	if err := wire.Validate(); err != nil {
		return err
	}
	var err error
	if derr := c.do(ctx, func() { err = c.t.svc.Submit(wire) }); derr != nil {
		return derr
	}
	return err
}

func (c *inprocConn) Claim(ctx context.Context, runner string) (Task, error) {
	var task Task
	var err error
	if derr := c.do(ctx, func() { task, err = c.t.svc.Claim(runner) }); derr != nil {
		return Task{}, derr
	}
	if err != nil {
		return Task{}, err
	}
	var wire Task
	if err := roundTrip(task, &wire); err != nil {
		return Task{}, err
	}
	return wire, nil
}

func (c *inprocConn) Heartbeat(ctx context.Context, runner string, beat Beat) error {
	var err error
	if derr := c.do(ctx, func() { err = c.t.svc.Heartbeat(runner, beat) }); derr != nil {
		return derr
	}
	return err
}

func (c *inprocConn) Complete(ctx context.Context, runner string, shard int, p *fleet.Partial) error {
	// The round-trip matters most here: the partial is the payload the
	// whole system exists to move, and ParsePartial is the gate every
	// real transport runs it through.
	b, err := p.JSON()
	if err != nil {
		return err
	}
	wire, err := fleet.ParsePartial(b)
	if err != nil {
		return err
	}
	if derr := c.do(ctx, func() { err = c.t.svc.Complete(runner, shard, wire) }); derr != nil {
		return derr
	}
	return err
}

func (c *inprocConn) Fail(ctx context.Context, runner string, shard, attempt int, msg string) error {
	var err error
	if derr := c.do(ctx, func() { err = c.t.svc.Fail(runner, shard, attempt, msg) }); derr != nil {
		return derr
	}
	return err
}

func (c *inprocConn) Status(ctx context.Context) (Status, error) {
	var st Status
	if derr := c.do(ctx, func() { st = c.t.svc.Status() }); derr != nil {
		return Status{}, derr
	}
	var wire Status
	if err := roundTrip(st, &wire); err != nil {
		return Status{}, err
	}
	return wire, nil
}

func (c *inprocConn) Result(ctx context.Context, canonical bool) ([]byte, error) {
	var b []byte
	var err error
	if derr := c.do(ctx, func() { b, err = c.t.svc.Result(canonical) }); derr != nil {
		return nil, derr
	}
	return b, err
}

func (c *inprocConn) Close() error { return nil }
