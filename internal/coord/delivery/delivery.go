// Package delivery carries the coordinator/runner conversation behind
// a small transport interface, in the spirit of rdsys's pkg/core /
// pkg/delivery split: the mergeable model (fleet.Job in, fleet.Partial
// out) lives in the core packages, and a delivery mechanism is a thin
// adapter that moves those values between processes. Two mechanisms
// ship — in-process channels (Inproc, used by tests and by
// cinder-fleet's local -shards mode, proving the layering is
// semantics-free) and HTTP (JSON over loopback or LAN). Sockets or RPC
// slot in later by implementing Conn against the same Service, without
// touching the coordinator or the runners.
//
// Every transport delivers by value: even the in-process mechanism
// round-trips each message through its JSON wire form, so a job that
// could not survive a real network hop (say, one referencing a
// non-registry scenario) fails identically on every transport.
package delivery

import (
	"context"
	"errors"

	"repro/internal/fleet"
)

// Sentinel outcomes of the conversation. Transports must map them
// faithfully in both directions — a runner's control flow branches on
// them, not on transport-specific error text.
var (
	// ErrNoWork : nothing to lease right now; poll again later.
	ErrNoWork = errors.New("delivery: no work available")
	// ErrDone : the job is complete (or failed terminally); the runner
	// may exit.
	ErrDone = errors.New("delivery: job done")
	// ErrLeaseLost : the caller no longer holds the shard's lease (it
	// expired and was reassigned, or the shard already completed);
	// abandon the work.
	ErrLeaseLost = errors.New("delivery: lease lost")
	// ErrNotDone : the merged report was requested before completion.
	ErrNotDone = errors.New("delivery: job not done yet")
	// ErrClosed : the transport was shut down.
	ErrClosed = errors.New("delivery: transport closed")
)

// Task is one leased unit of work: a shard of a job.
type Task struct {
	Job   fleet.Job `json:"job"`
	Shard int       `json:"shard"`
	// Resume marks a reassigned shard: a previous runner was lost, so
	// resume from its epoch checkpoints when possible.
	Resume bool `json:"resume,omitempty"`
	// Attempt counts prior leases of this shard (0 on first assignment).
	Attempt int `json:"attempt"`
	// HeartbeatMS is the beat cadence the coordinator expects; a lease
	// that misses several beats is forfeited and reassigned.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// Beat is one lease renewal, carrying the shard's live progress (the
// numbers behind the coordinator's /status JSON).
type Beat struct {
	Shard       int   `json:"shard"`
	DevicesDone int   `json:"devices_done"`
	SimDoneMS   int64 `json:"sim_done_ms"`
	// LastCheckpoint is the newest epoch file the shard has published
	// (-1 before any) — what a reassignment could resume from.
	LastCheckpoint int `json:"last_checkpoint"`
}

// Status is the coordinator's public state snapshot.
type Status struct {
	Submitted bool       `json:"submitted"`
	Job       *fleet.Job `json:"job,omitempty"`
	Done      bool       `json:"done"`
	// Failed carries the terminal error text when the job was aborted
	// (a shard exhausted its attempts).
	Failed string `json:"failed,omitempty"`

	Devices     int   `json:"devices"`
	DevicesDone int   `json:"devices_done"`
	SimDoneMS   int64 `json:"sim_done_ms"`
	SimTotalMS  int64 `json:"sim_total_ms"`
	// ElapsedMS is wall time since submission on the coordinator's
	// clock; clients derive device-days/s and ETA from it against
	// SimDone/SimTotal.
	ElapsedMS int64 `json:"elapsed_ms"`

	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one shard's row in the status table.
type ShardStatus struct {
	Shard   int    `json:"shard"`
	RangeLo int    `json:"range_lo"`
	RangeHi int    `json:"range_hi"`
	State   string `json:"state"` // "pending" | "running" | "done"
	Runner  string `json:"runner,omitempty"`
	// Attempts counts leases so far (> 1 means the shard was reassigned
	// after a runner loss).
	Attempts       int   `json:"attempts"`
	DevicesDone    int   `json:"devices_done"`
	SimDoneMS      int64 `json:"sim_done_ms"`
	LastCheckpoint int   `json:"last_checkpoint"`
}

// Service is the coordinator's side of the conversation,
// transport-independent: one implementation (coord.Coordinator) sits
// behind every delivery mechanism. Calls that a retrying client may
// deliver twice are idempotent: a duplicate Submit of the identical
// job, a duplicate Complete from the runner that already completed the
// shard, and a duplicate Fail of an attempt already charged all return
// success rather than an error, so a lost acknowledgement costs a
// retry, never a divergence.
type Service interface {
	// Submit installs the job. A coordinator accepts exactly one;
	// re-submitting the identical job is an idempotent success.
	Submit(job fleet.Job) error
	// Claim leases the next shard to the named runner (ErrNoWork,
	// ErrDone when there is nothing to lease).
	Claim(runner string) (Task, error)
	// Heartbeat renews the runner's lease on beat.Shard and records
	// progress (ErrLeaseLost when the lease is gone).
	Heartbeat(runner string, beat Beat) error
	// Complete delivers a finished shard's partial report. Duplicates
	// from the completing runner are deduplicated.
	Complete(runner string, shard int, p *fleet.Partial) error
	// Fail reports a shard attempt that errored (as opposed to a runner
	// that silently vanished — those are caught by lease expiry). The
	// attempt key (Task.Attempt of the failing lease) deduplicates
	// retried deliveries against the shard's current lease.
	Fail(runner string, shard, attempt int, msg string) error
	// Status snapshots the run.
	Status() Status
	// Result returns the merged report's JSON once the job is done
	// (ErrNotDone before, the terminal error after a failure).
	Result(canonical bool) ([]byte, error)
}

// Conn is the runner's (client) side of a delivery mechanism: the same
// conversation, plus transport failures surfacing as ordinary errors
// and a Close. Status gains an error return for the same reason. Every
// call takes a context that cancels the in-flight request — a runner
// shutting down must not hang on a dead coordinator — and transport
// failures compose with Retry/Backoff for clients that want to ride
// them out.
type Conn interface {
	Submit(ctx context.Context, job fleet.Job) error
	Claim(ctx context.Context, runner string) (Task, error)
	Heartbeat(ctx context.Context, runner string, beat Beat) error
	Complete(ctx context.Context, runner string, shard int, p *fleet.Partial) error
	Fail(ctx context.Context, runner string, shard, attempt int, msg string) error
	Status(ctx context.Context) (Status, error)
	Result(ctx context.Context, canonical bool) ([]byte, error)
	Close() error
}
