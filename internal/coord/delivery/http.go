package delivery

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/fleet"
)

// The HTTP delivery mechanism: JSON over loopback or LAN. The server
// side adapts a Service into an http.Handler; the client side
// implements Conn against that handler. Sentinel outcomes travel as a
// machine-readable code in the error body (the HTTP status is chosen
// to match, but the code string is authoritative), so a runner's
// control flow is transport-independent.

// Wire paths of the conversation.
const (
	pathSubmit    = "/v1/submit"
	pathClaim     = "/v1/claim"
	pathHeartbeat = "/v1/heartbeat"
	pathComplete  = "/v1/complete"
	pathFail      = "/v1/fail"
	pathStatus    = "/v1/status"
	pathResult    = "/v1/result"
)

// httpError is the wire form of a non-2xx outcome.
type httpError struct {
	Code  string `json:"code,omitempty"`
	Error string `json:"error"`
}

// Sentinel ↔ wire-code mapping.
var errCodes = []struct {
	err    error
	code   string
	status int
}{
	{ErrNoWork, "no_work", http.StatusServiceUnavailable},
	{ErrDone, "done", http.StatusGone},
	{ErrLeaseLost, "lease_lost", http.StatusConflict},
	{ErrNotDone, "not_done", http.StatusNotFound},
}

func writeErr(w http.ResponseWriter, err error) {
	he := httpError{Error: err.Error()}
	status := http.StatusBadRequest
	for _, m := range errCodes {
		if err == m.err {
			he.Code, status = m.code, m.status
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(he)
}

// decodeErr maps a non-2xx response body back to its sentinel.
func decodeErr(status int, body []byte) error {
	var he httpError
	if json.Unmarshal(body, &he) == nil && he.Code != "" {
		for _, m := range errCodes {
			if he.Code == m.code {
				return m.err
			}
		}
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return fmt.Errorf("delivery: coordinator returned %d: %s", status, msg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// claimReq/completeReq are the request bodies that need more than a
// bare value.
type claimReq struct {
	Runner string `json:"runner"`
}
type heartbeatReq struct {
	Runner string `json:"runner"`
	Beat   Beat   `json:"beat"`
}
type completeReq struct {
	Runner  string          `json:"runner"`
	Shard   int             `json:"shard"`
	Partial json.RawMessage `json:"partial"`
}
type failReq struct {
	Runner  string `json:"runner"`
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt"`
	Msg     string `json:"msg"`
}

// Handler adapts a Service into the HTTP delivery mechanism's server
// side. Mount it on any mux or serve it directly.
func Handler(svc Service) http.Handler {
	mux := http.NewServeMux()
	post := func(path string, h func(w http.ResponseWriter, body []byte)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
			if err != nil {
				writeErr(w, fmt.Errorf("delivery: read request: %w", err))
				return
			}
			h(w, body)
		})
	}

	post(pathSubmit, func(w http.ResponseWriter, body []byte) {
		job, err := fleet.ParseJob(body)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := svc.Submit(job); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	post(pathClaim, func(w http.ResponseWriter, body []byte) {
		var req claimReq
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, fmt.Errorf("delivery: bad claim request: %w", err))
			return
		}
		task, err := svc.Claim(req.Runner)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, task)
	})
	post(pathHeartbeat, func(w http.ResponseWriter, body []byte) {
		var req heartbeatReq
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, fmt.Errorf("delivery: bad heartbeat request: %w", err))
			return
		}
		if err := svc.Heartbeat(req.Runner, req.Beat); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	post(pathComplete, func(w http.ResponseWriter, body []byte) {
		var req completeReq
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, fmt.Errorf("delivery: bad complete request: %w", err))
			return
		}
		p, err := fleet.ParsePartial(req.Partial)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := svc.Complete(req.Runner, req.Shard, p); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	post(pathFail, func(w http.ResponseWriter, body []byte) {
		var req failReq
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, fmt.Errorf("delivery: bad fail request: %w", err))
			return
		}
		if err := svc.Fail(req.Runner, req.Shard, req.Attempt, req.Msg); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc(pathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Status())
	})
	mux.HandleFunc(pathResult, func(w http.ResponseWriter, r *http.Request) {
		b, err := svc.Result(r.URL.Query().Get("canonical") == "1")
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	return mux
}

// httpConn is the client side of the HTTP mechanism.
type httpConn struct {
	base string
	hc   *http.Client
}

// DialHTTP returns a Conn speaking to the coordinator at base (e.g.
// "http://127.0.0.1:9090"). No connection is made until the first
// call.
func DialHTTP(base string) Conn {
	return &httpConn{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// post sends v and decodes the response into out (ignored when nil).
// The request is built on ctx, so cancellation aborts it in flight —
// a runner shutting down does not wait out the 30 s client timeout
// against a dead coordinator.
func (c *httpConn) post(ctx context.Context, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp.StatusCode, respBody)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(respBody, out)
}

func (c *httpConn) get(ctx context.Context, path string, out *[]byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp.StatusCode, body)
	}
	*out = body
	return nil
}

func (c *httpConn) Submit(ctx context.Context, job fleet.Job) error {
	return c.post(ctx, pathSubmit, job, nil)
}

func (c *httpConn) Claim(ctx context.Context, runner string) (Task, error) {
	var task Task
	if err := c.post(ctx, pathClaim, claimReq{Runner: runner}, &task); err != nil {
		return Task{}, err
	}
	return task, nil
}

func (c *httpConn) Heartbeat(ctx context.Context, runner string, beat Beat) error {
	return c.post(ctx, pathHeartbeat, heartbeatReq{Runner: runner, Beat: beat}, nil)
}

func (c *httpConn) Complete(ctx context.Context, runner string, shard int, p *fleet.Partial) error {
	b, err := p.JSON()
	if err != nil {
		return err
	}
	return c.post(ctx, pathComplete, completeReq{Runner: runner, Shard: shard, Partial: b}, nil)
}

func (c *httpConn) Fail(ctx context.Context, runner string, shard, attempt int, msg string) error {
	return c.post(ctx, pathFail, failReq{Runner: runner, Shard: shard, Attempt: attempt, Msg: msg}, nil)
}

func (c *httpConn) Status(ctx context.Context) (Status, error) {
	var body []byte
	if err := c.get(ctx, pathStatus, &body); err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

func (c *httpConn) Result(ctx context.Context, canonical bool) ([]byte, error) {
	path := pathResult
	if canonical {
		path += "?canonical=1"
	}
	var body []byte
	if err := c.get(ctx, path, &body); err != nil {
		return nil, err
	}
	return body, nil
}

func (c *httpConn) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
