package delivery

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/units"
)

// stubService returns canned sentinels so transport mapping can be
// tested without a coordinator.
type stubService struct {
	submitted *fleet.Job
	task      Task
	claimErr  error
	beats     []Beat
	completed []*fleet.Partial
	failures  []string
	status    Status
	result    []byte
	resultErr error
}

func (s *stubService) Submit(job fleet.Job) error {
	s.submitted = &job
	return nil
}
func (s *stubService) Claim(runner string) (Task, error) { return s.task, s.claimErr }
func (s *stubService) Heartbeat(runner string, beat Beat) error {
	s.beats = append(s.beats, beat)
	return nil
}
func (s *stubService) Complete(runner string, shard int, p *fleet.Partial) error {
	s.completed = append(s.completed, p)
	return nil
}
func (s *stubService) Fail(runner string, shard int, msg string) error {
	s.failures = append(s.failures, msg)
	return nil
}
func (s *stubService) Status() Status                        { return s.status }
func (s *stubService) Result(canonical bool) ([]byte, error) { return s.result, s.resultErr }

// registryJob builds a wire job the way a remote submitter would:
// exported fields only, scenario by registry name. (NewJob would also
// capture the scenario value in-process, which breaks the == checks
// below — a round-tripped job deliberately loses that override.)
func registryJob(t *testing.T) fleet.Job {
	t.Helper()
	job := fleet.Job{
		Scenario:   "poller",
		Devices:    8,
		Seed:       7,
		DurationMS: int64(units.Hour),
		Shards:     2,
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	return job
}

// namedScenario is a non-registry workload: legal in-process, but with
// no registry name to resolve it by on the far side of a wire.
type namedScenario struct{ fleet.Scenario }

func (namedScenario) Name() string { return "not-in-the-registry" }

// TestInprocDeliversByValue: the in-process mechanism must behave like
// a wire, not like a function call — a job referencing a non-registry
// scenario has to fail through it exactly as it would over HTTP.
func TestInprocDeliversByValue(t *testing.T) {
	custom := namedScenario{fleet.Scenarios()["idle"]}
	job, err := fleet.NewJob(fleet.Config{
		Devices:  4,
		Seed:     1,
		Duration: units.Hour,
		Scenario: custom,
	}, 1)
	if err != nil {
		t.Fatal(err) // NewJob captures the override; in-process it is valid
	}

	svc := &stubService{}
	tr := ServeInproc(svc)
	defer tr.Close()
	err = tr.Conn().Submit(job)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("non-registry job crossed the in-process wire: %v", err)
	}
	if svc.submitted != nil {
		t.Fatal("service saw a job that should have died in serialization")
	}
}

// TestInprocRoundTrip: every message type survives the in-process
// mechanism's JSON round-trip intact.
func TestInprocRoundTrip(t *testing.T) {
	job := registryJob(t)
	svc := &stubService{
		task: Task{Job: job, Shard: 1, Resume: true, Attempt: 2, HeartbeatMS: 250},
		status: Status{
			Submitted: true, Devices: 8, DevicesDone: 3,
			Shards: []ShardStatus{{Shard: 0, State: "running", Runner: "r", LastCheckpoint: 4}},
		},
		result: []byte(`{"ok":true}`),
	}
	tr := ServeInproc(svc)
	defer tr.Close()
	conn := tr.Conn()

	if err := conn.Submit(job); err != nil {
		t.Fatal(err)
	}
	if svc.submitted == nil || *svc.submitted != job {
		t.Fatalf("submit mangled the job: %+v", svc.submitted)
	}
	task, err := conn.Claim("r")
	if err != nil {
		t.Fatal(err)
	}
	if task != svc.task {
		t.Fatalf("claim mangled the task: %+v vs %+v", task, svc.task)
	}
	beat := Beat{Shard: 1, DevicesDone: 3, SimDoneMS: 9000, LastCheckpoint: 0}
	if err := conn.Heartbeat("r", beat); err != nil {
		t.Fatal(err)
	}
	if len(svc.beats) != 1 || svc.beats[0] != beat {
		t.Fatalf("heartbeat mangled the beat: %+v", svc.beats)
	}
	if err := conn.Fail("r", 1, "boom"); err != nil {
		t.Fatal(err)
	}
	if len(svc.failures) != 1 || svc.failures[0] != "boom" {
		t.Fatalf("fail mangled the message: %+v", svc.failures)
	}
	st, err := conn.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.DevicesDone != 3 || len(st.Shards) != 1 || st.Shards[0].LastCheckpoint != 4 {
		t.Fatalf("status mangled: %+v", st)
	}
	b, err := conn.Result(false)
	if err != nil || string(b) != `{"ok":true}` {
		t.Fatalf("result mangled: %s, %v", b, err)
	}
}

// TestInprocPartialRoundTrip: a real shard partial survives Complete's
// parse gate and merges back into the exact report.
func TestInprocPartialRoundTrip(t *testing.T) {
	job := registryJob(t)
	cfg, err := job.ShardConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	part, err := fleet.RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := &stubService{}
	tr := ServeInproc(svc)
	defer tr.Close()
	if err := tr.Conn().Complete("r", 0, part); err != nil {
		t.Fatal(err)
	}
	if len(svc.completed) != 1 {
		t.Fatal("partial not delivered")
	}
	a, _ := part.JSON()
	b, _ := svc.completed[0].JSON()
	if string(a) != string(b) {
		t.Fatalf("partial mangled in delivery:\n%s\nvs\n%s", a, b)
	}
}

// TestInprocClosed: connections of a closed transport fail with
// ErrClosed instead of hanging.
func TestInprocClosed(t *testing.T) {
	tr := ServeInproc(&stubService{})
	conn := tr.Conn()
	tr.Close()
	if _, err := conn.Claim("r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("claim on closed transport: got %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestSentinelWireCodes: every sentinel must survive the HTTP error
// mapping in both directions (unit-level, no server).
func TestSentinelWireCodes(t *testing.T) {
	for _, sentinel := range []error{ErrNoWork, ErrDone, ErrLeaseLost, ErrNotDone} {
		var code string
		var status int
		for _, m := range errCodes {
			if m.err == sentinel {
				code, status = m.code, m.status
			}
		}
		if code == "" {
			t.Fatalf("%v has no wire code", sentinel)
		}
		body := []byte(`{"code":"` + code + `","error":"x"}`)
		if got := decodeErr(status, body); got != sentinel {
			t.Fatalf("code %q decoded to %v, want %v", code, got, sentinel)
		}
	}
	if err := decodeErr(500, []byte("something broke")); err == nil ||
		!strings.Contains(err.Error(), "something broke") {
		t.Fatalf("plain error lost its text: %v", err)
	}
}
