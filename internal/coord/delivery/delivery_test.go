package delivery

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/units"
)

// stubService returns canned sentinels so transport mapping can be
// tested without a coordinator.
type stubService struct {
	submitted *fleet.Job
	task      Task
	claimErr  error
	beats     []Beat
	completed []*fleet.Partial
	failures  []string
	failedAt  []int
	status    Status
	result    []byte
	resultErr error
}

func (s *stubService) Submit(job fleet.Job) error {
	s.submitted = &job
	return nil
}
func (s *stubService) Claim(runner string) (Task, error) { return s.task, s.claimErr }
func (s *stubService) Heartbeat(runner string, beat Beat) error {
	s.beats = append(s.beats, beat)
	return nil
}
func (s *stubService) Complete(runner string, shard int, p *fleet.Partial) error {
	s.completed = append(s.completed, p)
	return nil
}
func (s *stubService) Fail(runner string, shard, attempt int, msg string) error {
	s.failures = append(s.failures, msg)
	s.failedAt = append(s.failedAt, attempt)
	return nil
}
func (s *stubService) Status() Status                        { return s.status }
func (s *stubService) Result(canonical bool) ([]byte, error) { return s.result, s.resultErr }

// registryJob builds a wire job the way a remote submitter would:
// exported fields only, scenario by registry name. (NewJob would also
// capture the scenario value in-process, which breaks the == checks
// below — a round-tripped job deliberately loses that override.)
func registryJob(t *testing.T) fleet.Job {
	t.Helper()
	job := fleet.Job{
		Scenario:   "poller",
		Devices:    8,
		Seed:       7,
		DurationMS: int64(units.Hour),
		Shards:     2,
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	return job
}

// namedScenario is a non-registry workload: legal in-process, but with
// no registry name to resolve it by on the far side of a wire.
type namedScenario struct{ fleet.Scenario }

func (namedScenario) Name() string { return "not-in-the-registry" }

// TestInprocDeliversByValue: the in-process mechanism must behave like
// a wire, not like a function call — a job referencing a non-registry
// scenario has to fail through it exactly as it would over HTTP.
func TestInprocDeliversByValue(t *testing.T) {
	custom := namedScenario{fleet.Scenarios()["idle"]}
	job, err := fleet.NewJob(fleet.Config{
		Devices:  4,
		Seed:     1,
		Duration: units.Hour,
		Scenario: custom,
	}, 1)
	if err != nil {
		t.Fatal(err) // NewJob captures the override; in-process it is valid
	}

	svc := &stubService{}
	tr := ServeInproc(svc)
	defer tr.Close()
	err = tr.Conn().Submit(context.Background(), job)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("non-registry job crossed the in-process wire: %v", err)
	}
	if svc.submitted != nil {
		t.Fatal("service saw a job that should have died in serialization")
	}
}

// TestInprocRoundTrip: every message type survives the in-process
// mechanism's JSON round-trip intact.
func TestInprocRoundTrip(t *testing.T) {
	ctx := context.Background()
	job := registryJob(t)
	svc := &stubService{
		task: Task{Job: job, Shard: 1, Resume: true, Attempt: 2, HeartbeatMS: 250},
		status: Status{
			Submitted: true, Devices: 8, DevicesDone: 3,
			Shards: []ShardStatus{{Shard: 0, State: "running", Runner: "r", LastCheckpoint: 4}},
		},
		result: []byte(`{"ok":true}`),
	}
	tr := ServeInproc(svc)
	defer tr.Close()
	conn := tr.Conn()

	if err := conn.Submit(ctx, job); err != nil {
		t.Fatal(err)
	}
	if svc.submitted == nil || *svc.submitted != job {
		t.Fatalf("submit mangled the job: %+v", svc.submitted)
	}
	task, err := conn.Claim(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if task != svc.task {
		t.Fatalf("claim mangled the task: %+v vs %+v", task, svc.task)
	}
	beat := Beat{Shard: 1, DevicesDone: 3, SimDoneMS: 9000, LastCheckpoint: 0}
	if err := conn.Heartbeat(ctx, "r", beat); err != nil {
		t.Fatal(err)
	}
	if len(svc.beats) != 1 || svc.beats[0] != beat {
		t.Fatalf("heartbeat mangled the beat: %+v", svc.beats)
	}
	if err := conn.Fail(ctx, "r", 1, 2, "boom"); err != nil {
		t.Fatal(err)
	}
	if len(svc.failures) != 1 || svc.failures[0] != "boom" || svc.failedAt[0] != 2 {
		t.Fatalf("fail mangled the message: %+v at %+v", svc.failures, svc.failedAt)
	}
	st, err := conn.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DevicesDone != 3 || len(st.Shards) != 1 || st.Shards[0].LastCheckpoint != 4 {
		t.Fatalf("status mangled: %+v", st)
	}
	b, err := conn.Result(ctx, false)
	if err != nil || string(b) != `{"ok":true}` {
		t.Fatalf("result mangled: %s, %v", b, err)
	}
}

// TestInprocPartialRoundTrip: a real shard partial survives Complete's
// parse gate and merges back into the exact report.
func TestInprocPartialRoundTrip(t *testing.T) {
	job := registryJob(t)
	cfg, err := job.ShardConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	part, err := fleet.RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := &stubService{}
	tr := ServeInproc(svc)
	defer tr.Close()
	if err := tr.Conn().Complete(context.Background(), "r", 0, part); err != nil {
		t.Fatal(err)
	}
	if len(svc.completed) != 1 {
		t.Fatal("partial not delivered")
	}
	a, _ := part.JSON()
	b, _ := svc.completed[0].JSON()
	if string(a) != string(b) {
		t.Fatalf("partial mangled in delivery:\n%s\nvs\n%s", a, b)
	}
}

// TestInprocClosed: connections of a closed transport fail with
// ErrClosed instead of hanging.
func TestInprocClosed(t *testing.T) {
	tr := ServeInproc(&stubService{})
	conn := tr.Conn()
	tr.Close()
	if _, err := conn.Claim(context.Background(), "r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("claim on closed transport: got %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestSentinelWireCodes: every sentinel must survive the HTTP error
// mapping in both directions (unit-level, no server).
func TestSentinelWireCodes(t *testing.T) {
	for _, sentinel := range []error{ErrNoWork, ErrDone, ErrLeaseLost, ErrNotDone} {
		var code string
		var status int
		for _, m := range errCodes {
			if m.err == sentinel {
				code, status = m.code, m.status
			}
		}
		if code == "" {
			t.Fatalf("%v has no wire code", sentinel)
		}
		body := []byte(`{"code":"` + code + `","error":"x"}`)
		if got := decodeErr(status, body); got != sentinel {
			t.Fatalf("code %q decoded to %v, want %v", code, got, sentinel)
		}
	}
	if err := decodeErr(500, []byte("something broke")); err == nil ||
		!strings.Contains(err.Error(), "something broke") {
		t.Fatalf("plain error lost its text: %v", err)
	}
}

// TestBackoffDelaySchedule: the delay schedule is deterministic in
// (Seed, attempt), capped, exponential without jitter, and seed-
// sensitive with it.
func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 42}
	for i := 1; i <= 12; i++ {
		if b.Delay(i) != b.Delay(i) {
			t.Fatalf("delay %d is not deterministic", i)
		}
		if max := time.Duration(float64(80*time.Millisecond) * 1.2); b.Delay(i) > max {
			t.Fatalf("delay %d = %v exceeds jittered cap %v", i, b.Delay(i), max)
		}
	}
	nz := Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 100, 100}
	for i, w := range want {
		if got := nz.Delay(i + 1); got != w*time.Millisecond {
			t.Fatalf("zero-jitter delay %d = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	s1, s2 := Backoff{Seed: 1}, Backoff{Seed: 2}
	same := true
	for i := 1; i <= 8; i++ {
		if s1.Delay(i) != s2.Delay(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestRetryOutcomes: protocol answers end the loop immediately,
// transport errors are retried to MaxAttempts, success stops early,
// and a dead context always wins.
func TestRetryOutcomes(t *testing.T) {
	ctx := context.Background()
	fast := Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Jitter: -1}

	calls := 0
	err := Retry(ctx, fast, func(context.Context) error { calls++; return ErrLeaseLost })
	if !errors.Is(err, ErrLeaseLost) || calls != 1 {
		t.Fatalf("protocol outcome: err %v after %d calls", err, calls)
	}

	boom := errors.New("boom")
	calls = 0
	bounded := fast
	bounded.MaxAttempts = 3
	if err := Retry(ctx, bounded, func(context.Context) error { calls++; return boom }); !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("bounded retry: err %v after %d calls, want boom after 3", err, calls)
	}

	calls = 0
	err = Retry(ctx, bounded, func(context.Context) error {
		calls++
		if calls < 3 {
			return boom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("eventual success: err %v after %d calls", err, calls)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	slow := Backoff{Base: time.Hour}
	if err := Retry(cctx, slow, func(context.Context) error { return boom }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: err %v, want Canceled", err)
	}
}

// TestHTTPContextCancelsInFlight: cancelling the caller's context must
// abort an in-flight HTTP request promptly — a runner shutting down
// cannot afford to wait out the 30 s client timeout against a hung
// coordinator.
func TestHTTPContextCancelsInFlight(t *testing.T) {
	entered := make(chan struct{}, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-r.Context().Done() // hang until the client goes away
	}))
	defer srv.Close()
	conn := DialHTTP(srv.URL)
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := conn.Status(ctx)
		done <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("aborted call returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the in-flight request")
	}
}
