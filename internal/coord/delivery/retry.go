package delivery

import (
	"context"
	"errors"
	"time"
)

// The transport retry policy shared by every component that talks
// through a Conn: runners riding out a coordinator restart, the
// submitter re-delivering a partial whose acknowledgement was lost, the
// CLI polling a coordinator that is mid-recovery. The policy is capped
// jittered exponential backoff with a per-attempt deadline; only
// transport failures are retried — protocol outcomes (the sentinels
// above) are answers, not failures, and context cancellation always
// wins. Retried calls are safe because the coordinator deduplicates
// them server-side: Submit of an identical job, Complete of a shard the
// same runner already completed, and Fail of an attempt already charged
// all return success instead of an error.

// Backoff is a capped, jittered exponential backoff policy. The zero
// value gets usable defaults; the jitter is deterministic in
// (Seed, attempt), so a seeded policy produces a reproducible delay
// schedule — the chaos suite depends on it.
type Backoff struct {
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Cap bounds every delay (default 5s).
	Cap time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter spreads each delay to ±Jitter of its nominal value
	// (default 0.2), so a fleet of runners does not hammer a recovering
	// coordinator in lockstep. Set it negative for exactly zero jitter.
	Jitter float64
	// Seed keys the deterministic jitter stream. Runners derive it from
	// their ID so each runner jitters differently but reproducibly.
	Seed int64
	// CallTimeout is the per-attempt deadline Retry imposes on each call
	// (default 30s); the per-call context cancels the in-flight request.
	CallTimeout time.Duration
	// MaxAttempts bounds Retry (0 = until the context ends). Best-effort
	// deliveries (a runner's Fail report, covered by lease expiry
	// anyway) use a small bound instead of retrying forever.
	MaxAttempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 5 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.CallTimeout <= 0 {
		b.CallTimeout = 30 * time.Second
	}
	return b
}

// splitmix64 is the jitter hash: a full-avalanche mix of (Seed, n).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the attempt-th (1-based) retry delay:
// min(Cap, Base·Factor^(attempt-1)), jittered to ±Jitter.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Cap) {
			break
		}
	}
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		u := splitmix64(uint64(b.Seed)<<20 ^ uint64(attempt))
		frac := float64(u>>11) / (1 << 53) // [0,1)
		d *= 1 - b.Jitter + 2*b.Jitter*frac
	}
	if d < float64(time.Millisecond) {
		d = float64(time.Millisecond)
	}
	return time.Duration(d)
}

// IsProtocol reports whether err is one of the conversation's sentinel
// outcomes — an answer from the coordinator, as opposed to a transport
// failure worth retrying.
func IsProtocol(err error) bool {
	return errors.Is(err, ErrNoWork) || errors.Is(err, ErrDone) ||
		errors.Is(err, ErrLeaseLost) || errors.Is(err, ErrNotDone)
}

// Retry runs call until it succeeds, returns a protocol outcome, the
// context ends, or MaxAttempts is exhausted. Each attempt runs under a
// CallTimeout deadline derived from ctx, so a hung request cannot stall
// the retry loop past its slice.
func Retry(ctx context.Context, b Backoff, call func(ctx context.Context) error) error {
	b = b.withDefaults()
	for attempt := 1; ; attempt++ {
		cctx, cancel := context.WithTimeout(ctx, b.CallTimeout)
		err := call(cctx)
		cancel()
		if err == nil || IsProtocol(err) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			return err
		}
		t := time.NewTimer(b.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
