package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/chaos"
	"repro/internal/coord/delivery"
	"repro/internal/fleet"
	"repro/internal/units"
)

// chaosJob builds the suite's workload: heterogeneous enough to make
// divergence visible, small enough to run many times under -race.
func chaosJob(t *testing.T, shards int, dir string) fleet.Job {
	t.Helper()
	job, err := fleet.NewJob(fleet.Config{
		Devices:       8,
		Seed:          13,
		Duration:      2 * 24 * units.Hour,
		Scenario:      fleet.Scenarios()["weekinthelife"],
		CheckpointDir: dir,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// reference is the clean single-process run every chaotic run must
// reproduce byte for byte (checkpointed, like the job, because epoch
// boundaries shape the engine diagnostics).
func reference(t *testing.T, job fleet.Job) (full, canonical []byte) {
	t.Helper()
	ref := fleet.Job{
		Scenario: job.Scenario, Devices: job.Devices, Seed: job.Seed,
		DurationMS: job.DurationMS, Shards: 1,
		BatteryUJ: job.BatteryUJ, LifeResolutionMS: job.LifeResolutionMS,
		EngineMode: job.EngineMode, SettleMode: job.SettleMode,
		NetdSettleMode: job.NetdSettleMode, DenseWatch: job.DenseWatch,
		CheckpointDir: t.TempDir(), CheckpointEveryMS: job.CheckpointEveryMS,
	}
	cfg, err := ref.ShardConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardCount = 0
	cfg.Workers = 2
	rep, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full, err = rep.JSON(false); err != nil {
		t.Fatal(err)
	}
	if canonical, err = rep.CanonicalJSON(false); err != nil {
		t.Fatal(err)
	}
	return full, canonical
}

// fastBackoff keeps retries snappy so injected faults cost
// milliseconds, not test minutes.
func fastBackoff(seed int64) delivery.Backoff {
	return delivery.Backoff{
		Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond,
		Seed: seed, CallTimeout: 10 * time.Second,
	}
}

// runChaotic executes job on a coordinator behind tr with two runners
// whose connections are wrapped by plans, and returns the merged
// report bytes.
func runChaotic(t *testing.T, co *coord.Coordinator, tr *delivery.Inproc, plans []chaos.Plan) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, plan := range plans {
		r := &coord.Runner{
			ID:      []string{"chaos-a", "chaos-b"}[i%2],
			Conn:    chaos.Wrap(tr.Conn(), plan),
			Workers: 2,
			Poll:    5 * time.Millisecond,
			Backoff: fastBackoff(int64(i) + 100),
			Logf:    t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(ctx)
		}()
	}
	if _, err := co.Wait(ctx); err != nil {
		t.Fatalf("job did not survive the fault schedule: %v", err)
	}
	cancel()
	wg.Wait()
}

// TestChaosSchedulesPreserveBytes is the e2e chaos suite: the full
// coordinator/runner conversation under several seeded message-fault
// schedules — request drops, lost replies, duplicated deliveries,
// delays, partition windows — must still merge to the exact bytes of
// the clean single-process run, full and canonical JSON alike.
func TestChaosSchedulesPreserveBytes(t *testing.T) {
	schedules := []struct {
		name  string
		plans []chaos.Plan
	}{
		{"drop-heavy", []chaos.Plan{
			{Seed: 101, Drop: 0.15, DropReply: 0.10},
			{Seed: 102, Drop: 0.15, DropReply: 0.10},
		}},
		{"dup-and-delay", []chaos.Plan{
			{Seed: 201, Dup: 0.20, Delay: 2 * time.Millisecond, DropReply: 0.05},
			{Seed: 202, Dup: 0.20, Delay: 2 * time.Millisecond, DropReply: 0.05},
		}},
		{"partitions", []chaos.Plan{
			{Seed: 301, Drop: 0.05, Partitions: []chaos.Window{{From: 20, To: 45}, {From: 90, To: 110}}},
			{Seed: 302, Drop: 0.05, Partitions: []chaos.Window{{From: 40, To: 70}}},
		}},
	}
	for _, tc := range schedules {
		t.Run(tc.name, func(t *testing.T) {
			job := chaosJob(t, 4, t.TempDir())
			wantFull, wantCanon := reference(t, job)

			// A generous lease: injected faults must never look like a
			// silent runner, or MaxAttempts turns the test flaky. The
			// attempt budget absorbs the orphan leases duplicated Claims
			// create.
			co := coord.New(coord.Options{
				Heartbeat: 50 * time.Millisecond, Lease: 5 * time.Second,
				MaxAttempts: 30, Logf: t.Logf,
			})
			defer co.Close()
			tr := delivery.ServeInproc(co)
			defer tr.Close()
			if err := tr.Conn().Submit(context.Background(), job); err != nil {
				t.Fatal(err)
			}
			runChaotic(t, co, tr, tc.plans)

			got, err := co.Result(false)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantFull) {
				t.Fatalf("full JSON diverged under %s schedule", tc.name)
			}
			gotC, err := co.Result(true)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotC, wantCanon) {
				t.Fatalf("canonical JSON diverged under %s schedule", tc.name)
			}
		})
	}
}

// TestCoordinatorKillRestart kills the coordinator twice mid-job —
// once before a call is delivered, once after (the journaled-but-
// unacknowledged case) — rebuilding each time via Recover over the
// journal, while message chaos runs on top. The runners must ride out
// both restarts through their backoff and the merged report must stay
// byte-identical.
func TestCoordinatorKillRestart(t *testing.T) {
	dir := t.TempDir()
	job := chaosJob(t, 4, dir)
	wantFull, wantCanon := reference(t, job)

	opts := coord.Options{
		Heartbeat: 50 * time.Millisecond, Lease: 5 * time.Second,
		MaxAttempts: 30, Logf: t.Logf,
	}
	rebuild := func(prev delivery.Service) delivery.Service {
		prev.(*coord.Coordinator).Close()
		c, err := coord.Recover(opts, dir)
		if err != nil {
			t.Errorf("recover after kill: %v", err)
			return prev
		}
		return c
	}
	rest := chaos.NewRestarter(coord.New(opts), rebuild, 15, 60)
	tr := delivery.ServeInproc(rest)
	defer tr.Close()
	if err := tr.Conn().Submit(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		r := &coord.Runner{
			ID:      []string{"kr-a", "kr-b"}[i],
			Conn:    chaos.Wrap(tr.Conn(), chaos.Plan{Seed: int64(401 + i), Drop: 0.05, DropReply: 0.05}),
			Workers: 2,
			Poll:    5 * time.Millisecond,
			Backoff: fastBackoff(int64(i) + 400),
			Logf:    t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(ctx)
		}()
	}

	// The coordinator identity changes across kills, so completion is
	// observed through the restarter, not one instance's Wait.
	for {
		if ctx.Err() != nil {
			t.Fatal("job did not finish within the deadline")
		}
		st := rest.Status()
		if st.Failed != "" {
			t.Fatalf("job failed under kill-restart: %s", st.Failed)
		}
		if st.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	if kills := rest.Kills(); kills != 2 {
		t.Fatalf("%d kills fired, want 2 — the job finished before the schedule ran", kills)
	}
	final := rest.Current().(*coord.Coordinator)
	defer final.Close()
	got, err := final.Result(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantFull) {
		t.Fatal("full JSON diverged after coordinator kill-restarts")
	}
	gotC, err := final.Result(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC, wantCanon) {
		t.Fatal("canonical JSON diverged after coordinator kill-restarts")
	}
}

// nopConn answers every probed call with nil; only the methods the
// determinism test exercises are implemented.
type nopConn struct{ delivery.Conn }

func (nopConn) Heartbeat(context.Context, string, delivery.Beat) error { return nil }

// TestChaosDeterminism: the fault schedule is a pure function of
// (Seed, call sequence) — two connections with the same plan misbehave
// identically, different seeds do not.
func TestChaosDeterminism(t *testing.T) {
	pattern := func(plan chaos.Plan) []bool {
		c := chaos.Wrap(nopConn{}, plan)
		var p []bool
		for i := 0; i < 300; i++ {
			err := c.Heartbeat(context.Background(), "r", delivery.Beat{})
			if err != nil && !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("call %d: %v is not ErrInjected", i, err)
			}
			p = append(p, err != nil)
		}
		return p
	}
	plan := chaos.Plan{Seed: 9, Drop: 0.2, DropReply: 0.1, Partitions: []chaos.Window{{From: 50, To: 60}}}
	a, b := pattern(plan), pattern(plan)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same plan, different fate", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults < 30 {
		t.Fatalf("only %d/300 faults injected: plan not biting", faults)
	}
	other := plan
	other.Seed = 10
	c := pattern(other)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}
