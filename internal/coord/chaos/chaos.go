// Package chaos is the cluster stack's deterministic fault-injection
// harness. It wraps a delivery.Conn with seeded message-level faults
// (drop, delayed delivery, duplication, partition windows) and a
// delivery.Service with scheduled coordinator kill-restart points, so
// an e2e test can run the full coordinator/runner conversation under a
// reproducible failure schedule and assert the one property the whole
// design promises: the merged report is byte-identical to the clean
// run's, no matter which messages were lost, duplicated, or delayed,
// and no matter when the coordinator was killed.
//
// Every decision is a pure function of (Plan.Seed, call sequence
// number), so a failing schedule replays exactly — there is no
// math/rand state and no wall-clock dependence anywhere in the
// harness.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// ErrInjected marks a fault this package injected. It deliberately is
// NOT one of the delivery sentinels: clients must treat it as a
// transport failure and retry, which is exactly the code path the
// harness exists to exercise.
var ErrInjected = errors.New("chaos: injected fault")

// Window is a half-open interval [From, To) of a connection's call
// sequence during which every call fails — a partition as seen from
// one client.
type Window struct {
	From, To int
}

// Plan is a seeded fault schedule for one connection. Probabilities
// are per call, in [0,1]; zero values inject nothing.
type Plan struct {
	// Seed keys every decision; two conns with the same plan misbehave
	// identically.
	Seed int64
	// Drop is P(request lost before the coordinator sees it).
	Drop float64
	// DropReply is P(request delivered, reply lost) — the ambiguous
	// failure that forces server-side deduplication.
	DropReply float64
	// Dup is P(request delivered twice) — a retransmission racing its
	// original.
	Dup float64
	// Delay bounds a deterministic per-call delivery delay (0 = none).
	Delay time.Duration
	// Partitions are call-sequence windows during which every call
	// fails.
	Partitions []Window
}

// splitmix64 is the decision hash (same mix the delivery backoff
// jitter uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Conn wraps an inner delivery.Conn with the plan's faults.
type Conn struct {
	inner delivery.Conn
	plan  Plan
	seq   atomic.Uint64
}

// Wrap returns a Conn injecting plan's faults around inner.
func Wrap(inner delivery.Conn, plan Plan) *Conn {
	return &Conn{inner: inner, plan: plan}
}

// roll returns the deterministic uniform [0,1) draw for (seq, salt).
func (c *Conn) roll(seq, salt uint64) float64 {
	u := splitmix64(uint64(c.plan.Seed)<<16 ^ seq<<4 ^ salt)
	return float64(u>>11) / (1 << 53)
}

// step runs one faulted call. Order mirrors a real network: partition
// first, then delivery delay, then request loss, then duplication,
// then reply loss.
func (c *Conn) step(ctx context.Context, call func(context.Context) error) error {
	seq := c.seq.Add(1)
	for _, w := range c.plan.Partitions {
		if int(seq) >= w.From && int(seq) < w.To {
			return fmt.Errorf("%w: partitioned (call %d in window [%d,%d))", ErrInjected, seq, w.From, w.To)
		}
	}
	if c.plan.Delay > 0 {
		d := time.Duration(float64(c.plan.Delay) * c.roll(seq, 1))
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	if c.plan.Drop > 0 && c.roll(seq, 2) < c.plan.Drop {
		return fmt.Errorf("%w: request dropped (call %d)", ErrInjected, seq)
	}
	if c.plan.Dup > 0 && c.roll(seq, 3) < c.plan.Dup {
		// The duplicate delivers first and its outcome is discarded —
		// the client only ever sees the second delivery's answer.
		call(ctx)
	}
	err := call(ctx)
	if c.plan.DropReply > 0 && c.roll(seq, 4) < c.plan.DropReply {
		return fmt.Errorf("%w: reply dropped (call %d; the coordinator saw the request)", ErrInjected, seq)
	}
	return err
}

func (c *Conn) Submit(ctx context.Context, job fleet.Job) error {
	return c.step(ctx, func(ctx context.Context) error { return c.inner.Submit(ctx, job) })
}

func (c *Conn) Claim(ctx context.Context, runner string) (delivery.Task, error) {
	var task delivery.Task
	err := c.step(ctx, func(ctx context.Context) error {
		var e error
		task, e = c.inner.Claim(ctx, runner)
		return e
	})
	if err != nil {
		return delivery.Task{}, err
	}
	return task, nil
}

func (c *Conn) Heartbeat(ctx context.Context, runner string, beat delivery.Beat) error {
	return c.step(ctx, func(ctx context.Context) error { return c.inner.Heartbeat(ctx, runner, beat) })
}

func (c *Conn) Complete(ctx context.Context, runner string, shard int, p *fleet.Partial) error {
	return c.step(ctx, func(ctx context.Context) error { return c.inner.Complete(ctx, runner, shard, p) })
}

func (c *Conn) Fail(ctx context.Context, runner string, shard, attempt int, msg string) error {
	return c.step(ctx, func(ctx context.Context) error { return c.inner.Fail(ctx, runner, shard, attempt, msg) })
}

func (c *Conn) Status(ctx context.Context) (delivery.Status, error) {
	var st delivery.Status
	err := c.step(ctx, func(ctx context.Context) error {
		var e error
		st, e = c.inner.Status(ctx)
		return e
	})
	if err != nil {
		return delivery.Status{}, err
	}
	return st, nil
}

func (c *Conn) Result(ctx context.Context, canonical bool) ([]byte, error) {
	var b []byte
	err := c.step(ctx, func(ctx context.Context) error {
		var e error
		b, e = c.inner.Result(ctx, canonical)
		return e
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (c *Conn) Close() error { return c.inner.Close() }

var _ delivery.Conn = (*Conn)(nil)

// Restarter wraps a delivery.Service with scheduled coordinator
// kill-restart points: at each scheduled call count the current
// service "crashes" — odd kills before the call is delivered, even
// kills after (the reply is lost either way) — and rebuild replaces it,
// typically with coord.Recover over the crashed coordinator's journal.
// All calls are serialized through one mutex, so the kill schedule is
// deterministic for a deterministic call sequence and exactly
// reproducible under -race.
type Restarter struct {
	mu      sync.Mutex
	inner   delivery.Service
	rebuild func(prev delivery.Service) delivery.Service
	killAt  []int
	calls   int
	kills   int
}

// NewRestarter schedules kills at the given ascending call counts.
func NewRestarter(initial delivery.Service, rebuild func(prev delivery.Service) delivery.Service, killAt ...int) *Restarter {
	return &Restarter{inner: initial, rebuild: rebuild, killAt: killAt}
}

// Current returns the live service instance (for test assertions that
// must not advance the kill schedule).
func (r *Restarter) Current() delivery.Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner
}

// Kills reports how many scheduled kills have fired.
func (r *Restarter) Kills() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kills
}

func (r *Restarter) call(f func(svc delivery.Service) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if len(r.killAt) > 0 && r.calls >= r.killAt[0] {
		r.killAt = r.killAt[1:]
		r.kills++
		if r.kills%2 == 0 {
			// Crash after delivery: the coordinator processed (and
			// journaled) the call, but the reply died with it.
			f(r.inner)
		}
		r.inner = r.rebuild(r.inner)
		return fmt.Errorf("%w: coordinator killed (call %d, kill %d)", ErrInjected, r.calls, r.kills)
	}
	return f(r.inner)
}

func (r *Restarter) Submit(job fleet.Job) error {
	return r.call(func(svc delivery.Service) error { return svc.Submit(job) })
}

func (r *Restarter) Claim(runner string) (delivery.Task, error) {
	var task delivery.Task
	err := r.call(func(svc delivery.Service) error {
		var e error
		task, e = svc.Claim(runner)
		return e
	})
	if err != nil {
		return delivery.Task{}, err
	}
	return task, nil
}

func (r *Restarter) Heartbeat(runner string, beat delivery.Beat) error {
	return r.call(func(svc delivery.Service) error { return svc.Heartbeat(runner, beat) })
}

func (r *Restarter) Complete(runner string, shard int, p *fleet.Partial) error {
	return r.call(func(svc delivery.Service) error { return svc.Complete(runner, shard, p) })
}

func (r *Restarter) Fail(runner string, shard, attempt int, msg string) error {
	return r.call(func(svc delivery.Service) error { return svc.Fail(runner, shard, attempt, msg) })
}

func (r *Restarter) Status() delivery.Status {
	var st delivery.Status
	r.call(func(svc delivery.Service) error {
		st = svc.Status()
		return nil
	})
	return st
}

func (r *Restarter) Result(canonical bool) ([]byte, error) {
	var b []byte
	err := r.call(func(svc delivery.Service) error {
		var e error
		b, e = svc.Result(canonical)
		return e
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

var _ delivery.Service = (*Restarter)(nil)

// Tear truncates the file at path to frac of its current size
// (flooring at one byte), simulating a write torn by a crash — the
// checkpoint-salvage and journal-recovery tests point it at epoch
// files and coordinator journals.
func Tear(path string, frac float64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	n := int64(float64(fi.Size()) * frac)
	if n < 1 {
		n = 1
	}
	if n >= fi.Size() {
		n = fi.Size() - 1
	}
	return os.Truncate(path, n)
}
