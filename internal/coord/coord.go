// Package coord turns the fleet's shard layer into a small
// fleet-as-a-service: a Coordinator owns a submitted Job's shard
// queue and leases shards to runners over any delivery mechanism
// (work-stealing: an idle runner claims the next pending shard, so a
// fast machine simply ends up executing more shards); a Runner is the
// claim → simulate → stream-partials-back loop. Fault tolerance is
// reconfiguration, not consensus: a runner that stops heartbeating
// forfeits its lease, and the shard is reassigned with Resume set, so
// the next runner continues from the newest complete epoch checkpoint
// — losing a runner costs at most one checkpoint interval of
// re-simulation, and because resumed shard partials are byte-identical
// to uninterrupted ones, the merged report is too.
//
// The coordinator itself is crash-safe when the job carries a
// checkpoint dir: every accepted transition is journaled there
// (write-ahead, see journal.go) and Recover replays the journal into
// an identical coordinator, so a kill -9 mid-job costs a restart plus
// the runners' retry backoff, never the job.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
	"repro/internal/units"
)

// Options tunes a Coordinator. The zero value gets sane defaults.
type Options struct {
	// Lease is how long a claimed shard may go without a heartbeat
	// before it is forfeited and reassigned (default 4× Heartbeat).
	Lease time.Duration
	// Heartbeat is the beat cadence handed to runners (default 1s).
	Heartbeat time.Duration
	// MaxAttempts bounds leases per shard; exhausting it fails the job
	// terminally (default 3).
	MaxAttempts int
	// Now overrides the clock (tests drive lease expiry with it).
	Now func() time.Time
	// Logf, when set, receives one line per lease event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Lease <= 0 {
		o.Lease = 4 * o.Heartbeat
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// shardState is the coordinator's record of one shard of the plan.
type shardState struct {
	lo, hi  int
	state   string // "pending" | "running" | "done"
	runner  string
	expiry  time.Time
	attempt int
	// resume is set once a lease has been forfeited or failed: the next
	// assignment asks the runner to continue from epoch checkpoints.
	resume bool

	// completedBy / failedBy+failedAt deduplicate retried deliveries: a
	// runner whose Complete or Fail acknowledgement was lost re-sends
	// the identical message, and the duplicate must succeed silently
	// instead of surfacing ErrLeaseLost.
	completedBy string
	failedBy    string
	failedAt    int

	devicesDone    int
	simDoneMS      int64
	lastCheckpoint int

	partial *fleet.Partial
}

// Coordinator accepts one Job, leases its shards to runners, and
// merges the returned partials into the final report. It implements
// delivery.Service, so it sits unchanged behind every delivery
// mechanism.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	job      *fleet.Job
	jobJSON  []byte // the installed job's wire form (Submit idempotency key)
	jnl      *journal
	start    time.Time
	shards   []shardState
	remain   int // shards not yet done
	finished bool
	failed   error
	report   fleet.Report
	doneCh   chan struct{}
}

// New returns an idle coordinator awaiting a Submit.
func New(opts Options) *Coordinator {
	return &Coordinator{opts: opts.withDefaults(), doneCh: make(chan struct{})}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// installJob seeds the shard table for job. Caller holds c.mu.
func (c *Coordinator) installJob(job fleet.Job) {
	c.job = &job
	c.jobJSON, _ = json.Marshal(job)
	c.start = c.opts.Now()
	c.shards = make([]shardState, job.Shards)
	c.remain = job.Shards
	for i := range c.shards {
		lo, hi := job.ShardRange(i)
		c.shards[i] = shardState{lo: lo, hi: hi, state: "pending", lastCheckpoint: -1, failedAt: -1}
	}
	c.logf("coord: job submitted: %s, %d devices × %v, %d shards",
		job.Scenario, job.Devices, time.Duration(job.DurationMS)*time.Millisecond, job.Shards)
}

// Submit installs the job. A coordinator runs exactly one job;
// re-submitting the identical job is an idempotent success (a
// retrying submitter whose acknowledgement was lost must not error),
// while a different job is rejected. When the job carries a checkpoint
// dir, the journal is created there first — a journal from a finished
// previous job is discarded, an unfinished one refuses the Submit and
// points at `serve -recover`.
func (c *Coordinator) Submit(job fleet.Job) error {
	if err := job.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.job != nil {
		if b, err := json.Marshal(job); err == nil && bytes.Equal(b, c.jobJSON) {
			return nil
		}
		return fmt.Errorf("coord: a different job is already submitted")
	}
	if job.CheckpointDir != "" {
		if err := os.MkdirAll(job.CheckpointDir, 0o755); err != nil {
			return fmt.Errorf("coord: checkpoint dir: %w", err)
		}
		path := JournalPath(job.CheckpointDir)
		if _, err := os.Stat(path); err == nil {
			finished, ferr := journalFinished(c.opts, path)
			if ferr != nil {
				return ferr
			}
			if !finished {
				return fmt.Errorf("coord: %s holds an unfinished job; restart with 'serve -recover %s' to resume it, or remove the journal to abandon it",
					path, job.CheckpointDir)
			}
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("coord: discard finished journal: %w", err)
			}
		}
		jobJSON, err := json.Marshal(job)
		if err != nil {
			return fmt.Errorf("coord: marshal job: %w", err)
		}
		jnl, err := createJournal(path)
		if err != nil {
			return err
		}
		if err := jnl.append(jrec{kind: jrSubmit, job: jobJSON}, true); err != nil {
			jnl.close()
			return err
		}
		c.jnl = jnl
	}
	c.installJob(job)
	return nil
}

// journalFinished replays the journal at path on a scratch coordinator
// and reports whether its job ended (done or terminally failed). An
// unreadable journal is reported as unfinished-and-unremovable via the
// returned error.
func journalFinished(opts Options, path string) (bool, error) {
	recs, _, terr := readJournal(path)
	if len(recs) == 0 {
		return false, fmt.Errorf("coord: existing journal %s is unreadable (%v); remove it to start over", path, terr)
	}
	probe := opts
	probe.Logf = nil
	c, err := replayState(probe, recs)
	if err != nil {
		return false, fmt.Errorf("coord: existing journal %s does not replay (%v); remove it to start over", path, err)
	}
	return c.finished || c.failed != nil, nil
}

// fail ends the job terminally. Caller holds c.mu.
func (c *Coordinator) fail(err error) {
	if c.finished || c.failed != nil {
		return
	}
	c.failed = err
	c.logf("coord: job failed: %v", err)
	close(c.doneCh)
}

// expire forfeits leases whose runners stopped heartbeating. Caller
// holds c.mu. Expiries are not journaled: replay re-derives them from
// the recovered clock, giving every recovered lease one fresh lease
// interval to re-heartbeat before it is forfeited.
func (c *Coordinator) expire(now time.Time) {
	if c.job == nil || c.finished || c.failed != nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != "running" || !now.After(s.expiry) {
			continue
		}
		c.logf("coord: shard %d lease expired (runner %s, attempt %d)", i, s.runner, s.attempt)
		if s.attempt >= c.opts.MaxAttempts {
			c.fail(fmt.Errorf("coord: shard %d failed %d times (last runner %s lost)",
				i, s.attempt, s.runner))
			return
		}
		s.state, s.runner, s.resume = "pending", "", true
	}
}

// applyGrant leases shard to runner. attempt is the 0-based lease key
// (the shard's attempt count before this grant). Caller holds c.mu.
func (c *Coordinator) applyGrant(shard int, runner string, attempt int, resume bool, now time.Time) {
	s := &c.shards[shard]
	s.state, s.runner, s.resume = "running", runner, resume
	s.attempt = attempt + 1
	s.expiry = now.Add(c.opts.Lease)
	c.logf("coord: shard %d [%d,%d) leased to %s (attempt %d, resume %v)",
		shard, s.lo, s.hi, runner, s.attempt, s.resume)
}

// applyBeat records shard progress and renews the lease. Caller holds
// c.mu.
func (c *Coordinator) applyBeat(beat delivery.Beat, now time.Time) {
	s := &c.shards[beat.Shard]
	s.expiry = now.Add(c.opts.Lease)
	s.devicesDone = beat.DevicesDone
	s.simDoneMS = beat.SimDoneMS
	s.lastCheckpoint = beat.LastCheckpoint
}

// applyComplete marks shard done with p and merges the report when it
// was the last one. Caller holds c.mu.
func (c *Coordinator) applyComplete(shard int, runner string, p *fleet.Partial) {
	s := &c.shards[shard]
	s.state, s.runner, s.partial = "done", "", p
	s.completedBy = runner
	s.devicesDone = s.hi - s.lo
	s.simDoneMS = int64(units.Time(s.hi-s.lo) * c.job.Horizon())
	c.remain--
	c.logf("coord: shard %d completed by %s (%d shards left)", shard, runner, c.remain)
	if c.remain > 0 {
		return
	}
	parts := make([]*fleet.Partial, len(c.shards))
	for i := range c.shards {
		parts[i] = c.shards[i].partial
	}
	rep, err := c.job.Merge(parts)
	if err != nil {
		c.fail(err)
		return
	}
	c.report, c.finished = rep, true
	c.logf("coord: job done, report merged")
	close(c.doneCh)
}

// applyFail charges a failed attempt against shard and requeues it (or
// fails the job terminally). Caller holds c.mu.
func (c *Coordinator) applyFail(shard int, runner string, attempt int, msg string) {
	s := &c.shards[shard]
	s.failedBy, s.failedAt = runner, attempt
	c.logf("coord: shard %d attempt %d failed on %s: %s", shard, s.attempt, runner, msg)
	if s.attempt >= c.opts.MaxAttempts {
		c.fail(fmt.Errorf("coord: shard %d failed %d times, last error from %s: %s",
			shard, s.attempt, runner, msg))
		return
	}
	s.state, s.runner, s.resume = "pending", "", true
}

// Claim leases the next pending shard to the named runner.
func (c *Coordinator) Claim(runner string) (delivery.Task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	if c.finished || c.failed != nil {
		return delivery.Task{}, delivery.ErrDone
	}
	if c.job == nil {
		return delivery.Task{}, delivery.ErrNoWork
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != "pending" {
			continue
		}
		if c.jnl != nil {
			rec := jrec{kind: jrGrant, shard: i, runner: runner, attempt: s.attempt, resume: s.resume}
			if err := c.jnl.append(rec, true); err != nil {
				return delivery.Task{}, err
			}
		}
		c.applyGrant(i, runner, s.attempt, s.resume, now)
		return delivery.Task{
			Job:         *c.job,
			Shard:       i,
			Resume:      s.resume,
			Attempt:     s.attempt - 1,
			HeartbeatMS: c.opts.Heartbeat.Milliseconds(),
		}, nil
	}
	return delivery.Task{}, delivery.ErrNoWork
}

// Heartbeat renews the runner's lease and records the shard's live
// progress.
func (c *Coordinator) Heartbeat(runner string, beat delivery.Beat) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || beat.Shard < 0 || beat.Shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[beat.Shard]
	if s.state != "running" || s.runner != runner {
		return delivery.ErrLeaseLost
	}
	if c.jnl != nil {
		rec := jrec{kind: jrBeat, shard: beat.Shard, devicesDone: beat.DevicesDone,
			simDoneMS: beat.SimDoneMS, lastCheckpoint: beat.LastCheckpoint}
		// Beats are appended without fsync: losing the tail costs a stale
		// progress counter after recovery, never correctness.
		if err := c.jnl.append(rec, false); err != nil {
			return err
		}
	}
	c.applyBeat(beat, now)
	return nil
}

// Complete delivers a finished shard's partial. The first valid
// completion wins: a runner whose lease was forfeited but which
// finished anyway delivers an identical partial (resumed shard runs
// are byte-identical), so its late result is accepted as long as the
// shard is still open. A retried duplicate from the completing runner
// is an idempotent success.
func (c *Coordinator) Complete(runner string, shard int, p *fleet.Partial) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || shard < 0 || shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[shard]
	if s.state == "done" {
		if runner != "" && s.completedBy == runner {
			return nil
		}
		return delivery.ErrLeaseLost
	}
	if p == nil || p.ShardIndex != shard || p.ShardCount != c.job.Shards ||
		p.RangeLo != s.lo || p.RangeHi != s.hi {
		return fmt.Errorf("coord: partial does not describe shard %d of this job", shard)
	}
	if c.jnl != nil {
		pj, err := p.JSON()
		if err != nil {
			return err
		}
		if err := c.jnl.append(jrec{kind: jrComplete, shard: shard, runner: runner, partial: pj}, true); err != nil {
			return err
		}
	}
	c.applyComplete(shard, runner, p)
	return nil
}

// Fail reports a shard attempt that errored. The attempt key is the
// Task.Attempt of the failing lease: a genuine failure is charged
// against MaxAttempts and requeues the shard (with Resume) or fails
// the job terminally; a retried duplicate of an attempt already
// charged is an idempotent success.
func (c *Coordinator) Fail(runner string, shard, attempt int, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || shard < 0 || shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[shard]
	if s.state == "running" && s.runner == runner && attempt == s.attempt-1 {
		if c.jnl != nil {
			rec := jrec{kind: jrFail, shard: shard, runner: runner, attempt: attempt, msg: msg}
			if err := c.jnl.append(rec, true); err != nil {
				return err
			}
		}
		c.applyFail(shard, runner, attempt, msg)
		return nil
	}
	if runner != "" && s.failedBy == runner && s.failedAt == attempt {
		return nil
	}
	return delivery.ErrLeaseLost
}

// Status snapshots the run for /status consumers.
func (c *Coordinator) Status() delivery.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	st := delivery.Status{Done: c.finished}
	if c.failed != nil {
		st.Failed = c.failed.Error()
	}
	if c.job == nil {
		return st
	}
	job := *c.job
	st.Submitted = true
	st.Job = &job
	st.Devices = job.Devices
	st.SimTotalMS = int64(job.SimTotal())
	st.ElapsedMS = now.Sub(c.start).Milliseconds()
	st.Shards = make([]delivery.ShardStatus, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		st.DevicesDone += s.devicesDone
		st.SimDoneMS += s.simDoneMS
		st.Shards[i] = delivery.ShardStatus{
			Shard:          i,
			RangeLo:        s.lo,
			RangeHi:        s.hi,
			State:          s.state,
			Runner:         s.runner,
			Attempts:       s.attempt,
			DevicesDone:    s.devicesDone,
			SimDoneMS:      s.simDoneMS,
			LastCheckpoint: s.lastCheckpoint,
		}
	}
	return st
}

// Result renders the merged report's JSON (the same bytes cinder-fleet
// -json emits for a single-process run of the job).
func (c *Coordinator) Result(canonical bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	if !c.finished {
		return nil, delivery.ErrNotDone
	}
	if canonical {
		return c.report.CanonicalJSON(false)
	}
	return c.report.JSON(false)
}

// Done is closed when the job completes or fails terminally.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the job ends and returns the merged report (or
// the terminal error).
func (c *Coordinator) Wait(ctx context.Context) (fleet.Report, error) {
	select {
	case <-ctx.Done():
		return fleet.Report{}, ctx.Err()
	case <-c.doneCh:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return fleet.Report{}, c.failed
	}
	return c.report, nil
}

// Close releases the coordinator's journal file handle (if any). It
// does not end or abandon the job.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jnl == nil {
		return nil
	}
	err := c.jnl.close()
	c.jnl = nil
	return err
}

// replayState builds a coordinator from a journal's records without
// opening a journal for further appends. The first record must be the
// submit; later records are applied through the same apply* helpers
// the live paths use, so replayed state is bit-for-bit the state the
// crashed coordinator held (up to lease expiries, which are re-derived
// from the clock).
func replayState(opts Options, recs []jrec) (*Coordinator, error) {
	if len(recs) == 0 || recs[0].kind != jrSubmit {
		return nil, fmt.Errorf("coord: journal does not begin with a job record")
	}
	job, err := fleet.ParseJob(recs[0].job)
	if err != nil {
		return nil, fmt.Errorf("coord: journal job spec: %w", err)
	}
	c := New(opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installJob(job)
	now := c.opts.Now()
	for i, rec := range recs[1:] {
		if rec.kind != jrSubmit && (rec.shard < 0 || rec.shard >= len(c.shards)) {
			return nil, fmt.Errorf("coord: journal record %d references shard %d of %d", i+1, rec.shard, len(c.shards))
		}
		switch rec.kind {
		case jrSubmit:
			return nil, fmt.Errorf("coord: journal record %d is a second job record", i+1)
		case jrGrant:
			c.applyGrant(rec.shard, rec.runner, rec.attempt, rec.resume, now)
		case jrBeat:
			c.applyBeat(delivery.Beat{Shard: rec.shard, DevicesDone: rec.devicesDone,
				SimDoneMS: rec.simDoneMS, LastCheckpoint: rec.lastCheckpoint}, now)
		case jrComplete:
			p, err := fleet.ParsePartial(rec.partial)
			if err != nil {
				return nil, fmt.Errorf("coord: journal record %d partial: %w", i+1, err)
			}
			s := &c.shards[rec.shard]
			if p.ShardIndex != rec.shard || p.ShardCount != c.job.Shards ||
				p.RangeLo != s.lo || p.RangeHi != s.hi {
				return nil, fmt.Errorf("coord: journal record %d partial does not describe shard %d", i+1, rec.shard)
			}
			c.applyComplete(rec.shard, rec.runner, p)
		case jrFail:
			c.applyFail(rec.shard, rec.runner, rec.attempt, rec.msg)
		default:
			return nil, fmt.Errorf("coord: journal record %d has unknown kind %d", i+1, rec.kind)
		}
	}
	return c, nil
}

// Recover rebuilds a coordinator from the journal in dir (written by a
// previous coordinator whose job carried dir as its checkpoint dir)
// and reopens the journal for appending, so the recovered coordinator
// continues journaling where the crashed one stopped. A torn final
// record — the crash landed mid-append — is truncated away with a
// warning; any longer corruption fails loudly, never silently
// diverges. Running leases are given one fresh lease interval from
// recovery time to re-heartbeat.
func Recover(opts Options, dir string) (*Coordinator, error) {
	opts = opts.withDefaults()
	path := JournalPath(dir)
	recs, goodEnd, terr := readJournal(path)
	if len(recs) == 0 {
		if terr == nil {
			return nil, fmt.Errorf("coord: journal %s is empty", path)
		}
		return nil, fmt.Errorf("coord: journal %s is unreadable: %w", path, terr)
	}
	if terr != nil {
		if opts.Logf != nil {
			opts.Logf("coord: journal %s has a torn tail (%v); truncating to last valid record at byte %d",
				path, terr, goodEnd)
		}
		if err := os.Truncate(path, goodEnd); err != nil {
			return nil, fmt.Errorf("coord: truncate torn journal tail: %w", err)
		}
	}
	c, err := replayState(opts, recs)
	if err != nil {
		return nil, err
	}
	jnl, err := openJournalAppend(path)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.jnl = jnl
	c.mu.Unlock()
	if opts.Logf != nil {
		st := c.Status()
		opts.Logf("coord: recovered job from %s: %d records, %d/%d shards done",
			path, len(recs), countDone(st), len(st.Shards))
	}
	return c, nil
}

func countDone(st delivery.Status) int {
	n := 0
	for _, s := range st.Shards {
		if s.State == "done" {
			n++
		}
	}
	return n
}

var _ delivery.Service = (*Coordinator)(nil)
