// Package coord turns the fleet's shard layer into a small
// fleet-as-a-service: a Coordinator owns a submitted Job's shard
// queue and leases shards to runners over any delivery mechanism
// (work-stealing: an idle runner claims the next pending shard, so a
// fast machine simply ends up executing more shards); a Runner is the
// claim → simulate → stream-partials-back loop. Fault tolerance is
// reconfiguration, not consensus: a runner that stops heartbeating
// forfeits its lease, and the shard is reassigned with Resume set, so
// the next runner continues from the newest complete epoch checkpoint
// — losing a runner costs at most one checkpoint interval of
// re-simulation, and because resumed shard partials are byte-identical
// to uninterrupted ones, the merged report is too.
package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
	"repro/internal/units"
)

// Options tunes a Coordinator. The zero value gets sane defaults.
type Options struct {
	// Lease is how long a claimed shard may go without a heartbeat
	// before it is forfeited and reassigned (default 4× Heartbeat).
	Lease time.Duration
	// Heartbeat is the beat cadence handed to runners (default 1s).
	Heartbeat time.Duration
	// MaxAttempts bounds leases per shard; exhausting it fails the job
	// terminally (default 3).
	MaxAttempts int
	// Now overrides the clock (tests drive lease expiry with it).
	Now func() time.Time
	// Logf, when set, receives one line per lease event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Lease <= 0 {
		o.Lease = 4 * o.Heartbeat
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// shardState is the coordinator's record of one shard of the plan.
type shardState struct {
	lo, hi  int
	state   string // "pending" | "running" | "done"
	runner  string
	expiry  time.Time
	attempt int
	// resume is set once a lease has been forfeited or failed: the next
	// assignment asks the runner to continue from epoch checkpoints.
	resume bool

	devicesDone    int
	simDoneMS      int64
	lastCheckpoint int

	partial *fleet.Partial
}

// Coordinator accepts one Job, leases its shards to runners, and
// merges the returned partials into the final report. It implements
// delivery.Service, so it sits unchanged behind every delivery
// mechanism.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	job      *fleet.Job
	start    time.Time
	shards   []shardState
	remain   int // shards not yet done
	finished bool
	failed   error
	report   fleet.Report
	doneCh   chan struct{}
}

// New returns an idle coordinator awaiting a Submit.
func New(opts Options) *Coordinator {
	return &Coordinator{opts: opts.withDefaults(), doneCh: make(chan struct{})}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Submit installs the job. A coordinator runs exactly one job; a
// second Submit is an error.
func (c *Coordinator) Submit(job fleet.Job) error {
	if err := job.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.job != nil {
		return fmt.Errorf("coord: a job is already submitted")
	}
	c.job = &job
	c.start = c.opts.Now()
	c.shards = make([]shardState, job.Shards)
	c.remain = job.Shards
	for i := range c.shards {
		lo, hi := job.ShardRange(i)
		c.shards[i] = shardState{lo: lo, hi: hi, state: "pending", lastCheckpoint: -1}
	}
	c.logf("coord: job submitted: %s, %d devices × %v, %d shards",
		job.Scenario, job.Devices, time.Duration(job.DurationMS)*time.Millisecond, job.Shards)
	return nil
}

// fail ends the job terminally. Caller holds c.mu.
func (c *Coordinator) fail(err error) {
	if c.finished || c.failed != nil {
		return
	}
	c.failed = err
	c.logf("coord: job failed: %v", err)
	close(c.doneCh)
}

// expire forfeits leases whose runners stopped heartbeating. Caller
// holds c.mu.
func (c *Coordinator) expire(now time.Time) {
	if c.job == nil || c.finished || c.failed != nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != "running" || !now.After(s.expiry) {
			continue
		}
		c.logf("coord: shard %d lease expired (runner %s, attempt %d)", i, s.runner, s.attempt)
		if s.attempt >= c.opts.MaxAttempts {
			c.fail(fmt.Errorf("coord: shard %d failed %d times (last runner %s lost)",
				i, s.attempt, s.runner))
			return
		}
		s.state, s.runner, s.resume = "pending", "", true
	}
}

// Claim leases the next pending shard to the named runner.
func (c *Coordinator) Claim(runner string) (delivery.Task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	if c.finished || c.failed != nil {
		return delivery.Task{}, delivery.ErrDone
	}
	if c.job == nil {
		return delivery.Task{}, delivery.ErrNoWork
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != "pending" {
			continue
		}
		s.state, s.runner = "running", runner
		s.expiry = now.Add(c.opts.Lease)
		s.attempt++
		c.logf("coord: shard %d [%d,%d) leased to %s (attempt %d, resume %v)",
			i, s.lo, s.hi, runner, s.attempt, s.resume)
		return delivery.Task{
			Job:         *c.job,
			Shard:       i,
			Resume:      s.resume,
			Attempt:     s.attempt - 1,
			HeartbeatMS: c.opts.Heartbeat.Milliseconds(),
		}, nil
	}
	return delivery.Task{}, delivery.ErrNoWork
}

// Heartbeat renews the runner's lease and records the shard's live
// progress.
func (c *Coordinator) Heartbeat(runner string, beat delivery.Beat) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || beat.Shard < 0 || beat.Shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[beat.Shard]
	if s.state != "running" || s.runner != runner {
		return delivery.ErrLeaseLost
	}
	s.expiry = now.Add(c.opts.Lease)
	s.devicesDone = beat.DevicesDone
	s.simDoneMS = beat.SimDoneMS
	s.lastCheckpoint = beat.LastCheckpoint
	return nil
}

// Complete delivers a finished shard's partial. The first valid
// completion wins: a runner whose lease was forfeited but which
// finished anyway delivers an identical partial (resumed shard runs
// are byte-identical), so its late result is accepted as long as the
// shard is still open.
func (c *Coordinator) Complete(runner string, shard int, p *fleet.Partial) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || shard < 0 || shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[shard]
	if s.state == "done" {
		return delivery.ErrLeaseLost
	}
	if p == nil || p.ShardIndex != shard || p.ShardCount != c.job.Shards ||
		p.RangeLo != s.lo || p.RangeHi != s.hi {
		return fmt.Errorf("coord: partial does not describe shard %d of this job", shard)
	}
	s.state, s.runner, s.partial = "done", "", p
	s.devicesDone = s.hi - s.lo
	s.simDoneMS = int64(units.Time(s.hi-s.lo) * c.job.Horizon())
	c.remain--
	c.logf("coord: shard %d completed by %s (%d shards left)", shard, runner, c.remain)
	if c.remain > 0 {
		return nil
	}
	parts := make([]*fleet.Partial, len(c.shards))
	for i := range c.shards {
		parts[i] = c.shards[i].partial
	}
	rep, err := c.job.Merge(parts)
	if err != nil {
		c.fail(err)
		return nil
	}
	c.report, c.finished = rep, true
	c.logf("coord: job done, report merged")
	close(c.doneCh)
	return nil
}

// Fail reports a shard attempt that errored. The attempt is charged
// against MaxAttempts; the shard is requeued (with Resume) or the job
// fails terminally.
func (c *Coordinator) Fail(runner string, shard int, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failed != nil {
		return delivery.ErrDone
	}
	if c.job == nil || shard < 0 || shard >= len(c.shards) {
		return delivery.ErrLeaseLost
	}
	s := &c.shards[shard]
	if s.state != "running" || s.runner != runner {
		return delivery.ErrLeaseLost
	}
	c.logf("coord: shard %d attempt %d failed on %s: %s", shard, s.attempt, runner, msg)
	if s.attempt >= c.opts.MaxAttempts {
		c.fail(fmt.Errorf("coord: shard %d failed %d times, last error from %s: %s",
			shard, s.attempt, runner, msg))
		return nil
	}
	s.state, s.runner, s.resume = "pending", "", true
	return nil
}

// Status snapshots the run for /status consumers.
func (c *Coordinator) Status() delivery.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.expire(now)
	st := delivery.Status{Done: c.finished}
	if c.failed != nil {
		st.Failed = c.failed.Error()
	}
	if c.job == nil {
		return st
	}
	job := *c.job
	st.Submitted = true
	st.Job = &job
	st.Devices = job.Devices
	st.SimTotalMS = int64(job.SimTotal())
	st.ElapsedMS = now.Sub(c.start).Milliseconds()
	st.Shards = make([]delivery.ShardStatus, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		st.DevicesDone += s.devicesDone
		st.SimDoneMS += s.simDoneMS
		st.Shards[i] = delivery.ShardStatus{
			Shard:          i,
			RangeLo:        s.lo,
			RangeHi:        s.hi,
			State:          s.state,
			Runner:         s.runner,
			Attempts:       s.attempt,
			DevicesDone:    s.devicesDone,
			SimDoneMS:      s.simDoneMS,
			LastCheckpoint: s.lastCheckpoint,
		}
	}
	return st
}

// Result renders the merged report's JSON (the same bytes cinder-fleet
// -json emits for a single-process run of the job).
func (c *Coordinator) Result(canonical bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	if !c.finished {
		return nil, delivery.ErrNotDone
	}
	if canonical {
		return c.report.CanonicalJSON(false)
	}
	return c.report.JSON(false)
}

// Done is closed when the job completes or fails terminally.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the job ends and returns the merged report (or
// the terminal error).
func (c *Coordinator) Wait(ctx context.Context) (fleet.Report, error) {
	select {
	case <-ctx.Done():
		return fleet.Report{}, ctx.Err()
	case <-c.doneCh:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return fleet.Report{}, c.failed
	}
	return c.report, nil
}

var _ delivery.Service = (*Coordinator)(nil)
