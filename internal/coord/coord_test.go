package coord

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
	"repro/internal/units"
)

// dayJob is the reference workload of this suite: small enough to run
// in milliseconds, heterogeneous enough (dayinthelife draws mixed
// buckets) to exercise every aggregate field.
func dayJob(t *testing.T, devices, shards int) fleet.Job {
	t.Helper()
	job, err := fleet.NewJob(fleet.Config{
		Devices:  devices,
		Seed:     21,
		Duration: 24 * units.Hour,
		Scenario: fleet.Scenarios()["dayinthelife"],
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// weekJob is the checkpointed workload: multi-day horizon with daily
// epochs, so runner loss mid-job has checkpoints to resume from.
func weekJob(t *testing.T, devices, shards int, dir string) fleet.Job {
	t.Helper()
	job, err := fleet.NewJob(fleet.Config{
		Devices:       devices,
		Seed:          13,
		Duration:      3 * 24 * units.Hour,
		Scenario:      fleet.Scenarios()["weekinthelife"],
		CheckpointDir: dir,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// singleProcess runs the job's equivalent plain fleet.Run. A
// checkpointed job gets a checkpointed reference run (its own private
// epoch directory, same interval): epoch boundaries shape the engine
// diagnostics, so full-JSON identity needs the same epoch plan on both
// sides.
func singleProcess(t *testing.T, job fleet.Job) fleet.Report {
	t.Helper()
	ref := fleet.Job{
		Scenario: job.Scenario, Devices: job.Devices, Seed: job.Seed,
		DurationMS: job.DurationMS, Shards: 1,
		BatteryUJ: job.BatteryUJ, LifeResolutionMS: job.LifeResolutionMS,
		EngineMode: job.EngineMode, SettleMode: job.SettleMode,
		NetdSettleMode: job.NetdSettleMode, DenseWatch: job.DenseWatch,
	}
	if job.CheckpointDir != "" {
		ref.CheckpointDir = t.TempDir()
		ref.CheckpointEveryMS = job.CheckpointEveryMS
	}
	cfg, err := ref.ShardConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardCount = 0
	cfg.Workers = 2
	rep, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func mustJSON(t *testing.T, rep fleet.Report) []byte {
	t.Helper()
	b, err := rep.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunLocalMatchesSingleProcess: the full coordinator/runner/
// delivery stack, in-process, must reproduce a plain fleet.Run byte
// for byte — including the degenerate one-runner one-shard case.
func TestRunLocalMatchesSingleProcess(t *testing.T) {
	job := dayJob(t, 50, 1)
	want := mustJSON(t, singleProcess(t, job))
	for _, tc := range []struct {
		name            string
		shards, runners int
	}{
		{"degenerate-1x1", 1, 1},
		{"4-shards-2-runners", 4, 2},
		{"7-shards-3-runners", 7, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			job := dayJob(t, 50, tc.shards)
			rep, err := RunLocal(context.Background(), job, LocalOptions{
				Runners: tc.runners,
				Workers: 2,
				Logf:    t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("RunLocal diverged from single process:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// fakeClock is a hand-advanced clock for lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestLeaseExpiryReassignsWithResume drives the protocol by hand: a
// runner claims the only shard, publishes one epoch checkpoint, and
// vanishes. After the lease expires the shard must be re-leased with
// Resume set, the second runner must actually resume (its first
// progress update is past epoch 0), and the final report must be
// byte-identical to an uninterrupted single-process run.
func TestLeaseExpiryReassignsWithResume(t *testing.T) {
	job := weekJob(t, 6, 1, t.TempDir())
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := New(Options{Heartbeat: time.Second, Lease: 4 * time.Second, Now: clk.Now, Logf: t.Logf})
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}

	taskA, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if taskA.Resume || taskA.Attempt != 0 {
		t.Fatalf("first lease: resume=%v attempt=%d", taskA.Resume, taskA.Attempt)
	}

	// Runner "a" dies right after its first checkpoint lands.
	died := errors.New("runner a died")
	_, err = (fleet.ShardRun{
		Job: taskA.Job, Shard: taskA.Shard, Workers: 2,
		Progress: func(p fleet.Progress) error {
			if p.Checkpointed {
				return died
			}
			return nil
		},
	}).Run()
	if !errors.Is(err, died) {
		t.Fatalf("induced death: got %v", err)
	}

	// The lease is still live: another claim finds no work.
	if _, err := co.Claim("b"); !errors.Is(err, delivery.ErrNoWork) {
		t.Fatalf("claim before expiry: got %v", err)
	}

	clk.Advance(10 * time.Second)
	taskB, err := co.Claim("b")
	if err != nil {
		t.Fatal(err)
	}
	if !taskB.Resume || taskB.Shard != taskA.Shard || taskB.Attempt != 1 {
		t.Fatalf("reassigned lease: resume=%v shard=%d attempt=%d",
			taskB.Resume, taskB.Shard, taskB.Attempt)
	}

	var firstEpoch = -1
	part, err := (fleet.ShardRun{
		Job: taskB.Job, Shard: taskB.Shard, Resume: taskB.Resume, Workers: 2,
		Progress: func(p fleet.Progress) error {
			if firstEpoch < 0 {
				firstEpoch = p.Epoch
			}
			return nil
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if firstEpoch < 1 {
		t.Fatalf("runner b started at epoch %d: did not resume from the checkpoint", firstEpoch)
	}
	if err := co.Complete("b", taskB.Shard, part); err != nil {
		t.Fatal(err)
	}

	st := co.Status()
	if !st.Done || st.Shards[0].Attempts != 2 {
		t.Fatalf("status after completion: done=%v attempts=%d", st.Done, st.Shards[0].Attempts)
	}
	got, err := co.Result(false)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustJSON(t, singleProcess(t, job)); !bytes.Equal(got, want) {
		t.Fatalf("report after runner loss diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestMaxAttemptsFailsTerminally: a shard that keeps losing its runner
// must eventually fail the whole job rather than spin forever.
func TestMaxAttemptsFailsTerminally(t *testing.T) {
	job := dayJob(t, 4, 1)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := New(Options{Heartbeat: time.Second, Lease: 2 * time.Second, MaxAttempts: 2, Now: clk.Now})
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := co.Claim("flaky"); err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		clk.Advance(5 * time.Second)
	}
	if _, err := co.Claim("flaky"); !errors.Is(err, delivery.ErrDone) {
		t.Fatalf("claim after exhaustion: got %v", err)
	}
	if _, err := co.Result(false); err == nil || errors.Is(err, delivery.ErrNotDone) {
		t.Fatalf("result of failed job: got %v", err)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("Done not closed after terminal failure")
	}
}

// TestFailChargesAttempt: an explicit shard failure requeues with
// Resume and counts against the attempt budget.
func TestFailChargesAttempt(t *testing.T) {
	job := dayJob(t, 4, 1)
	co := New(Options{MaxAttempts: 2})
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	task, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Fail("a", task.Shard, task.Attempt, "induced"); err != nil {
		t.Fatal(err)
	}
	task2, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if !task2.Resume || task2.Attempt != 1 {
		t.Fatalf("requeued task: resume=%v attempt=%d", task2.Resume, task2.Attempt)
	}
	if err := co.Fail("a", task2.Shard, task2.Attempt, "induced again"); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Claim("a"); !errors.Is(err, delivery.ErrDone) {
		t.Fatalf("claim after second failure: got %v", err)
	}
	if _, err := co.Result(false); err == nil || !strings.Contains(err.Error(), "induced again") {
		t.Fatalf("terminal error: got %v", err)
	}
}

// TestStaleRunnerLosesLease: heartbeats and completions from a runner
// whose lease was reassigned must come back ErrLeaseLost, and a late
// duplicate completion of a done shard is rejected the same way.
func TestStaleRunnerLosesLease(t *testing.T) {
	job := dayJob(t, 4, 1)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := New(Options{Heartbeat: time.Second, Lease: 2 * time.Second, Now: clk.Now})
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	taskA, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if _, err := co.Claim("b"); err != nil {
		t.Fatal(err)
	}
	if err := co.Heartbeat("a", delivery.Beat{Shard: taskA.Shard}); !errors.Is(err, delivery.ErrLeaseLost) {
		t.Fatalf("stale heartbeat: got %v", err)
	}

	// The stale runner finishing anyway is accepted (first valid result
	// wins; resumed reruns are byte-identical)…
	part, err := (fleet.ShardRun{Job: taskA.Job, Shard: taskA.Shard, Workers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Complete("a", taskA.Shard, part); err != nil {
		t.Fatal(err)
	}
	// …and the superseding runner's duplicate is turned away: that
	// completion finished the one-shard job, so the answer is ErrDone.
	if err := co.Complete("b", taskA.Shard, part); !errors.Is(err, delivery.ErrDone) {
		t.Fatalf("duplicate complete: got %v", err)
	}
	if !co.Status().Done {
		t.Fatal("job not done after accepted completion")
	}
}
