package coord

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// runShard executes one leased shard the way a runner would.
func runShard(t *testing.T, task delivery.Task) *fleet.Partial {
	t.Helper()
	part, err := (fleet.ShardRun{
		Job: task.Job, Shard: task.Shard, Resume: task.Resume, Workers: 2,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return part
}

// TestRecoverResumesMidJob is the coordinator-crash rehearsal, by hand:
// one shard completes, a second is leased, and the coordinator dies
// (Close stands in for kill -9 — the journal is synced record by
// record, so a closed handle and a severed one leave the same bytes).
// Recover must rebuild the exact lease/attempt state, accept the rest
// of the job, and produce a byte-identical report.
func TestRecoverResumesMidJob(t *testing.T) {
	dir := t.TempDir()
	job := weekJob(t, 6, 2, dir)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	opts := Options{Heartbeat: time.Second, Lease: 10 * time.Second, MaxAttempts: 5, Now: clk.Now, Logf: t.Logf}

	co := New(opts)
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	task0, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Complete("a", task0.Shard, runShard(t, task0)); err != nil {
		t.Fatal(err)
	}
	task1, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Heartbeat("a", delivery.Beat{Shard: task1.Shard, DevicesDone: 1, SimDoneMS: 1000, LastCheckpoint: 0}); err != nil {
		t.Fatal(err)
	}
	co.Close() // crash

	co2, err := Recover(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	st := co2.Status()
	if st.Shards[task0.Shard].State != "done" {
		t.Fatalf("recovered shard %d: %+v, want done", task0.Shard, st.Shards[task0.Shard])
	}
	s1 := st.Shards[task1.Shard]
	if s1.State != "running" || s1.Runner != "a" || s1.Attempts != 1 || s1.LastCheckpoint != 0 {
		t.Fatalf("recovered shard %d: %+v, want running by a at attempt 1", task1.Shard, s1)
	}

	// The surviving runner finishes its shard against the recovered
	// coordinator.
	if err := co2.Complete("a", task1.Shard, runShard(t, task1)); err != nil {
		t.Fatal(err)
	}
	got, err := co2.Result(false)
	if err != nil {
		t.Fatal(err)
	}
	want := singleProcess(t, job)
	if wj := mustJSON(t, want); !bytes.Equal(got, wj) {
		t.Fatalf("recovered report diverged:\n%s\nvs\n%s", got, wj)
	}
	gotC, err := co2.Result(true)
	if err != nil {
		t.Fatal(err)
	}
	if wc, _ := want.CanonicalJSON(false); !bytes.Equal(gotC, wc) {
		t.Fatal("recovered canonical report diverged")
	}
	co2.Close()

	// The recovered coordinator kept journaling: a second recovery sees
	// the finished job.
	co3, err := Recover(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer co3.Close()
	if !co3.Status().Done {
		t.Fatal("second recovery does not see the finished job")
	}
	if got3, err := co3.Result(false); err != nil || !bytes.Equal(got3, got) {
		t.Fatalf("second recovery report diverged: %v", err)
	}
}

// TestRecoverTornTail: a crash mid-append leaves a torn final record.
// Recover must truncate it away with a warning and resume from the
// last durable record — here the lost record is shard 1's completion,
// so its runner's retried delivery is accepted and the report is still
// byte-identical.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	job := weekJob(t, 6, 2, dir)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	opts := Options{Heartbeat: time.Second, Lease: 10 * time.Second, MaxAttempts: 5, Now: clk.Now, Logf: t.Logf}

	co := New(opts)
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	taskA, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	taskB, err := co.Claim("b")
	if err != nil {
		t.Fatal(err)
	}
	partA, partB := runShard(t, taskA), runShard(t, taskB)
	if err := co.Complete("a", taskA.Shard, partA); err != nil {
		t.Fatal(err)
	}
	if err := co.Complete("b", taskB.Shard, partB); err != nil {
		t.Fatal(err)
	}
	co.Close()

	// Tear the tail: the final record (shard B's completion) loses its
	// last bytes, as if the crash landed mid-write.
	path := JournalPath(dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	var warned bool
	wopts := opts
	wopts.Logf = func(format string, args ...any) {
		if strings.Contains(format, "torn tail") {
			warned = true
		}
		t.Logf(format, args...)
	}
	co2, err := Recover(wopts, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if !warned {
		t.Fatal("torn tail was not reported")
	}
	if st := co2.Status(); st.Shards[taskB.Shard].State != "running" {
		t.Fatalf("shard %d after torn-tail recovery: %+v, want running (completion was torn)",
			taskB.Shard, st.Shards[taskB.Shard])
	}
	// Runner b never got its ack, so it retries the identical delivery.
	if err := co2.Complete("b", taskB.Shard, partB); err != nil {
		t.Fatal(err)
	}
	got, err := co2.Result(false)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustJSON(t, singleProcess(t, job)); !bytes.Equal(got, want) {
		t.Fatalf("report after torn-tail recovery diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestJournalTruncationProperty is the S4 property test: for ANY
// prefix of a real job's journal — clean record boundary or torn
// mid-frame — recovery either fails loudly or yields a coordinator
// that drives the job to the exact reference bytes. There is no third
// outcome: no silent divergence, no hang.
func TestJournalTruncationProperty(t *testing.T) {
	dir := t.TempDir()
	job := weekJob(t, 6, 2, dir)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	opts := Options{Heartbeat: time.Second, Lease: 10 * time.Second, MaxAttempts: 10, Now: clk.Now, Logf: t.Logf}

	// Scripted history touching every record kind: grants, a beat, a
	// genuine failure, a resumed re-grant, and two completions.
	co := New(opts)
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	task0, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	task1, err := co.Claim("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Heartbeat("a", delivery.Beat{Shard: task0.Shard, DevicesDone: 1, SimDoneMS: 500, LastCheckpoint: 0}); err != nil {
		t.Fatal(err)
	}
	if err := co.Complete("a", task0.Shard, runShard(t, task0)); err != nil {
		t.Fatal(err)
	}
	if err := co.Fail("b", task1.Shard, task1.Attempt, "induced"); err != nil {
		t.Fatal(err)
	}
	task1b, err := co.Claim("b")
	if err != nil {
		t.Fatal(err)
	}
	if !task1b.Resume || task1b.Attempt != 1 {
		t.Fatalf("re-grant: %+v", task1b)
	}
	if err := co.Complete("b", task1b.Shard, runShard(t, task1b)); err != nil {
		t.Fatal(err)
	}
	ref, err := co.Result(false)
	if err != nil {
		t.Fatal(err)
	}
	co.Close()

	full, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	cuts := []int{0, 1, len(full) - 1, len(full)}
	for i := 0; i < 16; i++ {
		cuts = append(cuts, 1+rng.Intn(len(full)-1))
	}
	for _, cut := range cuts {
		// Only the journal prefix moves to a fresh dir; the epoch files
		// stay in the job's checkpoint dir, shared by every recovery the
		// way a real restart shares them.
		jdir := t.TempDir()
		if err := os.WriteFile(JournalPath(jdir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		clk2 := &fakeClock{now: time.Unix(5000, 0)}
		ropts := opts
		ropts.Now = clk2.Now
		ropts.Logf = nil
		co2, err := Recover(ropts, jdir)
		if err != nil {
			// Loud failure is a legal outcome — but only for prefixes too
			// short to even hold the job record.
			t.Logf("cut %4d/%d: loud failure: %v", cut, len(full), err)
			continue
		}
		drive(t, co2, clk2, cut)
		got, err := co2.Result(false)
		if err != nil {
			t.Fatalf("cut %d: result after drive: %v", cut, err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("cut %d: recovered run diverged from reference", cut)
		}
		co2.Close()
	}
}

// drive plays a single generic runner against a recovered coordinator
// until the job completes, expiring stuck leases via the fake clock.
func drive(t *testing.T, co *Coordinator, clk *fakeClock, cut int) {
	t.Helper()
	for iter := 0; ; iter++ {
		if iter > 100 {
			t.Fatalf("cut %d: no progress after %d iterations", cut, iter)
		}
		task, err := co.Claim("r")
		switch {
		case errors.Is(err, delivery.ErrDone):
			if st := co.Status(); st.Failed != "" {
				t.Fatalf("cut %d: job failed during drive: %s", cut, st.Failed)
			}
			return
		case errors.Is(err, delivery.ErrNoWork):
			// Shards still leased to the crashed run's runners: advance
			// past the lease so they are forfeited and re-claimable.
			clk.Advance(time.Minute)
			continue
		case err != nil:
			t.Fatalf("cut %d: claim: %v", cut, err)
		}
		if err := co.Complete("r", task.Shard, runShard(t, task)); err != nil && !errors.Is(err, delivery.ErrDone) {
			t.Fatalf("cut %d: complete: %v", cut, err)
		}
	}
}

// TestSubmitOverJournal: a coordinator started fresh over a checkpoint
// dir must refuse to clobber an unfinished journal (pointing the
// operator at -recover), and silently discard a finished one.
func TestSubmitOverJournal(t *testing.T) {
	dir := t.TempDir()
	job := weekJob(t, 6, 1, dir)
	opts := Options{Heartbeat: time.Second, Lease: 10 * time.Second, Logf: t.Logf}

	co := New(opts)
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Claim("a"); err != nil {
		t.Fatal(err)
	}
	co.Close() // crash with the job unfinished

	fresh := New(opts)
	err := fresh.Submit(job)
	if err == nil || !strings.Contains(err.Error(), "serve -recover") {
		t.Fatalf("submit over unfinished journal: %v, want a -recover hint", err)
	}
	fresh.Close()

	// Finish the job via recovery, then the same Submit starts over.
	co2, err := Recover(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	task, err := co2.Claim("a") // same runner re-claims nothing new…
	if !errors.Is(err, delivery.ErrNoWork) {
		t.Fatalf("claim of still-leased shard: %v, want ErrNoWork", err)
	}
	// …but completing the recovered lease is accepted.
	task = delivery.Task{Job: job, Shard: 0}
	if err := co2.Complete("a", 0, runShard(t, task)); err != nil {
		t.Fatal(err)
	}
	if !co2.Status().Done {
		t.Fatal("job not done")
	}
	co2.Close()

	fresh2 := New(opts)
	defer fresh2.Close()
	if err := fresh2.Submit(job); err != nil {
		t.Fatalf("submit over finished journal: %v", err)
	}
	if st := fresh2.Status(); st.Shards[0].State != "pending" {
		t.Fatalf("fresh job inherited state: %+v", st.Shards[0])
	}
}

// TestDuplicateCompleteFailDedup: retried deliveries whose first copy
// was journaled must succeed idempotently — the exact ambiguity a lost
// acknowledgement (or chaos DropReply) creates — while third parties
// still get ErrLeaseLost.
func TestDuplicateCompleteFailDedup(t *testing.T) {
	job := dayJob(t, 4, 2)
	co := New(Options{MaxAttempts: 3})
	if err := co.Submit(job); err != nil {
		t.Fatal(err)
	}
	taskA, err := co.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	part := runShard(t, taskA)
	if err := co.Complete("a", taskA.Shard, part); err != nil {
		t.Fatal(err)
	}
	if err := co.Complete("a", taskA.Shard, part); err != nil {
		t.Fatalf("duplicate complete from the completing runner: %v, want idempotent nil", err)
	}
	if err := co.Complete("x", taskA.Shard, part); !errors.Is(err, delivery.ErrLeaseLost) {
		t.Fatalf("complete from a third party: %v, want ErrLeaseLost", err)
	}

	taskB, err := co.Claim("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Fail("b", taskB.Shard, taskB.Attempt, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := co.Fail("b", taskB.Shard, taskB.Attempt, "boom"); err != nil {
		t.Fatalf("duplicate fail of the charged attempt: %v, want idempotent nil", err)
	}
	if err := co.Fail("c", taskB.Shard, taskB.Attempt, "boom"); !errors.Is(err, delivery.ErrLeaseLost) {
		t.Fatalf("fail from a third party: %v, want ErrLeaseLost", err)
	}
	if err := co.Fail("b", taskB.Shard, 7, "boom"); !errors.Is(err, delivery.ErrLeaseLost) {
		t.Fatalf("fail of a never-granted attempt: %v, want ErrLeaseLost", err)
	}
}
