package coord

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// Runner is the worker side of the service: claim a shard, simulate
// it, stream the partial back, repeat. Heartbeats ride a side
// goroutine fed from the shard's Progress stream; if the coordinator
// answers one with ErrLeaseLost the in-flight simulation is aborted
// through the same Progress callback (the admission window stops
// dispatching within one reduced device), so a superseded runner stops
// burning CPU on work someone else now owns.
//
// A runner never gives up on an unreachable coordinator: claim
// failures back off under the shared delivery.Backoff policy (so a
// fleet of runners rides out a coordinator restart or partition and
// reattaches when it returns), and a finished shard's Complete is
// retried until it is delivered or the context ends — the partial in
// hand may be the last copy of hours of simulation.
type Runner struct {
	// ID names this runner in leases and logs.
	ID string
	// Conn is the delivery connection to the coordinator.
	Conn delivery.Conn
	// Workers bounds the simulation worker pool (0 = one per CPU).
	Workers int
	// Poll is the idle wait between ErrNoWork claims (default 200ms).
	Poll time.Duration
	// Backoff is the retry policy for transport failures (zero =
	// delivery defaults; Seed defaults to a hash of ID so each runner
	// jitters differently but reproducibly).
	Backoff delivery.Backoff
	// WarnEvery rate-limits the coordinator-unreachable warning line
	// (default 30s): one line per window with a suppressed-failure
	// count, not one line per failed claim.
	WarnEvery time.Duration
	// OnProgress, when set, observes every Progress update of every
	// shard this runner executes (tests use it to induce deaths; the
	// CLI feeds its progress line from it).
	OnProgress func(shard int, p fleet.Progress)
	// Logf, when set, receives one line per task event.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) poll() time.Duration {
	if r.Poll > 0 {
		return r.Poll
	}
	return 200 * time.Millisecond
}

// backoff returns the runner's retry policy with its ID-derived jitter
// seed applied.
func (r *Runner) backoff() delivery.Backoff {
	b := r.Backoff
	if b.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(r.ID))
		b.Seed = int64(h.Sum64() >> 1)
	}
	return b
}

// callTimeout is the per-attempt deadline for direct (non-Retry)
// calls.
func (r *Runner) callTimeout() time.Duration {
	if r.Backoff.CallTimeout > 0 {
		return r.Backoff.CallTimeout
	}
	return 30 * time.Second
}

// Run claims and executes shards until the job is done (nil) or the
// context ends. Transport failures are ridden out indefinitely with
// backoff — reattaching to a restarted coordinator is the runner's
// job, not the operator's.
func (r *Runner) Run(ctx context.Context) error {
	b := r.backoff()
	warnEvery := r.WarnEvery
	if warnEvery <= 0 {
		warnEvery = 30 * time.Second
	}
	failures := 0   // consecutive transport failures
	suppressed := 0 // warnings withheld since the last emitted one
	var lastWarn time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		cctx, cancel := context.WithTimeout(ctx, r.callTimeout())
		task, err := r.Conn.Claim(cctx, r.ID)
		cancel()
		switch {
		case errors.Is(err, delivery.ErrDone):
			return nil
		case errors.Is(err, delivery.ErrNoWork):
			failures, suppressed = 0, 0
			if err := sleep(ctx, r.poll()); err != nil {
				return err
			}
			continue
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			failures++
			now := time.Now()
			if lastWarn.IsZero() || now.Sub(lastWarn) >= warnEvery {
				if suppressed > 0 {
					r.logf("runner %s: coordinator unreachable, retrying with backoff (%d failures suppressed since last warning; latest: %v)",
						r.ID, suppressed, err)
				} else {
					r.logf("runner %s: coordinator unreachable, retrying with backoff: %v", r.ID, err)
				}
				lastWarn, suppressed = now, 0
			} else {
				suppressed++
			}
			if err := sleep(ctx, b.Delay(failures)); err != nil {
				return err
			}
			continue
		}
		failures, suppressed, lastWarn = 0, 0, time.Time{}
		if err := r.runTask(ctx, task); err != nil {
			return err
		}
	}
}

// runTask executes one leased shard. Only a context cancellation
// propagates as an error; shard failures are reported to the
// coordinator (which owns the retry budget) and lost leases are simply
// abandoned.
func (r *Runner) runTask(ctx context.Context, task delivery.Task) error {
	lo, hi := task.Job.ShardRange(task.Shard)
	r.logf("runner %s: shard %d [%d,%d) attempt %d (resume %v)",
		r.ID, task.Shard, lo, hi, task.Attempt, task.Resume)

	var mu sync.Mutex
	beat := delivery.Beat{Shard: task.Shard, LastCheckpoint: -1}

	// The heartbeat goroutine renews the lease on the coordinator's
	// cadence and closes lost when the lease is gone.
	lost := make(chan struct{})
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	interval := time.Duration(task.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			mu.Lock()
			b := beat
			mu.Unlock()
			hctx, cancel := context.WithTimeout(ctx, r.callTimeout())
			err := r.Conn.Heartbeat(hctx, r.ID, b)
			cancel()
			if errors.Is(err, delivery.ErrLeaseLost) || errors.Is(err, delivery.ErrDone) {
				close(lost)
				return
			}
			// A transport hiccup is survivable: the lease outlasts
			// several missed beats, and the next beat retries.
		}
	}()

	run := fleet.ShardRun{
		Job:     task.Job,
		Shard:   task.Shard,
		Resume:  task.Resume,
		Workers: r.Workers,
		Warnf:   r.Logf,
		Progress: func(p fleet.Progress) error {
			mu.Lock()
			beat.DevicesDone = p.Done
			beat.SimDoneMS = int64(p.SimDone())
			beat.LastCheckpoint = p.LastCheckpoint
			mu.Unlock()
			if r.OnProgress != nil {
				r.OnProgress(task.Shard, p)
			}
			select {
			case <-lost:
				return delivery.ErrLeaseLost
			default:
			}
			return ctx.Err()
		},
	}
	part, err := run.Run()
	close(hbStop)
	<-hbDone

	switch {
	case err == nil:
		// The partial may be the only copy of this shard's work: retry
		// its delivery until the coordinator answers (success or a
		// protocol outcome) or the runner is shut down.
		cerr := delivery.Retry(ctx, r.backoff(), func(cctx context.Context) error {
			return r.Conn.Complete(cctx, r.ID, task.Shard, part)
		})
		switch {
		case cerr == nil:
			r.logf("runner %s: shard %d complete", r.ID, task.Shard)
		case errors.Is(cerr, delivery.ErrLeaseLost), errors.Is(cerr, delivery.ErrDone):
			r.logf("runner %s: shard %d finished but lease was gone", r.ID, task.Shard)
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			r.logf("runner %s: shard %d result undeliverable: %v", r.ID, task.Shard, cerr)
		}
		return nil
	case errors.Is(err, delivery.ErrLeaseLost):
		r.logf("runner %s: shard %d abandoned (lease lost)", r.ID, task.Shard)
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		r.logf("runner %s: shard %d failed: %v", r.ID, task.Shard, err)
		// Bounded best effort: lease expiry covers us if this doesn't
		// arrive, so a few retries are worth it but forever is not.
		fb := r.backoff()
		fb.MaxAttempts = 5
		msg := err.Error()
		delivery.Retry(ctx, fb, func(cctx context.Context) error {
			return r.Conn.Fail(cctx, r.ID, task.Shard, task.Attempt, msg)
		})
		return nil
	}
}

// sleep waits d or until the context ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
