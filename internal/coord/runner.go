package coord

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// Runner is the worker side of the service: claim a shard, simulate
// it, stream the partial back, repeat. Heartbeats ride a side
// goroutine fed from the shard's Progress stream; if the coordinator
// answers one with ErrLeaseLost the in-flight simulation is aborted
// through the same Progress callback (the admission window stops
// dispatching within one reduced device), so a superseded runner stops
// burning CPU on work someone else now owns.
type Runner struct {
	// ID names this runner in leases and logs.
	ID string
	// Conn is the delivery connection to the coordinator.
	Conn delivery.Conn
	// Workers bounds the simulation worker pool (0 = one per CPU).
	Workers int
	// Poll is the idle wait between ErrNoWork claims (default 200ms).
	Poll time.Duration
	// OnProgress, when set, observes every Progress update of every
	// shard this runner executes (tests use it to induce deaths; the
	// CLI feeds its progress line from it).
	OnProgress func(shard int, p fleet.Progress)
	// Logf, when set, receives one line per task event.
	Logf func(format string, args ...any)
}

// maxClaimFailures bounds consecutive transport errors before the
// runner gives up on the coordinator.
const maxClaimFailures = 10

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) poll() time.Duration {
	if r.Poll > 0 {
		return r.Poll
	}
	return 200 * time.Millisecond
}

// Run claims and executes shards until the job is done (nil), the
// context ends, or the coordinator becomes unreachable.
func (r *Runner) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		task, err := r.Conn.Claim(r.ID)
		switch {
		case errors.Is(err, delivery.ErrDone):
			return nil
		case errors.Is(err, delivery.ErrNoWork):
			if err := sleep(ctx, r.poll()); err != nil {
				return err
			}
			continue
		case err != nil:
			failures++
			if failures >= maxClaimFailures {
				return err
			}
			if err := sleep(ctx, r.poll()); err != nil {
				return err
			}
			continue
		}
		failures = 0
		if err := r.runTask(ctx, task); err != nil {
			return err
		}
	}
}

// runTask executes one leased shard. Only a context cancellation
// propagates as an error; shard failures are reported to the
// coordinator (which owns the retry budget) and lost leases are simply
// abandoned.
func (r *Runner) runTask(ctx context.Context, task delivery.Task) error {
	lo, hi := task.Job.ShardRange(task.Shard)
	r.logf("runner %s: shard %d [%d,%d) attempt %d (resume %v)",
		r.ID, task.Shard, lo, hi, task.Attempt, task.Resume)

	var mu sync.Mutex
	beat := delivery.Beat{Shard: task.Shard, LastCheckpoint: -1}

	// The heartbeat goroutine renews the lease on the coordinator's
	// cadence and closes lost when the lease is gone.
	lost := make(chan struct{})
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	interval := time.Duration(task.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			mu.Lock()
			b := beat
			mu.Unlock()
			err := r.Conn.Heartbeat(r.ID, b)
			if errors.Is(err, delivery.ErrLeaseLost) || errors.Is(err, delivery.ErrDone) {
				close(lost)
				return
			}
			// A transport hiccup is survivable: the lease outlasts
			// several missed beats, and the next beat retries.
		}
	}()

	run := fleet.ShardRun{
		Job:     task.Job,
		Shard:   task.Shard,
		Resume:  task.Resume,
		Workers: r.Workers,
		Progress: func(p fleet.Progress) error {
			mu.Lock()
			beat.DevicesDone = p.Done
			beat.SimDoneMS = int64(p.SimDone())
			beat.LastCheckpoint = p.LastCheckpoint
			mu.Unlock()
			if r.OnProgress != nil {
				r.OnProgress(task.Shard, p)
			}
			select {
			case <-lost:
				return delivery.ErrLeaseLost
			default:
			}
			return ctx.Err()
		},
	}
	part, err := run.Run()
	close(hbStop)
	<-hbDone

	switch {
	case err == nil:
		cerr := r.Conn.Complete(r.ID, task.Shard, part)
		switch {
		case cerr == nil:
			r.logf("runner %s: shard %d complete", r.ID, task.Shard)
		case errors.Is(cerr, delivery.ErrLeaseLost), errors.Is(cerr, delivery.ErrDone):
			r.logf("runner %s: shard %d finished but lease was gone", r.ID, task.Shard)
		default:
			r.logf("runner %s: shard %d result undeliverable: %v", r.ID, task.Shard, cerr)
		}
		return nil
	case errors.Is(err, delivery.ErrLeaseLost):
		r.logf("runner %s: shard %d abandoned (lease lost)", r.ID, task.Shard)
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		r.logf("runner %s: shard %d failed: %v", r.ID, task.Shard, err)
		// Best effort: lease expiry covers us if this doesn't arrive.
		r.Conn.Fail(r.ID, task.Shard, err.Error())
		return nil
	}
}

// sleep waits d or until the context ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
