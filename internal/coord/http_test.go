package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// TestHTTPLoopbackRunnerDeath is the cluster rehearsal: a coordinator
// served over HTTP, two real runner loops dialing it, and one runner
// killed mid-shard right after its first epoch checkpoint lands. The
// survivor must pick up the forfeited lease, resume from the
// checkpoint, and the merged report must be byte-identical — full and
// canonical JSON — to an uninterrupted single-process run.
func TestHTTPLoopbackRunnerDeath(t *testing.T) {
	job := weekJob(t, 8, 2, t.TempDir())

	// The coordinator's clock is fake (lazy lease expiry reads
	// Options.Now on every claim/heartbeat), so the lease can never
	// expire under a healthy heartbeating runner no matter how slowly
	// the race detector runs this: wall time does not pass for the
	// coordinator at all. The victim's lease is expired deliberately,
	// by advancing the clock once the victim is provably dead.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	const lease = 2 * time.Second
	co := New(Options{Heartbeat: 50 * time.Millisecond, Lease: lease, Now: clk.Now, Logf: t.Logf})
	srv := httptest.NewServer(delivery.Handler(co))
	defer srv.Close()

	conn := delivery.DialHTTP(srv.URL)
	defer conn.Close()
	if err := conn.Submit(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	victimCtx, kill := context.WithCancel(context.Background())
	var killed atomic.Bool
	victim := &Runner{
		ID:   "victim",
		Conn: delivery.DialHTTP(srv.URL),
		// One worker: the admission window is small, so the abort lands
		// close to the checkpoint it was triggered by.
		Workers: 1,
		Poll:    10 * time.Millisecond,
		Logf:    t.Logf,
		OnProgress: func(shard int, p fleet.Progress) {
			if p.Checkpointed && !killed.Swap(true) {
				kill()
			}
		},
	}
	survivor := &Runner{
		ID:      "survivor",
		Conn:    delivery.DialHTTP(srv.URL),
		Workers: 2,
		Poll:    10 * time.Millisecond,
		Logf:    t.Logf,
	}

	// The victim runs alone until its first epoch checkpoint kills it,
	// holding a lease on a part-done shard. Only after its runner loop
	// has fully returned — no heartbeat can ever renew that lease again
	// — does the clock jump past the lease, and only then does the
	// survivor start: its first claims expire the orphaned lease and
	// resume the shard from the checkpoint. Every step is sequenced by
	// the test, not by real time.
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		victim.Run(victimCtx)
	}()
	select {
	case <-victimDone:
	case <-time.After(60 * time.Second):
		t.Fatal("victim never died: no checkpoint ever landed")
	}
	if !killed.Load() {
		t.Fatal("victim exited without being killed: the death path went unexercised")
	}
	clk.Advance(lease + time.Second)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivor.Run(context.Background())
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := co.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if !killed.Load() {
		t.Fatal("victim was never killed: the death path went unexercised")
	}
	st, err := conn.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	for _, s := range st.Shards {
		attempts += s.Attempts
	}
	if attempts <= job.Shards {
		t.Fatalf("total attempts %d: no shard was ever reassigned", attempts)
	}

	want := singleProcess(t, job)
	got, err := conn.Result(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if wj := mustJSON(t, want); !bytes.Equal(got, wj) {
		t.Fatalf("full JSON diverged after runner death:\n%s\nvs\n%s", got, wj)
	}
	gotC, err := conn.Result(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := want.CanonicalJSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC, wantC) {
		t.Fatal("canonical JSON diverged after runner death")
	}
}

// TestHTTPStatusAndErrors: the HTTP mechanism must map every sentinel
// faithfully and expose live status.
func TestHTTPStatusAndErrors(t *testing.T) {
	ctx := context.Background()
	co := New(Options{})
	srv := httptest.NewServer(delivery.Handler(co))
	defer srv.Close()
	conn := delivery.DialHTTP(srv.URL)
	defer conn.Close()

	if _, err := conn.Claim(ctx, "r"); err != delivery.ErrNoWork {
		t.Fatalf("claim before submit: got %v, want ErrNoWork", err)
	}
	if _, err := conn.Result(ctx, false); err != delivery.ErrNotDone {
		t.Fatalf("result before done: got %v, want ErrNotDone", err)
	}
	if err := conn.Heartbeat(ctx, "r", delivery.Beat{Shard: 0}); err != delivery.ErrLeaseLost {
		t.Fatalf("orphan heartbeat: got %v, want ErrLeaseLost", err)
	}

	job := dayJob(t, 4, 2)
	if err := conn.Submit(ctx, job); err != nil {
		t.Fatal(err)
	}
	// A byte-identical resubmit is idempotent (it is how a submitter's
	// retry after a lost reply stays safe); a different job is refused.
	if err := conn.Submit(ctx, job); err != nil {
		t.Fatalf("idempotent resubmit refused: %v", err)
	}
	if err := conn.Submit(ctx, dayJob(t, 8, 2)); err == nil {
		t.Fatal("conflicting second submit accepted")
	}
	st, err := conn.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Submitted || st.Devices != 4 || len(st.Shards) != 2 || st.SimTotalMS != int64(job.SimTotal()) {
		t.Fatalf("status after submit: %+v", st)
	}
}
