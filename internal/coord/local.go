package coord

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/coord/delivery"
	"repro/internal/fleet"
)

// LocalOptions tunes RunLocal.
type LocalOptions struct {
	// Runners is the number of concurrent runner loops (default 1).
	Runners int
	// Workers bounds each runner's simulation worker pool (0 = one per
	// CPU). With several runners on one machine, divide the CPUs.
	Workers int
	// Coordinator tunes the embedded coordinator (zero = defaults).
	Coordinator Options
	// OnProgress observes every Progress update of every runner.
	OnProgress func(runner string, shard int, p fleet.Progress)
	// Logf receives coordinator and runner event lines.
	Logf func(format string, args ...any)
}

// RunLocal executes a job entirely in this process: an embedded
// coordinator served over the in-process delivery mechanism, with
// opt.Runners runner loops claiming shards from it. It is the full
// coordinator/runner/delivery stack minus the network — a one-runner
// RunLocal of a one-shard job is the degenerate case whose report is
// byte-identical to a plain fleet.Run (asserted in tests), and
// "cinder-fleet -shards n -runners k" is this function.
func RunLocal(ctx context.Context, job fleet.Job, opt LocalOptions) (fleet.Report, error) {
	runners := opt.Runners
	if runners <= 0 {
		runners = 1
	}
	co := New(opt.Coordinator)
	if opt.Logf != nil && co.opts.Logf == nil {
		co.opts.Logf = opt.Logf
	}
	defer co.Close()
	srv := delivery.ServeInproc(co)
	defer srv.Close()

	if err := srv.Conn().Submit(ctx, job); err != nil {
		return fleet.Report{}, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		id := fmt.Sprintf("local-%d", i)
		r := &Runner{ID: id, Conn: srv.Conn(), Workers: opt.Workers, Logf: opt.Logf}
		if opt.OnProgress != nil {
			r.OnProgress = func(shard int, p fleet.Progress) { opt.OnProgress(id, shard, p) }
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(ctx)
		}()
	}
	rep, err := co.Wait(ctx)
	cancel()
	wg.Wait()
	return rep, err
}
