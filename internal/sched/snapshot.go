package sched

import (
	"fmt"

	"repro/internal/snap"
	"repro/internal/units"
)

// This file implements checkpoint/resume for the scheduler. A snapshot
// records the tick accounting, the round-robin cursor and a per-thread
// record for *every* thread in list order — including exited ones,
// which the scheduler deliberately keeps in its list (list length and
// position feed the round-robin arithmetic, so two runs whose lists
// differ would schedule differently even if the live populations
// matched).
//
// Restore runs against a scheduler whose owner rebuilt the device's
// construction-time threads. Those form a prefix of the snapshot's
// records (threads created mid-run always append after them) and are
// matched by name; every record past the prefix must be an Exited
// thread and is materialized as a tombstone — a list entry with the
// right name and state that the scheduler skips but counts, exactly as
// it would the genuinely exited thread.

// Snapshot serializes the scheduler's mutable state.
func (s *Scheduler) Snapshot(w *snap.Writer) {
	w.Section("sched")
	w.I64(int64(s.cpuPower))
	w.I64(s.busyTicks)
	w.I64(s.idleTicks)
	w.U64(uint64(s.rr))
	w.U64(uint64(len(s.threads)))
	for _, t := range s.threads {
		w.String(t.name)
		w.U64(uint64(t.state))
		w.I64(int64(t.wakeAt))
		w.I64(int64(t.cpuConsumed))
		w.I64(t.ticksRun)
		w.I64(t.throttledTicks)
	}
}

// Restore overlays a snapshot onto a freshly rebuilt scheduler (see the
// file comment for the matching rules). A snapshot record that is
// neither a rebuilt thread nor exited means the device had a live
// mid-run thread at the checkpoint — not a quiescent state — and fails
// loudly.
func (s *Scheduler) Restore(r *snap.Reader) error {
	r.Section("sched")
	cpuPower := units.Power(r.I64())
	busyTicks := r.I64()
	idleTicks := r.I64()
	rr := int(r.U64())
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if cpuPower != s.cpuPower {
		return fmt.Errorf("sched: restore: snapshot CPU power %v, rebuilt scheduler bills %v", cpuPower, s.cpuPower)
	}
	if n < len(s.threads) {
		return fmt.Errorf("sched: restore: snapshot has %d threads, rebuilt scheduler already has %d", n, len(s.threads))
	}
	for i := 0; i < n; i++ {
		name := r.String()
		state := State(r.U64())
		wakeAt := units.Time(r.I64())
		cpuConsumed := units.Energy(r.I64())
		ticksRun := r.I64()
		throttled := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		var t *Thread
		if i < len(s.threads) {
			t = s.threads[i]
			if t.name != name {
				return fmt.Errorf("sched: restore: thread %d is %q, snapshot has %q", i, t.name, name)
			}
		} else {
			if state != Exited {
				return fmt.Errorf("sched: restore: snapshot thread %d (%q) is %v and not part of the rebuilt "+
					"device; only exited mid-run threads can be restored as tombstones", i, name, state)
			}
			t = &Thread{name: name, sched: s}
			s.threads = append(s.threads, t)
		}
		t.state = state
		t.wakeAt = wakeAt
		t.cpuConsumed = cpuConsumed
		t.ticksRun = ticksRun
		t.throttledTicks = throttled
	}
	s.busyTicks = busyTicks
	s.idleTicks = idleTicks
	s.rr = rr
	s.runnable = 0
	for _, t := range s.threads {
		if t.state == Runnable {
			s.runnable++
		}
	}
	return nil
}
