// Package sched implements Cinder's energy-aware CPU scheduler (§3.2):
// a thread is allowed to run only when at least one of its energy
// reserves can pay for the scheduling quantum. Tying reserves to the
// scheduler prevents new spending, "which is sufficient to throttle
// energy consumption".
//
// The scheduler is a single-CPU round-robin over runnable, payable
// threads, advanced once per simulation tick. Each scheduled tick bills
// the CPU's active power for one tick to the thread's first reserve that
// can cover it.
package sched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// State is a thread's scheduling state.
type State uint8

const (
	// Runnable threads compete for the CPU.
	Runnable State = iota
	// Sleeping threads wake at a set time.
	Sleeping
	// Blocked threads wait for an explicit Wake (e.g. netd holding a
	// sender until the radio pool fills, §5.5.2).
	Blocked
	// Exited threads never run again.
	Exited
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Sleeping:
		return "sleeping"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Runner is the behaviour a thread executes. Step is called once for
// every tick the thread is scheduled; the thread may change its own
// state (Sleep, Block, Exit) from within Step. A Runner that does
// nothing models a CPU-bound spinner.
type Runner interface {
	Step(now units.Time, th *Thread)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(now units.Time, th *Thread)

// Step implements Runner.
func (f RunnerFunc) Step(now units.Time, th *Thread) { f(now, th) }

// Thread is a schedulable principal. Threads are kernel objects; their
// energy identity is the ordered list of reserves they may draw from
// (§3.2: "all threads draw from one or more energy reserves").
type Thread struct {
	kobj.Base
	name     string
	priv     label.Priv
	reserves []*core.Reserve
	state    State
	wakeAt   units.Time
	runner   Runner
	sched    *Scheduler

	// Accounting read by experiments (the data behind Fig. 9/12).
	cpuConsumed    units.Energy
	ticksRun       int64
	throttledTicks int64
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Priv returns the thread's privilege set.
func (t *Thread) Priv() label.Priv { return t.priv }

// State returns the scheduling state.
func (t *Thread) State() State { return t.state }

// EachReserve calls fn for each reserve in draw-list order without
// allocating; fn returning false stops the iteration early.
func (t *Thread) EachReserve(fn func(*core.Reserve) bool) {
	for _, r := range t.reserves {
		if !fn(r) {
			return
		}
	}
}

// Reserves returns the thread's draw list (index 0 is the active
// reserve).
func (t *Thread) Reserves() []*core.Reserve {
	out := make([]*core.Reserve, len(t.reserves))
	copy(out, t.reserves)
	return out
}

// SetActiveReserve replaces the draw list with the single given reserve,
// the self_set_active_reserve syscall of Fig. 5. It counts as scheduler
// activity: a throttled thread pointed at a fresh reserve may be payable
// at once, so any closed-form skip of its quanta must be re-derived.
func (t *Thread) SetActiveReserve(r *core.Reserve) {
	t.reserves = []*core.Reserve{r}
	t.sched.notifyActivity()
}

// AddReserve appends a fallback reserve to the draw list. Like
// SetActiveReserve, it fires the scheduler's activity hook.
func (t *Thread) AddReserve(r *core.Reserve) {
	t.reserves = append(t.reserves, r)
	t.sched.notifyActivity()
}

// ActiveReserve returns the first reserve, or nil if none.
func (t *Thread) ActiveReserve() *core.Reserve {
	if len(t.reserves) == 0 {
		return nil
	}
	return t.reserves[0]
}

// setState transitions the thread, maintaining the scheduler's runnable
// count and firing its activity hook on transitions into Runnable.
func (t *Thread) setState(s State) {
	if t.state == s {
		return
	}
	if t.sched != nil {
		if t.state == Runnable {
			t.sched.runnable--
		}
		if s == Runnable {
			t.sched.runnable++
		}
	}
	t.state = s
	if s == Runnable && t.sched != nil {
		t.sched.notifyActivity()
	}
}

// Sleep puts the thread to sleep until the given absolute time.
func (t *Thread) Sleep(until units.Time) {
	if t.state == Exited {
		return
	}
	t.setState(Sleeping)
	t.wakeAt = until
}

// Block parks the thread until Wake is called.
func (t *Thread) Block() {
	if t.state == Exited {
		return
	}
	t.setState(Blocked)
}

// Wake makes a sleeping or blocked thread runnable.
func (t *Thread) Wake() {
	if t.state == Exited {
		return
	}
	t.setState(Runnable)
}

// Exit permanently stops the thread.
func (t *Thread) Exit() { t.setState(Exited) }

// CPUConsumed returns the total CPU energy billed to this thread.
func (t *Thread) CPUConsumed() units.Energy { return t.cpuConsumed }

// TicksRun returns the number of ticks the thread was scheduled.
func (t *Thread) TicksRun() int64 { return t.ticksRun }

// ThrottledTicks returns the number of ticks the thread was runnable but
// could not pay for the CPU — the visible effect of an empty reserve.
func (t *Thread) ThrottledTicks() int64 { return t.throttledTicks }

// payable returns the first reserve that can cover cost, or nil.
func (t *Thread) payable(cost units.Energy) *core.Reserve {
	for _, r := range t.reserves {
		if r.CanConsume(t.priv, cost) {
			return r
		}
	}
	return nil
}

// String renders the thread for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("thread(%q id=%d %v)", t.name, t.ObjectID(), t.state)
}
