package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// rig bundles the pieces every scheduler test needs.
type rig struct {
	tbl   *kobj.Table
	root  *kobj.Container
	graph *core.Graph
	sched *Scheduler
}

func newRig() *rig {
	tbl := kobj.NewTable()
	root := kobj.NewContainer(tbl, nil, "root", label.Public())
	g := core.NewGraph(tbl, root, label.Public(), core.Config{DecayHalfLife: -1})
	return &rig{tbl: tbl, root: root, graph: g,
		sched: New(tbl, units.Milliwatts(137))}
}

// reserveWith creates a reserve holding the given energy.
func (r *rig) reserveWith(name string, e units.Energy) *core.Reserve {
	res := r.graph.NewReserve(r.root, name, label.Public(), core.ReserveOpts{})
	if e > 0 {
		if err := r.graph.Transfer(label.Priv{}, r.graph.Battery(), res, e); err != nil {
			panic(err)
		}
	}
	return res
}

// run advances the scheduler n 1 ms ticks starting at time start.
func (r *rig) run(start units.Time, n int) {
	for i := 0; i < n; i++ {
		r.sched.Tick(start+units.Time(i), units.Millisecond)
	}
}

func TestEmptySchedulerIdles(t *testing.T) {
	r := newRig()
	if got := r.sched.Tick(0, units.Millisecond); got != nil {
		t.Fatalf("Tick on empty scheduler ran %v", got)
	}
	if r.sched.IdleTicks() != 1 {
		t.Fatal("idle tick not recorded")
	}
}

func TestThreadRunsWhileFunded(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(r.root, "spin", label.Public(), label.Priv{}, nil, res)
	r.run(0, 1000) // 1 s at 137 mW = 137 mJ
	if th.TicksRun() != 1000 {
		t.Fatalf("ticks = %d, want 1000", th.TicksRun())
	}
	if th.CPUConsumed() != 137*units.Millijoule {
		t.Fatalf("consumed = %v, want 137 mJ", th.CPUConsumed())
	}
	if r.graph.ConservationError() != 0 {
		t.Fatalf("conservation error %v", r.graph.ConservationError())
	}
}

func TestEmptyReserveThrottles(t *testing.T) {
	// §3.2: "threads that have depleted their energy reserves cannot
	// run".
	r := newRig()
	res := r.reserveWith("r", 137*units.Microjoule) // exactly one tick
	th := r.sched.NewThread(r.root, "spin", label.Public(), label.Priv{}, nil, res)
	r.run(0, 10)
	if th.TicksRun() != 1 {
		t.Fatalf("ticks = %d, want 1", th.TicksRun())
	}
	if th.ThrottledTicks() != 9 {
		t.Fatalf("throttled = %d, want 9", th.ThrottledTicks())
	}
	st, _ := res.Stats(label.Priv{})
	if st.ConsumeFailures == 0 {
		t.Fatal("throttling did not record consume failures")
	}
}

func TestHalfRateTapGivesHalfUtilization(t *testing.T) {
	// The Fig. 9 configuration: a 68.5 mW tap funds half the 137 mW CPU,
	// so the thread runs ≈50 % of ticks.
	r := newRig()
	res := r.reserveWith("r", 0)
	tap, err := r.graph.NewTap(r.root, "t", label.Priv{}, r.graph.Battery(), res, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := tap.SetRate(label.Priv{}, units.Microwatt*68500); err != nil {
		t.Fatal(err)
	}
	th := r.sched.NewThread(r.root, "spin", label.Public(), label.Priv{}, nil, res)
	for i := 0; i < 10000; i++ { // 10 s
		now := units.Time(i)
		if i%10 == 0 {
			r.graph.Flow(10 * units.Millisecond)
		}
		r.sched.Tick(now, units.Millisecond)
	}
	util := float64(th.TicksRun()) / 10000
	if util < 0.48 || util > 0.52 {
		t.Fatalf("utilization = %.3f, want ≈0.50", util)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two fully funded spinners share the CPU 50/50.
	r := newRig()
	a := r.sched.NewThread(r.root, "a", label.Public(), label.Priv{}, nil, r.reserveWith("ra", units.Joule))
	b := r.sched.NewThread(r.root, "b", label.Public(), label.Priv{}, nil, r.reserveWith("rb", units.Joule))
	r.run(0, 1000)
	if a.TicksRun() != 500 || b.TicksRun() != 500 {
		t.Fatalf("ticks = %d/%d, want 500/500", a.TicksRun(), b.TicksRun())
	}
}

func TestIsolationFromForks(t *testing.T) {
	// §6.1's core claim: B spawning children funded from B's own share
	// must not reduce A's share. A and B each get a 68.5 mW tap; B's
	// children get taps carved from B's reserve.
	r := newRig()
	mkTapped := func(name string, src *core.Reserve, rate units.Power) *core.Reserve {
		res := r.graph.NewReserve(r.root, name, label.Public(), core.ReserveOpts{})
		tap, err := r.graph.NewTap(r.root, name+"-tap", label.Priv{}, src, res, label.Public())
		if err != nil {
			t.Fatal(err)
		}
		if err := tap.SetRate(label.Priv{}, rate); err != nil {
			t.Fatal(err)
		}
		return res
	}
	ra := mkTapped("ra", r.graph.Battery(), units.Microwatt*68500)
	rb := mkTapped("rb", r.graph.Battery(), units.Microwatt*68500)
	a := r.sched.NewThread(r.root, "a", label.Public(), label.Priv{}, nil, ra)
	r.sched.NewThread(r.root, "b", label.Public(), label.Priv{}, nil, rb)

	tick := func(n int, start units.Time) {
		for i := 0; i < n; i++ {
			now := start + units.Time(i)
			if now%10 == 0 {
				r.graph.Flow(10 * units.Millisecond)
			}
			r.sched.Tick(now, units.Millisecond)
		}
	}
	tick(5000, 0)
	aBefore := a.CPUConsumed()

	// B "forks" two children, each drawing via a quarter-rate tap from
	// B's reserve (the Fig. 9 wiring).
	rb1 := mkTapped("rb1", rb, units.Microwatt*17125)
	rb2 := mkTapped("rb2", rb, units.Microwatt*17125)
	r.sched.NewThread(r.root, "b1", label.Public(), label.Priv{}, nil, rb1)
	r.sched.NewThread(r.root, "b2", label.Public(), label.Priv{}, nil, rb2)

	tick(5000, 5000)
	aDelta := a.CPUConsumed() - aBefore

	// A must keep its ~50 % share: 5 s × 68.5 mW ≈ 342.5 mJ.
	want := units.Energy(342500)
	if aDelta < want*95/100 || aDelta > want*105/100 {
		t.Fatalf("A consumed %v in second half, want ≈%v (isolation broken)", aDelta, want)
	}
}

func TestSleepAndWake(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	var th *Thread
	th = r.sched.NewThread(r.root, "sleeper", label.Public(), label.Priv{},
		RunnerFunc(func(now units.Time, t *Thread) {
			t.Sleep(now + 10*units.Millisecond)
		}), res)
	r.run(0, 100)
	// Runs 1 tick, sleeps 10 ms (9 idle ticks between runs with the
	// wake check at tick start), repeating: ≈10 runs in 100 ticks.
	if th.TicksRun() < 8 || th.TicksRun() > 12 {
		t.Fatalf("sleeper ran %d ticks, want ≈10", th.TicksRun())
	}
	if th.State() != Sleeping {
		t.Fatalf("state = %v, want sleeping", th.State())
	}
}

func TestBlockUntilWake(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(r.root, "blocked", label.Public(), label.Priv{}, nil, res)
	th.Block()
	r.run(0, 50)
	if th.TicksRun() != 0 {
		t.Fatal("blocked thread ran")
	}
	th.Wake()
	r.run(50, 50)
	if th.TicksRun() != 50 {
		t.Fatalf("woken thread ran %d ticks, want 50", th.TicksRun())
	}
}

func TestExitIsPermanent(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(r.root, "x", label.Public(), label.Priv{}, nil, res)
	th.Exit()
	th.Wake() // must not resurrect
	r.run(0, 10)
	if th.TicksRun() != 0 {
		t.Fatal("exited thread ran")
	}
	if th.State() != Exited {
		t.Fatalf("state = %v", th.State())
	}
}

func TestThreadDeletedViaContainer(t *testing.T) {
	r := newRig()
	c := kobj.NewContainer(r.tbl, r.root, "proc", label.Public())
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(c, "t", label.Public(), label.Priv{}, nil, res)
	if err := r.tbl.Delete(c.ObjectID()); err != nil {
		t.Fatal(err)
	}
	r.run(0, 10)
	if th.TicksRun() != 0 {
		t.Fatal("deleted thread ran")
	}
}

func TestFallbackReserve(t *testing.T) {
	// A thread with two reserves drains the first, then the second
	// (§3.2: threads draw from one or more reserves).
	r := newRig()
	r1 := r.reserveWith("r1", 137*5*units.Microjoule) // 5 ticks
	r2 := r.reserveWith("r2", 137*5*units.Microjoule)
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, r1, r2)
	r.run(0, 20)
	if th.TicksRun() != 10 {
		t.Fatalf("ticks = %d, want 10", th.TicksRun())
	}
	s1, _ := r1.Stats(label.Priv{})
	s2, _ := r2.Stats(label.Priv{})
	if s1.Consumed != s2.Consumed {
		t.Fatalf("reserve draw split %v/%v, want equal", s1.Consumed, s2.Consumed)
	}
}

func TestSetActiveReserve(t *testing.T) {
	// energywrap's child switches to the sandbox reserve before exec
	// (Fig. 5).
	r := newRig()
	parentRes := r.reserveWith("parent", units.Joule)
	sandbox := r.reserveWith("sandbox", 137*3*units.Microjoule)
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, parentRes)
	th.SetActiveReserve(sandbox)
	r.run(0, 10)
	if th.TicksRun() != 3 {
		t.Fatalf("ticks = %d, want 3 (sandbox only)", th.TicksRun())
	}
	ps, _ := parentRes.Stats(label.Priv{})
	if ps.Consumed != 0 {
		t.Fatal("switched thread still billed parent reserve")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", 137*500*units.Microjoule) // 500 ticks
	r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, res)
	r.run(0, 1000)
	if got := r.sched.Utilization(); got < 49 || got > 51 {
		t.Fatalf("Utilization = %.1f%%, want ≈50%%", got)
	}
	if r.sched.BusyTicks()+r.sched.IdleTicks() != 1000 {
		t.Fatal("busy+idle != total ticks")
	}
}
