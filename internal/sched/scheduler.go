package sched

import (
	"repro/internal/core"
	"repro/internal/kobj"
	"repro/internal/label"
	"repro/internal/units"
)

// Scheduler is the single-CPU energy-aware round-robin scheduler.
type Scheduler struct {
	table    *kobj.Table
	cpuPower units.Power
	threads  []*Thread
	rr       int

	// runnable counts threads in state Runnable, maintained across every
	// state transition so the kernel can detect quiescence in O(1).
	runnable int
	// onActivity, when set, is invoked whenever a thread is created or
	// becomes runnable. The kernel hooks it to resume deferred periodic
	// work the moment the CPU has something to do again.
	onActivity func()

	// Accounting for the power model: busy ticks draw cpuPower, idle
	// ticks draw nothing beyond the device baseline.
	busyTicks int64
	idleTicks int64
	// carry holds sub-µJ residue of the per-tick CPU cost.
	costCarryDT units.Time
	tickCost    units.Energy
}

// New returns a scheduler billing the given active-CPU power (the
// profile's 137 mW for the Dream).
func New(table *kobj.Table, cpuPower units.Power) *Scheduler {
	return &Scheduler{table: table, cpuPower: cpuPower}
}

// Reset reinitializes the scheduler in place to the state New would
// produce, keeping the thread list's backing array. All threads of the
// previous life are forgotten; the caller discards them wholesale (the
// fleet runner recycling a kernel).
func (s *Scheduler) Reset(cpuPower units.Power) {
	s.cpuPower = cpuPower
	clear(s.threads)
	s.threads = s.threads[:0]
	s.rr = 0
	s.runnable = 0
	s.onActivity = nil
	s.busyTicks = 0
	s.idleTicks = 0
	s.costCarryDT = 0
	s.tickCost = 0
}

// CPUPower returns the active CPU power being billed.
func (s *Scheduler) CPUPower() units.Power { return s.cpuPower }

// NewThread creates a thread in the given container, drawing from the
// given reserves in order. A nil runner yields a pure spinner.
func (s *Scheduler) NewThread(parent *kobj.Container, name string, lbl label.Label, p label.Priv, runner Runner, reserves ...*core.Reserve) *Thread {
	t := &Thread{
		name:     name,
		priv:     p,
		reserves: reserves,
		state:    Runnable,
		runner:   runner,
		sched:    s,
	}
	t.OnRelease(func() { t.setState(Exited) })
	s.table.Register(&t.Base, kobj.KindThread, lbl, parent, t)
	s.threads = append(s.threads, t)
	s.runnable++
	s.notifyActivity()
	return t
}

// SetActivityHook installs fn to be called whenever a thread is created
// or transitions into Runnable. Pass nil to remove.
func (s *Scheduler) SetActivityHook(fn func()) { s.onActivity = fn }

func (s *Scheduler) notifyActivity() {
	if s.onActivity != nil {
		s.onActivity()
	}
}

// RunnableCount returns the number of threads currently in Runnable
// state (including energy-throttled ones, which still need the CPU
// scheduled to retry).
func (s *Scheduler) RunnableCount() int { return s.runnable }

// NextWake returns the earliest wake time among sleeping threads. ok is
// false when no thread is sleeping. Blocked threads are excluded: they
// wake only through an explicit Wake, which fires the activity hook.
func (s *Scheduler) NextWake() (units.Time, bool) {
	var at units.Time
	ok := false
	for _, t := range s.threads {
		if t.state != Sleeping {
			continue
		}
		if !ok || t.wakeAt < at {
			at, ok = t.wakeAt, true
		}
	}
	return at, ok
}

// AddIdleTicks records n quanta the CPU provably idled without Tick
// being called, the closed-form accounting for quiescent intervals the
// kernel skipped. Utilization and tick totals stay identical to a
// tick-by-tick run.
func (s *Scheduler) AddIdleTicks(n int64) {
	if n > 0 {
		s.idleTicks += n
	}
}

// Threads returns a copy of the scheduler's threads in creation order.
// Iteration-only callers should prefer EachThread, which does not
// allocate.
func (s *Scheduler) Threads() []*Thread {
	out := make([]*Thread, len(s.threads))
	copy(out, s.threads)
	return out
}

// EachThread calls fn for every thread in creation order without
// allocating. fn must not create threads.
func (s *Scheduler) EachThread(fn func(*Thread)) {
	for _, t := range s.threads {
		fn(t)
	}
}

// Tick advances the scheduler by one quantum of length dt at simulated
// time now: it wakes due sleepers, then scheduling proceeds round-robin
// from the thread after the last one that ran, looking for a thread that
// is runnable and whose reserves can pay for the quantum. The chosen
// thread is billed and stepped. If no thread can run the CPU idles.
//
// It returns the thread that ran, or nil if the CPU idled.
func (s *Scheduler) Tick(now units.Time, dt units.Time) *Thread {
	cost := s.quantumCost(dt)
	for _, t := range s.threads {
		if t.state == Sleeping && now >= t.wakeAt {
			t.setState(Runnable)
		}
	}
	n := len(s.threads)
	if n == 0 {
		s.idleTicks++
		return nil
	}
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		t := s.threads[idx]
		if t.state != Runnable {
			continue
		}
		r := t.payable(cost)
		if r == nil {
			// Runnable but energy-throttled: record the failed
			// consumption attempt (it shows up in reserve stats too).
			if ar := t.ActiveReserve(); ar != nil {
				_ = ar.Consume(t.priv, cost) // records ConsumeFailures
			}
			t.throttledTicks++
			continue
		}
		if err := r.Consume(t.priv, cost); err != nil {
			// Raced with the probe only in pathological label setups;
			// treat as throttled.
			t.throttledTicks++
			continue
		}
		t.cpuConsumed += cost
		t.ticksRun++
		s.busyTicks++
		s.rr = (idx + 1) % n
		if t.runner != nil {
			t.runner.Step(now, t)
		}
		return t
	}
	s.idleTicks++
	return nil
}

// quantumCost returns the CPU energy for one quantum, memoized per dt.
func (s *Scheduler) quantumCost(dt units.Time) units.Energy {
	if dt != s.costCarryDT {
		s.costCarryDT = dt
		s.tickCost = s.cpuPower.Over(dt)
	}
	return s.tickCost
}

// BusyTicks returns the number of quanta the CPU executed a thread.
func (s *Scheduler) BusyTicks() int64 { return s.busyTicks }

// IdleTicks returns the number of quanta the CPU idled.
func (s *Scheduler) IdleTicks() int64 { return s.idleTicks }

// Utilization returns busy/(busy+idle) as a percentage, 0 if never
// ticked.
func (s *Scheduler) Utilization() float64 {
	total := s.busyTicks + s.idleTicks
	if total == 0 {
		return 0
	}
	return 100 * float64(s.busyTicks) / float64(total)
}
