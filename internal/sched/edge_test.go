package sched

import (
	"strings"
	"testing"

	"repro/internal/label"
	"repro/internal/units"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Runnable: "runnable",
		Sleeping: "sleeping",
		Blocked:  "blocked",
		Exited:   "exited",
		State(9): "state(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestThreadString(t *testing.T) {
	r := newRig()
	th := r.sched.NewThread(r.root, "worker", label.Public(), label.Priv{}, nil)
	s := th.String()
	if !strings.Contains(s, "worker") || !strings.Contains(s, "runnable") {
		t.Fatalf("String() = %q", s)
	}
}

func TestReservesReturnsCopy(t *testing.T) {
	r := newRig()
	r1 := r.reserveWith("r1", units.Joule)
	r2 := r.reserveWith("r2", units.Joule)
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, r1)
	got := th.Reserves()
	if len(got) != 1 || got[0] != r1 {
		t.Fatalf("Reserves = %v", got)
	}
	// Mutating the copy must not affect the thread.
	got[0] = r2
	if th.ActiveReserve() != r1 {
		t.Fatal("Reserves returned aliased slice")
	}
	th.AddReserve(r2)
	if len(th.Reserves()) != 2 {
		t.Fatal("AddReserve failed")
	}
}

func TestActiveReserveNilWhenEmpty(t *testing.T) {
	r := newRig()
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil)
	if th.ActiveReserve() != nil {
		t.Fatal("empty draw list has an active reserve")
	}
	// A thread with no reserves never runs but never panics.
	r.run(0, 10)
	if th.TicksRun() != 0 {
		t.Fatal("reserveless thread ran")
	}
}

func TestSleepOnExitedThreadIgnored(t *testing.T) {
	r := newRig()
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil,
		r.reserveWith("r", units.Joule))
	th.Exit()
	th.Sleep(100)
	th.Block()
	if th.State() != Exited {
		t.Fatalf("state = %v after post-exit transitions", th.State())
	}
}

func TestRunnerExitsMidStep(t *testing.T) {
	// A runner that exits in its first step runs exactly once.
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	var th *Thread
	th = r.sched.NewThread(r.root, "oneshot", label.Public(), label.Priv{},
		RunnerFunc(func(now units.Time, t *Thread) { t.Exit() }), res)
	r.run(0, 100)
	if th.TicksRun() != 1 {
		t.Fatalf("ticks = %d, want 1", th.TicksRun())
	}
}

func TestCPUPowerAccessor(t *testing.T) {
	r := newRig()
	if r.sched.CPUPower() != units.Milliwatts(137) {
		t.Fatalf("CPUPower = %v", r.sched.CPUPower())
	}
}

func TestQuantumCostChangesWithTickLength(t *testing.T) {
	// Switching tick lengths mid-run recomputes the quantum cost.
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, res)
	r.sched.Tick(0, units.Millisecond)
	r.sched.Tick(1, 10*units.Millisecond)
	want := units.Milliwatts(137).Over(units.Millisecond) +
		units.Milliwatts(137).Over(10*units.Millisecond)
	if th.CPUConsumed() != want {
		t.Fatalf("consumed %v, want %v", th.CPUConsumed(), want)
	}
}

func TestThreadsAccessor(t *testing.T) {
	r := newRig()
	a := r.sched.NewThread(r.root, "a", label.Public(), label.Priv{}, nil)
	b := r.sched.NewThread(r.root, "b", label.Public(), label.Priv{}, nil)
	ths := r.sched.Threads()
	if len(ths) != 2 || ths[0] != a || ths[1] != b {
		t.Fatalf("Threads = %v", ths)
	}
	// EachThread visits the same sequence without copying, and must not
	// allocate — it exists for hot-ish diagnostic paths.
	var seen []*Thread
	r.sched.EachThread(func(th *Thread) { seen = append(seen, th) })
	if len(seen) != 2 || seen[0] != a || seen[1] != b {
		t.Fatalf("EachThread = %v", seen)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.sched.EachThread(func(*Thread) {})
	}); n != 0 {
		t.Fatalf("EachThread allocates %v times, want 0", n)
	}
}

func TestRoundRobinSkipsSleepersWithoutCharge(t *testing.T) {
	// A sleeping thread costs nothing; the runnable one gets every
	// tick.
	r := newRig()
	ra := r.reserveWith("ra", units.Joule)
	rb := r.reserveWith("rb", units.Joule)
	a := r.sched.NewThread(r.root, "a", label.Public(), label.Priv{}, nil, ra)
	b := r.sched.NewThread(r.root, "b", label.Public(), label.Priv{}, nil, rb)
	b.Sleep(units.Hour)
	r.run(0, 100)
	if a.TicksRun() != 100 {
		t.Fatalf("a ran %d", a.TicksRun())
	}
	if b.TicksRun() != 0 {
		t.Fatalf("b ran %d while sleeping", b.TicksRun())
	}
	sb, _ := rb.Stats(label.Priv{})
	if sb.Consumed != 0 {
		t.Fatal("sleeping thread was billed")
	}
}

func TestDeadReserveTreatedAsUnpayable(t *testing.T) {
	r := newRig()
	res := r.reserveWith("r", units.Joule)
	th := r.sched.NewThread(r.root, "t", label.Public(), label.Priv{}, nil, res)
	if err := r.tbl.Delete(res.ObjectID()); err != nil {
		t.Fatal(err)
	}
	r.run(0, 10)
	if th.TicksRun() != 0 {
		t.Fatal("thread ran on a dead reserve")
	}
}
