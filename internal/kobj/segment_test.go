package kobj

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/label"
)

func segRig() (*Table, *Container) {
	tbl := NewTable()
	return tbl, NewContainer(tbl, nil, "root", label.Public())
}

func TestSegmentReadWrite(t *testing.T) {
	tbl, root := segRig()
	s := NewSegment(tbl, root, 16, label.Public())
	if s.Size() != 16 {
		t.Fatalf("Size = %d", s.Size())
	}
	if _, err := s.Write(label.Priv{}, 4, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := s.Read(label.Priv{}, 4, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("abcd")) {
		t.Fatalf("read %q", buf)
	}
}

func TestSegmentBounds(t *testing.T) {
	tbl, root := segRig()
	s := NewSegment(tbl, root, 8, label.Public())
	if _, err := s.Write(label.Priv{}, 6, []byte("toolong")); !errors.Is(err, ErrSegmentBounds) {
		t.Fatalf("overrun err = %v", err)
	}
	if _, err := s.Read(label.Priv{}, 9, make([]byte, 1)); !errors.Is(err, ErrSegmentBounds) {
		t.Fatalf("oob read err = %v", err)
	}
	if _, err := s.Read(label.Priv{}, -1, make([]byte, 1)); !errors.Is(err, ErrSegmentBounds) {
		t.Fatalf("negative read err = %v", err)
	}
}

func TestSegmentLabels(t *testing.T) {
	tbl, root := segRig()
	const cat label.Category = 3
	owner := label.NewPriv(cat)
	s := NewSegment(tbl, root, 8, label.Public().With(cat, label.Level2))
	var stranger label.Priv
	if _, err := s.Read(stranger, 0, make([]byte, 1)); err == nil {
		t.Fatal("stranger read protected segment")
	}
	if _, err := s.Write(stranger, 0, []byte{1}); err == nil {
		t.Fatal("stranger wrote protected segment")
	}
	if _, err := s.Write(owner, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentResizePreserves(t *testing.T) {
	tbl, root := segRig()
	s := NewSegment(tbl, root, 4, label.Public())
	if _, err := s.Write(label.Priv{}, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	s.Resize(8)
	buf := make([]byte, 4)
	if _, err := s.Read(label.Priv{}, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("after grow: %q", buf)
	}
	s.Resize(2)
	if s.Size() != 2 {
		t.Fatalf("after shrink: %d", s.Size())
	}
}

func TestAddressSpaceMapLookup(t *testing.T) {
	tbl, root := segRig()
	as := NewAddressSpace(tbl, root, label.Public())
	text := NewSegment(tbl, root, 0x1000, label.Public())
	heap := NewSegment(tbl, root, 0x2000, label.Public())
	if err := as.Map(label.Priv{}, 0x4000, text, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(label.Priv{}, 0x8000, heap, true); err != nil {
		t.Fatal(err)
	}
	m, ok := as.Lookup(0x8123)
	if !ok || m.Segment != heap || !m.Writable {
		t.Fatalf("Lookup(0x8123) = %+v, %v", m, ok)
	}
	if _, ok := as.Lookup(0x3fff); ok {
		t.Fatal("unmapped address resolved")
	}
	if _, ok := as.Lookup(0x5000); ok {
		t.Fatal("address past text resolved")
	}
	if as.ResidentBytes() != 0x3000 {
		t.Fatalf("ResidentBytes = %#x", as.ResidentBytes())
	}
}

func TestAddressSpaceOverlapRejected(t *testing.T) {
	tbl, root := segRig()
	as := NewAddressSpace(tbl, root, label.Public())
	a := NewSegment(tbl, root, 0x1000, label.Public())
	b := NewSegment(tbl, root, 0x1000, label.Public())
	if err := as.Map(label.Priv{}, 0x4000, a, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(label.Priv{}, 0x4800, b, false); !errors.Is(err, ErrMapped) {
		t.Fatalf("overlap err = %v", err)
	}
}

func TestAddressSpaceUnmap(t *testing.T) {
	tbl, root := segRig()
	as := NewAddressSpace(tbl, root, label.Public())
	a := NewSegment(tbl, root, 0x1000, label.Public())
	if err := as.Map(label.Priv{}, 0x4000, a, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(label.Priv{}, 0x4000); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.Lookup(0x4000); ok {
		t.Fatal("mapping survived unmap")
	}
	if err := as.Unmap(label.Priv{}, 0x4000); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestMapWritableRequiresSegmentModify(t *testing.T) {
	tbl, root := segRig()
	const cat label.Category = 6
	as := NewAddressSpace(tbl, root, label.Public())
	protected := NewSegment(tbl, root, 0x1000, label.Public().With(cat, label.Level2))
	reader := label.Priv{}.WithClearance(label.Level3) // can observe, not modify
	if err := as.Map(reader, 0x1000, protected, true); err == nil {
		t.Fatal("writable mapping of protected segment allowed")
	}
	if err := as.Map(reader, 0x1000, protected, false); err != nil {
		t.Fatalf("read-only mapping rejected: %v", err)
	}
}
