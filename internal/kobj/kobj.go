// Package kobj implements the HiStar-style kernel object layer Cinder
// builds on (§3.1): every first-class object has an ID and a security
// label, and objects live inside containers that provide hierarchical
// control over deallocation — an object not referenced by a live
// container is garbage and is torn down, just as the paper describes for
// reserves whose containing page taps are dropped (§5.2).
//
// The package is deliberately minimal: it knows nothing about energy.
// Reserves and taps (internal/core) register themselves here like any
// other kernel object and receive deallocation callbacks when an
// ancestor container is deleted.
package kobj

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/label"
	"repro/internal/snap"
)

// ID names a kernel object uniquely within one Table. ID 0 is never
// allocated ("nil object").
type ID uint64

// NilID is the zero, never-allocated object ID.
const NilID ID = 0

// Kind enumerates the first-class object types of the Cinder kernel.
type Kind uint8

const (
	KindContainer Kind = iota
	KindThread
	KindGate
	KindReserve
	KindTap
	KindSegment
	KindDevice
)

var kindNames = [...]string{
	KindContainer: "container",
	KindThread:    "thread",
	KindGate:      "gate",
	KindReserve:   "reserve",
	KindTap:       "tap",
	KindSegment:   "segment",
	KindDevice:    "device",
}

// String returns the kind's lower-case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Object is the interface all kernel objects implement.
type Object interface {
	// ObjectID returns the object's table-unique ID.
	ObjectID() ID
	// ObjectKind returns the object's kind.
	ObjectKind() Kind
	// Label returns the object's security label.
	Label() label.Label
	// released is called exactly once when the object is deallocated,
	// either directly or because an ancestor container was deleted.
	// Implementations unhook themselves from subsystem state (e.g. a tap
	// stops flowing).
	released()
}

// Base provides the common identity fields for kernel objects and a
// default released hook. Embed it and call Table.Register.
type Base struct {
	id    ID
	kind  Kind
	lbl   label.Label
	onRel func()
}

// ObjectID implements Object.
func (b *Base) ObjectID() ID { return b.id }

// ObjectKind implements Object.
func (b *Base) ObjectKind() Kind { return b.kind }

// Label implements Object.
func (b *Base) Label() label.Label { return b.lbl }

// SetLabel replaces the object's label. The caller is responsible for
// the access-control check.
func (b *Base) SetLabel(l label.Label) { b.lbl = l }

// OnRelease registers a hook invoked when the object is deallocated.
// Only one hook is supported; registering again replaces it.
func (b *Base) OnRelease(fn func()) { b.onRel = fn }

func (b *Base) released() {
	if b.onRel != nil {
		b.onRel()
	}
}

// Errors returned by table and container operations.
var (
	ErrNotFound    = errors.New("kobj: no such object")
	ErrDead        = errors.New("kobj: object has been deallocated")
	ErrKind        = errors.New("kobj: object has unexpected kind")
	ErrNotEmptyRef = errors.New("kobj: object still referenced")
)

// Table allocates IDs and tracks all live objects of one kernel
// instance.
type Table struct {
	next ID
	objs map[ID]Object
	// parent maps each object to the container holding it. The root
	// container has no entry.
	parent map[ID]*Container
}

// NewTable returns an empty object table.
func NewTable() *Table {
	return &Table{
		next:   1,
		objs:   make(map[ID]Object),
		parent: make(map[ID]*Container),
	}
}

// Reset empties the table in place, reusing its maps, so ID allocation
// restarts at 1 exactly as in a fresh table. No release hooks run: the
// caller is discarding the entire previous object population at once
// (the fleet runner recycling a kernel), not deallocating objects.
func (t *Table) Reset() {
	t.next = 1
	clear(t.objs)
	clear(t.parent)
}

// Snapshot serializes the table's allocation state: the next ID and the
// live object census. Objects themselves are not serialized — restore
// runs against a table whose owner has rebuilt the identical object
// population — but the census lets Restore detect a rebuild that
// diverged from the snapshotted world.
func (t *Table) Snapshot(w *snap.Writer) {
	w.Section("kobj")
	w.U64(uint64(t.next))
	w.U64(uint64(len(t.objs)))
}

// Restore overlays a snapshot onto a freshly rebuilt table: the live
// object count must match (the rebuild produced the same permanent
// population the snapshotted device had), and the ID allocator jumps
// forward so objects created after the restore receive the same IDs
// they would have in an uninterrupted run.
func (t *Table) Restore(r *snap.Reader) error {
	r.Section("kobj")
	next := ID(r.U64())
	count := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if count != len(t.objs) {
		return fmt.Errorf("kobj: restore: snapshot has %d live objects, rebuilt table has %d", count, len(t.objs))
	}
	if next < t.next {
		return fmt.Errorf("kobj: restore: snapshot next ID %d behind rebuilt table's %d", next, t.next)
	}
	t.next = next
	return nil
}

// Register assigns an ID to the object, initializes its Base, and files
// it in the given container. The container may be nil only for the root
// container itself.
func (t *Table) Register(b *Base, kind Kind, lbl label.Label, parent *Container, self Object) ID {
	b.id = t.next
	t.next++
	b.kind = kind
	b.lbl = lbl
	t.objs[b.id] = self
	if parent != nil {
		parent.attach(self)
		t.parent[b.id] = parent
	}
	return b.id
}

// Lookup returns the live object with the given ID.
func (t *Table) Lookup(id ID) (Object, error) {
	o, ok := t.objs[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return o, nil
}

// Live reports whether the object with the given ID is still allocated.
func (t *Table) Live(id ID) bool {
	_, ok := t.objs[id]
	return ok
}

// Count returns the number of live objects.
func (t *Table) Count() int { return len(t.objs) }

// CountKind returns the number of live objects of the given kind.
func (t *Table) CountKind(k Kind) int {
	n := 0
	for _, o := range t.objs {
		if o.ObjectKind() == k {
			n++
		}
	}
	return n
}

// Parent returns the container holding the object, or nil for the root.
func (t *Table) Parent(id ID) *Container { return t.parent[id] }

// Delete deallocates the object and, if it is a container, everything
// beneath it (paper §3.2: "reserves can be deleted directly or
// indirectly when some ancestor of their container is deleted").
func (t *Table) Delete(id ID) error {
	o, ok := t.objs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	t.release(o)
	return nil
}

func (t *Table) release(o Object) {
	id := o.ObjectID()
	if _, ok := t.objs[id]; !ok {
		return // already gone (e.g. double-listed during teardown)
	}
	// Tear down children first so release hooks run leaf-to-root.
	if c, ok := o.(*Container); ok {
		for _, child := range c.Children() {
			t.release(child)
		}
		c.children = nil
	}
	if p := t.parent[id]; p != nil {
		p.detach(id)
	}
	delete(t.parent, id)
	delete(t.objs, id)
	o.released()
}

// Container holds references to other kernel objects and controls their
// lifetime.
type Container struct {
	Base
	name     string
	children map[ID]Object
}

// NewContainer creates a container inside parent (nil for the root) and
// registers it with the table.
func NewContainer(t *Table, parent *Container, name string, lbl label.Label) *Container {
	c := &Container{name: name, children: make(map[ID]Object)}
	t.Register(&c.Base, KindContainer, lbl, parent, c)
	return c
}

// Name returns the container's diagnostic name.
func (c *Container) Name() string { return c.name }

func (c *Container) attach(o Object) { c.children[o.ObjectID()] = o }
func (c *Container) detach(id ID)    { delete(c.children, id) }

// Children returns the container's direct children sorted by ID, for
// deterministic iteration.
func (c *Container) Children() []Object {
	out := make([]Object, 0, len(c.children))
	for _, o := range c.children {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID() < out[j].ObjectID() })
	return out
}

// Len returns the number of direct children.
func (c *Container) Len() int { return len(c.children) }

// String renders the container for diagnostics.
func (c *Container) String() string {
	return fmt.Sprintf("container(%d %q, %d children)", c.ObjectID(), c.name, len(c.children))
}

// AsKind looks up id in the table and checks its kind, a convenience for
// syscall-style entry points.
func AsKind(t *Table, id ID, k Kind) (Object, error) {
	o, err := t.Lookup(id)
	if err != nil {
		return nil, err
	}
	if o.ObjectKind() != k {
		return nil, fmt.Errorf("%w: id %d is %v, want %v", ErrKind, id, o.ObjectKind(), k)
	}
	return o, nil
}
