package kobj

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/label"
)

// fakeObj is a minimal non-container object for tests.
type fakeObj struct {
	Base
	releasedCount int
}

func newFake(t *Table, parent *Container, kind Kind) *fakeObj {
	f := &fakeObj{}
	f.OnRelease(func() { f.releasedCount++ })
	t.Register(&f.Base, kind, label.Public(), parent, f)
	return f
}

func TestRegisterAssignsSequentialIDs(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	a := newFake(tbl, root, KindReserve)
	b := newFake(tbl, root, KindTap)
	if root.ObjectID() != 1 || a.ObjectID() != 2 || b.ObjectID() != 3 {
		t.Fatalf("ids = %d,%d,%d, want 1,2,3", root.ObjectID(), a.ObjectID(), b.ObjectID())
	}
	if a.ObjectKind() != KindReserve || b.ObjectKind() != KindTap {
		t.Fatal("kinds wrong")
	}
}

func TestLookup(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	a := newFake(tbl, root, KindReserve)
	got, err := tbl.Lookup(a.ObjectID())
	if err != nil || got != Object(a) {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := tbl.Lookup(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(999) err = %v, want ErrNotFound", err)
	}
	if _, err := tbl.Lookup(NilID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(0) err = %v, want ErrNotFound", err)
	}
}

func TestDeleteLeaf(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	a := newFake(tbl, root, KindReserve)
	if err := tbl.Delete(a.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if tbl.Live(a.ObjectID()) {
		t.Fatal("object live after delete")
	}
	if a.releasedCount != 1 {
		t.Fatalf("release hook ran %d times, want 1", a.releasedCount)
	}
	if root.Len() != 0 {
		t.Fatal("container still references deleted child")
	}
}

func TestDeleteCascades(t *testing.T) {
	// root > c1 > c2 > leaf; deleting c1 must release c2 and leaf.
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	c1 := NewContainer(tbl, root, "c1", label.Public())
	c2 := NewContainer(tbl, c1, "c2", label.Public())
	leaf := newFake(tbl, c2, KindReserve)
	sibling := newFake(tbl, root, KindReserve)

	if err := tbl.Delete(c1.ObjectID()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []ID{c1.ObjectID(), c2.ObjectID(), leaf.ObjectID()} {
		if tbl.Live(id) {
			t.Errorf("id %d live after ancestor delete", id)
		}
	}
	if leaf.releasedCount != 1 {
		t.Fatalf("leaf released %d times, want 1", leaf.releasedCount)
	}
	if !tbl.Live(sibling.ObjectID()) {
		t.Fatal("sibling outside subtree was deleted")
	}
	if tbl.Count() != 2 { // root + sibling
		t.Fatalf("Count = %d, want 2", tbl.Count())
	}
}

func TestDeleteTwice(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	a := newFake(tbl, root, KindReserve)
	if err := tbl.Delete(a.ObjectID()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(a.ObjectID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete err = %v, want ErrNotFound", err)
	}
}

func TestCountKind(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	for i := 0; i < 3; i++ {
		newFake(tbl, root, KindReserve)
	}
	for i := 0; i < 2; i++ {
		newFake(tbl, root, KindTap)
	}
	if n := tbl.CountKind(KindReserve); n != 3 {
		t.Fatalf("CountKind(reserve) = %d, want 3", n)
	}
	if n := tbl.CountKind(KindTap); n != 2 {
		t.Fatalf("CountKind(tap) = %d, want 2", n)
	}
	if n := tbl.CountKind(KindContainer); n != 1 {
		t.Fatalf("CountKind(container) = %d, want 1", n)
	}
}

func TestParent(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	c := NewContainer(tbl, root, "c", label.Public())
	a := newFake(tbl, c, KindReserve)
	if tbl.Parent(a.ObjectID()) != c {
		t.Fatal("Parent(a) != c")
	}
	if tbl.Parent(root.ObjectID()) != nil {
		t.Fatal("root has a parent")
	}
}

func TestChildrenSorted(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	var ids []ID
	for i := 0; i < 10; i++ {
		ids = append(ids, newFake(tbl, root, KindSegment).ObjectID())
	}
	kids := root.Children()
	if len(kids) != len(ids) {
		t.Fatalf("Children len = %d, want %d", len(kids), len(ids))
	}
	for i := 1; i < len(kids); i++ {
		if kids[i].ObjectID() <= kids[i-1].ObjectID() {
			t.Fatal("Children not sorted by ID")
		}
	}
}

func TestAsKind(t *testing.T) {
	tbl := NewTable()
	root := NewContainer(tbl, nil, "root", label.Public())
	a := newFake(tbl, root, KindReserve)
	if _, err := AsKind(tbl, a.ObjectID(), KindReserve); err != nil {
		t.Fatalf("AsKind correct kind: %v", err)
	}
	if _, err := AsKind(tbl, a.ObjectID(), KindTap); !errors.Is(err, ErrKind) {
		t.Fatalf("AsKind wrong kind err = %v, want ErrKind", err)
	}
	if _, err := AsKind(tbl, 12345, KindTap); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AsKind missing err = %v, want ErrNotFound", err)
	}
}

func TestKindString(t *testing.T) {
	if KindReserve.String() != "reserve" || KindTap.String() != "tap" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestReleaseHookRunsOncePerObjectRandomTree(t *testing.T) {
	// Property: build a random container tree, delete a random container;
	// every object in the subtree is released exactly once, everything
	// else exactly zero times, and table bookkeeping is consistent.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		tbl := NewTable()
		root := NewContainer(tbl, nil, "root", label.Public())
		containers := []*Container{root}
		var leaves []*fakeObj
		for i := 0; i < 40; i++ {
			parent := containers[r.Intn(len(containers))]
			if r.Intn(3) == 0 {
				containers = append(containers, NewContainer(tbl, parent, "c", label.Public()))
			} else {
				leaves = append(leaves, newFake(tbl, parent, KindReserve))
			}
		}
		victim := containers[r.Intn(len(containers))]
		inSubtree := map[ID]bool{}
		var mark func(c *Container)
		mark = func(c *Container) {
			inSubtree[c.ObjectID()] = true
			for _, ch := range c.Children() {
				if cc, ok := ch.(*Container); ok {
					mark(cc)
				} else {
					inSubtree[ch.ObjectID()] = true
				}
			}
		}
		mark(victim)

		before := tbl.Count()
		if err := tbl.Delete(victim.ObjectID()); err != nil {
			t.Fatal(err)
		}
		if got, want := tbl.Count(), before-len(inSubtree); got != want {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, want)
		}
		for _, f := range leaves {
			want := 0
			if inSubtree[f.ObjectID()] {
				want = 1
			}
			if f.releasedCount != want {
				t.Fatalf("trial %d: leaf %d released %d times, want %d",
					trial, f.ObjectID(), f.releasedCount, want)
			}
			if tbl.Live(f.ObjectID()) == inSubtree[f.ObjectID()] {
				t.Fatalf("trial %d: liveness inconsistent for %d", trial, f.ObjectID())
			}
		}
	}
}
