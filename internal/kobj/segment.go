package kobj

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/label"
)

// The paper's §3.1: "[HiStar's] segments, threads, address spaces, and
// devices are similar to those of conventional kernels." Threads live in
// internal/sched and devices in their own packages; this file supplies
// segments and address spaces so the process model is complete —
// energywrap's fork/exec and the gate mechanism ("the calling thread
// itself enters the server's address space", §5.5.1) operate over these
// objects.

// ErrSegmentBounds reports an out-of-range segment access.
var ErrSegmentBounds = errors.New("kobj: segment access out of bounds")

// ErrMapped reports an address-space mapping conflict.
var ErrMapped = errors.New("kobj: range already mapped")

// Segment is a labelled, resizable byte region.
type Segment struct {
	Base
	data []byte
}

// NewSegment allocates a zeroed segment of the given size in parent.
func NewSegment(t *Table, parent *Container, size int, lbl label.Label) *Segment {
	s := &Segment{data: make([]byte, size)}
	t.Register(&s.Base, KindSegment, lbl, parent, s)
	return s
}

// Size returns the segment length in bytes.
func (s *Segment) Size() int { return len(s.data) }

// Resize grows or shrinks the segment, preserving contents.
func (s *Segment) Resize(size int) {
	if size < 0 {
		panic("kobj: negative segment size")
	}
	next := make([]byte, size)
	copy(next, s.data)
	s.data = next
}

// Read copies from the segment at off after an observe check.
func (s *Segment) Read(p label.Priv, off int, dst []byte) (int, error) {
	if !p.CanObserve(s.Label()) {
		return 0, fmt.Errorf("kobj: read segment %d: label check failed", s.ObjectID())
	}
	if off < 0 || off >= len(s.data) {
		return 0, fmt.Errorf("%w: off %d, size %d", ErrSegmentBounds, off, len(s.data))
	}
	return copy(dst, s.data[off:]), nil
}

// Write copies into the segment at off after a modify check.
func (s *Segment) Write(p label.Priv, off int, src []byte) (int, error) {
	if !p.CanModify(s.Label()) {
		return 0, fmt.Errorf("kobj: write segment %d: label check failed", s.ObjectID())
	}
	if off < 0 || off+len(src) > len(s.data) {
		return 0, fmt.Errorf("%w: [%d,%d), size %d", ErrSegmentBounds, off, off+len(src), len(s.data))
	}
	return copy(s.data[off:], src), nil
}

// Mapping is one segment mapped at a virtual address range.
type Mapping struct {
	VA       uint64
	Len      int
	Segment  *Segment
	Writable bool
}

// AddressSpace maps segments at virtual addresses. Gate entry switches a
// thread's address space; the simulation models the switch itself (and
// its billing consequences) rather than byte-level paging.
type AddressSpace struct {
	Base
	maps []Mapping
}

// NewAddressSpace creates an empty address space in parent.
func NewAddressSpace(t *Table, parent *Container, lbl label.Label) *AddressSpace {
	as := &AddressSpace{}
	t.Register(&as.Base, KindSegment, lbl, parent, as)
	return as
}

// Map installs a segment at va. Ranges must not overlap.
func (as *AddressSpace) Map(p label.Priv, va uint64, seg *Segment, writable bool) error {
	if !p.CanModify(as.Label()) {
		return fmt.Errorf("kobj: map: label check failed")
	}
	if writable && !p.CanModify(seg.Label()) {
		return fmt.Errorf("kobj: map writable: label check failed on segment")
	}
	if !p.CanObserve(seg.Label()) {
		return fmt.Errorf("kobj: map: cannot observe segment")
	}
	m := Mapping{VA: va, Len: seg.Size(), Segment: seg, Writable: writable}
	for _, ex := range as.maps {
		if va < ex.VA+uint64(ex.Len) && ex.VA < va+uint64(m.Len) {
			return fmt.Errorf("%w: [%#x,%#x) vs [%#x,%#x)", ErrMapped,
				va, va+uint64(m.Len), ex.VA, ex.VA+uint64(ex.Len))
		}
	}
	as.maps = append(as.maps, m)
	sort.Slice(as.maps, func(i, j int) bool { return as.maps[i].VA < as.maps[j].VA })
	return nil
}

// Unmap removes the mapping starting at va.
func (as *AddressSpace) Unmap(p label.Priv, va uint64) error {
	if !p.CanModify(as.Label()) {
		return fmt.Errorf("kobj: unmap: label check failed")
	}
	for i, m := range as.maps {
		if m.VA == va {
			as.maps = append(as.maps[:i], as.maps[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("kobj: unmap: no mapping at %#x", va)
}

// Lookup resolves a virtual address to its mapping.
func (as *AddressSpace) Lookup(va uint64) (Mapping, bool) {
	i := sort.Search(len(as.maps), func(i int) bool {
		return as.maps[i].VA+uint64(as.maps[i].Len) > va
	})
	if i < len(as.maps) && as.maps[i].VA <= va {
		return as.maps[i], true
	}
	return Mapping{}, false
}

// Mappings returns the installed mappings sorted by address.
func (as *AddressSpace) Mappings() []Mapping {
	out := make([]Mapping, len(as.maps))
	copy(out, as.maps)
	return out
}

// ResidentBytes sums the mapped segment sizes — the quota a container
// hierarchy would account for.
func (as *AddressSpace) ResidentBytes() int {
	n := 0
	for _, m := range as.maps {
		n += m.Len
	}
	return n
}
