// Package integration exercises the full stack — kernel, graph,
// scheduler, radio, netd, applications, decay — in combined scenarios
// that no single package test covers: whole-system conservation, battery
// exhaustion, policy composition, and the §7.1 billing comparison
// end-to-end.
package integration

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/kernel"
	"repro/internal/label"
	"repro/internal/netd"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// fullSystem builds kernel + radio + netd.
func fullSystem(t *testing.T, cfg kernel.Config) (*kernel.Kernel, *radio.Radio, *netd.Netd) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	k := kernel.New(cfg)
	r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
	k.AddDevice(r)
	n, err := netd.New(k, r, netd.Config{Cooperative: true})
	if err != nil {
		t.Fatal(err)
	}
	return k, r, n
}

func TestWholeSystemConservation(t *testing.T) {
	// Browser + plugin + task manager + two pollers + radio + decay,
	// two simulated minutes: conservation must hold exactly.
	k, _, _ := fullSystem(t, kernel.Config{})
	if _, err := apps.NewBrowser(k, k.Root, k.KernelPriv(), k.Battery(), apps.BrowserConfig{
		Rate:       units.Milliwatts(300),
		PluginRate: units.Milliwatts(30),
		Reclaim:    true,
	}); err != nil {
		t.Fatal(err)
	}
	tm, err := apps.NewTaskManager(k, k.Root, k.KernelPriv(), k.Battery(), apps.TaskManagerConfig{
		ForegroundRate: units.Milliwatts(137),
		BackgroundRate: units.Milliwatts(14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Manage("A", units.Milliwatts(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Manage("B", units.Milliwatts(7)); err != nil {
		t.Fatal(err)
	}
	if err := tm.SetForeground("A"); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct {
		name  string
		phase units.Time
	}{{"rss", units.Second}, {"mail", 16 * units.Second}} {
		if _, err := apps.NewPoller(k, k.Root, spec.name, k.KernelPriv(), k.Battery(), apps.PollerConfig{
			Interval: 30 * units.Second, Phase: spec.phase,
			Rate: units.Milliwatts(150), ReqBytes: 200, RespBytes: 4096,
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(2 * units.Minute)
	if ce := k.Graph.ConservationError(); ce != 0 {
		t.Fatalf("conservation error %v after combined workload", ce)
	}
	if k.Consumed() == 0 {
		t.Fatal("nothing consumed")
	}
}

func TestBatteryExhaustion(t *testing.T) {
	// A tiny battery drains to zero; consumption then stops (the device
	// is dead) and nothing goes negative.
	k := kernel.New(kernel.Config{
		Seed:            2,
		BatteryCapacity: 10 * units.Joule, // ≈14 s of idle draw
		DecayHalfLife:   -1,
	})
	res := k.CreateReserve(k.Root, "app", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, units.Joule); err != nil {
		t.Fatal(err)
	}
	k.Spawn(k.Root, "spin", label.Priv{}, nil, res)
	k.Run(30 * units.Second)

	lvl, err := k.Battery().Level(k.KernelPriv())
	if err != nil {
		t.Fatal(err)
	}
	if lvl < 0 {
		t.Fatalf("battery negative: %v", lvl)
	}
	if lvl > 200*units.Millijoule {
		t.Fatalf("battery not exhausted: %v", lvl)
	}
	if ce := k.Graph.ConservationError(); ce != 0 {
		t.Fatalf("conservation error %v", ce)
	}
}

func TestDecayReturnsHoardToBattery(t *testing.T) {
	// An app hoards 100 J and exits; after several half-lives the
	// energy is back in the battery (minus baseline burn).
	k := kernel.New(kernel.Config{Seed: 3})
	res := k.CreateReserve(k.Root, "hoard", label.Public())
	if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, 100*units.Joule); err != nil {
		t.Fatal(err)
	}
	k.Run(40 * units.Minute) // 4 half-lives
	lvl, _ := res.Level(label.Priv{})
	if lvl > 8*units.Joule { // 100 × 2⁻⁴ = 6.25 J
		t.Fatalf("hoard = %v after 4 half-lives, want ≈6.25 J", lvl)
	}
	if ce := k.Graph.ConservationError(); ce != 0 {
		t.Fatalf("conservation error %v", ce)
	}
}

func TestEnergywrapConfinesBrowserStack(t *testing.T) {
	// Policy composition: the entire browser (and its plugin) wrapped
	// in an energywrap envelope. The stack's total consumption cannot
	// exceed the envelope rate.
	k, _, _ := fullSystem(t, kernel.Config{DecayHalfLife: -1})
	envRate := units.Milliwatts(50)
	env, _, err := k.Wrap(k.Root, "envelope", k.KernelPriv(), k.Battery(), envRate, label.Public())
	if err != nil {
		t.Fatal(err)
	}
	b, err := apps.NewBrowser(k, k.Root, k.KernelPriv(), env, apps.BrowserConfig{
		Rate:       units.Milliwatts(690), // asks for far more than the envelope
		PluginRate: units.Milliwatts(70),
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(20 * units.Second)
	total := b.Thread.CPUConsumed() + b.Plugin.Thread.CPUConsumed()
	budget := envRate.Over(20*units.Second) * 105 / 100
	if total > budget {
		t.Fatalf("wrapped browser stack consumed %v, envelope %v", total, budget)
	}
	if total < budget/3 {
		t.Fatalf("wrapped stack consumed %v, suspiciously little of %v", total, budget)
	}
}

func TestGateBillingDivergence(t *testing.T) {
	// The §7.1 comparison end-to-end: the same poller workload under
	// BillCaller vs BillDaemon. Under Cinder-HiStar semantics the app
	// reserve pays the data costs; under Cinder-Linux the daemon pool
	// absorbs them and the app's reserve stays (incorrectly) fuller.
	run := func(mode kernel.BillingMode) units.Energy {
		k := kernel.New(kernel.Config{Seed: 4, DecayHalfLife: -1, Billing: mode})
		r := radio.New(k.Eng, k.Graph, k.Root, k.KernelPriv(), radio.Config{Profile: k.Profile})
		k.AddDevice(r)
		if _, err := netd.New(k, r, netd.Config{Cooperative: false}); err != nil {
			t.Fatal(err)
		}
		p, err := apps.NewPoller(k, k.Root, "app", k.KernelPriv(), k.Battery(), apps.PollerConfig{
			Interval: 20 * units.Second, Phase: units.Second,
			Rate: units.Milliwatts(150), ReqBytes: 500, RespBytes: 32 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		k.Run(2 * units.Minute)
		st, err := p.Reserve.Stats(label.Priv{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Consumed
	}
	hiStar := run(kernel.BillCaller)
	linux := run(kernel.BillDaemon)
	if hiStar <= linux {
		t.Fatalf("caller-billing consumption %v should exceed daemon-billing %v "+
			"(data costs must land on the app only under HiStar semantics)",
			hiStar, linux)
	}
}

func TestForegroundSwitchDuringNetworkActivity(t *testing.T) {
	// The task manager demotes an app mid-poll; the blocked thread
	// wakes, finds itself on a trickle, and still completes its next
	// poll eventually. Exercises Block/Wake vs tap-rate interactions.
	k, r, _ := fullSystem(t, kernel.Config{DecayHalfLife: -1})
	p, err := apps.NewPoller(k, k.Root, "mail", k.KernelPriv(), k.Battery(), apps.PollerConfig{
		Interval: 30 * units.Second, Phase: units.Second,
		Rate: units.Milliwatts(400), ReqBytes: 200, RespBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Throttle the tap at t=45 s (mid-second-cycle): activations now
	// take ≈80 s of accumulation instead of ≈30 s.
	k.Eng.At(45*units.Second, func(_ *sim.Engine) {
		if err := p.Tap.SetRate(k.KernelPriv(), units.Milliwatts(150)); err != nil {
			t.Errorf("SetRate: %v", err)
		}
	})
	k.Run(10 * units.Minute)
	if p.Completed < 4 {
		t.Fatalf("polls completed = %d, want ≥4 despite throttling", p.Completed)
	}
	if r.Stats().Activations == 0 {
		t.Fatal("radio never activated")
	}
}

func TestSchedulerStarvationFreedomUnderLoad(t *testing.T) {
	// Twenty equally-funded spinners share the CPU within 2 % of each
	// other over 30 s — round-robin fairness at scale.
	k := kernel.New(kernel.Config{Seed: 6, DecayHalfLife: -1,
		BatteryCapacity: 100 * units.Kilojoule})
	var threads []*sched.Thread
	for i := 0; i < 20; i++ {
		res := k.CreateReserve(k.Root, "r", label.Public())
		if err := k.Graph.Transfer(k.KernelPriv(), k.Battery(), res, units.Kilojoule); err != nil {
			t.Fatal(err)
		}
		_, th := k.Spawn(k.Root, "spin", label.Priv{}, nil, res)
		threads = append(threads, th)
	}
	k.Run(30 * units.Second)
	min, max := threads[0].TicksRun(), threads[0].TicksRun()
	for _, th := range threads {
		if th.TicksRun() < min {
			min = th.TicksRun()
		}
		if th.TicksRun() > max {
			max = th.TicksRun()
		}
	}
	if max-min > max/50 {
		t.Fatalf("unfair: ticks range [%d, %d]", min, max)
	}
}
