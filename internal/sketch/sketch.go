// Package sketch provides the deterministic, mergeable quantile
// histogram the fleet aggregator uses for per-device distributions
// (time-to-battery-exhaustion percentiles). A straight percentile needs
// every sample retained — O(dead devices) memory, the last
// super-constant consumer in a million-device report — while Hist keeps
// a fixed array of integer counters whose size depends only on the
// value range.
//
// The layout is HDR-histogram style log-linear bucketing: values below
// 2^SubBits are exact; above, each power-of-two octave is split into
// 2^SubBits linear sub-buckets, so the relative error of a quantile is
// bounded by 2^-SubBits (< 0.8 % at SubBits = 7). Everything is integer
// arithmetic: merging is element-wise counter addition, which is
// associative and commutative, so a merged set of shard histograms is
// byte-for-byte the histogram a single process would have built — the
// property the shard-merge invariance suite asserts.
package sketch

import "math/bits"

// SubBits is the per-octave resolution: 2^SubBits linear sub-buckets
// per power of two, giving a worst-case quantile error of 2^-SubBits
// (≈0.78 %).
const SubBits = 7

// Hist is a mergeable log-linear histogram of non-negative int64
// samples. The zero value is ready to use.
type Hist struct {
	counts []uint64
	n      uint64
}

// bucketIndex maps a value to its counter slot.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<SubBits {
		return int(v)
	}
	// The mantissa's top SubBits+1 bits select the sub-bucket within the
	// value's octave.
	e := bits.Len64(uint64(v)) - 1 // position of the MSB, ≥ SubBits
	shift := uint(e - SubBits)
	return int(uint64(e-SubBits+1)<<SubBits) + int(uint64(v)>>shift) - (1 << SubBits)
}

// lowerBound returns the smallest value mapping to the given slot — the
// representative a quantile query reports.
func lowerBound(idx int) int64 {
	if idx < 1<<SubBits {
		return int64(idx)
	}
	octave := idx>>SubBits - 1
	mantissa := int64(idx&(1<<SubBits-1)) + 1<<SubBits
	return mantissa << uint(octave)
}

// Add records one sample. Negative samples clamp to zero.
func (h *Hist) Add(v int64) {
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.n++
}

// N returns the number of recorded samples.
func (h *Hist) N() uint64 { return h.n }

// Merge adds every counter of other into h. Merging is associative and
// commutative, so any grouping of shard histograms produces identical
// counters.
func (h *Hist) Merge(other *Hist) {
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
}

// Reset empties the histogram in place, keeping its backing array.
func (h *Hist) Reset() {
	clear(h.counts)
	h.n = 0
}

// Quantile returns the nearest-rank p-th percentile: the lower bound of
// the bucket containing the sample of rank ⌈p·n/100⌉ (rank clamped to
// ≥ 1). An empty histogram returns 0.
func (h *Hist) Quantile(p int) int64 {
	if h.n == 0 {
		return 0
	}
	rank := (uint64(p)*h.n + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return lowerBound(i)
		}
	}
	return lowerBound(len(h.counts) - 1)
}

// Each calls fn for every non-empty bucket in index order with the
// bucket's slot index and count — the sparse form shard reports
// serialize.
func (h *Hist) Each(fn func(idx int, count uint64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(i, c)
		}
	}
}

// AddBucket adds count samples directly into the given slot index, the
// inverse of Each for deserializing a sparse shard report. Invalid
// indexes (negative) are ignored.
func (h *Hist) AddBucket(idx int, count uint64) {
	if idx < 0 || count == 0 {
		return
	}
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += count
	h.n += count
}
