package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

func TestExactBelowSubBucketRange(t *testing.T) {
	var h Hist
	for v := int64(0); v < 1<<SubBits; v++ {
		h.Add(v)
	}
	// Every value below 2^SubBits is its own bucket: quantiles are exact.
	if got := h.Quantile(50); got != 63 {
		t.Fatalf("p50 = %d, want 63", got)
	}
	if got := h.Quantile(100); got != 127 {
		t.Fatalf("p100 = %d, want 127", got)
	}
}

func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Hist
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(600_000_000) // a week in milliseconds
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []int{1, 10, 50, 90, 99} {
		rank := (p*len(samples) + 99) / 100
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Quantile(p)
		// The sketch reports the bucket lower bound: got ≤ exact and
		// within one part in 2^SubBits.
		if got > exact {
			t.Fatalf("p%d: sketch %d above exact %d", p, got, exact)
		}
		if exact-got > exact>>SubBits+1 {
			t.Fatalf("p%d: sketch %d too far below exact %d", p, got, exact)
		}
	}
}

func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole Hist
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = &Hist{}
	}
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(1 << 40)
		whole.Add(v)
		parts[i%4].Add(v)
	}
	// Merge the shards in a scrambled order; counters must match the
	// single-histogram build exactly.
	var merged Hist
	for _, i := range []int{2, 0, 3, 1} {
		merged.Merge(parts[i])
	}
	if merged.N() != whole.N() {
		t.Fatalf("n %d != %d", merged.N(), whole.N())
	}
	for _, p := range []int{5, 50, 95} {
		if merged.Quantile(p) != whole.Quantile(p) {
			t.Fatalf("p%d differs: %d vs %d", p, merged.Quantile(p), whole.Quantile(p))
		}
	}
}

func TestSparseRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 999, 1 << 30, 1 << 40} {
		h.Add(v)
	}
	var back Hist
	h.Each(func(idx int, count uint64) { back.AddBucket(idx, count) })
	if back.N() != h.N() {
		t.Fatalf("n %d != %d", back.N(), h.N())
	}
	for p := 0; p <= 100; p += 10 {
		if back.Quantile(p) != h.Quantile(p) {
			t.Fatalf("p%d differs", p)
		}
	}
}

func TestBucketRepresentativeIsLowerBound(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, 129, 1000, 12345, 1 << 20, 604800000} {
		idx := bucketIndex(v)
		lb := lowerBound(idx)
		if lb > v {
			t.Fatalf("lowerBound(%d)=%d above value %d", idx, lb, v)
		}
		if bucketIndex(lb) != idx {
			t.Fatalf("lowerBound(%d)=%d maps to bucket %d", idx, lb, bucketIndex(lb))
		}
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Hist
	h.Add(-5)
	if got := h.Quantile(100); got != 0 {
		t.Fatalf("negative sample bucketed at %d", got)
	}
}
